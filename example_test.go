package dtl_test

import (
	"bytes"
	"fmt"
	"log"

	"dtl"
	"dtl/internal/core"
)

// exampleConfig is a small 4 GiB device so the examples run instantly.
func exampleConfig() core.Config {
	cfg := core.DefaultConfig(dtl.Geometry{
		Channels:        4,
		RanksPerChannel: 4,
		BanksPerRank:    16,
		SegmentBytes:    2 << 20,
		RankBytes:       256 << 20,
	})
	cfg.AUBytes = 64 << 20
	return cfg
}

// Open a device, allocate memory for a VM, and issue a host load.
func Example() {
	dev, err := dtl.Open(dtl.WithConfig(exampleConfig()))
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := dev.AllocateVM(1, 0, 128<<20, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated %d MiB in %d allocation units\n",
		alloc.Bytes>>20, len(alloc.AUBases))

	lat, err := dev.Read(alloc.AUBases[0], 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first read took %v (full translation walk + CXL link)\n", lat)
	// Output:
	// allocated 128 MiB in 2 allocation units
	// first read took 384ns (full translation walk + CXL link)
}

// Deallocation triggers the rank-level power-down check: idle rank groups
// enter maximum power saving mode.
func ExampleDevice_DeallocateVM() {
	dev, err := dtl.Open(dtl.WithConfig(exampleConfig()))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dev.AllocateVM(1, 0, 256<<20, 0); err != nil {
		log.Fatal(err)
	}
	if err := dev.DeallocateVM(1, 1000); err != nil {
		log.Fatal(err)
	}
	snap := dev.PowerSnapshot(1000)
	fmt.Printf("active ranks per channel: %d\n", snap.ActiveRanksPerChannel)
	fmt.Printf("rank groups in MPSM: %d\n", snap.PoweredDownGroups)
	// Output:
	// active ranks per channel: 1
	// rank groups in MPSM: 3
}

// The Table 5 metadata model: DTL's structures are a vanishing fraction of
// device capacity.
func ExampleDevice_MetadataSizes() {
	// The paper's 384 GB evaluation point (Table 5).
	dev, err := dtl.Open(dtl.WithGeometry(dtl.Geometry{
		Channels:        4,
		RanksPerChannel: 8,
		BanksPerRank:    16,
		SegmentBytes:    2 << 20,
		RankBytes:       12 << 30,
	}))
	if err != nil {
		log.Fatal(err)
	}
	sizes := dev.MetadataSizes()
	fmt.Printf("L1 segment mapping cache: %d bytes\n", sizes.L1SMCBytes)
	frac := float64(sizes.TotalDRAM()) / float64(dev.Geometry().TotalBytes())
	fmt.Printf("DRAM-resident metadata under %.4f%% of capacity: %v\n", 0.01, frac < 0.0001)
	// Output:
	// L1 segment mapping cache: 328 bytes
	// DRAM-resident metadata under 0.0100% of capacity: true
}

// Metadata snapshots survive a controller restart: the restored device
// serves the same host physical addresses.
func ExampleRestore() {
	cfg := exampleConfig()
	dev, err := dtl.Open(dtl.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := dev.AllocateVM(1, 0, 128<<20, 0)
	if err != nil {
		log.Fatal(err)
	}

	var checkpoint bytes.Buffer
	if err := dev.SaveMetadata(&checkpoint); err != nil {
		log.Fatal(err)
	}

	restored, err := dtl.Restore(&checkpoint, dtl.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := restored.Read(alloc.AUBases[0], 1000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored device serves the VM's addresses:", restored.LiveVMs() == 1)
	// Output:
	// restored device serves the VM's addresses: true
}

// Retiring a failing rank drains it transparently; the host keeps its
// addresses while usable capacity shrinks by one rank.
func ExampleDevice_RetireRank() {
	dev, err := dtl.Open(dtl.WithConfig(exampleConfig()))
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := dev.AllocateVM(1, 0, 128<<20, 0)
	if err != nil {
		log.Fatal(err)
	}
	before := dev.UsableBytes()
	if err := dev.RetireRank(0, 0, 1000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity lost: %d MiB\n", (before-dev.UsableBytes())>>20)
	if _, err := dev.Read(alloc.AUBases[0], 2000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("VM addresses still resolve")
	// Output:
	// capacity lost: 256 MiB
	// VM addresses still resolve
}
