// Package dtl is the public API of the DRAM Translation Layer simulator, a
// reproduction of "DRAM Translation Layer: Software-Transparent DRAM Power
// Savings for Disaggregated Memory" (ISCA 2023).
//
// A Device models a CXL memory expander whose controller embeds a DTL: an
// HPA→DPA indirection at 2 MB segment granularity with two host-transparent
// power-saving mechanisms — rank-level power-down (MPSM consolidation at VM
// deallocation) and hotness-aware self-refresh (cold-segment consolidation
// into a per-channel victim rank).
//
// Quick start:
//
//	dev, _ := dtl.Open()
//	alloc, _ := dev.AllocateVM(1, 0, 8<<30, 0)       // 8 GB for VM 1
//	lat, _ := dev.Read(alloc.AUBases[0], 1000)       // host load
//	_ = dev.DeallocateVM(1, 2000)                    // may power ranks down
//	fmt.Println(dev.PowerSnapshot(3000))
package dtl

import (
	"fmt"
	"io"

	"dtl/internal/core"
	"dtl/internal/cxl"
	"dtl/internal/dram"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// Re-exported domain types, so callers need only this package.
type (
	// Geometry describes the device organization (channels, ranks, banks,
	// segment and rank sizes).
	Geometry = dram.Geometry
	// HPA is a host physical address.
	HPA = dram.HPA
	// VMID identifies a virtual machine.
	VMID = core.VMID
	// HostID identifies a compute host sharing the device.
	HostID = core.HostID
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Allocation describes a VM placement.
	Allocation = core.Allocation
	// PowerState is a JEDEC rank power state.
	PowerState = dram.PowerState
)

// Power states.
const (
	Standby     = dram.Standby
	SelfRefresh = dram.SelfRefresh
	MPSM        = dram.MPSM
)

// Link latencies measured by the paper.
const (
	NativeDRAMLatency = cxl.NativeDRAMLatency
	CXLMemoryLatency  = cxl.CXLMemoryLatency
)

// Geometry presets.
var (
	// Geometry1TB is the paper's 1 TB evaluation device (Fig. 6).
	Geometry1TB = dram.Default1TB
	// Geometry4TB is the hypothetical scaled device of §6.6.
	Geometry4TB = dram.Hypothetical4TB
)

// Option configures Open.
type Option func(*options)

type options struct {
	geometry Geometry
	linkLat  Time
	cfg      *core.Config
}

// WithGeometry selects the device organization (default: 1 TB, 4 channels x
// 8 ranks).
func WithGeometry(g Geometry) Option { return func(o *options) { o.geometry = g } }

// WithLinkLatency sets the host link latency (default CXLMemoryLatency).
func WithLinkLatency(t Time) Option { return func(o *options) { o.linkLat = t } }

// WithConfig supplies a full core configuration (advanced use: custom SMC
// sizes, profiling thresholds, AU size). The geometry inside the config
// wins over WithGeometry.
func WithConfig(cfg core.Config) Option { return func(o *options) { o.cfg = &cfg } }

// Device is a CXL memory expander with an embedded DRAM Translation Layer.
// It is not safe for concurrent use: like the hardware datapath, accesses
// are presented in nondecreasing time order by a single driver.
type Device struct {
	port *cxl.Port
	dtl  *core.DTL
}

// Open builds a device.
func Open(opts ...Option) (*Device, error) {
	o := options{geometry: Geometry1TB(), linkLat: CXLMemoryLatency}
	for _, fn := range opts {
		fn(&o)
	}
	var cfg core.Config
	if o.cfg != nil {
		cfg = *o.cfg
	} else {
		cfg = core.DefaultConfig(o.geometry)
	}
	d, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("dtl: %w", err)
	}
	port, err := cxl.NewPort(d, o.linkLat)
	if err != nil {
		return nil, fmt.Errorf("dtl: %w", err)
	}
	return &Device{port: port, dtl: d}, nil
}

// Geometry reports the device organization.
func (d *Device) Geometry() Geometry { return d.dtl.Config().Geometry }

// AllocateVM reserves memory for a VM (rounded up to 2 GB allocation
// units), waking powered-down rank groups if needed. The returned
// Allocation carries the host physical base address of each AU.
func (d *Device) AllocateVM(vm VMID, host HostID, bytes int64, now Time) (Allocation, error) {
	return d.dtl.AllocateVM(vm, host, bytes, now)
}

// DeallocateVM releases a VM's memory and runs the rank-level power-down
// consolidation check (§3.3).
func (d *Device) DeallocateVM(vm VMID, now Time) error {
	return d.dtl.DeallocateVM(vm, now)
}

// Read performs a host load and returns its end-to-end latency.
func (d *Device) Read(hpa HPA, now Time) (Time, error) {
	return d.port.Access(hpa, false, now)
}

// Write performs a host store and returns its end-to-end latency.
func (d *Device) Write(hpa HPA, now Time) (Time, error) {
	return d.port.Access(hpa, true, now)
}

// Tick advances time-driven machinery (profiling windows, migration
// retirement) without an access.
func (d *Device) Tick(now Time) { d.dtl.Tick(now) }

// EnableHotnessAwareSelfRefresh turns on the §3.4 engine.
func (d *Device) EnableHotnessAwareSelfRefresh(now Time) {
	d.dtl.Hotness().Enable(now)
}

// PowerSnapshot summarizes the device's instantaneous power situation.
type PowerSnapshot struct {
	// BackgroundPower is the summed per-rank background power in
	// normalized units (1.0 = one standby rank).
	BackgroundPower float64
	// RanksByState counts ranks per power state.
	RanksByState map[PowerState]int
	// ActiveRanksPerChannel counts non-MPSM ranks per channel.
	ActiveRanksPerChannel int
	// PoweredDownGroups counts rank groups in MPSM.
	PoweredDownGroups int
}

// String renders the snapshot compactly.
func (s PowerSnapshot) String() string {
	return fmt.Sprintf("bg=%.2f units, standby=%d selfRefresh=%d mpsm=%d, active/ch=%d, groupsDown=%d",
		s.BackgroundPower, s.RanksByState[Standby], s.RanksByState[SelfRefresh],
		s.RanksByState[MPSM], s.ActiveRanksPerChannel, s.PoweredDownGroups)
}

// PowerSnapshot reports the device's power situation at now.
func (d *Device) PowerSnapshot(now Time) PowerSnapshot {
	dev := d.dtl.Device()
	dev.AccountUpTo(now)
	return PowerSnapshot{
		BackgroundPower:       dev.BackgroundPowerNow(),
		RanksByState:          dev.CountByState(),
		ActiveRanksPerChannel: d.dtl.ActiveRanksPerChannel(),
		PoweredDownGroups:     d.dtl.PoweredDownGroups(),
	}
}

// EnergyReport summarizes background energy split by state since time zero.
type EnergyReport struct {
	StandbyEnergy     float64 // normalized units x ns
	SelfRefreshEnergy float64
	MPSMEnergy        float64
	BytesMigrated     int64
}

// Total sums all background energy.
func (r EnergyReport) Total() float64 {
	return r.StandbyEnergy + r.SelfRefreshEnergy + r.MPSMEnergy
}

// EnergyReport integrates background energy up to now.
func (d *Device) EnergyReport(now Time) EnergyReport {
	dev := d.dtl.Device()
	dev.AccountUpTo(now)
	st, sr, mp := dev.BackgroundEnergy()
	return EnergyReport{
		StandbyEnergy:     st,
		SelfRefreshEnergy: sr,
		MPSMEnergy:        mp,
		BytesMigrated:     d.dtl.Stats().BytesMigrated,
	}
}

// Stats exposes DTL counters.
func (d *Device) Stats() core.Stats { return d.dtl.Stats() }

// SMCStats exposes segment-mapping-cache counters.
func (d *Device) SMCStats() core.SMCStats { return d.dtl.SMCStats() }

// AMAT evaluates the §6.1 average-memory-access-time model with the
// device's measured SMC miss ratios.
func (d *Device) AMAT() core.AMATModel { return d.port.AMAT() }

// MeanLatency reports the observed average end-to-end access latency (ns).
func (d *Device) MeanLatency() float64 { return d.port.MeanLatency() }

// AllocatedBytes reports bytes currently reserved by VMs.
func (d *Device) AllocatedBytes() int64 { return d.dtl.AllocatedBytes() }

// LiveVMs reports the number of allocated VMs.
func (d *Device) LiveVMs() int { return d.dtl.LiveVMs() }

// Core exposes the underlying translation layer for advanced callers
// (experiments, tests).
func (d *Device) Core() *core.DTL { return d.dtl }

// Telemetry re-exports, so observability consumers need only this package.
type (
	// Registry is the device's hierarchical metrics registry.
	Registry = telemetry.Registry
	// Tracer records structured events and per-rank power timelines.
	Tracer = telemetry.Tracer
)

// Registry returns the device's always-on metrics registry. Every counter
// behind Stats() lives here; callers may add their own metrics and sample
// the registry on a sim interval timer (Registry.StartSampling).
func (d *Device) Registry() *Registry { return d.dtl.Registry() }

// StartTrace attaches a new event tracer sized for this device (capacity 0
// selects the default ring size) and returns it. Call Finish on the tracer
// at the run horizon, then export with telemetry.WriteChromeTrace,
// WriteJSONL, or WriteEventsCSV. Tracing costs nothing until started.
func (d *Device) StartTrace(capacity int, now Time) *Tracer {
	return d.dtl.StartTrace(capacity, now)
}

// StopTrace detaches the current tracer, restoring the zero-cost path.
func (d *Device) StopTrace() { d.dtl.AttachTracer(nil) }

// CheckInvariants verifies internal consistency (for tests).
func (d *Device) CheckInvariants() error { return d.dtl.CheckInvariants() }

// RetireRank permanently takes a rank offline (reliability extension):
// live segments are drained to surviving ranks of the same channel, the
// capacity is removed from the allocator, and the rank is powered off.
func (d *Device) RetireRank(channel, rank int, now Time) error {
	return d.dtl.RetireRank(dram.RankID{Channel: channel, Rank: rank}, now)
}

// UsableBytes reports capacity minus retired ranks.
func (d *Device) UsableBytes() int64 { return d.dtl.UsableBytes() }

// SaveMetadata checkpoints the durable controller state (mapping tables,
// allocation state, rank power states) so a restarted controller can
// resume serving the host's address space (availability extension).
func (d *Device) SaveMetadata(w io.Writer) error { return d.dtl.SaveMetadata(w) }

// Restore rebuilds a device from a metadata snapshot produced by
// SaveMetadata, using the same configuration options as Open.
func Restore(r io.Reader, opts ...Option) (*Device, error) {
	o := options{geometry: Geometry1TB(), linkLat: CXLMemoryLatency}
	for _, fn := range opts {
		fn(&o)
	}
	var cfg core.Config
	if o.cfg != nil {
		cfg = *o.cfg
	} else {
		cfg = core.DefaultConfig(o.geometry)
	}
	d, err := core.LoadMetadata(r, cfg)
	if err != nil {
		return nil, fmt.Errorf("dtl: %w", err)
	}
	port, err := cxl.NewPort(d, o.linkLat)
	if err != nil {
		return nil, fmt.Errorf("dtl: %w", err)
	}
	return &Device{port: port, dtl: d}, nil
}

// MetadataSizes returns the Table 5 structure-size model for the device.
func (d *Device) MetadataSizes() core.StructureSizes { return d.dtl.Config().Sizes() }

// ControllerEstimate returns the Table 6 power/area model at techNm.
func (d *Device) ControllerEstimate(techNm float64) core.ControllerEstimate {
	return d.dtl.Config().Controller(techNm)
}
