module dtl

go 1.22
