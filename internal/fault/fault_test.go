package fault

import (
	"strings"
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

func TestParseValidSpec(t *testing.T) {
	spec, err := Parse("seed=7; storm:ch1/rk2:at=90m,rate=2000,dur=60s; kill:ch3/rk1:at=3h")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 {
		t.Fatalf("seed = %d, want 7", spec.Seed)
	}
	if len(spec.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2", len(spec.Clauses))
	}
	st := spec.Clauses[0]
	if st.Kind != Storm || st.Rank != (dram.RankID{Channel: 1, Rank: 2}) ||
		st.Rate != 2000 || st.At != 90*sim.Minute || st.Dur != 60*sim.Second || st.Count != 1 {
		t.Fatalf("storm clause = %+v", st)
	}
	k := spec.Clauses[1]
	if k.Kind != Kill || k.Rank != (dram.RankID{Channel: 3, Rank: 1}) || k.At != 3*sim.Hour {
		t.Fatalf("kill clause = %+v", k)
	}
}

func TestParseDefaults(t *testing.T) {
	spec := MustParse("ce:ch0/rk0; storm:ch0/rk1; wake:ch0/rk2; stuck:ch0/rk3; ue:ch1/rk0:n=3")
	if spec.Seed != 1 {
		t.Fatalf("default seed = %d, want 1", spec.Seed)
	}
	c := spec.Clauses
	if c[0].Rate != DefaultCERate || c[1].Rate != DefaultStormRate {
		t.Fatalf("default rates = %v, %v", c[0].Rate, c[1].Rate)
	}
	if c[2].Kind != Wake || c[2].Extra != DefaultWakeExtra {
		t.Fatalf("wake clause = %+v", c[2])
	}
	if c[3].Kind != Wake || c[3].Extra != StuckWakeExtra {
		t.Fatalf("stuck clause = %+v", c[3])
	}
	if c[4].Kind != UE || c[4].Count != 3 {
		t.Fatalf("ue clause = %+v", c[4])
	}
}

func TestParseEmptyAndWhitespace(t *testing.T) {
	for _, s := range []string{"", " ; ; ", ";"} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if len(spec.Clauses) != 0 || spec.Seed != 1 {
			t.Fatalf("Parse(%q) = %+v", s, spec)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"seed=abc",
		"meteor:ch0/rk0",
		"ce",
		"ce:rank3",
		"ce:ch0/rk0:rate=-1",
		"ce:ch0/rk0:rate=0",
		"ce:ch0/rk0:at=yesterday",
		"ce:ch0/rk0:n=0",
		"ce:ch0/rk0:bogus=1",
		"ce:ch0/rk0:rate",
		"wake:ch0/rk0:extra=-5us",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on a bad spec")
		}
	}()
	MustParse("nope:ch0/rk0")
}

func TestNewInjectorValidatesGeometry(t *testing.T) {
	dev := dram.MustDevice(dram.Default1TB(), dram.DefaultPowerModel(), dram.DefaultTiming())
	g := dev.Geometry()
	bad := []string{
		"ce:ch99/rk0",
		"kill:ch0/rk99",
		"ue:ch-1/rk0",
	}
	for _, s := range bad {
		if _, err := NewInjector(MustParse(s), dev, sim.NewEngine()); err == nil {
			t.Errorf("NewInjector accepted %q for %v", s, g)
		}
	}
	if _, err := NewInjector(MustParse("ce:ch0/rk0"), dev, sim.NewEngine()); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// runSpec executes a spec to the horizon on a fresh device and reports the
// injector stats plus every hook event.
func runSpec(t *testing.T, s string, horizon sim.Time) (Stats, []dram.FaultEvent, *dram.Device) {
	t.Helper()
	dev := dram.MustDevice(dram.Default1TB(), dram.DefaultPowerModel(), dram.DefaultTiming())
	var events []dram.FaultEvent
	dev.OnFault(func(ev dram.FaultEvent) { events = append(events, ev) })
	eng := sim.NewEngine()
	inj, err := NewInjector(MustParse(s), dev, eng)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start(horizon)
	eng.RunUntil(horizon)
	return inj.Stats(), events, dev
}

func TestDeterministicReplay(t *testing.T) {
	const spec = "seed=42;ce:ch0/rk0:rate=1000;storm:ch1/rk1:at=100ms,rate=5000,dur=200ms;ue:ch2/rk2:at=50ms"
	a, evA, _ := runSpec(t, spec, sim.Second)
	b, evB, _ := runSpec(t, spec, sim.Second)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if len(evA) != len(evB) {
		t.Fatalf("event streams diverged: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, evA[i], evB[i])
		}
	}
	c, _, _ := runSpec(t, strings.Replace(spec, "seed=42", "seed=43", 1), sim.Second)
	if a == c {
		t.Fatal("different seeds produced identical stats")
	}
}

func TestPoissonRateApproximation(t *testing.T) {
	// 1000 events/s over 2s of virtual time: expect ~2000 arrivals; a 25%
	// band is ~11 sigma for a Poisson(2000), so flakes mean a real bug.
	st, _, _ := runSpec(t, "seed=9;ce:ch0/rk0:rate=1000", 2*sim.Second)
	if st.CorrectableEvents < 1500 || st.CorrectableEvents > 2500 {
		t.Fatalf("ce events = %d, want ~2000", st.CorrectableEvents)
	}
	if st.CorrectableErrors != st.CorrectableEvents {
		t.Fatalf("errors %d != events %d with n=1", st.CorrectableErrors, st.CorrectableEvents)
	}
}

func TestClauseWindowRespected(t *testing.T) {
	_, events, _ := runSpec(t, "seed=3;ce:ch0/rk0:at=100ms,rate=10000,dur=100ms", sim.Second)
	if len(events) == 0 {
		t.Fatal("no events delivered in the active window")
	}
	for _, ev := range events {
		if ev.At < 100*sim.Millisecond || ev.At >= 200*sim.Millisecond {
			t.Fatalf("event at %v outside [100ms,200ms)", ev.At)
		}
	}
}

func TestPerEventErrorCount(t *testing.T) {
	st, _, _ := runSpec(t, "seed=5;ce:ch0/rk0:rate=500,n=4", sim.Second)
	if st.CorrectableErrors != 4*st.CorrectableEvents {
		t.Fatalf("errors %d != 4 * events %d", st.CorrectableErrors, st.CorrectableEvents)
	}
}

func TestKillAndUEOneShot(t *testing.T) {
	st, events, dev := runSpec(t, "seed=1;kill:ch1/rk1:at=10ms;ue:ch0/rk0:at=20ms", sim.Second)
	if st.RankKills != 1 || st.UncorrectableEvents != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !dev.Failed(dram.RankID{Channel: 1, Rank: 1}) {
		t.Fatal("killed rank not failed")
	}
	var kills, ues int
	for _, ev := range events {
		switch ev.Kind {
		case dram.FaultRankFailure:
			kills++
			if ev.At != 10*sim.Millisecond {
				t.Fatalf("kill at %v, want 10ms", ev.At)
			}
		case dram.FaultUncorrectable:
			ues++
			if ev.At != 20*sim.Millisecond {
				t.Fatalf("ue at %v, want 20ms", ev.At)
			}
		}
	}
	if kills != 1 || ues != 1 {
		t.Fatalf("kills=%d ues=%d, want 1 each", kills, ues)
	}
}

func TestWakeArmedAndClearedAtWindowEnd(t *testing.T) {
	dev := dram.MustDevice(dram.Default1TB(), dram.DefaultPowerModel(), dram.DefaultTiming())
	eng := sim.NewEngine()
	inj, err := NewInjector(MustParse("wake:ch0/rk0:at=10ms,dur=20ms,extra=80us"), dev, eng)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start(sim.Second)
	id := dram.RankID{Channel: 0, Rank: 0}

	eng.RunUntil(15 * sim.Millisecond)
	if dev.WakeFault(id) != 80*sim.Microsecond {
		t.Fatalf("wake fault mid-window = %v, want 80us", dev.WakeFault(id))
	}
	if inj.Stats().WakeFaultsArmed != 1 {
		t.Fatalf("armed = %d, want 1", inj.Stats().WakeFaultsArmed)
	}
	eng.RunUntil(sim.Second)
	if dev.WakeFault(id) != 0 {
		t.Fatal("wake fault not cleared at window end")
	}
}

func TestWakeWithoutDurPersistsToHorizon(t *testing.T) {
	dev := dram.MustDevice(dram.Default1TB(), dram.DefaultPowerModel(), dram.DefaultTiming())
	eng := sim.NewEngine()
	inj, err := NewInjector(MustParse("stuck:ch2/rk3"), dev, eng)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start(sim.Second)
	eng.RunUntil(sim.Second)
	if dev.WakeFault(dram.RankID{Channel: 2, Rank: 3}) != StuckWakeExtra {
		t.Fatal("open-ended stuck fault was cleared before the horizon")
	}
}

func TestClauseStreamsIndependent(t *testing.T) {
	// Adding a second clause must not perturb the first clause's arrivals.
	_, solo, _ := runSpec(t, "seed=11;ce:ch0/rk0:rate=200", sim.Second)
	_, both, _ := runSpec(t, "seed=11;ce:ch0/rk0:rate=200;ue:ch3/rk3:at=500ms", sim.Second)
	var ceSolo, ceBoth []dram.FaultEvent
	for _, ev := range solo {
		if ev.Kind == dram.FaultCorrectable {
			ceSolo = append(ceSolo, ev)
		}
	}
	for _, ev := range both {
		if ev.Kind == dram.FaultCorrectable {
			ceBoth = append(ceBoth, ev)
		}
	}
	if len(ceSolo) != len(ceBoth) {
		t.Fatalf("ce arrivals changed: %d vs %d", len(ceSolo), len(ceBoth))
	}
	for i := range ceSolo {
		if ceSolo[i] != ceBoth[i] {
			t.Fatalf("ce event %d changed: %+v vs %+v", i, ceSolo[i], ceBoth[i])
		}
	}
}
