package fault

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

func TestParsePSUForms(t *testing.T) {
	// Canonical param form and the "@" shorthand compile identically.
	for _, s := range []string{"psu:ch1:at=90m", "psu:ch=1@90m", "psu:ch1@90m"} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if len(spec.Clauses) != 1 {
			t.Fatalf("Parse(%q) clauses = %d", s, len(spec.Clauses))
		}
		c := spec.Clauses[0]
		if c.Kind != PSU || c.Rank.Channel != 1 || c.Rank.Rank != WholeChannel || c.At != 90*sim.Minute {
			t.Fatalf("Parse(%q) clause = %+v", s, c)
		}
	}
	// Default activation is t=0.
	c := MustParse("psu:ch2").Clauses[0]
	if c.Kind != PSU || c.Rank.Channel != 2 || c.At != 0 {
		t.Fatalf("psu:ch2 clause = %+v", c)
	}
}

func TestParsePSUErrors(t *testing.T) {
	bad := []string{
		"psu:ch0/rk0", // psu targets a channel, not a rank
		"psu:2",       // missing ch prefix
		"psu:chx",     // not a number
		"psu:ch1@sometime",
		"psu",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestPSUValidatesChannel(t *testing.T) {
	dev := dram.MustDevice(dram.Default1TB(), dram.DefaultPowerModel(), dram.DefaultTiming())
	g := dev.Geometry()
	for _, s := range []string{"psu:ch99", "psu:ch-1"} {
		if _, err := NewInjector(MustParse(s), dev, sim.NewEngine()); err == nil {
			t.Errorf("NewInjector accepted %q for %v", s, g)
		}
	}
	if _, err := NewInjector(MustParse("psu:ch0"), dev, sim.NewEngine()); err != nil {
		t.Fatalf("NewInjector rejected a valid psu clause: %v", err)
	}
}

func TestPSUKillsEveryRankOnChannel(t *testing.T) {
	dev := dram.MustDevice(dram.Default1TB(), dram.DefaultPowerModel(), dram.DefaultTiming())
	g := dev.Geometry()
	eng := sim.NewEngine()
	inj, err := NewInjector(MustParse("psu:ch1:at=10ms"), dev, eng)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start(sim.Second)
	eng.Run()

	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			failed := dev.Failed(dram.RankID{Channel: ch, Rank: rk})
			if want := ch == 1; failed != want {
				t.Errorf("ch%d/rk%d failed = %v, want %v", ch, rk, failed, want)
			}
		}
	}
	st := inj.Stats()
	if st.PSUEvents != 1 || st.RankKills != int64(g.RanksPerChannel) {
		t.Fatalf("stats = %+v, want 1 psu event, %d rank kills", st, g.RanksPerChannel)
	}
}
