package fault

import (
	"strings"
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

func TestParseExpanderScopedTargets(t *testing.T) {
	spec := MustParse("kill:x2/ch0/rk0:at=1h; psu:x1/ch3:at=90m; storm:ch1/rk2")
	c := spec.Clauses
	if c[0].Kind != Kill || c[0].Expander != 2 || c[0].Rank != (dram.RankID{Channel: 0, Rank: 0}) || c[0].At != sim.Hour {
		t.Fatalf("kill clause = %+v", c[0])
	}
	if c[1].Kind != PSU || c[1].Expander != 1 || c[1].Rank != (dram.RankID{Channel: 3, Rank: WholeChannel}) {
		t.Fatalf("psu clause = %+v", c[1])
	}
	if c[2].Expander != AnyExpander {
		t.Fatalf("unscoped clause carries expander %d, want AnyExpander", c[2].Expander)
	}
}

func TestParseExpanderPSUShorthand(t *testing.T) {
	spec := MustParse("psu:x3/ch=1@90m")
	c := spec.Clauses[0]
	if c.Expander != 3 || c.Rank.Channel != 1 || c.Rank.Rank != WholeChannel || c.At != 90*sim.Minute {
		t.Fatalf("psu shorthand clause = %+v", c)
	}
}

func TestParseExpanderErrors(t *testing.T) {
	bad := []string{
		"kill:x/ch0/rk0",     // missing index
		"kill:x-1/ch0/rk0",   // negative index
		"kill:xq/ch0/rk0",    // non-numeric index
		"kill:x2",            // scope with no rank target
		"kill:x2/",           // scope with empty rank target
		"storm:x1x2/ch0/rk0", // double scope
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted a malformed expander target", s)
		}
	}
}

// TestInjectorRejectsExpanderScope pins the loud single-device error: an
// Injector is bound to one dram.Device, so clauses addressed to an expander
// must be split out by the rack front end first.
func TestInjectorRejectsExpanderScope(t *testing.T) {
	dev := dram.MustDevice(dram.Default1TB(), dram.DefaultPowerModel(), dram.DefaultTiming())
	_, err := NewInjector(MustParse("kill:x1/ch0/rk0"), dev, sim.NewEngine())
	if err == nil {
		t.Fatal("NewInjector accepted an expander-scoped clause")
	}
	if !strings.Contains(err.Error(), "x1") || !strings.Contains(err.Error(), "ForExpander") {
		t.Fatalf("rejection should name the expander and the fix, got: %v", err)
	}
}

func TestForExpanderSplitsSpec(t *testing.T) {
	spec := MustParse("seed=9; kill:x2/ch0/rk0:at=1h; storm:ch1/rk2; psu:x2/ch3; ue:x0/ch0/rk1")
	if got := spec.MaxExpander(); got != 2 {
		t.Fatalf("MaxExpander = %d, want 2", got)
	}

	x0 := spec.ForExpander(0)
	// Expander 0 owns the unscoped storm clause and the explicit x0 UE, with
	// the parent's seed so single-expander specs replay identically.
	if x0.Seed != 9 {
		t.Fatalf("expander-0 seed = %d, want parent seed 9", x0.Seed)
	}
	if len(x0.Clauses) != 2 || x0.Clauses[0].Kind != Storm || x0.Clauses[1].Kind != UE {
		t.Fatalf("expander-0 clauses = %+v", x0.Clauses)
	}

	x2 := spec.ForExpander(2)
	if len(x2.Clauses) != 2 || x2.Clauses[0].Kind != Kill || x2.Clauses[1].Kind != PSU {
		t.Fatalf("expander-2 clauses = %+v", x2.Clauses)
	}
	if x2.Seed == spec.Seed {
		t.Fatal("expander-2 sub-spec should derive a distinct seed")
	}
	for _, sub := range []Spec{x0, x2} {
		for _, c := range sub.Clauses {
			if c.Expander != AnyExpander {
				t.Fatalf("split clause still expander-scoped: %+v", c)
			}
		}
	}
	if got := spec.ForExpander(1).Clauses; len(got) != 0 {
		t.Fatalf("expander 1 should get no clauses, got %+v", got)
	}

	// The split sub-specs are plain single-device specs NewInjector accepts.
	dev := dram.MustDevice(dram.Default1TB(), dram.DefaultPowerModel(), dram.DefaultTiming())
	for _, sub := range []Spec{x0, x2} {
		if _, err := NewInjector(sub, dev, sim.NewEngine()); err != nil {
			t.Fatalf("split sub-spec rejected: %v", err)
		}
	}
}
