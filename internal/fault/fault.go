// Package fault is the deterministic fault-injection subsystem: a seeded,
// virtual-time-driven fault process attached to a dram.Device. Clauses of a
// textual spec compile into Poisson/burst correctable-error processes,
// one-shot uncorrectable errors, transition faults (a rank that takes an
// abnormal latency spike leaving self-refresh, or is effectively stuck
// there), and whole-rank failures — all scheduled on the internal/sim event
// heap so a run is exactly reproducible from its seed.
//
// Spec grammar (semicolon-separated clauses):
//
//	spec    := clause (";" clause)*
//	clause  := "seed=" int
//	         | kind ":" target [":" params]
//	kind    := "ce" | "storm" | "ue" | "wake" | "stuck" | "kill" | "psu"
//	target  := ["x" int "/"] rank              // optional expander scope
//	rank    := "ch" int "/rk" int
//	         | "ch" ["="] int ["@" duration]   // psu only: a whole channel
//	params  := param ("," param)*
//	param   := "rate=" float          // events per second (ce, storm)
//	         | "at=" duration         // activation time (default 0)
//	         | "dur=" duration        // active window (default: rest of run)
//	         | "n=" int               // errors per event (default 1)
//	         | "extra=" duration      // wake-fault latency (wake; default 50us)
//
// Durations use Go syntax ("90m", "1.5s", "400us"). "ce" is a background
// correctable-error process; "storm" is the same process with a default
// rate high enough to trip the health monitor's leaky bucket. "stuck" is
// "wake" with a very large default extra (the rank barely leaves
// self-refresh). Example:
//
//	seed=7;storm:ch1/rk2:at=90m,rate=2000,dur=60s;kill:ch3/rk5:at=3h
//
// "psu" is the correlated failure: one power-delivery fault takes out every
// rank on a channel at once, the scenario that stresses the health monitor's
// retirement capacity instead of one rank at a time. It targets a channel,
// not a rank — "psu:ch1:at=90m", or the shorthand "psu:ch=1@90m".
//
// The optional "xN/" prefix scopes a clause to expander N of a rack-scale
// run ("kill:x2/ch0/rk0", "psu:x1/ch3"). A single-device Injector rejects
// expander-scoped clauses loudly — only the rack front end (internal/rack)
// may consume them, by splitting the spec with Spec.ForExpander before
// building one Injector per expander. Unscoped clauses in a rack run apply
// to expander 0, so single-expander specs mean the same thing at rack scale.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// Kind is the clause type.
type Kind int

// Clause kinds.
const (
	// CE is a Poisson process of correctable errors on random segments of
	// the rank.
	CE Kind = iota
	// Storm is CE with a default rate chosen to trip the storm detector.
	Storm
	// UE is a one-shot uncorrectable error on a random segment of the rank.
	UE
	// Wake charges an abnormal extra latency on every self-refresh exit of
	// the rank for the clause window.
	Wake
	// Kill is a one-shot whole-rank failure.
	Kill
	// PSU is a one-shot correlated failure of every rank on a channel, as if
	// the channel's power supply died.
	PSU
)

// WholeChannel is the Clause.Rank.Rank sentinel for channel-scoped clauses
// (PSU): the clause targets every rank of Rank.Channel.
const WholeChannel = -1

// AnyExpander is the Clause.Expander sentinel for clauses without an "xN/"
// scope: the clause targets the (single) device the injector is bound to, or
// expander 0 of a rack.
const AnyExpander = -1

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CE:
		return "ce"
	case Storm:
		return "storm"
	case UE:
		return "ue"
	case Wake:
		return "wake"
	case Kill:
		return "kill"
	case PSU:
		return "psu"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Default clause parameters.
const (
	// DefaultCERate is the background correctable-error rate (events/s).
	DefaultCERate = 2.0
	// DefaultStormRate trips a DefaultHealthConfig leaky bucket within a
	// fraction of a second.
	DefaultStormRate = 2000.0
	// DefaultWakeExtra is the abnormal self-refresh-exit latency.
	DefaultWakeExtra = 50 * sim.Microsecond
	// StuckWakeExtra models a rank that barely leaves self-refresh.
	StuckWakeExtra = 400 * sim.Microsecond
)

// Clause is one compiled fault process.
type Clause struct {
	Kind     Kind
	Expander int // target expander ("xN/" prefix), or AnyExpander
	Rank     dram.RankID
	Rate     float64  // events per second (CE/Storm)
	At       sim.Time // activation time
	Dur      sim.Time // active window; 0 = until the horizon
	Count    int      // errors per event (CE/Storm/UE)
	Extra    sim.Time // wake-fault latency (Wake)
}

// Spec is a parsed fault specification.
type Spec struct {
	Seed    int64
	Clauses []Clause
}

// Parse compiles a textual fault spec. An empty string yields an empty spec.
func Parse(s string) (Spec, error) {
	spec := Spec{Seed: 1}
	for _, raw := range strings.Split(s, ";") {
		part := strings.TrimSpace(raw)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			seed, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			spec.Seed = seed
			continue
		}
		c, err := parseClause(part)
		if err != nil {
			return Spec{}, err
		}
		spec.Clauses = append(spec.Clauses, c)
	}
	return spec, nil
}

// MustParse is Parse that panics on error, for tests and fixed experiment
// specs.
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// MaxExpander reports the highest expander index any clause targets, or
// AnyExpander if the spec is entirely unscoped. Rack front ends use it to
// reject specs that address expanders outside the rack.
func (s Spec) MaxExpander() int {
	max := AnyExpander
	for _, c := range s.Clauses {
		if c.Expander > max {
			max = c.Expander
		}
	}
	return max
}

// ForExpander projects the spec onto expander x: clauses scoped to x — plus,
// on expander 0, the unscoped clauses — survive with their Expander field
// cleared, so the result is a plain single-device spec NewInjector accepts.
// Each expander's sub-spec derives its own seed from the parent seed and the
// expander index, so per-clause arrival streams on different expanders are
// decorrelated but exactly reproducible.
func (s Spec) ForExpander(x int) Spec {
	out := Spec{Seed: s.Seed + int64(x)*0x9e3779b9}
	for _, c := range s.Clauses {
		if c.Expander == x || (c.Expander == AnyExpander && x == 0) {
			c.Expander = AnyExpander
			out.Clauses = append(out.Clauses, c)
		}
	}
	return out
}

func parseClause(s string) (Clause, error) {
	fields := strings.SplitN(s, ":", 3)
	if len(fields) < 2 {
		return Clause{}, fmt.Errorf("fault: clause %q needs kind:chN/rkM", s)
	}
	c := Clause{Count: 1, Expander: AnyExpander}
	switch strings.TrimSpace(fields[0]) {
	case "ce":
		c.Kind, c.Rate = CE, DefaultCERate
	case "storm":
		c.Kind, c.Rate = Storm, DefaultStormRate
	case "ue":
		c.Kind = UE
	case "wake":
		c.Kind, c.Extra = Wake, DefaultWakeExtra
	case "stuck":
		c.Kind, c.Extra = Wake, StuckWakeExtra
	case "kill":
		c.Kind = Kill
	case "psu":
		c.Kind = PSU
	default:
		return Clause{}, fmt.Errorf("fault: unknown kind %q in clause %q", fields[0], s)
	}

	rank := strings.TrimSpace(fields[1])
	// Optional expander scope: "xN/" ahead of the rank or channel target.
	if rest, ok := strings.CutPrefix(rank, "x"); ok {
		xs, tail, found := strings.Cut(rest, "/")
		if !found {
			return Clause{}, fmt.Errorf("fault: bad target %q in clause %q (want xN/chM...)", rank, s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(xs))
		if err != nil || n < 0 {
			return Clause{}, fmt.Errorf("fault: bad expander %q in clause %q (want xN/ with N >= 0)", xs, s)
		}
		c.Expander, rank = n, strings.TrimSpace(tail)
	}
	if c.Kind == PSU {
		// Channel-scoped target: "chN" or "ch=N", with an optional "@t"
		// activation shorthand ("psu:ch=1@90m" == "psu:ch1:at=90m").
		if ch, at, ok := strings.Cut(rank, "@"); ok {
			t, err := parseDuration(strings.TrimSpace(at))
			if err != nil {
				return Clause{}, fmt.Errorf("fault: bad activation %q in clause %q: %v", at, s, err)
			}
			rank, c.At = strings.TrimSpace(ch), t
		}
		chs, ok := strings.CutPrefix(rank, "ch")
		if !ok {
			return Clause{}, fmt.Errorf("fault: bad channel %q in clause %q (want chN)", rank, s)
		}
		chs = strings.TrimPrefix(chs, "=")
		n, err := strconv.Atoi(strings.TrimSpace(chs))
		if err != nil {
			return Clause{}, fmt.Errorf("fault: bad channel %q in clause %q (want chN)", rank, s)
		}
		c.Rank = dram.RankID{Channel: n, Rank: WholeChannel}
	} else if _, err := fmt.Sscanf(rank, "ch%d/rk%d", &c.Rank.Channel, &c.Rank.Rank); err != nil {
		return Clause{}, fmt.Errorf("fault: bad rank %q in clause %q (want chN/rkM)", rank, s)
	}

	if len(fields) == 3 {
		for _, kv := range strings.Split(fields[2], ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Clause{}, fmt.Errorf("fault: bad param %q in clause %q", kv, s)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "rate":
				c.Rate, err = strconv.ParseFloat(val, 64)
				if err == nil && c.Rate <= 0 {
					err = fmt.Errorf("rate must be positive")
				}
			case "at":
				c.At, err = parseDuration(val)
			case "dur":
				c.Dur, err = parseDuration(val)
			case "n":
				c.Count, err = strconv.Atoi(val)
				if err == nil && c.Count <= 0 {
					err = fmt.Errorf("count must be positive")
				}
			case "extra":
				c.Extra, err = parseDuration(val)
			default:
				err = fmt.Errorf("unknown param")
			}
			if err != nil {
				return Clause{}, fmt.Errorf("fault: param %q in clause %q: %v", kv, s, err)
			}
		}
	}
	return c, nil
}

func parseDuration(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("duration must be non-negative")
	}
	return sim.Time(d.Nanoseconds()), nil
}

// Stats counts what the injector actually delivered.
type Stats struct {
	CorrectableEvents   int64
	CorrectableErrors   int64 // sum of per-event counts
	UncorrectableEvents int64
	WakeFaultsArmed     int64
	RankKills           int64 // individual rank failures (kill and psu alike)
	PSUEvents           int64 // correlated whole-channel failures delivered
}

// Injector drives a Spec against a device on a sim engine.
type Injector struct {
	spec  Spec
	dev   *dram.Device
	eng   *sim.Engine
	codec *dram.AddressCodec
	stats Stats
}

// NewInjector validates the spec against the device geometry and binds it to
// the engine. Start must be called to arm the clauses.
func NewInjector(spec Spec, dev *dram.Device, eng *sim.Engine) (*Injector, error) {
	g := dev.Geometry()
	for _, c := range spec.Clauses {
		if c.Expander != AnyExpander {
			return nil, fmt.Errorf("fault: clause %s targets expander x%d but the injector is bound to a single device; "+
				"expander-scoped clauses are only valid in rack runs (split the spec with Spec.ForExpander)",
				c.Kind, c.Expander)
		}
		if c.Kind == PSU {
			if c.Rank.Channel < 0 || c.Rank.Channel >= g.Channels || c.Rank.Rank != WholeChannel {
				return nil, fmt.Errorf("fault: clause %s targets channel %d outside %v", c.Kind, c.Rank.Channel, g)
			}
			continue
		}
		if c.Rank.Channel < 0 || c.Rank.Channel >= g.Channels ||
			c.Rank.Rank < 0 || c.Rank.Rank >= g.RanksPerChannel {
			return nil, fmt.Errorf("fault: clause %s targets rank %v outside %v", c.Kind, c.Rank, g)
		}
	}
	return &Injector{spec: spec, dev: dev, eng: eng, codec: dev.Codec()}, nil
}

// Start schedules every clause on the engine; processes stop at horizon.
// Each clause draws from its own seeded stream, so adding or reordering
// clauses does not perturb the arrival times of the others.
func (in *Injector) Start(horizon sim.Time) {
	for i, c := range in.spec.Clauses {
		rng := rand.New(rand.NewSource(in.spec.Seed*1_000_003 + int64(i)))
		end := horizon
		if c.Dur > 0 && c.At+c.Dur < end {
			end = c.At + c.Dur
		}
		switch c.Kind {
		case CE, Storm:
			in.schedulePoisson(c, rng, end)
		case UE:
			c := c
			in.eng.At(c.At, func(now sim.Time) {
				dsn := in.randSegment(c.Rank, rng)
				if err := in.dev.RaiseUncorrectable(dsn, now); err != nil {
					panic(err) // validated geometry: unreachable
				}
				in.stats.UncorrectableEvents++
			})
		case Wake:
			c := c
			in.eng.At(c.At, func(sim.Time) {
				in.dev.SetWakeFault(c.Rank, c.Extra)
				in.stats.WakeFaultsArmed++
			})
			if end < horizon {
				in.eng.At(end, func(sim.Time) {
					in.dev.SetWakeFault(c.Rank, 0)
				})
			}
		case Kill:
			c := c
			in.eng.At(c.At, func(now sim.Time) {
				in.dev.FailRank(c.Rank, now)
				in.stats.RankKills++
			})
		case PSU:
			c := c
			in.eng.At(c.At, func(now sim.Time) {
				// One instant, every rank of the channel: the failures land
				// in ascending rank order so downstream event handling stays
				// deterministic.
				for r := 0; r < in.dev.Geometry().RanksPerChannel; r++ {
					in.dev.FailRank(dram.RankID{Channel: c.Rank.Channel, Rank: r}, now)
					in.stats.RankKills++
				}
				in.stats.PSUEvents++
			})
		}
	}
}

// schedulePoisson arms a correctable-error arrival process over [c.At, end):
// exponential interarrivals at c.Rate events/s, each event raising c.Count
// errors on a uniformly random segment of the rank.
func (in *Injector) schedulePoisson(c Clause, rng *rand.Rand, end sim.Time) {
	var arm func(at sim.Time)
	arm = func(at sim.Time) {
		next := at + sim.Time(rng.ExpFloat64()/c.Rate*float64(sim.Second))
		if next >= end {
			return
		}
		in.eng.At(next, func(now sim.Time) {
			dsn := in.randSegment(c.Rank, rng)
			if err := in.dev.RaiseCorrectable(dsn, c.Count, now); err != nil {
				panic(err) // validated geometry: unreachable
			}
			in.stats.CorrectableEvents++
			in.stats.CorrectableErrors += int64(c.Count)
			arm(now)
		})
	}
	arm(c.At)
}

// randSegment picks a uniformly random segment slot on the rank.
func (in *Injector) randSegment(id dram.RankID, rng *rand.Rand) dram.DSN {
	idx := rng.Int63n(in.dev.Geometry().SegmentsPerRank())
	return in.codec.EncodeDSN(dram.Loc{Rank: id.Rank, Channel: id.Channel, Index: idx})
}

// Stats reports delivered fault counts.
func (in *Injector) Stats() Stats { return in.stats }

// Spec returns the parsed spec the injector runs.
func (in *Injector) Spec() Spec { return in.spec }
