package cxl

import (
	"testing"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/sim"
)

func newPort(t *testing.T, lat sim.Time) *Port {
	t.Helper()
	cfg := core.DefaultConfig(dram.Geometry{
		Channels:        4,
		RanksPerChannel: 4,
		BanksPerRank:    16,
		SegmentBytes:    2 * dram.MiB,
		RankBytes:       64 * dram.MiB,
	})
	cfg.AUBytes = 16 * dram.MiB
	d, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPort(d, lat)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPortValidation(t *testing.T) {
	if _, err := NewPort(nil, 0); err == nil {
		t.Fatal("nil DTL accepted")
	}
	d := newPort(t, 0).DTL()
	if _, err := NewPort(d, -1); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestLatencyConstants(t *testing.T) {
	if NativeDRAMLatency != 121 || CXLMemoryLatency != 210 {
		t.Fatalf("latency constants = %v / %v", NativeDRAMLatency, CXLMemoryLatency)
	}
}

func TestAccessChargesLinkLatency(t *testing.T) {
	p := newPort(t, CXLMemoryLatency)
	a, err := p.DTL().AllocateVM(1, 0, 16*dram.MiB, 0)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := p.Access(a.AUBases[0], false, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= CXLMemoryLatency {
		t.Fatalf("latency %v does not include device time beyond the link", lat)
	}
	if p.Accesses() != 1 {
		t.Fatalf("accesses = %d", p.Accesses())
	}
	if p.MeanLatency() != float64(lat) {
		t.Fatalf("mean = %v, want %v", p.MeanLatency(), lat)
	}
	if p.LinkLatency() != CXLMemoryLatency {
		t.Fatalf("link latency = %v", p.LinkLatency())
	}
}

func TestCXLSlowerThanNative(t *testing.T) {
	run := func(lat sim.Time) float64 {
		p := newPort(t, lat)
		a, err := p.DTL().AllocateVM(1, 0, 16*dram.MiB, 0)
		if err != nil {
			t.Fatal(err)
		}
		now := sim.Time(0)
		for i := 0; i < 1000; i++ {
			if _, err := p.Access(a.AUBases[0]+dram.HPA(i*64), i%3 == 0, now); err != nil {
				t.Fatal(err)
			}
			now += 500
		}
		return p.MeanLatency()
	}
	native := run(NativeDRAMLatency)
	remote := run(CXLMemoryLatency)
	diff := remote - native
	if diff < 80 || diff > 100 {
		t.Fatalf("CXL-native latency gap = %.1f ns, want ~89", diff)
	}
}

func TestAMATReflectsMeasuredRatios(t *testing.T) {
	p := newPort(t, CXLMemoryLatency)
	a, err := p.DTL().AllocateVM(1, 0, 64*dram.MiB, 0)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		base := a.AUBases[i%len(a.AUBases)]
		off := int64(i%8) * 2 * dram.MiB
		if _, err := p.Access(base+dram.HPA(off), false, now); err != nil {
			t.Fatal(err)
		}
		now += 300
	}
	m := p.AMAT()
	if m.CXLMemLat != CXLMemoryLatency {
		t.Fatalf("AMAT link latency = %v", m.CXLMemLat)
	}
	if m.L1Miss < 0 || m.L1Miss > 1 || m.L2Miss < 0 || m.L2Miss > 1 {
		t.Fatalf("miss ratios out of range: %v %v", m.L1Miss, m.L2Miss)
	}
	// Translation overhead should be tiny relative to the link (the
	// paper's headline: +4.2ns on 210ns, <2%).
	if m.Translation() > 0.2*float64(CXLMemoryLatency) {
		t.Fatalf("translation %.1f ns too large", m.Translation())
	}
}

func TestMeanLatencyEmptyPort(t *testing.T) {
	p := newPort(t, CXLMemoryLatency)
	if p.MeanLatency() != 0 {
		t.Fatal("mean latency of idle port should be 0")
	}
}

func TestPortErrorsPropagate(t *testing.T) {
	p := newPort(t, CXLMemoryLatency)
	if _, err := p.Access(0, false, 0); err == nil {
		t.Fatal("access to unallocated memory should fail through the port")
	}
	if p.Accesses() != 0 {
		t.Fatal("failed access counted")
	}
}
