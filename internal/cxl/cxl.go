// Package cxl models the host-visible access path to the CXL memory
// expander: a constant link/protocol latency (measured at 210 ns by the
// paper versus 121 ns native DRAM, Table 1) in front of the DTL-equipped
// device. It substitutes the paper's Quartz-based latency emulation: both
// treat remote access cost as a single additive constant.
package cxl

import (
	"fmt"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/sim"
)

// Paper-measured access latencies (Table 1).
const (
	NativeDRAMLatency = 121 * sim.Nanosecond
	CXLMemoryLatency  = 210 * sim.Nanosecond
)

// Port is the host-side access point: every access pays the link latency,
// then the DTL translation and DRAM service time.
type Port struct {
	dtl     *core.DTL
	linkLat sim.Time

	accesses   int64
	totalLatNs int64
}

// NewPort attaches a host port with the given link latency to a DTL device.
func NewPort(d *core.DTL, linkLat sim.Time) (*Port, error) {
	if d == nil {
		return nil, fmt.Errorf("cxl: nil DTL")
	}
	if linkLat < 0 {
		return nil, fmt.Errorf("cxl: negative link latency %v", linkLat)
	}
	return &Port{dtl: d, linkLat: linkLat}, nil
}

// DTL returns the attached translation layer.
func (p *Port) DTL() *core.DTL { return p.dtl }

// LinkLatency returns the configured link latency.
func (p *Port) LinkLatency() sim.Time { return p.linkLat }

// Access performs one host load/store at virtual time now and returns the
// end-to-end latency (link + translation + DRAM service).
func (p *Port) Access(hpa dram.HPA, write bool, now sim.Time) (sim.Time, error) {
	res, err := p.dtl.Access(hpa, write, now+p.linkLat)
	if err != nil {
		return 0, err
	}
	lat := p.linkLat + res.TotalLat()
	p.accesses++
	p.totalLatNs += int64(lat)
	return lat, nil
}

// MeanLatency reports the average end-to-end access latency observed.
func (p *Port) MeanLatency() float64 {
	if p.accesses == 0 {
		return 0
	}
	return float64(p.totalLatNs) / float64(p.accesses)
}

// Accesses reports how many accesses the port has serviced.
func (p *Port) Accesses() int64 { return p.accesses }

// AMAT evaluates the §6.1 analytic model against the port's DTL using its
// measured segment-mapping-cache miss ratios.
func (p *Port) AMAT() core.AMATModel {
	return core.AMATFromConfig(p.dtl.Config(), p.linkLat, p.dtl.SMCStats())
}
