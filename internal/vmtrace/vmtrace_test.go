package vmtrace

import (
	"testing"

	"dtl/internal/sim"
)

func TestGenerateDeterministicAndSorted(t *testing.T) {
	cfg := DefaultGenConfig()
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != cfg.NumVMs {
		t.Fatalf("generated %d VMs, want %d", len(a), cfg.NumVMs)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic generation at %d", i)
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
}

func TestGeneratedVMShapes(t *testing.T) {
	vms := Generate(DefaultGenConfig())
	for _, vm := range vms {
		if vm.VCPUs < 1 || vm.VCPUs > 24 {
			t.Fatalf("vm %d has %d vcpus", vm.ID, vm.VCPUs)
		}
		gbPerVCPU := float64(vm.MemBytes) / float64(vm.VCPUs) / (1 << 30)
		if gbPerVCPU < 2 || gbPerVCPU > 8 {
			t.Fatalf("vm %d has %.1f GB/vCPU, want 2-8", vm.ID, gbPerVCPU)
		}
		if vm.MemBytes%(2<<30) != 0 {
			t.Fatalf("vm %d memory %d not a multiple of the 2GB AU", vm.ID, vm.MemBytes)
		}
		// Pre-scheduling, End stashes the lifetime: a multiple of 5 min.
		if vm.End%Interval != 0 || vm.End <= 0 {
			t.Fatalf("vm %d lifetime %v not a positive multiple of 5min", vm.ID, vm.End)
		}
		if vm.Arrival%Interval != 0 {
			t.Fatalf("vm %d arrival %v not interval aligned", vm.ID, vm.Arrival)
		}
	}
}

func TestWorkloadAssignment(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Workloads = []string{"a", "b", "c"}
	vms := Generate(cfg)
	seen := map[string]int{}
	for _, vm := range vms {
		seen[vm.Workload]++
	}
	for _, w := range cfg.Workloads {
		if seen[w] == 0 {
			t.Fatalf("workload %s never assigned", w)
		}
	}
}

func TestScheduleRespectsCapacity(t *testing.T) {
	vms := Generate(DefaultGenConfig())
	srv := DefaultServer()
	_, snaps, err := Schedule(vms, srv, 6*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != int(6*sim.Hour/Interval)+1 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	for _, s := range snaps {
		if s.UsedVCPUs > srv.VCPUs {
			t.Fatalf("at %v: %d vcpus used > %d", s.At, s.UsedVCPUs, srv.VCPUs)
		}
		if s.UsedMem > srv.MemBytes {
			t.Fatalf("at %v: %d mem used > %d", s.At, s.UsedMem, srv.MemBytes)
		}
		if s.UsedVCPUs < 0 || s.UsedMem < 0 {
			t.Fatalf("negative usage at %v: %+v", s.At, s)
		}
	}
}

func TestFig1MeanUtilizationBelowHalf(t *testing.T) {
	// The paper's Figure 1 headline: average memory capacity usage < 50%.
	vms := Generate(DefaultGenConfig())
	srv := DefaultServer()
	_, snaps, err := Schedule(vms, srv, 6*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mean := MeanMemUtilization(snaps, srv)
	if mean <= 0.10 || mean >= 0.50 {
		t.Fatalf("mean memory utilization %.3f, want in (0.10, 0.50)", mean)
	}
	if peak := PeakMemUtilization(snaps, srv); peak > 1.0 {
		t.Fatalf("peak utilization %.3f > 1", peak)
	}
}

func TestScheduleEventsConsistent(t *testing.T) {
	vms := Generate(DefaultGenConfig())
	srv := DefaultServer()
	events, _, err := Schedule(vms, srv, 6*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	placed := map[int]bool{}
	for i, ev := range events {
		if i > 0 && events[i].At < events[i-1].At {
			t.Fatalf("events not chronological at %d", i)
		}
		if ev.Depart {
			if !placed[ev.VM.ID] {
				t.Fatalf("vm %d departed before arrival", ev.VM.ID)
			}
			placed[ev.VM.ID] = false
		} else {
			if placed[ev.VM.ID] {
				t.Fatalf("vm %d placed twice", ev.VM.ID)
			}
			placed[ev.VM.ID] = true
			if ev.VM.End <= ev.VM.Start {
				t.Fatalf("vm %d has non-positive scheduled lifetime", ev.VM.ID)
			}
			if ev.VM.Lifetime()%Interval != 0 {
				t.Fatalf("vm %d lifetime %v not interval aligned", ev.VM.ID, ev.VM.Lifetime())
			}
		}
	}
}

func TestScheduleInvalidServer(t *testing.T) {
	if _, _, err := Schedule(nil, Server{}, sim.Hour); err == nil {
		t.Fatal("invalid server accepted")
	}
}

func TestUtilizationHelpersEmpty(t *testing.T) {
	if got := MeanMemUtilization(nil, DefaultServer()); got != 0 {
		t.Fatalf("mean on empty = %v", got)
	}
	if got := PeakMemUtilization(nil, DefaultServer()); got != 0 {
		t.Fatalf("peak on empty = %v", got)
	}
}

func TestLifetimeDistributionHeavyTailed(t *testing.T) {
	// Most VMs are short-lived; a tail runs for hours.
	vms := Generate(GenConfig{NumVMs: 2000, Horizon: 6 * sim.Hour, Seed: 3})
	short, long := 0, 0
	for _, vm := range vms {
		life := vm.End // pre-schedule: End stashes the lifetime
		if life <= 2*Interval {
			short++
		}
		if life >= 24*Interval {
			long++
		}
	}
	if short < len(vms)/3 {
		t.Fatalf("short-lived share %d/%d too low", short, len(vms))
	}
	if long == 0 {
		t.Fatal("no long-lived tail")
	}
	if long > short {
		t.Fatal("distribution not heavy-tailed toward short lifetimes")
	}
}

func TestSmallVMsDominate(t *testing.T) {
	vms := Generate(GenConfig{NumVMs: 2000, Horizon: 6 * sim.Hour, Seed: 4})
	small := 0
	for _, vm := range vms {
		if vm.VCPUs <= 2 {
			small++
		}
	}
	if small < len(vms)/2 {
		t.Fatalf("small-VM share %d/%d below half (Azure-like populations are small-VM dominated)", small, len(vms))
	}
}

func TestQueuedVMsEventuallyPlaced(t *testing.T) {
	// Overload the server: every generated VM must still be placed at most
	// once and never double-departed, even if delayed.
	cfg := GenConfig{NumVMs: 300, Horizon: 2 * sim.Hour, Seed: 5}
	vms := Generate(cfg)
	srv := Server{VCPUs: 8, MemBytes: 64 << 30} // tiny server forces queueing
	events, _, err := Schedule(vms, srv, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	placed := map[int]int{}
	departed := map[int]int{}
	for _, ev := range events {
		if ev.Depart {
			departed[ev.VM.ID]++
		} else {
			placed[ev.VM.ID]++
		}
	}
	for id, n := range placed {
		if n != 1 {
			t.Fatalf("vm %d placed %d times", id, n)
		}
		if departed[id] > 1 {
			t.Fatalf("vm %d departed %d times", id, departed[id])
		}
	}
	for id := range departed {
		if placed[id] == 0 {
			t.Fatalf("vm %d departed without being placed", id)
		}
	}
}

// TestScheduleIsDeterministic: identical inputs must yield an identical event
// list. Departures are discovered by iterating a map, so the sort has to
// impose a total order — anything weaker lets same-boundary departures come
// out shuffled, which downstream perturbs the DTL's free-queue order.
func TestScheduleIsDeterministic(t *testing.T) {
	cfg := GenConfig{NumVMs: 500, Horizon: 3 * sim.Hour, Seed: 7}
	srv := Server{VCPUs: 16, MemBytes: 96 << 30} // small enough to force churn
	for trial := 0; trial < 3; trial++ {
		a, _, err := Schedule(Generate(cfg), srv, cfg.Horizon)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := Schedule(Generate(cfg), srv, cfg.Horizon)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d events", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: event %d differs: %+v vs %+v", trial, i, a[i], b[i])
			}
		}
	}
}
