// Package vmtrace synthesizes a cloud VM population in the style of the
// Microsoft Azure public dataset used by the paper (Figure 1): VMs with
// discrete vCPU counts, vMemory sizes, and lifetimes quantized to 5-minute
// multiples, scheduled onto a server with fixed vCPU and memory capacity.
// The generated 6-hour schedule reproduces the paper's headline property:
// average memory-capacity usage below 50%.
package vmtrace

import (
	"fmt"
	"math/rand"
	"sort"

	"dtl/internal/sim"
)

// Interval is the scheduling/lifetime quantum (5 minutes, per the dataset).
const Interval = 5 * sim.Minute

// VM is one virtual machine instance.
type VM struct {
	ID       int
	VCPUs    int
	MemBytes int64
	// Arrival is when the VM is submitted; Start/End are filled by the
	// scheduler once it is placed.
	Arrival sim.Time
	Start   sim.Time
	End     sim.Time
	// Workload names the CloudSuite profile the VM runs.
	Workload string
}

// Lifetime reports the VM's scheduled residency.
func (v VM) Lifetime() sim.Time { return v.End - v.Start }

// GenConfig controls the population generator.
type GenConfig struct {
	NumVMs int
	// Horizon is the span over which arrivals are spread.
	Horizon sim.Time
	// Workloads to assign round-robin-with-jitter; empty means "mixed".
	Workloads []string
	Seed      int64
}

// DefaultGenConfig mirrors the paper's Figure 1 setup: 400 VMs over 6 hours.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		NumVMs:  400,
		Horizon: 6 * sim.Hour,
		Seed:    1,
	}
}

// vCPU size distribution loosely following the Azure dataset: small VMs
// dominate.
var vcpuChoices = []struct {
	vcpus  int
	weight float64
}{
	{1, 0.40}, {2, 0.30}, {4, 0.18}, {8, 0.08}, {16, 0.03}, {24, 0.01},
}

// lifetimeBuckets: most VMs are short-lived; a tail runs for hours
// (heavy-tailed, as in Resource Central).
var lifetimeBuckets = []struct {
	intervals int // multiples of 5 minutes
	weight    float64
}{
	{1, 0.35}, {2, 0.27}, {3, 0.15}, {6, 0.12}, {12, 0.06}, {24, 0.03}, {48, 0.02},
}

// Generate produces the VM population, sorted by arrival time. Memory is
// provisioned at 2 GiB per vCPU minimum with a bias toward 4-11 GB/vCPU
// (the typical range cited in §5.1), quantized to the 2 GB allocation unit.
func Generate(cfg GenConfig) []VM {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vms := make([]VM, cfg.NumVMs)
	for i := range vms {
		vcpus := pickWeightedVCPU(rng)
		// 2-8 GB per vCPU, within the 4-11 GB/vCPU range §5.1 cites for
		// typical VM configurations, averaging ~4 GB/vCPU.
		gbPerVCPU := 2
		switch r := rng.Float64(); {
		case r < 0.15:
			gbPerVCPU = 8
		case r < 0.55:
			gbPerVCPU = 4
		}
		mem := int64(vcpus) * int64(gbPerVCPU) << 30
		// The 2 GB allocation unit floor (§3.2).
		if mem < 2<<30 {
			mem = 2 << 30
		}
		life := pickWeightedLifetime(rng)
		wl := ""
		if len(cfg.Workloads) > 0 {
			wl = cfg.Workloads[rng.Intn(len(cfg.Workloads))]
		}
		vms[i] = VM{
			ID:       i,
			VCPUs:    vcpus,
			MemBytes: mem,
			Arrival:  sim.Time(rng.Int63n(int64(cfg.Horizon)/int64(Interval))) * Interval,
			End:      sim.Time(life) * Interval, // temporarily holds lifetime
			Workload: wl,
		}
	}
	sort.Slice(vms, func(i, j int) bool {
		if vms[i].Arrival != vms[j].Arrival {
			return vms[i].Arrival < vms[j].Arrival
		}
		return vms[i].ID < vms[j].ID
	})
	return vms
}

func pickWeightedVCPU(rng *rand.Rand) int {
	x := rng.Float64()
	for _, c := range vcpuChoices {
		x -= c.weight
		if x < 0 {
			return c.vcpus
		}
	}
	return vcpuChoices[len(vcpuChoices)-1].vcpus
}

func pickWeightedLifetime(rng *rand.Rand) int {
	x := rng.Float64()
	for _, c := range lifetimeBuckets {
		x -= c.weight
		if x < 0 {
			return c.intervals
		}
	}
	return lifetimeBuckets[len(lifetimeBuckets)-1].intervals
}

// Server describes the schedulable capacity.
type Server struct {
	VCPUs    int
	MemBytes int64
}

// DefaultServer is the paper's host: 48 vCPUs, 384 GB.
func DefaultServer() Server {
	return Server{VCPUs: 48, MemBytes: 384 << 30}
}

// Event is a VM placement or departure in the schedule.
type Event struct {
	At     sim.Time
	VM     VM
	Depart bool
}

// Snapshot is the resource usage at one 5-minute boundary.
type Snapshot struct {
	At        sim.Time
	UsedVCPUs int
	UsedMem   int64
	ActiveVMs int
}

// Schedule places the VM population on the server first-come-first-served;
// a VM that does not fit at its arrival is retried at each subsequent
// interval boundary (queueing, as a cloud scheduler would). It returns the
// chronological event list and per-interval snapshots over the horizon.
func Schedule(vms []VM, srv Server, horizon sim.Time) ([]Event, []Snapshot, error) {
	if srv.VCPUs <= 0 || srv.MemBytes <= 0 {
		return nil, nil, fmt.Errorf("vmtrace: invalid server %+v", srv)
	}
	type pending struct{ vm VM }
	var queue []pending
	var events []Event
	var snaps []Snapshot

	usedCPU := 0
	usedMem := int64(0)
	active := map[int]VM{}
	next := 0

	for t := sim.Time(0); t <= horizon; t += Interval {
		// Departures first: capacity freed at interval boundaries.
		for id, vm := range active {
			if vm.End <= t {
				usedCPU -= vm.VCPUs
				usedMem -= vm.MemBytes
				delete(active, id)
				events = append(events, Event{At: t, VM: vm, Depart: true})
			}
		}
		// Admit arrivals due by now into the queue.
		for next < len(vms) && vms[next].Arrival <= t {
			queue = append(queue, pending{vms[next]})
			next++
		}
		// Place as many queued VMs as fit, FCFS.
		var still []pending
		for _, p := range queue {
			vm := p.vm
			if usedCPU+vm.VCPUs <= srv.VCPUs && usedMem+vm.MemBytes <= srv.MemBytes {
				life := vm.End // lifetime was stashed in End by Generate
				vm.Start = t
				vm.End = t + life
				usedCPU += vm.VCPUs
				usedMem += vm.MemBytes
				active[vm.ID] = vm
				events = append(events, Event{At: t, VM: vm})
			} else {
				still = append(still, p)
			}
		}
		queue = still

		snaps = append(snaps, Snapshot{
			At:        t,
			UsedVCPUs: usedCPU,
			UsedMem:   usedMem,
			ActiveVMs: len(active),
		})
	}
	sortEvents(events)
	return events, snaps, nil
}

func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		// Departures before arrivals at the same boundary.
		if events[i].Depart != events[j].Depart {
			return events[i].Depart
		}
		// Total order: departures come out of a map iteration, so without an
		// ID tiebreak two VMs leaving at the same boundary would be released
		// in random order — enough to perturb the DTL's free-queue order and
		// make "identical" runs diverge.
		return events[i].VM.ID < events[j].VM.ID
	})
}

// MeanMemUtilization reports the average fraction of server memory reserved
// across the snapshots.
func MeanMemUtilization(snaps []Snapshot, srv Server) float64 {
	if len(snaps) == 0 {
		return 0
	}
	var sum float64
	for _, s := range snaps {
		sum += float64(s.UsedMem) / float64(srv.MemBytes)
	}
	return sum / float64(len(snaps))
}

// PeakMemUtilization reports the maximum memory reservation fraction.
func PeakMemUtilization(snaps []Snapshot, srv Server) float64 {
	var peak float64
	for _, s := range snaps {
		if u := float64(s.UsedMem) / float64(srv.MemBytes); u > peak {
			peak = u
		}
	}
	return peak
}
