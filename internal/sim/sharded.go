// Sharded deterministic execution: several Engines — one per shard plus one
// global — advance concurrently under a barrier protocol that makes the run
// byte-identical to a serial Engine executing the same model.
//
// The decomposition mirrors ramulator-style per-channel memory controllers:
// a shard owns a disjoint slice of the model (a channel or rank group) whose
// events read and write only shard-local state, so shards may fire their
// events concurrently without synchronizing per event. The only cross-shard
// seams — migrations, snapshots, health retirement, end-of-run probes — live
// on the global engine, and the barrier protocol serializes them:
//
//  1. The coordinator peeks the global engine's next event time B.
//  2. Every shard drains its events strictly before B in parallel
//     (Engine.drainBefore), then parks with its clock at B.
//  3. The coordinator fires every global event scheduled at exactly B, in
//     insertion order, on its own goroutine. Global events may read any
//     shard's state and schedule onto any shard at ≥ B.
//  4. Repeat until the global queue is exhausted, then drain the shards.
//
// Determinism is by construction, not by locking: each shard fires its own
// events in the same (time, seq) order a serial engine would, the global
// events interleave at exactly the same boundaries on a single goroutine,
// and the tie-break is fixed — a global event at time B fires after all
// shard events < B and before any shard event at B. The channel send that
// starts a round and the WaitGroup that ends it give the happens-before
// edges the memory model needs; no other synchronization exists, which is
// also why a shard event must never touch another shard's state or the
// global engine (see the method comments).
package sim

import (
	"fmt"
	"sync"
)

// drainCmd is one barrier-round instruction for a shard worker.
type drainCmd struct {
	mode  uint8
	limit Time
}

const (
	cmdDrainBefore uint8 = iota // fire events < limit, clock → limit
	cmdDrain                    // fire events ≤ limit, clock → limit
	cmdRunAll                   // fire everything the shard has
)

// ShardedEngine coordinates per-shard event heaps and virtual clocks with a
// global timeline for cross-shard events. Construct with NewSharded, schedule
// shard-local work via Shard(i) and cross-shard work via Global(), then call
// Run or RunUntil; Close releases the worker goroutines.
//
// Scheduling rules (violations are data races, caught under -race):
//   - Before Run/RunUntil and from global events: any engine may be used.
//   - From a shard's own events: only that shard's engine.
//   - Shard events must not schedule onto other shards or the global engine;
//     route cross-shard effects through a global event instead.
type ShardedEngine struct {
	global *Engine
	shards []*Engine
	cmds   []chan drainCmd // nil for a single shard (runs inline)
	wg     sync.WaitGroup
	closed bool
}

// NewSharded builds a sharded engine with the given shard count (≥ 1) and
// starts one worker goroutine per shard (none for a single shard, which runs
// inline and is byte-for-byte the serial engine).
func NewSharded(shards int) *ShardedEngine {
	if shards < 1 {
		panic(fmt.Sprintf("sim: NewSharded(%d): need at least one shard", shards))
	}
	s := &ShardedEngine{global: NewEngine(), shards: make([]*Engine, shards)}
	for i := range s.shards {
		s.shards[i] = NewEngine()
	}
	if shards > 1 {
		s.cmds = make([]chan drainCmd, shards)
		for i := range s.cmds {
			s.cmds[i] = make(chan drainCmd)
			go s.work(s.shards[i], s.cmds[i])
		}
	}
	return s
}

func (s *ShardedEngine) work(e *Engine, cmds <-chan drainCmd) {
	for c := range cmds {
		runDrainCmd(e, c)
		s.wg.Done()
	}
}

func runDrainCmd(e *Engine, c drainCmd) {
	switch c.mode {
	case cmdDrainBefore:
		e.drainBefore(c.limit)
	case cmdDrain:
		e.Drain(c.limit)
	default:
		e.Run()
	}
}

// dispatch runs one command on every shard and waits for all of them: the
// send is the happens-before edge into the round, the WaitGroup the edge out.
// The steady state allocates nothing.
func (s *ShardedEngine) dispatch(c drainCmd) {
	if s.cmds == nil {
		runDrainCmd(s.shards[0], c)
		return
	}
	s.wg.Add(len(s.cmds))
	for _, ch := range s.cmds {
		ch <- c
	}
	s.wg.Wait()
}

// Shards reports the shard count.
func (s *ShardedEngine) Shards() int { return len(s.shards) }

// Shard returns shard i's engine for scheduling shard-local events.
func (s *ShardedEngine) Shard(i int) *Engine { return s.shards[i] }

// Global returns the cross-shard timeline: events scheduled here fire on the
// coordinator goroutine with every shard quiesced strictly before their time.
func (s *ShardedEngine) Global() *Engine { return s.global }

// Now reports the latest clock across the global engine and every shard
// (they agree at barriers; between barriers shards run ahead independently).
func (s *ShardedEngine) Now() Time {
	t := s.global.Now()
	for _, sh := range s.shards {
		if n := sh.Now(); n > t {
			t = n
		}
	}
	return t
}

// Pending reports scheduled-but-unfired events across all engines.
func (s *ShardedEngine) Pending() int {
	n := s.global.Pending()
	for _, sh := range s.shards {
		n += sh.Pending()
	}
	return n
}

// BarrierBefore runs every shard, in parallel, up to but excluding t, and
// parks their clocks at t. External coordinators (e.g. the sharded replay's
// metrics sampler) use it to quiesce the shards at a boundary of their own
// before reading cross-shard state.
func (s *ShardedEngine) BarrierBefore(t Time) {
	s.dispatch(drainCmd{mode: cmdDrainBefore, limit: t})
}

// Drain runs every shard, in parallel, through deadline inclusive (the
// parallel form of Engine.Drain), leaving all shard clocks at deadline.
func (s *ShardedEngine) Drain(deadline Time) {
	s.dispatch(drainCmd{mode: cmdDrain, limit: deadline})
}

// stepGlobalRound fires every global event scheduled at exactly the head
// time b, in insertion order, before any shard event at b may fire.
func (s *ShardedEngine) stepGlobalRound(b Time) {
	for {
		s.global.Step()
		if nb, ok := s.global.NextEventAt(); !ok || nb != b {
			return
		}
	}
}

// Run fires events until every queue drains: barrier rounds while global
// events remain, then one fully parallel drain of the shards.
func (s *ShardedEngine) Run() {
	for {
		b, ok := s.global.NextEventAt()
		if !ok {
			break
		}
		s.BarrierBefore(b)
		s.stepGlobalRound(b)
	}
	s.dispatch(drainCmd{mode: cmdRunAll})
}

// RunUntil fires events with time ≤ deadline, then advances every clock to
// deadline — the sharded form of Engine.RunUntil, byte-identical to it.
func (s *ShardedEngine) RunUntil(deadline Time) {
	for {
		b, ok := s.global.NextEventAt()
		if !ok || b > deadline {
			break
		}
		s.BarrierBefore(b)
		s.stepGlobalRound(b)
	}
	s.Drain(deadline)
	s.global.RunUntil(deadline) // nothing ≤ deadline remains; advances the clock
}

// Close stops the worker goroutines. The engines stay readable (final
// clocks, pending counts); running after Close panics on the closed channels.
// Close is idempotent.
func (s *ShardedEngine) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.cmds {
		close(ch)
	}
}
