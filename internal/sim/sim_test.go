package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:               "5ns",
		1500:            "1.500us",
		2 * Millisecond: "2.000ms",
		3 * Second:      "3.000s",
		90 * Second:     "90.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30", e.Now())
	}
}

func TestSameTimeInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("insertion order violated: %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.After(50, func(now Time) {
		fired = now
		e.After(25, func(now Time) { fired = now })
	})
	e.Run()
	if fired != 75 {
		t.Fatalf("nested After fired at %v, want 75", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(50, func(Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var cancel func()
	cancel = e.Every(10, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			cancel()
		}
	})
	e.RunUntil(1000)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 at 10,20,30", ticks)
	}
	for i, want := range []Time{10, 20, 30} {
		if ticks[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Every(0, func(Time) {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func(Time) { fired++ })
	e.At(20, func(Time) { fired++ })
	e.At(30, func(Time) { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 || e.Now() != 30 {
		t.Fatalf("after Run: fired=%d now=%v", fired, e.Now())
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("now = %v, want 500", e.Now())
	}
}

func TestAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(100)
	if e.Now() != 100 {
		t.Fatalf("now = %v", e.Now())
	}
	e.At(500, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when skipping events")
		}
	}()
	e.Advance(1000)
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEveryCancelBeforeFirstFiring(t *testing.T) {
	e := NewEngine()
	fired := 0
	cancel := e.Every(10, func(Time) { fired++ })
	cancel()
	e.RunUntil(1000)
	if fired != 0 {
		t.Fatalf("fired %d times after immediate cancel, want 0", fired)
	}
	if e.Now() != 1000 {
		t.Fatalf("clock at %v, want 1000", e.Now())
	}
}

func TestEveryCancelIsIdempotentAndIsolated(t *testing.T) {
	e := NewEngine()
	var a, b int
	cancelA := e.Every(10, func(Time) { a++ })
	e.Every(10, func(Time) { b++ })
	e.RunUntil(25) // both fire at 10 and 20
	cancelA()
	cancelA() // double-cancel must be harmless
	e.RunUntil(55)
	if a != 2 {
		t.Fatalf("cancelled timer fired %d times, want 2", a)
	}
	if b != 5 {
		t.Fatalf("surviving timer fired %d times, want 5 (10..50)", b)
	}
}

func TestEveryReschedulesAcrossRunUntilBoundaries(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.Every(7, func(now Time) { ticks = append(ticks, now) })
	// Drive the clock in uneven chunks, as experiment loops do; the timer
	// must keep its exact 7 ns cadence regardless of the chunking.
	for _, deadline := range []Time{5, 13, 14, 30, 31, 50} {
		e.RunUntil(deadline)
	}
	want := []Time{7, 14, 21, 28, 35, 42, 49}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

// TestHeapOrderingRandom drives the 4-ary heap with interleaved random
// pushes and pops and checks full (time, insertion) ordering against a
// reference sort. This is the safety net for the inlined heap replacing
// container/heap.
func TestHeapOrderingRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var scheduled, fired []Time
		pending := 0
		for i := 0; i < 2000; i++ {
			if pending > 0 && rng.Intn(3) == 0 {
				if e.Step() {
					pending--
				}
				continue
			}
			// Never schedule in the past: offsets are relative to now.
			at := e.Now() + Time(rng.Int63n(1000))
			e.At(at, func(now Time) { fired = append(fired, now) })
			scheduled = append(scheduled, at)
			pending++
		}
		e.Run()
		sort.Slice(scheduled, func(i, j int) bool { return scheduled[i] < scheduled[j] })
		if len(fired) != len(scheduled) {
			t.Fatalf("seed %d: fired %d of %d events", seed, len(fired), len(scheduled))
		}
		for i := range fired {
			if fired[i] != scheduled[i] {
				t.Fatalf("seed %d: event %d fired at %v, want %v", seed, i, fired[i], scheduled[i])
			}
		}
	}
}

// TestEverySteadyStateDoesNotAllocate pins the allocation-free interval
// timer: after setup, each tick (pop + re-push of the same closure) must not
// allocate. Refresh timers and metrics samplers fire millions of times over
// a six-hour horizon, so an allocation here dominates profile noise.
func TestEverySteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Every(10, func(Time) { ticks++ })
	e.Step() // warm up: first firing reaches steady state
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Every tick allocates %.1f objects/op, want 0", allocs)
	}
	if ticks == 0 {
		t.Fatal("timer never fired")
	}
}

// TestStepSteadyStateDoesNotAllocate pins the event core itself: a
// self-rescheduling event (the common steady-state shape) must go through
// push/pop without boxing.
func TestStepSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	var fire Event
	fire = func(now Time) { e.At(now+5, fire) }
	e.At(0, fire)
	e.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkEngineStep measures the steady-state event cycle: one pop, the
// callback, one push. The interesting numbers are ns/op and allocs/op
// (which must be 0).
func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine()
	var fire Event
	fire = func(now Time) { e.At(now+5, fire) }
	e.At(0, fire)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineStepDeep measures Step with many pending timers (the
// fig14-style configuration: per-channel samplers plus profiling windows),
// exercising sift-down depth.
func BenchmarkEngineStepDeep(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		period := Time(7 + i)
		e.Every(period, func(Time) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func TestEveryCancelFromOtherEvent(t *testing.T) {
	e := NewEngine()
	fired := 0
	cancel := e.Every(10, func(Time) { fired++ })
	// A scheduled event (same instant as the third firing, inserted first)
	// cancels the timer; the already-queued firing at 30 must not run.
	e.At(30, func(Time) { cancel() })
	e.RunUntil(100)
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (cancel lands before the t=30 tick)", fired)
	}
}
