package sim

import (
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:               "5ns",
		1500:            "1.500us",
		2 * Millisecond: "2.000ms",
		3 * Second:      "3.000s",
		90 * Second:     "90.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30", e.Now())
	}
}

func TestSameTimeInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("insertion order violated: %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.After(50, func(now Time) {
		fired = now
		e.After(25, func(now Time) { fired = now })
	})
	e.Run()
	if fired != 75 {
		t.Fatalf("nested After fired at %v, want 75", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(50, func(Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var cancel func()
	cancel = e.Every(10, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			cancel()
		}
	})
	e.RunUntil(1000)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 at 10,20,30", ticks)
	}
	for i, want := range []Time{10, 20, 30} {
		if ticks[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Every(0, func(Time) {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func(Time) { fired++ })
	e.At(20, func(Time) { fired++ })
	e.At(30, func(Time) { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 || e.Now() != 30 {
		t.Fatalf("after Run: fired=%d now=%v", fired, e.Now())
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("now = %v, want 500", e.Now())
	}
}

func TestAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(100)
	if e.Now() != 100 {
		t.Fatalf("now = %v", e.Now())
	}
	e.At(500, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when skipping events")
		}
	}()
	e.Advance(1000)
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEveryCancelBeforeFirstFiring(t *testing.T) {
	e := NewEngine()
	fired := 0
	cancel := e.Every(10, func(Time) { fired++ })
	cancel()
	e.RunUntil(1000)
	if fired != 0 {
		t.Fatalf("fired %d times after immediate cancel, want 0", fired)
	}
	if e.Now() != 1000 {
		t.Fatalf("clock at %v, want 1000", e.Now())
	}
}

func TestEveryCancelIsIdempotentAndIsolated(t *testing.T) {
	e := NewEngine()
	var a, b int
	cancelA := e.Every(10, func(Time) { a++ })
	e.Every(10, func(Time) { b++ })
	e.RunUntil(25) // both fire at 10 and 20
	cancelA()
	cancelA() // double-cancel must be harmless
	e.RunUntil(55)
	if a != 2 {
		t.Fatalf("cancelled timer fired %d times, want 2", a)
	}
	if b != 5 {
		t.Fatalf("surviving timer fired %d times, want 5 (10..50)", b)
	}
}

func TestEveryReschedulesAcrossRunUntilBoundaries(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.Every(7, func(now Time) { ticks = append(ticks, now) })
	// Drive the clock in uneven chunks, as experiment loops do; the timer
	// must keep its exact 7 ns cadence regardless of the chunking.
	for _, deadline := range []Time{5, 13, 14, 30, 31, 50} {
		e.RunUntil(deadline)
	}
	want := []Time{7, 14, 21, 28, 35, 42, 49}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEveryCancelFromOtherEvent(t *testing.T) {
	e := NewEngine()
	fired := 0
	cancel := e.Every(10, func(Time) { fired++ })
	// A scheduled event (same instant as the third firing, inserted first)
	// cancels the timer; the already-queued firing at 30 must not run.
	e.At(30, func(Time) { cancel() })
	e.RunUntil(100)
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (cancel lands before the t=30 tick)", fired)
	}
}
