package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// --- Engine.Drain / drainBefore / NextEventAt ---

func TestDrainFiresThroughDeadlineAndCounts(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 10, 20} {
		at := at
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	if n := e.Drain(10); n != 3 {
		t.Fatalf("Drain(10) fired %d events, want 3", n)
	}
	if want := []Time{5, 10, 10}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %v, want 10", e.Now())
	}
	// Advancing past the last event still moves the clock to the deadline.
	if n := e.Drain(100); n != 1 || e.Now() != 100 {
		t.Fatalf("Drain(100) = %d events, now %v; want 1 event, now 100", n, e.Now())
	}
}

func TestDrainOnEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine()
	if n := e.Drain(42); n != 0 || e.Now() != 42 {
		t.Fatalf("Drain(42) = %d, now %v; want 0, 42", n, e.Now())
	}
	// A deadline in the past is a no-op, not a clock rewind.
	if n := e.Drain(7); n != 0 || e.Now() != 42 {
		t.Fatalf("Drain(7) = %d, now %v; want 0, 42", n, e.Now())
	}
}

func TestDrainBeforeIsStrict(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15} {
		at := at
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.drainBefore(10)
	if want := []Time{5}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v (events at the limit must not fire)", fired, want)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %v, want 10 (clock parks at the barrier)", e.Now())
	}
	// The parked event at exactly 10 is still pending and fires next.
	e.Drain(10)
	if want := []Time{5, 10}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("NextEventAt on empty queue reported ok")
	}
	e.At(30, func(Time) {})
	e.At(10, func(Time) {})
	if at, ok := e.NextEventAt(); !ok || at != 10 {
		t.Fatalf("NextEventAt = %v, %v; want 10, true", at, ok)
	}
	if e.Now() != 0 || e.Pending() != 2 {
		t.Fatal("NextEventAt must not fire or advance anything")
	}
}

// --- ShardedEngine ---

func TestNewShardedPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded(0) did not panic")
		}
	}()
	NewSharded(0)
}

// shardModel is a deterministic synthetic workload: nChans independent
// event chains (one per logical channel), each recording (time, state) pairs
// into a per-channel log. It runs identically on a serial Engine (the
// oracle) and on a ShardedEngine at any shard count, so the logs must match
// byte for byte.
type shardModel struct {
	logs  [][]string
	state []uint64
}

func newShardModel(nChans int) *shardModel {
	return &shardModel{logs: make([][]string, nChans), state: make([]uint64, nChans)}
}

// chain schedules events on e at start, start+step, ... (count of them),
// each mixing the event time into channel ch's state.
func (m *shardModel) chain(e *Engine, ch int, start, step Time, count int) {
	i := 0
	var fire Event
	fire = func(now Time) {
		m.state[ch] = m.state[ch]*6364136223846793005 + uint64(now) + 1
		m.logs[ch] = append(m.logs[ch], fmt.Sprintf("%d@%d:%x", ch, now, m.state[ch]))
		i++
		if i < count {
			e.At(now+step, fire)
		}
	}
	e.At(start, fire)
}

func TestShardedRunMatchesSerial(t *testing.T) {
	const nChans = 8
	build := func(shard func(ch int) *Engine, m *shardModel) {
		for ch := 0; ch < nChans; ch++ {
			m.chain(shard(ch), ch, Time(1+ch), Time(3+ch%4), 50)
		}
	}

	oracle := newShardModel(nChans)
	eng := NewEngine()
	build(func(int) *Engine { return eng }, oracle)
	eng.Run()

	for _, shards := range []int{1, 2, 4, 7} {
		m := newShardModel(nChans)
		s := NewSharded(shards)
		build(func(ch int) *Engine { return s.Shard(ch % shards) }, m)
		s.Run()
		s.Close()
		if !reflect.DeepEqual(m.logs, oracle.logs) {
			t.Errorf("shards=%d: logs diverge from serial oracle", shards)
		}
		if s.Pending() != 0 {
			t.Errorf("shards=%d: %d events left pending after Run", shards, s.Pending())
		}
	}
}

func TestShardedRunUntilMatchesSerial(t *testing.T) {
	const nChans = 5
	const deadline = Time(60)
	build := func(shard func(ch int) *Engine, m *shardModel) {
		for ch := 0; ch < nChans; ch++ {
			m.chain(shard(ch), ch, Time(2+ch), Time(7), 40) // chains outlive the deadline
		}
	}

	oracle := newShardModel(nChans)
	eng := NewEngine()
	build(func(int) *Engine { return eng }, oracle)
	eng.RunUntil(deadline)

	for _, shards := range []int{1, 2, 4} {
		m := newShardModel(nChans)
		s := NewSharded(shards)
		build(func(ch int) *Engine { return s.Shard(ch % shards) }, m)
		s.RunUntil(deadline)
		if !reflect.DeepEqual(m.logs, oracle.logs) {
			t.Errorf("shards=%d: logs diverge from serial oracle at deadline", shards)
		}
		if s.Now() != deadline {
			t.Errorf("shards=%d: Now = %v, want %v", shards, s.Now(), deadline)
		}
		for i := 0; i < shards; i++ {
			if n := s.Shard(i).Now(); n != deadline {
				t.Errorf("shards=%d: shard %d clock = %v, want %v", shards, i, n, deadline)
			}
		}
		s.Close()
	}
}

// TestShardedGlobalBarrierOrdering pins the tie-break convention: a global
// event at time B observes exactly the shard events strictly before B (the
// ones at B have not fired yet), and may schedule onto any shard at ≥ B.
// Each shard logs only its own events — the global event, which runs with
// the shards quiesced, is the only reader that crosses shards.
func TestShardedGlobalBarrierOrdering(t *testing.T) {
	s := NewSharded(2)
	defer s.Close()

	logs := make([][]Time, 2)
	for ch := 0; ch < 2; ch++ {
		ch := ch
		for _, at := range []Time{3, 5, 8} {
			at := at
			s.Shard(ch).At(at, func(now Time) {
				logs[ch] = append(logs[ch], now)
			})
		}
	}
	sawAtBarrier := -1
	seeded := Time(0)
	s.Global().At(5, func(now Time) {
		// The shards are parked at 5 with everything < 5 fired: if the
		// shard events at exactly 5 had fired, this count would be 4.
		sawAtBarrier = len(logs[0]) + len(logs[1])
		// Global events may reach across shards: seed a shard event at ≥ B.
		s.Shard(1).At(now+1, func(at Time) { seeded = at })
	})
	s.Run()

	if sawAtBarrier != 2 {
		t.Fatalf("global@5 observed %d shard events, want exactly the 2 strictly before it", sawAtBarrier)
	}
	want := []Time{3, 5, 8}
	for ch := 0; ch < 2; ch++ {
		if !reflect.DeepEqual(logs[ch], want) {
			t.Fatalf("shard %d log = %v, want %v", ch, logs[ch], want)
		}
	}
	if seeded != 6 {
		t.Fatalf("globally seeded shard event fired at %v, want 6", seeded)
	}
}

// crossShardModel exercises the cross-shard seams the barrier protocol
// exists for: chains migrate between logical channels via global events, and
// a global mid-run kill cancels a channel's chain — mirroring segment
// migration and health-monitor rank retirement crossing shard boundaries.
type crossShardModel struct {
	*shardModel
	stopped []bool
}

func buildCrossShard(shard func(ch int) *Engine, global *Engine, nChans int) *crossShardModel {
	m := &crossShardModel{shardModel: newShardModel(nChans), stopped: make([]bool, nChans)}
	var chain func(e *Engine, ch int, start, step Time, count int)
	chain = func(e *Engine, ch int, start, step Time, count int) {
		i := 0
		var fire Event
		fire = func(now Time) {
			if m.stopped[ch] {
				return
			}
			m.state[ch] = m.state[ch]*6364136223846793005 + uint64(now) + 1
			m.logs[ch] = append(m.logs[ch], fmt.Sprintf("%d@%d:%x", ch, now, m.state[ch]))
			i++
			if i < count {
				e.At(now+step, fire)
			}
		}
		e.At(start, fire)
	}
	for ch := 0; ch < nChans; ch++ {
		chain(shard(ch), ch, Time(1+ch), Time(4), 200)
	}
	// Migration at t=101: channel 0's accumulated state seeds a new chain on
	// channel 1 (a different shard for every tested shard count > 1).
	global.At(101, func(now Time) {
		seed := m.state[0]
		m.logs[1] = append(m.logs[1], fmt.Sprintf("migrate-in@%d:%x", now, seed))
		m.state[1] += seed
		chain(shard(1), 1, now+3, 5, 40)
	})
	// Mid-run kill at t=301: channel 2 stops cold, like a retired rank.
	global.At(301, func(now Time) {
		m.stopped[2] = true
		m.logs[2] = append(m.logs[2], fmt.Sprintf("killed@%d", now))
	})
	return m
}

func TestShardedMigrationAndKillMatchesSerialOracle(t *testing.T) {
	const nChans = 6

	// Serial oracle: one engine plays both roles. Global events are
	// scheduled first (lowest seq), so at equal times they fire before
	// chain events — the same tie-break the sharded barrier guarantees.
	eng := NewEngine()
	oracle := buildCrossShard(func(int) *Engine { return eng }, eng, nChans)
	eng.Run()

	for _, shards := range []int{1, 2, 4, 7} {
		s := NewSharded(shards)
		m := buildCrossShard(func(ch int) *Engine { return s.Shard(ch % shards) }, s.Global(), nChans)
		s.Run()
		s.Close()
		if !reflect.DeepEqual(m.logs, oracle.logs) {
			for ch := range m.logs {
				if !reflect.DeepEqual(m.logs[ch], oracle.logs[ch]) {
					t.Errorf("shards=%d: channel %d log diverges (got %d entries, want %d)",
						shards, ch, len(m.logs[ch]), len(oracle.logs[ch]))
				}
			}
		}
	}
}

func TestShardedCloseIsIdempotent(t *testing.T) {
	s := NewSharded(3)
	s.Shard(0).At(1, func(Time) {})
	s.Run()
	s.Close()
	s.Close()
	if s.Now() != 1 {
		t.Fatalf("Now = %v after Close, want 1", s.Now())
	}
}

func TestShardedBarrierSteadyStateDoesNotAllocate(t *testing.T) {
	s := NewSharded(4)
	defer s.Close()
	var at Time
	allocs := testing.AllocsPerRun(100, func() {
		at++
		s.BarrierBefore(at)
	})
	if allocs != 0 {
		t.Fatalf("barrier round allocates %v times, want 0", allocs)
	}
}

// --- benchmarks gated by scripts/bench_check.sh ---

// benchShardWork is the per-op workload for the RunAll benchmarks: 64
// independent chains of 200 events each (12800 events), the shape of a
// multi-channel replay. Chains never share state, so the sharded run is
// embarrassingly parallel between barriers.
const (
	benchChains      = 64
	benchChainEvents = 200
)

func scheduleBenchChains(shard func(ch int) *Engine, state []uint64) {
	for ch := 0; ch < benchChains; ch++ {
		ch := ch
		e := shard(ch)
		i := 0
		var fire Event
		fire = func(now Time) {
			// ~a dozen ns of "model" work per event, all chain-local.
			x := state[ch]
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			state[ch] = x + uint64(now)
			i++
			if i < benchChainEvents {
				e.At(now+Time(1+x%7), fire)
			}
		}
		e.At(Time(1+ch), fire)
	}
}

// BenchmarkSerialRunAll is the oracle side of the pair: the same 12800-event
// workload BenchmarkShardedRunAll runs, on one serial Engine.
func BenchmarkSerialRunAll(b *testing.B) {
	state := make([]uint64, benchChains)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		scheduleBenchChains(func(int) *Engine { return e }, state)
		e.Run()
	}
}

// BenchmarkShardedRunAll runs the workload on min(4, GOMAXPROCS) shards.
// On a multi-core runner the chains drain concurrently; on one core it
// measures the protocol's overhead over BenchmarkSerialRunAll.
func BenchmarkShardedRunAll(b *testing.B) {
	shards := 4
	if p := runtime.GOMAXPROCS(0); p < shards {
		shards = p
	}
	if shards < 1 {
		shards = 1
	}
	state := make([]uint64, benchChains)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSharded(shards)
		scheduleBenchChains(func(ch int) *Engine { return s.Shard(ch % shards) }, state)
		s.Run()
		s.Close()
	}
}

// BenchmarkShardBarrier measures one barrier round trip across 4 shards
// with no shard work: the fixed cost every global event (sample, migration,
// probe) pays. It must stay allocation-free.
func BenchmarkShardBarrier(b *testing.B) {
	s := NewSharded(4)
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.BarrierBefore(Time(i + 1))
	}
}
