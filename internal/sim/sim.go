// Package sim provides a small discrete-event simulation core used by the
// DRAM, memory-controller, and DTL models: a virtual nanosecond clock, a
// binary-heap event queue, and repeating interval timers.
//
// All simulated time in this repository is expressed in integer nanoseconds
// (type Time). The simulation is single-threaded and deterministic: events
// scheduled for the same instant fire in insertion order.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a callback scheduled to run at a specific virtual time.
type Event func(now Time)

type scheduledEvent struct {
	at   Time
	seq  uint64 // tiebreaker: insertion order
	fire Event
}

type eventHeap []scheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(scheduledEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator.
// The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at the absolute virtual time at.
// Scheduling in the past panics: it would violate causality and always
// indicates a model bug.
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, scheduledEvent{at: at, seq: e.seq, fire: fn})
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, fn Event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// Every schedules fn to run every period, starting one period from now,
// until the returned cancel function is called. A non-positive period panics.
func (e *Engine) Every(period Time, fn Event) (cancel func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	stopped := false
	var tick Event
	tick = func(now Time) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
	return func() { stopped = true }
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(scheduledEvent)
	e.now = ev.at
	ev.fire(e.now)
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// deadline (even if no event was pending there).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// Advance moves the clock forward by d without firing events scheduled in
// between; it panics if any such event exists. Use it only in models that
// manage their own timelines (e.g. trace replay) between event batches.
func (e *Engine) Advance(d Time) {
	target := e.now + d
	if len(e.events) > 0 && e.events[0].at < target {
		panic(fmt.Sprintf("sim: Advance(%v) would skip event at %v", d, e.events[0].at))
	}
	e.now = target
}
