// Package sim provides a small discrete-event simulation core used by the
// DRAM, memory-controller, and DTL models: a virtual nanosecond clock, a
// 4-ary min-heap event queue, and repeating interval timers.
//
// All simulated time in this repository is expressed in integer nanoseconds
// (type Time). The simulation is single-threaded and deterministic: events
// scheduled for the same instant fire in insertion order.
//
// The event queue stores scheduled events by value in an inlined 4-ary heap
// rather than going through container/heap's interface{} API: no event is
// ever boxed, so the steady-state schedule/fire cycle (pop one event, push
// its successor) performs zero allocations. The 4-ary shape halves the tree
// depth of a binary heap and keeps each node's children in one cache line,
// which measurably shortens Step on event-dense runs.
package sim

import (
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a callback scheduled to run at a specific virtual time.
type Event func(now Time)

type scheduledEvent struct {
	at   Time
	seq  uint64 // tiebreaker: insertion order
	fire Event
}

// before orders events by time, then insertion order.
func (e *scheduledEvent) before(o *scheduledEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// heapArity is the fan-out of the event heap. Four children per node keeps
// sift-down comparisons cache-local and the tree shallow.
const heapArity = 4

// Engine is a deterministic discrete-event simulator.
// The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events []scheduledEvent // 4-ary min-heap ordered by (at, seq)
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// push inserts ev, restoring the heap property by sifting up.
func (e *Engine) push(ev scheduledEvent) {
	e.events = append(e.events, ev)
	h := e.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest event, sifting the tail element down.
func (e *Engine) pop() scheduledEvent {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = scheduledEvent{} // drop the closure reference for the GC
	h = h[:n]
	e.events = h

	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[best]) {
				best = c
			}
		}
		if !h[best].before(&h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// At schedules fn to run at the absolute virtual time at.
// Scheduling in the past panics: it would violate causality and always
// indicates a model bug.
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	e.push(scheduledEvent{at: at, seq: e.seq, fire: fn})
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, fn Event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// ticker is the reusable state behind Every: one ticker, one rescheduling
// closure, allocated once at setup. Steady-state ticks re-push the same
// closure value into the (non-boxing) event heap, so a firing interval
// timer allocates nothing.
type ticker struct {
	e       *Engine
	period  Time
	fn      Event
	fire    Event // self-rescheduling wrapper, built once
	stopped bool
}

// Every schedules fn to run every period, starting one period from now,
// until the returned cancel function is called. A non-positive period panics.
func (e *Engine) Every(period Time, fn Event) (cancel func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	t := &ticker{e: e, period: period, fn: fn}
	t.fire = func(now Time) {
		if t.stopped {
			return
		}
		t.fn(now)
		if !t.stopped {
			t.e.At(t.e.now+t.period, t.fire)
		}
	}
	e.After(period, t.fire)
	return func() { t.stopped = true }
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	ev.fire(e.now)
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Drain fires every pending event with time ≤ deadline in (time, insertion)
// order, then advances the clock to deadline (even if no event was pending
// there), and reports how many events fired. It is the shared catch-up loop
// behind RunUntil and the sharded engine's barrier protocol.
func (e *Engine) Drain(deadline Time) int {
	fired := 0
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
		fired++
	}
	if deadline > e.now {
		e.now = deadline
	}
	return fired
}

// drainBefore fires every pending event with time strictly before limit,
// then advances the clock to limit. It is the shard half of the sharded
// barrier: stopping strictly before the boundary gives events on the global
// timeline priority over shard-local events scheduled at the same instant.
func (e *Engine) drainBefore(limit Time) {
	for len(e.events) > 0 && e.events[0].at < limit {
		e.Step()
	}
	if limit > e.now {
		e.now = limit
	}
}

// NextEventAt reports the earliest pending event's time without firing it;
// ok is false when the queue is empty. Barrier coordinators (the sharded
// engine, the sharded replay loop) use it to pick the next round boundary.
func (e *Engine) NextEventAt() (at Time, ok bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// deadline (even if no event was pending there).
func (e *Engine) RunUntil(deadline Time) {
	e.Drain(deadline)
}

// Advance moves the clock forward by d without firing events scheduled in
// between; it panics if any such event exists. Use it only in models that
// manage their own timelines (e.g. trace replay) between event batches.
func (e *Engine) Advance(d Time) {
	target := e.now + d
	if len(e.events) > 0 && e.events[0].at < target {
		panic(fmt.Sprintf("sim: Advance(%v) would skip event at %v", d, e.events[0].at))
	}
	e.now = target
}
