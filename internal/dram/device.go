package dram

import (
	"fmt"

	"dtl/internal/sim"
)

// RankID identifies a rank by channel and rank index within that channel.
type RankID struct {
	Channel int
	Rank    int
}

// String implements fmt.Stringer.
func (r RankID) String() string { return fmt.Sprintf("ch%d/rk%d", r.Channel, r.Rank) }

// rankStatus is the per-rank bookkeeping the device maintains.
type rankStatus struct {
	state PowerState
	// readyAt is the earliest time the rank can accept a command (it covers
	// power-state transition penalties).
	readyAt sim.Time
	// stateSince is when the rank entered its current state, for
	// energy-by-state accounting.
	stateSince sim.Time
	// energyByState accumulates normalized background energy
	// (units × nanoseconds) per state.
	energyByState [3]float64
	// transitions counts state changes, for diagnostics.
	transitions int
}

// Device tracks the power state and background-energy consumption of every
// rank in the CXL memory device. Command timing is modeled by the memory
// controller (package memctrl); Device owns the state machine and the
// power/energy ledger so that DTL can drive power transitions directly.
type Device struct {
	geom  Geometry
	codec *AddressCodec
	power PowerModel
	tim   Timing
	ranks []rankStatus // indexed by global rank id (rank*Channels + channel)

	lastAccount  sim.Time
	onTransition TransitionHook

	// fault is lazily allocated on the first injected fault (see fault.go);
	// fault-free devices never touch it.
	fault   *faultState
	onFault FaultHook
}

// TransitionHook observes every power-state change as it is applied. readyAt
// is when the rank becomes usable in the new state (entry/exit penalty
// included). Hooks must not call back into the device.
type TransitionHook func(id RankID, from, to PowerState, at, readyAt sim.Time)

// NewDevice builds a device in the all-standby state at time zero.
func NewDevice(g Geometry, pm PowerModel, tm Timing) (*Device, error) {
	codec, err := NewAddressCodec(g)
	if err != nil {
		return nil, err
	}
	d := &Device{
		geom:  g,
		codec: codec,
		power: pm,
		tim:   tm,
		ranks: make([]rankStatus, g.TotalRanks()),
	}
	return d, nil
}

// MustDevice is NewDevice that panics on error.
func MustDevice(g Geometry, pm PowerModel, tm Timing) *Device {
	d, err := NewDevice(g, pm, tm)
	if err != nil {
		panic(err)
	}
	return d
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Codec returns the device's address codec.
func (d *Device) Codec() *AddressCodec { return d.codec }

// Power returns the power model.
func (d *Device) Power() PowerModel { return d.power }

// Timing returns the timing parameters.
func (d *Device) Timing() Timing { return d.tim }

func (d *Device) rank(id RankID) *rankStatus {
	if id.Channel < 0 || id.Channel >= d.geom.Channels || id.Rank < 0 || id.Rank >= d.geom.RanksPerChannel {
		panic(fmt.Sprintf("dram: rank %v out of range for %v", id, d.geom))
	}
	return &d.ranks[d.codec.GlobalRank(id.Channel, id.Rank)]
}

// State reports the power state of a rank.
func (d *Device) State(id RankID) PowerState { return d.rank(id).state }

// ReadyAt reports the earliest time the rank can accept a command, covering
// any in-flight power transition.
func (d *Device) ReadyAt(id RankID) sim.Time { return d.rank(id).readyAt }

// Transitions reports how many power-state changes the rank has undergone.
func (d *Device) Transitions(id RankID) int { return d.rank(id).transitions }

// SetState transitions a rank to the target power state at time now,
// applying the appropriate entry/exit penalty to the rank's readiness.
// Transitioning out of MPSM loses data by definition; the caller (DTL)
// guarantees no live segments remain on an MPSM rank.
//
// It returns the time at which the rank becomes usable in the new state.
func (d *Device) SetState(id RankID, target PowerState, now sim.Time) sim.Time {
	r := d.rank(id)
	if r.state == target {
		return maxTime(now, r.readyAt)
	}
	d.accountRank(r, now)

	var penalty sim.Time
	var wakeFault sim.Time
	switch {
	case r.state == SelfRefresh && target == Standby:
		penalty = d.tim.SelfRefreshExit
		if d.fault != nil {
			if extra := d.fault.ranks[d.codec.GlobalRank(id.Channel, id.Rank)].wakeExtra; extra > 0 {
				penalty += extra
				wakeFault = extra
			}
		}
	case r.state == MPSM && target == Standby:
		penalty = d.tim.MPSMExit
	case target == SelfRefresh:
		penalty = d.tim.SelfRefreshEnter
	case target == MPSM:
		penalty = d.tim.MPSMEnter
	}
	// Direct SR<->MPSM hops route through standby implicitly; the penalties
	// above already cover the dominant component.

	from := r.state
	r.state = target
	r.stateSince = now
	r.transitions++
	r.readyAt = maxTime(now, r.readyAt) + penalty
	if d.onTransition != nil {
		d.onTransition(id, from, target, now, r.readyAt)
	}
	if wakeFault > 0 {
		d.raise(FaultEvent{Kind: FaultWake, Rank: id, DSN: -1, Count: 1, Extra: wakeFault, At: now})
	}
	return r.readyAt
}

// OnTransition installs the power-transition observer (nil uninstalls it).
// The telemetry layer uses it to build per-rank power timelines.
func (d *Device) OnTransition(h TransitionHook) { d.onTransition = h }

// accountRank folds the background energy accumulated in the current state
// up to now into the per-state ledger.
func (d *Device) accountRank(r *rankStatus, now sim.Time) {
	if now > r.stateSince {
		r.energyByState[r.state] += d.power.Background(r.state) * float64(now-r.stateSince)
		r.stateSince = now
	}
}

// AccountUpTo folds background energy for every rank up to now. Call it
// before reading energy totals.
func (d *Device) AccountUpTo(now sim.Time) {
	for i := range d.ranks {
		d.accountRank(&d.ranks[i], now)
	}
	d.lastAccount = now
}

// BackgroundEnergy reports the total normalized background energy
// (units × ns) accumulated across all ranks, split by state.
// AccountUpTo must have been called at the evaluation horizon.
func (d *Device) BackgroundEnergy() (standby, selfRefresh, mpsm float64) {
	for i := range d.ranks {
		standby += d.ranks[i].energyByState[Standby]
		selfRefresh += d.ranks[i].energyByState[SelfRefresh]
		mpsm += d.ranks[i].energyByState[MPSM]
	}
	return standby, selfRefresh, mpsm
}

// BackgroundPowerNow reports the instantaneous background power (normalized
// units) summed over all ranks.
func (d *Device) BackgroundPowerNow() float64 {
	var p float64
	for i := range d.ranks {
		p += d.power.Background(d.ranks[i].state)
	}
	return p
}

// CountByState reports how many ranks are in each power state.
func (d *Device) CountByState() map[PowerState]int {
	m := make(map[PowerState]int, 3)
	for i := range d.ranks {
		m[d.ranks[i].state]++
	}
	return m
}

// RanksIn returns the IDs of all ranks currently in state s, in
// (rank, channel) order.
func (d *Device) RanksIn(s PowerState) []RankID {
	var ids []RankID
	for rank := 0; rank < d.geom.RanksPerChannel; rank++ {
		for ch := 0; ch < d.geom.Channels; ch++ {
			if d.ranks[d.codec.GlobalRank(ch, rank)].state == s {
				ids = append(ids, RankID{Channel: ch, Rank: rank})
			}
		}
	}
	return ids
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
