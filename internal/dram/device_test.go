package dram

import (
	"math"
	"testing"

	"dtl/internal/sim"
)

func newTestDevice() *Device {
	return MustDevice(Default1TB(), DefaultPowerModel(), DefaultTiming())
}

func TestPowerStateString(t *testing.T) {
	if Standby.String() != "standby" || SelfRefresh.String() != "self-refresh" || MPSM.String() != "mpsm" {
		t.Fatal("unexpected state strings")
	}
	if !Standby.RetainsData() || !SelfRefresh.RetainsData() || MPSM.RetainsData() {
		t.Fatal("retention flags wrong")
	}
}

func TestTable2NormalizedPower(t *testing.T) {
	m := DefaultPowerModel()
	if m.Background(Standby) != 1.0 {
		t.Errorf("standby = %v, want 1.0", m.Background(Standby))
	}
	if m.Background(SelfRefresh) != 0.2 {
		t.Errorf("self-refresh = %v, want 0.2", m.Background(SelfRefresh))
	}
	if m.Background(MPSM) != 0.068 {
		t.Errorf("mpsm = %v, want 0.068", m.Background(MPSM))
	}
	// JEDEC-derived bracket from §2: MPSM is 3.4–6.8% of standby.
	ratio := m.Background(MPSM) / m.Background(Standby)
	if ratio < 0.034 || ratio > 0.068 {
		t.Errorf("MPSM/standby ratio %v outside paper bracket [0.034, 0.068]", ratio)
	}
}

func TestActivePowerLinear(t *testing.T) {
	m := DefaultPowerModel()
	p1 := m.Active(1)
	p10 := m.Active(10)
	if math.Abs(p10-10*p1) > 1e-12 {
		t.Errorf("active power not linear: %v vs %v", p10, 10*p1)
	}
	if m.Active(0) != 0 {
		t.Errorf("active power at 0 BW should be 0")
	}
}

func TestDeviceInitialState(t *testing.T) {
	d := newTestDevice()
	for _, id := range []RankID{{0, 0}, {3, 7}, {1, 4}} {
		if got := d.State(id); got != Standby {
			t.Errorf("initial state of %v = %v, want standby", id, got)
		}
	}
	if got := d.BackgroundPowerNow(); got != 32.0 {
		t.Errorf("initial background power = %v, want 32 (all standby)", got)
	}
	by := d.CountByState()
	if by[Standby] != 32 || by[SelfRefresh] != 0 || by[MPSM] != 0 {
		t.Errorf("CountByState = %v", by)
	}
}

func TestSetStateTransitionPenalties(t *testing.T) {
	d := newTestDevice()
	tm := d.Timing()
	id := RankID{Channel: 1, Rank: 3}

	ready := d.SetState(id, SelfRefresh, 1000)
	if want := sim.Time(1000) + tm.SelfRefreshEnter; ready != want {
		t.Errorf("enter SR ready at %v, want %v", ready, want)
	}
	ready = d.SetState(id, Standby, 5000)
	if want := sim.Time(5000) + tm.SelfRefreshExit; ready != want {
		t.Errorf("exit SR ready at %v, want %v", ready, want)
	}
	ready = d.SetState(id, MPSM, 10000)
	if want := sim.Time(10000) + tm.MPSMEnter; ready != want {
		t.Errorf("enter MPSM ready at %v, want %v", ready, want)
	}
	ready = d.SetState(id, Standby, 20000)
	if want := sim.Time(20000) + tm.MPSMExit; ready != want {
		t.Errorf("exit MPSM ready at %v, want %v", ready, want)
	}
	if got := d.Transitions(id); got != 4 {
		t.Errorf("transitions = %d, want 4", got)
	}
}

func TestSetStateSameStateNoop(t *testing.T) {
	d := newTestDevice()
	id := RankID{Channel: 0, Rank: 0}
	ready := d.SetState(id, Standby, 100)
	if ready != 100 {
		t.Errorf("same-state ready = %v, want 100", ready)
	}
	if d.Transitions(id) != 0 {
		t.Error("same-state transition counted")
	}
}

func TestBackgroundEnergyAccounting(t *testing.T) {
	d := newTestDevice()
	tm := DefaultTiming()
	_ = tm
	id := RankID{Channel: 2, Rank: 5}

	// 1000 ns standby, then self-refresh until 11000, then account.
	d.SetState(id, SelfRefresh, 1000)
	d.AccountUpTo(11000)

	standby, sr, mpsm := d.BackgroundEnergy()
	// 31 ranks standby for 11000ns + 1 rank standby for 1000ns.
	wantStandby := 31*11000.0 + 1000.0
	wantSR := 0.2 * 10000.0
	if math.Abs(standby-wantStandby) > 1e-6 {
		t.Errorf("standby energy = %v, want %v", standby, wantStandby)
	}
	if math.Abs(sr-wantSR) > 1e-6 {
		t.Errorf("self-refresh energy = %v, want %v", sr, wantSR)
	}
	if mpsm != 0 {
		t.Errorf("mpsm energy = %v, want 0", mpsm)
	}
}

func TestBackgroundPowerDropsWithMPSM(t *testing.T) {
	d := newTestDevice()
	before := d.BackgroundPowerNow()
	// Power down rank group 7 (all 4 channels).
	for ch := 0; ch < 4; ch++ {
		d.SetState(RankID{Channel: ch, Rank: 7}, MPSM, 0)
	}
	after := d.BackgroundPowerNow()
	wantDrop := 4 * (1.0 - 0.068)
	if math.Abs((before-after)-wantDrop) > 1e-9 {
		t.Errorf("power drop = %v, want %v", before-after, wantDrop)
	}
}

func TestRanksIn(t *testing.T) {
	d := newTestDevice()
	d.SetState(RankID{Channel: 0, Rank: 2}, SelfRefresh, 0)
	d.SetState(RankID{Channel: 3, Rank: 2}, SelfRefresh, 0)
	ids := d.RanksIn(SelfRefresh)
	if len(ids) != 2 {
		t.Fatalf("RanksIn(SR) = %v", ids)
	}
	if ids[0] != (RankID{Channel: 0, Rank: 2}) || ids[1] != (RankID{Channel: 3, Rank: 2}) {
		t.Fatalf("RanksIn order = %v", ids)
	}
	if got := len(d.RanksIn(Standby)); got != 30 {
		t.Fatalf("standby ranks = %d, want 30", got)
	}
}

func TestRankOutOfRangePanics(t *testing.T) {
	d := newTestDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range rank")
		}
	}()
	d.State(RankID{Channel: 9, Rank: 0})
}

func TestEnergyLedgerAcrossManyTransitions(t *testing.T) {
	// Energy must integrate exactly across an arbitrary transition script.
	d := newTestDevice()
	script := []struct {
		at    sim.Time
		state PowerState
	}{
		{1000, SelfRefresh},
		{3000, Standby},
		{7000, MPSM},
		{15000, Standby},
		{20000, SelfRefresh},
	}
	for _, s := range script {
		d.SetState(RankID{Channel: 0, Rank: 0}, s.state, s.at)
	}
	d.AccountUpTo(30000)
	st, sr, mp := d.BackgroundEnergy()
	// Rank 0: standby [0,1000)+[3000,7000)+[15000,20000) = 10000ns;
	// SR [1000,3000)+[20000,30000) = 12000ns; MPSM [7000,15000) = 8000ns.
	// Plus 31 other ranks standby for 30000ns each.
	wantStandby := 31*30000.0 + 10000.0
	wantSR := 0.2 * 12000.0
	wantMPSM := 0.068 * 8000.0
	if math.Abs(st-wantStandby) > 1e-6 || math.Abs(sr-wantSR) > 1e-6 || math.Abs(mp-wantMPSM) > 1e-6 {
		t.Fatalf("energies = %v/%v/%v, want %v/%v/%v", st, sr, mp, wantStandby, wantSR, wantMPSM)
	}
}

func TestAccountUpToIdempotent(t *testing.T) {
	d := newTestDevice()
	d.SetState(RankID{Channel: 1, Rank: 1}, SelfRefresh, 100)
	d.AccountUpTo(1000)
	st1, sr1, mp1 := d.BackgroundEnergy()
	d.AccountUpTo(1000) // same instant: no double counting
	st2, sr2, mp2 := d.BackgroundEnergy()
	if st1 != st2 || sr1 != sr2 || mp1 != mp2 {
		t.Fatal("AccountUpTo double-counted energy")
	}
}

func TestReadyAtMonotonic(t *testing.T) {
	// Back-to-back transitions never let readiness go backwards.
	d := newTestDevice()
	id := RankID{Channel: 2, Rank: 2}
	var prev sim.Time
	states := []PowerState{SelfRefresh, Standby, MPSM, Standby, SelfRefresh, Standby}
	now := sim.Time(0)
	for _, s := range states {
		ready := d.SetState(id, s, now)
		if ready < prev {
			t.Fatalf("readiness went backwards: %v after %v", ready, prev)
		}
		prev = ready
		now += 50 // shorter than most penalties: transitions overlap
	}
}
