package dram

import (
	"testing"

	"dtl/internal/sim"
)

func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		FaultCorrectable:   "correctable",
		FaultUncorrectable: "uncorrectable",
		FaultWake:          "wake-fault",
		FaultRankFailure:   "rank-failure",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestFaultFreeDeviceHasNoState(t *testing.T) {
	d := newTestDevice()
	id := RankID{Channel: 0, Rank: 0}
	if d.fault != nil {
		t.Fatal("fresh device should not allocate fault state")
	}
	// All read paths are nil-safe before the first injection.
	if d.Failed(id) || d.FailedGlobal(0) || d.AnyFailed() {
		t.Fatal("fault-free device reports a failure")
	}
	if d.CorrectableCount(id) != 0 || d.UncorrectableCount(id) != 0 ||
		d.WakeFault(id) != 0 || d.LatentErrors(0) != 0 {
		t.Fatal("fault-free device reports nonzero counts")
	}
	if d.ScrubSegment(0, 0) != 0 {
		t.Fatal("scrub found errors on a fault-free device")
	}
	if d.fault != nil {
		t.Fatal("read paths must not allocate fault state")
	}
}

func TestRaiseCorrectableDeliversHook(t *testing.T) {
	d := newTestDevice()
	var got []FaultEvent
	d.OnFault(func(ev FaultEvent) { got = append(got, ev) })
	dsn := DSN(7)
	if err := d.RaiseCorrectable(dsn, 3, 100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("events = %d, want 1", len(got))
	}
	ev := got[0]
	loc := d.Codec().DecodeDSN(dsn)
	if ev.Kind != FaultCorrectable || ev.Count != 3 || ev.DSN != dsn || ev.At != 100 ||
		ev.Rank != (RankID{Channel: loc.Channel, Rank: loc.Rank}) {
		t.Fatalf("event = %+v", ev)
	}
	if d.CorrectableCount(ev.Rank) != 3 {
		t.Fatalf("correctable count = %d, want 3", d.CorrectableCount(ev.Rank))
	}
}

func TestRaiseValidation(t *testing.T) {
	d := newTestDevice()
	bad := DSN(d.Geometry().TotalSegments())
	if err := d.RaiseCorrectable(bad, 1, 0); err == nil {
		t.Error("out-of-range correctable accepted")
	}
	if err := d.RaiseCorrectable(0, 0, 0); err == nil {
		t.Error("zero-count correctable accepted")
	}
	if err := d.RaiseUncorrectable(DSN(-1), 0); err == nil {
		t.Error("negative-dsn uncorrectable accepted")
	}
	if err := d.SeedLatentErrors(bad, 1); err == nil {
		t.Error("out-of-range latent seed accepted")
	}
	if err := d.SeedLatentErrors(0, -2); err == nil {
		t.Error("negative latent count accepted")
	}
}

func TestLatentErrorsWaitForScrub(t *testing.T) {
	d := newTestDevice()
	var events int
	d.OnFault(func(FaultEvent) { events++ })
	dsn := DSN(42)
	if err := d.SeedLatentErrors(dsn, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.SeedLatentErrors(dsn, 2); err != nil {
		t.Fatal(err)
	}
	if events != 0 {
		t.Fatal("seeding latent errors must not raise events")
	}
	if d.LatentErrors(dsn) != 6 {
		t.Fatalf("latent = %d, want 6", d.LatentErrors(dsn))
	}
	if n := d.ScrubSegment(dsn, 500); n != 6 {
		t.Fatalf("scrub found %d, want 6", n)
	}
	if events != 1 {
		t.Fatalf("scrub raised %d events, want 1 batched event", events)
	}
	if d.LatentErrors(dsn) != 0 {
		t.Fatal("scrub left latent errors behind")
	}
	// A second scrub of the same segment finds nothing.
	if n := d.ScrubSegment(dsn, 600); n != 0 {
		t.Fatalf("re-scrub found %d, want 0", n)
	}
	loc := d.Codec().DecodeDSN(dsn)
	if d.CorrectableCount(RankID{Channel: loc.Channel, Rank: loc.Rank}) != 6 {
		t.Fatal("scrubbed errors not charged to the rank")
	}
}

func TestFailRankIdempotentAndScoped(t *testing.T) {
	d := newTestDevice()
	var events int
	d.OnFault(func(FaultEvent) { events++ })
	id := RankID{Channel: 1, Rank: 2}
	d.FailRank(id, 10)
	d.FailRank(id, 20) // no-op
	if events != 1 {
		t.Fatalf("events = %d, want 1 (idempotent failure)", events)
	}
	if !d.Failed(id) || !d.AnyFailed() {
		t.Fatal("failure not recorded")
	}
	if !d.FailedGlobal(d.Codec().GlobalRank(id.Channel, id.Rank)) {
		t.Fatal("FailedGlobal disagrees with Failed")
	}
	if d.Failed(RankID{Channel: 1, Rank: 3}) || d.Failed(RankID{Channel: 2, Rank: 2}) {
		t.Fatal("failure leaked to other ranks")
	}
}

func TestWakeFaultChargesSelfRefreshExit(t *testing.T) {
	d := newTestDevice()
	var wakes []FaultEvent
	d.OnFault(func(ev FaultEvent) {
		if ev.Kind == FaultWake {
			wakes = append(wakes, ev)
		}
	})
	id := RankID{Channel: 0, Rank: 1}
	extra := 50 * sim.Microsecond
	d.SetWakeFault(id, extra)
	if d.WakeFault(id) != extra {
		t.Fatal("wake fault not installed")
	}

	d.SetState(id, SelfRefresh, 1000)
	healthy := RankID{Channel: 0, Rank: 2}
	d.SetState(healthy, SelfRefresh, 1000)

	normal := d.SetState(healthy, Standby, 2000)
	faulty := d.SetState(id, Standby, 2000)
	if faulty != normal+extra {
		t.Fatalf("faulty wake penalty %v, want %v + %v", faulty, normal, extra)
	}
	if len(wakes) != 1 || wakes[0].Extra != extra || wakes[0].Rank != id {
		t.Fatalf("wake events = %+v", wakes)
	}

	// Clearing the fault restores normal exits and stops events. SetState
	// returns an absolute ready time that carries the earlier 50us penalty
	// forward, so re-transition well past it and compare penalty deltas.
	d.SetWakeFault(id, 0)
	enter := sim.Millisecond
	exit := 2 * sim.Millisecond
	d.SetState(id, SelfRefresh, enter)
	if got := d.SetState(id, Standby, exit) - exit; got != normal-2000 {
		t.Fatalf("post-clear wake penalty %v, want %v", got, normal-2000)
	}
	if len(wakes) != 1 {
		t.Fatal("cleared wake fault still raises events")
	}
}

func TestUncorrectableCounts(t *testing.T) {
	d := newTestDevice()
	dsn := DSN(11)
	if err := d.RaiseUncorrectable(dsn, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RaiseUncorrectable(dsn, 1); err != nil {
		t.Fatal(err)
	}
	loc := d.Codec().DecodeDSN(dsn)
	id := RankID{Channel: loc.Channel, Rank: loc.Rank}
	if d.UncorrectableCount(id) != 2 {
		t.Fatalf("uncorrectable = %d, want 2", d.UncorrectableCount(id))
	}
}
