// Package dram models the DRAM subsystem of a CXL memory expander as seen by
// the DRAM Translation Layer: device geometry (channels, ranks, banks), the
// DPA bit layout of Figure 6 (rank bits most significant, channels
// interleaved at segment granularity), JEDEC-style rank power states
// (standby, self-refresh, maximum power saving mode) with their transition
// penalties, a DDR4-like bank timing model, and the normalized power model of
// Table 2 / Figure 11.
package dram

import (
	"fmt"
)

// Geometry describes the physical organization of the CXL memory device.
type Geometry struct {
	// Channels is the number of independent DRAM channels.
	Channels int
	// RanksPerChannel is the number of ranks behind each channel.
	RanksPerChannel int
	// BanksPerRank is the number of banks in each rank.
	BanksPerRank int
	// SegmentBytes is the translation/migration granularity (2 MiB default).
	SegmentBytes int64
	// RankBytes is the capacity of a single rank.
	RankBytes int64
}

// Capacity constants.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// Default1TB returns the paper's evaluation geometry: a 1 TB CXL device with
// 4 channels × 8 ranks per channel × 32 GB ranks and 2 MB segments (Fig. 6).
func Default1TB() Geometry {
	return Geometry{
		Channels:        4,
		RanksPerChannel: 8,
		BanksPerRank:    16,
		SegmentBytes:    2 * MiB,
		RankBytes:       32 * GiB,
	}
}

// Hypothetical4TB returns the scaled device of §6.6: 8 channels with two
// 8-rank 256 GB DIMMs per channel (16 ranks/channel, 32 GB ranks).
func Hypothetical4TB() Geometry {
	return Geometry{
		Channels:        8,
		RanksPerChannel: 16,
		BanksPerRank:    16,
		SegmentBytes:    2 * MiB,
		RankBytes:       32 * GiB,
	}
}

// Validate checks internal consistency of the geometry.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("dram: channels must be positive, got %d", g.Channels)
	case g.RanksPerChannel <= 0:
		return fmt.Errorf("dram: ranks per channel must be positive, got %d", g.RanksPerChannel)
	case g.BanksPerRank <= 0:
		return fmt.Errorf("dram: banks per rank must be positive, got %d", g.BanksPerRank)
	case g.SegmentBytes <= 0 || g.SegmentBytes&(g.SegmentBytes-1) != 0:
		return fmt.Errorf("dram: segment size must be a positive power of two, got %d", g.SegmentBytes)
	case g.RankBytes <= 0 || g.RankBytes%g.SegmentBytes != 0:
		return fmt.Errorf("dram: rank size %d must be a positive multiple of segment size %d", g.RankBytes, g.SegmentBytes)
	}
	return nil
}

// TotalBytes reports the full device capacity.
func (g Geometry) TotalBytes() int64 {
	return int64(g.Channels) * int64(g.RanksPerChannel) * g.RankBytes
}

// TotalRanks reports the number of ranks in the device.
func (g Geometry) TotalRanks() int { return g.Channels * g.RanksPerChannel }

// SegmentsPerRank reports how many segments fit in one rank.
func (g Geometry) SegmentsPerRank() int64 { return g.RankBytes / g.SegmentBytes }

// TotalSegments reports the number of segments in the device.
func (g Geometry) TotalSegments() int64 {
	return int64(g.TotalRanks()) * g.SegmentsPerRank()
}

// RankGroupBytes is the capacity of one rank group (the same rank index
// across all channels), the granularity of rank-level power-down (§3.3).
func (g Geometry) RankGroupBytes() int64 { return int64(g.Channels) * g.RankBytes }

// String renders the geometry compactly, e.g. "4ch x 8rk x 32GiB (1TiB)".
func (g Geometry) String() string {
	return fmt.Sprintf("%dch x %drk x %s (%s)",
		g.Channels, g.RanksPerChannel, FormatBytes(g.RankBytes), FormatBytes(g.TotalBytes()))
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(b int64) string {
	switch {
	case b >= TiB && b%TiB == 0:
		return fmt.Sprintf("%dTiB", b/TiB)
	case b >= GiB && b%GiB == 0:
		return fmt.Sprintf("%dGiB", b/GiB)
	case b >= MiB && b%MiB == 0:
		return fmt.Sprintf("%dMiB", b/MiB)
	case b >= KiB && b%KiB == 0:
		return fmt.Sprintf("%dKiB", b/KiB)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
