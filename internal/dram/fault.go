package dram

import (
	"fmt"

	"dtl/internal/sim"
)

// FaultKind classifies a media or rank fault raised by the device.
type FaultKind int

const (
	// FaultCorrectable is an ECC-corrected media error: data is intact but
	// the error counts toward the rank's health budget.
	FaultCorrectable FaultKind = iota
	// FaultUncorrectable is an ECC-uncorrectable media error detected on a
	// segment. The DTL treats the segment's rank as suspect.
	FaultUncorrectable
	// FaultWake is a transition fault: the rank took an abnormal latency
	// spike exiting a low-power state (or is stuck and barely wakes at all).
	FaultWake
	// FaultRankFailure is a whole-rank failure: the rank keeps serving reads
	// in a degraded mode (extra access latency) but should be evacuated.
	FaultRankFailure
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCorrectable:
		return "correctable"
	case FaultUncorrectable:
		return "uncorrectable"
	case FaultWake:
		return "wake-fault"
	case FaultRankFailure:
		return "rank-failure"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is the ECC/health record the device reports to its observer.
type FaultEvent struct {
	Kind FaultKind
	Rank RankID
	// DSN is the affected segment for media errors (-1 for rank-scoped
	// faults).
	DSN DSN
	// Count is the number of errors folded into this event (correctable
	// errors arriving in bursts are batched).
	Count int
	// Extra is the abnormal latency for FaultWake events.
	Extra sim.Time
	At    sim.Time
}

// FaultHook observes fault events as they are raised. Hooks run synchronously
// on the raising path and must not call back into the device.
type FaultHook func(ev FaultEvent)

// rankFault is the per-rank fault state the device maintains.
type rankFault struct {
	failed        bool
	wakeExtra     sim.Time // abnormal extra latency on self-refresh exit
	correctable   int64
	uncorrectable int64
}

// faultState is lazily allocated on the first injected fault so that
// fault-free devices pay nothing on the access path.
type faultState struct {
	ranks []rankFault
	// latent maps a segment to the number of errors a patrol scrub will
	// discover there (the "pending" errors previously tracked ad hoc by the
	// core scrubber).
	latent map[DSN]int
}

func (d *Device) faults() *faultState {
	if d.fault == nil {
		d.fault = &faultState{
			ranks:  make([]rankFault, d.geom.TotalRanks()),
			latent: make(map[DSN]int),
		}
	}
	return d.fault
}

// OnFault installs the fault observer (nil uninstalls it). The core
// HealthMonitor uses it as the device→DTL error-reporting path.
func (d *Device) OnFault(h FaultHook) { d.onFault = h }

func (d *Device) raise(ev FaultEvent) {
	if d.onFault != nil {
		d.onFault(ev)
	}
}

// checkDSN validates that a segment number addresses a real segment slot.
func (d *Device) checkDSN(dsn DSN) error {
	if int64(dsn) < 0 || int64(dsn) >= d.geom.TotalSegments() {
		return fmt.Errorf("dram: dsn %d out of range [0,%d)", dsn, d.geom.TotalSegments())
	}
	return nil
}

// RaiseCorrectable reports n ECC-corrected errors on a segment at now. The
// event is delivered to the fault hook immediately (the DDR5-style in-band
// ECC reporting path), unlike SeedLatentErrors which waits for patrol scrub.
func (d *Device) RaiseCorrectable(dsn DSN, n int, now sim.Time) error {
	if err := d.checkDSN(dsn); err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("dram: correctable error count must be positive, got %d", n)
	}
	f := d.faults()
	loc := d.codec.DecodeDSN(dsn)
	id := RankID{Channel: loc.Channel, Rank: loc.Rank}
	f.ranks[d.codec.GlobalRank(loc.Channel, loc.Rank)].correctable += int64(n)
	d.raise(FaultEvent{Kind: FaultCorrectable, Rank: id, DSN: dsn, Count: n, At: now})
	return nil
}

// RaiseUncorrectable reports an ECC-uncorrectable error on a segment at now.
func (d *Device) RaiseUncorrectable(dsn DSN, now sim.Time) error {
	if err := d.checkDSN(dsn); err != nil {
		return err
	}
	f := d.faults()
	loc := d.codec.DecodeDSN(dsn)
	id := RankID{Channel: loc.Channel, Rank: loc.Rank}
	f.ranks[d.codec.GlobalRank(loc.Channel, loc.Rank)].uncorrectable++
	d.raise(FaultEvent{Kind: FaultUncorrectable, Rank: id, DSN: dsn, Count: 1, At: now})
	return nil
}

// SeedLatentErrors plants n correctable errors on a segment that remain
// invisible until a patrol scrub visits it (ScrubSegment). This is the
// error-injection path for testing the scrubber itself.
func (d *Device) SeedLatentErrors(dsn DSN, n int) error {
	if err := d.checkDSN(dsn); err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("dram: latent error count must be positive, got %d", n)
	}
	d.faults().latent[dsn] += n
	return nil
}

// ScrubSegment models a patrol-scrub read of one segment at now: any latent
// errors planted there are discovered, counted against the rank, and
// reported through the fault hook. It returns the number of errors found.
func (d *Device) ScrubSegment(dsn DSN, now sim.Time) int {
	if d.fault == nil {
		return 0
	}
	n, ok := d.fault.latent[dsn]
	if !ok {
		return 0
	}
	delete(d.fault.latent, dsn)
	loc := d.codec.DecodeDSN(dsn)
	id := RankID{Channel: loc.Channel, Rank: loc.Rank}
	d.fault.ranks[d.codec.GlobalRank(loc.Channel, loc.Rank)].correctable += int64(n)
	d.raise(FaultEvent{Kind: FaultCorrectable, Rank: id, DSN: dsn, Count: n, At: now})
	return n
}

// LatentErrors reports the number of seeded-but-undiscovered errors on a
// segment (for tests).
func (d *Device) LatentErrors(dsn DSN) int {
	if d.fault == nil {
		return 0
	}
	return d.fault.latent[dsn]
}

// FailRank marks a whole rank as failed at now. A failed rank keeps
// retaining and serving data — the media is degraded, not gone — but every
// access pays Timing.DegradedAccess and the health monitor is expected to
// evacuate and retire it. Failing an already-failed rank is a no-op.
func (d *Device) FailRank(id RankID, now sim.Time) {
	f := d.faults()
	gr := d.codec.GlobalRank(id.Channel, id.Rank)
	if f.ranks[gr].failed {
		return
	}
	f.ranks[gr].failed = true
	d.raise(FaultEvent{Kind: FaultRankFailure, Rank: id, DSN: -1, Count: 1, At: now})
}

// Failed reports whether the rank has suffered a whole-rank failure.
func (d *Device) Failed(id RankID) bool {
	if d.fault == nil {
		return false
	}
	return d.fault.ranks[d.codec.GlobalRank(id.Channel, id.Rank)].failed
}

// FailedGlobal is Failed keyed by global rank id (allocator hot path).
func (d *Device) FailedGlobal(gr int) bool {
	if d.fault == nil {
		return false
	}
	return d.fault.ranks[gr].failed
}

// AnyFailed reports whether any rank has failed (fast path gate for
// fault-aware routing).
func (d *Device) AnyFailed() bool {
	if d.fault == nil {
		return false
	}
	for i := range d.fault.ranks {
		if d.fault.ranks[i].failed {
			return true
		}
	}
	return false
}

// SetWakeFault installs an abnormal extra latency charged every time the
// rank exits self-refresh; each such exit raises a FaultWake event. A very
// large extra models a rank stuck in self-refresh. Zero clears the fault.
func (d *Device) SetWakeFault(id RankID, extra sim.Time) {
	d.faults().ranks[d.codec.GlobalRank(id.Channel, id.Rank)].wakeExtra = extra
}

// WakeFault reports the configured abnormal self-refresh-exit latency.
func (d *Device) WakeFault(id RankID) sim.Time {
	if d.fault == nil {
		return 0
	}
	return d.fault.ranks[d.codec.GlobalRank(id.Channel, id.Rank)].wakeExtra
}

// CorrectableCount reports the total ECC-corrected errors charged to a rank.
func (d *Device) CorrectableCount(id RankID) int64 {
	if d.fault == nil {
		return 0
	}
	return d.fault.ranks[d.codec.GlobalRank(id.Channel, id.Rank)].correctable
}

// UncorrectableCount reports the total uncorrectable errors on a rank.
func (d *Device) UncorrectableCount(id RankID) int64 {
	if d.fault == nil {
		return 0
	}
	return d.fault.ranks[d.codec.GlobalRank(id.Channel, id.Rank)].uncorrectable
}
