package dram

import (
	"fmt"

	"dtl/internal/sim"
)

// PowerState is the JEDEC-visible power state of a DRAM rank.
type PowerState int

const (
	// Standby is the normal active/idle state: the rank responds to
	// commands and is refreshed by the controller. Normalized power 1.0.
	Standby PowerState = iota
	// SelfRefresh retains data with internal refresh and no external
	// clocking. Normalized power 0.2 (Table 2); exit costs ~ hundreds of ns.
	SelfRefresh
	// MPSM is the maximum power saving mode: no data retention, no response
	// to commands other than exit. Normalized power 0.068 (Table 2).
	MPSM
)

// String implements fmt.Stringer.
func (s PowerState) String() string {
	switch s {
	case Standby:
		return "standby"
	case SelfRefresh:
		return "self-refresh"
	case MPSM:
		return "mpsm"
	default:
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
}

// RetainsData reports whether the state preserves DRAM contents.
func (s PowerState) RetainsData() bool { return s != MPSM }

// PowerModel holds the normalized power parameters of Table 2 together with
// the active-power slope of Figure 11(b) and absolute scaling.
//
// All background powers are per rank, normalized so that one standby rank
// consumes 1.0 unit. WattsPerUnit converts units to watts for reporting; the
// default corresponds to a 4Rx4 DDR4-2933 128 GB DIMM rank (~1.25 W standby
// background including refresh).
type PowerModel struct {
	StandbyPower     float64 // per-rank background power in Standby (normalized 1.0)
	SelfRefreshPower float64 // per-rank background power in SelfRefresh
	MPSMPower        float64 // per-rank background power in MPSM
	// ActivePowerPerGBs is the additional (read+write) power per GB/s of
	// bandwidth delivered by a rank, in the same normalized units.
	// Figure 11(b) reports near-linear scaling of active power with
	// bandwidth utilization.
	ActivePowerPerGBs float64
	// WattsPerUnit converts normalized units into watts.
	WattsPerUnit float64
}

// DefaultPowerModel returns the Table 2 parameters. The active slope is
// chosen so that at the paper's CloudSuite operating point (~30 GB/s across
// the device, §5.2) active power is roughly a third of total baseline DRAM
// power, matching the Figure 13 breakdown where background power dominates.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		StandbyPower:      1.0,
		SelfRefreshPower:  0.2,
		MPSMPower:         0.068,
		ActivePowerPerGBs: 0.55,
		WattsPerUnit:      1.25,
	}
}

// Background reports the per-rank background power (normalized units) in s.
func (m PowerModel) Background(s PowerState) float64 {
	switch s {
	case Standby:
		return m.StandbyPower
	case SelfRefresh:
		return m.SelfRefreshPower
	case MPSM:
		return m.MPSMPower
	default:
		panic(fmt.Sprintf("dram: unknown power state %d", int(s)))
	}
}

// Active reports the active power (normalized units) for a rank delivering
// the given bandwidth in GB/s.
func (m PowerModel) Active(gbPerSec float64) float64 {
	if gbPerSec < 0 {
		panic(fmt.Sprintf("dram: negative bandwidth %f", gbPerSec))
	}
	return m.ActivePowerPerGBs * gbPerSec
}

// Timing collects the DDR4-like timing parameters used by the controller
// model. Values approximate DDR4-2933 and the transition penalties quoted in
// the paper (§2: self-refresh and MPSM exit are "hundreds of nanoseconds").
type Timing struct {
	TRCD  sim.Time // activate → column command
	TCL   sim.Time // column command → data
	TRP   sim.Time // precharge
	TRAS  sim.Time // activate → precharge minimum
	TBL   sim.Time // burst transfer time of one 64 B line on the bus
	TCCD  sim.Time // column-to-column, same bank group (bus occupancy floor)
	TRTR  sim.Time // rank-to-rank switch penalty on a shared channel bus
	TRFC  sim.Time // refresh cycle time (rank blocked per refresh)
	TREFI sim.Time // average refresh interval per rank
	TWR   sim.Time // write recovery: write burst → precharge
	TWTR  sim.Time // write-to-read bus turnaround
	TRTW  sim.Time // read-to-write bus turnaround

	SelfRefreshExit  sim.Time // tXS: self-refresh exit to first command
	MPSMExit         sim.Time // MPSM exit to first command
	MPSMEnter        sim.Time
	SelfRefreshEnter sim.Time

	// DegradedAccess is the extra per-access latency charged when the target
	// rank has suffered a whole-rank failure (retries, on-die repair reads)
	// until the DTL drains and retires it.
	DegradedAccess sim.Time
}

// DefaultTiming returns DDR4-2933-like parameters.
func DefaultTiming() Timing {
	return Timing{
		TRCD:             14 * sim.Nanosecond,
		TCL:              14 * sim.Nanosecond,
		TRP:              14 * sim.Nanosecond,
		TRAS:             32 * sim.Nanosecond,
		TBL:              3 * sim.Nanosecond, // 64B burst at ~23.4 GB/s pin rate
		TCCD:             5 * sim.Nanosecond,
		TRTR:             2 * sim.Nanosecond,
		TRFC:             350 * sim.Nanosecond,
		TREFI:            7800 * sim.Nanosecond,
		TWR:              15 * sim.Nanosecond,
		TWTR:             8 * sim.Nanosecond,
		TRTW:             4 * sim.Nanosecond,
		SelfRefreshExit:  400 * sim.Nanosecond,
		MPSMExit:         600 * sim.Nanosecond,
		MPSMEnter:        200 * sim.Nanosecond,
		SelfRefreshEnter: 100 * sim.Nanosecond,
		DegradedAccess:   2000 * sim.Nanosecond,
	}
}
