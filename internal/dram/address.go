package dram

// DPA is a DRAM device physical address: the post-translation address that
// selects a (rank, channel, segment, offset) tuple inside the device.
//
// Layout (Figure 6), from most to least significant:
//
//	| rank | segment index within (rank,channel) | channel | segment offset |
//
// Rank bits occupy the most significant positions so that ranks are NOT
// interleaved: consecutive device addresses stay within a rank until an
// entire rank's worth of segments has been consumed. Channel bits sit
// immediately above the segment offset so that consecutive segments rotate
// across channels, preserving channel-level parallelism for every VM.
//
// The implementation uses arithmetic (div/mod) rather than literal bit
// slicing so that non-power-of-two channel and rank counts (e.g. the
// 6-rank configurations of Figure 2) decode with the same ordering; for
// power-of-two counts the two are identical.
type DPA int64

// HPA is a host physical address as issued over CXL, before DTL translation.
type HPA int64

// DSN is a DRAM segment number: DPA >> log2(segment size). It identifies a
// physical segment slot in the device.
type DSN int64

// HSN is a host segment number: HPA >> log2(segment size). It decomposes
// into host ID, allocation-unit (AU) ID and AU offset (Figure 4).
type HSN int64

// Loc is a fully decoded device segment location.
type Loc struct {
	Rank    int   // rank index within a channel
	Channel int   // channel index
	Index   int64 // segment index within the (rank, channel) pair
}

// AddressCodec converts between DPA/DSN values and decoded locations for a
// fixed geometry. All methods are pure; build one with NewAddressCodec.
type AddressCodec struct {
	geom        Geometry
	segShift    uint // log2(segment size)
	channels    int64
	segsPerRkCh int64
}

// NewAddressCodec builds a codec for g.
func NewAddressCodec(g Geometry) (*AddressCodec, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &AddressCodec{
		geom:        g,
		segShift:    log2(g.SegmentBytes),
		channels:    int64(g.Channels),
		segsPerRkCh: g.SegmentsPerRank(),
	}, nil
}

// MustCodec is NewAddressCodec that panics on error, for tests and examples
// with known-good geometry.
func MustCodec(g Geometry) *AddressCodec {
	c, err := NewAddressCodec(g)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the geometry the codec was built for.
func (c *AddressCodec) Geometry() Geometry { return c.geom }

// SegmentShift reports log2 of the segment size.
func (c *AddressCodec) SegmentShift() uint { return c.segShift }

// SegmentOf reports the DSN containing the device address.
func (c *AddressCodec) SegmentOf(a DPA) DSN { return DSN(int64(a) >> c.segShift) }

// HostSegmentOf reports the HSN containing the host address.
func (c *AddressCodec) HostSegmentOf(a HPA) HSN { return HSN(int64(a) >> c.segShift) }

// OffsetOf reports the byte offset of a within its segment.
func (c *AddressCodec) OffsetOf(a DPA) int64 { return int64(a) & (c.geom.SegmentBytes - 1) }

// DecodeDSN splits a DSN into its rank, channel and per-(rank,channel)
// index.
func (c *AddressCodec) DecodeDSN(s DSN) Loc {
	v := int64(s)
	ch := v % c.channels
	block := v / c.channels
	return Loc{
		Channel: int(ch),
		Index:   block % c.segsPerRkCh,
		Rank:    int(block / c.segsPerRkCh),
	}
}

// EncodeDSN is the inverse of DecodeDSN.
func (c *AddressCodec) EncodeDSN(l Loc) DSN {
	block := int64(l.Rank)*c.segsPerRkCh + l.Index
	return DSN(block*c.channels + int64(l.Channel))
}

// DSNToDPA returns the first device address of segment s.
func (c *AddressCodec) DSNToDPA(s DSN) DPA { return DPA(int64(s) << c.segShift) }

// Compose builds a full DPA from a segment and an in-segment offset.
func (c *AddressCodec) Compose(s DSN, offset int64) DPA {
	return DPA(int64(s)<<c.segShift | offset&(c.geom.SegmentBytes-1))
}

// RankOf reports the (channel, rank) pair servicing the device address.
func (c *AddressCodec) RankOf(a DPA) (channel, rank int) {
	l := c.DecodeDSN(c.SegmentOf(a))
	return l.Channel, l.Rank
}

// BankOf reports the bank within the rank servicing the device address.
// Banks are interleaved across 4 KiB row-buffer-sized blocks inside a
// segment, the conventional low-order bank hash.
func (c *AddressCodec) BankOf(a DPA) int {
	const rowBlock = 4 << 10
	return int((int64(a) / rowBlock) % int64(c.geom.BanksPerRank))
}

// RowOf reports the DRAM row addressed within the bank (used for row-buffer
// hit/miss decisions in the timing model).
func (c *AddressCodec) RowOf(a DPA) int64 {
	const rowBlock = 4 << 10
	return int64(a) / rowBlock / int64(c.geom.BanksPerRank)
}

// GlobalRank flattens a (channel, rank) pair into a device-wide rank id.
func (c *AddressCodec) GlobalRank(channel, rank int) int {
	return rank*c.geom.Channels + channel
}

// SplitGlobalRank is the inverse of GlobalRank.
func (c *AddressCodec) SplitGlobalRank(gr int) (channel, rank int) {
	return gr % c.geom.Channels, gr / c.geom.Channels
}

// RankInterleavedDSN maps a sequential segment number to a device segment
// under conventional fine-grained rank interleaving: consecutive segments
// rotate over channels first, then over ranks, so adjacent traffic spreads
// across every rank. This is the baseline mapping the paper's Figure 5
// compares against (DTL itself never uses it).
func (c *AddressCodec) RankInterleavedDSN(seq int64) DSN {
	ranks := int64(c.geom.RanksPerChannel)
	ch := seq % c.channels
	rest := seq / c.channels
	rank := rest % ranks
	idx := rest / ranks
	return c.EncodeDSN(Loc{Rank: int(rank), Channel: int(ch), Index: idx % c.segsPerRkCh})
}

func log2(v int64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
