package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Geometry)
		wantErr bool
	}{
		{"default ok", func(g *Geometry) {}, false},
		{"zero channels", func(g *Geometry) { g.Channels = 0 }, true},
		{"negative ranks", func(g *Geometry) { g.RanksPerChannel = -1 }, true},
		{"zero banks", func(g *Geometry) { g.BanksPerRank = 0 }, true},
		{"non pow2 segment", func(g *Geometry) { g.SegmentBytes = 3 * MiB }, true},
		{"rank not multiple of segment", func(g *Geometry) { g.RankBytes = 3*MiB + 1 }, true},
		{"4MB segment ok", func(g *Geometry) { g.SegmentBytes = 4 * MiB }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := Default1TB()
			tc.mutate(&g)
			err := g.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() err=%v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestGeometryCapacities(t *testing.T) {
	g := Default1TB()
	if got := g.TotalBytes(); got != 1*TiB {
		t.Errorf("TotalBytes = %d, want 1TiB", got)
	}
	if got := g.TotalRanks(); got != 32 {
		t.Errorf("TotalRanks = %d, want 32", got)
	}
	if got := g.SegmentsPerRank(); got != 16384 {
		t.Errorf("SegmentsPerRank = %d, want 16384", got)
	}
	if got := g.TotalSegments(); got != 32*16384 {
		t.Errorf("TotalSegments = %d, want %d", got, 32*16384)
	}
	if got := g.RankGroupBytes(); got != 128*GiB {
		t.Errorf("RankGroupBytes = %d, want 128GiB", got)
	}

	g4 := Hypothetical4TB()
	if got := g4.TotalBytes(); got != 4*TiB {
		t.Errorf("4TB TotalBytes = %d, want 4TiB", got)
	}
}

func TestCodecSupportsNonPow2Ranks(t *testing.T) {
	// Figure 2 sweeps 8/6/4/2 ranks per channel; 6 must decode cleanly.
	g := Default1TB()
	g.RanksPerChannel = 6
	c, err := NewAddressCodec(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []Loc{{0, 0, 0}, {5, 3, 100}, {2, 1, g.SegmentsPerRank() - 1}} {
		if got := c.DecodeDSN(c.EncodeDSN(l)); got != l {
			t.Fatalf("round trip %+v -> %+v", l, got)
		}
	}
}

func TestRankInterleavedDSNRotatesRanks(t *testing.T) {
	c := MustCodec(Default1TB())
	g := c.Geometry()
	// Consecutive sequential segments must rotate channels first, then
	// ranks, covering every (channel, rank) pair before reusing one.
	seen := map[[2]int]bool{}
	pairs := g.Channels * g.RanksPerChannel
	for seq := int64(0); seq < int64(pairs); seq++ {
		l := c.DecodeDSN(c.RankInterleavedDSN(seq))
		key := [2]int{l.Channel, l.Rank}
		if seen[key] {
			t.Fatalf("pair %v reused before full rotation at seq %d", key, seq)
		}
		seen[key] = true
	}
	if len(seen) != pairs {
		t.Fatalf("covered %d pairs, want %d", len(seen), pairs)
	}
}

func TestDSNRoundTrip(t *testing.T) {
	c := MustCodec(Default1TB())
	g := c.Geometry()
	for rank := 0; rank < g.RanksPerChannel; rank++ {
		for ch := 0; ch < g.Channels; ch++ {
			for _, idx := range []int64{0, 1, 7, g.SegmentsPerRank() - 1} {
				l := Loc{Rank: rank, Channel: ch, Index: idx}
				got := c.DecodeDSN(c.EncodeDSN(l))
				if got != l {
					t.Fatalf("round trip %+v -> %+v", l, got)
				}
			}
		}
	}
}

func TestDSNRoundTripProperty(t *testing.T) {
	c := MustCodec(Default1TB())
	total := c.Geometry().TotalSegments()
	f := func(raw int64) bool {
		s := DSN(((raw % total) + total) % total)
		return c.EncodeDSN(c.DecodeDSN(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelInterleavingAtSegmentGranularity(t *testing.T) {
	// Consecutive segments (consecutive DSNs) must rotate across channels
	// while staying in the same rank until the rank is exhausted (Fig. 6).
	c := MustCodec(Default1TB())
	prev := c.DecodeDSN(0)
	if prev.Channel != 0 || prev.Rank != 0 {
		t.Fatalf("segment 0 decodes to %+v, want ch0 rk0", prev)
	}
	for s := DSN(1); s < 64; s++ {
		l := c.DecodeDSN(s)
		if l.Rank != 0 {
			t.Fatalf("segment %d in rank %d, want rank 0 (no rank interleaving)", s, l.Rank)
		}
		wantCh := int(int64(s) % int64(c.Geometry().Channels))
		if l.Channel != wantCh {
			t.Fatalf("segment %d in channel %d, want %d", s, l.Channel, wantCh)
		}
	}
}

func TestRankBitsMostSignificant(t *testing.T) {
	c := MustCodec(Default1TB())
	g := c.Geometry()
	perRank := g.SegmentsPerRank() * int64(g.Channels)
	for rank := 0; rank < g.RanksPerChannel; rank++ {
		first := DSN(int64(rank) * perRank)
		last := DSN(int64(rank+1)*perRank - 1)
		if got := c.DecodeDSN(first).Rank; got != rank {
			t.Fatalf("first segment of rank %d decodes to rank %d", rank, got)
		}
		if got := c.DecodeDSN(last).Rank; got != rank {
			t.Fatalf("last segment of rank %d decodes to rank %d", rank, got)
		}
	}
}

func TestComposeAndOffsets(t *testing.T) {
	c := MustCodec(Default1TB())
	s := DSN(12345)
	a := c.Compose(s, 999)
	if got := c.SegmentOf(a); got != s {
		t.Errorf("SegmentOf = %d, want %d", got, s)
	}
	if got := c.OffsetOf(a); got != 999 {
		t.Errorf("OffsetOf = %d, want 999", got)
	}
	if got := c.DSNToDPA(s); got != DPA(int64(s)<<c.SegmentShift()) {
		t.Errorf("DSNToDPA = %d", got)
	}
}

func TestGlobalRankRoundTrip(t *testing.T) {
	c := MustCodec(Default1TB())
	g := c.Geometry()
	seen := make(map[int]bool)
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			gr := c.GlobalRank(ch, rk)
			if seen[gr] {
				t.Fatalf("duplicate global rank %d", gr)
			}
			seen[gr] = true
			c2, r2 := c.SplitGlobalRank(gr)
			if c2 != ch || r2 != rk {
				t.Fatalf("SplitGlobalRank(%d) = (%d,%d), want (%d,%d)", gr, c2, r2, ch, rk)
			}
		}
	}
	if len(seen) != g.TotalRanks() {
		t.Fatalf("covered %d global ranks, want %d", len(seen), g.TotalRanks())
	}
}

func TestBankOfWithinRange(t *testing.T) {
	c := MustCodec(Default1TB())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := DPA(rng.Int63n(c.Geometry().TotalBytes()))
		b := c.BankOf(a)
		if b < 0 || b >= c.Geometry().BanksPerRank {
			t.Fatalf("BankOf(%d) = %d out of range", a, b)
		}
	}
}

func TestBankInterleavingWithinSegment(t *testing.T) {
	// Consecutive 4 KiB blocks within a segment should map to different banks.
	c := MustCodec(Default1TB())
	base := c.DSNToDPA(100)
	b0 := c.BankOf(base)
	b1 := c.BankOf(base + 4096)
	if b0 == b1 {
		t.Fatalf("adjacent 4KiB blocks map to same bank %d", b0)
	}
}

func TestRankOfMatchesDecode(t *testing.T) {
	c := MustCodec(Default1TB())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a := DPA(rng.Int63n(c.Geometry().TotalBytes()))
		ch, rk := c.RankOf(a)
		l := c.DecodeDSN(c.SegmentOf(a))
		if ch != l.Channel || rk != l.Rank {
			t.Fatalf("RankOf(%d) = (%d,%d), decode says (%d,%d)", a, ch, rk, l.Channel, l.Rank)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		KiB:       "1KiB",
		2 * MiB:   "2MiB",
		32 * GiB:  "32GiB",
		1 * TiB:   "1TiB",
		3*KiB + 1: "3073B",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
