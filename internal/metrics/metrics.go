// Package metrics provides small statistics helpers (histograms, means,
// percentiles) and fixed-width ASCII table rendering for experiment output.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds basic statistics of a sample set.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P95, P99  float64
}

// Summarize computes a Summary. It copies the input before sorting. An
// empty input yields the zero Summary (Count 0), not NaNs, so it is safe to
// render unconditionally.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	var sum float64
	for _, x := range v {
		sum += x
	}
	return Summary{
		Count: len(v),
		Mean:  sum / float64(len(v)),
		Min:   v[0],
		Max:   v[len(v)-1],
		P50:   percentileSorted(v, 50),
		P95:   percentileSorted(v, 95),
		P99:   percentileSorted(v, 99),
	}
}

// Percentile reports the p-th percentile (0-100) of values, interpolating
// linearly between order statistics.
//
// Edge cases, chosen so callers can feed raw sample sets without guards:
// an empty slice returns NaN (there is no meaningful percentile, and NaN
// poisons downstream arithmetic instead of silently passing as 0); a
// single-element slice returns that element for every p; p <= 0 returns the
// minimum and p >= 100 the maximum.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	return percentileSorted(v, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// GeoMean reports the geometric mean.
//
// It returns NaN for an empty slice and whenever any value is zero or
// negative (the log-domain mean is undefined there). As with Percentile,
// NaN is deliberate: a silent 0 or a skipped element would corrupt
// normalized-speedup summaries without any visible signal.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, v := range values {
		if v <= 0 {
			return math.NaN()
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values)))
}

// Histogram is a fixed-bucket counter.
type Histogram struct {
	bounds []float64 // upper bounds; the last bucket is unbounded
	counts []int64
	total  int64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe adds a value. Bucket upper bounds are exclusive: a value exactly
// equal to bounds[i] is counted in bucket i+1, and values at or above the
// last bound land in the final unbounded bucket.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) && v == h.bounds[idx] {
		idx++ // upper bounds are exclusive
	}
	h.counts[idx]++
	h.total++
}

// Fractions returns each bucket's share of observations.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Total reports the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Table renders aligned ASCII tables for experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := strings.Split(fmt.Sprintf(format, cells...), "\t")
	t.AddRow(parts...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}
