package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.Count != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(v, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(v, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(v, 50); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("p50 = %v, want 5.5", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("percentile of empty should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("geomean = %v, want 10", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("geomean with negatives should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("geomean of empty should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	for _, v := range []float64{1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	f := h.Fractions()
	// 1,5 < 10 ; 10,50 in [10,100) ; 1000 >= 100.
	if f[0] != 0.4 || f[1] != 0.4 || f[2] != 0.2 {
		t.Fatalf("fractions = %v", f)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram([]float64{10, 10})
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram([]float64{1})
	f := h.Fractions()
	if f[0] != 0 || f[1] != 0 {
		t.Fatalf("fractions = %v", f)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta\t%0.2f", 2.5)
	tab.AddRow("gamma") // short row
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "2.50") {
		t.Fatalf("formatted row = %q", lines[3])
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Fatalf("trailing space in %q", l)
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if v := Percentile(nil, 50); !math.IsNaN(v) {
		t.Errorf("Percentile(nil) = %v, want NaN", v)
	}
	if v := Percentile([]float64{}, 99); !math.IsNaN(v) {
		t.Errorf("Percentile(empty) = %v, want NaN", v)
	}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if v := Percentile([]float64{7.5}, p); v != 7.5 {
			t.Errorf("Percentile(single, %v) = %v, want 7.5", p, v)
		}
	}
	vals := []float64{3, 1, 2}
	if v := Percentile(vals, -10); v != 1 {
		t.Errorf("Percentile(p<0) = %v, want min 1", v)
	}
	if v := Percentile(vals, 250); v != 3 {
		t.Errorf("Percentile(p>100) = %v, want max 3", v)
	}
}

func TestGeoMeanEdgeCases(t *testing.T) {
	if v := GeoMean(nil); !math.IsNaN(v) {
		t.Errorf("GeoMean(nil) = %v, want NaN", v)
	}
	if v := GeoMean([]float64{2, 0, 8}); !math.IsNaN(v) {
		t.Errorf("GeoMean with zero = %v, want NaN", v)
	}
	if v := GeoMean([]float64{2, -1, 8}); !math.IsNaN(v) {
		t.Errorf("GeoMean with negative = %v, want NaN", v)
	}
	if v := GeoMean([]float64{5}); v != 5 {
		t.Errorf("GeoMean(single) = %v, want 5", v)
	}
}

func TestSummarizeEmptyIsZeroNotNaN(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero Summary", s)
	}
}

func TestHistogramObserveOnBound(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.Observe(10) // exactly on the first bound: exclusive, so bucket 1
	h.Observe(20) // exactly on the last bound: unbounded tail bucket
	h.Observe(9.999)
	h.Observe(19.999)
	want := []int64{1, 2, 1}
	for i, c := range h.counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}
