package cache

import (
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 32 << 10, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 8},
		{SizeBytes: 32 << 10, Ways: 0},
		{SizeBytes: 1000, Ways: 3},       // not divisible
		{SizeBytes: 3 * 64 * 8, Ways: 8}, // 3 sets, not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", c)
		}
	}
}

func TestTable3Configs(t *testing.T) {
	cfgs := Table3()
	if len(cfgs) != 3 {
		t.Fatalf("levels = %d, want 3", len(cfgs))
	}
	if cfgs[0].SizeBytes != 32<<10 || cfgs[0].Ways != 8 {
		t.Errorf("L1 = %+v", cfgs[0])
	}
	if cfgs[1].SizeBytes != 1<<20 || cfgs[1].Ways != 8 {
		t.Errorf("L2 = %+v", cfgs[1])
	}
	if cfgs[2].SizeBytes != 8<<20 || cfgs[2].Ways != 16 {
		t.Errorf("LLC = %+v", cfgs[2])
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("table 3 config invalid: %v", err)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := MustTable3()
	first := h.Access(0x1000, false)
	if len(first) != 1 || first[0].Write {
		t.Fatalf("cold access = %v, want one read miss", first)
	}
	second := h.Access(0x1000, false)
	if len(second) != 0 {
		t.Fatalf("warm access = %v, want hit (no memory traffic)", second)
	}
	// Same line, different byte.
	third := h.Access(0x1004, true)
	if len(third) != 0 {
		t.Fatalf("same-line access = %v, want hit", third)
	}
}

func TestWorkingSetFitsInLLC(t *testing.T) {
	h := MustTable3()
	// 4 MB working set < 8 MB LLC: second pass should be ~all hits.
	const ws = 4 << 20
	for pass := 0; pass < 2; pass++ {
		misses := 0
		for a := int64(0); a < ws; a += LineBytes {
			if len(h.Access(a, false)) > 0 {
				misses++
			}
		}
		if pass == 1 && misses > ws/LineBytes/100 {
			t.Fatalf("second pass misses = %d, want ~0", misses)
		}
	}
}

func TestWorkingSetExceedsLLC(t *testing.T) {
	h := MustTable3()
	// 32 MB streaming working set > 8 MB LLC: every pass misses.
	const ws = 32 << 20
	for pass := 0; pass < 2; pass++ {
		misses := 0
		for a := int64(0); a < ws; a += LineBytes {
			if len(h.Access(a, false)) > 0 {
				misses++
			}
		}
		if pass == 1 && misses < ws/LineBytes*9/10 {
			t.Fatalf("streaming pass misses = %d of %d, want nearly all", misses, ws/LineBytes)
		}
	}
}

func TestDirtyWritebackReachesMemory(t *testing.T) {
	h := MustTable3()
	// Dirty a large region, then stream a disjoint larger region to force
	// evictions; some write-backs must reach memory.
	const region = 16 << 20
	for a := int64(0); a < region; a += LineBytes {
		h.Access(a, true)
	}
	wbs := 0
	for a := int64(region); a < 3*region; a += LineBytes {
		for _, m := range h.Access(a, false) {
			if m.Write {
				wbs++
			}
		}
	}
	if wbs == 0 {
		t.Fatal("no write-backs reached memory after evicting a dirty region")
	}
}

func TestWritebackAddressesComeFromDirtiedRegion(t *testing.T) {
	h := MustTable3()
	const region = 16 << 20
	for a := int64(0); a < region; a += LineBytes {
		h.Access(a, true)
	}
	for a := int64(region); a < 3*region; a += LineBytes {
		for _, m := range h.Access(a, false) {
			if m.Write && (m.LineAddr < 0 || m.LineAddr >= region/LineBytes) {
				t.Fatalf("write-back line %d outside dirtied region", m.LineAddr)
			}
		}
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Tiny single-level cache: 2 sets x 2 ways.
	h, err := NewHierarchy([]Config{{SizeBytes: 4 * LineBytes, Ways: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// All of these map to set 0 (even line addresses).
	a := int64(0 * LineBytes * 2)
	b := int64(2 * LineBytes * 2)
	c := int64(4 * LineBytes * 2)
	h.Access(a, false)
	h.Access(b, false)
	h.Access(a, false) // a is now MRU
	h.Access(c, false) // evicts b (LRU)
	if got := h.Access(a, false); len(got) != 0 {
		t.Fatal("a should still be cached")
	}
	if got := h.Access(b, false); len(got) == 0 {
		t.Fatal("b should have been evicted")
	}
}

func TestMissRatioAccounting(t *testing.T) {
	h := MustTable3()
	for i := 0; i < 1000; i++ {
		h.Access(int64(i)*LineBytes, false)
	}
	stats := h.Stats()
	if stats[0].Accesses != 1000 {
		t.Fatalf("L1 accesses = %d, want 1000", stats[0].Accesses)
	}
	if h.LevelMissRatio(0) == 0 {
		t.Fatal("streaming should produce L1 misses")
	}
	if h.Levels() != 3 {
		t.Fatalf("Levels = %d", h.Levels())
	}
}

func TestRandomTrafficNoMemoryAmplification(t *testing.T) {
	// Total memory traffic (fills + write-backs) should never exceed
	// 2x the request count.
	h := MustTable3()
	rng := rand.New(rand.NewSource(7))
	var traffic int
	const n = 50000
	for i := 0; i < n; i++ {
		addr := rng.Int63n(64 << 20)
		traffic += len(h.Access(addr, rng.Intn(2) == 0))
	}
	if traffic > 2*n {
		t.Fatalf("memory traffic %d exceeds 2x requests %d", traffic, n)
	}
}

func TestEmptyHierarchyRejected(t *testing.T) {
	if _, err := NewHierarchy(nil); err == nil {
		t.Fatal("empty hierarchy accepted")
	}
}
