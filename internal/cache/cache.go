// Package cache implements the host-side cache hierarchy used to turn raw
// memory traces into post-cache (LLC-miss) traces, with the Table 3
// configuration: L1d 32 KB 8-way, L2 1 MB 8-way, LLC 8 MB 16-way, all LRU
// with 64-byte lines, write-allocate and write-back.
package cache

import (
	"fmt"
)

// LineBytes is the cache line size across the hierarchy.
const LineBytes = 64

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
}

// Validate checks the configuration against the line size.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: size and ways must be positive: %+v", c)
	}
	if c.SizeBytes%(c.Ways*LineBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line %d", c.SizeBytes, c.Ways*LineBytes)
	}
	sets := c.SizeBytes / (c.Ways * LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Table3 returns the paper's host-side configuration.
func Table3() []Config {
	return []Config{
		{SizeBytes: 32 << 10, Ways: 8}, // L1d
		{SizeBytes: 1 << 20, Ways: 8},  // L2
		{SizeBytes: 8 << 20, Ways: 16}, // LLC
	}
}

type way struct {
	tag   int64
	valid bool
	dirty bool
	// lru is a recency stamp; higher = more recent.
	lru uint64
}

// level is one set-associative LRU cache.
type level struct {
	sets    int
	ways    int
	setMask int64
	lines   []way // sets*ways, row-major by set
	stamp   uint64

	accesses int64
	misses   int64
}

func newLevel(c Config) *level {
	sets := c.SizeBytes / (c.Ways * LineBytes)
	return &level{
		sets:    sets,
		ways:    c.Ways,
		setMask: int64(sets - 1),
		lines:   make([]way, sets*c.Ways),
	}
}

// access looks up the line address; on miss it installs the line, returning
// (hit, evictedDirtyLineAddr, hadDirtyEviction).
func (l *level) access(lineAddr int64, write bool) (hit bool, wbAddr int64, wb bool) {
	l.accesses++
	set := int(lineAddr & l.setMask)
	tag := lineAddr // the full line address doubles as the tag
	base := set * l.ways
	l.stamp++

	victim := base
	for i := base; i < base+l.ways; i++ {
		w := &l.lines[i]
		if w.valid && w.tag == tag {
			w.lru = l.stamp
			if write {
				w.dirty = true
			}
			return true, 0, false
		}
		if !w.valid {
			victim = i
		} else if l.lines[victim].valid && w.lru < l.lines[victim].lru {
			victim = i
		}
	}
	l.misses++
	v := &l.lines[victim]
	if v.valid && v.dirty {
		wb = true
		wbAddr = v.tag
	}
	*v = way{tag: tag, valid: true, dirty: write, lru: l.stamp}
	return false, wbAddr, wb
}

// MissRatio reports misses/accesses for the level.
func (l *level) MissRatio() float64 {
	if l.accesses == 0 {
		return 0
	}
	return float64(l.misses) / float64(l.accesses)
}

// MemAccess is a post-cache access emitted toward the memory device.
type MemAccess struct {
	LineAddr int64 // address / LineBytes
	Write    bool
}

// Hierarchy is the full multi-level filter. Not safe for concurrent use.
type Hierarchy struct {
	levels []*level
}

// NewHierarchy builds a hierarchy from the given per-level configs
// (nearest to the core first).
func NewHierarchy(cfgs []Config) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: need at least one level")
	}
	h := &Hierarchy{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		h.levels = append(h.levels, newLevel(c))
	}
	return h, nil
}

// MustTable3 builds the paper's hierarchy, panicking on error.
func MustTable3() *Hierarchy {
	h, err := NewHierarchy(Table3())
	if err != nil {
		panic(err)
	}
	return h
}

// Access filters one byte-address access through the hierarchy and returns
// the post-cache memory accesses it generates: zero on a hit in any level,
// one demand fill on a full miss, plus any dirty write-backs that cascade
// out of the last level.
func (h *Hierarchy) Access(addr int64, write bool) []MemAccess {
	lineAddr := addr / LineBytes
	var toMem []MemAccess
	// insertWB writes an evicted dirty line into level i; cascading
	// evictions past the last level go to memory.
	var insertWB func(i int, line int64)
	insertWB = func(i int, line int64) {
		if i >= len(h.levels) {
			toMem = append(toMem, MemAccess{LineAddr: line, Write: true})
			return
		}
		if _, wbAddr, wb := h.levels[i].access(line, true); wb {
			insertWB(i+1, wbAddr)
		}
	}
	for i, l := range h.levels {
		hit, wbAddr, wb := l.access(lineAddr, write)
		if wb {
			insertWB(i+1, wbAddr)
		}
		if hit {
			return toMem
		}
	}
	toMem = append(toMem, MemAccess{LineAddr: lineAddr, Write: false})
	return toMem
}

// LevelMissRatio reports the miss ratio of level i (0-based from the core).
func (h *Hierarchy) LevelMissRatio(i int) float64 { return h.levels[i].MissRatio() }

// Levels reports the number of configured levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Stats summarizes accesses and misses per level.
func (h *Hierarchy) Stats() []struct{ Accesses, Misses int64 } {
	out := make([]struct{ Accesses, Misses int64 }, len(h.levels))
	for i, l := range h.levels {
		out[i].Accesses = l.accesses
		out[i].Misses = l.misses
	}
	return out
}
