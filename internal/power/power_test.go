package power

import (
	"math"
	"testing"

	"dtl/internal/dram"
)

func TestMeterIntegration(t *testing.T) {
	m := NewMeter(dram.DefaultPowerModel())
	m.Record(0, 10, 2, false)
	m.Record(100, 20, 4, false)
	m.Record(300, 0, 0, false)
	bg, act, mig := m.Energy()
	if bg != 10*100+20*200 {
		t.Errorf("background energy = %v, want 5000", bg)
	}
	if act != 2*100+4*200 {
		t.Errorf("active energy = %v, want 1000", act)
	}
	if mig != 0 {
		t.Errorf("migration energy = %v", mig)
	}
	if got := m.TotalEnergy(); got != bg+act {
		t.Errorf("total = %v", got)
	}
	if got := m.MeanPower(300); math.Abs(got-(bg+act)/300) > 1e-9 {
		t.Errorf("mean power = %v", got)
	}
}

func TestMeterMigrationEnergy(t *testing.T) {
	m := NewMeter(dram.DefaultPowerModel())
	m.Record(0, 1, 0, false)
	m.AddMigrationEnergy(500)
	m.FinishAt(1000)
	bg, act, mig := m.Energy()
	if bg != 1000 || act != 500 || mig != 500 {
		t.Errorf("energies = %v %v %v", bg, act, mig)
	}
}

func TestMeterBackwardsTimePanics(t *testing.T) {
	m := NewMeter(dram.DefaultPowerModel())
	m.Record(100, 1, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Record(50, 1, 1, false)
}

func TestNegativeMigrationEnergyPanics(t *testing.T) {
	m := NewMeter(dram.DefaultPowerModel())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.AddMigrationEnergy(-1)
}

func TestSamplesRecorded(t *testing.T) {
	m := NewMeter(dram.DefaultPowerModel())
	m.Record(0, 5, 1, false)
	m.Record(10, 6, 2, true)
	s := m.Samples()
	if len(s) != 2 {
		t.Fatalf("samples = %d", len(s))
	}
	if s[1].Total() != 8 || !s[1].Migrating {
		t.Fatalf("sample = %+v", s[1])
	}
}

func TestActiveForBandwidth(t *testing.T) {
	m := NewMeter(dram.DefaultPowerModel())
	if got, want := m.ActiveForBandwidth(10), dram.DefaultPowerModel().Active(10); got != want {
		t.Fatalf("active for bw = %v, want %v", got, want)
	}
}

func TestBreakdownSavings(t *testing.T) {
	b := Breakdown{
		BaselineBackground: 100,
		BaselineActive:     50,
		TechBackground:     60,
		TechActive:         48,
	}
	if got := b.BackgroundSaving(); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("background saving = %v, want 0.4", got)
	}
	if got := b.TotalSaving(); math.Abs(got-(1-108.0/150.0)) > 1e-9 {
		t.Errorf("total saving = %v", got)
	}
	var zero Breakdown
	if zero.BackgroundSaving() != 0 || zero.TotalSaving() != 0 {
		t.Error("zero breakdown should report zero savings")
	}
}

func TestMeanPowerZeroHorizon(t *testing.T) {
	m := NewMeter(dram.DefaultPowerModel())
	if m.MeanPower(0) != 0 {
		t.Fatal("mean power at zero horizon should be 0")
	}
}

func TestSampleMigratingFlagPreserved(t *testing.T) {
	m := NewMeter(dram.DefaultPowerModel())
	m.Record(0, 1, 0, true)
	m.Record(10, 1, 0, false)
	s := m.Samples()
	if !s[0].Migrating || s[1].Migrating {
		t.Fatalf("migrating flags = %v %v", s[0].Migrating, s[1].Migrating)
	}
}

func TestFinishAtClosesIntegration(t *testing.T) {
	m := NewMeter(dram.DefaultPowerModel())
	m.Record(0, 2, 1, false)
	m.FinishAt(500)
	bg, act, _ := m.Energy()
	if bg != 1000 || act != 500 {
		t.Fatalf("energies = %v/%v, want 1000/500", bg, act)
	}
}
