// Package power integrates DRAM power over simulated schedules: per-rank
// background power by state (from the dram package's ledger), active power
// proportional to delivered bandwidth (Fig. 11b), and migration energy. It
// produces the power/energy summaries behind Figures 11-15.
package power

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// Sample is one point on a runtime power timeline (Fig. 12a).
type Sample struct {
	At sim.Time
	// Background is the instantaneous background power in normalized units.
	Background float64
	// Active is the instantaneous active power in normalized units.
	Active float64
	// Migrating marks samples taken while segment migration was in flight.
	Migrating bool
}

// Total reports the sample's total power.
func (s Sample) Total() float64 { return s.Background + s.Active }

// Meter accumulates energy over a timeline and records samples.
type Meter struct {
	model   dram.PowerModel
	samples []Sample

	bgEnergy     float64 // units x ns
	activeEnergy float64
	migEnergy    float64

	lastAt     sim.Time
	lastBg     float64
	lastActive float64
}

// NewMeter builds a meter over the given power model.
func NewMeter(model dram.PowerModel) *Meter {
	return &Meter{model: model}
}

// Record advances the meter to now with the given instantaneous powers,
// integrating the previous level over the elapsed span (left Riemann sum,
// matching the paper's 5-minute interval recomputation).
func (m *Meter) Record(now sim.Time, background, active float64, migrating bool) {
	if now < m.lastAt {
		panic(fmt.Sprintf("power: time going backwards: %v < %v", now, m.lastAt))
	}
	span := float64(now - m.lastAt)
	m.bgEnergy += m.lastBg * span
	m.activeEnergy += m.lastActive * span
	m.lastAt = now
	m.lastBg = background
	m.lastActive = active
	m.samples = append(m.samples, Sample{At: now, Background: background, Active: active, Migrating: migrating})
}

// AddMigrationEnergy charges extra active energy (units x ns) consumed by a
// background segment migration burst.
func (m *Meter) AddMigrationEnergy(e float64) {
	if e < 0 {
		panic("power: negative migration energy")
	}
	m.migEnergy += e
	m.activeEnergy += e
}

// FinishAt closes the integration at the horizon.
func (m *Meter) FinishAt(now sim.Time) { m.Record(now, 0, 0, false) }

// Samples returns the recorded timeline.
func (m *Meter) Samples() []Sample { return m.samples }

// Energy reports accumulated energies in normalized units x ns.
func (m *Meter) Energy() (background, active, migration float64) {
	return m.bgEnergy, m.activeEnergy, m.migEnergy
}

// TotalEnergy reports background + active energy (migration is included in
// active).
func (m *Meter) TotalEnergy() float64 { return m.bgEnergy + m.activeEnergy }

// MeanPower reports the time-averaged total power over [0, horizon].
func (m *Meter) MeanPower(horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return m.TotalEnergy() / float64(horizon)
}

// ActiveForBandwidth converts a device bandwidth (GB/s) into active power
// (normalized units) under the meter's model.
func (m *Meter) ActiveForBandwidth(gbs float64) float64 { return m.model.Active(gbs) }

// Breakdown summarizes an energy comparison between a baseline and a
// technique run (Fig. 13).
type Breakdown struct {
	BaselineBackground float64
	BaselineActive     float64
	TechBackground     float64
	TechActive         float64
}

// BackgroundSaving reports the fractional background-energy reduction.
func (b Breakdown) BackgroundSaving() float64 {
	if b.BaselineBackground == 0 {
		return 0
	}
	return 1 - b.TechBackground/b.BaselineBackground
}

// TotalSaving reports the fractional total-energy reduction.
func (b Breakdown) TotalSaving() float64 {
	base := b.BaselineBackground + b.BaselineActive
	if base == 0 {
		return 0
	}
	return 1 - (b.TechBackground+b.TechActive)/base
}
