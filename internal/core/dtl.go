package core

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/memctrl"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// VMID identifies a virtual machine instance across hosts.
type VMID int

// HostID identifies a compute host sharing the CXL device.
type HostID int

// dsnFree marks an unmapped physical segment in the reverse mapping table.
const dsnFree dram.HSN = -1

// DTL is the DRAM Translation Layer: the in-CXL-controller indirection
// between host physical addresses and DRAM device physical addresses, plus
// the two power-management engines built on it.
//
// DTL is single-threaded and driven by a trace replay loop that presents
// accesses in nondecreasing time order; this mirrors the hardware, where
// the translation pipeline is a single in-order datapath per device. This
// is also why DTL-driven experiments keep the serial sim.Engine when
// Options.Shards asks for sharded execution: the SMC, segMap/revMap, and
// the allocator are device-global structures every access may touch, so
// there is no channel decomposition to exploit — the per-channel sharding
// of sim.ShardedEngine applies to the raw controller replays, where state
// partitions cleanly by channel (see memctrl.Controller).
type DTL struct {
	cfg   Config
	dev   *dram.Device
	ctrl  *memctrl.Controller
	codec *dram.AddressCodec
	smc   *smc

	// segMap is the DRAM-resident segment mapping table: HSN → DSN for
	// every allocated host segment (Fig. 4). Dense paged table mirroring
	// revMap's layout; the paper's table is itself a dense DRAM array
	// (Table 5 sizes it at full capacity), so this is both the faithful
	// and the fast representation.
	segMap *segTable
	// revMap is the reverse mapping table: DSN → HSN (dsnFree when the
	// physical segment is unallocated), used to update segMap after
	// migration (§4.2).
	revMap []dram.HSN

	// free holds the free segment queues, one per global rank (§4.2),
	// pre-sized to a full rank; allocated counts track per-rank
	// utilization for victim selection.
	free      []fifo[dram.DSN]
	allocated []int64 // live segments per global rank

	// vms tracks each VM's allocation so deallocation can return exactly
	// the segments it received.
	vms map[VMID]*vmState
	// auFree is the pool of unassigned allocation-unit slots per host
	// (the free AU queue of Table 5).
	auFree []fifo[int64]

	// allocScratch holds the per-channel segment staging buffers AllocateVM
	// fills from the free queues, reused across calls so the allocation
	// fast path stays off the heap.
	allocScratch [][]dram.DSN

	// poweredDown is the stack of virtual rank groups currently in MPSM,
	// most recent last (§4.3 "Virtualizing Rank Group").
	poweredDown [][]dram.RankID
	// retired marks global ranks permanently taken offline (reliability
	// extension); their capacity is removed from the allocator.
	retired map[int]bool

	hot    *hotness
	mig    *migrator
	scrub  *Scrubber
	health *HealthMonitor

	// reg is the always-on metrics registry backing every DTL counter; the
	// Stats accessor is a thin view over it. tracer is nil unless a caller
	// attached one (tracing is zero-cost when disabled).
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	st     statCounters

	// ledger is the attribution cost ledger (nil unless attached; charging
	// is zero-cost when disabled, like the tracer). auOwner maps a global
	// AU slot (host × TotalAUs + au) to the owning VM id so the access
	// fast path can attribute a charge without a map lookup; unowned slots
	// hold telemetry.SystemVM. migEnergyPerSeg is the precomputed active
	// energy proxy of copying one segment (ActivePowerPerGBs × bytes).
	ledger          *telemetry.Ledger
	auOwner         []int64
	segsPerAU       int64
	migEnergyPerSeg float64
}

// statCounters are the registry-backed counters behind the Stats view.
type statCounters struct {
	accesses, translationNs, missPathWalks *telemetry.Counter
	powerDownEvents, reactivateEvents      *telemetry.Counter
	segmentsMigrated, segmentsSwapped      *telemetry.Counter
	bytesMigrated                          *telemetry.Counter
	selfRefreshEnters, selfRefreshExits    *telemetry.Counter
	ranksRetired                           *telemetry.Counter
}

func newStatCounters(reg *telemetry.Registry) statCounters {
	return statCounters{
		accesses:          reg.Counter("core.accesses"),
		translationNs:     reg.Counter("core.translation_ns"),
		missPathWalks:     reg.Counter("core.smc.miss_path_walks"),
		powerDownEvents:   reg.Counter("core.powerdown.events"),
		reactivateEvents:  reg.Counter("core.powerdown.reactivations"),
		segmentsMigrated:  reg.Counter("core.migration.segments_migrated"),
		segmentsSwapped:   reg.Counter("core.migration.segments_swapped"),
		bytesMigrated:     reg.Counter("core.migration.bytes"),
		selfRefreshEnters: reg.Counter("core.selfrefresh.enters"),
		selfRefreshExits:  reg.Counter("core.selfrefresh.exits"),
		ranksRetired:      reg.Counter("core.ranks_retired"),
	}
}

type vmState struct {
	host HostID
	aus  []int64    // AU ids assigned to this VM
	hsns []dram.HSN // every host segment the VM owns
}

// Stats aggregates DTL-level counters.
type Stats struct {
	Accesses          int64
	TranslationNs     int64 // summed address-translation latency
	MissPathWalks     int64
	PowerDownEvents   int64 // rank groups entering MPSM
	ReactivateEvents  int64 // rank groups exiting MPSM
	SegmentsMigrated  int64 // for power-down consolidation
	SegmentsSwapped   int64 // for hotness-aware self-refresh
	BytesMigrated     int64
	SelfRefreshEnters int64
	SelfRefreshExits  int64
	RanksRetired      int64
}

// New builds a DTL over a fresh device and controller.
func New(cfg Config) (*DTL, error) {
	def := DefaultConfig(cfg.Geometry)
	fillDefaults(&cfg, def)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dev, err := dram.NewDevice(cfg.Geometry, dram.DefaultPowerModel(), dram.DefaultTiming())
	if err != nil {
		return nil, err
	}
	return NewWithDevice(cfg, dev)
}

// NewWithDevice builds a DTL over an existing device (for tests and
// experiments that need custom power/timing models).
func NewWithDevice(cfg Config, dev *dram.Device) (*DTL, error) {
	def := DefaultConfig(cfg.Geometry)
	fillDefaults(&cfg, def)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := cfg.Geometry
	// The HSN space spans every (host, AU, offset) triple the device can
	// name: MaxHosts × TotalAUs × SegmentsPerAU entries.
	maxHSN := int64(cfg.MaxHosts) * cfg.TotalAUs() * cfg.SegmentsPerAU()
	d := &DTL{
		cfg:          cfg,
		dev:          dev,
		ctrl:         memctrl.New(dev),
		codec:        dev.Codec(),
		smc:          newSMC(cfg.L1SMCEntries, cfg.L2SMCEntries, cfg.L2SMCWays),
		segMap:       newSegTable(maxHSN),
		revMap:       make([]dram.HSN, g.TotalSegments()),
		free:         make([]fifo[dram.DSN], g.TotalRanks()),
		allocated:    make([]int64, g.TotalRanks()),
		vms:          make(map[VMID]*vmState),
		auFree:       make([]fifo[int64], cfg.MaxHosts),
		allocScratch: make([][]dram.DSN, g.Channels),
		reg:          telemetry.NewRegistry(),
	}
	d.st = newStatCounters(d.reg)
	d.ctrl.RegisterMetrics(d.reg)
	d.segsPerAU = cfg.SegmentsPerAU()
	d.migEnergyPerSeg = dev.Power().ActivePowerPerGBs * float64(g.SegmentBytes)
	d.auOwner = make([]int64, int64(cfg.MaxHosts)*cfg.TotalAUs())
	for i := range d.auOwner {
		d.auOwner[i] = telemetry.SystemVM
	}
	for i := range d.revMap {
		d.revMap[i] = dsnFree
	}
	// Populate free segment queues: every physical segment starts free.
	// Each queue is pre-sized to a full rank, its maximum occupancy.
	for gr := range d.free {
		d.free[gr] = newFIFO[dram.DSN](g.SegmentsPerRank())
	}
	for s := dram.DSN(0); int64(s) < g.TotalSegments(); s++ {
		l := d.codec.DecodeDSN(s)
		gr := d.codec.GlobalRank(l.Channel, l.Rank)
		d.free[gr].push(s)
	}
	// Each host gets its own AU id space.
	ausPerHost := cfg.TotalAUs()
	for h := range d.auFree {
		d.auFree[h] = newFIFO[int64](ausPerHost)
		for i := int64(0); i < ausPerHost; i++ {
			d.auFree[h].push(i)
		}
	}
	perChannel := cfg.SegmentsPerAU() / int64(g.Channels)
	for ch := range d.allocScratch {
		d.allocScratch[ch] = make([]dram.DSN, 0, perChannel)
	}
	d.hot = newHotness(d)
	d.mig = newMigrator(d)
	d.health = newHealthMonitor(d, DefaultHealthConfig())
	d.registerGauges()
	return d, nil
}

// registerGauges attaches derived time-series gauges over live model state:
// migration queue depth per channel, rank power-state populations, live VM
// count. Sampled together with the counters, they make every metric a
// virtual-time series.
func (d *DTL) registerGauges() {
	g := d.cfg.Geometry
	for ch := 0; ch < g.Channels; ch++ {
		ch := ch
		d.reg.GaugeFunc(fmt.Sprintf("memctrl.ch%d.migq_depth", ch), func() float64 {
			return float64(len(d.mig.windows[ch]))
		})
	}
	d.reg.GaugeFunc("core.migq.outstanding", func() float64 {
		return float64(d.Migrator().Outstanding())
	})
	d.reg.GaugeFunc("core.live_vms", func() float64 {
		return float64(len(d.vms))
	})
	d.reg.GaugeFunc("dev.power.background_units", func() float64 {
		return d.dev.BackgroundPowerNow()
	})
	for st := dram.Standby; st <= dram.MPSM; st++ {
		st := st
		d.reg.GaugeFunc("dev.ranks."+st.String(), func() float64 {
			return float64(d.dev.CountByState()[st])
		})
	}
}

// Registry exposes the DTL's always-on metrics registry so callers can add
// their own metrics, sample it on a sim interval timer, and export CSV.
func (d *DTL) Registry() *telemetry.Registry { return d.reg }

// AttachTracer installs tr as the event tracer for this DTL and wires the
// device's power-transition hook into it. Passing nil detaches tracing and
// restores the zero-cost path.
func (d *DTL) AttachTracer(tr *telemetry.Tracer) {
	d.tracer = tr
	if tr == nil {
		d.dev.OnTransition(nil)
		return
	}
	d.dev.OnTransition(func(id dram.RankID, from, to dram.PowerState, at, ready sim.Time) {
		tr.PowerTransition(d.codec.GlobalRank(id.Channel, id.Rank), int(to), at)
	})
}

// StartTrace builds a tracer sized for this device (one power timeline per
// global rank, capacity 0 selecting the default ring size), attaches it, and
// returns it. The caller must call Finish on the tracer at the run horizon
// before exporting.
func (d *DTL) StartTrace(capacity int, now sim.Time) *telemetry.Tracer {
	g := d.cfg.Geometry
	tr := telemetry.NewTracer(telemetry.TracerConfig{
		Ranks:    g.TotalRanks(),
		Channels: g.Channels,
		StateNames: []string{
			dram.Standby.String(), dram.SelfRefresh.String(), dram.MPSM.String(),
		},
		InitialState: int(dram.Standby),
		Capacity:     capacity,
		Start:        now,
	})
	// Ranks already away from standby (e.g. tracing started mid-run) seed
	// their timelines with a transition at the trace origin.
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			if st := d.dev.State(dram.RankID{Channel: ch, Rank: rk}); st != dram.Standby {
				tr.PowerTransition(d.codec.GlobalRank(ch, rk), int(st), now)
			}
		}
	}
	d.AttachTracer(tr)
	return tr
}

// Tracer reports the attached tracer (nil when tracing is off).
func (d *DTL) Tracer() *telemetry.Tracer { return d.tracer }

// AttachLedger installs l as the attribution cost ledger. Passing nil
// detaches it and restores the zero-cost path.
func (d *DTL) AttachLedger(l *telemetry.Ledger) { d.ledger = l }

// Ledger reports the attached cost ledger (nil when attribution is off).
func (d *DTL) Ledger() *telemetry.Ledger { return d.ledger }

// StartLedger builds a ledger sized for this device, attaches it, and
// returns it.
func (d *DTL) StartLedger() *telemetry.Ledger {
	l := telemetry.NewLedger(telemetry.LedgerConfig{Ranks: d.cfg.Geometry.TotalRanks()})
	d.AttachLedger(l)
	return l
}

// FinishAttribution completes the attribution bill after tr.Finish: the
// tracer's closed power spans are folded into led as background residency
// energy, and the final cell totals are dumped into the trace. Drivers that
// wire a tracer and a ledger together call this once at the run horizon;
// rack.Fabric implements the same method with a cross-expander fold, so
// experiment telemetry can treat one expander and a rack uniformly.
func (d *DTL) FinishAttribution(tr *telemetry.Tracer, led *telemetry.Ledger, horizon sim.Time) {
	led.ChargeResidency(tr, nil)
	led.EmitTo(tr, horizon)
}

// ownerOf reports the VM owning hsn's allocation unit, or
// telemetry.SystemVM when the AU is unassigned.
func (d *DTL) ownerOf(hsn dram.HSN) int64 {
	return d.auOwner[int64(hsn)/d.segsPerAU]
}

// chargeSpan books one background attribution span into the ledger and
// mirrors it into the trace. No-op when the ledger is detached.
func (d *DTL) chargeSpan(vm int64, rank int, cause telemetry.Cause, start, end sim.Time, energy float64) {
	if d.ledger == nil {
		return
	}
	d.ledger.End(d.ledger.Begin(vm, rank, cause, start), end, energy)
	d.tracer.AttrSpan(vm, rank, cause.String(), start, end, energy)
}

// fillDefaults copies default values into zero-valued cfg fields.
func fillDefaults(cfg *Config, def Config) {
	if cfg.AUBytes == 0 {
		cfg.AUBytes = def.AUBytes
	}
	if cfg.MaxHosts == 0 {
		cfg.MaxHosts = def.MaxHosts
	}
	if cfg.L1SMCEntries == 0 {
		cfg.L1SMCEntries = def.L1SMCEntries
	}
	if cfg.L2SMCEntries == 0 {
		cfg.L2SMCEntries = def.L2SMCEntries
	}
	if cfg.L2SMCWays == 0 {
		cfg.L2SMCWays = def.L2SMCWays
	}
	if cfg.ProfilingWindow == 0 {
		cfg.ProfilingWindow = def.ProfilingWindow
	}
	if cfg.ProfilingThreshold == 0 {
		cfg.ProfilingThreshold = def.ProfilingThreshold
	}
	if cfg.TSPTimeout == 0 {
		cfg.TSPTimeout = def.TSPTimeout
	}
	if cfg.TSPTimeoutEntries == 0 {
		cfg.TSPTimeoutEntries = def.TSPTimeoutEntries
	}
	if cfg.MigrationRetryLimit == 0 {
		cfg.MigrationRetryLimit = def.MigrationRetryLimit
	}
	if cfg.ReserveRankGroups == 0 {
		cfg.ReserveRankGroups = def.ReserveRankGroups
	}
	if cfg.SelfRefreshMinStandby == 0 {
		cfg.SelfRefreshMinStandby = def.SelfRefreshMinStandby
	}
	if cfg.L1SMCHit == 0 {
		cfg.L1SMCHit = def.L1SMCHit
	}
	if cfg.L2SMCHit == 0 {
		cfg.L2SMCHit = def.L2SMCHit
	}
	if cfg.SRAMTableHit == 0 {
		cfg.SRAMTableHit = def.SRAMTableHit
	}
	if cfg.DRAMTableMiss == 0 {
		cfg.DRAMTableMiss = def.DRAMTableMiss
	}
}

// Config returns the DTL's effective configuration.
func (d *DTL) Config() Config { return d.cfg }

// Device returns the underlying DRAM device.
func (d *DTL) Device() *dram.Device { return d.dev }

// Controller returns the memory controller.
func (d *DTL) Controller() *memctrl.Controller { return d.ctrl }

// Stats returns a snapshot of DTL counters. It is a thin view over the
// telemetry registry, which owns the live counters.
func (d *DTL) Stats() Stats {
	return Stats{
		Accesses:          d.st.accesses.Value(),
		TranslationNs:     d.st.translationNs.Value(),
		MissPathWalks:     d.st.missPathWalks.Value(),
		PowerDownEvents:   d.st.powerDownEvents.Value(),
		ReactivateEvents:  d.st.reactivateEvents.Value(),
		SegmentsMigrated:  d.st.segmentsMigrated.Value(),
		SegmentsSwapped:   d.st.segmentsSwapped.Value(),
		BytesMigrated:     d.st.bytesMigrated.Value(),
		SelfRefreshEnters: d.st.selfRefreshEnters.Value(),
		SelfRefreshExits:  d.st.selfRefreshExits.Value(),
		RanksRetired:      d.st.ranksRetired.Value(),
	}
}

// SMCStats returns segment-mapping-cache hit/miss counters.
func (d *DTL) SMCStats() SMCStats { return d.smc.stats() }

// Hotness returns the self-refresh engine for inspection and control.
func (d *DTL) Hotness() *Hotness { return (*Hotness)(d.hot) }

// Migrator exposes migration-protocol statistics.
func (d *DTL) Migrator() *Migrator { return (*Migrator)(d.mig) }

// hsnOf composes the host segment number for (host, au, offset) — the
// Figure 4 HSN decomposition, arithmetic form.
func (d *DTL) hsnOf(host HostID, au int64, off int64) dram.HSN {
	perAU := d.cfg.SegmentsPerAU()
	maxAUs := d.cfg.TotalAUs()
	return dram.HSN((int64(host)*maxAUs+au)*perAU + off)
}

// AccessResult describes one translated and serviced memory access.
type AccessResult struct {
	DPA dram.DPA
	// TranslationLat is the HPA→DPA translation latency (Eq. 2 term).
	TranslationLat sim.Time
	// MemLat is the DRAM service latency including queueing and any
	// power-state exit penalty.
	MemLat sim.Time
	// SMCLevel reports where the translation hit: 1 (L1), 2 (L2),
	// 0 (full miss path walk).
	SMCLevel int
	// WokeSelfRefresh reports that the access forced a rank out of SR.
	WokeSelfRefresh bool
}

// TotalLat is translation plus memory service latency.
func (r AccessResult) TotalLat() sim.Time { return r.TranslationLat + r.MemLat }

// Access translates and services one post-cache access at virtual time now.
// hpa must fall inside a segment previously allocated to a VM.
func (d *DTL) Access(hpa dram.HPA, write bool, now sim.Time) (AccessResult, error) {
	hsn := d.codec.HostSegmentOf(hpa)

	dsn, lvl := d.smc.lookup(hsn)
	var tlat sim.Time
	switch lvl {
	case 1:
		tlat = d.cfg.L1SMCHit
	case 2:
		tlat = d.cfg.L1SMCHit + d.cfg.L2SMCHit
	default:
		// Miss path: host base address table + AU base address table in
		// SRAM, then the segment mapping table in DRAM (Fig. 4).
		mapped, ok := d.segMap.get(hsn)
		if !ok {
			return AccessResult{}, fmt.Errorf("core: access to unallocated hsn %d (hpa %#x)", hsn, int64(hpa))
		}
		dsn = mapped
		tlat = d.cfg.L1SMCHit + d.cfg.L2SMCHit + 2*d.cfg.SRAMTableHit + d.cfg.DRAMTableMiss
		d.smc.install(hsn, dsn)
		d.st.missPathWalks.Inc()
		d.tracer.SMCMiss(now)
	}

	// Consistency: a cached translation must agree with the table.
	if lvl != 0 {
		if mapped, ok := d.segMap.get(hsn); !ok || mapped != dsn {
			return AccessResult{}, fmt.Errorf("core: stale SMC entry hsn %d -> dsn %d (table: %v)", hsn, dsn, mapped)
		}
	}

	dpa := d.codec.Compose(dsn, d.codec.OffsetOf(dram.DPA(hpa)))
	loc := d.codec.DecodeDSN(dsn)
	id := dram.RankID{Channel: loc.Channel, Rank: loc.Rank}
	wasSR := d.dev.State(id) == dram.SelfRefresh

	// The migration protocol may redirect or delay conflicting writes
	// (§4.2); this also charges abort/retry bookkeeping.
	d.mig.onForegroundAccess(dsn, write, now)

	res := d.ctrl.Access(memctrl.Request{Addr: dpa, Write: write, Arrive: now + tlat})

	if wasSR {
		d.st.selfRefreshExits.Inc()
		d.tracer.Wake(d.codec.GlobalRank(loc.Channel, loc.Rank), now, res.WakeDelay)
		d.hot.onSelfRefreshWake(id, now)
	}
	d.hot.onAccess(dsn, loc, now)

	d.st.accesses.Inc()
	d.st.translationNs.Add(int64(tlat))

	if d.ledger != nil {
		// Decompose the access latency into attribution causes: the
		// L1-hit translation plus un-penalized service time is baseline;
		// everything above it is charged to the mechanism that added it.
		// The four terms sum to TotalLat exactly (conservation).
		gr := d.codec.GlobalRank(loc.Channel, loc.Rank)
		vm := d.auOwner[int64(hsn)/d.segsPerAU]
		base := d.cfg.L1SMCHit + (res.Done - (now + tlat)) - res.WakeDelay - res.Degraded
		d.ledger.Charge(vm, gr, telemetry.CauseBaseline, int64(base), 0)
		if walk := tlat - d.cfg.L1SMCHit; walk > 0 {
			d.ledger.Charge(vm, gr, telemetry.CauseSMCMissWalk, int64(walk), 0)
		}
		if res.WakeDelay > 0 {
			d.ledger.Charge(vm, gr, telemetry.CauseSelfRefreshWake, int64(res.WakeDelay), 0)
		}
		if res.Degraded > 0 {
			d.ledger.Charge(vm, gr, telemetry.CauseDegradedRead, int64(res.Degraded), 0)
		}
	}

	return AccessResult{
		DPA:             dpa,
		TranslationLat:  tlat,
		MemLat:          res.Done - (now + tlat),
		SMCLevel:        lvl,
		WokeSelfRefresh: wasSR,
	}, nil
}

// ProbeDegraded issues one read access against every failed-but-unretired
// global rank that still holds live data, at virtual time now. It models the
// health plane sampling a degraded rank (the paper's verify-before-reroute
// probes) and guarantees the cost ledger sees the degraded-read penalty even
// when retirement evacuates the rank before the next foreground access lands
// on it. Returns the number of probes issued and their summed total latency.
func (d *DTL) ProbeDegraded(now sim.Time) (int, sim.Time) {
	g := d.cfg.Geometry
	probes := 0
	var lat sim.Time
	for gr := 0; gr < g.TotalRanks(); gr++ {
		if !d.dev.FailedGlobal(gr) || d.retired[gr] || d.allocated[gr] == 0 {
			continue
		}
		// Find the first live segment still resident on the failed rank.
		ch, rk := d.codec.SplitGlobalRank(gr)
		hsn := dsnFree
		for idx := int64(0); idx < g.SegmentsPerRank(); idx++ {
			dsn := d.codec.EncodeDSN(dram.Loc{Channel: ch, Rank: rk, Index: idx})
			if h := d.revMap[dsn]; h != dsnFree {
				hsn = h
				break
			}
		}
		if hsn == dsnFree {
			continue
		}
		res, err := d.Access(dram.HPA(int64(hsn)<<d.codec.SegmentShift()), false, now)
		if err != nil {
			continue
		}
		probes++
		lat += res.TotalLat()
	}
	return probes, lat
}

// Tick advances time-driven machinery (profiling windows, phase
// transitions, migration completions, pending health actions) to now
// without an access.
func (d *DTL) Tick(now sim.Time) {
	d.mig.completeUpTo(now)
	d.hot.tick(now)
	d.health.process(now)
}

// CheckInvariants verifies the mapping bijection, free-queue consistency and
// power-state safety. It is used by property tests and is cheap enough to
// run after every structural operation in tests.
func (d *DTL) CheckInvariants() error {
	g := d.cfg.Geometry
	// segMap and revMap must be mutually inverse.
	var mapErr error
	d.segMap.forEach(func(hsn dram.HSN, dsn dram.DSN) {
		if mapErr != nil {
			return
		}
		if int64(dsn) < 0 || int64(dsn) >= g.TotalSegments() {
			mapErr = fmt.Errorf("invariant: hsn %d maps to out-of-range dsn %d", hsn, dsn)
			return
		}
		if d.revMap[dsn] != hsn {
			mapErr = fmt.Errorf("invariant: revMap[%d] = %d, want %d", dsn, d.revMap[dsn], hsn)
		}
	})
	if mapErr != nil {
		return mapErr
	}
	mapped := 0
	for dsn, hsn := range d.revMap {
		if hsn == dsnFree {
			continue
		}
		mapped++
		if got, ok := d.segMap.get(hsn); !ok || got != dram.DSN(dsn) {
			return fmt.Errorf("invariant: segMap[%d] = %v, want dsn %d", hsn, got, dsn)
		}
	}
	if mapped != d.segMap.len() {
		return fmt.Errorf("invariant: revMap has %d live entries, segMap has %d", mapped, d.segMap.len())
	}
	// Free queues: disjoint from live mappings, counts consistent.
	seen := make(map[dram.DSN]bool, len(d.revMap))
	for gr := range d.free {
		q := d.free[gr].items()
		for _, dsn := range q {
			if seen[dsn] {
				return fmt.Errorf("invariant: dsn %d in multiple free queues", dsn)
			}
			seen[dsn] = true
			if d.revMap[dsn] != dsnFree {
				return fmt.Errorf("invariant: free dsn %d is mapped to hsn %d", dsn, d.revMap[dsn])
			}
			l := d.codec.DecodeDSN(dsn)
			if d.codec.GlobalRank(l.Channel, l.Rank) != gr {
				return fmt.Errorf("invariant: dsn %d in wrong free queue %d", dsn, gr)
			}
		}
		if d.retired[gr] {
			if len(q) != 0 || d.allocated[gr] != 0 {
				return fmt.Errorf("invariant: retired rank %d has free %d / allocated %d",
					gr, len(q), d.allocated[gr])
			}
			continue
		}
		if int64(len(q))+d.allocated[gr] != g.SegmentsPerRank() {
			return fmt.Errorf("invariant: rank %d free %d + allocated %d != %d",
				gr, len(q), d.allocated[gr], g.SegmentsPerRank())
		}
	}
	retiredSegs := int64(len(d.retired)) * g.SegmentsPerRank()
	if int64(len(seen)+mapped)+retiredSegs != g.TotalSegments() {
		return fmt.Errorf("invariant: free %d + mapped %d + retired %d != total %d",
			len(seen), mapped, retiredSegs, g.TotalSegments())
	}
	// No live segment may sit on an MPSM rank.
	for dsn, hsn := range d.revMap {
		if hsn == dsnFree {
			continue
		}
		l := d.codec.DecodeDSN(dram.DSN(dsn))
		if d.dev.State(dram.RankID{Channel: l.Channel, Rank: l.Rank}) == dram.MPSM {
			return fmt.Errorf("invariant: live dsn %d on MPSM rank ch%d/rk%d", dsn, l.Channel, l.Rank)
		}
	}
	return nil
}
