package core

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// dsnOn returns the idx-th segment slot of a rank.
func dsnOn(d *DTL, id dram.RankID, idx int64) dram.DSN {
	return d.codec.EncodeDSN(dram.Loc{Rank: id.Rank, Channel: id.Channel, Index: idx})
}

func healthCounter(t *testing.T, d *DTL, name string) float64 {
	t.Helper()
	v, ok := d.Registry().Value("core.health." + name)
	if !ok {
		t.Fatalf("metric core.health.%s not registered", name)
	}
	return v
}

// liveRankOn finds a rank holding live data on the given channel.
func liveRankOn(t *testing.T, d *DTL, ch int) dram.RankID {
	t.Helper()
	for gr, n := range d.allocated {
		if n > 0 {
			c, rk := d.codec.SplitGlobalRank(gr)
			if c == ch {
				return dram.RankID{Channel: c, Rank: rk}
			}
		}
	}
	t.Fatalf("no live rank on channel %d", ch)
	return dram.RankID{}
}

func TestStormTriggersAutoRetire(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	victim := liveRankOn(t, d, 0)

	// One burst at the leaky-bucket threshold declares a storm and queues
	// the retirement; the hook itself must not mutate mapping state.
	thr := int(d.Health().Config().StormThreshold)
	if err := d.Device().RaiseCorrectable(dsnOn(d, victim, 0), thr, 1000); err != nil {
		t.Fatal(err)
	}
	if got := healthCounter(t, d, "storms"); got != 1 {
		t.Fatalf("storms = %v, want 1", got)
	}
	if d.Health().PendingRetires() != 1 {
		t.Fatalf("pending = %d, want 1", d.Health().PendingRetires())
	}
	if len(d.RetiredRanks()) != 0 {
		t.Fatal("hook retired the rank synchronously")
	}

	// The next tick applies it.
	d.Tick(2000)
	if got := d.RetiredRanks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("retired = %v, want [%v]", got, victim)
	}
	if got := healthCounter(t, d, "auto_retires"); got != 1 {
		t.Fatalf("auto_retires = %v, want 1", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The VM's data survived the drain.
	addrs, _ := d.VMAddresses(1)
	for i, base := range addrs {
		if _, err := d.Access(base, false, sim.Time(3000+i*1000)); err != nil {
			t.Fatalf("access after auto-retire: %v", err)
		}
	}
}

func TestBackgroundCERateNeverStorms(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	id := liveRankOn(t, d, 0)
	// 10 errors/s against a 16/s leak: the bucket never fills.
	for i := 0; i < 50; i++ {
		now := sim.Time(i) * 100 * sim.Millisecond
		if err := d.Device().RaiseCorrectable(dsnOn(d, id, 0), 1, now); err != nil {
			t.Fatal(err)
		}
	}
	if got := healthCounter(t, d, "storms"); got != 0 {
		t.Fatalf("storms = %v, want 0 at background rate", got)
	}
	if d.Health().PendingRetires() != 0 {
		t.Fatal("background errors queued a retirement")
	}
}

func TestBucketLeakOverTime(t *testing.T) {
	d := newTestDTL(t)
	id := dram.RankID{Channel: 0, Rank: 0}
	if err := d.Device().RaiseCorrectable(dsnOn(d, id, 0), 32, 0); err != nil {
		t.Fatal(err)
	}
	if lvl := d.Health().BucketLevel(id, 0); lvl != 32 {
		t.Fatalf("bucket at t=0: %v, want 32", lvl)
	}
	// LeakPerSecond is 16: half drains after 1s, empty by 2s.
	if lvl := d.Health().BucketLevel(id, sim.Second); lvl != 16 {
		t.Fatalf("bucket at t=1s: %v, want 16", lvl)
	}
	if lvl := d.Health().BucketLevel(id, 3*sim.Second); lvl != 0 {
		t.Fatalf("bucket at t=3s: %v, want 0", lvl)
	}
}

func TestStormQueueDedup(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	id := liveRankOn(t, d, 0)
	dsn := dsnOn(d, id, 0)
	// Two storming bursts before the tick: one queued retirement, and the
	// second burst must not double-count a storm on an already-queued rank.
	if err := d.Device().RaiseCorrectable(dsn, 100, 1000); err != nil {
		t.Fatal(err)
	}
	if err := d.Device().RaiseCorrectable(dsn, 100, 1100); err != nil {
		t.Fatal(err)
	}
	if got := healthCounter(t, d, "storms"); got != 1 {
		t.Fatalf("storms = %v, want 1", got)
	}
	if d.Health().PendingRetires() != 1 {
		t.Fatalf("pending = %d, want 1", d.Health().PendingRetires())
	}
	d.Tick(2000)
	// Faults on the retired rank are counted but never re-queued.
	if err := d.Device().RaiseCorrectable(dsn, 100, 3000); err != nil {
		t.Fatal(err)
	}
	if d.Health().PendingRetires() != 0 {
		t.Fatal("fault on a retired rank re-queued a retirement")
	}
}

func TestUncorrectableQueuesRetire(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	id := liveRankOn(t, d, 1)
	if err := d.Device().RaiseUncorrectable(dsnOn(d, id, 0), 1000); err != nil {
		t.Fatal(err)
	}
	if d.Health().PendingRetires() != 1 {
		t.Fatal("uncorrectable error did not queue a retirement")
	}
	d.Tick(2000)
	if got := d.RetiredRanks(); len(got) != 1 || got[0] != id {
		t.Fatalf("retired = %v, want [%v]", got, id)
	}
}

func TestDeferredRetirementRetriesAfterDealloc(t *testing.T) {
	d := newTestDTL(t)
	// A full device cannot absorb a drain: the retirement defers with
	// backoff instead of failing.
	mustAlloc(t, d, 1, 0, d.Config().Geometry.TotalBytes(), 0)
	id := dram.RankID{Channel: 0, Rank: 0}
	if err := d.Device().RaiseUncorrectable(dsnOn(d, id, 0), 1000); err != nil {
		t.Fatal(err)
	}
	d.Tick(2000)
	if got := healthCounter(t, d, "retires_deferred"); got != 1 {
		t.Fatalf("retires_deferred = %v, want 1", got)
	}
	if len(d.RetiredRanks()) != 0 {
		t.Fatal("retirement applied despite a full device")
	}
	if d.Health().PendingRetires() != 1 {
		t.Fatal("deferred retirement fell out of the queue")
	}
	// Before the backoff elapses nothing happens.
	d.Tick(2000 + 5*sim.Millisecond)
	if healthCounter(t, d, "retire_retries") != 0 {
		t.Fatal("retry fired inside the backoff window")
	}
	// Freeing capacity past the backoff unblocks it: DeallocateVM itself
	// reprocesses the queue.
	if err := d.DeallocateVM(1, 2000+20*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := d.RetiredRanks(); len(got) != 1 || got[0] != id {
		t.Fatalf("retired = %v, want [%v]", got, id)
	}
	if healthCounter(t, d, "retire_retries") != 1 || healthCounter(t, d, "auto_retires") != 1 {
		t.Fatalf("retries = %v, auto_retires = %v, want 1 and 1",
			healthCounter(t, d, "retire_retries"), healthCounter(t, d, "auto_retires"))
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWakeFaultThresholdRetires(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	id := liveRankOn(t, d, 2)
	d.Device().SetWakeFault(id, 50*sim.Microsecond)

	// Cycle the rank through self-refresh; every abnormal exit raises a
	// wake fault. Transitions are spaced beyond the charged penalties.
	thr := d.Health().Config().WakeFaultThreshold
	now := sim.Millisecond
	for i := int64(0); i < thr; i++ {
		d.Device().SetState(id, dram.SelfRefresh, now)
		now += sim.Millisecond
		d.Device().SetState(id, dram.Standby, now)
		now += sim.Millisecond
	}
	if d.Health().PendingRetires() != 1 {
		t.Fatalf("pending = %d after %d wake faults, want 1", d.Health().PendingRetires(), thr)
	}
	d.Tick(now)
	if got := d.RetiredRanks(); len(got) != 1 || got[0] != id {
		t.Fatalf("retired = %v, want [%v]", got, id)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLastRankRetirementAbandoned(t *testing.T) {
	d := newTestDTL(t)
	// Retire three of channel 2's four ranks, then kill the survivor: the
	// health monitor must abandon the retirement (ErrLastRank) and leave
	// the rank serving in degraded mode.
	for rk := 1; rk < 4; rk++ {
		if err := d.RetireRank(dram.RankID{Channel: 2, Rank: rk}, 0); err != nil {
			t.Fatal(err)
		}
	}
	last := dram.RankID{Channel: 2, Rank: 0}
	d.Device().FailRank(last, 1000)
	if d.Health().PendingRetires() != 1 {
		t.Fatal("rank failure did not queue a retirement")
	}
	d.Tick(2000)
	if got := healthCounter(t, d, "retires_abandoned"); got != 1 {
		t.Fatalf("retires_abandoned = %v, want 1", got)
	}
	if d.Health().PendingRetires() != 0 {
		t.Fatal("abandoned retirement still queued")
	}
	if len(d.RetiredRanks()) != 3 {
		t.Fatalf("retired = %v, want exactly the 3 manual retirements", d.RetiredRanks())
	}
	if !d.Device().Failed(last) {
		t.Fatal("failed rank lost its failure mark")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
