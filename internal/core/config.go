// Package core implements the DRAM Translation Layer (DTL): the in-device
// HPA→DPA indirection of §3.2, the segment allocator and support functions
// of §4.3, the rank-level power-down engine of §3.3, the hotness-aware
// self-refresh engine of §3.4, and the atomic data-migration protocol of
// §4.2. It also carries the analytic metadata-size (Table 5) and controller
// power/area (Table 6) models.
package core

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// Config collects DTL parameters. Zero-value fields are filled from
// DefaultConfig by New.
type Config struct {
	// Geometry of the underlying device.
	Geometry dram.Geometry
	// AUBytes is the allocation unit: the minimum vMemory allocation per VM
	// instance (2 GB, §3.2).
	AUBytes int64
	// MaxHosts is the number of compute hosts sharing the device (16 in
	// Table 5).
	MaxHosts int

	// L1SMCEntries is the fully-associative first-level segment mapping
	// cache size (64).
	L1SMCEntries int
	// L2SMCEntries and L2SMCWays configure the second-level cache
	// (1024 entries, 4-way).
	L2SMCEntries int
	L2SMCWays    int

	// ProfilingWindow is the per-rank access-count window used to select
	// the victim rank (0.5 ms, §3.4).
	ProfilingWindow sim.Time
	// ProfilingThreshold is the required idle time of the hypothetical
	// victim rank before migration starts (50 ms default).
	ProfilingThreshold sim.Time
	// TSPTimeout bounds the CLOCK walk for a cold target segment (40 ns).
	TSPTimeout sim.Time
	// TSPTimeoutEntries converts the timeout into a maximum number of
	// migration-table entries inspected per walk (SRAM reads at ~1.5 GHz:
	// 40 ns ≈ 60 entries; we use a conservative 32).
	TSPTimeoutEntries int
	// MigrationRetryLimit is the abort-retry bound before a migration
	// request is re-queued (3, §4.2).
	MigrationRetryLimit int
	// ReserveRankGroups is how many rank groups' worth of unallocated
	// capacity must remain active before power-down is considered: the
	// default 1 implements §3.3's "exceeds the size of a single
	// rank-group" check; larger values keep more headroom (experiments
	// use this to pin configurations like the paper's fixed 6-rank
	// setups); values above the group count disable power-down.
	ReserveRankGroups int
	// SelfRefreshMinStandby is the self-refresh enter policy: how many
	// standby ranks a channel must retain after a victim enters
	// self-refresh. §3.4 needs at least one standby target rank to absorb
	// the victim's hot segments, so the floor (and default) is 1; larger
	// values make entry more conservative, and values at or above
	// RanksPerChannel disable self-refresh entry altogether.
	SelfRefreshMinStandby int

	// SMC timing (Eq. 2): hit latencies and the miss-path DRAM access.
	L1SMCHit      sim.Time
	L2SMCHit      sim.Time
	SRAMTableHit  sim.Time // host base address table / AU table, each
	DRAMTableMiss sim.Time // segment mapping table access in DRAM
}

// DefaultConfig returns the paper's parameters for the given geometry.
func DefaultConfig(g dram.Geometry) Config {
	return Config{
		Geometry:              g,
		AUBytes:               2 << 30,
		MaxHosts:              16,
		L1SMCEntries:          64,
		L2SMCEntries:          1024,
		L2SMCWays:             4,
		ProfilingWindow:       500 * sim.Microsecond,
		ProfilingThreshold:    50 * sim.Millisecond,
		TSPTimeout:            40 * sim.Nanosecond,
		TSPTimeoutEntries:     32,
		MigrationRetryLimit:   3,
		ReserveRankGroups:     1,
		SelfRefreshMinStandby: 1,
		// 1.5 GHz controller clock: L1 hit 1 cycle ≈ 0.67 ns, L2 hit
		// 7 cycles ≈ 4.67 ns (§6.1); we round at nanosecond resolution.
		L1SMCHit:      1 * sim.Nanosecond,
		L2SMCHit:      5 * sim.Nanosecond,
		SRAMTableHit:  1 * sim.Nanosecond,
		DRAMTableMiss: 121 * sim.Nanosecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.AUBytes <= 0 || c.AUBytes%c.Geometry.SegmentBytes != 0 {
		return fmt.Errorf("core: AU size %d must be a positive multiple of segment size %d",
			c.AUBytes, c.Geometry.SegmentBytes)
	}
	segsPerAU := c.AUBytes / c.Geometry.SegmentBytes
	if segsPerAU%int64(c.Geometry.Channels) != 0 {
		return fmt.Errorf("core: segments per AU %d must divide evenly across %d channels",
			segsPerAU, c.Geometry.Channels)
	}
	if c.MaxHosts <= 0 {
		return fmt.Errorf("core: max hosts must be positive")
	}
	if c.L1SMCEntries <= 0 || c.L2SMCEntries <= 0 || c.L2SMCWays <= 0 {
		return fmt.Errorf("core: SMC sizes must be positive")
	}
	if c.L2SMCEntries%c.L2SMCWays != 0 {
		return fmt.Errorf("core: L2 SMC entries %d not divisible by ways %d", c.L2SMCEntries, c.L2SMCWays)
	}
	sets := c.L2SMCEntries / c.L2SMCWays
	if sets&(sets-1) != 0 {
		return fmt.Errorf("core: L2 SMC set count %d must be a power of two", sets)
	}
	if c.ProfilingWindow <= 0 || c.ProfilingThreshold <= 0 {
		return fmt.Errorf("core: profiling window/threshold must be positive")
	}
	if c.TSPTimeoutEntries <= 0 {
		return fmt.Errorf("core: TSP timeout entries must be positive")
	}
	if c.MigrationRetryLimit < 0 {
		return fmt.Errorf("core: migration retry limit must be non-negative")
	}
	if c.ReserveRankGroups < 1 {
		return fmt.Errorf("core: reserve rank groups must be at least 1")
	}
	if c.SelfRefreshMinStandby < 1 {
		return fmt.Errorf("core: self-refresh min standby must be at least 1")
	}
	return nil
}

// SegmentsPerAU reports how many segments one allocation unit spans.
func (c Config) SegmentsPerAU() int64 { return c.AUBytes / c.Geometry.SegmentBytes }

// TotalAUs reports how many allocation units the device holds.
func (c Config) TotalAUs() int64 { return c.Geometry.TotalBytes() / c.AUBytes }
