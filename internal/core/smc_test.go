package core

import (
	"testing"

	"dtl/internal/dram"
)

func newTestSMC() *smc { return newSMC(4, 16, 4) }

func TestSMCMissThenHit(t *testing.T) {
	c := newTestSMC()
	if _, lvl := c.lookup(100); lvl != 0 {
		t.Fatal("cold lookup should miss")
	}
	c.install(100, 7)
	dsn, lvl := c.lookup(100)
	if lvl != 1 || dsn != 7 {
		t.Fatalf("lookup after install = (%d, level %d)", dsn, lvl)
	}
}

func TestSMCL2HitPromotesToL1(t *testing.T) {
	c := newTestSMC()
	// Fill L1 past capacity so entry 0 is evicted from L1 but stays in L2.
	for i := dram.HSN(0); i < 8; i++ {
		c.install(i, dram.DSN(i*10))
	}
	dsn, lvl := c.lookup(0)
	if lvl != 2 || dsn != 0 {
		t.Fatalf("lookup(0) = (%d, level %d), want L2 hit", dsn, lvl)
	}
	// Promoted: next lookup is an L1 hit.
	if _, lvl := c.lookup(0); lvl != 1 {
		t.Fatalf("second lookup level = %d, want 1", lvl)
	}
}

func TestSMCInvalidate(t *testing.T) {
	c := newTestSMC()
	c.install(42, 9)
	c.invalidate(42)
	if _, lvl := c.lookup(42); lvl != 0 {
		t.Fatal("invalidated entry still hits")
	}
}

func TestSMCLRUWithinSet(t *testing.T) {
	// All HSNs congruent mod sets land in one 4-way set; the 5th insert
	// evicts the least recently used.
	c := newSMC(1, 16, 4) // 4 sets
	sets := 4
	hsns := []dram.HSN{0, dram.HSN(sets), dram.HSN(2 * sets), dram.HSN(3 * sets)}
	for i, h := range hsns {
		c.install(h, dram.DSN(i))
	}
	c.lookup(hsns[0]) // make hsns[0] MRU in L2
	c.install(dram.HSN(4*sets), 99)
	if _, lvl := c.lookup(hsns[0]); lvl == 0 {
		t.Fatal("MRU entry evicted")
	}
	// hsns[1] was LRU; it must be gone (L1 is size 1, so likely miss too).
	if _, lvl := c.lookup(hsns[1]); lvl != 0 {
		t.Fatal("LRU entry survived eviction")
	}
}

func TestSMCStatsRatios(t *testing.T) {
	c := newTestSMC()
	c.install(1, 1)
	c.lookup(1) // L1 hit
	c.lookup(2) // L1 miss, L2 miss
	st := c.stats()
	if st.L1Hits != 1 || st.L1Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.L1MissRatio() != 0.5 {
		t.Fatalf("L1 miss ratio = %v", st.L1MissRatio())
	}
	if st.L2MissRatio() != 1.0 {
		t.Fatalf("L2 miss ratio = %v", st.L2MissRatio())
	}
	var zero SMCStats
	if zero.L1MissRatio() != 0 || zero.L2MissRatio() != 0 {
		t.Fatal("zero stats should report zero ratios")
	}
}

func TestTable5SizesScaleWithCapacity(t *testing.T) {
	small := DefaultConfig(dram.Default1TB())
	big := DefaultConfig(dram.Hypothetical4TB())
	ss, bs := small.Sizes(), big.Sizes()

	if bs.SegmentMapTableBytes <= ss.SegmentMapTableBytes {
		t.Error("segment map table should grow with capacity")
	}
	if bs.MigrationTableBytes <= ss.MigrationTableBytes {
		t.Error("migration table should grow with capacity")
	}
	if bs.TotalDRAM() <= ss.TotalDRAM() {
		t.Error("DRAM structures should grow")
	}
	// Table 5 magnitudes: 1TB device structures are sub-MB except the
	// DRAM-side tables which are single-digit MB at 4TB.
	if ss.MigrationTableBytes < 100<<10 || ss.MigrationTableBytes > 2<<20 {
		t.Errorf("1TB migration table = %d bytes, want hundreds of KB", ss.MigrationTableBytes)
	}
	if bs.TotalDRAM() < 10<<20 || bs.TotalDRAM() > 100<<20 {
		t.Errorf("4TB DRAM structures = %d bytes, want tens of MB", bs.TotalDRAM())
	}
	// The paper's headline: metadata is a vanishing fraction of capacity.
	frac := float64(bs.TotalDRAM()) / float64(big.Geometry.TotalBytes())
	if frac > 0.0001 {
		t.Errorf("metadata fraction %.6f%% too large", frac*100)
	}
	// SMC sizes are small (sub-16KB).
	if ss.L1SMCBytes > 2048 || ss.L2SMCBytes > 16<<10 {
		t.Errorf("SMC sizes = %d/%d", ss.L1SMCBytes, ss.L2SMCBytes)
	}
}

func TestTable6ControllerEstimate(t *testing.T) {
	cfg := DefaultConfig(dram.Default1TB())
	e := cfg.Controller(7)
	// Paper: total ~25.7mW and 0.165mm^2 at 384GB, 36.2mW / 1.1mm^2 at
	// 4TB. Our 1TB point should land between those brackets.
	if e.TotalPowerMW < 15 || e.TotalPowerMW > 60 {
		t.Errorf("power = %.1f mW, want tens of mW", e.TotalPowerMW)
	}
	if e.TotalAreaMM2 < 0.05 || e.TotalAreaMM2 > 2 {
		t.Errorf("area = %.3f mm^2", e.TotalAreaMM2)
	}
	if e.CPUPowerMW < 20 || e.CPUPowerMW > 22 {
		t.Errorf("CPU power = %.1f mW, want ~21.2", e.CPUPowerMW)
	}
	big := DefaultConfig(dram.Hypothetical4TB()).Controller(7)
	if big.TotalPowerMW <= e.TotalPowerMW || big.TotalAreaMM2 <= e.TotalAreaMM2 {
		t.Error("4TB controller should cost more than 1TB")
	}
	// Technology scaling: 40nm should be ~(40/7)^2 more expensive.
	e40 := cfg.Controller(40)
	ratio := e40.CPUPowerMW / e.CPUPowerMW
	want := (40.0 / 7.0) * (40.0 / 7.0)
	if ratio/want < 0.99 || ratio/want > 1.01 {
		t.Errorf("tech scaling ratio = %.2f, want %.2f", ratio, want)
	}
}

func TestAMATModel(t *testing.T) {
	cfg := DefaultConfig(dram.Default1TB())
	// Paper §6.1 numbers: L1 miss 14.7%, L2 miss 15.4%, CXL 210ns,
	// AMAT 214.2ns (+4.2ns translation).
	m := AMATModel{
		CXLMemLat: 210,
		L1Hit:     1,
		L2Hit:     5,
		L1Miss:    0.147,
		L2Miss:    0.154,
		Penalty:   2*cfg.SRAMTableHit + cfg.DRAMTableMiss,
	}
	tr := m.Translation()
	if tr < 2.0 || tr > 7.0 {
		t.Errorf("translation = %.2f ns, want ~4.2", tr)
	}
	amat := m.AMAT()
	if amat < 212 || amat > 217 {
		t.Errorf("AMAT = %.1f ns, want ~214.2", amat)
	}
	// Perfect caching: translation collapses to the L1 hit time.
	perfect := m
	perfect.L1Miss = 0
	if perfect.Translation() != float64(m.L1Hit) {
		t.Errorf("perfect-cache translation = %v", perfect.Translation())
	}
}

func TestAMATFromConfig(t *testing.T) {
	cfg := DefaultConfig(dram.Default1TB())
	st := SMCStats{L1Hits: 853, L1Misses: 147, L2Hits: 124, L2Misses: 23}
	m := AMATFromConfig(cfg, 210, st)
	if m.L1Miss != st.L1MissRatio() || m.L2Miss != st.L2MissRatio() {
		t.Fatal("ratios not propagated")
	}
	if m.Penalty != 2*cfg.SRAMTableHit+cfg.DRAMTableMiss {
		t.Fatalf("penalty = %v", m.Penalty)
	}
}
