package core

import (
	"bytes"
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// TestLedgerForegroundConservation checks the attribution plane's core
// identity on the access path: baseline + smc-miss-walk + self-refresh-wake
// + degraded-read latency in the ledger equals the summed TotalLat of every
// access, exactly (integer nanoseconds, no tolerance).
func TestLedgerForegroundConservation(t *testing.T) {
	d := newTestDTL(t)
	led := d.StartLedger()
	a := mustAlloc(t, d, 1, 0, 32*dram.MiB, 0)

	var want int64
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		// Stride across both AUs so SMC misses, wakes (after the power
		// manager demotes idle ranks), and plain hits all occur.
		addr := a.AUBases[i%len(a.AUBases)] + dram.HPA(int64(i)*4096)
		res, err := d.Access(addr, i%3 == 0, now)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(res.TotalLat())
		now += 50 * sim.Microsecond
		d.Tick(now)
	}

	totals := led.CauseTotals()
	foreground := [...]telemetry.Cause{
		telemetry.CauseBaseline, telemetry.CauseSMCMissWalk,
		telemetry.CauseSelfRefreshWake, telemetry.CauseDegradedRead,
	}
	var got int64
	for _, c := range foreground {
		got += totals[c].LatNs
	}
	if got != want {
		t.Fatalf("foreground ledger latency = %d ns, accesses paid %d ns", got, want)
	}
	if totals[telemetry.CauseSMCMissWalk].LatNs == 0 {
		t.Fatal("no smc-miss-walk latency attributed; striding should miss the SMC")
	}
	// Foreground charges carry no energy: energy enters via migration spans
	// and ChargeResidency only.
	for _, c := range foreground {
		if totals[c].Energy != 0 {
			t.Fatalf("foreground cause %v charged energy %g", c, totals[c].Energy)
		}
	}
}

// TestLedgerChargesTenantsByOwner checks that access costs land on the VM
// that owns the accessed AU, not on a neighbor or the system account.
func TestLedgerChargesTenantsByOwner(t *testing.T) {
	d := newTestDTL(t)
	led := d.StartLedger()
	a1 := mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	a2 := mustAlloc(t, d, 2, 0, 16*dram.MiB, 0)

	if _, err := d.Access(a1.AUBases[0], false, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Access(a2.AUBases[0], false, 200); err != nil {
		t.Fatal(err)
	}

	seen := map[int64]bool{}
	for _, e := range led.Snapshot().Entries {
		seen[e.VM] = true
		if e.VM != 1 && e.VM != 2 {
			t.Fatalf("charge landed on unexpected VM %d: %+v", e.VM, e)
		}
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("expected charges for both tenants, got %v", seen)
	}

	// After deallocation the AU ownership reverts to the system account.
	mustDealloc(t, d, 2, 300)
	before := led.CauseTotals()
	_ = before
	if owner := d.ownerOf(d.codec.HostSegmentOf(a2.AUBases[0])); owner != telemetry.SystemVM {
		t.Fatalf("freed AU still owned by VM %d", owner)
	}
}

// TestLedgerMigrationEnergyMatchesBytes checks the background identity: the
// summed energy of migration-cause spans equals ActivePowerPerGBs x bytes
// actually migrated, and stall/fault spans never add energy of their own.
func TestLedgerMigrationEnergyMatchesBytes(t *testing.T) {
	d := newTestDTL(t)
	led := d.StartLedger()
	now := sim.Time(0)
	// Small VMs straddle the rank group a large departure empties, so the
	// consolidation drain has to copy their segments (see
	// TestMigrationChargedToMigrator for the same scenario).
	mustAlloc(t, d, 1, 0, 16*dram.MiB, now)
	mustAlloc(t, d, 2, 0, 480*dram.MiB, now)
	mustAlloc(t, d, 3, 0, 16*dram.MiB, now)
	mustDealloc(t, d, 2, 1000)
	for i := 0; i < 400; i++ {
		now += 10 * sim.Millisecond
		d.Tick(now)
	}
	bytes := d.Stats().BytesMigrated
	if bytes == 0 {
		t.Fatal("consolidation drain did not migrate anything")
	}
	want := d.dev.Power().ActivePowerPerGBs * float64(bytes)
	totals := led.CauseTotals()
	got := totals[telemetry.CauseMigrationCopy].Energy +
		totals[telemetry.CauseDemotionWait].Energy +
		totals[telemetry.CauseFaultRetry].Energy
	if diff := got - want; diff > 1e-9*want || diff < -1e-9*want {
		t.Fatalf("migration energy = %g, want %g (%d bytes)", got, want, bytes)
	}
	if totals[telemetry.CauseMigrationStall].Energy != 0 {
		t.Fatalf("stall spans charged energy %g", totals[telemetry.CauseMigrationStall].Energy)
	}
}

// TestAttributedAccessDoesNotAllocate locks in the hot-path constraint: an
// SMC-hit access with a ledger attached stays allocation-free once the VM's
// cell block exists.
func TestAttributedAccessDoesNotAllocate(t *testing.T) {
	d := newTestDTL(t)
	d.StartLedger()
	a := mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	base := a.AUBases[0]
	now := sim.Time(0)
	if _, err := d.Access(base, false, now); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		now += 10
		if _, err := d.Access(base, false, now); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("attributed access allocates %.1f times per op, want 0", allocs)
	}
}

// TestLedgerArtifactDeterminism runs the same access history twice and
// demands byte-identical WriteJSON artifacts.
func TestLedgerArtifactDeterminism(t *testing.T) {
	run := func() []byte {
		d, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		led := d.StartLedger()
		a, err := d.AllocateVM(1, 0, 32*dram.MiB, 0)
		if err != nil {
			t.Fatal(err)
		}
		now := sim.Time(0)
		for i := 0; i < 100; i++ {
			if _, err := d.Access(a.AUBases[i%len(a.AUBases)]+dram.HPA(int64(i)*8192), i%2 == 0, now); err != nil {
				t.Fatal(err)
			}
			now += sim.Millisecond
			d.Tick(now)
		}
		var buf bytes.Buffer
		if err := led.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different ledger artifacts")
	}
}
