package core

import (
	"errors"
	"fmt"
	"sort"

	"dtl/internal/dram"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// ErrOutOfCapacity is returned by AllocateVM when the device cannot satisfy
// the request: usable capacity (excluding retired and failed ranks) has
// shrunk below what the allocation needs. Callers at the API edge shed load
// on it instead of treating it as fatal — the graceful-degradation contract
// of the reliability loop.
var ErrOutOfCapacity = errors.New("core: out of memory")

// Allocation summarizes a VM placement.
type Allocation struct {
	VM    VMID
	Host  HostID
	Bytes int64 // rounded up to whole allocation units
	// Reactivated reports how many MPSM rank groups had to be woken to
	// satisfy the request.
	Reactivated int
	// Base HPAs, one per allocation unit, each spanning Config.AUBytes.
	AUBases []dram.HPA
}

// AllocateVM reserves memory for a VM: the request is rounded up to whole
// 2 GB allocation units; each AU's segments are spread evenly across
// channels, drawing from the free segment queue of the most-utilized rank
// per channel first (§4.3, "Balancing Segment Allocation"). If free
// capacity on active ranks is insufficient, powered-down rank groups are
// reactivated (MPSM exit), most recently powered-down first.
func (d *DTL) AllocateVM(vm VMID, host HostID, bytes int64, now sim.Time) (Allocation, error) {
	if _, exists := d.vms[vm]; exists {
		return Allocation{}, fmt.Errorf("core: vm %d already allocated", vm)
	}
	if host < 0 || int(host) >= d.cfg.MaxHosts {
		return Allocation{}, fmt.Errorf("core: host %d out of range [0,%d)", host, d.cfg.MaxHosts)
	}
	if bytes <= 0 {
		return Allocation{}, fmt.Errorf("core: allocation size must be positive, got %d", bytes)
	}
	d.mig.completeUpTo(now)

	aus := (bytes + d.cfg.AUBytes - 1) / d.cfg.AUBytes
	// Allocation is balanced, so EVERY channel must supply its share; a
	// global count would overlook per-channel shortfalls (e.g. after a
	// rank retirement made capacities asymmetric).
	perChannelNeed := aus * d.cfg.SegmentsPerAU() / int64(d.cfg.Geometry.Channels)

	// Wake rank groups until every channel's active free pool covers its
	// share of the request.
	reactivated := 0
	for {
		short := -1
		for ch := 0; ch < d.cfg.Geometry.Channels; ch++ {
			if d.activeFreeSegmentsOn(ch) < perChannelNeed {
				short = ch
				break
			}
		}
		if short < 0 {
			break
		}
		if !d.reactivateOne(vm, now) {
			return Allocation{}, fmt.Errorf("%w: channel %d needs %d segments, %d free and no powered-down groups",
				ErrOutOfCapacity, short, perChannelNeed, d.activeFreeSegmentsOn(short))
		}
		reactivated++
	}
	if d.auFree[host].len() < int(aus) {
		return Allocation{}, fmt.Errorf("core: host %d out of AU ids", host)
	}

	segsPerAU := d.cfg.SegmentsPerAU()
	st := &vmState{
		host: host,
		aus:  make([]int64, 0, aus),
		hsns: make([]dram.HSN, 0, aus*segsPerAU),
	}
	alloc := Allocation{
		VM: vm, Host: host, Bytes: aus * d.cfg.AUBytes, Reactivated: reactivated,
		AUBases: make([]dram.HPA, 0, aus),
	}
	perChannel := segsPerAU / int64(d.cfg.Geometry.Channels)

	channels := d.cfg.Geometry.Channels
	for i := int64(0); i < aus; i++ {
		auID := d.auFree[host].popFront()
		st.aus = append(st.aus, auID)
		d.auOwner[int64(host)*d.cfg.TotalAUs()+auID] = int64(vm)
		alloc.AUBases = append(alloc.AUBases, d.auBase(host, auID))

		// Each channel contributes an equal number of segments; consecutive
		// host segments rotate across channels so every VM sees full
		// channel-level parallelism (§3.3, Fig. 6). The staging buffers are
		// scratch owned by the DTL, reused across AUs and calls.
		perCh := d.allocScratch
		for ch := 0; ch < channels; ch++ {
			perCh[ch] = d.takeSegments(ch, perCh[ch][:0], perChannel)
		}
		for off := int64(0); off < segsPerAU; off++ {
			ch := int(off % int64(channels))
			dsn := perCh[ch][off/int64(channels)]
			hsn := d.hsnOf(host, auID, off)
			d.segMap.set(hsn, dsn)
			d.revMap[dsn] = hsn
			st.hsns = append(st.hsns, hsn)
		}
	}
	d.vms[vm] = st
	// The paper recomputes the number of active ranks at every 5-minute
	// interval from the usage snapshot (§5.1); running the power-down
	// check after allocation as well as deallocation matches that model
	// and keeps never-needed rank groups off from the start.
	d.maybePowerDown(now)
	return alloc, nil
}

// auBase returns the first host physical address of (host, au).
func (d *DTL) auBase(host HostID, au int64) dram.HPA {
	hsn := d.hsnOf(host, au, 0)
	return dram.HPA(int64(hsn) << d.codec.SegmentShift())
}

// activeFreeSegments counts free segments on usable (non-MPSM, non-failed)
// ranks.
func (d *DTL) activeFreeSegments() int64 {
	var n int64
	for gr := range d.free {
		if d.dev.FailedGlobal(gr) {
			continue
		}
		ch, rk := d.codec.SplitGlobalRank(gr)
		if d.dev.State(dram.RankID{Channel: ch, Rank: rk}) != dram.MPSM {
			n += int64(d.free[gr].len())
		}
	}
	return n
}

// activeFreeSegmentsOn counts free segments on channel ch's usable
// (non-MPSM, non-failed) ranks.
func (d *DTL) activeFreeSegmentsOn(ch int) int64 {
	var n int64
	for rk := 0; rk < d.cfg.Geometry.RanksPerChannel; rk++ {
		gr := d.codec.GlobalRank(ch, rk)
		if d.dev.FailedGlobal(gr) {
			continue
		}
		if d.dev.State(dram.RankID{Channel: ch, Rank: rk}) != dram.MPSM {
			n += int64(d.free[gr].len())
		}
	}
	return n
}

// takeSegments pops n free segments from channel ch into out, preferring the
// most-utilized active rank with free space ("for the rank with the highest
// capacity utilization in each channel, its free segment queue has the
// highest priority", §4.3). Standby ranks are preferred over self-refresh
// ranks so allocation does not needlessly wake cold ranks.
func (d *DTL) takeSegments(ch int, out []dram.DSN, n int64) []dram.DSN {
	taken := int64(0)
	for taken < n {
		gr := d.pickAllocRank(ch)
		if gr < 0 {
			panic(fmt.Sprintf("core: channel %d out of free segments with %d still needed (caller must check capacity)",
				ch, n-taken))
		}
		take := n - taken
		if avail := int64(d.free[gr].len()); take > avail {
			take = avail
		}
		out = d.free[gr].popFrontN(out, int(take))
		d.allocated[gr] += take
		taken += take
	}
	return out
}

// pickAllocRank selects the global rank on channel ch to allocate from:
// the non-MPSM, non-failed rank with free segments that has the highest
// utilization; standby beats self-refresh at equal utilization classes.
func (d *DTL) pickAllocRank(ch int) int {
	best := -1
	var bestKey [2]int64 // {standby preference, allocated count}
	for rk := 0; rk < d.cfg.Geometry.RanksPerChannel; rk++ {
		gr := d.codec.GlobalRank(ch, rk)
		if d.free[gr].len() == 0 || d.dev.FailedGlobal(gr) {
			continue
		}
		state := d.dev.State(dram.RankID{Channel: ch, Rank: rk})
		if state == dram.MPSM {
			continue
		}
		standby := int64(0)
		if state == dram.Standby {
			standby = 1
		}
		key := [2]int64{standby, d.allocated[gr]}
		if best < 0 || key[0] > bestKey[0] || (key[0] == bestKey[0] && key[1] > bestKey[1]) {
			best, bestKey = gr, key
		}
	}
	return best
}

// reactivateOne wakes the most recently powered-down rank group on behalf
// of vm's allocation, charging each rank's MPSM-exit wait to the ledger as
// demotion-wait (the cost of having demoted that rank in the first place).
func (d *DTL) reactivateOne(vm VMID, now sim.Time) bool {
	if len(d.poweredDown) == 0 {
		return false
	}
	group := d.poweredDown[len(d.poweredDown)-1]
	d.poweredDown = d.poweredDown[:len(d.poweredDown)-1]
	for _, id := range group {
		ready := d.dev.SetState(id, dram.Standby, now)
		if ready > now {
			d.chargeSpan(int64(vm), d.codec.GlobalRank(id.Channel, id.Rank),
				telemetry.CauseDemotionWait, now, ready, 0)
		}
	}
	d.st.reactivateEvents.Inc()
	return true
}

// DeallocateVM releases all memory of vm and then runs the rank-level
// power-down check of §3.3: if the unallocated capacity across active ranks
// exceeds one rank group, the least-utilized virtual rank group is drained
// and put into MPSM.
func (d *DTL) DeallocateVM(vm VMID, now sim.Time) error {
	st, ok := d.vms[vm]
	if !ok {
		return fmt.Errorf("core: vm %d not allocated", vm)
	}
	d.mig.completeUpTo(now)

	for _, hsn := range st.hsns {
		dsn, ok := d.segMap.get(hsn)
		if !ok {
			return fmt.Errorf("core: vm %d hsn %d missing from segment mapping table", vm, hsn)
		}
		d.segMap.del(hsn)
		d.revMap[dsn] = dsnFree
		d.smc.invalidate(hsn)
		l := d.codec.DecodeDSN(dsn)
		gr := d.codec.GlobalRank(l.Channel, l.Rank)
		d.free[gr].push(dsn)
		d.allocated[gr]--
		d.hot.onSegmentFreed(dsn)
	}
	for _, au := range st.aus {
		d.auOwner[int64(st.host)*d.cfg.TotalAUs()+au] = telemetry.SystemVM
	}
	d.auFree[st.host].pushAll(st.aus)
	delete(d.vms, vm)

	d.maybePowerDown(now)
	// Freed capacity may unblock a deferred (capacity-short) retirement.
	d.health.process(now)
	return nil
}

// LiveVMs reports the number of currently allocated VMs.
func (d *DTL) LiveVMs() int { return len(d.vms) }

// AllocatedBytes reports the total bytes currently reserved by VMs.
func (d *DTL) AllocatedBytes() int64 {
	return int64(d.segMap.len()) * d.cfg.Geometry.SegmentBytes
}

// VMAddresses returns the AU base addresses of a live VM, for driving
// traffic at it.
func (d *DTL) VMAddresses(vm VMID) ([]dram.HPA, error) {
	st, ok := d.vms[vm]
	if !ok {
		return nil, fmt.Errorf("core: vm %d not allocated", vm)
	}
	out := make([]dram.HPA, len(st.aus))
	for i, au := range st.aus {
		out[i] = d.auBase(st.host, au)
	}
	return out, nil
}

// HostAllocatedBytes reports the memory reserved by each host's VMs,
// indexed by HostID — the per-tenant view a pooled-memory operator bills on.
func (d *DTL) HostAllocatedBytes() []int64 {
	out := make([]int64, d.cfg.MaxHosts)
	for _, st := range d.vms {
		out[st.host] += int64(len(st.aus)) * d.cfg.AUBytes
	}
	return out
}

// rankUtilization returns allocated-segment counts per rank index summed
// across channels (rank-group utilization).
func (d *DTL) rankGroupAllocated() []int64 {
	out := make([]int64, d.cfg.Geometry.RanksPerChannel)
	for gr, n := range d.allocated {
		_, rk := d.codec.SplitGlobalRank(gr)
		out[rk] += n
	}
	return out
}

// sortedRanksByUtilization returns active (non-MPSM, non-failed) ranks of a
// channel in ascending allocated-segment order. Failed ranks are excluded so
// the power-down and self-refresh engines never pick one as a victim or
// consolidation target; retirement is their only exit.
func (d *DTL) sortedRanksByUtilization(ch int) []int {
	var ranks []int
	for rk := 0; rk < d.cfg.Geometry.RanksPerChannel; rk++ {
		if d.dev.FailedGlobal(d.codec.GlobalRank(ch, rk)) {
			continue
		}
		if d.dev.State(dram.RankID{Channel: ch, Rank: rk}) != dram.MPSM {
			ranks = append(ranks, rk)
		}
	}
	sort.Slice(ranks, func(i, j int) bool {
		gi := d.codec.GlobalRank(ch, ranks[i])
		gj := d.codec.GlobalRank(ch, ranks[j])
		if d.allocated[gi] != d.allocated[gj] {
			return d.allocated[gi] < d.allocated[gj]
		}
		return ranks[i] < ranks[j]
	})
	return ranks
}
