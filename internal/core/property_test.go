package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// TestPropertyRandomOpsPreserveInvariants drives the DTL with random
// sequences of allocate / deallocate / access / tick operations generated
// by testing/quick and verifies the global invariants after every step.
func TestPropertyRandomOpsPreserveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig()
		cfg.ProfilingWindow = 10 * sim.Microsecond
		cfg.ProfilingThreshold = 50 * sim.Microsecond
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.Hotness().Enable(0)

		live := map[VMID][]dram.HPA{}
		nextID := VMID(1)
		now := sim.Time(0)
		for op := 0; op < 120; op++ {
			now += sim.Time(rng.Intn(20000) + 100)
			switch r := rng.Intn(10); {
			case r < 3: // allocate
				sz := int64(rng.Intn(16)+1) * 16 * dram.MiB
				if a, err := d.AllocateVM(nextID, HostID(rng.Intn(4)), sz, now); err == nil {
					live[nextID] = a.AUBases
				}
				nextID++
			case r < 5 && len(live) > 0: // deallocate
				for id := range live {
					if err := d.DeallocateVM(id, now); err != nil {
						t.Logf("seed %d: dealloc: %v", seed, err)
						return false
					}
					delete(live, id)
					break
				}
			case r < 9 && len(live) > 0: // burst of accesses
				for id, bases := range live {
					_ = id
					for i := 0; i < 20; i++ {
						base := bases[rng.Intn(len(bases))]
						off := rng.Int63n(16 * dram.MiB)
						if _, err := d.Access(base+dram.HPA(off), rng.Intn(3) == 0, now); err != nil {
							t.Logf("seed %d: access: %v", seed, err)
							return false
						}
						now += sim.Time(rng.Intn(500) + 50)
					}
					break
				}
			default:
				d.Tick(now)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTranslationStable verifies that for a fixed allocation, the
// HPA→DPA mapping is a function: repeated accesses to the same HPA resolve
// to the same DPA unless a migration intervened, and distinct HPAs never
// alias to the same DPA.
func TestPropertyTranslationStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.AllocateVM(1, 0, 128*dram.MiB, 0)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[dram.DPA]dram.HPA{}
		now := sim.Time(100)
		for i := 0; i < 300; i++ {
			base := a.AUBases[rng.Intn(len(a.AUBases))]
			off := rng.Int63n(16*dram.MiB) &^ 63
			hpa := base + dram.HPA(off)
			res, err := d.Access(hpa, false, now)
			if err != nil {
				return false
			}
			if prev, ok := seen[res.DPA]; ok && prev != hpa {
				t.Logf("seed %d: DPA %d aliased by HPA %d and %d", seed, res.DPA, prev, hpa)
				return false
			}
			seen[res.DPA] = hpa
			now += 100
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySegmentConservation: allocated segment count equals the sum
// of per-rank allocation counters under arbitrary alloc/dealloc orders.
func TestPropertySegmentConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		d, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		live := []VMID{}
		next := VMID(1)
		now := sim.Time(0)
		for _, op := range ops {
			now += 1000
			if op%2 == 0 || len(live) == 0 {
				sz := int64(op%8+1) * 16 * dram.MiB
				if _, err := d.AllocateVM(next, HostID(op%4), sz, now); err == nil {
					live = append(live, next)
				}
				next++
			} else {
				id := live[int(op)%len(live)]
				if err := d.DeallocateVM(id, now); err != nil {
					return false
				}
				for i, v := range live {
					if v == id {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
			var sum int64
			for _, n := range d.allocated {
				sum += n
			}
			if sum != int64(d.segMap.len()) {
				t.Logf("allocated sum %d != mapped %d", sum, d.segMap.len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
