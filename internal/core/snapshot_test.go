package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// buildPopulatedDTL creates a DTL with several VMs, a powered-down group
// and a retired rank — a representative durable state.
func buildPopulatedDTL(t *testing.T) *DTL {
	t.Helper()
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	mustAlloc(t, d, 2, 1, 128*dram.MiB, 1000)
	mustAlloc(t, d, 3, 2, 16*dram.MiB, 2000)
	mustDealloc(t, d, 2, 3000)
	if err := d.RetireRank(dram.RankID{Channel: 2, Rank: 3}, 4000); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := buildPopulatedDTL(t)
	var buf bytes.Buffer
	if err := d.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}

	r, err := LoadMetadata(&buf, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Mappings identical.
	if r.segMap.len() != d.segMap.len() {
		t.Fatalf("segment count %d != %d", r.segMap.len(), d.segMap.len())
	}
	d.segMap.forEach(func(hsn dram.HSN, dsn dram.DSN) {
		got, ok := r.segMap.get(hsn)
		if !ok || got != dsn {
			t.Fatalf("mapping mismatch at hsn %d: %d != %d", hsn, got, dsn)
		}
	})
	// VM population identical.
	if r.LiveVMs() != d.LiveVMs() {
		t.Fatalf("VMs %d != %d", r.LiveVMs(), d.LiveVMs())
	}
	for _, vm := range []VMID{1, 3} {
		want, _ := d.VMAddresses(vm)
		got, err := r.VMAddresses(vm)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("vm %d AU count %d != %d", vm, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("vm %d AU base %d: %v != %v", vm, i, got[i], want[i])
			}
		}
	}
	// Power states identical.
	g := d.Config().Geometry
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			id := dram.RankID{Channel: ch, Rank: rk}
			if r.dev.State(id) != d.dev.State(id) {
				t.Fatalf("state mismatch at %v: %v != %v", id, r.dev.State(id), d.dev.State(id))
			}
		}
	}
	if len(r.RetiredRanks()) != 1 || r.RetiredRanks()[0] != (dram.RankID{Channel: 2, Rank: 3}) {
		t.Fatalf("retired = %v", r.RetiredRanks())
	}
	if r.PoweredDownGroups() != d.PoweredDownGroups() {
		t.Fatalf("groups %d != %d", r.PoweredDownGroups(), d.PoweredDownGroups())
	}
}

func TestSnapshotRestoredDeviceIsUsable(t *testing.T) {
	d := buildPopulatedDTL(t)
	var buf bytes.Buffer
	if err := d.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := LoadMetadata(&buf, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Old VMs accessible; new VMs allocatable; deallocation works.
	a, _ := r.VMAddresses(1)
	if _, err := r.Access(a[0], false, 10_000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AllocateVM(9, 0, 32*dram.MiB, 11_000); err != nil {
		t.Fatal(err)
	}
	if err := r.DeallocateVM(1, 12_000); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	d := buildPopulatedDTL(t)
	var a, b bytes.Buffer
	if err := d.SaveMetadata(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveMetadata(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshots of identical state differ")
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	d := buildPopulatedDTL(t)
	var buf bytes.Buffer
	if err := d.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte in the middle (mapping area).
	raw[len(raw)/2] ^= 0xff
	if _, err := LoadMetadata(bytes.NewReader(raw), testConfig()); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
}

func TestSnapshotTruncationDetected(t *testing.T) {
	d := buildPopulatedDTL(t)
	var buf bytes.Buffer
	if err := d.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadMetadata(bytes.NewReader(raw), testConfig()); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	if _, err := LoadMetadata(strings.NewReader("not a snapshot at all, definitely"), testConfig()); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSnapshotGeometryMismatch(t *testing.T) {
	d := buildPopulatedDTL(t)
	var buf bytes.Buffer
	if err := d.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	other := testConfig()
	other.Geometry.RankBytes *= 2
	if _, err := LoadMetadata(&buf, other); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestSnapshotEmptyDevice(t *testing.T) {
	d := newTestDTL(t)
	var buf bytes.Buffer
	if err := d.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := LoadMetadata(&buf, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.LiveVMs() != 0 || r.AllocatedBytes() != 0 {
		t.Fatal("empty device restored non-empty")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotAfterHotnessActivity(t *testing.T) {
	cfg := testConfig()
	cfg.ProfilingWindow = 10 * sim.Microsecond
	cfg.ProfilingThreshold = 100 * sim.Microsecond
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	now := driveAccesses(t, d, a[:4], 2000, 0, 500)
	d.Tick(now + 200*sim.Microsecond)

	var buf bytes.Buffer
	if err := d.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := LoadMetadata(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Self-refresh states survive; the hotness engine restarts cold.
	if len(r.Device().RanksIn(dram.SelfRefresh)) != len(d.Device().RanksIn(dram.SelfRefresh)) {
		t.Fatal("self-refresh population not preserved")
	}
	if r.Hotness().Enabled() {
		t.Fatal("hotness engine should restart disabled (volatile state)")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySnapshotRoundTripRandomStates(t *testing.T) {
	// Arbitrary alloc/dealloc/retire histories must survive a checkpoint:
	// the restored device is indistinguishable under CheckInvariants and
	// serves every live VM's address space.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		live := map[VMID]bool{}
		next := VMID(1)
		now := sim.Time(0)
		for op := 0; op < 60; op++ {
			now += 1000
			switch r := rng.Intn(10); {
			case r < 5:
				sz := int64(rng.Intn(8)+1) * 16 * dram.MiB
				if _, err := d.AllocateVM(next, HostID(rng.Intn(4)), sz, now); err == nil {
					live[next] = true
				}
				next++
			case r < 8 && len(live) > 0:
				for id := range live {
					if err := d.DeallocateVM(id, now); err != nil {
						return false
					}
					delete(live, id)
					break
				}
			case r == 9 && len(d.RetiredRanks()) == 0:
				// One retirement attempt per history at most.
				_ = d.RetireRank(dram.RankID{Channel: rng.Intn(4), Rank: rng.Intn(4)}, now)
			}
		}

		var buf bytes.Buffer
		if err := d.SaveMetadata(&buf); err != nil {
			t.Logf("seed %d: save: %v", seed, err)
			return false
		}
		r, err := LoadMetadata(&buf, testConfig())
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		if r.AllocatedBytes() != d.AllocatedBytes() || r.LiveVMs() != d.LiveVMs() {
			return false
		}
		for id := range live {
			want, _ := d.VMAddresses(id)
			got, err := r.VMAddresses(id)
			if err != nil || len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return r.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
