package core

import (
	"errors"
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// Rank retirement is the reliability extension the paper's conclusion points
// at: because DTL owns the HPA→DPA mapping, a rank that starts reporting
// correctable-error storms (or fails a patrol scrub) can be drained and
// taken offline transparently, exactly like a power-down victim — except it
// never comes back. The host keeps its physical addresses; the device keeps
// running with reduced spare capacity.

// ErrRetireCapacity is returned when the surviving ranks of some channel
// cannot absorb the retiring rank's live segments. The HealthMonitor treats
// it as a deferred retirement and retries with backoff.
var ErrRetireCapacity = errors.New("core: insufficient free capacity to retire rank")

// ErrLastRank is returned when retirement would take the last non-retired
// rank of a channel offline: the channel's live data would have nowhere to
// go, so the rank must keep serving (in degraded mode if it has failed).
var ErrLastRank = errors.New("core: cannot retire the last rank of a channel")

// RetireRank drains every live segment off the given rank into the other
// active ranks of the same channel, removes the rank's capacity from the
// allocator permanently, and powers the rank down. Unlike power-down
// victims, retired ranks are never reactivated: AllocateVM will not draw
// from them and reactivation skips them.
func (d *DTL) RetireRank(id dram.RankID, now sim.Time) error {
	return d.retireRank(id, now, "manual")
}

// retireRank is RetireRank with a cause tag for telemetry ("manual",
// "ecc-storm", "uncorrectable", "wake-fault", "rank-failure").
func (d *DTL) retireRank(id dram.RankID, now sim.Time, cause string) error {
	g := d.cfg.Geometry
	if id.Channel < 0 || id.Channel >= g.Channels || id.Rank < 0 || id.Rank >= g.RanksPerChannel {
		return fmt.Errorf("core: rank %v out of range", id)
	}
	gr := d.codec.GlobalRank(id.Channel, id.Rank)
	if d.retired == nil {
		d.retired = make(map[int]bool)
	}
	if d.retired[gr] {
		return fmt.Errorf("core: rank %v already retired", id)
	}
	// The last non-retired rank of a channel can never be retired: its live
	// segments would have nowhere to go and future allocations need the
	// channel (MPSM ranks count as survivors — they can be reactivated).
	survivors := 0
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		if rk != id.Rank && !d.retired[d.codec.GlobalRank(id.Channel, rk)] {
			survivors++
		}
	}
	if survivors == 0 {
		return fmt.Errorf("%w (ch%d)", ErrLastRank, id.Channel)
	}
	d.mig.completeUpTo(now)

	// If the rank is in MPSM it holds no data; wake it logically so the
	// drain bookkeeping below applies uniformly, then drop its capacity.
	if d.dev.State(id) == dram.MPSM {
		d.removeFromPoweredDown(id)
		d.dev.SetState(id, dram.Standby, now)
	}
	if d.dev.State(id) == dram.SelfRefresh {
		d.hot.onSelfRefreshWake(id, now)
		d.st.selfRefreshExits.Inc()
		d.dev.SetState(id, dram.Standby, now)
	}

	// Capacity check: the other active, non-retired, non-failed ranks of
	// this channel must absorb the live segments.
	live := d.allocated[gr]
	if d.drainCapacityOn(id.Channel, id.Rank) < live {
		// Try waking powered-down groups to make room.
		for d.drainCapacityOn(id.Channel, id.Rank) < live && d.reactivateOne(VMID(telemetry.SystemVM), now) {
		}
		if d.drainCapacityOn(id.Channel, id.Rank) < live {
			return ErrRetireCapacity
		}
	}

	d.drainRank(id, now, "retire")

	// Remove the rank's free capacity from the allocator and power it off
	// for good.
	d.free[gr].reset()
	d.retired[gr] = true
	d.dev.SetState(id, dram.MPSM, now)
	d.hot.onRankPoweredDown(id, now)
	d.st.ranksRetired.Inc()
	d.tracer.Retire(gr, cause, now)
	// Capacity woken for the drain that is no longer needed can power back
	// down immediately.
	d.maybePowerDown(now)
	return nil
}

// drainCapacityOn sums the free segments of a channel's ranks that are
// eligible drain targets: not the excluded rank, not retired, not failed,
// not in MPSM. It must agree exactly with takeDrainTarget's eligibility
// rule, or draining panics mid-way.
func (d *DTL) drainCapacityOn(ch, exclude int) int64 {
	var free int64
	for rk := 0; rk < d.cfg.Geometry.RanksPerChannel; rk++ {
		if rk == exclude {
			continue
		}
		gr := d.codec.GlobalRank(ch, rk)
		if d.retired[gr] || d.dev.FailedGlobal(gr) {
			continue
		}
		if d.dev.State(dram.RankID{Channel: ch, Rank: rk}) == dram.MPSM {
			continue
		}
		free += int64(d.free[gr].len())
	}
	return free
}

// removeFromPoweredDown drops id from any virtual rank group so a later
// reactivation does not resurrect a retired rank. The group's remaining
// members stay powered down.
func (d *DTL) removeFromPoweredDown(id dram.RankID) {
	for gi, group := range d.poweredDown {
		for mi, member := range group {
			if member == id {
				d.poweredDown[gi] = append(group[:mi], group[mi+1:]...)
				if len(d.poweredDown[gi]) == 0 {
					d.poweredDown = append(d.poweredDown[:gi], d.poweredDown[gi+1:]...)
				}
				return
			}
		}
	}
}

// RetiredRanks lists retired ranks in (rank, channel) order.
func (d *DTL) RetiredRanks() []dram.RankID {
	var out []dram.RankID
	g := d.cfg.Geometry
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		for ch := 0; ch < g.Channels; ch++ {
			if d.retired[d.codec.GlobalRank(ch, rk)] {
				out = append(out, dram.RankID{Channel: ch, Rank: rk})
			}
		}
	}
	return out
}

// UsableBytes reports device capacity minus retired ranks.
func (d *DTL) UsableBytes() int64 {
	return d.cfg.Geometry.TotalBytes() - int64(len(d.retired))*d.cfg.Geometry.RankBytes
}
