package core

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// Rank retirement is the reliability extension the paper's conclusion points
// at: because DTL owns the HPA→DPA mapping, a rank that starts reporting
// correctable-error storms (or fails a patrol scrub) can be drained and
// taken offline transparently, exactly like a power-down victim — except it
// never comes back. The host keeps its physical addresses; the device keeps
// running with reduced spare capacity.

// ErrRetireCapacity is returned when the surviving ranks of some channel
// cannot absorb the retiring rank's live segments.
var ErrRetireCapacity = fmt.Errorf("core: insufficient free capacity to retire rank")

// RetireRank drains every live segment off the given rank into the other
// active ranks of the same channel, removes the rank's capacity from the
// allocator permanently, and powers the rank down. Unlike power-down
// victims, retired ranks are never reactivated: AllocateVM will not draw
// from them and reactivation skips them.
func (d *DTL) RetireRank(id dram.RankID, now sim.Time) error {
	g := d.cfg.Geometry
	if id.Channel < 0 || id.Channel >= g.Channels || id.Rank < 0 || id.Rank >= g.RanksPerChannel {
		return fmt.Errorf("core: rank %v out of range", id)
	}
	gr := d.codec.GlobalRank(id.Channel, id.Rank)
	if d.retired == nil {
		d.retired = make(map[int]bool)
	}
	if d.retired[gr] {
		return fmt.Errorf("core: rank %v already retired", id)
	}
	d.mig.completeUpTo(now)

	// If the rank is in MPSM it holds no data; wake it logically so the
	// drain bookkeeping below applies uniformly, then drop its capacity.
	if d.dev.State(id) == dram.MPSM {
		d.removeFromPoweredDown(id)
		d.dev.SetState(id, dram.Standby, now)
	}
	if d.dev.State(id) == dram.SelfRefresh {
		d.hot.onSelfRefreshWake(id, now)
		d.st.selfRefreshExits.Inc()
		d.dev.SetState(id, dram.Standby, now)
	}

	// Capacity check: the other active, non-retired ranks of this channel
	// must absorb the live segments.
	live := d.allocated[gr]
	var freeElsewhere int64
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		if rk == id.Rank {
			continue
		}
		ogr := d.codec.GlobalRank(id.Channel, rk)
		if d.retired[ogr] || d.dev.State(dram.RankID{Channel: id.Channel, Rank: rk}) == dram.MPSM {
			continue
		}
		freeElsewhere += int64(len(d.free[ogr]))
	}
	if freeElsewhere < live {
		// Try waking powered-down groups to make room.
		for freeElsewhere < live && d.reactivateOne(now) {
			freeElsewhere = 0
			for rk := 0; rk < g.RanksPerChannel; rk++ {
				if rk == id.Rank {
					continue
				}
				ogr := d.codec.GlobalRank(id.Channel, rk)
				if d.retired[ogr] || d.dev.State(dram.RankID{Channel: id.Channel, Rank: rk}) == dram.MPSM {
					continue
				}
				freeElsewhere += int64(len(d.free[ogr]))
			}
		}
		if freeElsewhere < live {
			return ErrRetireCapacity
		}
	}

	d.drainRank(id, now, "retire")

	// Remove the rank's free capacity from the allocator and power it off
	// for good.
	d.free[gr] = nil
	d.retired[gr] = true
	d.dev.SetState(id, dram.MPSM, now)
	d.hot.onRankPoweredDown(id, now)
	d.st.ranksRetired.Inc()
	d.tracer.Retire(gr, now)
	// Capacity woken for the drain that is no longer needed can power back
	// down immediately.
	d.maybePowerDown(now)
	return nil
}

// removeFromPoweredDown drops id from any virtual rank group so a later
// reactivation does not resurrect a retired rank. The group's remaining
// members stay powered down.
func (d *DTL) removeFromPoweredDown(id dram.RankID) {
	for gi, group := range d.poweredDown {
		for mi, member := range group {
			if member == id {
				d.poweredDown[gi] = append(group[:mi], group[mi+1:]...)
				if len(d.poweredDown[gi]) == 0 {
					d.poweredDown = append(d.poweredDown[:gi], d.poweredDown[gi+1:]...)
				}
				return
			}
		}
	}
}

// RetiredRanks lists retired ranks in (rank, channel) order.
func (d *DTL) RetiredRanks() []dram.RankID {
	var out []dram.RankID
	g := d.cfg.Geometry
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		for ch := 0; ch < g.Channels; ch++ {
			if d.retired[d.codec.GlobalRank(ch, rk)] {
				out = append(out, dram.RankID{Channel: ch, Rank: rk})
			}
		}
	}
	return out
}

// UsableBytes reports device capacity minus retired ranks.
func (d *DTL) UsableBytes() int64 {
	return d.cfg.Geometry.TotalBytes() - int64(len(d.retired))*d.cfg.Geometry.RankBytes
}
