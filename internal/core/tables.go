package core

import (
	"math"
)

// StructureSizes is the analytic metadata-size model behind Table 5: the
// SRAM- and DRAM-resident structures DTL needs for a device of the
// configured capacity serving Config.MaxHosts hosts.
type StructureSizes struct {
	// Remapping caches.
	L1SMCBytes int64
	L2SMCBytes int64
	// SRAM structures.
	HostBaseTableBytes  int64
	AUBaseTableBytes    int64
	MigrationTableBytes int64
	// DRAM structures.
	SegmentMapTableBytes int64
	ReverseMapTableBytes int64
	FreeQueueBytes       int64
	AllocQueueBytes      int64
	FreeAUQueueBytes     int64
}

// TotalSRAM sums the on-chip structures (caches excluded, as in Table 6's
// separate "segment mapping cache" row).
func (s StructureSizes) TotalSRAM() int64 {
	return s.HostBaseTableBytes + s.AUBaseTableBytes + s.MigrationTableBytes
}

// TotalDRAM sums the DRAM-resident structures.
func (s StructureSizes) TotalDRAM() int64 {
	return s.SegmentMapTableBytes + s.ReverseMapTableBytes + s.FreeQueueBytes +
		s.AllocQueueBytes + s.FreeAUQueueBytes
}

// Sizes computes the Table 5 model for the configuration.
//
// Entry widths follow the paper's construction: a segment pointer needs
// log2(total segments) bits; SMC entries add the HSN tag; the migration
// table stores {access bit, rank number, segment number} per segment;
// queue entries are segment (or AU) numbers.
func (c Config) Sizes() StructureSizes {
	g := c.Geometry
	totalSegs := g.TotalSegments()
	segBits := bitsFor(totalSegs)
	hsnBits := bitsFor(int64(c.MaxHosts) * c.TotalAUs() * c.SegmentsPerAU())
	rankBits := bitsFor(int64(g.RanksPerChannel))
	segInRankBits := bitsFor(g.SegmentsPerRank())
	auBits := bitsFor(c.TotalAUs())

	bytesOf := func(entries, bitsPerEntry int64) int64 {
		return (entries*bitsPerEntry + 7) / 8
	}

	var s StructureSizes
	// SMC entries: valid bit + HSN tag + DSN.
	smcEntryBits := 1 + hsnBits + segBits
	s.L1SMCBytes = bytesOf(int64(c.L1SMCEntries), smcEntryBits)
	s.L2SMCBytes = bytesOf(int64(c.L2SMCEntries), smcEntryBits)
	// Host base address table: one AU-table base pointer per host.
	ptrBits := int64(64)
	s.HostBaseTableBytes = bytesOf(int64(c.MaxHosts), ptrBits+1)
	// AU base address tables: one entry per AU slot per host.
	s.AUBaseTableBytes = bytesOf(int64(c.MaxHosts)*c.TotalAUs(), auBits+1)
	// Migration table: access bit + target rank + target segment per segment.
	s.MigrationTableBytes = bytesOf(totalSegs, 1+rankBits+segInRankBits)
	// Segment mapping table: one DSN per host segment slot in use; sized
	// for full-device occupancy.
	s.SegmentMapTableBytes = bytesOf(totalSegs, segBits)
	// Reverse mapping table: one HSN per physical segment.
	s.ReverseMapTableBytes = bytesOf(totalSegs, hsnBits)
	// Free / allocated segment queues: one segment number per slot.
	s.FreeQueueBytes = bytesOf(totalSegs, segBits)
	s.AllocQueueBytes = bytesOf(totalSegs, segBits)
	// Free AU queue: one AU number per AU.
	s.FreeAUQueueBytes = bytesOf(c.TotalAUs(), auBits)
	return s
}

func bitsFor(n int64) int64 {
	if n <= 1 {
		return 1
	}
	return int64(math.Ceil(math.Log2(float64(n))))
}

// ControllerEstimate is the §6.5/Table 6 power and area model for the DTL
// logic inside the CXL controller, normalized to a target technology node
// using the (technology)^2 scaling rule of Biswas & Chandrakasan.
type ControllerEstimate struct {
	SMCPowerMW   float64
	SMCAreaMM2   float64
	SRAMPowerMW  float64
	SRAMAreaMM2  float64
	CPUPowerMW   float64
	CPUAreaMM2   float64
	TotalPowerMW float64
	TotalAreaMM2 float64
}

// controller reference points measured at 40 nm (quad-core Cortex-R5 at
// 625 MHz synthesized with the TSMC 40 nm GP library, §6.5), scaled by
// (target/40)^2 and linearly in frequency to 1.5 GHz.
const (
	refTechNm      = 40.0
	refCPUPowerMW  = 21.2 / 0.030625 // back-scaled so 7nm yields 21.2 mW
	refCPUAreaMM2  = 0.0515 / 0.030625
	refFreqGHz     = 0.625
	targetFreqGHz  = 1.5
	sramMWPerMB40  = 180.0 // leakage+dynamic per MB of SRAM structure at 40nm
	sramMM2PerMB40 = 6.0
	smcMWPerKB40   = 10.0
	smcMM2PerKB40  = 0.021
)

// Controller estimates Table 6 numbers for the configuration at the given
// technology node in nanometers (the paper reports 7 nm).
func (c Config) Controller(techNm float64) ControllerEstimate {
	s := c.Sizes()
	scale := (techNm / refTechNm) * (techNm / refTechNm)

	smcKB := float64(s.L1SMCBytes+s.L2SMCBytes) / 1024
	sramMB := float64(s.TotalSRAM()) / (1 << 20)

	e := ControllerEstimate{
		SMCPowerMW:  smcMWPerKB40 * smcKB * scale * (targetFreqGHz / refFreqGHz),
		SMCAreaMM2:  smcMM2PerKB40 * smcKB * scale,
		SRAMPowerMW: sramMWPerMB40 * sramMB * scale * (targetFreqGHz / refFreqGHz),
		SRAMAreaMM2: sramMM2PerMB40 * sramMB * scale,
		CPUPowerMW:  refCPUPowerMW * scale,
		CPUAreaMM2:  refCPUAreaMM2 * scale,
	}
	e.TotalPowerMW = e.SMCPowerMW + e.SRAMPowerMW + e.CPUPowerMW
	e.TotalAreaMM2 = e.SMCAreaMM2 + e.SRAMAreaMM2 + e.CPUAreaMM2
	return e
}
