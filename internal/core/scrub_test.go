package core

import (
	"testing"

	"dtl/internal/dram"
)

func TestScrubFullSweepCleanDevice(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	s := d.Scrubber()
	total := int(d.Config().Geometry.TotalSegments())
	done, err := s.Run(1000, total)
	if err != nil {
		t.Fatal(err)
	}
	scrubbed, skipped, _ := s.Stats()
	if int(scrubbed+skipped) != total {
		t.Fatalf("scrubbed %d + skipped %d != %d", scrubbed, skipped, total)
	}
	// MPSM ranks (powered down at alloc) are skipped, so done < total.
	if done == 0 || done >= total {
		t.Fatalf("done = %d of %d, want partial (MPSM ranks skipped)", done, total)
	}
}

func TestScrubBudgetRespected(t *testing.T) {
	d := newTestDTL(t)
	s := d.Scrubber()
	if done, err := s.Run(0, 10); err != nil || done > 10 {
		t.Fatalf("done=%d err=%v", done, err)
	}
	if done, err := s.Run(0, -1); err != nil || done != 0 {
		t.Fatalf("negative budget: done=%d err=%v", done, err)
	}
}

func TestScrubWrapsAndCountsSweeps(t *testing.T) {
	d := newTestDTL(t)
	s := d.Scrubber()
	total := int(d.Config().Geometry.TotalSegments())
	for i := 0; i < 3; i++ {
		if _, err := s.Run(0, total); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, sweeps := s.Stats(); sweeps != 3 {
		t.Fatalf("sweeps = %d, want 3", sweeps)
	}
}

func TestScrubCollectsInjectedErrors(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 256*dram.MiB, 0) // keep target ranks active
	s := d.Scrubber()
	// Find a live segment and inject errors against its rank.
	var target dram.DSN
	for dsn, hsn := range d.revMap {
		if hsn != dsnFree {
			target = dram.DSN(dsn)
			break
		}
	}
	l := d.codec.DecodeDSN(target)
	id := dram.RankID{Channel: l.Channel, Rank: l.Rank}
	if err := s.InjectErrors(target, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectErrors(target, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0, int(d.Config().Geometry.TotalSegments())); err != nil {
		t.Fatal(err)
	}
	if got := s.ErrorCount(id); got != 10 {
		t.Fatalf("error count = %d, want 10", got)
	}
	over := s.RanksOverThreshold(10)
	if len(over) != 1 || over[0] != id {
		t.Fatalf("over threshold = %v, want [%v]", over, id)
	}
	if len(s.RanksOverThreshold(11)) != 0 {
		t.Fatal("threshold 11 should not trigger")
	}
}

func TestScrubThenRetireLoop(t *testing.T) {
	// The full reliability loop: errors accumulate -> rank crosses the
	// threshold -> retirement drains it -> scrub skips it afterwards.
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 256*dram.MiB, 0)
	s := d.Scrubber()
	var target dram.DSN
	for dsn, hsn := range d.revMap {
		if hsn != dsnFree {
			target = dram.DSN(dsn)
			break
		}
	}
	l := d.codec.DecodeDSN(target)
	id := dram.RankID{Channel: l.Channel, Rank: l.Rank}
	if err := s.InjectErrors(target, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0, int(d.Config().Geometry.TotalSegments())); err != nil {
		t.Fatal(err)
	}
	for _, bad := range s.RanksOverThreshold(100) {
		if err := d.RetireRank(bad, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.dev.State(id) != dram.MPSM {
		t.Fatal("bad rank not retired")
	}
	// Subsequent sweeps skip the retired rank entirely.
	before, skippedBefore, _ := s.Stats()
	_ = before
	if _, err := s.Run(2000, int(d.Config().Geometry.TotalSegments())); err != nil {
		t.Fatal(err)
	}
	_, skippedAfter, _ := s.Stats()
	if skippedAfter <= skippedBefore {
		t.Fatal("retired rank not skipped by patrol")
	}
}

func TestScrubDetectsMetadataCorruption(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	// Corrupt the mapping behind the API's back.
	var victim dram.DSN
	for dsn, hsn := range d.revMap {
		if hsn != dsnFree {
			victim = dram.DSN(dsn)
			break
		}
	}
	hsn := d.revMap[victim]
	d.segMap.set(hsn, victim+1) // now revMap and segMap disagree
	if _, err := d.Scrubber().Run(0, int(d.Config().Geometry.TotalSegments())); err == nil {
		t.Fatal("scrub missed metadata corruption")
	}
}

// TestScrubInjectOutOfRangeReturnsError is the regression test for the
// InjectErrors panic: out-of-range segments and non-positive counts must be
// rejected with an error, not a crash.
func TestScrubInjectOutOfRangeReturnsError(t *testing.T) {
	d := newTestDTL(t)
	s := d.Scrubber()
	if err := s.InjectErrors(dram.DSN(1<<40), 1); err == nil {
		t.Fatal("out-of-range inject should return an error")
	}
	if err := s.InjectErrors(dram.DSN(-1), 1); err == nil {
		t.Fatal("negative dsn inject should return an error")
	}
	if err := s.InjectErrors(0, 0); err == nil {
		t.Fatal("zero-count inject should return an error")
	}
	if err := s.InjectErrors(0, 1); err != nil {
		t.Fatalf("in-range inject failed: %v", err)
	}
}

// TestScrubReportsThroughFaultPath verifies the scrubber's error reporting
// now flows through the device fault hook into the health monitor rather
// than a private pending map.
func TestScrubReportsThroughFaultPath(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 256*dram.MiB, 0)
	s := d.Scrubber()
	var target dram.DSN
	for dsn, hsn := range d.revMap {
		if hsn != dsnFree {
			target = dram.DSN(dsn)
			break
		}
	}
	if err := s.InjectErrors(target, 5); err != nil {
		t.Fatal(err)
	}
	if d.dev.LatentErrors(target) != 5 {
		t.Fatalf("latent errors = %d, want 5", d.dev.LatentErrors(target))
	}
	if _, err := s.Run(0, int(d.Config().Geometry.TotalSegments())); err != nil {
		t.Fatal(err)
	}
	if d.dev.LatentErrors(target) != 0 {
		t.Fatal("scrub should have consumed latent errors")
	}
	l := d.codec.DecodeDSN(target)
	id := dram.RankID{Channel: l.Channel, Rank: l.Rank}
	if got := d.dev.CorrectableCount(id); got != 5 {
		t.Fatalf("device correctable count = %d, want 5", got)
	}
	if lvl := d.health.BucketLevel(id, 0); lvl != 5 {
		t.Fatalf("health bucket = %v, want 5 (fault hook not wired?)", lvl)
	}
}
