package core

import (
	"dtl/internal/dram"
)

// smcEntry is one HSN→DSN mapping held in a segment mapping cache.
type smcEntry struct {
	hsn   dram.HSN
	dsn   dram.DSN
	valid bool
	lru   uint64
}

// smc is the two-level segment mapping cache of §3.2: a small
// fully-associative L1 backed by a set-associative L2, both LRU.
type smc struct {
	l1     []smcEntry
	l2     []smcEntry // sets x ways, row-major
	l2Sets int
	l2Ways int
	stamp  uint64

	l1Hits, l1Misses int64
	l2Hits, l2Misses int64
}

func newSMC(l1Entries, l2Entries, l2Ways int) *smc {
	return &smc{
		l1:     make([]smcEntry, l1Entries),
		l2:     make([]smcEntry, l2Entries),
		l2Sets: l2Entries / l2Ways,
		l2Ways: l2Ways,
	}
}

// lookup returns the cached DSN for hsn and which level hit:
// 1 = L1 hit, 2 = L2 hit (promoted into L1), 0 = miss.
func (c *smc) lookup(hsn dram.HSN) (dram.DSN, int) {
	c.stamp++
	for i := range c.l1 {
		e := &c.l1[i]
		if e.valid && e.hsn == hsn {
			e.lru = c.stamp
			c.l1Hits++
			return e.dsn, 1
		}
	}
	c.l1Misses++
	set := int(int64(hsn) % int64(c.l2Sets))
	base := set * c.l2Ways
	for i := base; i < base+c.l2Ways; i++ {
		e := &c.l2[i]
		if e.valid && e.hsn == hsn {
			e.lru = c.stamp
			c.l2Hits++
			c.installL1(hsn, e.dsn)
			return e.dsn, 2
		}
	}
	c.l2Misses++
	return 0, 0
}

// install caches a mapping in both levels (miss-path fill).
func (c *smc) install(hsn dram.HSN, dsn dram.DSN) {
	c.stamp++
	c.installL1(hsn, dsn)
	c.installL2(hsn, dsn)
}

func (c *smc) installL1(hsn dram.HSN, dsn dram.DSN) {
	victim := 0
	for i := range c.l1 {
		if !c.l1[i].valid {
			victim = i
			break
		}
		if c.l1[i].lru < c.l1[victim].lru {
			victim = i
		}
	}
	c.l1[victim] = smcEntry{hsn: hsn, dsn: dsn, valid: true, lru: c.stamp}
}

func (c *smc) installL2(hsn dram.HSN, dsn dram.DSN) {
	set := int(int64(hsn) % int64(c.l2Sets))
	base := set * c.l2Ways
	victim := base
	for i := base; i < base+c.l2Ways; i++ {
		if !c.l2[i].valid {
			victim = i
			break
		}
		if c.l2[i].lru < c.l2[victim].lru {
			victim = i
		}
	}
	c.l2[victim] = smcEntry{hsn: hsn, dsn: dsn, valid: true, lru: c.stamp}
}

// invalidate drops any cached mapping for hsn (called after remapping, §3.4:
// "an invalidation of the corresponding entry in the segment mapping cache").
func (c *smc) invalidate(hsn dram.HSN) {
	for i := range c.l1 {
		if c.l1[i].valid && c.l1[i].hsn == hsn {
			c.l1[i].valid = false
		}
	}
	set := int(int64(hsn) % int64(c.l2Sets))
	base := set * c.l2Ways
	for i := base; i < base+c.l2Ways; i++ {
		if c.l2[i].valid && c.l2[i].hsn == hsn {
			c.l2[i].valid = false
		}
	}
}

// SMCStats reports hit/miss counters for both levels.
type SMCStats struct {
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
}

// L1MissRatio reports L1 misses / L1 lookups.
func (s SMCStats) L1MissRatio() float64 {
	n := s.L1Hits + s.L1Misses
	if n == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(n)
}

// L2MissRatio reports L2 misses / L2 lookups (i.e. conditional on L1 miss).
func (s SMCStats) L2MissRatio() float64 {
	n := s.L2Hits + s.L2Misses
	if n == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(n)
}

func (c *smc) stats() SMCStats {
	return SMCStats{L1Hits: c.l1Hits, L1Misses: c.l1Misses, L2Hits: c.l2Hits, L2Misses: c.l2Misses}
}
