package core

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// TestMultiHostPooledMemory models the paper's Figure 3 setting: VMs from
// multiple compute hosts share one CXL-attached pooled memory device, each
// host confined to its own HPA space.
func TestMultiHostPooledMemory(t *testing.T) {
	d := newTestDTL(t)
	now := sim.Time(0)
	// Four hosts each place a VM.
	var bases [][]dram.HPA
	for h := 0; h < 4; h++ {
		a := mustAlloc(t, d, VMID(100+h), HostID(h), 64*dram.MiB, now)
		bases = append(bases, a.AUBases)
		now += 1000
	}
	// Per-host accounting.
	perHost := d.HostAllocatedBytes()
	for h := 0; h < 4; h++ {
		if perHost[h] != 64*dram.MiB {
			t.Fatalf("host %d allocated = %d, want 64MiB", h, perHost[h])
		}
	}
	// Every host's addresses resolve; the HPA spaces are disjoint.
	seen := map[dram.HPA]int{}
	for h, hb := range bases {
		for _, b := range hb {
			if prev, dup := seen[b]; dup {
				t.Fatalf("hosts %d and %d share HPA %#x", prev, h, int64(b))
			}
			seen[b] = h
			if _, err := d.Access(b, false, now); err != nil {
				t.Fatalf("host %d access: %v", h, err)
			}
			now += 100
		}
	}
}

func TestCrossHostAddressesDoNotAlias(t *testing.T) {
	// The same (AU id, offset) on different hosts must translate to
	// different physical segments.
	d := newTestDTL(t)
	a0 := mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	a1 := mustAlloc(t, d, 2, 1, 16*dram.MiB, 1000)
	r0, err := d.Access(a0.AUBases[0], false, 2000)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d.Access(a1.AUBases[0], false, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if r0.DPA == r1.DPA {
		t.Fatalf("hosts alias the same physical address %#x", int64(r0.DPA))
	}
}

func TestUnmappedHostSpaceRejected(t *testing.T) {
	// Host 1 never allocated anything; a probe into its HPA space fails
	// even while host 0 has live memory.
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	foreign := dram.HPA(int64(d.hsnOf(1, 0, 0)) << d.codec.SegmentShift())
	if _, err := d.Access(foreign, false, 1000); err == nil {
		t.Fatal("access to another host's unmapped space succeeded")
	}
}

func TestHostAUExhaustionIsPerHost(t *testing.T) {
	// Host AU id pools are independent: exhausting host 0's ids does not
	// affect host 1. (Capacity itself is shared.)
	d := newTestDTL(t)
	perHostAUs := d.Config().TotalAUs()
	// Consume a few AUs on host 0 and the same number on host 1.
	mustAlloc(t, d, 1, 0, 3*d.Config().AUBytes, 0)
	mustAlloc(t, d, 2, 1, 3*d.Config().AUBytes, 1000)
	got := d.HostAllocatedBytes()
	if got[0] != got[1] || got[0] != 3*d.Config().AUBytes {
		t.Fatalf("per-host bytes = %v", got[:2])
	}
	_ = perHostAUs
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
