package core

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// maybePowerDown implements the rank-level power-down check of §3.3: run at
// every VM deallocation, it powers down as many virtual rank groups as the
// unallocated active capacity allows, draining the least-utilized rank of
// each channel into the remaining active ranks.
func (d *DTL) maybePowerDown(now sim.Time) {
	for d.tryPowerDownOne(now) {
	}
}

// PowerDownIdle runs the §3.3 power-down check outside an allocation event:
// as many virtual rank groups as the free-capacity reserve allows enter
// MPSM. A fresh device starts fully in Standby and normally settles at its
// first allocation or deallocation; rack composition calls this at build
// time so expanders that never receive a VM (the pack policy's cold pool)
// idle at their power floor instead of burning full standby power.
func (d *DTL) PowerDownIdle(now sim.Time) { d.maybePowerDown(now) }

// Park powers down every rank group of an idle expander, including the
// per-channel active floor and capacity reserve maybePowerDown preserves.
// Those guards exist so a live device can absorb allocations and drains
// without waking ranks on the critical path; an expander holding no VM at
// all needs neither, and a rack allocator that drained it wants the whole
// device at the MPSM floor. Parked groups land on the ordinary reactivation
// stack, so a later AllocateVM wakes them on demand (charged as
// demotion-wait, like any MPSM exit). Only valid on an idle device.
func (d *DTL) Park(now sim.Time) error {
	if n := len(d.vms); n != 0 {
		return fmt.Errorf("core: Park with %d live VMs", n)
	}
	for d.parkOne(now) {
	}
	return nil
}

// parkOne powers down one virtual rank group of an idle device, reporting
// whether it did. It is tryPowerDownOne minus the reserve and floor guards;
// with no live VMs there is nothing to drain, which the allocated counters
// re-check defensively.
func (d *DTL) parkOne(now sim.Time) bool {
	g := d.cfg.Geometry
	victims := make([]dram.RankID, g.Channels)
	for ch := 0; ch < g.Channels; ch++ {
		ranks := d.activeRanks(ch)
		if len(ranks) == 0 {
			return false
		}
		victims[ch] = dram.RankID{Channel: ch, Rank: ranks[0]}
	}
	for _, id := range victims {
		if d.allocated[d.codec.GlobalRank(id.Channel, id.Rank)] != 0 {
			panic("core: parkOne found live segments on an idle device")
		}
		if d.dev.State(id) == dram.SelfRefresh {
			d.hot.onSelfRefreshWake(id, now)
			d.st.selfRefreshExits.Inc()
		}
		d.dev.SetState(id, dram.MPSM, now)
		d.hot.onRankPoweredDown(id, now)
	}
	d.poweredDown = append(d.poweredDown, victims)
	d.st.powerDownEvents.Inc()
	return true
}

// tryPowerDownOne powers down one virtual rank group if capacity allows,
// reporting whether it did.
func (d *DTL) tryPowerDownOne(now sim.Time) bool {
	g := d.cfg.Geometry
	rankGroupSegs := int64(g.Channels) * g.SegmentsPerRank()
	if d.activeFreeSegments() < rankGroupSegs*int64(d.cfg.ReserveRankGroups) {
		return false
	}
	// Keep at least one active rank group per channel.
	if len(d.activeRanks(0)) <= 1 {
		return false
	}

	// Virtual rank group (§4.3): per channel, the active rank with the
	// least allocated space is the victim; indices may differ per channel.
	victims := make([]dram.RankID, g.Channels)
	for ch := 0; ch < g.Channels; ch++ {
		ranks := d.sortedRanksByUtilization(ch)
		if len(ranks) <= 1 {
			return false
		}
		victims[ch] = dram.RankID{Channel: ch, Rank: ranks[0]}
	}

	// Verify the remaining active ranks can absorb every live segment of
	// the victims (guaranteed by the capacity check, but kept as a
	// defensive re-check per channel).
	for ch := 0; ch < g.Channels; ch++ {
		victimGR := d.codec.GlobalRank(ch, victims[ch].Rank)
		if d.drainCapacityOn(ch, victims[ch].Rank) < d.allocated[victimGR] {
			return false
		}
	}

	// Drain each victim rank: copy live segments into the most-utilized
	// remaining ranks of the same channel (the allocator's priority rule),
	// preserving per-channel balance.
	for ch := 0; ch < g.Channels; ch++ {
		d.drainRank(victims[ch], now, "powerdown-drain")
	}

	// Power the virtual rank group down.
	for _, id := range victims {
		// A victim in self-refresh must be treated as reactivated first;
		// MPSM entry below accounts the transition either way.
		if d.dev.State(id) == dram.SelfRefresh {
			d.hot.onSelfRefreshWake(id, now)
			d.st.selfRefreshExits.Inc()
		}
		d.dev.SetState(id, dram.MPSM, now)
		d.hot.onRankPoweredDown(id, now)
	}
	d.poweredDown = append(d.poweredDown, victims)
	d.st.powerDownEvents.Inc()
	return true
}

// activeRanks lists non-MPSM rank indices of a channel.
func (d *DTL) activeRanks(ch int) []int {
	var out []int
	for rk := 0; rk < d.cfg.Geometry.RanksPerChannel; rk++ {
		if d.dev.State(dram.RankID{Channel: ch, Rank: rk}) != dram.MPSM {
			out = append(out, rk)
		}
	}
	return out
}

// drainRank copies every live segment off the victim rank into other active
// ranks of the same channel, updating the mapping tables and charging the
// migration engine.
func (d *DTL) drainRank(victim dram.RankID, now sim.Time, reason string) {
	ch := victim.Channel
	victimGR := d.codec.GlobalRank(ch, victim.Rank)

	// Collect live segments on the victim.
	var live []dram.DSN
	for idx := int64(0); idx < d.cfg.Geometry.SegmentsPerRank(); idx++ {
		dsn := d.codec.EncodeDSN(dram.Loc{Rank: victim.Rank, Channel: ch, Index: idx})
		if d.revMap[dsn] != dsnFree {
			live = append(live, dsn)
		}
	}

	for _, src := range live {
		dst := d.takeDrainTarget(ch, victim.Rank)
		d.moveSegment(src, dst, now, reason)
		d.st.segmentsMigrated.Inc()
	}

	// The victim's free queue stays intact (its segments remain physically
	// there, just unallocated); allocated count must now be zero.
	if d.allocated[victimGR] != 0 {
		panic("core: drainRank left live segments behind")
	}
}

// takeDrainTarget pops a free segment on channel ch from the most-utilized
// active rank other than exclude. Callers must have checked capacity
// (drainCapacityOn); running out mid-drain is a model bug and panics.
func (d *DTL) takeDrainTarget(ch, exclude int) dram.DSN {
	dsn, ok := d.takeDrainTargetOn(ch, exclude)
	if !ok {
		panic("core: no drain target available (capacity precondition violated)")
	}
	return dsn
}

// takeDrainTargetOn is takeDrainTarget without the capacity precondition:
// it reports false when no eligible rank (active, non-failed, with free
// space) exists on the channel. The migration verify-after-copy path uses it
// to re-route around a destination rank that faulted mid-copy.
func (d *DTL) takeDrainTargetOn(ch, exclude int) (dram.DSN, bool) {
	best := -1
	var bestAlloc int64 = -1
	for rk := 0; rk < d.cfg.Geometry.RanksPerChannel; rk++ {
		if rk == exclude {
			continue
		}
		if d.dev.State(dram.RankID{Channel: ch, Rank: rk}) == dram.MPSM {
			continue
		}
		gr := d.codec.GlobalRank(ch, rk)
		if d.free[gr].len() == 0 || d.dev.FailedGlobal(gr) {
			continue
		}
		if d.allocated[gr] > bestAlloc {
			best, bestAlloc = gr, d.allocated[gr]
		}
	}
	if best < 0 {
		return 0, false
	}
	dsn := d.free[best].popFront()
	d.allocated[best]++
	return dsn, true
}

// moveSegment relocates the live segment at src into the free slot dst:
// mapping tables are updated, the SMC entry invalidated, the source slot
// returned to its free queue, and the copy charged to the migration engine.
func (d *DTL) moveSegment(src, dst dram.DSN, now sim.Time, reason string) {
	hsn := d.revMap[src]
	if hsn == dsnFree {
		panic("core: moveSegment on free source")
	}
	if d.revMap[dst] != dsnFree {
		panic("core: moveSegment into live destination")
	}
	d.segMap.set(hsn, dst)
	d.revMap[dst] = hsn
	d.revMap[src] = dsnFree
	d.smc.invalidate(hsn)

	srcLoc := d.codec.DecodeDSN(src)
	srcGR := d.codec.GlobalRank(srcLoc.Channel, srcLoc.Rank)
	d.free[srcGR].push(src)
	d.allocated[srcGR]--

	d.hot.onSegmentMoved(src, dst)
	d.mig.enqueueCopy(src, dst, now, reason)
	d.st.bytesMigrated.Add(d.cfg.Geometry.SegmentBytes)
}

// PoweredDownGroups reports the number of rank groups currently in MPSM.
func (d *DTL) PoweredDownGroups() int { return len(d.poweredDown) }

// ActiveRanksPerChannel reports the number of non-MPSM ranks on channel 0
// (identical across channels by construction).
func (d *DTL) ActiveRanksPerChannel() int { return len(d.activeRanks(0)) }
