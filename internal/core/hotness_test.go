package core

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// hotTestDTL builds a DTL with fast (scaled-down) hotness thresholds and a
// workload layout suitable for self-refresh tests: two VMs filling two rank
// groups, leaving two standby rank groups as consolidation headroom is not
// powered down because of live data spread.
func hotTestDTL(t *testing.T) *DTL {
	t.Helper()
	cfg := testConfig()
	cfg.ProfilingWindow = 10 * sim.Microsecond
	cfg.ProfilingThreshold = 100 * sim.Microsecond
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// driveAccesses replays n accesses round-robin over the given bases spaced
// gap apart, returning the final time.
func driveAccesses(t *testing.T, d *DTL, bases []dram.HPA, n int, start, gap sim.Time) sim.Time {
	t.Helper()
	now := start
	for i := 0; i < n; i++ {
		base := bases[i%len(bases)]
		// Touch different lines within the first few segments.
		off := int64(i%8) * 2 * dram.MiB
		if _, err := d.Access(base+dram.HPA(off), i%4 == 0, now); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
		now += gap
	}
	return now
}

func TestHotnessDisabledByDefault(t *testing.T) {
	d := hotTestDTL(t)
	if d.Hotness().Enabled() {
		t.Fatal("hotness engine enabled by default")
	}
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	a, _ := d.VMAddresses(1)
	driveAccesses(t, d, a, 100, 0, 1000)
	if d.Stats().SelfRefreshEnters != 0 {
		t.Fatal("self-refresh entered with engine disabled")
	}
}

func TestHotnessPhaseProgression(t *testing.T) {
	d := hotTestDTL(t)
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0) // two rank groups
	d.Hotness().Enable(0)
	for ch := 0; ch < 4; ch++ {
		if got := d.Hotness().Phase(ch); got != PhaseWindow {
			t.Fatalf("channel %d phase = %v, want window", ch, got)
		}
	}
	a, _ := d.VMAddresses(1)
	// Drive enough accesses to close the window (10us) on every channel.
	driveAccesses(t, d, a, 400, 0, 100)
	sawProfiling := false
	for ch := 0; ch < 4; ch++ {
		if d.Hotness().Phase(ch) == PhaseProfiling {
			sawProfiling = true
			if d.Hotness().VictimRank(ch) < 0 {
				t.Fatalf("profiling channel %d without victim", ch)
			}
		}
	}
	if !sawProfiling {
		t.Fatal("no channel reached the profiling phase")
	}
	if d.Hotness().Stats().VictimSelections == 0 {
		t.Fatal("no victim selections recorded")
	}
}

// TestSelfRefreshEnterPolicy: raising SelfRefreshMinStandby to the channel's
// rank count leaves no room for a victim plus the required standby targets,
// so the same workload that enters self-refresh under the default policy
// never enters it under the conservative one.
func TestSelfRefreshEnterPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.ProfilingWindow = 10 * sim.Microsecond
	cfg.ProfilingThreshold = 100 * sim.Microsecond
	cfg.SelfRefreshMinStandby = cfg.Geometry.RanksPerChannel
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	hot := a[:4]
	now := driveAccesses(t, d, hot, 2000, 0, 500)
	d.Tick(now + 200*sim.Microsecond)
	if got := d.Stats().SelfRefreshEnters; got != 0 {
		t.Fatalf("SR enters = %d under a policy that forbids entry", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHotnessEntersSelfRefresh(t *testing.T) {
	d := hotTestDTL(t)
	// Two rank groups of data; traffic touches only the first AU of each
	// base (hot), leaving the second rank group cold.
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	hot := a[:4] // first AUs only
	now := driveAccesses(t, d, hot, 2000, 0, 500)
	// Let the idle timer mature, then tick.
	d.Tick(now + 200*sim.Microsecond)
	if d.Stats().SelfRefreshEnters == 0 {
		t.Fatal("no rank entered self-refresh")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// At least one rank should currently be in self-refresh.
	if len(d.Device().RanksIn(dram.SelfRefresh)) == 0 {
		t.Fatal("no rank currently in self-refresh")
	}
}

func TestSelfRefreshWakeOnAccess(t *testing.T) {
	d := hotTestDTL(t)
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	hot := a[:4]
	now := driveAccesses(t, d, hot, 2000, 0, 500)
	d.Tick(now + 200*sim.Microsecond)
	srRanks := d.Device().RanksIn(dram.SelfRefresh)
	if len(srRanks) == 0 {
		t.Skip("setup did not produce a self-refresh rank")
	}
	// Find a live segment on an SR rank and access it via its HPA.
	var target dram.HPA
	found := false
	for dsn, hsn := range d.revMap {
		if hsn == dsnFree {
			continue
		}
		l := d.codec.DecodeDSN(dram.DSN(dsn))
		for _, id := range srRanks {
			if l.Channel == id.Channel && l.Rank == id.Rank {
				target = dram.HPA(int64(hsn) << d.codec.SegmentShift())
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no live segment on the self-refresh rank")
	}
	wake := now + 300*sim.Microsecond
	res, err := d.Access(target, false, wake)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WokeSelfRefresh {
		t.Fatal("access to SR rank did not report a wake")
	}
	if d.Stats().SelfRefreshExits == 0 {
		t.Fatal("exit not counted")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationTableCaseB(t *testing.T) {
	// Accessing a segment physically in the victim rank must swap its plan
	// with a cold target entry (Fig. 8b).
	d := hotTestDTL(t)
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	// Close the windows.
	now := driveAccesses(t, d, a, 400, 0, 100)
	h := d.Hotness()
	ch := -1
	for c := 0; c < 4; c++ {
		if h.Phase(c) == PhaseProfiling {
			ch = c
			break
		}
	}
	if ch < 0 {
		t.Fatal("no profiling channel")
	}
	victim := h.VictimRank(ch)
	// Find a live, not-yet-planned segment physically in the victim rank.
	var hpa dram.HPA
	var dsn dram.DSN
	found := false
	for s, hsn := range d.revMap {
		if hsn == dsnFree {
			continue
		}
		l := d.codec.DecodeDSN(dram.DSN(s))
		if l.Channel == ch && l.Rank == victim && h.PlannedSlot(dram.DSN(s)) == dram.DSN(s) {
			hpa = dram.HPA(int64(hsn) << d.codec.SegmentShift())
			dsn = dram.DSN(s)
			found = true
			break
		}
	}
	if !found {
		t.Skip("victim rank holds no unplanned live segments")
	}
	if _, err := d.Access(hpa, false, now); err != nil {
		t.Fatal(err)
	}
	planned := h.PlannedSlot(dsn)
	if planned == dsn {
		t.Fatal("hot victim segment not planned out of the victim rank")
	}
	pl := d.codec.DecodeDSN(planned)
	if pl.Rank == victim {
		t.Fatalf("plan keeps segment in victim rank %d", victim)
	}
	if pl.Channel != ch {
		t.Fatalf("plan crosses channels: %d -> %d", ch, pl.Channel)
	}
	// Plan must be a clean transposition.
	if h.PlannedSlot(planned) != dsn {
		t.Fatal("plan is not a transposition")
	}
	if h.Stats().PlanSwaps == 0 {
		t.Fatal("no plan swaps recorded")
	}
}

func TestMigrationTableCaseC(t *testing.T) {
	// Accessing a segment that was planned INTO the victim (it looked
	// cold) must restore its entry and pick a different cold segment
	// (Fig. 8c).
	d := hotTestDTL(t)
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	now := driveAccesses(t, d, a, 400, 0, 100)
	h := d.Hotness()
	ch := -1
	for c := 0; c < 4; c++ {
		if h.Phase(c) == PhaseProfiling {
			ch = c
			break
		}
	}
	if ch < 0 {
		t.Fatal("no profiling channel")
	}
	victim := h.VictimRank(ch)

	// Force a case-b swap to set up a planned-into-victim segment.
	var victimSeg dram.DSN
	var victimHPA dram.HPA
	found := false
	for s, hsn := range d.revMap {
		if hsn == dsnFree {
			continue
		}
		l := d.codec.DecodeDSN(dram.DSN(s))
		if l.Channel == ch && l.Rank == victim && h.PlannedSlot(dram.DSN(s)) == dram.DSN(s) {
			victimSeg = dram.DSN(s)
			victimHPA = dram.HPA(int64(hsn) << d.codec.SegmentShift())
			found = true
			break
		}
	}
	if !found {
		t.Skip("no unplanned live segment in victim rank")
	}
	if _, err := d.Access(victimHPA, false, now); err != nil {
		t.Fatal(err)
	}
	partner := h.PlannedSlot(victimSeg)
	if partner == victimSeg {
		t.Skip("case-b swap did not happen (TSP timeout)")
	}
	// partner is now planned into the victim. Access it (if live) or
	// verify restore semantics via a direct engine poke for free slots.
	partnerHSN := d.revMap[partner]
	if partnerHSN == dsnFree {
		t.Skip("partner slot is free; case c requires a live partner")
	}
	restoresBefore := h.Stats().PlanRestores
	partnerHPA := dram.HPA(int64(partnerHSN) << d.codec.SegmentShift())
	if _, err := d.Access(partnerHPA, false, now+1000); err != nil {
		t.Fatal(err)
	}
	if h.Stats().PlanRestores <= restoresBefore {
		t.Fatal("case c did not restore the swapped entry")
	}
	if h.PlannedSlot(partner) == victimSeg {
		t.Fatal("partner still planned into the victim slot")
	}
}

func TestExecuteMigrationPreservesInvariants(t *testing.T) {
	d := hotTestDTL(t)
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	hot := a[:4]
	now := driveAccesses(t, d, hot, 3000, 0, 500)
	d.Tick(now + 200*sim.Microsecond)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Hotness().Stats().Migrations == 0 {
		t.Fatal("no migration phase executed")
	}
	// All accesses must still resolve after swaps.
	for _, base := range a {
		if _, err := d.Access(base, false, now+300*sim.Microsecond); err != nil {
			t.Fatalf("post-migration access: %v", err)
		}
	}
}

func TestPlanIsAlwaysTranspositionProduct(t *testing.T) {
	d := hotTestDTL(t)
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	driveAccesses(t, d, a[:4], 3000, 0, 300)
	h := (*hotness)(d.Hotness())
	for s, p := range h.planned {
		if h.planned[p] != dram.DSN(s) {
			t.Fatalf("planned[planned[%d]] = %d, want %d", s, h.planned[p], s)
		}
	}
}

func TestHotnessSurvivesDeallocation(t *testing.T) {
	d := hotTestDTL(t)
	mustAlloc(t, d, 1, 0, 256*dram.MiB, 0)
	mustAlloc(t, d, 2, 0, 256*dram.MiB, 0)
	d.Hotness().Enable(0)
	a1, _ := d.VMAddresses(1)
	now := driveAccesses(t, d, a1[:4], 2000, 0, 500)
	mustDealloc(t, d, 2, now+1000)
	// Plans touching freed/migrated segments must have been reset; the
	// involution property must hold and invariants too.
	h := (*hotness)(d.Hotness())
	for s, p := range h.planned {
		if h.planned[p] != dram.DSN(s) {
			t.Fatalf("broken transposition after dealloc at %d", s)
		}
	}
	driveAccesses(t, d, a1[:4], 500, now+2000, 500)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfRefreshReentry(t *testing.T) {
	// After a wake, the engine must be able to re-enter self-refresh.
	d := hotTestDTL(t)
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	hot := a[:4]
	now := driveAccesses(t, d, hot, 2000, 0, 500)
	d.Tick(now + 200*sim.Microsecond)
	first := d.Stats().SelfRefreshEnters
	if first == 0 {
		t.Skip("no initial self-refresh")
	}
	// Wake every SR rank by accessing something on it, then go idle again.
	now += 300 * sim.Microsecond
	for _, id := range d.Device().RanksIn(dram.SelfRefresh) {
		for s, hsn := range d.revMap {
			if hsn == dsnFree {
				continue
			}
			l := d.codec.DecodeDSN(dram.DSN(s))
			if l.Channel == id.Channel && l.Rank == id.Rank {
				hpa := dram.HPA(int64(hsn) << d.codec.SegmentShift())
				if _, err := d.Access(hpa, false, now); err != nil {
					t.Fatal(err)
				}
				now += 1000
				break
			}
		}
	}
	now = driveAccesses(t, d, hot, 2000, now, 500)
	d.Tick(now + 200*sim.Microsecond)
	if d.Stats().SelfRefreshEnters <= first {
		t.Fatal("no self-refresh re-entry after wake")
	}
}

func TestSelfRefreshUnderWorkloadDrift(t *testing.T) {
	// The paper argues access patterns stay stable for minutes to hours;
	// when they do drift, the engine must wake, re-plan and re-enter
	// rather than wedging. Drive a drifting workload and require both
	// exits (wakes) and repeated entries.
	cfg := testConfig()
	cfg.ProfilingWindow = 10 * sim.Microsecond
	cfg.ProfilingThreshold = 50 * sim.Microsecond
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)

	a, _ := d.VMAddresses(1)
	// AUs 0-3 start hot; the drift rotates in AUs from the upper half of
	// the footprint, which the first migration phase consolidates onto the
	// self-refresh victims — so each drift forces wakes and re-planning.
	hotAUs := []int{0, 1, 2, 3}
	driftTargets := []int{16, 20, 24}
	now := sim.Time(0)
	for phase := 0; phase < 4; phase++ {
		for i := 0; i < 30_000; i++ {
			au := hotAUs[i%len(hotAUs)]
			off := int64(i%8) * 2 * dram.MiB
			if _, err := d.Access(a[au]+dram.HPA(off), i%4 == 0, now); err != nil {
				t.Fatal(err)
			}
			now += 100
		}
		d.Tick(now)
		if phase < len(driftTargets) {
			hotAUs[phase%len(hotAUs)] = driftTargets[phase]
		}
	}
	st := d.Stats()
	if st.SelfRefreshEnters < 2 {
		t.Fatalf("SR enters = %d, want repeated re-entry under drift", st.SelfRefreshEnters)
	}
	if st.SelfRefreshExits == 0 {
		t.Fatal("drift produced no wakes")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
