package core

import (
	"errors"
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// wakeAllRanks puts every rank in standby and forgets the power-down
// grouping, so tests can place migrations on any rank without tripping the
// MPSM-holds-no-data invariant. (Hotness is disabled by default, so no
// profiling state goes stale.)
func wakeAllRanks(t *testing.T, d *DTL, now sim.Time) {
	t.Helper()
	d.poweredDown = nil
	g := d.cfg.Geometry
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			id := dram.RankID{Channel: ch, Rank: rk}
			if d.dev.State(id) != dram.Standby {
				d.dev.SetState(id, dram.Standby, now)
			}
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// liveDSNOn finds a mapped segment on the given channel and returns it with
// its rank.
func liveDSNOn(t *testing.T, d *DTL, ch int) (dram.DSN, dram.RankID) {
	t.Helper()
	for dsn, hsn := range d.revMap {
		if hsn == dsnFree {
			continue
		}
		loc := d.codec.DecodeDSN(dram.DSN(dsn))
		if loc.Channel == ch {
			return dram.DSN(dsn), dram.RankID{Channel: loc.Channel, Rank: loc.Rank}
		}
	}
	t.Fatalf("no live segment on channel %d", ch)
	return 0, dram.RankID{}
}

func TestRetireLastRankOfChannel(t *testing.T) {
	d := newTestDTL(t)
	for rk := 1; rk < 4; rk++ {
		if err := d.RetireRank(dram.RankID{Channel: 1, Rank: rk}, 0); err != nil {
			t.Fatal(err)
		}
	}
	err := d.RetireRank(dram.RankID{Channel: 1, Rank: 0}, 1000)
	if !errors.Is(err, ErrLastRank) {
		t.Fatalf("err = %v, want ErrLastRank", err)
	}
	// Other channels are unaffected: their ranks still retire.
	if err := d.RetireRank(dram.RankID{Channel: 0, Rank: 3}, 2000); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetireWhileMigrationInFlightToVictim(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	wakeAllRanks(t, d, 0)

	// Start a copy onto a victim rank, then retire the victim mid-window:
	// the retirement drain must move the eagerly-remapped segment again and
	// the stale in-flight window must complete harmlessly.
	src, srcRank := liveDSNOn(t, d, 0)
	dst, ok := d.takeDrainTargetOn(0, srcRank.Rank)
	if !ok {
		t.Fatal("no drain target on channel 0")
	}
	start := sim.Time(1000)
	d.moveSegment(src, dst, start, "test")
	if d.Migrator().Outstanding() == 0 {
		t.Fatal("setup: no in-flight migration")
	}
	dstLoc := d.codec.DecodeDSN(dst)
	victim := dram.RankID{Channel: dstLoc.Channel, Rank: dstLoc.Rank}

	mid := start + 10*sim.Microsecond
	if err := d.RetireRank(victim, mid); err != nil {
		t.Fatalf("retire mid-migration: %v", err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Drain the machinery well past every window; the mapping must stay
	// sound and the VM fully readable.
	d.Tick(start + sim.Second)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	addrs, _ := d.VMAddresses(1)
	for i, base := range addrs {
		if _, err := d.Access(base, false, start+2*sim.Second+sim.Time(i*1000)); err != nil {
			t.Fatalf("access after retire-under-migration: %v", err)
		}
	}
}

func TestMigrationVerifyFailureReroutes(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	wakeAllRanks(t, d, 0)

	src, srcRank := liveDSNOn(t, d, 0)
	dst, ok := d.takeDrainTargetOn(0, srcRank.Rank)
	if !ok {
		t.Fatal("no drain target on channel 0")
	}
	start := sim.Time(1000)
	d.moveSegment(src, dst, start, "test")
	dstLoc := d.codec.DecodeDSN(dst)

	// The destination rank dies while the copy is in flight: verify-after-
	// copy must catch it and re-route the segment to a healthy rank.
	d.Device().FailRank(dram.RankID{Channel: dstLoc.Channel, Rank: dstLoc.Rank}, start+10)
	d.mig.completeUpTo(start + sim.Second)
	st := d.Migrator().Stats()
	if st.VerifyFailures != 1 || st.Reroutes != 1 || st.VerifyGiveups != 0 {
		t.Fatalf("stats = %+v, want 1 verify failure re-routed", st)
	}
	// The re-routed copy's destination is healthy.
	newDSN, _ := d.segMap.get(d.revMap[dst])
	if newDSN == dst {
		t.Fatal("segment still mapped to the failed rank")
	}
	nl := d.codec.DecodeDSN(newDSN)
	if d.Device().Failed(dram.RankID{Channel: nl.Channel, Rank: nl.Rank}) {
		t.Fatal("re-route chose a failed rank")
	}
	d.Tick(start + 2*sim.Second)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	addrs, _ := d.VMAddresses(1)
	for i, base := range addrs {
		if _, err := d.Access(base, false, start+3*sim.Second+sim.Time(i*1000)); err != nil {
			t.Fatalf("access after re-route: %v", err)
		}
	}
}

func TestMigrationVerifyGivesUpAtRetryLimit(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	wakeAllRanks(t, d, 0)

	src, srcRank := liveDSNOn(t, d, 0)
	dst, ok := d.takeDrainTargetOn(0, srcRank.Rank)
	if !ok {
		t.Fatal("no drain target on channel 0")
	}
	start := sim.Time(1000)
	d.moveSegment(src, dst, start, "test")
	// Pretend this segment already exhausted its verify retries.
	w := d.mig.windows[0][len(d.mig.windows[0])-1]
	w.vretries = d.cfg.MigrationRetryLimit

	dstLoc := d.codec.DecodeDSN(dst)
	d.Device().FailRank(dram.RankID{Channel: dstLoc.Channel, Rank: dstLoc.Rank}, start+10)
	d.mig.completeUpTo(start + sim.Second)
	st := d.Migrator().Stats()
	if st.VerifyFailures != 1 || st.VerifyGiveups != 1 || st.Reroutes != 0 {
		t.Fatalf("stats = %+v, want 1 verify give-up", st)
	}
	// The data stays where it is — readable in degraded mode.
	if got, _ := d.segMap.get(d.revMap[dst]); got != dst {
		t.Fatal("give-up still moved the segment")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityExhaustionThenPostRetireScrub(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, d.Config().Geometry.TotalBytes(), 0)
	victim := dram.RankID{Channel: 0, Rank: 0}
	if err := d.RetireRank(victim, 1000); !errors.Is(err, ErrRetireCapacity) {
		t.Fatalf("err = %v, want ErrRetireCapacity", err)
	}
	// Free capacity, retire for real, and seed latent errors on the now-
	// retired rank: a full patrol sweep must skip it (no data to scrub) and
	// never charge errors against it.
	mustDealloc(t, d, 1, 2000)
	mustAlloc(t, d, 2, 0, 64*dram.MiB, 3000)
	if err := d.RetireRank(victim, 4000); err != nil {
		t.Fatal(err)
	}
	retiredDSN := dsnOn(d, victim, 5)
	if err := d.Scrubber().InjectErrors(retiredDSN, 9); err != nil {
		t.Fatal(err)
	}
	total := int(d.Config().Geometry.TotalSegments())
	done, err := d.Scrubber().Run(5000, total)
	if err != nil {
		t.Fatal(err)
	}
	if done >= total {
		t.Fatalf("sweep scrubbed %d of %d segments; retired/powered-down ranks must be skipped", done, total)
	}
	if got := d.Device().CorrectableCount(victim); got != 0 {
		t.Fatalf("scrub charged %d errors to a retired rank", got)
	}
	if d.Device().LatentErrors(retiredDSN) != 9 {
		t.Fatal("latent errors on a retired rank should stay undiscovered")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
