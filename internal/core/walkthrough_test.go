package core

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// TestFigure7Walkthrough replays the paper's Figure 7 example step by step:
//
//	① after VM1's deallocation the unallocated capacity is large enough to
//	   make a power-down rank group;
//	② DTL selects the rank group with low capacity utilization as victim;
//	③ the segments of VM2 allocated to the victim group are migrated out
//	   for idle-rank expansion;
//	④ the victim rank group enters maximum power saving mode;
//	⑤ VM3 later asks for memory that exceeds the active free space, so
//	⑥ the powered-down rank group exits MPSM and is reactivated.
func TestFigure7Walkthrough(t *testing.T) {
	d := newTestDTL(t)
	g := d.Config().Geometry
	now := sim.Time(0)

	// Setup (the figure's state before ①): surviving VM2 data sits in BOTH
	// rank groups, with the soon-to-depart VM1 filling the space between.
	// We build that with VM2 split into two small instances (2a/2b) around
	// the large VM1.
	mustAlloc(t, d, 20, 0, 16*dram.MiB, now) // VM2a: bottom of RG0
	now += 1000
	mustAlloc(t, d, 1, 0, 480*dram.MiB, now) // VM1: rest of RG0 + most of RG1
	now += 1000
	mustAlloc(t, d, 21, 0, 16*dram.MiB, now) // VM2b: tail of RG1
	now += 1000
	activeBefore := d.ActiveRanksPerChannel()
	if activeBefore < 2 {
		t.Fatalf("setup: need at least 2 active ranks, have %d", activeBefore)
	}

	// ① Deallocate VM1: a rank group's worth of capacity frees up.
	migratedBefore := d.Stats().SegmentsMigrated
	pdBefore := d.Stats().PowerDownEvents
	mustDealloc(t, d, 1, now)

	// ②③ The victim group was drained: VM2's segments moved.
	if d.Stats().SegmentsMigrated <= migratedBefore {
		t.Fatal("③ no segments migrated for idle-rank expansion")
	}
	// ④ The victim rank group is in MPSM.
	if d.Stats().PowerDownEvents <= pdBefore {
		t.Fatal("④ no rank group entered maximum power saving mode")
	}
	if d.ActiveRanksPerChannel() >= activeBefore {
		t.Fatalf("④ active ranks did not shrink: %d -> %d", activeBefore, d.ActiveRanksPerChannel())
	}
	if len(d.Device().RanksIn(dram.MPSM)) == 0 {
		t.Fatal("④ no rank in MPSM")
	}
	// VM2 remains fully reachable after its migration.
	addrs, err := d.VMAddresses(20)
	if err != nil {
		t.Fatal(err)
	}
	more, err := d.VMAddresses(21)
	if err != nil {
		t.Fatal(err)
	}
	addrs = append(addrs, more...)
	now += 1000
	for _, base := range addrs {
		if _, err := d.Access(base, false, now); err != nil {
			t.Fatalf("VM2 unreachable after consolidation: %v", err)
		}
		now += 100
	}

	// ⑤⑥ VM3 asks for more than the active free space: reactivation.
	reactBefore := d.Stats().ReactivateEvents
	alloc3, err := d.AllocateVM(3, 0, g.TotalBytes()/2, now)
	if err != nil {
		t.Fatalf("⑤ VM3 allocation failed: %v", err)
	}
	if alloc3.Reactivated == 0 || d.Stats().ReactivateEvents <= reactBefore {
		t.Fatal("⑥ powered-down rank group was not reactivated for VM3")
	}
	// The MPSM exit is followed by allocation to the reactivated ranks,
	// not foreground traffic, so existing VMs saw no exit penalty: verify
	// VM2's next access is serviced by a standby rank with no wake.
	now += 1000
	res, err := d.Access(addrs[0], false, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.WokeSelfRefresh {
		t.Fatal("existing VM paid a power-state exit penalty")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndSixHourMiniSchedule runs a miniature version of the paper's
// §5.1 methodology end to end through the core API: a stream of VM
// placements and departures with invariant checks and a final energy
// accounting sanity check (technique consumes strictly less background
// energy than all-standby).
func TestEndToEndSixHourMiniSchedule(t *testing.T) {
	d := newTestDTL(t)
	g := d.Config().Geometry

	type ev struct {
		at     sim.Time
		vm     VMID
		bytes  int64
		depart bool
	}
	interval := sim.Time(5 * sim.Minute)
	var events []ev
	// A deterministic arrival/departure braid.
	for i := 0; i < 24; i++ {
		vm := VMID(i + 1)
		at := interval * sim.Time(i%12)
		size := int64((i%4 + 1)) * 32 * dram.MiB
		events = append(events, ev{at: at, vm: vm, bytes: size})
		events = append(events, ev{at: at + interval*sim.Time(i%3+1), vm: vm, depart: true})
	}
	// Sort by time, departures of a moment after its arrivals is fine
	// because arrivals precede their own departures by construction.
	for i := 0; i < len(events); i++ {
		for j := i + 1; j < len(events); j++ {
			if events[j].at < events[i].at {
				events[i], events[j] = events[j], events[i]
			}
		}
	}

	horizon := interval * 16
	live := map[VMID]bool{}
	for _, e := range events {
		if e.depart {
			if !live[e.vm] {
				continue
			}
			if err := d.DeallocateVM(e.vm, e.at); err != nil {
				t.Fatalf("dealloc vm%d: %v", e.vm, err)
			}
			delete(live, e.vm)
		} else {
			if _, err := d.AllocateVM(e.vm, HostID(int(e.vm)%4), e.bytes, e.at); err != nil {
				t.Fatalf("alloc vm%d: %v", e.vm, err)
			}
			live[e.vm] = true
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("at %v: %v", e.at, err)
		}
	}

	dev := d.Device()
	dev.AccountUpTo(horizon)
	st, sr, mp := dev.BackgroundEnergy()
	tech := st + sr + mp
	baseline := float64(g.TotalRanks()) * float64(horizon)
	if tech >= baseline {
		t.Fatalf("technique energy %.3g not below all-standby baseline %.3g", tech, baseline)
	}
	saving := 1 - tech/baseline
	if saving < 0.2 {
		t.Fatalf("mini-schedule saving %.2f suspiciously low", saving)
	}
	t.Logf("mini-schedule background energy saving: %.1f%%", 100*saving)
}
