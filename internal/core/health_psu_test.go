package core

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/fault"
	"dtl/internal/sim"
)

// A correlated whole-channel failure (the fault grammar's "psu" kind) must
// drive the health monitor to retire every victim it structurally can: all
// ranks of the channel except the last survivor, which ErrLastRank pins in
// degraded service because its data would have nowhere to go.
func TestPSUChannelFailureRetiresAllVictims(t *testing.T) {
	d := newTestDTL(t)
	g := d.cfg.Geometry

	eng := sim.NewEngine()
	inj, err := fault.NewInjector(fault.MustParse("seed=7;psu:ch=1@10ms"), d.Device(), eng)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start(sim.Second)
	eng.Run()

	// The fault hook only classifies and enqueues; nothing retires until the
	// next tick.
	if got := healthCounter(t, d, "fault_events"); got != float64(g.RanksPerChannel) {
		t.Fatalf("fault_events = %v, want %d (one rank-failure per victim)", got, g.RanksPerChannel)
	}
	if pend := d.Health().PendingRetires(); pend != g.RanksPerChannel {
		t.Fatalf("pending = %d, want %d", pend, g.RanksPerChannel)
	}
	if len(d.RetiredRanks()) != 0 {
		t.Fatal("hook retired ranks synchronously")
	}

	d.Tick(20 * sim.Millisecond)

	retired := d.RetiredRanks()
	if len(retired) != g.RanksPerChannel-1 {
		t.Fatalf("retired = %v, want %d victims on channel 1", retired, g.RanksPerChannel-1)
	}
	for _, id := range retired {
		if id.Channel != 1 {
			t.Fatalf("retired %v is not on the failed channel", id)
		}
	}
	if got := healthCounter(t, d, "auto_retires"); got != float64(g.RanksPerChannel-1) {
		t.Fatalf("auto_retires = %v, want %d", got, g.RanksPerChannel-1)
	}
	// The last rank of the channel is abandoned, not retired: ErrLastRank.
	if got := healthCounter(t, d, "retires_abandoned"); got != 1 {
		t.Fatalf("retires_abandoned = %v, want 1", got)
	}
	if d.Health().PendingRetires() != 0 {
		t.Fatalf("pending = %d after processing, want 0", d.Health().PendingRetires())
	}
	// Capacity bookkeeping reflects the loss.
	if want := g.TotalBytes() - int64(g.RanksPerChannel-1)*g.RankBytes; d.UsableBytes() != want {
		t.Fatalf("UsableBytes = %d, want %d", d.UsableBytes(), want)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The same event with live data elsewhere: VMs on healthy channels are
// untouched by a correlated failure on another channel.
func TestPSUChannelFailureSparesOtherChannels(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 32*dram.MiB, 0)

	eng := sim.NewEngine()
	inj, err := fault.NewInjector(fault.MustParse("psu:ch3:at=10ms"), d.Device(), eng)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start(sim.Second)
	eng.Run()
	d.Tick(20 * sim.Millisecond)

	for _, id := range d.RetiredRanks() {
		if id.Channel != 3 {
			t.Fatalf("retired %v off the failed channel", id)
		}
	}
	g := d.cfg.Geometry
	for ch := 0; ch < g.Channels-1; ch++ {
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			if d.Device().Failed(dram.RankID{Channel: ch, Rank: rk}) {
				t.Fatalf("psu:ch3 failed ch%d/rk%d outside channel 3", ch, rk)
			}
		}
	}
	// The VM's memory still serves accesses.
	addrs, _ := d.VMAddresses(1)
	for i, base := range addrs {
		if _, err := d.Access(base, false, 30*sim.Millisecond+sim.Time(i)*sim.Microsecond); err != nil {
			t.Fatalf("access after psu on another channel: %v", err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
