package core

import (
	"dtl/internal/dram"
)

// segUnmapped marks an HSN with no DSN mapping in the dense segment table.
const segUnmapped dram.DSN = -1

// segTablePageBits sizes the dense table's pages: 2^12 = 4096 entries
// (32 KiB of DSNs) per page.
const segTablePageBits = 12

// segTable is the DRAM-resident segment mapping table (HSN → DSN, Fig. 4)
// as a dense paged array rather than a Go map. The paper's table is itself
// a dense DRAM-resident array — Table 5 sizes it at full-device capacity,
// not at live-segment count — so the dense layout is the faithful model as
// well as the fast one: the access path replaces a hash+bucket probe with
// two indexed loads, and allocation/deallocation replace map inserts and
// deletes (each a potential allocation) with plain stores.
//
// The HSN space is MaxHosts × TotalAUs × SegmentsPerAU entries; pages are
// allocated lazily on first touch so a device with few live hosts pays only
// for the address-space slices it actually uses. A page is 4096 entries,
// mirroring revMap's per-segment density.
type segTable struct {
	pages [][]dram.DSN
	live  int // mapped entries, kept so len() stays O(1)
}

// newSegTable builds a table covering HSNs in [0, maxHSN).
func newSegTable(maxHSN int64) *segTable {
	nPages := (maxHSN + (1 << segTablePageBits) - 1) >> segTablePageBits
	return &segTable{pages: make([][]dram.DSN, nPages)}
}

// get returns the mapping for hsn, with ok=false when unmapped.
func (t *segTable) get(hsn dram.HSN) (dram.DSN, bool) {
	pi := uint64(hsn) >> segTablePageBits
	if pi >= uint64(len(t.pages)) {
		return 0, false
	}
	p := t.pages[pi]
	if p == nil {
		return 0, false
	}
	v := p[uint64(hsn)&(1<<segTablePageBits-1)]
	if v == segUnmapped {
		return 0, false
	}
	return v, true
}

// set stores hsn → dsn, materializing the page on first touch.
func (t *segTable) set(hsn dram.HSN, dsn dram.DSN) {
	pi := uint64(hsn) >> segTablePageBits
	p := t.pages[pi]
	if p == nil {
		p = make([]dram.DSN, 1<<segTablePageBits)
		for i := range p {
			p[i] = segUnmapped
		}
		t.pages[pi] = p
	}
	slot := &p[uint64(hsn)&(1<<segTablePageBits-1)]
	if *slot == segUnmapped {
		t.live++
	}
	*slot = dsn
}

// del removes the mapping for hsn; missing entries are a no-op.
func (t *segTable) del(hsn dram.HSN) {
	pi := uint64(hsn) >> segTablePageBits
	if pi >= uint64(len(t.pages)) || t.pages[pi] == nil {
		return
	}
	slot := &t.pages[pi][uint64(hsn)&(1<<segTablePageBits-1)]
	if *slot != segUnmapped {
		t.live--
		*slot = segUnmapped
	}
}

// len reports the number of live mappings.
func (t *segTable) len() int { return t.live }

// forEach visits every live mapping in ascending HSN order (the table is
// dense, so iteration order is deterministic for free — snapshots need no
// sort pass).
func (t *segTable) forEach(fn func(hsn dram.HSN, dsn dram.DSN)) {
	for pi, p := range t.pages {
		if p == nil {
			continue
		}
		base := dram.HSN(pi << segTablePageBits)
		for i, v := range p {
			if v != segUnmapped {
				fn(base+dram.HSN(i), v)
			}
		}
	}
}

// fifo is a first-in-first-out queue with an explicit head index: popping
// advances head (O(1), no reslicing away capacity) and pushing appends,
// compacting the dead prefix only when the backing array is full. The
// allocate/deallocate cycle therefore reuses one backing array at steady
// state instead of re-growing a front-sliced slice on every free. It backs
// the per-rank free segment queues and the per-host free AU queues of §4.2.
//
// Order is observable — the allocator hands out entries front-first and
// returns them at the back — so every operation preserves exactly the
// ordering the previous plain-slice implementation had.
type fifo[T comparable] struct {
	buf  []T
	head int
}

// newFIFO pre-sizes a queue for capacity entries.
func newFIFO[T comparable](capacity int64) fifo[T] {
	return fifo[T]{buf: make([]T, 0, capacity)}
}

// len reports queued entries.
func (q *fifo[T]) len() int { return len(q.buf) - q.head }

// items returns the live window (front to back). Callers must not retain it
// across queue mutations.
func (q *fifo[T]) items() []T { return q.buf[q.head:] }

// push appends v at the back, reclaiming the dead prefix if the backing
// array is out of room.
func (q *fifo[T]) push(v T) {
	if len(q.buf) == cap(q.buf) && q.head > 0 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, v)
}

// pushAll appends vs in order.
func (q *fifo[T]) pushAll(vs []T) {
	for _, v := range vs {
		q.push(v)
	}
}

// popFront removes and returns the front entry.
func (q *fifo[T]) popFront() T {
	v := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}

// popFrontN appends the first n entries to dst and removes them.
func (q *fifo[T]) popFrontN(dst []T, n int) []T {
	dst = append(dst, q.buf[q.head:q.head+n]...)
	q.head += n
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return dst
}

// remove deletes the first occurrence of v, preserving order, and reports
// whether it was present.
func (q *fifo[T]) remove(v T) bool {
	for i := q.head; i < len(q.buf); i++ {
		if q.buf[i] == v {
			copy(q.buf[i:], q.buf[i+1:])
			q.buf = q.buf[:len(q.buf)-1]
			return true
		}
	}
	return false
}

// reset empties the queue, keeping the backing array.
func (q *fifo[T]) reset() {
	q.buf = q.buf[:0]
	q.head = 0
}
