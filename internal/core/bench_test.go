package core

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

func benchDTL(b *testing.B) *DTL {
	b.Helper()
	d, err := New(testConfig())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkSMCHit measures the translation fast path: an access whose HSN is
// resident in the L1 segment mapping cache. This is the per-access cost the
// paper's Figure 10 latency overhead rides on, so it must stay allocation
// free.
func BenchmarkSMCHit(b *testing.B) {
	d := benchDTL(b)
	a, err := d.AllocateVM(1, 0, 16*dram.MiB, 0)
	if err != nil {
		b.Fatal(err)
	}
	base := a.AUBases[0]
	now := sim.Time(0)
	if _, err := d.Access(base, false, now); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 10
		if _, err := d.Access(base, false, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMCMissWalk measures the full miss path: both SMC levels miss and
// the access walks the DRAM-resident segment mapping table (two SRAM hops
// plus the dense-table load), then refills both cache levels.
func BenchmarkSMCMissWalk(b *testing.B) {
	d := benchDTL(b)
	a, err := d.AllocateVM(1, 0, 16*dram.MiB, 0)
	if err != nil {
		b.Fatal(err)
	}
	base := a.AUBases[0]
	hsn := d.codec.HostSegmentOf(base)
	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.smc.invalidate(hsn)
		now += 10
		if _, err := d.Access(base, false, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwapMigration measures one hotness-engine transposition between
// two live segments: mapping-table updates, SMC invalidations, and the
// migration window enqueue/complete cycle (which must recycle its windows
// through the migrator's pool rather than allocate).
func BenchmarkSwapMigration(b *testing.B) {
	d := benchDTL(b)
	if _, err := d.AllocateVM(1, 0, 64*dram.MiB, 0); err != nil {
		b.Fatal(err)
	}
	// Two live segments on channel 0.
	var s1, s2 dram.DSN
	found := 0
	for dsn, hsn := range d.revMap {
		if hsn == dsnFree {
			continue
		}
		if l := d.codec.DecodeDSN(dram.DSN(dsn)); l.Channel != 0 {
			continue
		}
		if found == 0 {
			s1 = dram.DSN(dsn)
		} else {
			s2 = dram.DSN(dsn)
			break
		}
		found++
	}
	if s1 == s2 {
		b.Fatal("could not find two live segments on channel 0")
	}
	now := sim.Time(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.hot.applySwap(s1, s2, now)
		now = d.mig.busyUntil[0] + 1
		d.mig.completeUpTo(now)
	}
}
