package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// Metadata persistence is the availability extension the paper's conclusion
// motivates: the DTL's mapping state (segment mapping table, allocation
// state, rank power states) is small — Table 5 puts it in megabytes even
// for a 4 TB device — so the controller can checkpoint it to its own
// reserved DRAM/flash region and survive a firmware restart without losing
// the host's address space.
//
// The format is a flat little-endian stream guarded by a CRC32 trailer:
//
//	magic, version, geometry, AU size, max hosts,
//	rank records (state, retired),
//	powered-down groups,
//	segment mappings (hsn, dsn)*,
//	VM records (id, host, AU ids)*,
//	per-host free AU queues.
//
// Volatile state (SMC contents, migration-table plans, in-flight copy
// windows, statistics) is deliberately not persisted: caches refill, plans
// rebuild, and in-flight copies are idempotent to redo.

const (
	snapshotMagic   = 0x44544c31 // "DTL1"
	snapshotVersion = 1
)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func put(w io.Writer, vs ...int64) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func get(r io.Reader, vs ...*int64) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// SaveMetadata serializes the DTL's durable state to w.
func (d *DTL) SaveMetadata(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	g := d.cfg.Geometry

	if err := put(cw,
		snapshotMagic, snapshotVersion,
		int64(g.Channels), int64(g.RanksPerChannel), int64(g.BanksPerRank),
		g.SegmentBytes, g.RankBytes,
		d.cfg.AUBytes, int64(d.cfg.MaxHosts),
	); err != nil {
		return err
	}

	// Rank records.
	for gr := 0; gr < g.TotalRanks(); gr++ {
		ch, rk := d.codec.SplitGlobalRank(gr)
		state := int64(d.dev.State(dram.RankID{Channel: ch, Rank: rk}))
		retired := int64(0)
		if d.retired[gr] {
			retired = 1
		}
		if err := put(cw, state, retired); err != nil {
			return err
		}
	}

	// Powered-down virtual groups.
	if err := put(cw, int64(len(d.poweredDown))); err != nil {
		return err
	}
	for _, group := range d.poweredDown {
		if err := put(cw, int64(len(group))); err != nil {
			return err
		}
		for _, id := range group {
			if err := put(cw, int64(id.Channel), int64(id.Rank)); err != nil {
				return err
			}
		}
	}

	// Segment mapping table. The dense table iterates in ascending HSN
	// order, so the stream is deterministic without a sort pass.
	if err := put(cw, int64(d.segMap.len())); err != nil {
		return err
	}
	var mapErr error
	d.segMap.forEach(func(hsn dram.HSN, dsn dram.DSN) {
		if mapErr == nil {
			mapErr = put(cw, int64(hsn), int64(dsn))
		}
	})
	if mapErr != nil {
		return mapErr
	}

	// VM records, sorted by id.
	ids := make([]VMID, 0, len(d.vms))
	for id := range d.vms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if err := put(cw, int64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		st := d.vms[id]
		if err := put(cw, int64(id), int64(st.host), int64(len(st.aus))); err != nil {
			return err
		}
		if err := put(cw, st.aus...); err != nil {
			return err
		}
	}

	// Free AU queues per host.
	for h := 0; h < d.cfg.MaxHosts; h++ {
		if err := put(cw, int64(d.auFree[h].len())); err != nil {
			return err
		}
		if err := put(cw, d.auFree[h].items()...); err != nil {
			return err
		}
	}

	// CRC trailer (over everything before it).
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadMetadata reconstructs a DTL from a snapshot. The caller supplies the
// same configuration the device was built with (thresholds and cache sizes
// are configuration, not durable state); geometry and allocation-unit
// parameters are cross-checked against the snapshot.
func LoadMetadata(r io.Reader, cfg Config) (*DTL, error) {
	cr := &crcReader{r: bufio.NewReader(r)}

	var magic, version int64
	var chans, ranks, banks, segBytes, rankBytes, auBytes, maxHosts int64
	if err := get(cr, &magic, &version, &chans, &ranks, &banks, &segBytes, &rankBytes, &auBytes, &maxHosts); err != nil {
		return nil, fmt.Errorf("core: snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %#x", magic)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", version)
	}

	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	g := d.cfg.Geometry
	if int(chans) != g.Channels || int(ranks) != g.RanksPerChannel ||
		segBytes != g.SegmentBytes || rankBytes != g.RankBytes {
		return nil, fmt.Errorf("core: snapshot geometry %dx%d/%d/%d does not match config %v",
			chans, ranks, segBytes, rankBytes, g)
	}
	if auBytes != d.cfg.AUBytes || int(maxHosts) != d.cfg.MaxHosts {
		return nil, fmt.Errorf("core: snapshot AU/hosts (%d/%d) do not match config (%d/%d)",
			auBytes, maxHosts, d.cfg.AUBytes, d.cfg.MaxHosts)
	}

	// Rank records: restore power states and retirement. State transitions
	// happen at time zero with no penalty accounting (the device restarts).
	for gr := 0; gr < g.TotalRanks(); gr++ {
		var state, retired int64
		if err := get(cr, &state, &retired); err != nil {
			return nil, fmt.Errorf("core: snapshot rank %d: %w", gr, err)
		}
		ch, rk := d.codec.SplitGlobalRank(gr)
		id := dram.RankID{Channel: ch, Rank: rk}
		if state < 0 || state > int64(dram.MPSM) {
			return nil, fmt.Errorf("core: snapshot rank %d has invalid state %d", gr, state)
		}
		d.dev.SetState(id, dram.PowerState(state), sim.Time(0))
		if retired == 1 {
			if d.retired == nil {
				d.retired = make(map[int]bool)
			}
			d.retired[gr] = true
			d.free[gr].reset()
		}
	}

	var nGroups int64
	if err := get(cr, &nGroups); err != nil {
		return nil, err
	}
	if nGroups < 0 || nGroups > int64(g.RanksPerChannel) {
		return nil, fmt.Errorf("core: snapshot has %d powered-down groups", nGroups)
	}
	for i := int64(0); i < nGroups; i++ {
		var n int64
		if err := get(cr, &n); err != nil {
			return nil, err
		}
		if n < 0 || n > int64(g.Channels) {
			return nil, fmt.Errorf("core: snapshot group %d has %d members", i, n)
		}
		group := make([]dram.RankID, n)
		for j := range group {
			var ch, rk int64
			if err := get(cr, &ch, &rk); err != nil {
				return nil, err
			}
			group[j] = dram.RankID{Channel: int(ch), Rank: int(rk)}
		}
		d.poweredDown = append(d.poweredDown, group)
	}

	// Segment mappings; rebuild revMap and allocation counters, then derive
	// the free queues from what is not mapped.
	var nMaps int64
	if err := get(cr, &nMaps); err != nil {
		return nil, err
	}
	if nMaps < 0 || nMaps > g.TotalSegments() {
		return nil, fmt.Errorf("core: snapshot maps %d segments of %d", nMaps, g.TotalSegments())
	}
	for i := int64(0); i < nMaps; i++ {
		var hsn, dsn int64
		if err := get(cr, &hsn, &dsn); err != nil {
			return nil, err
		}
		if dsn < 0 || dsn >= g.TotalSegments() {
			return nil, fmt.Errorf("core: snapshot dsn %d out of range", dsn)
		}
		if d.revMap[dsn] != dsnFree {
			return nil, fmt.Errorf("core: snapshot maps dsn %d twice", dsn)
		}
		d.segMap.set(dram.HSN(hsn), dram.DSN(dsn))
		d.revMap[dsn] = dram.HSN(hsn)
	}
	for gr := range d.free {
		d.free[gr].reset()
		d.allocated[gr] = 0
	}
	for s := dram.DSN(0); int64(s) < g.TotalSegments(); s++ {
		l := d.codec.DecodeDSN(s)
		gr := d.codec.GlobalRank(l.Channel, l.Rank)
		if d.retired[gr] {
			if d.revMap[s] != dsnFree {
				return nil, fmt.Errorf("core: snapshot maps dsn %d on retired rank", s)
			}
			continue
		}
		if d.revMap[s] == dsnFree {
			d.free[gr].push(s)
		} else {
			d.allocated[gr]++
		}
	}

	// VM records.
	var nVMs int64
	if err := get(cr, &nVMs); err != nil {
		return nil, err
	}
	if nVMs < 0 {
		return nil, fmt.Errorf("core: snapshot has %d VMs", nVMs)
	}
	for i := int64(0); i < nVMs; i++ {
		var id, host, nAUs int64
		if err := get(cr, &id, &host, &nAUs); err != nil {
			return nil, err
		}
		if host < 0 || host >= int64(d.cfg.MaxHosts) || nAUs < 0 || nAUs > d.cfg.TotalAUs() {
			return nil, fmt.Errorf("core: snapshot vm %d invalid (host %d, aus %d)", id, host, nAUs)
		}
		st := &vmState{host: HostID(host), aus: make([]int64, nAUs)}
		if err := getSlice(cr, st.aus); err != nil {
			return nil, err
		}
		for _, au := range st.aus {
			for off := int64(0); off < d.cfg.SegmentsPerAU(); off++ {
				hsn := d.hsnOf(st.host, au, off)
				if _, ok := d.segMap.get(hsn); !ok {
					return nil, fmt.Errorf("core: snapshot vm %d missing mapping for hsn %d", id, hsn)
				}
				st.hsns = append(st.hsns, hsn)
			}
		}
		d.vms[VMID(id)] = st
	}

	// Free AU queues.
	for h := 0; h < d.cfg.MaxHosts; h++ {
		var n int64
		if err := get(cr, &n); err != nil {
			return nil, err
		}
		if n < 0 || n > d.cfg.TotalAUs() {
			return nil, fmt.Errorf("core: snapshot host %d has %d free AUs", h, n)
		}
		aus := make([]int64, n)
		if err := getSlice(cr, aus); err != nil {
			return nil, err
		}
		d.auFree[h].reset()
		d.auFree[h].pushAll(aus)
	}

	wantCRC := cr.crc
	var gotCRC uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &gotCRC); err != nil {
		return nil, fmt.Errorf("core: snapshot CRC: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("core: snapshot CRC mismatch: %#x != %#x", gotCRC, wantCRC)
	}

	if err := d.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: restored snapshot inconsistent: %w", err)
	}
	return d, nil
}

func getSlice(r io.Reader, out []int64) error {
	for i := range out {
		if err := binary.Read(r, binary.LittleEndian, &out[i]); err != nil {
			return err
		}
	}
	return nil
}
