package core

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// testGeometry is a scaled-down device: 4 channels x 4 ranks x 64 MiB ranks
// (32 segments/rank, 512 segments total) so structural tests stay fast.
func testGeometry() dram.Geometry {
	return dram.Geometry{
		Channels:        4,
		RanksPerChannel: 4,
		BanksPerRank:    16,
		SegmentBytes:    2 * dram.MiB,
		RankBytes:       64 * dram.MiB,
	}
}

// testConfig pairs the small geometry with a 16 MiB AU (8 segments,
// 2 per channel).
func testConfig() Config {
	cfg := DefaultConfig(testGeometry())
	cfg.AUBytes = 16 * dram.MiB
	cfg.MaxHosts = 4
	return cfg
}

func newTestDTL(t *testing.T) *DTL {
	t.Helper()
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustAlloc(t *testing.T, d *DTL, vm VMID, host HostID, bytes int64, now sim.Time) Allocation {
	t.Helper()
	a, err := d.AllocateVM(vm, host, bytes, now)
	if err != nil {
		t.Fatalf("AllocateVM(%d): %v", vm, err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after alloc %d: %v", vm, err)
	}
	return a
}

func mustDealloc(t *testing.T, d *DTL, vm VMID, now sim.Time) {
	t.Helper()
	if err := d.DeallocateVM(vm, now); err != nil {
		t.Fatalf("DeallocateVM(%d): %v", vm, err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after dealloc %d: %v", vm, err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	if err := DefaultConfig(dram.Default1TB()).Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	bad := testConfig()
	bad.AUBytes = 3 * dram.MiB
	if err := bad.Validate(); err == nil {
		t.Fatal("odd AU size accepted")
	}
	bad = testConfig()
	bad.L2SMCEntries = 1000 // 250 sets, not pow2
	if err := bad.Validate(); err == nil {
		t.Fatal("non-pow2 L2 sets accepted")
	}
	bad = testConfig()
	bad.MaxHosts = 0
	bad2 := bad // MaxHosts zero is filled by defaults in New, but Validate rejects it
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero hosts accepted")
	}
}

func TestPaperConfigParameters(t *testing.T) {
	cfg := DefaultConfig(dram.Default1TB())
	if cfg.AUBytes != 2<<30 {
		t.Errorf("AU = %d, want 2GB", cfg.AUBytes)
	}
	if cfg.L1SMCEntries != 64 || cfg.L2SMCEntries != 1024 || cfg.L2SMCWays != 4 {
		t.Errorf("SMC config = %d/%d/%d", cfg.L1SMCEntries, cfg.L2SMCEntries, cfg.L2SMCWays)
	}
	if cfg.ProfilingWindow != 500*sim.Microsecond {
		t.Errorf("profiling window = %v", cfg.ProfilingWindow)
	}
	if cfg.ProfilingThreshold != 50*sim.Millisecond {
		t.Errorf("profiling threshold = %v", cfg.ProfilingThreshold)
	}
	if cfg.TSPTimeout != 40*sim.Nanosecond {
		t.Errorf("TSP timeout = %v", cfg.TSPTimeout)
	}
	if cfg.MigrationRetryLimit != 3 {
		t.Errorf("retry limit = %d", cfg.MigrationRetryLimit)
	}
	if cfg.SegmentsPerAU() != 1024 {
		t.Errorf("segments per AU = %d, want 1024", cfg.SegmentsPerAU())
	}
	if cfg.TotalAUs() != 512 {
		t.Errorf("total AUs = %d, want 512", cfg.TotalAUs())
	}
}

func TestNewStartsEmptyAndConsistent(t *testing.T) {
	d := newTestDTL(t)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.LiveVMs() != 0 || d.AllocatedBytes() != 0 {
		t.Fatal("fresh DTL not empty")
	}
	if d.ActiveRanksPerChannel() != 4 {
		t.Fatalf("active ranks = %d", d.ActiveRanksPerChannel())
	}
}

func TestAccessUnallocatedFails(t *testing.T) {
	d := newTestDTL(t)
	if _, err := d.Access(0, false, 0); err == nil {
		t.Fatal("access to unallocated memory succeeded")
	}
}

func TestAllocateAccessRoundTrip(t *testing.T) {
	d := newTestDTL(t)
	a := mustAlloc(t, d, 1, 0, 32*dram.MiB, 0)
	if a.Bytes != 32*dram.MiB {
		t.Fatalf("allocated %d, want 32MiB", a.Bytes)
	}
	if len(a.AUBases) != 2 {
		t.Fatalf("AU bases = %d, want 2", len(a.AUBases))
	}
	now := sim.Time(0)
	for _, base := range a.AUBases {
		for off := int64(0); off < 16*dram.MiB; off += 512 << 10 {
			res, err := d.Access(base+dram.HPA(off), false, now)
			if err != nil {
				t.Fatalf("access at %#x: %v", int64(base)+off, err)
			}
			if res.TotalLat() <= 0 {
				t.Fatalf("non-positive latency %v", res.TotalLat())
			}
			now += 100
		}
	}
	st := d.Stats()
	if st.Accesses == 0 || st.MissPathWalks == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTranslationLatencyLevels(t *testing.T) {
	d := newTestDTL(t)
	cfg := d.Config()
	a := mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	base := a.AUBases[0]

	// First access: full miss path.
	r1, err := d.Access(base, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SMCLevel != 0 {
		t.Fatalf("first access SMC level = %d, want 0 (miss)", r1.SMCLevel)
	}
	wantMiss := cfg.L1SMCHit + cfg.L2SMCHit + 2*cfg.SRAMTableHit + cfg.DRAMTableMiss
	if r1.TranslationLat != wantMiss {
		t.Fatalf("miss translation = %v, want %v", r1.TranslationLat, wantMiss)
	}

	// Second access to the same segment: L1 hit.
	r2, err := d.Access(base+64, false, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SMCLevel != 1 || r2.TranslationLat != cfg.L1SMCHit {
		t.Fatalf("second access level=%d lat=%v", r2.SMCLevel, r2.TranslationLat)
	}
}

func TestSMCL2HitAfterL1Eviction(t *testing.T) {
	d := newTestDTL(t)
	cfg := d.Config()
	a := mustAlloc(t, d, 1, 0, 4*16*dram.MiB, 0) // 32 segments > 64? no: touch > L1 entries
	// Touch more distinct segments than L1 entries (64) to force eviction.
	segs := int64(0)
	now := sim.Time(0)
	for _, base := range a.AUBases {
		for off := int64(0); off < 16*dram.MiB; off += 2 * dram.MiB {
			if _, err := d.Access(base+dram.HPA(off), false, now); err != nil {
				t.Fatal(err)
			}
			segs++
			now += 100
		}
	}
	if segs <= int64(cfg.L1SMCEntries) {
		t.Skipf("only %d segments touched; need > %d", segs, cfg.L1SMCEntries)
	}
	// Re-touch the first segment: should be L2 hit (evicted from 64-entry
	// L1, resident in 1024-entry L2) — or L1 if it survived; must not walk.
	r, err := d.Access(a.AUBases[0], false, now)
	if err != nil {
		t.Fatal(err)
	}
	if r.SMCLevel == 0 && segs < int64(cfg.L2SMCEntries) {
		t.Fatalf("full miss-path walk despite L2 capacity (%d segments)", segs)
	}
}

func TestDeallocateReleasesEverything(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	if d.AllocatedBytes() != 64*dram.MiB {
		t.Fatalf("allocated = %d", d.AllocatedBytes())
	}
	mustDealloc(t, d, 1, 1000)
	if d.AllocatedBytes() != 0 || d.LiveVMs() != 0 {
		t.Fatal("deallocation left residue")
	}
	if _, err := d.VMAddresses(1); err == nil {
		t.Fatal("addresses of freed VM still resolvable")
	}
	// The freed address must no longer be accessible.
	if _, err := d.Access(0, false, 2000); err == nil {
		t.Fatal("stale access succeeded after dealloc")
	}
}

func TestDoubleAllocAndDeallocErrors(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	if _, err := d.AllocateVM(1, 0, 16*dram.MiB, 0); err == nil {
		t.Fatal("double alloc accepted")
	}
	if err := d.DeallocateVM(99, 0); err == nil {
		t.Fatal("dealloc of unknown VM accepted")
	}
	if _, err := d.AllocateVM(2, 0, 0, 0); err == nil {
		t.Fatal("zero-byte alloc accepted")
	}
	if _, err := d.AllocateVM(3, HostID(99), 16*dram.MiB, 0); err == nil {
		t.Fatal("out-of-range host accepted")
	}
}

func TestAllocationRoundsUpToAU(t *testing.T) {
	d := newTestDTL(t)
	a := mustAlloc(t, d, 1, 0, 1, 0) // 1 byte -> 1 AU
	if a.Bytes != d.Config().AUBytes {
		t.Fatalf("allocated %d, want one AU %d", a.Bytes, d.Config().AUBytes)
	}
}

func TestBalancedAllocationAcrossChannels(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	g := d.Config().Geometry
	perChannel := make([]int64, g.Channels)
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			perChannel[ch] += d.allocated[d.codec.GlobalRank(ch, rk)]
		}
	}
	for ch := 1; ch < g.Channels; ch++ {
		if perChannel[ch] != perChannel[0] {
			t.Fatalf("channel allocation imbalance: %v", perChannel)
		}
	}
}

func TestAllocationPrefersUtilizedRanks(t *testing.T) {
	// Consecutive allocations should pack into the same ranks rather than
	// spreading (§4.3 priority rule), keeping other ranks drainable.
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	mustAlloc(t, d, 2, 0, 16*dram.MiB, 0)
	g := d.Config().Geometry
	for ch := 0; ch < g.Channels; ch++ {
		ranksUsed := 0
		for rk := 0; rk < g.RanksPerChannel; rk++ {
			if d.allocated[d.codec.GlobalRank(ch, rk)] > 0 {
				ranksUsed++
			}
		}
		if ranksUsed != 1 {
			t.Fatalf("channel %d spread across %d ranks, want 1", ch, ranksUsed)
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	d := newTestDTL(t)
	total := d.Config().Geometry.TotalBytes()
	mustAlloc(t, d, 1, 0, total, 0)
	if _, err := d.AllocateVM(2, 0, 16*dram.MiB, 0); err == nil {
		t.Fatal("over-allocation accepted")
	}
}

func TestVMAddressesStableAcrossMigration(t *testing.T) {
	// HPAs handed to a VM must keep working after power-down migrations.
	d := newTestDTL(t)
	a1 := mustAlloc(t, d, 1, 0, 96*dram.MiB, 0)
	mustAlloc(t, d, 2, 0, 96*dram.MiB, 0)
	mustDealloc(t, d, 2, 1000) // triggers consolidation
	now := sim.Time(10000)
	for _, base := range a1.AUBases {
		if _, err := d.Access(base, false, now); err != nil {
			t.Fatalf("HPA %#x broken after migration: %v", int64(base), err)
		}
		now += 1000
	}
}

func TestAccessAfterRetirementAsymmetry(t *testing.T) {
	// Regression for the per-channel capacity bug the snapshot property
	// test exposed: after retiring one rank on one channel, a large
	// allocation must either fit (per-channel) or fail cleanly — never
	// panic the allocator.
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	if err := d.RetireRank(dram.RankID{Channel: 3, Rank: 2}, 1000); err != nil {
		t.Fatal(err)
	}
	// Channel 3 now has one rank less. Ask for almost everything.
	total := d.UsableBytes() - 16*dram.MiB
	// Per-channel balance caps the usable allocation at 4x the SMALLEST
	// channel's capacity; requesting more must error, not panic.
	if _, err := d.AllocateVM(2, 0, total, 2000); err == nil {
		// If it fits, the invariants must hold.
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// A balanced request sized to the smallest channel must succeed.
	smallest := int64(3) * 64 * dram.MiB    // 3 remaining ranks on channel 3
	perChannelSafe := smallest * 4 * 8 / 10 // 80% of balanced capacity
	perChannelSafe -= perChannelSafe % (16 * dram.MiB)
	if _, err := d.AllocateVM(3, 0, perChannelSafe, 3000); err != nil {
		t.Fatalf("balanced allocation failed: %v", err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
