package core

import (
	"dtl/internal/sim"
)

// AMATModel evaluates the average memory access time equations of §6.1:
//
//	AMAT_CXL = CXL_mem_lat + AddrTranslation                      (Eq. 1)
//	AddrTranslation = L1 hit time
//	    + L1 miss ratio x (L2 hit time + L2 miss ratio x penalty) (Eq. 2)
//
// where the L2 miss penalty is two SRAM table reads plus one DRAM access to
// the segment mapping table.
type AMATModel struct {
	CXLMemLat sim.Time
	L1Hit     sim.Time
	L2Hit     sim.Time
	L1Miss    float64 // L1 SMC miss ratio
	L2Miss    float64 // L2 SMC miss ratio (conditional)
	Penalty   sim.Time
}

// AMATFromConfig builds the model from a configuration, the target link
// latency, and measured SMC miss ratios.
func AMATFromConfig(cfg Config, cxlLat sim.Time, stats SMCStats) AMATModel {
	return AMATModel{
		CXLMemLat: cxlLat,
		L1Hit:     cfg.L1SMCHit,
		L2Hit:     cfg.L2SMCHit,
		L1Miss:    stats.L1MissRatio(),
		L2Miss:    stats.L2MissRatio(),
		Penalty:   2*cfg.SRAMTableHit + cfg.DRAMTableMiss,
	}
}

// Translation returns the average address-translation latency in
// fractional nanoseconds (Eq. 2).
func (m AMATModel) Translation() float64 {
	return float64(m.L1Hit) +
		m.L1Miss*(float64(m.L2Hit)+m.L2Miss*float64(m.Penalty))
}

// AMAT returns the end-to-end average memory access time (Eq. 1).
func (m AMATModel) AMAT() float64 {
	return float64(m.CXLMemLat) + m.Translation()
}
