package core

import (
	"dtl/internal/dram"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// inflight is one outstanding segment migration on a channel: the register
// set of §4.2 (old DSN, new DSN, progress counter, completion bit). The
// copy runs over [start, end); progress is linear in time because the
// migration queue issues line-sized requests only into idle bus slots.
type inflight struct {
	src, dst dram.DSN
	start    sim.Time
	end      sim.Time
	dur      sim.Time
	retries  int
	// vretries counts verify-after-copy re-routes this segment has taken
	// (destination rank faulted mid-copy), bounded by MigrationRetryLimit.
	vretries int
}

// copyFraction of the window is spent copying lines; the remainder models
// the completion-bit span where the copy is done but the segment mapping
// table and SMC updates are still pending (§4.2).
const copyFraction = 0.9

// progressAt reports the fraction of lines copied by now; 1 means the copy
// finished and the completion bit is set.
func (m *inflight) progressAt(now sim.Time) float64 {
	if now <= m.start {
		return 0
	}
	copyDur := sim.Time(float64(m.dur) * copyFraction)
	if now >= m.start+copyDur || copyDur <= 0 {
		return 1
	}
	return float64(now-m.start) / float64(copyDur)
}

// MigStats counts migration-protocol events.
type MigStats struct {
	Enqueued       int64 // segment copies scheduled
	Completed      int64
	WriteConflicts int64 // foreground writes landing on an in-flight segment
	RoutedToNew    int64 // completion bit set: write sent to the new DSN
	Aborts         int64 // copy aborted and restarted because the line had already migrated
	Requeues       int64 // retry limit exceeded; request moved to queue tail
	BytesQueued    int64
	Verified       int64 // copies whose destination verified healthy at completion
	VerifyFailures int64 // copies that completed onto a failed rank
	Reroutes       int64 // verify failures re-routed to a new destination
	VerifyGiveups  int64 // verify failures left in place (retry limit or no target)
}

// migrator schedules background segment copies per channel and implements
// the §4.2 atomic-migration write protocol. Mapping-table updates are
// applied eagerly by the caller (the simulator does not store data, only
// mappings); the migrator owns the timing windows, the conflict protocol
// and the energy/latency accounting.
type migrator struct {
	d         *DTL
	windows   [][]*inflight // per channel, chronological
	busyUntil []sim.Time
	busyNs    []sim.Time // accumulated migration bus time per channel
	stats     MigStats
	latency   *telemetry.Timer // scheduled copy duration, registry-backed
	// pool recycles completed windows: drains and swap storms enqueue
	// thousands of copies, and completeUpTo retires them in batches, so the
	// register-set structs cycle instead of churning the heap.
	pool []*inflight
}

func newMigrator(d *DTL) *migrator {
	ch := d.cfg.Geometry.Channels
	return &migrator{
		d:         d,
		windows:   make([][]*inflight, ch),
		busyUntil: make([]sim.Time, ch),
		busyNs:    make([]sim.Time, ch),
		latency:   d.reg.Timer("core.migration.latency_ns", telemetry.DefaultTimerBoundsNs()),
	}
}

// enqueueCopy schedules the copy of one segment from src to dst (same
// channel) using the channel's idle bandwidth; copies on a channel are
// serialized behind each other.
func (m *migrator) enqueueCopy(src, dst dram.DSN, now sim.Time, reason string) {
	loc := m.d.codec.DecodeDSN(src)
	ch := loc.Channel
	dur := m.d.ctrl.MigrationTime(ch, m.d.cfg.Geometry.SegmentBytes, now)
	start := now
	if m.busyUntil[ch] > start {
		start = m.busyUntil[ch]
	}
	var w *inflight
	if n := len(m.pool); n > 0 {
		w = m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
	} else {
		w = new(inflight)
	}
	*w = inflight{src: src, dst: dst, start: start, end: start + dur, dur: dur}
	m.windows[ch] = append(m.windows[ch], w)
	m.busyUntil[ch] = w.end
	m.busyNs[ch] += dur
	m.stats.Enqueued++
	m.stats.BytesQueued += m.d.cfg.Geometry.SegmentBytes
	m.latency.Observe(float64(w.end - now))
	m.d.tracer.Migration(ch, int64(src), int64(dst), reason, w.start, w.end)
	if m.d.ledger != nil {
		// Charge the copy window (latency) and the active energy of moving
		// one segment to the destination rank, attributed to the VM whose
		// data is moving (SystemVM for unowned segments).
		dloc := m.d.codec.DecodeDSN(dst)
		gr := m.d.codec.GlobalRank(dloc.Channel, dloc.Rank)
		vm := telemetry.SystemVM
		if hsn := m.d.revMap[dst]; hsn != dsnFree {
			vm = m.d.ownerOf(hsn)
		} else if hsn := m.d.revMap[src]; hsn != dsnFree {
			vm = m.d.ownerOf(hsn)
		}
		m.d.chargeSpan(vm, gr, causeForReason(reason), w.start, w.end, m.d.migEnergyPerSeg)
	}
}

// causeForReason maps a migration reason tag to its attribution cause:
// power-down drains are the demotion machinery, verify re-routes and
// retirement drains are the fault path, and everything else (hotness swaps
// and moves, manual migrations) is a plain background copy.
func causeForReason(reason string) telemetry.Cause {
	switch reason {
	case "powerdown-drain":
		return telemetry.CauseDemotionWait
	case "verify-reroute", "retire":
		return telemetry.CauseFaultRetry
	default:
		return telemetry.CauseMigrationCopy
	}
}

// enqueueSwap schedules a bidirectional exchange (two segment copies).
func (m *migrator) enqueueSwap(a, b dram.DSN, now sim.Time, reason string) {
	m.enqueueCopy(a, b, now, reason)
	m.enqueueCopy(b, a, now, reason)
}

// completeUpTo retires windows that finished by now, verifying each copy
// against its destination rank: a copy that completed onto a rank that
// failed mid-flight is re-routed to a fresh destination (bounded by
// MigrationRetryLimit), so data never strands on degrading media.
func (m *migrator) completeUpTo(now sim.Time) {
	type reroute struct {
		dst      dram.DSN
		vretries int
	}
	for ch := range m.windows {
		ws := m.windows[ch]
		var failed []reroute
		keep := ws[:0]
		for _, w := range ws {
			if w.end > now {
				keep = append(keep, w)
				continue
			}
			m.stats.Completed++
			loc := m.d.codec.DecodeDSN(w.dst)
			if m.d.dev.FailedGlobal(m.d.codec.GlobalRank(loc.Channel, loc.Rank)) {
				m.stats.VerifyFailures++
				failed = append(failed, reroute{dst: w.dst, vretries: w.vretries})
			} else {
				m.stats.Verified++
			}
			// The reroute data above is copied by value, so the window can
			// be recycled before the re-route pass runs.
			m.pool = append(m.pool, w)
		}
		m.windows[ch] = keep
		// Re-routes are applied after the compaction above: moveSegment
		// enqueues a fresh copy, which appends to m.windows[ch] — doing
		// that mid-compaction would alias the slice being rewritten.
		for _, r := range failed {
			if m.d.revMap[r.dst] == dsnFree {
				continue // already moved off or freed; nothing to save
			}
			if r.vretries >= m.d.cfg.MigrationRetryLimit {
				m.stats.VerifyGiveups++
				continue
			}
			loc := m.d.codec.DecodeDSN(r.dst)
			nd, ok := m.d.takeDrainTargetOn(loc.Channel, loc.Rank)
			if !ok {
				// No healthy rank with free space on this channel; the data
				// stays readable in degraded mode until retirement drains it.
				m.stats.VerifyGiveups++
				continue
			}
			m.d.moveSegment(r.dst, nd, now, "verify-reroute")
			nws := m.windows[ch]
			nws[len(nws)-1].vretries = r.vretries + 1
			m.stats.Reroutes++
		}
	}
}

// onForegroundAccess applies the §4.2 write protocol when a foreground
// access lands on a segment with an in-flight migration:
//
//   - reads always proceed (the source copy remains valid until the
//     mapping update);
//   - a write with the completion bit set (copy finished, tables pending)
//     is routed to the new DSN;
//   - a write to a line not yet copied proceeds at the old DSN;
//   - a write to an already-copied line aborts the migration, which
//     restarts; after MigrationRetryLimit aborts the request is moved to
//     the tail of the channel's migration queue.
func (m *migrator) onForegroundAccess(dsn dram.DSN, write bool, now sim.Time) {
	m.completeUpTo(now)
	if !write {
		return
	}
	loc := m.d.codec.DecodeDSN(dsn)
	ch := loc.Channel
	for _, w := range m.windows[ch] {
		if w.src != dsn && w.dst != dsn {
			continue
		}
		if now < w.start {
			continue // queued but not copying yet
		}
		m.stats.WriteConflicts++
		m.d.tracer.WriteConflict(ch, now)
		frac := w.progressAt(now)
		if frac >= 1 {
			// Completion bit set: copy done, mapping update pending.
			m.stats.RoutedToNew++
			continue
		}
		// Model the written line's position as uniformly distributed over
		// the segment; deterministic hash of (dsn, now) keeps replays
		// reproducible.
		linePos := float64(uint64(int64(dsn)*2654435761+int64(now))%1024) / 1024.0
		if linePos >= frac {
			continue // line not copied yet: write the old location
		}
		// Line already migrated: abort and restart the copy.
		m.stats.Aborts++
		w.retries++
		if w.retries > m.d.cfg.MigrationRetryLimit {
			// Re-queue at the tail of the channel's migration queue.
			m.stats.Requeues++
			w.retries = 0
			start := m.busyUntil[ch]
			if start < now {
				start = now
			}
			w.start = start
			w.end = start + w.dur
			m.busyUntil[ch] = w.end
			m.busyNs[ch] += w.dur
			m.chargeStall(w, now)
			continue
		}
		w.start = now
		w.end = now + w.dur
		if m.busyUntil[ch] < w.end {
			m.busyUntil[ch] = w.end
		}
		m.busyNs[ch] += w.dur
		m.chargeStall(w, now)
	}
}

// chargeStall books the delay a foreground write-conflict added to an
// in-flight migration (abort-restart or tail requeue) as migration-stall:
// the span runs from the conflicting write to the rescheduled window's new
// end. The copy energy was charged at enqueue, so stalls carry none.
func (m *migrator) chargeStall(w *inflight, now sim.Time) {
	if m.d.ledger == nil {
		return
	}
	dloc := m.d.codec.DecodeDSN(w.dst)
	gr := m.d.codec.GlobalRank(dloc.Channel, dloc.Rank)
	vm := telemetry.SystemVM
	if hsn := m.d.revMap[w.dst]; hsn != dsnFree {
		vm = m.d.ownerOf(hsn)
	} else if hsn := m.d.revMap[w.src]; hsn != dsnFree {
		vm = m.d.ownerOf(hsn)
	}
	m.d.chargeSpan(vm, gr, telemetry.CauseMigrationStall, now, w.end, 0)
}

// Migrator is the exported statistics surface of the migration engine.
type Migrator migrator

// Stats returns protocol counters.
func (m *Migrator) Stats() MigStats { return m.stats }

// Outstanding reports in-flight migrations across all channels.
func (m *Migrator) Outstanding() int {
	n := 0
	for _, ws := range m.windows {
		n += len(ws)
	}
	return n
}

// BusyUntil reports when channel ch's migration queue drains.
func (m *Migrator) BusyUntil(ch int) sim.Time { return m.busyUntil[ch] }

// BusyNs reports the total migration bus time charged to channel ch.
func (m *Migrator) BusyNs(ch int) sim.Time { return m.busyNs[ch] }

// TotalBusyNs sums migration bus time over all channels.
func (m *Migrator) TotalBusyNs() sim.Time {
	var t sim.Time
	for _, b := range m.busyNs {
		t += b
	}
	return t
}
