package core

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// Phase is the per-channel state of the hotness-aware self-refresh engine.
type Phase int

const (
	// PhaseIdle: the engine is disabled for the channel.
	PhaseIdle Phase = iota
	// PhaseWindow: counting per-rank accesses over the profiling window to
	// select the victim rank (0.5 ms, §3.4).
	PhaseWindow
	// PhaseProfiling: victim selected; the migration table simulates a
	// remapping plan via CLOCK/TSP until the hypothetical victim stays
	// idle for the profiling threshold.
	PhaseProfiling
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseWindow:
		return "window"
	case PhaseProfiling:
		return "profiling"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// chanState is per-channel hotness machinery.
type chanState struct {
	phase           Phase
	windowStart     sim.Time
	victim          int // rank index; -1 when none
	lastVictimTouch sim.Time
	targetRank      int   // TSP round-robin position
	tspIdx          int64 // TSP slot within the target rank
	windowCounts    []int64
}

// hotness implements §3.4: the migration table (access bit + planned
// rank/segment per entry), per-rank access counters, the target segment
// pointer walking a CLOCK over the target rank, the two phases, and
// self-refresh entry/exit.
type hotness struct {
	d       *DTL
	enabled bool

	// accessBit is the CLOCK reference bit per physical segment.
	accessBit []bool
	// planned[s] is the physical slot the content currently at slot s
	// should occupy after migration. Identity = no move. The plan is
	// always a product of disjoint transpositions:
	// planned[planned[s]] == s.
	planned []dram.DSN

	ch []chanState

	stats HotStats
}

// HotStats counts self-refresh engine activity.
type HotStats struct {
	VictimSelections int64
	PlanSwaps        int64
	PlanRestores     int64
	TSPTimeouts      int64
	Migrations       int64 // migration-phase executions
	SwappedSegments  int64
}

func newHotness(d *DTL) *hotness {
	total := d.cfg.Geometry.TotalSegments()
	h := &hotness{
		d:         d,
		accessBit: make([]bool, total),
		planned:   make([]dram.DSN, total),
		ch:        make([]chanState, d.cfg.Geometry.Channels),
	}
	for i := range h.planned {
		h.planned[i] = dram.DSN(i)
	}
	for c := range h.ch {
		h.ch[c] = chanState{phase: PhaseIdle, victim: -1}
	}
	return h
}

// enable starts the engine on every channel.
func (h *hotness) enable(now sim.Time) {
	h.enabled = true
	for c := range h.ch {
		h.startWindow(c, now)
	}
}

func (h *hotness) startWindow(c int, now sim.Time) {
	cs := &h.ch[c]
	cs.phase = PhaseWindow
	cs.windowStart = now
	cs.victim = -1
	if cs.windowCounts == nil {
		cs.windowCounts = make([]int64, h.d.cfg.Geometry.RanksPerChannel)
	}
	for i := range cs.windowCounts {
		cs.windowCounts[i] = 0
	}
}

// onAccess feeds one serviced access into the engine.
func (h *hotness) onAccess(dsn dram.DSN, loc dram.Loc, now sim.Time) {
	if !h.enabled {
		return
	}
	cs := &h.ch[loc.Channel]
	if cs.phase == PhaseWindow {
		cs.windowCounts[loc.Rank]++
		if now-cs.windowStart >= h.d.cfg.ProfilingWindow {
			h.selectVictim(loc.Channel, now)
		}
		h.accessBit[dsn] = true
		return
	}
	if cs.phase != PhaseProfiling {
		h.accessBit[dsn] = true
		return
	}

	victim := cs.victim
	// Mark the reference bit first so the TSP walk below cannot hand the
	// just-accessed (hot) segment back as a cold candidate.
	h.accessBit[dsn] = true
	plannedLoc := h.d.codec.DecodeDSN(h.planned[dsn])
	inHypotheticalVictim := plannedLoc.Channel == loc.Channel && plannedLoc.Rank == victim
	if inHypotheticalVictim {
		// The access would have hit the victim rank after migration:
		// reset the idle timer (§3.4) and update the plan (Fig. 8).
		cs.lastVictimTouch = now
		if h.planned[dsn] == dsn {
			// Case (b): segment physically in the victim rank; swap its
			// entry with a cold target entry found by the TSP.
			if t := h.findColdTarget(loc.Channel); t >= 0 {
				h.swapPlan(dsn, dram.DSN(t))
				h.stats.PlanSwaps++
			}
		} else {
			// Case (c): this segment had been planned into the victim
			// (it looked cold) but is being accessed. Restore both
			// entries, then plan a different cold segment into the
			// victim slot.
			partner := h.planned[dsn] // the victim-rank segment it swapped with
			h.swapPlan(dsn, partner)  // restore identity for both
			h.stats.PlanRestores++
			if t := h.findColdTarget(loc.Channel); t >= 0 {
				h.swapPlan(partner, dram.DSN(t))
				h.stats.PlanSwaps++
			}
		}
	}

	if now-cs.lastVictimTouch >= h.d.cfg.ProfilingThreshold {
		h.executeMigration(loc.Channel, now)
	}
}

// tick drives phase transitions in the absence of accesses.
func (h *hotness) tick(now sim.Time) {
	if !h.enabled {
		return
	}
	for c := range h.ch {
		cs := &h.ch[c]
		switch cs.phase {
		case PhaseWindow:
			if now-cs.windowStart >= h.d.cfg.ProfilingWindow {
				h.selectVictim(c, now)
			}
		case PhaseProfiling:
			if now-cs.lastVictimTouch >= h.d.cfg.ProfilingThreshold {
				h.executeMigration(c, now)
			}
		}
	}
}

// selectVictim closes the window phase: the standby rank with the fewest
// window accesses becomes the victim; the TSP starts at the next rank.
func (h *hotness) selectVictim(c int, now sim.Time) {
	cs := &h.ch[c]
	g := h.d.cfg.Geometry
	best := -1
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		if h.d.dev.State(dram.RankID{Channel: c, Rank: rk}) != dram.Standby {
			continue
		}
		if best < 0 || cs.windowCounts[rk] < cs.windowCounts[best] {
			best = rk
		}
	}
	// Need the victim plus enough remaining standby ranks to satisfy the
	// enter policy (SelfRefreshMinStandby targets must survive the entry).
	if best < 0 || len(h.standbyRanks(c)) < h.d.cfg.SelfRefreshMinStandby+1 {
		h.startWindow(c, now)
		return
	}
	cs.phase = PhaseProfiling
	cs.victim = best
	cs.lastVictimTouch = now
	cs.targetRank = h.nextTargetRank(c, best, best)
	cs.tspIdx = 0
	h.stats.VictimSelections++
}

func (h *hotness) standbyRanks(c int) []int {
	var out []int
	for rk := 0; rk < h.d.cfg.Geometry.RanksPerChannel; rk++ {
		if h.d.dev.State(dram.RankID{Channel: c, Rank: rk}) == dram.Standby {
			out = append(out, rk)
		}
	}
	return out
}

// nextTargetRank advances round-robin to the next standby rank after `from`
// that is not the victim.
func (h *hotness) nextTargetRank(c, victim, from int) int {
	g := h.d.cfg.Geometry
	for i := 1; i <= g.RanksPerChannel; i++ {
		rk := (from + i) % g.RanksPerChannel
		if rk == victim {
			continue
		}
		if h.d.dev.State(dram.RankID{Channel: c, Rank: rk}) == dram.Standby {
			return rk
		}
	}
	return -1
}

// findColdTarget walks the TSP CLOCK over the current target rank looking
// for an unswapped entry with a clear access bit (a cold segment). The walk
// is bounded by TSPTimeoutEntries (the 40 ns budget); on timeout the TSP
// moves to the next target rank round-robin (§3.4) and -1 is returned.
func (h *hotness) findColdTarget(c int) int64 {
	cs := &h.ch[c]
	if cs.targetRank < 0 {
		return -1
	}
	// The target rank may have been powered down or put into self-refresh
	// since the TSP last moved; re-validate before walking it.
	if h.d.dev.State(dram.RankID{Channel: c, Rank: cs.targetRank}) != dram.Standby {
		next := h.nextTargetRank(c, cs.victim, cs.targetRank)
		if next < 0 || h.d.dev.State(dram.RankID{Channel: c, Rank: next}) != dram.Standby {
			return -1
		}
		cs.targetRank = next
		cs.tspIdx = 0
	}
	g := h.d.cfg.Geometry
	perRank := g.SegmentsPerRank()
	for budget := h.d.cfg.TSPTimeoutEntries; budget > 0; budget-- {
		slot := h.d.codec.EncodeDSN(dram.Loc{Rank: cs.targetRank, Channel: c, Index: cs.tspIdx})
		cs.tspIdx++
		if cs.tspIdx >= perRank {
			cs.tspIdx = 0
		}
		if h.planned[slot] != slot {
			continue // already part of the plan
		}
		if h.accessBit[slot] {
			h.accessBit[slot] = false // CLOCK second chance
			continue
		}
		return int64(slot)
	}
	// Timeout: collect cold segments from multiple target ranks.
	h.stats.TSPTimeouts++
	if next := h.nextTargetRank(c, cs.victim, cs.targetRank); next >= 0 {
		cs.targetRank = next
		cs.tspIdx = 0
	}
	return -1
}

func (h *hotness) swapPlan(a, b dram.DSN) {
	h.planned[a], h.planned[b] = h.planned[b], h.planned[a]
}

// executeMigration is the migration phase (§3.4 Phase 2): apply every
// planned transposition touching this channel, update the mapping tables,
// invalidate SMC entries, then put the victim rank into self-refresh and
// restart the window phase for the channel.
func (h *hotness) executeMigration(c int, now sim.Time) {
	cs := &h.ch[c]
	victim := cs.victim
	g := h.d.cfg.Geometry

	// "DTL traverses the entire victim rank and finds the hot segments
	// that need to be migrated": any live resident with its reference bit
	// set (e.g. the access that woke the rank from a previous self-refresh
	// stint) is planned out now, not just the entries the profiling phase
	// already swapped.
	for idx := int64(0); idx < g.SegmentsPerRank(); idx++ {
		v := h.d.codec.EncodeDSN(dram.Loc{Rank: victim, Channel: c, Index: idx})
		if h.planned[v] == v && h.accessBit[v] && h.d.revMap[v] != dsnFree {
			if t := h.findColdTarget(c); t >= 0 {
				h.swapPlan(v, dram.DSN(t))
				h.stats.PlanSwaps++
			}
		}
	}

	// Walk the victim rank; each non-identity entry is one transposition.
	for idx := int64(0); idx < g.SegmentsPerRank(); idx++ {
		v := h.d.codec.EncodeDSN(dram.Loc{Rank: victim, Channel: c, Index: idx})
		p := h.planned[v]
		if p == v {
			continue
		}
		h.applySwap(v, p, now)
		h.stats.SwappedSegments++
		h.d.st.segmentsSwapped.Inc()
	}
	// Re-initialize the migration table for the channel (plan + bits).
	h.resetChannelPlan(c)

	id := dram.RankID{Channel: c, Rank: victim}
	h.d.dev.SetState(id, dram.SelfRefresh, now)
	h.d.st.selfRefreshEnters.Inc()
	h.stats.Migrations++

	// Restart profiling to hunt for the next victim among remaining
	// standby ranks.
	h.startWindow(c, now)
}

// applySwap exchanges the contents of physical slots a and b: mapping
// tables, free queues and allocation counters all follow. Either side may
// be a free slot.
func (h *hotness) applySwap(a, b dram.DSN, now sim.Time) {
	d := h.d
	ha, hb := d.revMap[a], d.revMap[b]
	if ha == dsnFree && hb == dsnFree {
		return // nothing to move
	}
	la, lb := d.codec.DecodeDSN(a), d.codec.DecodeDSN(b)
	gra := d.codec.GlobalRank(la.Channel, la.Rank)
	grb := d.codec.GlobalRank(lb.Channel, lb.Rank)

	switch {
	case ha != dsnFree && hb != dsnFree:
		d.segMap.set(ha, b)
		d.segMap.set(hb, a)
		d.revMap[a], d.revMap[b] = hb, ha
		d.smc.invalidate(ha)
		d.smc.invalidate(hb)
		d.mig.enqueueSwap(a, b, now, "hotness-swap")
		d.st.bytesMigrated.Add(2 * d.cfg.Geometry.SegmentBytes)
	case ha != dsnFree: // move a -> b; slot a becomes free
		d.segMap.set(ha, b)
		d.revMap[b] = ha
		d.revMap[a] = dsnFree
		d.smc.invalidate(ha)
		removeFromFreeQueue(d, grb, b)
		d.free[gra].push(a)
		d.allocated[grb]++
		d.allocated[gra]--
		d.mig.enqueueCopy(a, b, now, "hotness-move")
		d.st.bytesMigrated.Add(d.cfg.Geometry.SegmentBytes)
	default: // hb live: move b -> a; slot b becomes free
		d.segMap.set(hb, a)
		d.revMap[a] = hb
		d.revMap[b] = dsnFree
		d.smc.invalidate(hb)
		removeFromFreeQueue(d, gra, a)
		d.free[grb].push(b)
		d.allocated[gra]++
		d.allocated[grb]--
		d.mig.enqueueCopy(b, a, now, "hotness-move")
		d.st.bytesMigrated.Add(d.cfg.Geometry.SegmentBytes)
	}
}

func removeFromFreeQueue(d *DTL, gr int, dsn dram.DSN) {
	if !d.free[gr].remove(dsn) {
		panic(fmt.Sprintf("core: dsn %d not found in free queue of rank %d", dsn, gr))
	}
}

// resetChannelPlan restores identity plans and clears access bits for every
// segment of channel c.
func (h *hotness) resetChannelPlan(c int) {
	g := h.d.cfg.Geometry
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		for idx := int64(0); idx < g.SegmentsPerRank(); idx++ {
			s := h.d.codec.EncodeDSN(dram.Loc{Rank: rk, Channel: c, Index: idx})
			h.planned[s] = s
			h.accessBit[s] = false
		}
	}
}

// onSelfRefreshWake reacts to a rank leaving self-refresh due to an access:
// profiling restarts for the channel (§3.4 "Exit from and Re-entry").
func (h *hotness) onSelfRefreshWake(id dram.RankID, now sim.Time) {
	if !h.enabled {
		return
	}
	h.startWindow(id.Channel, now)
}

// onSegmentFreed clears plan state when a segment is deallocated.
func (h *hotness) onSegmentFreed(dsn dram.DSN) {
	h.accessBit[dsn] = false
	if p := h.planned[dsn]; p != dsn {
		h.swapPlan(dsn, p) // restore both entries to identity
	}
}

// onSegmentMoved invalidates plan state for slots touched by a power-down
// drain migration.
func (h *hotness) onSegmentMoved(src, dst dram.DSN) {
	h.onSegmentFreed(src)
	h.onSegmentFreed(dst)
}

// onRankPoweredDown drops any plan state involving a rank entering MPSM and
// restarts the channel's phase machinery.
func (h *hotness) onRankPoweredDown(id dram.RankID, now sim.Time) {
	if !h.enabled {
		return
	}
	g := h.d.cfg.Geometry
	for idx := int64(0); idx < g.SegmentsPerRank(); idx++ {
		s := h.d.codec.EncodeDSN(dram.Loc{Rank: id.Rank, Channel: id.Channel, Index: idx})
		h.onSegmentFreed(s)
	}
	cs := &h.ch[id.Channel]
	if cs.phase == PhaseProfiling && cs.victim == id.Rank {
		h.startWindow(id.Channel, now)
	}
}

// Hotness is the exported read/control surface of the engine.
type Hotness hotness

// Enable turns the hotness-aware self-refresh engine on for all channels.
func (h *Hotness) Enable(now sim.Time) { (*hotness)(h).enable(now) }

// Enabled reports whether the engine is running.
func (h *Hotness) Enabled() bool { return h.enabled }

// Phase reports the channel's current phase.
func (h *Hotness) Phase(channel int) Phase { return h.ch[channel].phase }

// VictimRank reports the channel's current victim rank (-1 when none).
func (h *Hotness) VictimRank(channel int) int { return h.ch[channel].victim }

// Stats returns engine counters.
func (h *Hotness) Stats() HotStats { return h.stats }

// PlannedSlot reports where the content at physical slot dsn would move.
func (h *Hotness) PlannedSlot(dsn dram.DSN) dram.DSN { return h.planned[dsn] }

// AccessBit reports the CLOCK reference bit of a physical segment.
func (h *Hotness) AccessBit(dsn dram.DSN) bool { return h.accessBit[dsn] }
