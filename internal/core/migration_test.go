package core

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// migSetup produces a DTL with an in-flight drain migration and returns the
// HPA of a segment that is being migrated plus the time migration started.
func migSetup(t *testing.T) (*DTL, dram.HPA, sim.Time) {
	t.Helper()
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	mustAlloc(t, d, 2, 0, 480*dram.MiB, 0)
	mustAlloc(t, d, 3, 0, 16*dram.MiB, 0)
	start := sim.Time(1000)
	mustDealloc(t, d, 2, start) // drains VM1's rank: VM1 segments migrate
	if d.Migrator().Outstanding() == 0 {
		t.Fatal("setup: no outstanding migrations")
	}
	addrs, err := d.VMAddresses(1)
	if err != nil {
		t.Fatal(err)
	}
	return d, addrs[0], start
}

func TestWriteConflictDuringMigration(t *testing.T) {
	d, hpa, start := migSetup(t)
	before := d.Migrator().Stats()
	// Hammer writes into the migrating segment mid-copy.
	now := start + 10*sim.Microsecond
	for i := 0; i < 50; i++ {
		if _, err := d.Access(hpa+dram.HPA(i*64), true, now); err != nil {
			t.Fatal(err)
		}
		now += sim.Microsecond
	}
	after := d.Migrator().Stats()
	if after.WriteConflicts <= before.WriteConflicts {
		t.Fatal("no write conflicts detected during migration")
	}
}

func TestAbortAndRequeue(t *testing.T) {
	d, hpa, start := migSetup(t)
	// Enough conflicting writes must eventually trip aborts, and with the
	// retry limit of 3, requeues.
	now := start + 50*sim.Microsecond
	for i := 0; i < 2000; i++ {
		if _, err := d.Access(hpa+dram.HPA((i%1024)*64), true, now); err != nil {
			t.Fatal(err)
		}
		now += 2 * sim.Microsecond
	}
	st := d.Migrator().Stats()
	if st.Aborts == 0 {
		t.Fatal("no aborts despite sustained write conflicts")
	}
	if st.Requeues == 0 {
		t.Fatalf("no requeues after %d aborts (limit %d)", st.Aborts, d.Config().MigrationRetryLimit)
	}
}

func TestReadsNeverConflict(t *testing.T) {
	d, hpa, start := migSetup(t)
	before := d.Migrator().Stats()
	now := start + 10*sim.Microsecond
	for i := 0; i < 100; i++ {
		if _, err := d.Access(hpa+dram.HPA(i*64), false, now); err != nil {
			t.Fatal(err)
		}
		now += sim.Microsecond
	}
	after := d.Migrator().Stats()
	if after.WriteConflicts != before.WriteConflicts {
		t.Fatal("reads counted as write conflicts")
	}
	if after.Aborts != before.Aborts {
		t.Fatal("reads caused aborts")
	}
}

func TestRoutedToNewAfterCopyCompletes(t *testing.T) {
	d, hpa, _ := migSetup(t)
	// Locate the in-flight window of hpa's segment and write inside the
	// completion-bit span: the copy is done but the mapping update has not
	// retired, so the write must be routed to the new DSN (§4.2).
	hsn := d.codec.HostSegmentOf(hpa)
	dst, _ := d.segMap.get(hsn)
	mm := (*migrator)(d.Migrator())
	var w *inflight
	for _, ws := range mm.windows {
		for _, cand := range ws {
			if cand.dst == dst {
				w = cand
			}
		}
	}
	if w == nil {
		t.Fatal("no in-flight window for the migrated segment")
	}
	now := w.start + sim.Time(float64(w.dur)*(copyFraction+0.05))
	if _, err := d.Access(hpa, true, now); err != nil {
		t.Fatal(err)
	}
	st := d.Migrator().Stats()
	if st.RoutedToNew != 1 {
		t.Fatalf("routed-to-new = %d, want 1", st.RoutedToNew)
	}
	if st.Aborts != 0 {
		t.Fatalf("completion-bit write caused %d aborts", st.Aborts)
	}
}

func TestMigrationsRetire(t *testing.T) {
	d, _, start := migSetup(t)
	m := d.Migrator()
	var endMax sim.Time
	for ch := 0; ch < d.Config().Geometry.Channels; ch++ {
		if m.BusyUntil(ch) > endMax {
			endMax = m.BusyUntil(ch)
		}
	}
	d.Tick(endMax + 1)
	if m.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after all windows ended", m.Outstanding())
	}
	if got := m.Stats().Completed; got != m.Stats().Enqueued {
		t.Fatalf("completed %d != enqueued %d", got, m.Stats().Enqueued)
	}
	_ = start
}

func TestMigrationSerializedPerChannel(t *testing.T) {
	// Total busy time on a channel must equal the sum of durations
	// (sequential issue), and windows must not overlap.
	d, _, _ := migSetup(t)
	mm := (*migrator)(d.Migrator())
	for ch, ws := range mm.windows {
		for i := 1; i < len(ws); i++ {
			if ws[i].start < ws[i-1].end {
				t.Fatalf("channel %d windows overlap: %+v then %+v", ch, ws[i-1], ws[i])
			}
		}
	}
}

func TestProgressAt(t *testing.T) {
	w := inflight{start: 100, end: 200, dur: 100}
	if w.progressAt(50) != 0 {
		t.Error("progress before start")
	}
	// The copy occupies copyFraction of the window; at the window midpoint
	// the copy is 50/(100*0.9) done.
	if got, want := w.progressAt(150), 50.0/90.0; got != want {
		t.Errorf("progress at midpoint = %v, want %v", got, want)
	}
	// Past the copy span, the completion bit is set.
	if w.progressAt(195) != 1 {
		t.Error("completion-bit span should report progress 1")
	}
	if w.progressAt(250) != 1 {
		t.Error("progress after end")
	}
}
