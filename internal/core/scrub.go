package core

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// Scrubber is a patrol scrubber: a background walker that sweeps the
// device's segments at a bounded rate (like DRAM patrol scrub, it uses
// idle cycles), verifying mapping-metadata integrity as it goes and
// discovering latent media errors. Errors are reported through the device's
// fault path (dram.Device.ScrubSegment → FaultHook), which feeds the
// HealthMonitor's storm detector; ranks whose accumulated error counts cross
// a threshold are retirement candidates (see RetireRank) — the reliability
// loop the paper's conclusion sketches.
//
// Ranks in MPSM hold no data and are skipped; ranks in self-refresh retain
// data but scrubbing them would wake them, so they are skipped too and
// revisited once active.
type Scrubber struct {
	d      *DTL
	cursor dram.DSN

	scrubbed int64
	sweeps   int64
	skipped  int64
}

// Scrubber returns the device's patrol scrubber (one per DTL).
func (d *DTL) Scrubber() *Scrubber {
	if d.scrub == nil {
		d.scrub = &Scrubber{d: d}
	}
	return d.scrub
}

// InjectErrors plants n latent correctable errors on a physical segment; the
// next patrol pass over it will discover and report them through the device
// fault path. It rejects out-of-range segments and non-positive counts.
// (Test/fault-injection hook standing in for real media wear.)
func (s *Scrubber) InjectErrors(dsn dram.DSN, n int) error {
	if err := s.d.dev.SeedLatentErrors(dsn, n); err != nil {
		return fmt.Errorf("core: inject: %w", err)
	}
	return nil
}

// Run advances the patrol by up to budget segments at virtual time now,
// verifying metadata consistency for each visited segment. It returns the
// number of segments actually scrubbed and the first inconsistency found
// (nil when the metadata is sound).
func (s *Scrubber) Run(now sim.Time, budget int) (int, error) {
	d := s.d
	g := d.cfg.Geometry
	total := g.TotalSegments()
	if budget <= 0 {
		return 0, nil
	}
	done := 0
	for i := 0; i < budget; i++ {
		dsn := s.cursor
		s.cursor++
		if int64(s.cursor) >= total {
			s.cursor = 0
			s.sweeps++
		}

		l := d.codec.DecodeDSN(dsn)
		id := dram.RankID{Channel: l.Channel, Rank: l.Rank}
		gr := d.codec.GlobalRank(l.Channel, l.Rank)
		if d.retired[gr] || d.dev.State(id) != dram.Standby {
			s.skipped++
			continue
		}

		// Metadata integrity: the reverse mapping and the segment mapping
		// table must agree.
		if hsn := d.revMap[dsn]; hsn != dsnFree {
			mapped, ok := d.segMap.get(hsn)
			if !ok || mapped != dsn {
				return done, fmt.Errorf("core: scrub found broken mapping at dsn %d (hsn %d -> %v)",
					dsn, hsn, mapped)
			}
		}

		// The scrub read discovers any latent media errors; the device
		// reports them through the fault hook to the health monitor.
		d.dev.ScrubSegment(dsn, now)
		s.scrubbed++
		done++
	}
	if done > 0 {
		d.tracer.Scrub(now, int64(done))
	}
	return done, nil
}

// ErrorCount reports accumulated correctable media errors for a rank, as
// counted by the device's ECC path (both scrub-discovered and in-band).
func (s *Scrubber) ErrorCount(id dram.RankID) int64 {
	return s.d.dev.CorrectableCount(id)
}

// RanksOverThreshold lists ranks whose accumulated error count reached the
// threshold — retirement candidates, in (rank, channel) order.
func (s *Scrubber) RanksOverThreshold(threshold int64) []dram.RankID {
	var out []dram.RankID
	g := s.d.cfg.Geometry
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		for ch := 0; ch < g.Channels; ch++ {
			id := dram.RankID{Channel: ch, Rank: rk}
			if s.d.dev.CorrectableCount(id) >= threshold {
				out = append(out, id)
			}
		}
	}
	return out
}

// Stats reports patrol progress.
func (s *Scrubber) Stats() (scrubbed, skipped, sweeps int64) {
	return s.scrubbed, s.skipped, s.sweeps
}
