package core

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/telemetry"
)

func TestStatsIsThinViewOverRegistry(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 128*dram.MiB, 0)
	mustDealloc(t, d, 1, 1000)

	st := d.Stats()
	reg := d.Registry()
	checks := map[string]int64{
		"core.powerdown.events":            st.PowerDownEvents,
		"core.migration.segments_migrated": st.SegmentsMigrated,
		"core.migration.bytes":             st.BytesMigrated,
		"core.accesses":                    st.Accesses,
	}
	for name, want := range checks {
		got, ok := reg.Value(name)
		if !ok {
			t.Errorf("registry missing %q", name)
			continue
		}
		if int64(got) != want {
			t.Errorf("%s = %v in registry, %d via Stats()", name, got, want)
		}
	}
}

func TestStartTraceRecordsPowerDownTimeline(t *testing.T) {
	d := newTestDTL(t)
	tr := d.StartTrace(0, 0)
	if d.Tracer() != tr {
		t.Fatal("StartTrace did not attach the tracer")
	}

	mustAlloc(t, d, 1, 0, 128*dram.MiB, 0)
	mustDealloc(t, d, 1, 1000)
	tr.Finish(10_000)

	g := d.Config().Geometry
	perRank := make(map[int]int64)
	var sawMPSM bool
	for _, s := range tr.PowerSpans() {
		perRank[s.Rank] += int64(s.Duration())
		if s.State == int(dram.MPSM) {
			sawMPSM = true
		}
	}
	for rank := 0; rank < g.TotalRanks(); rank++ {
		if perRank[rank] != 10_000 {
			t.Fatalf("rank %d spans sum to %d, want 10000", rank, perRank[rank])
		}
	}
	if !sawMPSM {
		t.Fatal("power-down left no MPSM span in the trace")
	}

	var sawMigration bool
	for _, ev := range tr.Events() {
		if ev.Kind == telemetry.EvMigration && ev.Reason == "powerdown-drain" {
			sawMigration = true
		}
	}
	if d.Stats().SegmentsMigrated > 0 && !sawMigration {
		t.Fatal("segments migrated but no tagged migration event traced")
	}
}

func TestStartTraceSeedsMidRunStates(t *testing.T) {
	d := newTestDTL(t)
	// Power ranks down before tracing starts; the fresh tracer must begin
	// those ranks in MPSM, not standby.
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	mustDealloc(t, d, 1, 0)
	down := d.Device().RanksIn(dram.MPSM)
	if len(down) == 0 {
		t.Fatal("setup: no ranks powered down")
	}

	tr := d.StartTrace(0, 5000)
	tr.Finish(6000)
	res := tr.Residency(d.codec.GlobalRank(down[0].Channel, down[0].Rank))
	if res[int(dram.MPSM)] != 1000 {
		t.Fatalf("mid-run MPSM rank residency = %v, want full 1000 in MPSM", res)
	}
}

func TestAttachTracerNilDetaches(t *testing.T) {
	d := newTestDTL(t)
	tr := d.StartTrace(0, 0)
	d.AttachTracer(nil)
	if d.Tracer() != nil {
		t.Fatal("tracer still attached")
	}
	mustAlloc(t, d, 1, 0, 128*dram.MiB, 0)
	mustDealloc(t, d, 1, 1000)
	if len(tr.PowerSpans()) != 0 {
		t.Fatal("detached tracer still received transitions")
	}
}
