package core

import (
	"errors"
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

func TestRetireEmptyRank(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	// Retire a rank with no live data (rank 3 was powered down at alloc).
	id := dram.RankID{Channel: 0, Rank: 3}
	if err := d.RetireRank(id, 1000); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := d.RetiredRanks(); len(got) != 1 || got[0] != id {
		t.Fatalf("retired = %v", got)
	}
	if d.dev.State(id) != dram.MPSM {
		t.Fatal("retired rank not powered off")
	}
	want := d.Config().Geometry.TotalBytes() - d.Config().Geometry.RankBytes
	if d.UsableBytes() != want {
		t.Fatalf("usable = %d, want %d", d.UsableBytes(), want)
	}
	if d.Stats().RanksRetired != 1 {
		t.Fatal("retirement not counted")
	}
}

func TestRetireRankWithLiveDataMigrates(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	a, _ := d.VMAddresses(1)
	// VM1 sits in the first active rank of each channel; find it and
	// retire it on channel 0.
	var victim dram.RankID
	found := false
	for gr, n := range d.allocated {
		if n > 0 {
			ch, rk := d.codec.SplitGlobalRank(gr)
			if ch == 0 {
				victim = dram.RankID{Channel: ch, Rank: rk}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no live rank found")
	}
	before := d.Stats().SegmentsMigrated
	if err := d.RetireRank(victim, 1000); err != nil {
		t.Fatal(err)
	}
	if d.Stats().SegmentsMigrated == before {
		t.Fatal("no segments migrated off the retiring rank")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// VM1 must remain fully accessible.
	now := sim.Time(2000)
	for _, base := range a {
		if _, err := d.Access(base, false, now); err != nil {
			t.Fatalf("access after retirement: %v", err)
		}
		now += 1000
	}
}

func TestRetireDoubleFails(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	id := dram.RankID{Channel: 1, Rank: 2}
	if err := d.RetireRank(id, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RetireRank(id, 0); err == nil {
		t.Fatal("double retirement accepted")
	}
}

func TestRetireOutOfRange(t *testing.T) {
	d := newTestDTL(t)
	if err := d.RetireRank(dram.RankID{Channel: 9, Rank: 0}, 0); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestRetireCapacityExhaustion(t *testing.T) {
	d := newTestDTL(t)
	// Fill the entire device, then try to retire a live rank: nowhere to
	// drain to.
	mustAlloc(t, d, 1, 0, d.Config().Geometry.TotalBytes(), 0)
	err := d.RetireRank(dram.RankID{Channel: 0, Rank: 0}, 1000)
	if !errors.Is(err, ErrRetireCapacity) {
		t.Fatalf("err = %v, want ErrRetireCapacity", err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetireWakesGroupsWhenNeeded(t *testing.T) {
	d := newTestDTL(t)
	// One rank group's worth allocated: other groups are MPSM. Retiring a
	// live rank requires waking capacity.
	mustAlloc(t, d, 1, 0, 256*dram.MiB, 0)
	var victim dram.RankID
	for gr, n := range d.allocated {
		if n > 0 {
			ch, rk := d.codec.SplitGlobalRank(gr)
			if ch == 0 {
				victim = dram.RankID{Channel: ch, Rank: rk}
				break
			}
		}
	}
	if err := d.RetireRank(victim, 1000); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().ReactivateEvents == 0 {
		t.Fatal("retirement should have reactivated a group for drain capacity")
	}
}

func TestAllocationAvoidsRetiredRanks(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	for ch := 0; ch < 4; ch++ {
		if err := d.RetireRank(dram.RankID{Channel: ch, Rank: 3}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Allocate nearly everything that remains; no segment may land on the
	// retired rank.
	mustAlloc(t, d, 2, 0, 512*dram.MiB, 1000)
	for dsn, hsn := range d.revMap {
		if hsn == dsnFree {
			continue
		}
		l := d.codec.DecodeDSN(dram.DSN(dsn))
		if l.Rank == 3 {
			t.Fatalf("live segment on retired rank: dsn %d", dsn)
		}
	}
	// Requesting more than the surviving capacity must fail cleanly.
	if _, err := d.AllocateVM(3, 0, 300*dram.MiB, 2000); err == nil {
		t.Fatal("allocation beyond usable capacity accepted")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetireInteractsWithHotness(t *testing.T) {
	cfg := testConfig()
	cfg.ProfilingWindow = 10 * sim.Microsecond
	cfg.ProfilingThreshold = 100 * sim.Microsecond
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustAlloc(t, d, 1, 0, 512*dram.MiB, 0)
	d.Hotness().Enable(0)
	a, _ := d.VMAddresses(1)
	now := driveAccesses(t, d, a[:4], 2000, 0, 500)
	d.Tick(now + 200*sim.Microsecond)
	// Retire whatever rank currently holds the most data on channel 0.
	var victim dram.RankID
	var most int64 = -1
	for rk := 0; rk < 4; rk++ {
		gr := d.codec.GlobalRank(0, rk)
		if d.allocated[gr] > most {
			most = d.allocated[gr]
			victim = dram.RankID{Channel: 0, Rank: rk}
		}
	}
	if err := d.RetireRank(victim, now+300*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The engine keeps running without touching the retired rank.
	driveAccesses(t, d, a[:4], 1000, now+400*sim.Microsecond, 500)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
