package core

import (
	"math/rand"
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

func TestPowerDownTriggersOnDealloc(t *testing.T) {
	d := newTestDTL(t)
	// VM1 fills one rank group; VM2 straddles two. Freeing VM2 releases a
	// rank group's worth of capacity, which must power down.
	mustAlloc(t, d, 1, 0, 128*dram.MiB, 0)
	mustAlloc(t, d, 2, 0, 256*dram.MiB, 0)
	if d.PoweredDownGroups() == 0 {
		t.Fatal("device with unused rank groups should have powered some down at allocation time")
	}
	before := d.PoweredDownGroups()
	mustDealloc(t, d, 2, 1000)
	if d.PoweredDownGroups() <= before {
		t.Fatalf("power-down groups %d after dealloc, want > %d", d.PoweredDownGroups(), before)
	}
	if d.Stats().PowerDownEvents == 0 {
		t.Fatal("no power-down events recorded")
	}
}

func TestPowerDownOnIdleDeviceKeepsOneGroup(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	mustDealloc(t, d, 1, 0)
	// Everything free: all but one rank group can power down.
	if got, want := d.ActiveRanksPerChannel(), 1; got != want {
		t.Fatalf("active ranks per channel = %d, want %d", got, want)
	}
	if d.PoweredDownGroups() != 3 {
		t.Fatalf("powered-down groups = %d, want 3", d.PoweredDownGroups())
	}
}

func TestPowerDownSelectsLeastUtilizedRank(t *testing.T) {
	d := newTestDTL(t)
	// VM1 fills one full rank group; VM2 takes a sliver that must land in
	// a different (reactivated) rank.
	mustAlloc(t, d, 1, 0, 256*dram.MiB, 0)
	mustAlloc(t, d, 2, 0, 16*dram.MiB, 0)
	mustDealloc(t, d, 2, 1000)
	// The fully-utilized rank group must remain standby; the emptied one
	// must be chosen as the victim, leaving one active rank per channel.
	for ch := 0; ch < 4; ch++ {
		if d.dev.State(dram.RankID{Channel: ch, Rank: 0}) != dram.Standby {
			t.Fatalf("fully-utilized rank 0 of channel %d not standby", ch)
		}
	}
	if d.ActiveRanksPerChannel() != 1 {
		t.Fatalf("active ranks = %d, want 1", d.ActiveRanksPerChannel())
	}
}

func TestDrainMigratesLiveSegments(t *testing.T) {
	// Recreate the Figure 7 walkthrough: after VM2's deallocation both
	// remaining ranks hold a small live VM each, so powering one down
	// requires draining its live segments into the other.
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)  // small VM in the first rank
	mustAlloc(t, d, 2, 0, 480*dram.MiB, 0) // spans two ranks per channel
	mustAlloc(t, d, 3, 0, 16*dram.MiB, 0)  // small VM in the second rank
	mustDealloc(t, d, 2, 1000)
	if d.Stats().SegmentsMigrated == 0 {
		t.Fatal("no segments migrated during consolidation")
	}
	if d.ActiveRanksPerChannel() != 1 {
		t.Fatalf("active ranks = %d, want 1", d.ActiveRanksPerChannel())
	}
	// The two surviving VMs must still be fully accessible.
	now := sim.Time(2000)
	for _, vm := range []VMID{1, 3} {
		addrs, err := d.VMAddresses(vm)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range addrs {
			if _, err := d.Access(base, false, now); err != nil {
				t.Fatalf("VM%d access after drain: %v", vm, err)
			}
			now += 1000
		}
	}
}

func TestReactivationOnPressure(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	mustDealloc(t, d, 1, 0)
	if d.PoweredDownGroups() != 3 {
		t.Fatalf("setup: %d groups powered down", d.PoweredDownGroups())
	}
	// Allocate more than one rank group's capacity: must reactivate.
	a := mustAlloc(t, d, 2, 0, 512*dram.MiB, 1000)
	if a.Reactivated == 0 {
		t.Fatal("large allocation did not reactivate any rank group")
	}
	if d.Stats().ReactivateEvents == 0 {
		t.Fatal("no reactivation events recorded")
	}
	if d.AllocatedBytes() != 512*dram.MiB {
		t.Fatalf("allocated = %d", d.AllocatedBytes())
	}
}

func TestMPSMRanksNeverHoldLiveData(t *testing.T) {
	// Randomized workload: alternating allocs/deallocs with invariant
	// checks; CheckInvariants covers the MPSM-safety property.
	d := newTestDTL(t)
	rng := rand.New(rand.NewSource(4))
	live := map[VMID]bool{}
	nextID := VMID(1)
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		now += 1000
		if len(live) == 0 || rng.Intn(2) == 0 {
			sz := int64(rng.Intn(8)+1) * 16 * dram.MiB
			if _, err := d.AllocateVM(nextID, HostID(rng.Intn(4)), sz, now); err == nil {
				live[nextID] = true
			}
			nextID++
		} else {
			var victim VMID
			for id := range live {
				victim = id
				break
			}
			if err := d.DeallocateVM(victim, now); err != nil {
				t.Fatalf("dealloc %d: %v", victim, err)
			}
			delete(live, victim)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestVirtualRankGroupsMayDifferPerChannel(t *testing.T) {
	// After hotness migrations the idle rank index can differ per channel;
	// power-down must still form a virtual group (§4.3). We emulate the
	// asymmetry by direct drain bookkeeping: allocate, then verify groups
	// recorded by power-down are per-channel selections.
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 64*dram.MiB, 0)
	mustDealloc(t, d, 1, 0)
	if d.PoweredDownGroups() == 0 {
		t.Fatal("no groups powered down")
	}
	for _, group := range d.poweredDown {
		if len(group) != d.Config().Geometry.Channels {
			t.Fatalf("virtual group covers %d channels", len(group))
		}
		seen := map[int]bool{}
		for _, id := range group {
			if seen[id.Channel] {
				t.Fatalf("duplicate channel in group: %v", group)
			}
			seen[id.Channel] = true
		}
	}
}

func TestPowerDownReducesBackgroundPower(t *testing.T) {
	d := newTestDTL(t)
	baseline := d.dev.BackgroundPowerNow()
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	mustDealloc(t, d, 1, 0)
	after := d.dev.BackgroundPowerNow()
	if after >= baseline {
		t.Fatalf("background power %v not reduced from %v", after, baseline)
	}
	// 3 groups x 4 ranks at 0.068 vs 1.0.
	want := baseline - 12*(1.0-0.068)
	if diff := after - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("background power %v, want %v", after, want)
	}
}

func TestMigrationChargedToMigrator(t *testing.T) {
	d := newTestDTL(t)
	mustAlloc(t, d, 1, 0, 16*dram.MiB, 0)
	mustAlloc(t, d, 2, 0, 480*dram.MiB, 0)
	mustAlloc(t, d, 3, 0, 16*dram.MiB, 0)
	mustDealloc(t, d, 2, 1000)
	ms := d.Migrator().Stats()
	if ms.Enqueued == 0 || ms.BytesQueued == 0 {
		t.Fatalf("migrator stats = %+v", ms)
	}
	if d.Stats().BytesMigrated != ms.BytesQueued {
		t.Fatalf("bytes migrated %d != queued %d", d.Stats().BytesMigrated, ms.BytesQueued)
	}
	if d.Migrator().TotalBusyNs() <= 0 {
		t.Fatal("no migration bus time charged")
	}
}
