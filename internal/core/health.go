package core

import (
	"errors"

	"dtl/internal/dram"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// HealthMonitor closes the reliability loop the paper's conclusion sketches:
// it consumes the device's ECC/fault telemetry (dram.FaultHook), applies a
// per-rank leaky-bucket storm detector, and automatically drives RetireRank
// when a rank degrades — with retry/backoff when the surviving capacity
// cannot absorb the drain yet, so ErrRetireCapacity becomes a deferred
// retirement instead of a dead end.
//
// Fault hooks fire synchronously from the device (possibly mid-access), so
// the hook path only classifies the event and enqueues work; the actual
// retirement runs from process(), called on DTL.Tick and after deallocation
// (when freed capacity may unblock a deferred retirement).
type HealthMonitor struct {
	d   *DTL
	cfg HealthConfig

	// bucket is the leaky-bucket fill level per global rank; lastLeak is the
	// last time the bucket was drained (lazy leak, applied on arrival).
	bucket   []float64
	lastLeak []sim.Time
	// wakeFaults counts abnormal self-refresh exits per global rank.
	wakeFaults []int64

	queue  []retireRequest
	queued map[int]bool // global ranks with a pending retirement

	storms      *telemetry.Counter
	autoRetires *telemetry.Counter
	deferred    *telemetry.Counter
	retries     *telemetry.Counter
	abandoned   *telemetry.Counter
	faultEvents *telemetry.Counter
}

// retireRequest is one pending automatic retirement.
type retireRequest struct {
	gr       int
	cause    string
	attempts int
	backoff  sim.Time
	nextTry  sim.Time
}

// HealthConfig tunes the storm detector and retry policy.
type HealthConfig struct {
	// StormThreshold is the leaky-bucket level (correctable errors) at which
	// a rank is declared storming and queued for retirement.
	StormThreshold float64
	// LeakPerSecond is the bucket drain rate: sustained error rates below it
	// never trip the detector.
	LeakPerSecond float64
	// WakeFaultThreshold is how many abnormal self-refresh exits a rank may
	// take before being queued for retirement.
	WakeFaultThreshold int64
	// RetryBackoff is the initial delay before re-attempting a retirement
	// that failed for lack of capacity; it doubles per attempt up to
	// RetryBackoffMax.
	RetryBackoff    sim.Time
	RetryBackoffMax sim.Time
}

// DefaultHealthConfig returns production-shaped defaults: a rank must burst
// well past the background DDR4 correctable-error rate to storm, and
// deferred retirements retry from 10 ms up to 5 s.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		StormThreshold:     64,
		LeakPerSecond:      16,
		WakeFaultThreshold: 4,
		RetryBackoff:       10 * sim.Millisecond,
		RetryBackoffMax:    5 * sim.Second,
	}
}

// newHealthMonitor wires the monitor into the device's fault hook.
func newHealthMonitor(d *DTL, cfg HealthConfig) *HealthMonitor {
	n := d.cfg.Geometry.TotalRanks()
	h := &HealthMonitor{
		d:           d,
		cfg:         cfg,
		bucket:      make([]float64, n),
		lastLeak:    make([]sim.Time, n),
		wakeFaults:  make([]int64, n),
		queued:      make(map[int]bool),
		storms:      d.reg.Counter("core.health.storms"),
		autoRetires: d.reg.Counter("core.health.auto_retires"),
		deferred:    d.reg.Counter("core.health.retires_deferred"),
		retries:     d.reg.Counter("core.health.retire_retries"),
		abandoned:   d.reg.Counter("core.health.retires_abandoned"),
		faultEvents: d.reg.Counter("core.health.fault_events"),
	}
	d.dev.OnFault(h.onFault)
	d.reg.GaugeFunc("core.health.pending_retires", func() float64 {
		return float64(len(h.queue))
	})
	return h
}

// Health returns the DTL's health monitor.
func (d *DTL) Health() *HealthMonitor { return d.health }

// Config returns the monitor's effective configuration.
func (h *HealthMonitor) Config() HealthConfig { return h.cfg }

// SetConfig replaces the detector/retry tuning (tests, experiments).
func (h *HealthMonitor) SetConfig(cfg HealthConfig) { h.cfg = cfg }

// BucketLevel reports the storm detector's current fill for a rank, after
// applying the leak up to now.
func (h *HealthMonitor) BucketLevel(id dram.RankID, now sim.Time) float64 {
	gr := h.d.codec.GlobalRank(id.Channel, id.Rank)
	h.leak(gr, now)
	return h.bucket[gr]
}

// PendingRetires reports the queued-but-not-yet-applied retirements.
func (h *HealthMonitor) PendingRetires() int { return len(h.queue) }

// leak drains the rank's bucket for the time elapsed since the last update.
func (h *HealthMonitor) leak(gr int, now sim.Time) {
	if now <= h.lastLeak[gr] {
		return
	}
	drain := h.cfg.LeakPerSecond * float64(now-h.lastLeak[gr]) / float64(sim.Second)
	h.bucket[gr] -= drain
	if h.bucket[gr] < 0 {
		h.bucket[gr] = 0
	}
	h.lastLeak[gr] = now
}

// onFault is the device fault hook. It must not mutate mapping state: the
// device may raise faults synchronously from the middle of an access or a
// power transition, so all it does is classify, count and enqueue.
func (h *HealthMonitor) onFault(ev dram.FaultEvent) {
	gr := h.d.codec.GlobalRank(ev.Rank.Channel, ev.Rank.Rank)
	h.faultEvents.Inc()
	h.d.tracer.Fault(gr, ev.Kind.String(), int64(ev.Count), ev.At)

	if h.d.retired[gr] || h.queued[gr] {
		return
	}
	switch ev.Kind {
	case dram.FaultCorrectable:
		h.leak(gr, ev.At)
		h.bucket[gr] += float64(ev.Count)
		if h.bucket[gr] >= h.cfg.StormThreshold {
			h.storms.Inc()
			h.d.tracer.Storm(gr, int64(h.bucket[gr]), ev.At)
			h.enqueue(gr, "ecc-storm", ev.At)
		}
	case dram.FaultUncorrectable:
		h.enqueue(gr, "uncorrectable", ev.At)
	case dram.FaultWake:
		h.wakeFaults[gr]++
		if h.wakeFaults[gr] >= h.cfg.WakeFaultThreshold {
			h.enqueue(gr, "wake-fault", ev.At)
		}
	case dram.FaultRankFailure:
		h.enqueue(gr, "rank-failure", ev.At)
	}
}

func (h *HealthMonitor) enqueue(gr int, cause string, now sim.Time) {
	h.queued[gr] = true
	h.queue = append(h.queue, retireRequest{
		gr: gr, cause: cause, backoff: h.cfg.RetryBackoff, nextTry: now,
	})
}

// process drains the retirement queue: every due request attempts the drain
// and retire; a capacity shortfall re-queues it with doubled backoff. It is
// called from DTL.Tick and after DeallocateVM (freed capacity may unblock a
// deferred retirement immediately).
func (h *HealthMonitor) process(now sim.Time) {
	if len(h.queue) == 0 {
		return
	}
	// Retirement itself can raise faults (a wake-faulted rank exiting
	// self-refresh for its drain), which append to h.queue from the hook;
	// swap the queue out so this pass iterates a stable snapshot.
	pending := h.queue
	h.queue = nil
	for _, req := range pending {
		if req.nextTry > now {
			h.queue = append(h.queue, req)
			continue
		}
		if h.d.retired[req.gr] {
			delete(h.queued, req.gr)
			continue
		}
		ch, rk := h.d.codec.SplitGlobalRank(req.gr)
		id := dram.RankID{Channel: ch, Rank: rk}
		if req.attempts > 0 {
			h.retries.Inc()
		}
		err := h.d.retireRank(id, now, req.cause)
		switch {
		case err == nil:
			h.autoRetires.Inc()
			delete(h.queued, req.gr)
		case errors.Is(err, ErrRetireCapacity):
			req.attempts++
			h.deferred.Inc()
			h.d.tracer.RetireDeferred(req.gr, req.cause, req.backoff, now)
			// The backoff is time the degraded rank keeps serving because
			// retirement could not proceed — charged to the fault path.
			h.d.chargeSpan(telemetry.SystemVM, req.gr, telemetry.CauseFaultRetry,
				now, now+req.backoff, 0)
			req.nextTry = now + req.backoff
			if req.backoff < h.cfg.RetryBackoffMax {
				req.backoff *= 2
				if req.backoff > h.cfg.RetryBackoffMax {
					req.backoff = h.cfg.RetryBackoffMax
				}
			}
			h.queue = append(h.queue, req)
		case errors.Is(err, ErrLastRank):
			// The channel has nowhere to put the data; the rank must keep
			// serving (degraded). Drop the request — re-raised faults will
			// not re-queue it once abandoned either, because the bucket
			// stays saturated only while errors keep arriving.
			h.abandoned.Inc()
			delete(h.queued, req.gr)
		default:
			// Structural errors (out-of-range, already retired) are bugs in
			// the enqueue path; surface them loudly.
			panic("core: health retirement failed: " + err.Error())
		}
	}
}
