package trace

import "testing"

func TestDriftValidation(t *testing.T) {
	p, _ := ProfileByName("web-search")
	p.DriftPeriod = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative drift period accepted")
	}
	p, _ = ProfileByName("web-search")
	p.DriftFraction = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("drift fraction > 1 accepted")
	}
}

func TestNoDriftKeepsHotSetStable(t *testing.T) {
	p, _ := ProfileByName("data-caching")
	p.FootprintBytes = 256 << 20
	g := MustGenerator(p, 5)
	seen1 := hotSegmentsTouched(g, 50_000)
	seen2 := hotSegmentsTouched(g, 50_000)
	overlap := overlapFraction(seen1, seen2)
	if overlap < 0.5 {
		t.Fatalf("static hot set overlap %.2f, want high", overlap)
	}
}

func TestDriftRotatesHotSet(t *testing.T) {
	p, _ := ProfileByName("data-caching")
	p.FootprintBytes = 256 << 20
	p.DriftPeriod = 10_000
	p.DriftFraction = 0.5
	g := MustGenerator(p, 5)
	seen1 := hotSegmentsTouched(g, 50_000)
	// Burn several drift periods.
	for i := 0; i < 200_000; i++ {
		g.Next()
	}
	seen2 := hotSegmentsTouched(g, 50_000)
	drifted := overlapFraction(seen1, seen2)

	pStatic := p
	pStatic.DriftPeriod = 0
	gs := MustGenerator(pStatic, 5)
	s1 := hotSegmentsTouched(gs, 50_000)
	for i := 0; i < 200_000; i++ {
		gs.Next()
	}
	s2 := hotSegmentsTouched(gs, 50_000)
	static := overlapFraction(s1, s2)

	if drifted >= static {
		t.Fatalf("drifted overlap %.2f not below static %.2f", drifted, static)
	}
}

// hotSegmentsTouched returns the set of segments receiving at least 1% of
// the window's accesses (the hot head).
func hotSegmentsTouched(g *Generator, n int) map[int64]bool {
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		a := g.Next()
		counts[a.Addr/SegmentBytes]++
	}
	out := map[int64]bool{}
	for seg, c := range counts {
		if c >= n/100 {
			out[seg] = true
		}
	}
	return out
}

func overlapFraction(a, b map[int64]bool) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for seg := range a {
		if b[seg] {
			n++
		}
	}
	return float64(n) / float64(len(a))
}
