package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyGeneratorWellFormed: any valid profile yields line-aligned,
// in-footprint addresses with a strictly nondecreasing instruction clock.
func TestPropertyGeneratorWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := CloudSuite()[int(uint64(seed)%10)]
		base.FootprintBytes = (64 + rng.Int63n(512)) << 20
		base.HotFraction = 0.05 + rng.Float64()*0.4
		base.HotBias = rng.Float64()
		base.UntouchedFraction = rng.Float64() * 0.9
		if err := base.Validate(); err != nil {
			t.Logf("seed %d: generated invalid profile: %v", seed, err)
			return false
		}
		g, err := NewGenerator(base, seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		var prevInstr int64
		for i := 0; i < 5000; i++ {
			a := g.Next()
			if a.Addr < 0 || a.Addr >= base.FootprintBytes || a.Addr%LineBytes != 0 {
				t.Logf("seed %d: bad address %d", seed, a.Addr)
				return false
			}
			if a.Instr < prevInstr {
				t.Logf("seed %d: instruction clock went backwards", seed)
				return false
			}
			prevInstr = a.Instr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUntouchedNeverAccessed: segments outside the touchable set
// receive zero accesses for any profile and seed.
func TestPropertyUntouchedNeverAccessed(t *testing.T) {
	f := func(seed int64) bool {
		p, _ := ProfileByName("data-caching")
		p.FootprintBytes = 256 << 20
		p.UntouchedFraction = 0.5
		g := MustGenerator(p, seed)

		touchable := map[int64]bool{}
		for _, s := range g.touchable {
			touchable[s] = true
		}
		for i := 0; i < 50_000; i++ {
			a := g.Next()
			if !touchable[a.Addr/SegmentBytes] {
				t.Logf("seed %d: untouched segment %d accessed", seed, a.Addr/SegmentBytes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMixedClockMonotonic: merged streams keep a nondecreasing
// instruction clock and stay within the combined footprint.
func TestPropertyMixedClockMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		ps := CloudSuite()[:4]
		for i := range ps {
			ps[i].FootprintBytes = 128 << 20
		}
		m := MustMixed(ps, seed)
		var prev int64
		for i := 0; i < 20_000; i++ {
			a := m.Next()
			if a.Instr < prev {
				return false
			}
			prev = a.Instr
			if a.Addr < 0 || a.Addr >= m.TotalFootprint() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
