package trace

import (
	"fmt"
	"math/rand"
)

// Mixed interleaves several generators into one merged post-cache stream,
// modeling multiple application copies (or VMs) sharing the device. Each
// component stream is placed at a distinct footprint base; components are
// drawn proportionally to their MAPKI (faster memory traffic appears more
// often per unit of instructions), which is how independently progressing
// applications merge in time.
type Mixed struct {
	gens   []*Generator
	bases  []int64
	rng    *rand.Rand
	weight []float64
	wsum   float64
	instr  int64
}

// NewMixed builds a mixed stream. Component i addresses
// [bases[i], bases[i]+footprint_i).
func NewMixed(profiles []Profile, seed int64) (*Mixed, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("trace: mixed stream needs at least one profile")
	}
	m := &Mixed{rng: rand.New(rand.NewSource(seed))}
	var base int64
	for i, p := range profiles {
		g, err := NewGenerator(p, seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		m.gens = append(m.gens, g)
		m.bases = append(m.bases, base)
		base += p.FootprintBytes
		m.weight = append(m.weight, p.MAPKI)
		m.wsum += p.MAPKI
	}
	return m, nil
}

// MustMixed is NewMixed that panics on error.
func MustMixed(profiles []Profile, seed int64) *Mixed {
	m, err := NewMixed(profiles, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// TotalFootprint reports the combined footprint of all components.
func (m *Mixed) TotalFootprint() int64 {
	last := len(m.gens) - 1
	return m.bases[last] + m.gens[last].Profile().FootprintBytes
}

// Components reports the number of merged streams.
func (m *Mixed) Components() int { return len(m.gens) }

// Next returns the next access of the merged stream. Addr is offset by the
// component's base; Instr is a merged virtual instruction clock advancing at
// the aggregate rate.
func (m *Mixed) Next() Access {
	i := m.pick()
	a := m.gens[i].Next()
	a.Addr += m.bases[i]
	// Aggregate instruction clock: accesses arrive at summed MAPKI.
	m.instr += int64(1000.0/m.wsum) + boolToI64(m.rng.Float64() < frac(1000.0/m.wsum))
	a.Instr = m.instr
	return a
}

func (m *Mixed) pick() int {
	x := m.rng.Float64() * m.wsum
	for i, w := range m.weight {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(m.weight) - 1
}

func frac(f float64) float64 { return f - float64(int64(f)) }

func boolToI64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// StrideBuckets are the Fig. 9 stride classes, upper bounds in bytes; the
// final class is ">= 4MB".
var StrideBuckets = []int64{
	4 << 10,  // < 4KB
	64 << 10, // < 64KB
	1 << 20,  // < 1MB
	4 << 20,  // < 4MB
}

// StrideBucketLabels renders the bucket names, aligned with the histogram
// returned by StrideDistribution (last entry is the >=4MB class).
func StrideBucketLabels() []string {
	return []string{"<4KB", "<64KB", "<1MB", "<4MB", ">=4MB"}
}

// StrideDistribution consumes n accesses from next and returns the fraction
// of consecutive-access strides falling into each Fig. 9 class.
func StrideDistribution(next func() Access, n int) []float64 {
	counts := make([]int64, len(StrideBuckets)+1)
	var prev int64
	havePrev := false
	for i := 0; i < n; i++ {
		a := next()
		if havePrev {
			d := a.Addr - prev
			if d < 0 {
				d = -d
			}
			idx := len(StrideBuckets)
			for bi, ub := range StrideBuckets {
				if d < ub {
					idx = bi
					break
				}
			}
			counts[idx]++
		}
		prev = a.Addr
		havePrev = true
	}
	total := int64(n - 1)
	out := make([]float64, len(counts))
	if total <= 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// ColdFraction consumes n accesses and classifies the footprint's segments
// of the given granularity as hot or cold: a segment is cold when its mean
// inter-access reuse distance exceeds threshold instructions. Segments of
// the footprint that are never touched within the window are cold by
// definition (their reuse distance exceeds any threshold), matching
// Fig. 10's ">10M memory instructions" criterion. It returns the cold
// fraction over all footprint segments.
func ColdFraction(next func() Access, n int, footprint, granularity int64, threshold int64) float64 {
	type segStat struct {
		last     int64
		gapSum   int64
		gapCount int64
	}
	stats := make(map[int64]*segStat)
	var lastInstr int64
	for i := 0; i < n; i++ {
		a := next()
		seg := a.Addr / granularity
		s, ok := stats[seg]
		if !ok {
			stats[seg] = &segStat{last: a.Instr}
		} else {
			s.gapSum += a.Instr - s.last
			s.gapCount++
			s.last = a.Instr
		}
		lastInstr = a.Instr
	}
	totalSegs := (footprint + granularity - 1) / granularity
	if totalSegs == 0 {
		return 0
	}
	cold := int(totalSegs) - len(stats) // never-touched segments
	for _, s := range stats {
		if s.gapCount == 0 {
			// Touched once and never again within the window: treat the
			// remaining window as its reuse distance.
			if lastInstr-s.last > threshold {
				cold++
			}
			continue
		}
		if s.gapSum/s.gapCount > threshold {
			cold++
		}
	}
	return float64(cold) / float64(totalSegs)
}
