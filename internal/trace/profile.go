// Package trace generates synthetic CloudSuite-like memory access traces.
//
// The paper's mechanisms consume only the statistics of the post-LLC access
// stream: memory accesses per kilo-instruction (Table 4), the access-stride
// distribution (Figure 9), and the hot/cold segment skew that determines
// reuse distance (Figure 10). Each Profile is calibrated to those published
// statistics; the generators are deterministic given a seed.
//
// Two layers are provided:
//
//   - Generator.Next returns post-cache accesses directly (used by the DTL
//     power simulations, where cache simulation would only rediscover the
//     Table 4 rates we calibrated to).
//   - Generator.NextRaw returns pre-cache accesses whose cache-filtered rate
//     reproduces the profile's MAPKI (used by the Table 4 and cache-path
//     experiments).
package trace

import (
	"fmt"
	"math/rand"
)

// Access is one generated memory access.
type Access struct {
	// Addr is the byte address relative to the workload's footprint base.
	Addr int64
	// Write marks store traffic.
	Write bool
	// Instr is the cumulative retired-instruction count at this access,
	// used for reuse-distance (Fig. 10) and replay-rate computations.
	Instr int64
}

// Profile describes one synthetic workload.
type Profile struct {
	// Name identifies the workload (CloudSuite benchmark name).
	Name string
	// MAPKI is the post-cache memory accesses per kilo-instruction target
	// (Table 4).
	MAPKI float64
	// FootprintBytes is the resident memory footprint addressed by the
	// generator. Experiments override it to match their allocation sizes.
	FootprintBytes int64
	// HotFraction is the fraction of 2 MB segments considered hot.
	HotFraction float64
	// HotBias is the probability that an access run lands in the hot set.
	HotBias float64
	// RunLength is the mean number of consecutive line accesses per run;
	// long runs model streaming workloads with narrow post-cache strides.
	RunLength float64
	// RunStride is the byte stride within a run (usually one cache line).
	RunStride int64
	// WriteFraction is the probability an access is a store.
	WriteFraction float64
	// UntouchedFraction is the share of the footprint that is allocated
	// but never accessed (ballooned/over-provisioned VM memory). These
	// segments are what hotness-aware self-refresh consolidates first.
	UntouchedFraction float64
	// DriftPeriod, when positive, rotates part of the hot set every that
	// many accesses, modeling the slow working-set churn the paper cites
	// ("data access patterns remain relatively stable for minutes to
	// hours"). Zero disables drift.
	DriftPeriod int
	// DriftFraction is the share of the hot set replaced per rotation.
	DriftFraction float64
}

// Validate checks profile parameters.
func (p Profile) Validate() error {
	switch {
	case p.MAPKI <= 0:
		return fmt.Errorf("trace: %s: MAPKI must be positive", p.Name)
	case p.FootprintBytes < SegmentBytes:
		return fmt.Errorf("trace: %s: footprint %d below one segment", p.Name, p.FootprintBytes)
	case p.HotFraction <= 0 || p.HotFraction > 1:
		return fmt.Errorf("trace: %s: hot fraction %f out of (0,1]", p.Name, p.HotFraction)
	case p.HotBias < 0 || p.HotBias > 1:
		return fmt.Errorf("trace: %s: hot bias %f out of [0,1]", p.Name, p.HotBias)
	case p.RunLength < 1:
		return fmt.Errorf("trace: %s: run length %f below 1", p.Name, p.RunLength)
	case p.RunStride <= 0:
		return fmt.Errorf("trace: %s: run stride %d must be positive", p.Name, p.RunStride)
	case p.WriteFraction < 0 || p.WriteFraction > 1:
		return fmt.Errorf("trace: %s: write fraction %f out of [0,1]", p.Name, p.WriteFraction)
	case p.UntouchedFraction < 0 || p.UntouchedFraction >= 1:
		return fmt.Errorf("trace: %s: untouched fraction %f out of [0,1)", p.Name, p.UntouchedFraction)
	case p.DriftPeriod < 0:
		return fmt.Errorf("trace: %s: drift period %d must be non-negative", p.Name, p.DriftPeriod)
	case p.DriftFraction < 0 || p.DriftFraction > 1:
		return fmt.Errorf("trace: %s: drift fraction %f out of [0,1]", p.Name, p.DriftFraction)
	}
	return nil
}

// SegmentBytes is the hot/cold bookkeeping granularity used by profiles
// (equal to the paper's default 2 MB translation segment).
const SegmentBytes = 2 << 20

// LineBytes is the access granularity.
const LineBytes = 64

// CloudSuite returns the ten calibrated workload profiles with the Table 4
// MAPKI values. Data-serving, Media-streaming and Web-serving carry long
// sequential runs (the three "narrow stride" applications of Fig. 9); the
// analytics workloads are run-poor and jump-dominated.
func CloudSuite() []Profile {
	mk := func(name string, mapki, hotFrac, hotBias, runLen float64) Profile {
		return Profile{
			Name:              name,
			MAPKI:             mapki,
			FootprintBytes:    2 << 30,
			HotFraction:       hotFrac,
			HotBias:           hotBias,
			RunLength:         runLen,
			RunStride:         LineBytes,
			WriteFraction:     0.3,
			UntouchedFraction: 0.3,
		}
	}
	return []Profile{
		mk("data-analytics", 1.9, 0.15, 0.95, 1.6),
		mk("data-caching", 1.5, 0.12, 0.96, 1.4),
		mk("data-serving", 4.2, 0.18, 0.94, 24),
		mk("django-workload", 0.8, 0.10, 0.96, 1.3),
		mk("fb-oss-performance", 3.6, 0.15, 0.95, 1.8),
		mk("graph-analytics", 6.5, 0.22, 0.92, 1.2),
		mk("in-memory-analytics", 2.5, 0.18, 0.94, 1.5),
		mk("media-streaming", 4.6, 0.15, 0.95, 48),
		mk("web-search", 0.7, 0.12, 0.96, 1.4),
		mk("web-serving", 0.7, 0.12, 0.95, 16),
	}
}

// ProfileByName returns the CloudSuite profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range CloudSuite() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}

// Generator produces a deterministic access stream for one profile.
// Not safe for concurrent use.
type Generator struct {
	p   Profile
	rng *rand.Rand

	segments    int64
	hotSegments []int64 // shuffled segment ids designated hot
	touchable   []int64 // segment ids that ever receive accesses

	instr      int64
	instrGap   float64 // instructions per post-cache access
	instrAcc   float64
	runLeft    int
	runAddr    int64
	rawHotBuf  int64 // size of the always-hit buffer for NextRaw
	driftCount int   // accesses since the last hot-set rotation

	// rawRefsPerKI is the pre-cache memory reference density.
	rawRefsPerKI float64
}

// NewGenerator builds a generator for p seeded with seed.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		p:            p,
		rng:          rand.New(rand.NewSource(seed)),
		segments:     p.FootprintBytes / SegmentBytes,
		instrGap:     1000.0 / p.MAPKI,
		rawRefsPerKI: 300,
		rawHotBuf:    16 << 10,
	}
	nHot := int64(float64(g.segments) * p.HotFraction)
	if nHot < 1 {
		nHot = 1
	}
	nTouch := int64(float64(g.segments) * (1 - p.UntouchedFraction))
	if nTouch < nHot {
		nTouch = nHot
	}
	// Scatter hot (and untouched) segments uniformly over the footprint so
	// that 4 MB bins mix hot and cold halves independently (the Fig. 10
	// effect) and untouched segments are not physically clustered.
	perm := g.rng.Perm(int(g.segments))
	g.hotSegments = make([]int64, nHot)
	for i := int64(0); i < nHot; i++ {
		g.hotSegments[i] = int64(perm[i])
	}
	g.touchable = make([]int64, nTouch)
	for i := int64(0); i < nTouch; i++ {
		g.touchable[i] = int64(perm[i])
	}
	return g, nil
}

// MustGenerator is NewGenerator that panics on error.
func MustGenerator(p Profile, seed int64) *Generator {
	g, err := NewGenerator(p, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Instr reports the cumulative instruction count so far.
func (g *Generator) Instr() int64 { return g.instr }

// pickSegment chooses the segment for a new run: hot-biased over the hot
// list with a concentrated working-set head (cloud services reuse a small
// set of segments intensely, which is what gives the paper's segment
// mapping cache its 85% L1 hit rate), uniform over the touchable footprint
// otherwise.
func (g *Generator) pickSegment() int64 {
	if g.rng.Float64() < g.p.HotBias {
		head := int64(48)
		if head > int64(len(g.hotSegments)) {
			head = int64(len(g.hotSegments))
		}
		if g.rng.Float64() < 0.6 {
			// Working-set head: the hottest few tens of segments.
			return g.hotSegments[g.rng.Int63n(head)]
		}
		// Quadratic skew over the full hot set approximates a zipf body.
		u := g.rng.Float64()
		idx := int64(u * u * float64(len(g.hotSegments)))
		if idx >= int64(len(g.hotSegments)) {
			idx = int64(len(g.hotSegments)) - 1
		}
		return g.hotSegments[idx]
	}
	// Cold traffic is itself skewed: most of the non-hot footprint is
	// touched during initialization and then essentially never again (the
	// bimodality behind the paper's Fig. 10 cold-segment shares), so the
	// deep tail of the touchable set receives a vanishing access rate.
	u := g.rng.Float64()
	idx := int64(u * u * u * float64(len(g.touchable)))
	if idx >= int64(len(g.touchable)) {
		idx = int64(len(g.touchable)) - 1
	}
	return g.touchable[idx]
}

func (g *Generator) startRun() {
	seg := g.pickSegment()
	// Geometric run length with the configured mean.
	n := 1
	pCont := 1 - 1/g.p.RunLength
	for g.rng.Float64() < pCont && n < 4096 {
		n++
	}
	g.runLeft = n
	maxOff := SegmentBytes - int64(n)*g.p.RunStride
	if maxOff < 1 {
		maxOff = 1
	}
	g.runAddr = seg*SegmentBytes + g.rng.Int63n(maxOff)
	g.runAddr &^= LineBytes - 1
}

// maybeDrift rotates part of the hot set when the drift period elapses:
// the dropped members are replaced with random touchable segments, so the
// previously-hot segments cool down and new ones heat up.
func (g *Generator) maybeDrift() {
	if g.p.DriftPeriod <= 0 {
		return
	}
	g.driftCount++
	if g.driftCount < g.p.DriftPeriod {
		return
	}
	g.driftCount = 0
	n := int(float64(len(g.hotSegments)) * g.p.DriftFraction)
	for i := 0; i < n; i++ {
		victim := g.rng.Intn(len(g.hotSegments))
		g.hotSegments[victim] = g.touchable[g.rng.Int63n(int64(len(g.touchable)))]
	}
}

// Next returns the next post-cache access.
func (g *Generator) Next() Access {
	g.maybeDrift()
	if g.runLeft == 0 {
		g.startRun()
	}
	addr := g.runAddr
	g.runAddr += g.p.RunStride
	g.runLeft--

	g.instrAcc += g.instrGap
	adv := int64(g.instrAcc)
	g.instrAcc -= float64(adv)
	g.instr += adv

	return Access{
		Addr:  addr,
		Write: g.rng.Float64() < g.p.WriteFraction,
		Instr: g.instr,
	}
}

// NextRaw returns the next pre-cache access. The stream mixes a small
// always-resident hot buffer (cache hits) with the post-cache pattern
// (cache misses) so that filtering through the Table 3 hierarchy yields
// approximately MAPKI post-cache accesses per kilo-instruction.
func (g *Generator) NextRaw() Access {
	g.instrAcc += 1000.0 / g.rawRefsPerKI
	adv := int64(g.instrAcc)
	g.instrAcc -= float64(adv)
	g.instr += adv

	// The hot-head pattern reuse absorbed by the hierarchy roughly cancels
	// the write-back inflation of dirty evictions under the Table 3
	// configuration, so the demand-miss fraction targets MAPKI directly.
	missFrac := g.p.MAPKI / g.rawRefsPerKI
	if g.rng.Float64() >= missFrac {
		// Cache-resident reference.
		return Access{
			Addr:  g.rng.Int63n(g.rawHotBuf) &^ (LineBytes - 1),
			Write: g.rng.Float64() < g.p.WriteFraction,
			Instr: g.instr,
		}
	}
	if g.runLeft == 0 {
		g.startRun()
	}
	addr := g.runAddr
	g.runAddr += g.p.RunStride
	g.runLeft--
	return Access{
		Addr:  addr,
		Write: g.rng.Float64() < g.p.WriteFraction,
		Instr: g.instr,
	}
}
