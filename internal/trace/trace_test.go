package trace

import (
	"math"
	"testing"

	"dtl/internal/cache"
)

func TestCloudSuiteProfilesValid(t *testing.T) {
	ps := CloudSuite()
	if len(ps) != 10 {
		t.Fatalf("profiles = %d, want 10", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestTable4MAPKIValues(t *testing.T) {
	want := map[string]float64{
		"data-analytics":      1.9,
		"data-caching":        1.5,
		"data-serving":        4.2,
		"django-workload":     0.8,
		"fb-oss-performance":  3.6,
		"graph-analytics":     6.5,
		"in-memory-analytics": 2.5,
		"media-streaming":     4.6,
		"web-search":          0.7,
		"web-serving":         0.7,
	}
	for name, m := range want {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("missing profile %s", name)
		}
		if p.MAPKI != m {
			t.Errorf("%s MAPKI = %v, want %v", name, p.MAPKI, m)
		}
	}
	if _, err := ProfileByName("no-such"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	base, _ := ProfileByName("web-search")
	mutations := []func(*Profile){
		func(p *Profile) { p.MAPKI = 0 },
		func(p *Profile) { p.FootprintBytes = 100 },
		func(p *Profile) { p.HotFraction = 0 },
		func(p *Profile) { p.HotFraction = 1.5 },
		func(p *Profile) { p.HotBias = -0.1 },
		func(p *Profile) { p.RunLength = 0.5 },
		func(p *Profile) { p.RunStride = 0 },
		func(p *Profile) { p.WriteFraction = 2 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ProfileByName("graph-analytics")
	g1 := MustGenerator(p, 42)
	g2 := MustGenerator(p, 42)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a, b)
		}
	}
	g3 := MustGenerator(p, 43)
	same := 0
	g4 := MustGenerator(p, 42)
	for i := 0; i < 1000; i++ {
		if g3.Next() == g4.Next() {
			same++
		}
	}
	if same > 500 {
		t.Fatalf("different seeds produced %d/1000 identical accesses", same)
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	p, _ := ProfileByName("data-serving")
	p.FootprintBytes = 256 << 20
	g := MustGenerator(p, 1)
	for i := 0; i < 100000; i++ {
		a := g.Next()
		if a.Addr < 0 || a.Addr >= p.FootprintBytes {
			t.Fatalf("address %d outside footprint %d", a.Addr, p.FootprintBytes)
		}
		if a.Addr%LineBytes != 0 {
			t.Fatalf("address %d not line aligned", a.Addr)
		}
	}
}

func TestInstructionRateMatchesMAPKI(t *testing.T) {
	for _, name := range []string{"web-search", "graph-analytics", "media-streaming"} {
		p, _ := ProfileByName(name)
		p.FootprintBytes = 512 << 20
		g := MustGenerator(p, 5)
		const n = 200000
		for i := 0; i < n; i++ {
			g.Next()
		}
		gotMAPKI := float64(n) / (float64(g.Instr()) / 1000.0)
		if math.Abs(gotMAPKI-p.MAPKI)/p.MAPKI > 0.02 {
			t.Errorf("%s: generated MAPKI %v, want %v", name, gotMAPKI, p.MAPKI)
		}
	}
}

func TestPostCacheMAPKIThroughCache(t *testing.T) {
	// NextRaw filtered through the Table 3 hierarchy should land near the
	// profile's target MAPKI (the Table 4 reproduction path).
	if testing.Short() {
		t.Skip("cache calibration is slow")
	}
	for _, name := range []string{"data-serving", "web-search"} {
		p, _ := ProfileByName(name)
		p.FootprintBytes = 1 << 30
		g := MustGenerator(p, 11)
		h := cache.MustTable3()
		var memAccesses int64
		const n = 2_000_000
		for i := 0; i < n; i++ {
			a := g.NextRaw()
			memAccesses += int64(len(h.Access(a.Addr, a.Write)))
		}
		mapki := float64(memAccesses) / (float64(g.Instr()) / 1000.0)
		if mapki < p.MAPKI*0.5 || mapki > p.MAPKI*2.0 {
			t.Errorf("%s: post-cache MAPKI %.2f, want within 2x of %.2f", name, mapki, p.MAPKI)
		}
	}
}

func TestStreamingProfileHasNarrowStrides(t *testing.T) {
	ms, _ := ProfileByName("media-streaming")
	ms.FootprintBytes = 512 << 20
	g := MustGenerator(ms, 3)
	dist := StrideDistribution(g.Next, 100000)
	if dist[0] < 0.5 {
		t.Errorf("media-streaming <4KB stride share = %.2f, want > 0.5", dist[0])
	}

	ga, _ := ProfileByName("graph-analytics")
	ga.FootprintBytes = 512 << 20
	g2 := MustGenerator(ga, 3)
	dist2 := StrideDistribution(g2.Next, 100000)
	last := len(dist2) - 1
	if dist2[last] < 0.5 {
		t.Errorf("graph-analytics >=4MB stride share = %.2f, want > 0.5", dist2[last])
	}
}

func TestMixingWidensStrides(t *testing.T) {
	// Fig. 9: mixing narrow-stride applications makes >=4MB strides dominate.
	ms, _ := ProfileByName("media-streaming")
	ms.FootprintBytes = 256 << 20
	single := MustGenerator(ms, 9)
	singleDist := StrideDistribution(single.Next, 100000)

	profiles := make([]Profile, 8)
	for i := range profiles {
		profiles[i] = ms
	}
	mixed := MustMixed(profiles, 9)
	mixedDist := StrideDistribution(mixed.Next, 100000)

	last := len(singleDist) - 1
	if mixedDist[last] <= singleDist[last] {
		t.Errorf("mixing did not widen strides: single %.2f, mixed %.2f",
			singleDist[last], mixedDist[last])
	}
	if mixedDist[last] < 0.6 {
		t.Errorf("mixed >=4MB share %.2f, want > 0.6 (paper: 89.3%% for 8-mix)", mixedDist[last])
	}
}

func TestMixedAddressesWithinComponentFootprints(t *testing.T) {
	p1, _ := ProfileByName("web-search")
	p1.FootprintBytes = 128 << 20
	p2, _ := ProfileByName("data-caching")
	p2.FootprintBytes = 256 << 20
	m := MustMixed([]Profile{p1, p2}, 17)
	if m.TotalFootprint() != p1.FootprintBytes+p2.FootprintBytes {
		t.Fatalf("total footprint = %d", m.TotalFootprint())
	}
	if m.Components() != 2 {
		t.Fatalf("components = %d", m.Components())
	}
	for i := 0; i < 50000; i++ {
		a := m.Next()
		if a.Addr < 0 || a.Addr >= m.TotalFootprint() {
			t.Fatalf("mixed address %d outside total footprint", a.Addr)
		}
	}
}

func TestMixedRejectsEmpty(t *testing.T) {
	if _, err := NewMixed(nil, 1); err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestColdFraction2MBGreaterThan4MB(t *testing.T) {
	// Fig. 10: finer remapping granularity exposes more cold segments.
	p, _ := ProfileByName("data-analytics")
	p.FootprintBytes = 4 << 30
	mk := func() func() Access { return MustGenerator(p, 21).Next }
	const n = 800000
	const threshold = 10_000_000
	cold2 := ColdFraction(mk(), n, p.FootprintBytes, 2<<20, threshold)
	cold4 := ColdFraction(mk(), n, p.FootprintBytes, 4<<20, threshold)
	if cold2 <= cold4 {
		t.Errorf("cold fraction 2MB (%.3f) should exceed 4MB (%.3f)", cold2, cold4)
	}
	if cold2 < 0.35 || cold2 > 0.85 {
		t.Errorf("2MB cold fraction %.3f outside plausible band (paper: 0.615)", cold2)
	}
}

func TestStrideDistributionSumsToOne(t *testing.T) {
	p, _ := ProfileByName("data-caching")
	p.FootprintBytes = 256 << 20
	g := MustGenerator(p, 2)
	dist := StrideDistribution(g.Next, 10000)
	var sum float64
	for _, v := range dist {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
	if len(dist) != len(StrideBucketLabels()) {
		t.Fatalf("labels/buckets mismatch: %d vs %d", len(dist), len(StrideBucketLabels()))
	}
}

func TestColdFractionEmptyStream(t *testing.T) {
	calls := 0
	next := func() Access { calls++; return Access{} }
	if got := ColdFraction(next, 0, 0, 2<<20, 1000); got != 0 {
		t.Fatalf("empty stream cold fraction = %v", got)
	}
	dist := StrideDistribution(next, 0)
	for _, v := range dist {
		if v != 0 {
			t.Fatalf("empty stride distribution = %v", dist)
		}
	}
}
