package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/fault"
	"dtl/internal/obs"
	"dtl/internal/rack"
	"dtl/internal/telemetry"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is the POST /v1/jobs request body: one experiment run at a given
// seed and scale, with the same policy / fault / trace-format knobs dtlsim
// exposes. Identical specs produce byte-identical artifacts.
type JobSpec struct {
	// Experiment is a runner id from experiments.All ("fig12", "faults", ...).
	Experiment string `json:"experiment"`
	// Seed drives every random choice; 0 means the default seed 1.
	Seed int64 `json:"seed,omitempty"`
	// Quick selects the reduced-scale run.
	Quick bool `json:"quick,omitempty"`
	// Policy holds power-policy overrides in the experiments.ParsePolicy
	// grammar, e.g. "reserve=3;threshold=80ms".
	Policy string `json:"policy,omitempty"`
	// Faults holds a fault-injection spec in the internal/fault grammar.
	// Rack experiments accept expander-scoped targets ("kill:x2/ch0/rk0").
	Faults string `json:"faults,omitempty"`
	// Rack is the expander count for the rack experiment; 0 keeps the
	// experiment's default (4). Ignored by single-expander experiments.
	Rack int `json:"rack,omitempty"`
	// Fabric is the rack fabric cost model and placement policy in the
	// rack.ParseFabric grammar, e.g. "hop=150ns;gbs=32;policy=pack".
	Fabric string `json:"fabric,omitempty"`
	// TraceFormat selects the trace artifact encoding: jsonl (default),
	// csv, or chrome.
	TraceFormat string `json:"trace_format,omitempty"`
	// Parallel bounds the sweep fan-out inside the experiment; <= 1 serial.
	Parallel int `json:"parallel,omitempty"`
	// Shards shards the experiment's controller replays by channel across
	// per-shard event heaps (experiments.Options.Shards); <= 1 serial.
	// Artifacts are byte-identical at every shard count.
	Shards int `json:"shards,omitempty"`
	// TimeoutSec overrides the server's per-job timeout; 0 keeps the
	// server default.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Force bypasses the idempotent result cache and in-flight coalescing:
	// the job executes even when an identical spec already ran or is running.
	// Determinism gates use it to re-run identical specs on purpose. Force
	// does not change the spec digest.
	Force bool `json:"force,omitempty"`
}

// normalized fills defaults and validates every field, so a bad spec is
// rejected at admission (400) instead of failing inside a worker. Unknown
// experiment ids and unknown policy keys are errors, never ignored.
func (s JobSpec) normalized() (JobSpec, error) {
	if s.Experiment == "" {
		return s, fmt.Errorf("experiment is required (GET /v1/experiments lists ids)")
	}
	if _, ok := experiments.ByID(s.Experiment); !ok {
		return s, fmt.Errorf("unknown experiment %q (GET /v1/experiments lists ids)", s.Experiment)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TraceFormat == "" {
		s.TraceFormat = "jsonl"
	}
	if _, err := telemetry.ParseTraceFormat(s.TraceFormat); err != nil {
		return s, err
	}
	if _, err := experiments.ParsePolicy(s.Policy); err != nil {
		return s, err
	}
	if s.Faults != "" {
		if _, err := fault.Parse(s.Faults); err != nil {
			return s, err
		}
	}
	if s.Rack < 0 || s.Rack > rack.MaxExpanders {
		return s, fmt.Errorf("rack must be in [0, %d] (0 keeps the experiment default)", rack.MaxExpanders)
	}
	if _, err := rack.ParseFabric(s.Fabric); err != nil {
		return s, err
	}
	if s.Parallel < 0 {
		return s, fmt.Errorf("parallel must be >= 0")
	}
	if s.Shards < 0 {
		return s, fmt.Errorf("shards must be >= 0")
	}
	if s.TimeoutSec < 0 {
		return s, fmt.Errorf("timeout_sec must be >= 0")
	}
	return s, nil
}

// digest is the job's canonical identity: the hex SHA-256 of the normalized
// spec fields that influence artifact bytes. TimeoutSec, Parallel, Shards,
// and Force are excluded — they shape scheduling, not output (sharded runs
// are byte-identical to serial ones) — so two submissions that would produce
// identical artifacts always share a digest. Only call it on normalized
// specs, so filled defaults (seed 1, jsonl) don't split the key. The rack
// fields carry omitempty so specs that predate them keep their digests:
// a zero-rack spec marshals the exact bytes it did before the fields existed.
func (s JobSpec) digest() string {
	c := struct {
		Experiment  string `json:"experiment"`
		Seed        int64  `json:"seed"`
		Quick       bool   `json:"quick"`
		Policy      string `json:"policy"`
		Faults      string `json:"faults"`
		TraceFormat string `json:"trace_format"`
		Rack        int    `json:"rack,omitempty"`
		Fabric      string `json:"fabric,omitempty"`
	}{s.Experiment, s.Seed, s.Quick, s.Policy, s.Faults, s.TraceFormat, s.Rack, s.Fabric}
	b, err := json.Marshal(c)
	if err != nil {
		panic(err) // fixed field set of scalar types; cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// traceArtifactName is the trace artifact's name for the spec's format.
func (s JobSpec) traceArtifactName() string {
	switch s.TraceFormat {
	case "csv":
		return "trace.csv"
	case "chrome":
		return "trace.json"
	default:
		return "trace.jsonl"
	}
}

// ArtifactInfo describes one stored artifact of a finished job.
type ArtifactInfo struct {
	Name   string `json:"name"`
	Digest string `json:"digest"` // sha256 hex; the artifact-store address
	Size   int64  `json:"size"`
}

// JobStatus is the wire representation of a job.
type JobStatus struct {
	ID          string              `json:"id"`
	State       State               `json:"state"`
	Spec        JobSpec             `json:"spec"`
	SpecDigest  string              `json:"spec_digest,omitempty"`
	Error       string              `json:"error,omitempty"`
	SubmittedAt time.Time           `json:"submitted_at"`
	StartedAt   *time.Time          `json:"started_at,omitempty"`
	FinishedAt  *time.Time          `json:"finished_at,omitempty"`
	Snapshots   int64               `json:"snapshots"`
	Artifacts   []ArtifactInfo      `json:"artifacts,omitempty"`
	Result      *experiments.Result `json:"result,omitempty"`
	// Timeline is the job's wall-clock span accounting: where the real
	// seconds went (queue wait, engine, journal fsync, artifact commit) —
	// distinct from the virtual-time attribution in ledger.json.
	Timeline *obs.TimelineSnapshot `json:"timeline,omitempty"`
}

// job is the server-side state of one submitted run. The publisher side
// (worker goroutine) and any number of stream subscribers synchronize on mu;
// done closes exactly once when the job reaches a terminal state.
type job struct {
	id     string
	spec   JobSpec
	digest string // canonical spec digest; the result-cache key

	// timeline accumulates wall-clock spans; it has its own lock and never
	// takes j.mu, so it is safe to touch under either lock or none.
	timeline *obs.Timeline
	// enqueued is when the job entered the admission queue (set by Submit,
	// or by recovery for re-enqueued jobs); the queued span's start.
	enqueued time.Time

	mu        sync.Mutex
	state     State
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *experiments.Result
	artifacts []ArtifactInfo
	snapshots int64
	last      *experiments.WatchSnapshot
	subs      map[chan experiments.WatchSnapshot]struct{}
	cancel    context.CancelFunc

	done chan struct{}
}

func newJob(id string, spec JobSpec, digest string, now time.Time) *job {
	return &job{
		id:        id,
		spec:      spec,
		digest:    digest,
		timeline:  obs.NewTimeline(now),
		enqueued:  now,
		state:     StateQueued,
		submitted: now,
		subs:      map[chan experiments.WatchSnapshot]struct{}{},
		done:      make(chan struct{}),
	}
}

// start flips the job to running and records the cancel hook for
// POST /v1/jobs/{id}/cancel.
func (j *job) start(cancel context.CancelFunc, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
}

// finish records the terminal state and wakes every waiter, reporting whether
// this call was the one that settled the job (finish is idempotent: the
// worker-pool panic containment may race a finish already performed on the
// normal path, and only the first settles). The final watch snapshot (if any)
// was published before finish, so stream subscribers that observe done can
// still drain it.
func (j *job) finish(state State, errMsg string, res *experiments.Result, arts []ArtifactInfo, now time.Time) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = errMsg
	j.result = res
	j.artifacts = arts
	j.finished = now
	j.cancel = nil
	j.mu.Unlock()
	j.timeline.Close(now)
	close(j.done)
	return true
}

// requestCancel triggers the job's context; a no-op unless running.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel == nil {
		return false
	}
	cancel()
	return true
}

// publish hands one snapshot to every subscriber, coalescing per subscriber
// exactly like the experiments watch channel: a slow reader sees the newest
// snapshot, never a backlog, and publishing never blocks the worker.
func (j *job) publish(snap experiments.WatchSnapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.snapshots++
	j.last = &snap
	for ch := range j.subs {
		coalesce(ch, snap)
	}
}

// coalesce delivers snap on a cap-1 channel, evicting a stale queued
// snapshot rather than blocking.
func coalesce(ch chan experiments.WatchSnapshot, snap experiments.WatchSnapshot) {
	for {
		select {
		case ch <- snap:
			return
		default:
		}
		select {
		case <-ch:
		default:
		}
	}
}

// subscribe registers a stream reader. The channel is seeded with the most
// recent snapshot so late subscribers render immediately. The returned
// cancel must be called exactly once.
func (j *job) subscribe() (chan experiments.WatchSnapshot, func()) {
	ch := make(chan experiments.WatchSnapshot, 1)
	j.mu.Lock()
	if j.last != nil {
		ch <- *j.last
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// status snapshots the wire representation.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		SpecDigest:  j.digest,
		Error:       j.err,
		SubmittedAt: j.submitted,
		Snapshots:   j.snapshots,
		Artifacts:   append([]ArtifactInfo(nil), j.artifacts...),
		Result:      j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	snap := j.timeline.Snapshot(time.Now())
	snap.JobID = j.id
	st.Timeline = &snap
	return st
}

// artifact resolves a stored artifact by name.
func (j *job) artifact(name string) (ArtifactInfo, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, a := range j.artifacts {
		if a.Name == name {
			return a, true
		}
	}
	return ArtifactInfo{}, false
}
