// Package client is a small Go client for the dtlserved HTTP API. It speaks
// the wire types from internal/serve directly, so a Go caller gets the same
// JobSpec/JobStatus/DiffResponse shapes the daemon serves.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/serve"
)

// Client talks to one dtlserved instance. By default every call is a single
// attempt; WithRetry arms backoff, Retry-After honoring, and a circuit
// breaker (see RetryPolicy).
type Client struct {
	base  string
	http  *http.Client
	retry *retrier // nil: single-attempt transport
}

// New builds a client for a daemon at base (e.g. "http://127.0.0.1:8080").
func New(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		// Streams are long-lived; rely on context deadlines, not a client-wide
		// timeout that would sever them.
		http: &http.Client{},
	}
}

// BaseURL reports the daemon base URL this client targets.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response, carrying the server's error body.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter string // set on 429
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dtlserved: %d: %s", e.StatusCode, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = b
	}
	if c.retry == nil {
		return c.doOnce(ctx, method, path, payload, out)
	}
	return c.retry.run(ctx, func() error {
		return c.doOnce(ctx, method, path, payload, out)
	})
}

// doOnce is one attempt; the payload is pre-marshaled so retries replay the
// exact same bytes from a fresh reader.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiErr(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// breakerAllow gates the single-attempt endpoints (Stream, Artifact) on the
// shared circuit breaker; a nil retrier always allows. Transitions reach
// OnEvent here too, so a half-open probe admitted through Stream is
// observable like one admitted through the retry loop.
func (c *Client) breakerAllow() error {
	if c.retry == nil {
		return nil
	}
	ok, tr := c.retry.breaker.allow()
	c.retry.emit(tr, 0, 0, nil)
	if !ok {
		return ErrBreakerOpen
	}
	return nil
}

// breakerRecord feeds a single-attempt endpoint's outcome to the breaker.
func (c *Client) breakerRecord(err error) {
	if c.retry != nil {
		tr := c.retry.breaker.record(!countsAsBreakerFailure(err))
		c.retry.emit(tr, 0, 0, err)
	}
}

func apiErr(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(raw, &body) != nil || body.Error == "" {
		body.Error = strings.TrimSpace(string(raw))
	}
	return &APIError{
		StatusCode: resp.StatusCode,
		Message:    body.Error,
		RetryAfter: resp.Header.Get("Retry-After"),
	}
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Experiments lists the runnable experiment ids.
func (c *Client) Experiments(ctx context.Context) ([]serve.ExperimentInfo, error) {
	var out []serve.ExperimentInfo
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out, err
}

// Submit enqueues a job. A full queue or a draining server surfaces as an
// *APIError with StatusCode 429 or 503.
func (c *Client) Submit(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job in submission order.
func (c *Client) Jobs(ctx context.Context) ([]serve.JobStatus, error) {
	var out []serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation of a running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (serve.JobStatus, error) {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Stream follows a job's NDJSON stream, invoking onSnapshot for each frame,
// and returns the final status once the job finishes. A nil onSnapshot just
// waits for the terminal status over the stream.
func (c *Client) Stream(ctx context.Context, id string, onSnapshot func(experiments.WatchSnapshot)) (serve.JobStatus, error) {
	if err := c.breakerAllow(); err != nil {
		return serve.JobStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return serve.JobStatus{}, err
	}
	resp, err := c.http.Do(req)
	c.breakerRecord(err)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return serve.JobStatus{}, apiErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type     string                     `json:"type"`
			Snapshot *experiments.WatchSnapshot `json:"snapshot"`
			Status   *serve.JobStatus           `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return serve.JobStatus{}, fmt.Errorf("bad stream frame: %w", err)
		}
		switch ev.Type {
		case "snapshot":
			if onSnapshot != nil && ev.Snapshot != nil {
				onSnapshot(*ev.Snapshot)
			}
		case "status":
			if ev.Status != nil {
				return *ev.Status, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return serve.JobStatus{}, err
	}
	return serve.JobStatus{}, fmt.Errorf("stream for job %s ended without a status event", id)
}

// Artifact fetches one artifact's bytes.
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	if err := c.breakerAllow(); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+id+"/artifacts/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	c.breakerRecord(err)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, apiErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// Diff gates job b's trace against job a's under the given tolerances.
func (c *Client) Diff(ctx context.Context, req serve.DiffRequest) (serve.DiffResponse, error) {
	var out serve.DiffResponse
	err := c.do(ctx, http.MethodPost, "/v1/diff", req, &out)
	return out, err
}
