package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"
)

// ErrBreakerOpen fails a call fast while the circuit breaker is open: the
// daemon has failed enough consecutive calls that hammering it with more is
// pointless, so calls are refused locally until a cooldown elapses and a
// half-open probe succeeds.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// RetryPolicy configures the hardened transport enabled by Client.WithRetry:
// exponential backoff with full jitter, Retry-After honoring on 429/503, and
// a circuit breaker. The zero value selects the defaults noted per field.
//
// Retrying is safe for every endpoint the policy covers because the daemon
// is idempotent by construction: Submit of an identical spec lands in the
// result cache or coalesces onto the in-flight run, so a retried submission
// whose first attempt actually reached the server does not double-execute.
type RetryPolicy struct {
	// MaxAttempts bounds tries per call (first attempt included); 0 → 4.
	MaxAttempts int
	// BaseDelay is the backoff ceiling for the first retry; it doubles per
	// attempt up to MaxDelay, and the actual sleep is uniform in [0, ceiling)
	// (full jitter). 0 → 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling; 0 → 5s.
	MaxDelay time.Duration
	// BreakerThreshold is the consecutive-failure count that trips the
	// breaker open; 0 → 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// single half-open probe; 0 → 10s.
	BreakerCooldown time.Duration
	// OnRetry, when set, observes each scheduled retry (attempt is 1-based:
	// the attempt that just failed).
	OnRetry func(attempt int, delay time.Duration, err error)
	// OnEvent, when set, observes retry scheduling and circuit-breaker state
	// transitions — the hook a structured logger or metrics counter hangs
	// off. It is invoked synchronously but never while internal locks are
	// held, so the callback may call back into the client. Unset costs one
	// nil check per transition and allocates nothing.
	OnEvent func(RetryEvent)
}

// RetryEvent is one hardened-transport transition delivered to OnEvent.
type RetryEvent struct {
	// Kind is one of EventRetry, EventBreakerOpen, EventBreakerHalfOpen,
	// EventBreakerClose.
	Kind string
	// Attempt is the 1-based attempt that just failed (EventRetry only).
	Attempt int
	// Delay is the scheduled backoff before the next attempt (EventRetry).
	Delay time.Duration
	// Err is the error that caused the transition; nil for
	// EventBreakerHalfOpen and EventBreakerClose.
	Err error
}

// RetryEvent kinds.
const (
	EventRetry           = "retry"             // a retry was scheduled
	EventBreakerOpen     = "breaker-open"      // failure streak tripped the breaker
	EventBreakerHalfOpen = "breaker-half-open" // cooldown elapsed; probe admitted
	EventBreakerClose    = "breaker-close"     // probe (or any call) succeeded
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 10 * time.Second
	}
	return p
}

// WithRetry hardens the client's request path with the given policy and
// returns the same client for chaining:
//
//	c := client.New(base).WithRetry(client.RetryPolicy{})
//
// Long-lived reads (Stream, Artifact) stay single-attempt — severing and
// re-dialing a half-consumed stream is the caller's decision — but they do
// consult and feed the circuit breaker.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = newRetrier(p)
	return c
}

// retrier drives the attempt loop. The rng, sleep, and now fields are seams
// replaced by unit tests; production uses the real clock and a time-seeded
// source (client jitter must differ across processes — this is the one spot
// in the codebase where nondeterminism is the feature).
type retrier struct {
	policy  RetryPolicy
	breaker breaker

	mu    sync.Mutex
	rng   *rand.Rand
	sleep func(ctx context.Context, d time.Duration) error
}

func newRetrier(p RetryPolicy) *retrier {
	p = p.withDefaults()
	r := &retrier{
		policy: p,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:  sleepCtx,
	}
	r.breaker = breaker{threshold: p.BreakerThreshold, cooldown: p.BreakerCooldown, now: time.Now}
	return r
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run executes attempt until it succeeds, exhausts the budget, fails
// permanently, or the breaker opens. The returned error is always the last
// attempt's error (errors.As on *APIError keeps working), annotated with the
// attempt count when more than one was made.
func (r *retrier) run(ctx context.Context, attempt func() error) error {
	var lastErr error
	for a := 0; a < r.policy.MaxAttempts; a++ {
		allowed, tr := r.breaker.allow()
		r.emit(tr, 0, 0, nil)
		if !allowed {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", ErrBreakerOpen, lastErr)
			}
			return ErrBreakerOpen
		}
		err := attempt()
		tr = r.breaker.record(!countsAsBreakerFailure(err))
		r.emit(tr, 0, 0, err)
		if err == nil {
			return nil
		}
		lastErr = err
		delay, retry := retryDelay(err)
		if !retry || a == r.policy.MaxAttempts-1 {
			break
		}
		if delay < 0 {
			delay = r.backoff(a)
		}
		if r.policy.OnRetry != nil {
			r.policy.OnRetry(a+1, delay, err)
		}
		r.emit(EventRetry, a+1, delay, err)
		if serr := r.sleep(ctx, delay); serr != nil {
			return fmt.Errorf("%v (retry canceled: %w)", lastErr, serr)
		}
	}
	return lastErr
}

// emit delivers one transition to OnEvent. The nil checks come first so an
// unset hook costs no allocation: the RetryEvent literal is only built when
// there is both a hook and a transition. Breaker transitions are reported
// from here — after allow/record released the breaker mutex — so the
// callback can safely re-enter the client.
func (r *retrier) emit(kind string, attempt int, delay time.Duration, err error) {
	if r.policy.OnEvent == nil || kind == "" {
		return
	}
	ev := RetryEvent{Kind: kind, Attempt: attempt, Delay: delay}
	if kind == EventRetry || kind == EventBreakerOpen {
		ev.Err = err
	}
	r.policy.OnEvent(ev)
}

// backoff draws the full-jitter delay for 0-based attempt a: uniform in
// [0, min(MaxDelay, BaseDelay*2^a)).
func (r *retrier) backoff(a int) time.Duration {
	ceiling := r.policy.MaxDelay
	if a < 62 {
		if step := r.policy.BaseDelay << uint(a); step > 0 && step < ceiling {
			ceiling = step
		}
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(f * float64(ceiling))
}

// retryDelay classifies err: retry=false means permanent (bad request,
// context expiry). delay >= 0 is a server-mandated wait (Retry-After);
// delay < 0 means "use exponential backoff".
func retryDelay(err error) (delay time.Duration, retry bool) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 0, false
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return -1, true // transport error: connection refused, reset, ...
	}
	switch {
	case apiErr.StatusCode == 429 || apiErr.StatusCode == 503:
		if s, perr := strconv.Atoi(apiErr.RetryAfter); perr == nil && s >= 0 {
			return time.Duration(s) * time.Second, true
		}
		return -1, true
	case apiErr.StatusCode >= 500:
		return -1, true
	default:
		return 0, false // other 4xx: the request itself is wrong
	}
}

// countsAsBreakerFailure: transport errors and 5xx mean the daemon is
// unhealthy and feed the breaker; 4xx (including 429 backpressure) means it
// is alive and answering, so those reset the failure streak.
func countsAsBreakerFailure(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500
	}
	return true
}

type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

// breaker is a classic three-state circuit breaker: closed counts
// consecutive failures and trips open at threshold; open fails fast until
// cooldown elapses; then exactly one probe is admitted (half-open) — its
// success closes the breaker, its failure re-opens it for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
}

// allow reports whether a call may proceed, transitioning open → half-open
// when the cooldown has elapsed (the caller becomes the probe). The second
// return is the transition kind for OnEvent ("" = none); it is returned
// rather than delivered here so the hook runs outside b.mu.
func (b *breaker) allow() (ok bool, transition string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return true, ""
	case bkOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = bkHalfOpen
			return true, EventBreakerHalfOpen
		}
		return false, ""
	default: // half-open: a probe is already in flight
		return false, ""
	}
}

// record feeds one attempt's outcome into the state machine and returns the
// transition kind for OnEvent ("" = none), delivered by the caller outside
// b.mu.
func (b *breaker) record(ok bool) (transition string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if b.state != bkClosed {
			transition = EventBreakerClose
		}
		b.state = bkClosed
		b.fails = 0
		return transition
	}
	b.fails++
	if b.state == bkHalfOpen || b.fails >= b.threshold {
		if b.state != bkOpen {
			transition = EventBreakerOpen
		}
		b.state = bkOpen
		b.openedAt = b.now()
	}
	return transition
}
