package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock advances only when told, so breaker cooldowns are exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// harness builds a retrying client against handler, with sleeps captured
// instead of slept and the breaker on a fake clock.
func harness(t *testing.T, p RetryPolicy, handler http.HandlerFunc) (*Client, *[]time.Duration, *fakeClock) {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	c := New(srv.URL).WithRetry(p)
	var slept []time.Duration
	c.retry.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c.retry.breaker.now = clk.now
	return c, &slept, clk
}

func answer(code int, hdr map[string]string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for k, v := range hdr {
			w.Header().Set(k, v)
		}
		w.WriteHeader(code)
		w.Write([]byte(`{"error":"synthetic"}`))
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var calls atomic.Int64
	c, slept, _ := harness(t, RetryPolicy{MaxAttempts: 4}, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			answer(http.StatusInternalServerError, nil)(w, r)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after transients: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(*slept))
	}
}

func TestRetryExhaustsBudgetAndKeepsLastError(t *testing.T) {
	var calls atomic.Int64
	c, _, _ := harness(t, RetryPolicy{MaxAttempts: 3}, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		answer(http.StatusInternalServerError, nil)(w, r)
	})
	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err = %v, want 500 APIError", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 (MaxAttempts)", calls.Load())
	}
}

func TestPermanent4xxNeverRetries(t *testing.T) {
	var calls atomic.Int64
	c, slept, _ := harness(t, RetryPolicy{MaxAttempts: 5}, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		answer(http.StatusBadRequest, nil)(w, r)
	})
	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("400 caused retries: calls=%d sleeps=%d", calls.Load(), len(*slept))
	}
}

func TestRetryAfterIsHonoredOn429And503(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		var calls atomic.Int64
		c, slept, _ := harness(t, RetryPolicy{MaxAttempts: 2}, func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) == 1 {
				answer(code, map[string]string{"Retry-After": "7"})(w, r)
				return
			}
			w.Write([]byte(`{"status":"ok"}`))
		})
		if err := c.Health(context.Background()); err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		// The server's hint overrides exponential backoff exactly.
		if len(*slept) != 1 || (*slept)[0] != 7*time.Second {
			t.Fatalf("code %d: sleeps = %v, want [7s]", code, *slept)
		}
	}
}

func TestBackoffFullJitterBounds(t *testing.T) {
	r := newRetrier(RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 800 * time.Millisecond})
	r.rng = rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 8; attempt++ {
		// Ceiling doubles per attempt and saturates at MaxDelay.
		ceiling := 100 * time.Millisecond << uint(attempt)
		if ceiling > 800*time.Millisecond || ceiling <= 0 {
			ceiling = 800 * time.Millisecond
		}
		for i := 0; i < 200; i++ {
			d := r.backoff(attempt)
			if d < 0 || d >= ceiling {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, ceiling)
			}
		}
	}
	// Full jitter must actually spread: draws from one attempt are not all
	// equal (a seeded rng with 200 draws collides with ~0 probability).
	first := r.backoff(3)
	varied := false
	for i := 0; i < 50; i++ {
		if r.backoff(3) != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("backoff produced constant delays; jitter missing")
	}
}

func TestBreakerTripsOpensAndHalfOpens(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	p := RetryPolicy{MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: 10 * time.Second}
	c, _, clk := harness(t, p, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		answer(http.StatusInternalServerError, nil)(w, r)
	})
	ctx := context.Background()

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if err := c.Health(ctx); err == nil {
			t.Fatal("expected failure")
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	// Open: calls fail fast without touching the wire.
	if err := c.Health(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("open breaker still hit the server (calls=%d)", calls.Load())
	}
	// Cooldown elapses; the probe goes through, fails, and re-opens.
	clk.advance(11 * time.Second)
	if err := c.Health(ctx); errors.Is(err, ErrBreakerOpen) || err == nil {
		t.Fatalf("half-open probe err = %v, want server 500", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("probe did not reach the server (calls=%d)", calls.Load())
	}
	if err := c.Health(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("failed probe should re-open the breaker, got %v", err)
	}
	// Next cooldown: the server has recovered, the probe succeeds, the
	// breaker closes, and traffic flows again.
	healthy.Store(true)
	clk.advance(11 * time.Second)
	if err := c.Health(ctx); err != nil {
		t.Fatalf("recovered probe: %v", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
	if calls.Load() != 6 {
		t.Fatalf("calls = %d, want 6", calls.Load())
	}
}

func TestBreaker4xxDoesNotTrip(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 1, BreakerThreshold: 2}
	c, _, _ := harness(t, p, answer(http.StatusTooManyRequests, map[string]string{"Retry-After": "1"}))
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		err := c.Health(ctx)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("call %d: %v (breaker must not trip on backpressure)", i, err)
		}
	}
}

func TestContextDeadlinePropagatesAndStopsRetries(t *testing.T) {
	var calls atomic.Int64
	c, _, _ := harness(t, RetryPolicy{MaxAttempts: 10}, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		answer(http.StatusInternalServerError, nil)(w, r)
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the captured sleep seam returns ctx.Err() once canceled
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() > 2 {
		t.Fatalf("canceled context kept retrying (calls=%d)", calls.Load())
	}
}

func TestStreamAndArtifactRespectOpenBreaker(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: time.Hour}
	c, _, _ := harness(t, p, answer(http.StatusInternalServerError, nil))
	ctx := context.Background()
	if err := c.Health(ctx); err == nil {
		t.Fatal("expected failure")
	}
	if _, err := c.Stream(ctx, "j000001", nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Stream through open breaker: %v", err)
	}
	if _, err := c.Artifact(ctx, "j000001", "report.txt"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Artifact through open breaker: %v", err)
	}
}

func TestOnEventObservesRetriesAndBreakerLifecycle(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	p := RetryPolicy{MaxAttempts: 2, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second}
	var events []RetryEvent
	p.OnEvent = func(ev RetryEvent) { events = append(events, ev) }
	c, _, clk := harness(t, p, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		answer(http.StatusInternalServerError, nil)(w, r)
	})
	ctx := context.Background()

	// One failing call: attempt 1 fails (retry event), attempt 2 fails and
	// trips the threshold-2 breaker (open event).
	if err := c.Health(ctx); err == nil {
		t.Fatal("expected failure")
	}
	kinds := func() []string {
		var k []string
		for _, ev := range events {
			k = append(k, ev.Kind)
		}
		return k
	}
	want := []string{EventRetry, EventBreakerOpen}
	if got := kinds(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("events after failing call = %v, want %v", got, want)
	}
	if events[0].Attempt != 1 || events[0].Err == nil {
		t.Fatalf("retry event = %+v, want attempt 1 with an error", events[0])
	}
	if events[1].Err == nil {
		t.Fatalf("breaker-open event carries no error: %+v", events[1])
	}

	// Cooldown elapses, the server has recovered: half-open probe admitted,
	// then the breaker closes on its success.
	events = nil
	healthy.Store(true)
	clk.advance(11 * time.Second)
	if err := c.Health(ctx); err != nil {
		t.Fatalf("recovered probe: %v", err)
	}
	want = []string{EventBreakerHalfOpen, EventBreakerClose}
	if got := kinds(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("events after recovery = %v, want %v", got, want)
	}
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("%s event carries an error: %v", ev.Kind, ev.Err)
		}
	}

	// Steady-state success emits nothing.
	events = nil
	if err := c.Health(ctx); err != nil {
		t.Fatalf("steady state: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("steady-state success emitted %v", events)
	}
}

func TestOnEventUnsetAddsNoAllocations(t *testing.T) {
	r := newRetrier(RetryPolicy{})
	allocs := testing.AllocsPerRun(1000, func() {
		ok, tr := r.breaker.allow()
		r.emit(tr, 0, 0, nil)
		if !ok {
			t.Fatal("closed breaker refused a call")
		}
		tr = r.breaker.record(true)
		r.emit(tr, 0, 0, nil)
	})
	if allocs != 0 {
		t.Fatalf("unset OnEvent path allocates %.1f per op, want 0", allocs)
	}
}

func TestTransportErrorsRetry(t *testing.T) {
	// A server that is immediately closed: every dial fails at the socket.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	c := New(url).WithRetry(RetryPolicy{MaxAttempts: 3})
	var slept []time.Duration
	c.retry.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected transport error")
	}
	if len(slept) != 2 {
		t.Fatalf("transport error retried %d times, want 2", len(slept))
	}
}
