package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/telemetry"
)

// apiError is every non-2xx body: {"error": "..."}.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// ExperimentInfo is one row of GET /v1/experiments.
type ExperimentInfo struct {
	ID   string `json:"id"`
	Name string `json:"name"`
}

// DiffRequest is the POST /v1/diff body: compare the traces of two done jobs
// (A the baseline, B the candidate) under the same tolerance bands `dtlstat
// diff` gates on. Zero tolerances disable the corresponding check.
type DiffRequest struct {
	A string `json:"a"`
	B string `json:"b"`
	// Share is the max absolute residency-share drift per state (0.05 = 5 pp).
	Share float64 `json:"share,omitempty"`
	// Lat is the max relative migration-percentile shift (0.25 = 25%).
	Lat float64 `json:"lat,omitempty"`
	// Energy is the max relative energy-proxy drift.
	Energy float64 `json:"energy,omitempty"`
}

// DiffResponse is the structured verdict.
type DiffResponse struct {
	A           string                      `json:"a"`
	B           string                      `json:"b"`
	Pass        bool                        `json:"pass"`
	Violations  []string                    `json:"violations,omitempty"`
	Aggregate   []telemetry.ShareDelta      `json:"aggregate"`
	Percentile  []telemetry.PercentileDelta `json:"percentiles,omitempty"`
	EnergyA     float64                     `json:"energy_a"`
	EnergyB     float64                     `json:"energy_b"`
	EnergyPct   float64                     `json:"energy_delta_pct"`
	MigrationsA int                         `json:"migrations_a"`
	MigrationsB int                         `json:"migrations_b"`
}

// Handler builds the daemon's HTTP API:
//
//	GET  /healthz                       liveness
//	GET  /metrics                       Prometheus text exposition
//	GET  /v1/experiments                runnable experiment ids
//	POST /v1/jobs                       submit (202; 400/429/503 on reject)
//	GET  /v1/jobs                       list in submission order; ?state=
//	                                    filters by lifecycle state
//	GET  /v1/jobs/{id}                  status (includes the wall-clock timeline)
//	POST /v1/jobs/{id}/cancel           cancel a running job
//	GET  /v1/jobs/{id}/stream           live snapshots (NDJSON, or SSE when
//	                                    the client sends Accept: text/event-stream)
//	GET  /v1/jobs/{id}/timeline         wall-clock span timeline; ?format=chrome
//	                                    renders a Chrome trace-event file
//	GET  /v1/jobs/{id}/artifacts        list artifacts of a done job
//	GET  /v1/jobs/{id}/artifacts/{name} fetch one artifact's bytes
//	POST /v1/diff                       gate job B's trace against job A's
//
// When Config.EnablePprof is set, net/http/pprof is mounted under
// /debug/pprof for live profiling.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		var out []ExperimentInfo
		for _, e := range experiments.All() {
			out = append(out, ExperimentInfo{ID: e.ID, Name: e.Name})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		all := s.Jobs()
		q := r.URL.Query().Get("state")
		if q == "" {
			writeJSON(w, http.StatusOK, all)
			return
		}
		switch st := State(q); st {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
			out := make([]JobStatus, 0, len(all))
			for _, j := range all {
				if j.State == st {
					out = append(out, j)
				}
			}
			writeJSON(w, http.StatusOK, out)
		default:
			writeError(w, http.StatusBadRequest,
				"unknown state %q (want queued, running, done, failed or canceled)", q)
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := s.Job(id); !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", id)
			return
		}
		if !s.Cancel(id) {
			writeError(w, http.StatusConflict, "job %s is not running", id)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "cancel requested"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/jobs/{id}/artifacts", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		if !st.State.Terminal() {
			writeError(w, http.StatusConflict, "job %s is %s; artifacts appear when it finishes", st.ID, st.State)
			return
		}
		writeJSON(w, http.StatusOK, st.Artifacts)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("POST /v1/diff", s.handleDiff)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleTimeline serves a job's wall-clock timeline at any lifecycle state —
// a queued or running job reports its spans so far. ?format=chrome returns a
// Chrome trace-event file that opens in the same viewer as the job's
// virtual-time trace artifact.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	snap := j.timeline.Snapshot(time.Now())
	snap.JobID = j.id
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		writeJSON(w, http.StatusOK, snap)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		snap.WriteChrome(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown timeline format %q (want json or chrome)", f)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	v := metricsView{
		queueDepth: len(s.queue),
		queueCap:   s.cfg.QueueDepth,
		workers:    s.cfg.Workers,
		draining:   s.draining,
		crashed:    s.crashed,
		recovery:   s.recovery,
		chaos:      s.chaos,
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeMetrics(w, v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining), errors.Is(err, ErrCrashed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrJournal):
		writeError(w, http.StatusInternalServerError, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		// A cache hit hands back an already-finished job: 200, not 202 — the
		// caller can tell nothing new was enqueued.
		code := http.StatusAccepted
		if st.State.Terminal() {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	}
}

// streamEvent is one line of the job stream: a snapshot while the job runs,
// then a single final status event.
type streamEvent struct {
	Type     string                     `json:"type"` // "snapshot" | "status"
	Snapshot *experiments.WatchSnapshot `json:"snapshot,omitempty"`
	Status   *JobStatus                 `json:"status,omitempty"`
}

// handleStream follows a job live. The default encoding is NDJSON (one JSON
// event per line); clients that send Accept: text/event-stream get SSE with
// the same payloads in `data:` frames. Either way the stream ends with a
// status event once the job reaches a terminal state.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	emit := func(ev streamEvent) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		if flusher != nil {
			flusher.Flush()
		}
		return err == nil
	}

	ch, unsub := j.subscribe()
	defer unsub()
	for {
		select {
		case snap := <-ch:
			if !emit(streamEvent{Type: "snapshot", Snapshot: &snap}) {
				return
			}
		case <-j.done:
			// Drain the snapshot published just before the terminal state so
			// the client sees the final progress frame, then close with status.
			select {
			case snap := <-ch:
				if !emit(streamEvent{Type: "snapshot", Snapshot: &snap}) {
					return
				}
			default:
			}
			st := j.status()
			emit(streamEvent{Type: "status", Status: &st})
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	j, ok := s.jobByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	art, ok := j.artifact(name)
	if !ok {
		writeError(w, http.StatusNotFound, "job %s has no artifact %q", id, name)
		return
	}
	rc, err := s.store.Open(art.Digest)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", artifactContentType(name))
	w.Header().Set("Content-Length", strconv.FormatInt(art.Size, 10))
	w.Header().Set("X-Artifact-Digest", art.Digest)
	io.Copy(w, rc)
}

func artifactContentType(name string) string {
	switch {
	case name == "metrics.csv" || name == "trace.csv":
		return "text/csv; charset=utf-8"
	case name == "trace.jsonl":
		return "application/x-ndjson"
	case name == "report.txt":
		return "text/plain; charset=utf-8"
	default:
		return "application/json"
	}
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad diff request: %v", err)
		return
	}
	if req.A == "" || req.B == "" {
		writeError(w, http.StatusBadRequest, "diff needs job ids in both \"a\" and \"b\"")
		return
	}
	sumA, err := s.summaryOf(req.A)
	if err != nil {
		writeError(w, diffErrCode(s, req.A), "%v", err)
		return
	}
	sumB, err := s.summaryOf(req.B)
	if err != nil {
		writeError(w, diffErrCode(s, req.B), "%v", err)
		return
	}
	d := telemetry.DiffSummaries(sumA, sumB)
	violations := d.Check(telemetry.DiffTolerance{
		Share:      req.Share,
		LatFrac:    req.Lat,
		EnergyFrac: req.Energy,
	})
	writeJSON(w, http.StatusOK, DiffResponse{
		A:           req.A,
		B:           req.B,
		Pass:        len(violations) == 0,
		Violations:  violations,
		Aggregate:   d.Aggregate,
		Percentile:  d.Percentiles,
		EnergyA:     d.EnergyA,
		EnergyB:     d.EnergyB,
		EnergyPct:   100 * d.EnergyDelta(),
		MigrationsA: d.MigrationsA,
		MigrationsB: d.MigrationsB,
	})
}

// diffErrCode distinguishes "no such job" (404) from "job not diffable
// yet / no trace" (409) for the diff endpoint's error paths.
func diffErrCode(s *Server, id string) int {
	if _, ok := s.jobByID(id); !ok {
		return http.StatusNotFound
	}
	return http.StatusConflict
}
