package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/obs"
	"dtl/internal/serve/journal"
)

// The durability layer. Every job transition lands in an append-only journal
// (internal/serve/journal) before it becomes externally visible, so a
// SIGKILL at any instant loses no accepted work:
//
//	submitted  appended before Submit returns; carries the full spec and
//	           its canonical digest — enough to re-run the job from scratch
//	started    appended when a worker picks the job up (observability: the
//	           crash matrix distinguishes died-queued from died-running)
//	finished   appended after artifacts are committed to the store; this is
//	           the commit record — a job is durable-done iff it exists
//
// On restart the journal is replayed: jobs with a finished record are
// restored verbatim (their artifacts re-verified against the store — a
// finished record pointing at a missing object marks the job poisoned and
// failed); jobs without one were queued or running at crash time and are
// re-enqueued for a fresh run, which is sound because identical specs
// produce byte-identical artifacts and the content-addressed store dedupes
// the re-run onto any objects the first attempt already committed. After
// replay the journal is compacted (temp file + fsync + rename) down to two
// records per settled job, clearing torn or corrupt lines.

// journalName is the journal's filename inside the store directory.
const journalName = "journal.jsonl"

// walRecord is one journal entry. Type selects which fields are meaningful.
type walRecord struct {
	Type string    `json:"type"` // "submitted" | "started" | "finished"
	ID   string    `json:"id"`
	Time time.Time `json:"time"`

	// submitted
	Spec   *JobSpec `json:"spec,omitempty"`
	Digest string   `json:"digest,omitempty"`

	// finished
	State     State               `json:"state,omitempty"`
	Error     string              `json:"error,omitempty"`
	Artifacts []ArtifactInfo      `json:"artifacts,omitempty"`
	Result    *experiments.Result `json:"result,omitempty"`
}

// RecoveryStats reports what a restart found in the journal.
type RecoveryStats struct {
	// Restored counts terminal jobs reconstructed from their finished
	// records (poisoned jobs count here too).
	Restored int
	// Reenqueued counts jobs that were queued or running at crash time and
	// were put back on the queue for a fresh run.
	Reenqueued int
	// Poisoned counts done jobs demoted to failed because a crash left one
	// of their artifacts missing from the store.
	Poisoned int
	// CorruptRecords counts journal lines dropped for CRC or framing
	// failures; TornTail marks the classic died-mid-append signature.
	CorruptRecords int
	TornTail       bool
}

// JournalPath reports the server's journal location.
func (s *Server) JournalPath() string { return filepath.Join(s.cfg.StoreDir, journalName) }

// Recovery reports what this server's startup replay found.
func (s *Server) Recovery() RecoveryStats { return s.recovery }

// recover replays the journal, rebuilds the job registry, compacts the log,
// and returns the jobs that must be re-enqueued (in submission order). It
// runs during New, before workers start, so no locking is needed.
func (s *Server) recoverJournal() ([]*job, error) {
	replayStart := time.Now()
	path := s.JournalPath()
	payloads, stats, err := journal.Replay(path)
	if err != nil {
		return nil, err
	}
	s.recovery.CorruptRecords = stats.Corrupt
	s.recovery.TornTail = stats.TornTail

	// Fold records into per-job replay state, keeping submission order.
	type replayed struct {
		spec      JobSpec
		digest    string
		submitted time.Time
		started   time.Time
		fin       *walRecord
	}
	byID := map[string]*replayed{}
	var order []string
	for _, p := range payloads {
		var rec walRecord
		if err := json.Unmarshal(p, &rec); err != nil || rec.ID == "" {
			s.recovery.CorruptRecords++
			continue
		}
		switch rec.Type {
		case "submitted":
			if rec.Spec == nil {
				s.recovery.CorruptRecords++
				continue
			}
			if _, dup := byID[rec.ID]; dup {
				continue // compaction artifact or duplicate append; first wins
			}
			byID[rec.ID] = &replayed{spec: *rec.Spec, digest: rec.Digest, submitted: rec.Time}
			order = append(order, rec.ID)
		case "started":
			if r, ok := byID[rec.ID]; ok {
				r.started = rec.Time
			}
		case "finished":
			if r, ok := byID[rec.ID]; ok && r.fin == nil {
				rec := rec
				r.fin = &rec
			}
		default:
			s.recovery.CorruptRecords++
		}
	}

	// Rebuild jobs. Terminal jobs are restored (after artifact
	// verification); the rest are re-enqueued for a fresh run.
	var reenqueue []*job
	for _, id := range order {
		r := byID[id]
		if r.digest == "" {
			r.digest = r.spec.digest()
		}
		j := newJob(id, r.spec, r.digest, r.submitted)
		s.jobs[id] = j
		s.order = append(s.order, id)
		if n := idSeq(id); n > s.seq {
			s.seq = n
		}
		if r.fin == nil {
			s.recovery.Reenqueued++
			reenqueue = append(reenqueue, j)
			continue
		}
		if !r.started.IsZero() {
			j.started = r.started
		}
		state, errMsg := r.fin.State, r.fin.Error
		arts, res := r.fin.Artifacts, r.fin.Result
		if state == StateDone {
			if missing := s.missingArtifacts(arts); len(missing) > 0 {
				// The finished record survived but an object did not — only
				// possible if the store directory was tampered with or a
				// torn store landed between fsyncs. Fail loudly, keep the
				// job visible, never serve half an artifact set.
				state = StateFailed
				errMsg = fmt.Sprintf("artifacts poisoned by crash: %s missing from store",
					strings.Join(missing, ", "))
				arts, res = nil, nil
				s.recovery.Poisoned++
			} else {
				s.byDigest[j.digest] = id
			}
		}
		j.finish(state, errMsg, res, arts, r.fin.Time)
		s.recovery.Restored++
	}

	// Point the cache at re-enqueued runs too, so duplicate submissions
	// arriving after a restart coalesce onto the recovery run instead of
	// double-executing. (Done jobs win: the loop above set those first, and
	// a digest maps to a re-enqueued job only when no done twin exists.)
	for _, j := range reenqueue {
		if _, ok := s.byDigest[j.digest]; !ok {
			s.byDigest[j.digest] = j.id
		}
	}

	// Compact: two records per settled job, one per re-enqueued job, no
	// corrupt lines. Skipped when the journal is already minimal.
	if err := s.compactJournal(); err != nil {
		return nil, err
	}

	// Every recovered job carries a recovery-replay span covering the
	// replay window it passed through, and re-enqueued jobs restart their
	// queue clock now — their pre-crash queue wait is unobservable.
	replayEnd := time.Now()
	for _, id := range s.order {
		s.stage(s.jobs[id], obs.StageRecoveryReplay, replayStart, replayEnd)
	}
	for _, j := range reenqueue {
		j.enqueued = replayEnd
	}
	if len(s.order) > 0 || s.recovery.CorruptRecords > 0 {
		s.log.Info("journal recovery complete",
			obs.KeyStage, obs.StageRecoveryReplay.String(),
			"restored", s.recovery.Restored,
			"reenqueued", s.recovery.Reenqueued,
			"poisoned", s.recovery.Poisoned,
			"corrupt_records", s.recovery.CorruptRecords,
			"torn_tail", s.recovery.TornTail,
			"duration", replayEnd.Sub(replayStart))
	}
	return reenqueue, nil
}

// compactJournal rewrites the log to its canonical minimal form based on the
// in-memory registry (only safe before workers start or with s.mu held and
// the journal quiescent — it is called from recoverJournal).
func (s *Server) compactJournal() error {
	var payloads [][]byte
	for _, id := range s.order {
		j := s.jobs[id]
		st := j.status()
		sub, err := json.Marshal(walRecord{
			Type: "submitted", ID: id, Time: st.SubmittedAt, Spec: &j.spec, Digest: j.digest,
		})
		if err != nil {
			return err
		}
		payloads = append(payloads, sub)
		if !st.State.Terminal() {
			continue
		}
		var ft time.Time
		if st.FinishedAt != nil {
			ft = *st.FinishedAt
		}
		fin, err := json.Marshal(walRecord{
			Type: "finished", ID: id, Time: ft, State: st.State, Error: st.Error,
			Artifacts: st.Artifacts, Result: st.Result,
		})
		if err != nil {
			return err
		}
		payloads = append(payloads, fin)
	}
	return journal.Rewrite(s.JournalPath(), payloads)
}

// missingArtifacts lists artifact names whose objects are absent from the
// store, sorted for a stable error message.
func (s *Server) missingArtifacts(arts []ArtifactInfo) []string {
	var missing []string
	for _, a := range arts {
		if !s.store.Has(a.Digest) {
			missing = append(missing, a.Name)
		}
	}
	sort.Strings(missing)
	return missing
}

// idSeq extracts the numeric suffix of a job id ("j000042" -> 42); 0 when
// the id is not in the canonical form.
func idSeq(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// appendWAL marshals and appends one journal record, charging the append's
// wall-clock cost to j's journal-fsync span (j may be nil for records with
// no owning job). Append failures are counted but do not fail the job: the
// in-memory run proceeds and only its durability is lost (the operator sees
// dtlserved_journal_errors_total).
func (s *Server) appendWAL(j *job, rec walRecord) error {
	t0 := time.Now()
	b, err := json.Marshal(rec)
	if err == nil {
		err = s.journal.Append(b)
	}
	if j != nil {
		s.stage(j, obs.StageJournalFsync, t0, time.Now())
	}
	if err != nil {
		s.met.journalErrors.Add(1)
		s.log.Warn("journal append failed", obs.KeyJob, rec.ID,
			obs.KeyStage, obs.StageJournalFsync.String(), "type", rec.Type, "err", err)
	}
	return err
}
