package serve_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/serve"
	"dtl/internal/serve/client"
	"dtl/internal/telemetry"
)

// newServer starts a serve.Server with an httptest front end and a client
// pointed at it.
func newServer(t *testing.T, cfg serve.Config) (*serve.Server, *client.Client) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, client.New(hs.URL)
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestSubmitRunFetchArtifacts(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)

	st, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateQueued && st.State != serve.StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || !strings.EqualFold(final.Result.ID, "fig12") {
		t.Fatalf("missing result in final status: %+v", final.Result)
	}
	if final.Snapshots < 1 {
		t.Fatalf("job published %d snapshots, want >= 1", final.Snapshots)
	}

	want := map[string]bool{
		"report.txt": false, "result.json": false, "trace.jsonl": false,
		"metrics.csv": false, "ledger.json": false, "summary.json": false,
		"timeline.json": false,
	}
	for _, a := range final.Artifacts {
		if _, ok := want[a.Name]; !ok {
			t.Errorf("unexpected artifact %q", a.Name)
		}
		want[a.Name] = true
		if a.Size <= 0 || len(a.Digest) != 64 {
			t.Errorf("artifact %s: size=%d digest=%q", a.Name, a.Size, a.Digest)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("artifact %q missing from %v", name, final.Artifacts)
		}
	}

	// The trace artifact must round-trip through telemetry as a valid trace.
	raw, err := c.Artifact(ctx, st.ID, "trace.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := telemetry.SummarizeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Residency) == 0 {
		t.Fatal("served trace has no residency spans")
	}
}

func TestRejectsUnknownExperimentAndPolicyKey(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 0})
	ctx := ctxT(t)

	cases := []struct {
		spec serve.JobSpec
		frag string
	}{
		{serve.JobSpec{Experiment: "fig99"}, "unknown experiment"},
		{serve.JobSpec{}, "experiment is required"},
		{serve.JobSpec{Experiment: "fig12", Policy: "bogus=1"}, "unknown policy key"},
		{serve.JobSpec{Experiment: "fig12", TraceFormat: "xml"}, "trace format"},
		{serve.JobSpec{Experiment: "fig12", TimeoutSec: -1}, "timeout_sec"},
		{serve.JobSpec{Experiment: "fig12", Parallel: -1}, "parallel"},
		{serve.JobSpec{Experiment: "fig12", Shards: -2}, "shards"},
	}
	for _, tc := range cases {
		_, err := c.Submit(ctx, tc.spec)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("Submit(%+v) err = %v, want *APIError", tc.spec, err)
		}
		if apiErr.StatusCode != http.StatusBadRequest {
			t.Errorf("Submit(%+v) status = %d, want 400", tc.spec, apiErr.StatusCode)
		}
		if !strings.Contains(apiErr.Message, tc.frag) {
			t.Errorf("Submit(%+v) message %q missing %q", tc.spec, apiErr.Message, tc.frag)
		}
	}
}

// TestShardsExcludedFromDigest pins the result-cache contract for sharding:
// Shards shapes scheduling, not output, so a sharded resubmission of an
// identical spec coalesces onto the cached job instead of re-running, and a
// forced sharded execution produces artifacts with the same content digests
// as the serial run.
func TestShardsExcludedFromDigest(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)

	a, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig2", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := c.Wait(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fa.State != serve.StateDone {
		t.Fatalf("serial job state %s (%s)", fa.State, fa.Error)
	}

	// Same spec plus Shards: must coalesce onto the cached serial job.
	b, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig2", Quick: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != a.ID {
		t.Fatalf("sharded resubmission got job %s, want cache hit on %s", b.ID, a.ID)
	}

	// Forced sharded execution: same artifact bytes, by content digest.
	f, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig2", Quick: true, Shards: 4, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := c.Wait(ctx, f.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ff.State != serve.StateDone {
		t.Fatalf("sharded job state %s (%s)", ff.State, ff.Error)
	}
	want := map[string]string{}
	for _, art := range fa.Artifacts {
		want[art.Name] = art.Digest
	}
	for _, art := range ff.Artifacts {
		if art.Name == "timeline.json" {
			continue // wall-clock bytes; exempt from determinism by design
		}
		if want[art.Name] != art.Digest {
			t.Errorf("artifact %s differs between serial and sharded runs: %s vs %s",
				art.Name, want[art.Name], art.Digest)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	// No workers: nothing drains the queue, so depth 2 fills deterministically.
	_, c := newServer(t, serve.Config{Workers: 0, QueueDepth: 2, RetryAfter: 7 * time.Second})
	ctx := ctxT(t)

	// Distinct seeds: identical specs would coalesce onto the first job
	// instead of occupying queue slots.
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true, Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true, Seed: 3})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit: %v, want 429", err)
	}
	if apiErr.RetryAfter != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", apiErr.RetryAfter)
	}
}

func TestStreamDeliversSnapshotsThenStatus(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)

	st, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	var last experiments.WatchSnapshot
	final, err := c.Stream(ctx, st.ID, func(s experiments.WatchSnapshot) {
		snaps++
		last = s
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("stream final state = %s (%s)", final.State, final.Error)
	}
	if snaps < 1 {
		t.Fatal("stream delivered no snapshots")
	}
	if last.Experiment != "fig12" {
		t.Fatalf("snapshot experiment = %q", last.Experiment)
	}
}

func TestStreamSSEEncoding(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)
	st, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	// Raw request so we can set Accept and inspect the SSE framing.
	resp := doRaw(t, c, ctx, "/v1/jobs/"+st.ID+"/stream", "text/event-stream")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("event: status\ndata: ")) {
		t.Fatalf("SSE stream missing status frame:\n%s", body)
	}
}

func TestDeterminismAndServerDiff(t *testing.T) {
	srv, c := newServer(t, serve.Config{Workers: 2})
	ctx := ctxT(t)

	// Force: the determinism gate wants two real executions of the same
	// spec, not one execution answered twice by the result cache.
	spec := serve.JobSpec{Experiment: "fig12", Quick: true, Force: true}
	a, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatalf("force submissions coalesced onto %s", a.ID)
	}
	fa, err := c.Wait(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := c.Wait(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fa.State != serve.StateDone || fb.State != serve.StateDone {
		t.Fatalf("states %s/%s (%s %s)", fa.State, fb.State, fa.Error, fb.Error)
	}

	// Byte-determinism: the content-addressed store makes it a digest check.
	// timeline.json is exempt — it records wall-clock measurements, which
	// are never byte-identical across runs by design.
	digests := func(st serve.JobStatus) map[string]string {
		m := map[string]string{}
		for _, art := range st.Artifacts {
			if art.Name == "timeline.json" {
				continue
			}
			m[art.Name] = art.Digest
		}
		return m
	}
	da, db := digests(fa), digests(fb)
	for name, d := range da {
		if db[name] != d {
			t.Errorf("artifact %s differs across identical jobs: %s vs %s", name, d, db[name])
		}
	}

	// The server-side diff of the identical pair must pass at 1e-9.
	diff, err := c.Diff(ctx, serve.DiffRequest{A: a.ID, B: b.ID, Share: 1e-9, Lat: 1e-9, Energy: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Pass {
		t.Fatalf("identical jobs failed diff: %v", diff.Violations)
	}

	// And the served trace must match a direct in-process run at 1e-9.
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	fig12, _ := experiments.ByID("fig12")
	var out bytes.Buffer
	experiments.RunAll([]experiments.Runner{fig12}, experiments.Options{
		Quick:       true,
		Seed:        1,
		Out:         &out,
		TracePath:   tracePath,
		TraceFormat: telemetry.FormatJSONL,
	}, 1)
	direct, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	sumDirect, err := telemetry.SummarizeTrace(direct)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := c.Artifact(ctx, a.ID, "trace.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	sumServed, err := telemetry.SummarizeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	d := telemetry.DiffSummaries(sumDirect, sumServed)
	if bad := d.Check(telemetry.DiffTolerance{Share: 1e-9, LatFrac: 1e-9, EnergyFrac: 1e-9}); len(bad) > 0 {
		t.Fatalf("served run drifted from direct run: %v", bad)
	}
	_ = srv
}

func TestDiffErrorPaths(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 0})
	ctx := ctxT(t)

	queued, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Diff(ctx, serve.DiffRequest{A: "nope", B: "nope2"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("diff of unknown jobs: %v, want 404", err)
	}
	_, err = c.Diff(ctx, serve.DiffRequest{A: queued.ID, B: queued.ID})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("diff of queued job: %v, want 409", err)
	}
	_, err = c.Diff(ctx, serve.DiffRequest{A: "", B: queued.ID})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("diff with empty id: %v, want 400", err)
	}
}

func TestJobTimeoutCancels(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)

	st, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true, TimeoutSec: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateCanceled {
		t.Fatalf("timed-out job state = %s, want canceled", final.State)
	}
	if !strings.Contains(final.Error, "timeout") {
		t.Fatalf("timed-out job error = %q", final.Error)
	}
}

func TestCancelEndpoint(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)

	// full-scale fig14 runs for seconds — enough runway to cancel mid-flight.
	st, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig14"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateCanceled {
		t.Fatalf("canceled job state = %s (%s)", final.State, final.Error)
	}
}

func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	srv, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)

	st, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()

	// Draining flips synchronously-ish; wait for it, then verify rejection.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %v, want 503", err)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("in-flight job after drain = %s (%s), want done", final.State, final.Error)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)

	st, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	resp := doRaw(t, c, ctx, "/metrics", "")
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"dtlserved_jobs_submitted_total 1",
		`dtlserved_jobs_completed_total{state="done"} 1`,
		"dtlserved_queue_depth 0",
		"dtlserved_workers 1",
		`dtlserved_job_duration_seconds_bucket{le="+Inf"} 1`,
		"dtlserved_job_duration_seconds_count 1",
		`dtlserved_stage_seconds_count{stage="queued"} 1`,
		`dtlserved_stage_seconds_count{stage="running"} 1`,
		`dtlserved_stage_seconds_count{stage="artifact-commit"} 1`,
		"dtlserved_journal_fsync_seconds_count",
		"dtlserved_store_write_bytes_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// doRaw issues a plain GET against the client's base URL (the test server).
func doRaw(t *testing.T, c *client.Client, ctx context.Context, path, accept string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL()+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	return resp
}
