package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/obs"
	"dtl/internal/telemetry"
)

// ingestArtifacts lands a finished run in the store. Every job gets:
//
//	report.txt     the human-readable experiment report
//	result.json    the machine-readable experiments.Result
//
// and, when the experiment produced them (only DTL-driven experiments write
// traces; every sampled run writes metrics):
//
//	trace.<ext>    the run trace in the requested encoding
//	metrics.csv    the sampled metrics registry
//	ledger.json    the (vm, rank, cause) attribution cost ledger
//	summary.json   telemetry.TraceSummary of the trace (the diff input)
//	timeline.json  the job's wall-clock span log (obs.TimelineSnapshot)
//
// JSON artifacts are marshaled with sorted map keys (encoding/json's map
// ordering), so identical runs yield identical bytes and therefore identical
// store digests. timeline.json is the one deliberate exception: it records
// wall-clock measurements, so its bytes differ across otherwise identical
// runs — determinism gates compare digests excluding that name.
func (s *Server) ingestArtifacts(j *job, work string, report []byte, res experiments.Result) ([]ArtifactInfo, error) {
	var arts []ArtifactInfo
	putBytes := func(name string, b []byte) error {
		t0 := time.Now()
		digest, size, err := s.store.PutBytes(b)
		if err != nil {
			return fmt.Errorf("serve: storing %s: %w", name, err)
		}
		s.stage(j, obs.StageStoreWrite, t0, time.Now())
		arts = append(arts, ArtifactInfo{Name: name, Digest: digest, Size: size})
		return nil
	}

	if err := putBytes("report.txt", report); err != nil {
		return nil, err
	}
	resJSON, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := putBytes("result.json", append(resJSON, '\n')); err != nil {
		return nil, err
	}

	traceName := j.spec.traceArtifactName()
	for _, name := range []string{traceName, "metrics.csv", "ledger.json"} {
		path := filepath.Join(work, name)
		if _, err := os.Stat(path); err != nil {
			continue // the experiment does not drive this sink
		}
		t0 := time.Now()
		digest, size, err := s.store.PutFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: storing %s: %w", name, err)
		}
		s.stage(j, obs.StageStoreWrite, t0, time.Now())
		arts = append(arts, ArtifactInfo{Name: name, Digest: digest, Size: size})
	}

	if sum, err := summarizeFile(filepath.Join(work, traceName)); err == nil && sum != nil {
		sumJSON, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := putBytes("summary.json", append(sumJSON, '\n')); err != nil {
			return nil, err
		}
	}

	// timeline.json: the wall-clock span log accumulated so far. It is
	// written mid artifact-commit by necessity, so its own commit span is
	// absent from the artifact; the complete timeline (including
	// artifact-commit) lives in the job status and GET /v1/jobs/{id}/timeline.
	snap := j.timeline.Snapshot(time.Now())
	snap.JobID = j.id
	tlJSON, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := putBytes("timeline.json", append(tlJSON, '\n')); err != nil {
		return nil, err
	}
	return arts, nil
}

// summarizeFile summarizes a trace file, or returns (nil, nil) when the file
// does not exist or holds no power spans (experiments without a DTL).
func summarizeFile(path string) (*telemetry.TraceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil
	}
	defer f.Close()
	sum, err := telemetry.SummarizeTrace(f)
	if err != nil {
		return nil, err
	}
	if len(sum.Residency) == 0 {
		return nil, nil
	}
	return sum, nil
}

// summaryOf loads and summarizes a done job's trace artifact for the diff
// endpoint.
func (s *Server) summaryOf(id string) (*telemetry.TraceSummary, error) {
	j, ok := s.jobByID(id)
	if !ok {
		return nil, fmt.Errorf("unknown job %q", id)
	}
	st := j.status()
	if st.State != StateDone {
		return nil, fmt.Errorf("job %s is %s, not done", id, st.State)
	}
	art, ok := j.artifact(j.spec.traceArtifactName())
	if !ok {
		return nil, fmt.Errorf("job %s has no trace artifact (experiment %q does not drive a DTL)",
			id, j.spec.Experiment)
	}
	rc, err := s.store.Open(art.Digest)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	sum, err := telemetry.SummarizeTrace(rc)
	if err != nil {
		return nil, fmt.Errorf("summarizing job %s trace: %w", id, err)
	}
	return sum, nil
}
