package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
)

// Store is a content-addressed artifact store: every object lives at
// objects/<d[:2]>/<d> where d is the hex SHA-256 of its bytes. Identical
// artifacts from different jobs share one object, so "the same job submitted
// twice returned the same digests" is both the determinism check and the
// deduplication mechanism.
type Store struct {
	dir string
}

var digestRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// OpenStore creates (if needed) and opens a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: opening store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(digest string) string {
	return filepath.Join(s.dir, "objects", digest[:2], digest)
}

// Put writes r into the store and returns its digest and size. The object is
// hashed while spooling to a temp file, then renamed into place; a
// concurrent Put of the same content is harmless (same target path, same
// bytes).
func (s *Store) Put(r io.Reader) (digest string, size int64, err error) {
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return "", 0, err
	}
	defer os.Remove(tmp.Name())

	h := sha256.New()
	size, err = io.Copy(io.MultiWriter(tmp, h), r)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", 0, err
	}
	digest = hex.EncodeToString(h.Sum(nil))
	dst := s.objectPath(digest)
	if _, err := os.Stat(dst); err == nil {
		return digest, size, nil // already stored; dedupe
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return "", 0, err
	}
	return digest, size, nil
}

// PutFile stores the file at path.
func (s *Store) PutFile(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return s.Put(f)
}

// PutBytes stores an in-memory artifact.
func (s *Store) PutBytes(b []byte) (string, int64, error) {
	d := sha256.Sum256(b)
	digest := hex.EncodeToString(d[:])
	dst := s.objectPath(digest)
	if _, err := os.Stat(dst); err == nil {
		return digest, int64(len(b)), nil
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return "", 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return "", 0, err
	}
	if err := tmp.Close(); err != nil {
		return "", 0, err
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return "", 0, err
	}
	return digest, int64(len(b)), nil
}

// Open returns a reader over the object with the given digest.
func (s *Store) Open(digest string) (io.ReadCloser, error) {
	if !digestRE.MatchString(digest) {
		return nil, fmt.Errorf("serve: bad digest %q", digest)
	}
	f, err := os.Open(s.objectPath(digest))
	if err != nil {
		return nil, fmt.Errorf("serve: object %s: %w", digest, err)
	}
	return f, nil
}
