package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"time"

	"dtl/internal/serve/chaos"
	"dtl/internal/serve/journal"
)

// Store is a content-addressed artifact store: every object lives at
// objects/<d[:2]>/<d> where d is the hex SHA-256 of its bytes. Identical
// artifacts from different jobs share one object, so "the same job submitted
// twice returned the same digests" is both the determinism check and the
// deduplication mechanism.
//
// Object commits are crash-atomic: bytes spool to tmp/, the temp file is
// fsynced, renamed into objects/<xx>/, and the bucket directory is fsynced —
// an object either exists completely or not at all. A crash can only leave
// an orphaned temp file, which OpenStore sweeps on the next start; it can
// never leave a half-written object at an addressable path.
type Store struct {
	dir string
	// chaos, when non-nil, injects write errors into Put paths.
	chaos *chaos.Harness
	// observer, when non-nil, sees every successful object write — the
	// observability plane's store-I/O latency/size histograms hang off it.
	observer StoreObserver
}

// StoreObserver receives the wall-clock duration and byte size of each
// successful object write (including dedupe hits, whose hashing work is
// real). Attached once at construction, before concurrent use.
type StoreObserver func(d time.Duration, size int64)

var digestRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// OpenStore creates (if needed) and opens a store rooted at dir, sweeping
// temp files orphaned by a previous crash.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: opening store: %w", err)
		}
	}
	s := &Store{dir: dir}
	if err := s.sweepTmp(); err != nil {
		return nil, err
	}
	return s, nil
}

// sweepTmp deletes every file under tmp/: anything there was part of a Put
// that never committed (the owning process renames before returning), so
// after a crash it is garbage by construction.
func (s *Store) sweepTmp() error {
	tmpDir := filepath.Join(s.dir, "tmp")
	entries, err := os.ReadDir(tmpDir)
	if err != nil {
		return fmt.Errorf("serve: sweeping store tmp: %w", err)
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(tmpDir, e.Name())); err != nil {
			return fmt.Errorf("serve: sweeping store tmp: %w", err)
		}
	}
	return nil
}

// SetChaos attaches a fault harness to the store's write paths (nil
// detaches). Called once at server construction, before concurrent use.
func (s *Store) SetChaos(h *chaos.Harness) { s.chaos = h }

// SetObserver attaches a write observer (nil detaches). Called once at
// server construction, before concurrent use.
func (s *Store) SetObserver(fn StoreObserver) { s.observer = fn }

// Dir reports the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(digest string) string {
	return filepath.Join(s.dir, "objects", digest[:2], digest)
}

// commit moves a fully-written, closed temp file into place as the object
// for digest: fsync already happened on the temp file; after the rename the
// bucket directory is fsynced so the link survives a crash.
func (s *Store) commit(tmpName, digest string) error {
	dst := s.objectPath(digest)
	if _, err := os.Stat(dst); err == nil {
		return nil // already stored; dedupe
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	if err := os.Rename(tmpName, dst); err != nil {
		return err
	}
	return journal.SyncDir(filepath.Dir(dst))
}

// Put writes r into the store and returns its digest and size. The object is
// hashed while spooling to a temp file, fsynced, then renamed into place; a
// concurrent Put of the same content is harmless (same target path, same
// bytes).
func (s *Store) Put(r io.Reader) (digest string, size int64, err error) {
	if err := s.chaos.StoreWriteErr(); err != nil {
		return "", 0, err
	}
	start := time.Now()
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return "", 0, err
	}
	defer os.Remove(tmp.Name())

	h := sha256.New()
	size, err = io.Copy(io.MultiWriter(tmp, h), r)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", 0, err
	}
	digest = hex.EncodeToString(h.Sum(nil))
	if err := s.commit(tmp.Name(), digest); err != nil {
		return "", 0, err
	}
	if s.observer != nil {
		s.observer(time.Since(start), size)
	}
	return digest, size, nil
}

// PutFile stores the file at path.
func (s *Store) PutFile(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return s.Put(f)
}

// PutBytes stores an in-memory artifact.
func (s *Store) PutBytes(b []byte) (string, int64, error) {
	if err := s.chaos.StoreWriteErr(); err != nil {
		return "", 0, err
	}
	start := time.Now()
	d := sha256.Sum256(b)
	digest := hex.EncodeToString(d[:])
	if _, err := os.Stat(s.objectPath(digest)); err == nil {
		if s.observer != nil {
			s.observer(time.Since(start), int64(len(b)))
		}
		return digest, int64(len(b)), nil
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return "", 0, err
	}
	defer os.Remove(tmp.Name())
	_, err = tmp.Write(b)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", 0, err
	}
	if err := s.commit(tmp.Name(), digest); err != nil {
		return "", 0, err
	}
	if s.observer != nil {
		s.observer(time.Since(start), int64(len(b)))
	}
	return digest, int64(len(b)), nil
}

// Has reports whether the object with the given digest is present and
// addressable. Recovery uses it to detect artifacts poisoned by a crash.
func (s *Store) Has(digest string) bool {
	if !digestRE.MatchString(digest) {
		return false
	}
	_, err := os.Stat(s.objectPath(digest))
	return err == nil
}

// Open returns a reader over the object with the given digest.
func (s *Store) Open(digest string) (io.ReadCloser, error) {
	if !digestRE.MatchString(digest) {
		return nil, fmt.Errorf("serve: bad digest %q", digest)
	}
	f, err := os.Open(s.objectPath(digest))
	if err != nil {
		return nil, fmt.Errorf("serve: object %s: %w", digest, err)
	}
	return f, nil
}
