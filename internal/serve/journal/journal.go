// Package journal is the crash-safety substrate of dtlserved: an append-only
// write-ahead log of CRC-framed JSON records plus a temp-file+fsync+rename
// compaction primitive. The daemon appends a record before a job becomes
// visible, one when it starts, and one when it reaches a terminal state; on
// restart the replayed log reconstructs the job registry, so a SIGKILL loses
// at most the in-flight execution (which is re-run — sound because identical
// specs produce byte-identical artifacts).
//
// Frame format (one record per line):
//
//	v1 <crc32-ieee-hex8> <json-payload>\n
//
// The CRC covers exactly the payload bytes. Replay is tolerant of the two
// corruptions a crash can leave behind:
//
//   - a torn tail (the process died mid-append): the last line has no
//     newline or fails its CRC — dropped and counted;
//   - a torn middle (a torn append later written over by healthy appends,
//     only reachable under chaos injection): the merged garbage line fails
//     its CRC — skipped and counted, later intact lines still replay.
//
// A record that does not replay simply reverts its job to the previous
// durable state; the recovery layer re-runs anything non-terminal, so a lost
// record costs a re-execution, never corruption.
package journal

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// ErrKilled is returned by Append after Kill: the journal simulates a
// power-cut and refuses all further writes.
var ErrKilled = errors.New("journal: killed (simulated power cut)")

// framePrefix is the record version tag; bumping it invalidates old logs
// loudly instead of misparsing them.
const framePrefix = "v1"

// ReplayStats counts what Open found in an existing log.
type ReplayStats struct {
	// Valid is the number of intact records replayed, in order.
	Valid int
	// Corrupt is the number of lines dropped for a CRC or framing failure
	// (torn appends; under chaos, torn middles).
	Corrupt int
	// TornTail is true when the final line was incomplete (no newline) —
	// the classic crash-during-append signature. A torn tail is also
	// counted in Corrupt.
	TornTail bool
}

// WriteHook intercepts the framed bytes of an append before they hit the
// file — the chaos harness uses it to delay writes and tear frames. A nil
// hook is the fast path: no call, no allocation.
type WriteHook func(frame []byte) []byte

// Journal is a single-writer append log. Append is safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	killed atomic.Bool

	// Hook, when non-nil, may mutate (typically truncate) the framed bytes
	// of each append. Set once, before concurrent use.
	Hook WriteHook

	// OnSync, when non-nil, observes the wall-clock duration of each
	// append's fsync — the observability plane feeds it into the
	// journal-fsync latency histogram. Set once, before concurrent use; a
	// nil hook costs one branch.
	OnSync func(d time.Duration)
}

// Open replays the log at path (creating it if absent) and opens it for
// appending. The returned payloads are the intact records in append order.
func Open(path string) (*Journal, [][]byte, ReplayStats, error) {
	payloads, stats, err := Replay(path)
	if err != nil {
		return nil, nil, stats, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("journal: open %s: %w", path, err)
	}
	return &Journal{f: f, path: path}, payloads, stats, nil
}

// Replay reads the log at path without opening it for writes. A missing file
// is an empty log, not an error.
func Replay(path string) ([][]byte, ReplayStats, error) {
	var stats ReplayStats
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, stats, nil
	}
	if err != nil {
		return nil, stats, fmt.Errorf("journal: replay %s: %w", path, err)
	}
	var payloads [][]byte
	for len(raw) > 0 {
		line := raw
		if i := bytes.IndexByte(raw, '\n'); i >= 0 {
			line, raw = raw[:i], raw[i+1:]
		} else {
			// No newline: the process died mid-append.
			raw = nil
			stats.TornTail = true
			stats.Corrupt++
			continue
		}
		payload, ok := decodeFrame(line)
		if !ok {
			stats.Corrupt++
			continue
		}
		payloads = append(payloads, payload)
		stats.Valid++
	}
	return payloads, stats, nil
}

// decodeFrame parses one "v1 <crc8hex> <payload>" line and checks the CRC.
func decodeFrame(line []byte) ([]byte, bool) {
	rest, ok := bytes.CutPrefix(line, []byte(framePrefix+" "))
	if !ok || len(rest) < 9 || rest[8] != ' ' {
		return nil, false
	}
	var crcBytes [4]byte
	if _, err := hex.Decode(crcBytes[:], rest[:8]); err != nil {
		return nil, false
	}
	payload := rest[9:]
	want := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 | uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	return payload, true
}

// encodeFrame renders the framed line for a payload, including the newline.
func encodeFrame(payload []byte) []byte {
	frame := make([]byte, 0, len(framePrefix)+1+8+1+len(payload)+1)
	frame = append(frame, framePrefix...)
	frame = append(frame, ' ')
	frame = fmt.Appendf(frame, "%08x", crc32.ChecksumIEEE(payload))
	frame = append(frame, ' ')
	frame = append(frame, payload...)
	frame = append(frame, '\n')
	return frame
}

// Append frames payload, writes it, and fsyncs, so a record that Append
// acknowledged survives a crash. The payload must not contain a newline
// (JSON-marshaled records never do).
func (j *Journal) Append(payload []byte) error {
	if j.killed.Load() {
		return ErrKilled
	}
	if bytes.IndexByte(payload, '\n') >= 0 {
		return fmt.Errorf("journal: payload contains a newline")
	}
	frame := encodeFrame(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.killed.Load() {
		return ErrKilled
	}
	if j.Hook != nil {
		frame = j.Hook(frame)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	var syncStart time.Time
	if j.OnSync != nil {
		syncStart = time.Now()
	}
	err := j.f.Sync()
	if j.OnSync != nil {
		j.OnSync(time.Since(syncStart))
	}
	if err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Kill simulates a power cut: every subsequent Append fails with ErrKilled
// and the file handle is closed, so a "crashed" server object can coexist
// with a recovered one replaying the same path.
func (j *Journal) Kill() {
	if j.killed.Swap(true) {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
}

// Close flushes and closes the log.
func (j *Journal) Close() error {
	if j.killed.Swap(true) {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Path reports the log's file path.
func (j *Journal) Path() string { return j.path }

// Rewrite atomically replaces the log at path with exactly the given
// payloads: write to a temp file in the same directory, fsync it, rename
// over the log, fsync the directory. This is the compaction primitive — the
// log either keeps its old content or holds the complete new one.
func Rewrite(path string, payloads [][]byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".compact-*")
	if err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, p := range payloads {
		if _, err := w.Write(encodeFrame(p)); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: rewrite: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: rewrite fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: rewrite close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: rewrite rename: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a rename into it is durable. Filesystems
// that reject directory fsync (some CI overlays) are tolerated: the rename
// itself already happened, only its durability window widens.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		// EINVAL/ENOTSUP from exotic filesystems is not a correctness loss.
		return nil
	}
	return nil
}
