package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string) (*Journal, [][]byte, ReplayStats) {
	t.Helper()
	j, payloads, stats, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, payloads, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, payloads, stats := openT(t, path)
	if len(payloads) != 0 || stats.Valid != 0 || stats.Corrupt != 0 {
		t.Fatalf("fresh log replayed %d/%+v", len(payloads), stats)
	}
	want := [][]byte{
		[]byte(`{"type":"submitted","id":"j000001"}`),
		[]byte(`{"type":"started","id":"j000001"}`),
		[]byte(`{"type":"finished","id":"j000001","state":"done"}`),
	}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	got, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valid != 3 || stats.Corrupt != 0 || stats.TornTail {
		t.Fatalf("stats = %+v", stats)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	got, stats, err := Replay(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || len(got) != 0 || stats != (ReplayStats{}) {
		t.Fatalf("missing file: %v %v %+v", got, err, stats)
	}
}

func TestTornTailDetectedAndDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, _, _ := openT(t, path)
	if err := j.Append([]byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: chop bytes off the final record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valid != 1 || stats.Corrupt != 1 || !stats.TornTail {
		t.Fatalf("stats = %+v", stats)
	}
	if len(got) != 1 || !bytes.Equal(got[0], []byte(`{"a":1}`)) {
		t.Fatalf("replayed %q", got)
	}
}

func TestCorruptMiddleLineSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, _, _ := openT(t, path)
	j.Append([]byte(`{"a":1}`))
	j.Close()

	// Inject a flipped-bit line and a bogus-frame line between two valid
	// records: both must be skipped, the surrounding records must survive.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, "v1 00000000 {\"flipped\":true}\n")
	fmt.Fprintf(f, "not a frame at all\n")
	f.Close()
	j2, _, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append([]byte(`{"b":2}`))
	j2.Close()

	got, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valid != 2 || stats.Corrupt != 2 || stats.TornTail {
		t.Fatalf("stats = %+v", stats)
	}
	if !bytes.Equal(got[0], []byte(`{"a":1}`)) || !bytes.Equal(got[1], []byte(`{"b":2}`)) {
		t.Fatalf("replayed %q", got)
	}
}

func TestAppendRejectsNewlines(t *testing.T) {
	j, _, _ := openT(t, filepath.Join(t.TempDir(), "wal.jsonl"))
	if err := j.Append([]byte("a\nb")); err == nil {
		t.Fatal("newline payload accepted")
	}
}

func TestKillStopsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, _, _ := openT(t, path)
	if err := j.Append([]byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	j.Kill()
	if err := j.Append([]byte(`{"b":2}`)); err != ErrKilled {
		t.Fatalf("append after kill = %v, want ErrKilled", err)
	}
	// The pre-kill record is durable; the post-kill one never landed.
	got, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valid != 1 || len(got) != 1 {
		t.Fatalf("stats = %+v, got %q", stats, got)
	}
}

func TestRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, _, _ := openT(t, path)
	for i := 0; i < 100; i++ {
		if err := j.Append(fmt.Appendf(nil, `{"i":%d}`, i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	before, _ := os.Stat(path)

	keep := [][]byte{[]byte(`{"i":42}`), []byte(`{"i":99}`)}
	if err := Rewrite(path, keep); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	got, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valid != 2 || stats.Corrupt != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	for i := range keep {
		if !bytes.Equal(got[i], keep[i]) {
			t.Fatalf("record %d = %q", i, got[i])
		}
	}
	// No compaction temp files left behind.
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Fatalf("leftover file %s after rewrite", e.Name())
		}
	}
}

func TestWriteHookCanTearFrames(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, _, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tear := false
	j.Hook = func(frame []byte) []byte {
		if tear {
			return frame[:len(frame)/2] // no newline, mangled CRC
		}
		return frame
	}
	j.Append([]byte(`{"a":1}`))
	tear = true
	j.Append([]byte(`{"torn":true}`))
	tear = false
	j.Append([]byte(`{"b":2}`))
	j.Close()

	got, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	// The torn frame merges with the next record's line into one corrupt
	// line; the first record survives, later records count on the tear
	// landing mid-line. What matters: no error, and the intact prefix
	// replays.
	if stats.Corrupt == 0 {
		t.Fatalf("torn frame not detected: %+v", stats)
	}
	if stats.Valid < 1 || !bytes.Equal(got[0], []byte(`{"a":1}`)) {
		t.Fatalf("intact prefix lost: %+v %q", stats, got)
	}
}

func TestConcurrentAppendsAllDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, _, _ := openT(t, path)
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append(fmt.Appendf(nil, `{"i":%d}`, i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	_, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valid != n || stats.Corrupt != 0 {
		t.Fatalf("stats = %+v, want %d valid", stats, n)
	}
}
