package serve

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreRoundtripAndDedupe(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("hello, artifacts\n")

	d1, n1, err := st.PutBytes(body)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != int64(len(body)) {
		t.Fatalf("size = %d, want %d", n1, len(body))
	}
	d2, _, err := st.Put(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("same content, different digests: %s vs %s", d1, d2)
	}

	rc, err := st.Open(d1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("roundtrip mismatch: %q", got)
	}

	// Dedupe: exactly one object on disk.
	objects := 0
	filepath.Walk(filepath.Join(st.Dir(), "objects"), func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			objects++
		}
		return nil
	})
	if objects != 1 {
		t.Fatalf("objects on disk = %d, want 1 (dedupe)", objects)
	}
}

func TestStoreRejectsBadDigest(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"",
		"nothex",
		"../../etc/passwd",
		strings.Repeat("a", 63),
		strings.Repeat("A", 64), // uppercase is not a store digest
	} {
		if _, err := st.Open(bad); err == nil {
			t.Fatalf("Open(%q) accepted a malformed digest", bad)
		}
	}
	if _, err := st.Open(strings.Repeat("a", 64)); err == nil {
		t.Fatal("Open of an absent (well-formed) digest should fail")
	}
}
