package serve

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtl/internal/serve/chaos"
)

func TestStoreRoundtripAndDedupe(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("hello, artifacts\n")

	d1, n1, err := st.PutBytes(body)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != int64(len(body)) {
		t.Fatalf("size = %d, want %d", n1, len(body))
	}
	d2, _, err := st.Put(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("same content, different digests: %s vs %s", d1, d2)
	}

	rc, err := st.Open(d1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("roundtrip mismatch: %q", got)
	}

	// Dedupe: exactly one object on disk.
	objects := 0
	filepath.Walk(filepath.Join(st.Dir(), "objects"), func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			objects++
		}
		return nil
	})
	if objects != 1 {
		t.Fatalf("objects on disk = %d, want 1 (dedupe)", objects)
	}
}

func TestStoreSweepsOrphanedTmpOnOpen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := st.PutBytes([]byte("survivor"))
	if err != nil {
		t.Fatal(err)
	}

	// A crash mid-Put leaves a spooled temp file behind; fake one.
	orphan := filepath.Join(dir, "tmp", "put-orphaned")
	if err := os.WriteFile(orphan, []byte("half-written artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned tmp file survived reopen: %v", err)
	}
	// Committed objects are untouched by the sweep.
	if !st2.Has(d) {
		t.Fatal("sweep removed a committed object")
	}
}

func TestStoreHas(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := st.PutBytes([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Has(d) {
		t.Fatal("Has(stored) = false")
	}
	if st.Has(strings.Repeat("b", 64)) {
		t.Fatal("Has(absent) = true")
	}
	if st.Has("not a digest") {
		t.Fatal("Has(malformed) = true")
	}
}

func TestStoreChaosWriteErrors(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetChaos(chaos.MustParse("storewrite=1"))
	if _, _, err := st.PutBytes([]byte("x")); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("PutBytes under storewrite=1: %v", err)
	}
	if _, _, err := st.Put(bytes.NewReader([]byte("x"))); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Put under storewrite=1: %v", err)
	}
	// No partial state: tmp/ and objects/ stay empty.
	entries, _ := os.ReadDir(filepath.Join(st.Dir(), "tmp"))
	if len(entries) != 0 {
		t.Fatalf("injected failure left %d tmp files", len(entries))
	}
	st.SetChaos(nil)
	if _, _, err := st.PutBytes([]byte("x")); err != nil {
		t.Fatalf("detached chaos still failing: %v", err)
	}
}

func TestStoreRejectsBadDigest(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"",
		"nothex",
		"../../etc/passwd",
		strings.Repeat("a", 63),
		strings.Repeat("A", 64), // uppercase is not a store digest
	} {
		if _, err := st.Open(bad); err == nil {
			t.Fatalf("Open(%q) accepted a malformed digest", bad)
		}
	}
	if _, err := st.Open(strings.Repeat("a", 64)); err == nil {
		t.Fatal("Open of an absent (well-formed) digest should fail")
	}
}
