package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestParseFullSpec(t *testing.T) {
	h, err := Parse("seed=7; panic=0.25; storewrite=0.5; journaldelay=10ms; journaltear=0.1; crash-commit=1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.cfg
	if cfg.Seed != 7 || cfg.PanicProb != 0.25 || cfg.StoreWrite != 0.5 ||
		cfg.JournalDelay != 10*time.Millisecond || cfg.JournalTear != 0.1 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Crash[CrashCommit] != 1 || cfg.Crash[CrashStart] != 0 || cfg.Crash[CrashArtifact] != 0 {
		t.Fatalf("crash points = %v", cfg.Crash)
	}
}

func TestParseCrashAppliesToAllPoints(t *testing.T) {
	h := MustParse("crash=0.5")
	for p, v := range h.cfg.Crash {
		if v != 0.5 {
			t.Fatalf("crash[%s] = %v, want 0.5", CrashPoint(p), v)
		}
	}
}

func TestParseEmptyIsDisabled(t *testing.T) {
	for _, s := range []string{"", "  ", " ; ; "} {
		h, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if s == "" && h != nil {
			t.Fatalf("Parse(%q) = %v, want nil", s, h)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"panic=2", "panic=-0.1", "panic=x", "bogus=1", "panic",
		"journaldelay=-5ms", "seed=abc", "crash=1.5",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestSeededDeterminism(t *testing.T) {
	draw := func(seed string) []bool {
		h := MustParse(seed + ";panic=0.5")
		out := make([]bool, 64)
		for i := range out {
			out[i] = h.WorkerPanic()
		}
		return out
	}
	a, b := draw("seed=42"), draw("seed=42")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := draw("seed=43")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestProbabilityOneAlwaysFires(t *testing.T) {
	h := MustParse("panic=1;storewrite=1;journaltear=1;crash=1")
	for i := 0; i < 8; i++ {
		if !h.WorkerPanic() {
			t.Fatal("panic=1 did not fire")
		}
		if err := h.StoreWriteErr(); !errors.Is(err, ErrInjected) {
			t.Fatalf("storewrite=1 returned %v", err)
		}
		if !h.CrashNow(CrashCommit) {
			t.Fatal("crash=1 did not fire")
		}
	}
	frame := []byte("v1 deadbeef {}\n")
	torn := h.JournalHook(frame)
	if len(torn) >= len(frame) {
		t.Fatalf("journaltear=1 left frame intact (%d bytes)", len(torn))
	}
	st := h.Stats()
	if st.Panics != 8 || st.StoreErrors != 8 || st.Crashes != 8 || st.TornWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilHarnessIsInert(t *testing.T) {
	var h *Harness
	if h.Enabled() || h.WorkerPanic() || h.StoreWriteErr() != nil || h.CrashNow(CrashStart) {
		t.Fatal("nil harness injected something")
	}
	if h.Stats() != (Stats{}) {
		t.Fatal("nil harness has stats")
	}
}

// TestNilHarnessZeroAlloc is the "provably zero-overhead when disabled"
// gate: every hook the serving hot path consults must allocate nothing when
// the harness is off.
func TestNilHarnessZeroAlloc(t *testing.T) {
	var h *Harness
	allocs := testing.AllocsPerRun(1000, func() {
		if h.WorkerPanic() {
			t.Fatal("fired")
		}
		if h.StoreWriteErr() != nil {
			t.Fatal("fired")
		}
		if h.CrashNow(CrashCommit) {
			t.Fatal("fired")
		}
		if h.Enabled() {
			t.Fatal("enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled chaos hooks allocate %v/op, want 0", allocs)
	}
}

// A zero-probability param on an enabled harness must also stay allocation
// free: enabling one injection must not tax the others' call sites.
func TestZeroProbPathsZeroAlloc(t *testing.T) {
	h := MustParse("journaldelay=1ms") // enabled, but every prob is 0
	allocs := testing.AllocsPerRun(1000, func() {
		if h.WorkerPanic() || h.StoreWriteErr() != nil || h.CrashNow(CrashStart) {
			t.Fatal("fired")
		}
	})
	if allocs != 0 {
		t.Fatalf("zero-prob chaos hooks allocate %v/op, want 0", allocs)
	}
}

func TestCrashPointString(t *testing.T) {
	if CrashStart.String() != "start" || CrashArtifact.String() != "artifact" || CrashCommit.String() != "commit" {
		t.Fatalf("%v %v %v", CrashStart, CrashArtifact, CrashCommit)
	}
}
