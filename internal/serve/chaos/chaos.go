// Package chaos is the serving-layer fault harness: a seeded process that
// injects worker panics, artifact-store write errors, slow and torn journal
// writes, and pre-commit crash points into dtlserved, so recovery paths are
// exercised by tests instead of asserted in comments.
//
// Spec grammar (semicolon-separated params, all probabilities in [0,1]):
//
//	spec   := param (";" param)*
//	param  := "seed=" int          // rng seed (default 1)
//	        | "panic=" prob        // worker panics before running a job
//	        | "storewrite=" prob   // artifact-store writes fail
//	        | "journaldelay=" dur  // every journal append sleeps this long
//	        | "journaltear=" prob  // journal appends write a torn frame
//	        | "crash=" prob        // simulated hard stop at every crash point
//	        | "crash-start=" prob  // ...only at the post-start point
//	        | "crash-artifact=" prob // ...only before artifact ingestion
//	        | "crash-commit=" prob // ...only before the commit record
//
// Example: "seed=7;panic=0.2;storewrite=0.1;journaltear=0.05".
//
// Every hook is a method on a possibly-nil *Harness: a nil harness rolls
// nothing, touches no rng, and allocates nothing, so the disabled case is
// provably zero-overhead on the job hot path (see TestNilHarnessZeroAlloc).
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// CrashPoint names a place in the job lifecycle where the harness may
// simulate a hard stop (the daemon dying without writing another byte).
type CrashPoint int

const (
	// CrashStart fires right after the job's started record is journaled,
	// before any work runs: recovery must re-enqueue the job.
	CrashStart CrashPoint = iota
	// CrashArtifact fires after the experiment finished, before artifacts
	// are ingested into the store: recovery must re-run the job and the
	// store must hold no partial objects.
	CrashArtifact
	// CrashCommit fires after artifacts are ingested, before the finished
	// record is journaled: recovery re-runs the job and the re-run's
	// artifacts dedupe onto the already-committed objects byte-for-byte.
	CrashCommit
	numCrashPoints
)

// String implements fmt.Stringer.
func (p CrashPoint) String() string {
	switch p {
	case CrashStart:
		return "start"
	case CrashArtifact:
		return "artifact"
	case CrashCommit:
		return "commit"
	default:
		return fmt.Sprintf("CrashPoint(%d)", int(p))
	}
}

// ErrInjected marks every chaos-injected error, so tests (and operators
// reading job errors) can tell injected failures from organic ones.
var ErrInjected = errors.New("chaos: injected fault")

// Config holds the parsed spec.
type Config struct {
	Seed         int64
	PanicProb    float64
	StoreWrite   float64
	JournalDelay time.Duration
	JournalTear  float64
	Crash        [numCrashPoints]float64
}

// Stats counts delivered injections; read it with Harness.Stats.
type Stats struct {
	Panics      int64
	StoreErrors int64
	TornWrites  int64
	Delays      int64
	Crashes     int64
}

// Harness rolls the dice. All methods are safe for concurrent use and safe
// on a nil receiver (where they do nothing and report no faults).
type Harness struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	panics      atomic.Int64
	storeErrors atomic.Int64
	tornWrites  atomic.Int64
	delays      atomic.Int64
	crashes     atomic.Int64
}

// New builds a harness from a config.
func New(cfg Config) *Harness {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Harness{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Parse compiles a chaos spec. An empty spec returns a nil harness — the
// disabled, zero-overhead case.
func Parse(s string) (*Harness, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	cfg := Config{Seed: 1}
	for _, raw := range strings.Split(s, ";") {
		kv := strings.TrimSpace(raw)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: bad param %q (want key=value)", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "panic":
			cfg.PanicProb, err = parseProb(val)
		case "storewrite":
			cfg.StoreWrite, err = parseProb(val)
		case "journaldelay":
			cfg.JournalDelay, err = time.ParseDuration(val)
			if err == nil && cfg.JournalDelay < 0 {
				err = fmt.Errorf("delay must be non-negative")
			}
		case "journaltear":
			cfg.JournalTear, err = parseProb(val)
		case "crash":
			var p float64
			p, err = parseProb(val)
			for i := range cfg.Crash {
				cfg.Crash[i] = p
			}
		case "crash-start":
			cfg.Crash[CrashStart], err = parseProb(val)
		case "crash-artifact":
			cfg.Crash[CrashArtifact], err = parseProb(val)
		case "crash-commit":
			cfg.Crash[CrashCommit], err = parseProb(val)
		default:
			err = fmt.Errorf("unknown param")
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: param %q: %v", kv, err)
		}
	}
	return New(cfg), nil
}

// MustParse is Parse that panics on error, for tests.
func MustParse(s string) *Harness {
	h, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return h
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability must be in [0,1]")
	}
	return p, nil
}

// roll draws one uniform variate under the harness lock; p=0 short-circuits
// without touching the rng so unrelated injections stay on their seeded
// streams only when actually configured.
func (h *Harness) roll(p float64) bool {
	if h == nil || p <= 0 {
		return false
	}
	h.mu.Lock()
	hit := h.rng.Float64() < p
	h.mu.Unlock()
	return hit
}

// WorkerPanic reports whether this job should be killed by an injected
// panic. The caller panics with ErrInjected context so the worker-pool
// recover path is the one being exercised.
func (h *Harness) WorkerPanic() bool {
	if h == nil || !h.roll(h.cfg.PanicProb) {
		return false
	}
	h.panics.Add(1)
	return true
}

// StoreWriteErr returns an injected error for an artifact-store write, or
// nil.
func (h *Harness) StoreWriteErr() error {
	if h == nil || !h.roll(h.cfg.StoreWrite) {
		return nil
	}
	h.storeErrors.Add(1)
	return fmt.Errorf("%w: artifact store write error", ErrInjected)
}

// CrashNow reports whether the daemon should simulate a hard stop at the
// given crash point.
func (h *Harness) CrashNow(p CrashPoint) bool {
	if h == nil || !h.roll(h.cfg.Crash[p]) {
		return false
	}
	h.crashes.Add(1)
	return true
}

// JournalHook is a journal.WriteHook: it delays appends by the configured
// latency and, on a tear roll, truncates the frame mid-record exactly like
// a power cut during write(2).
func (h *Harness) JournalHook(frame []byte) []byte {
	if h.cfg.JournalDelay > 0 {
		h.delays.Add(1)
		time.Sleep(h.cfg.JournalDelay)
	}
	if h.roll(h.cfg.JournalTear) {
		h.tornWrites.Add(1)
		return frame[:len(frame)/2]
	}
	return frame
}

// Enabled reports whether the harness injects anything (a nil harness does
// not).
func (h *Harness) Enabled() bool { return h != nil }

// Stats snapshots delivered injections.
func (h *Harness) Stats() Stats {
	if h == nil {
		return Stats{}
	}
	return Stats{
		Panics:      h.panics.Load(),
		StoreErrors: h.storeErrors.Load(),
		TornWrites:  h.tornWrites.Load(),
		Delays:      h.delays.Load(),
		Crashes:     h.crashes.Load(),
	}
}
