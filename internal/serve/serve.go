// Package serve implements dtlserved: a long-lived HTTP/JSON daemon that
// runs DTL experiment jobs as a service. Jobs are admitted through a bounded
// queue with backpressure (429 + Retry-After when full), executed on a
// worker pool over experiments.RunAll, observed live through the same
// WatchSnapshot stream `dtlsim -watch` renders, and landed in a
// content-addressed artifact store. A server-side diff endpoint runs
// telemetry.DiffSummaries with the same tolerance gates as `dtlstat diff`,
// so an A/B policy study is two job submissions and one diff call.
//
// Identical job specs produce byte-identical artifacts (the simulator is
// deterministic by construction), which the store makes directly visible:
// repeated runs share object digests. The same determinism powers the
// idempotent result cache: re-submitting a spec whose digest already maps to
// a done job returns that job without executing anything, and an identical
// spec submitted while its twin is queued or running coalesces onto the
// in-flight execution (JobSpec.Force opts out of both).
//
// The daemon is crash-safe: every accepted job is journaled before Submit
// returns (see recovery.go for the write-ahead schema), artifact commits are
// temp-file+fsync+rename atomic, and a restart on the same store directory
// replays the journal — finished jobs come back verbatim, interrupted jobs
// re-run to byte-identical artifacts. The chaos harness
// (internal/serve/chaos, dtlserved -chaos) injects worker panics, store
// write failures, torn journal writes, and simulated power cuts at the
// crash points that recovery must survive.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/obs"
	"dtl/internal/serve/chaos"
	"dtl/internal/serve/journal"
	"dtl/internal/telemetry"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the job worker pool size; 0 starts no workers (jobs queue
	// but never run — useful for tests and drained standbys).
	Workers int
	// QueueDepth bounds the admission queue; at capacity submits get 429.
	// 0 selects the default of 8.
	QueueDepth int
	// StoreDir roots the artifact store; empty selects a temp directory.
	StoreDir string
	// JobTimeout is the default per-job run bound (a job spec may override
	// it); 0 means no default timeout.
	JobTimeout time.Duration
	// RetryAfter is the backoff hint sent with 429 responses; 0 selects 1s.
	RetryAfter time.Duration
	// Chaos, when non-nil, injects faults into workers, the artifact store,
	// and the journal. Nil (the default) is the provably zero-overhead
	// disabled case.
	Chaos *chaos.Harness
	// OnCrash runs once when a chaos crash point hard-stops the server. The
	// daemon exits the process here; tests leave it nil and start a
	// successor server on the same StoreDir instead.
	OnCrash func()
	// DefaultParallel and DefaultShards apply when a job spec leaves the
	// corresponding field 0 (the dtlserved -parallel/-shards flags). Both
	// shape scheduling only — artifacts and spec digests are unaffected —
	// so changing the server defaults never invalidates the result cache.
	DefaultParallel int
	DefaultShards   int
	// Logger receives the daemon's structured wall-clock records (job
	// lifecycle, rejections, recovery, chaos, drain); every job-scoped
	// record carries job_id, spec_digest, and stage attributes. Nil
	// discards everything.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof on Handler.
	// Off by default: profiling endpoints expose heap contents and must be
	// opted into per deployment (dtlserved -pprof).
	EnablePprof bool
}

// defaultInt returns v, or def when v is 0 (the "unset" JSON value).
func defaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// Server owns the queue, the workers, the job registry, the store, and the
// write-ahead journal.
type Server struct {
	cfg      Config
	store    *Store
	journal  *journal.Journal
	chaos    *chaos.Harness
	log      *slog.Logger
	met      serverMetrics
	recovery RecoveryStats

	mu          sync.Mutex
	jobs        map[string]*job
	order       []string          // submission order, for GET /v1/jobs
	byDigest    map[string]string // spec digest -> job id; the result cache
	queue       chan *job
	draining    bool
	crashed     bool
	queueClosed bool
	seq         int

	workers sync.WaitGroup
}

// ErrDraining rejects submissions during graceful shutdown.
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// ErrQueueFull rejects submissions when the admission queue is at capacity.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrCrashed rejects submissions after a chaos crash point hard-stopped the
// server; like a real dead daemon, it does nothing further.
var ErrCrashed = errors.New("serve: crashed (chaos hard stop)")

// ErrJournal rejects a submission whose write-ahead record could not be made
// durable: accepting it would mean losing the job on a crash.
var ErrJournal = errors.New("serve: journal write failed")

// New builds a server: it opens the store (sweeping crash debris), replays
// and compacts the journal, re-enqueues jobs that were queued or running when
// the previous process died, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.StoreDir == "" {
		dir, err := os.MkdirTemp("", "dtlserved-store-")
		if err != nil {
			return nil, err
		}
		cfg.StoreDir = dir
	}
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	store.SetChaos(cfg.Chaos)
	s := &Server{
		cfg:      cfg,
		store:    store,
		chaos:    cfg.Chaos,
		log:      cfg.Logger,
		jobs:     map[string]*job{},
		byDigest: map[string]string{},
	}
	if s.log == nil {
		s.log = obs.Nop()
	}
	s.met.init()
	store.SetObserver(func(d time.Duration, size int64) {
		s.met.storeLat.Observe(d.Seconds())
		s.met.storeSize.Observe(float64(size))
	})
	reenqueue, err := s.recoverJournal()
	if err != nil {
		return nil, err
	}
	jr, _, _, err := journal.Open(s.JournalPath())
	if err != nil {
		return nil, err
	}
	if s.chaos.Enabled() {
		jr.Hook = s.chaos.JournalHook
	}
	jr.OnSync = func(d time.Duration) { s.met.fsyncHist.Observe(d.Seconds()) }
	s.journal = jr
	// Recovered jobs ride ahead of the regular queue capacity so a full
	// crash-time queue re-enqueues without tripping admission control.
	s.queue = make(chan *job, cfg.QueueDepth+len(reenqueue))
	for _, j := range reenqueue {
		s.queue <- j
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store exposes the artifact store (read-only use expected).
func (s *Server) Store() *Store { return s.store }

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit validates a job, consults the idempotent result cache, and — on a
// miss — journals and enqueues a fresh run. The error is ErrDraining,
// ErrCrashed, ErrQueueFull, ErrJournal, or a validation error (the HTTP
// layer maps these to 503, 503, 429, 500, and 400).
//
// Cache semantics: a non-Force submission whose spec digest maps to a done
// job returns that job's status immediately (no execution); one that maps to
// a queued or running job coalesces onto the in-flight execution and returns
// its status. Failed and canceled jobs never satisfy the cache — resubmitting
// is the retry path.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	t0 := time.Now()
	spec, err := spec.normalized()
	if err != nil {
		s.log.Warn("job rejected: invalid spec", "err", err)
		return JobStatus{}, err
	}
	digest := spec.digest()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		s.met.drainRejected.Add(1)
		s.log.Warn("job rejected: server crashed", obs.KeyDigest, digest)
		return JobStatus{}, ErrCrashed
	}
	if s.draining {
		s.met.drainRejected.Add(1)
		s.log.Warn("job rejected: draining", obs.KeyDigest, digest)
		return JobStatus{}, ErrDraining
	}
	if !spec.Force {
		if prev, ok := s.jobs[s.byDigest[digest]]; ok {
			st := prev.status()
			switch {
			case st.State == StateDone:
				s.met.cacheHits.Add(1)
				s.log.Info("result cache hit", obs.KeyJob, prev.id, obs.KeyDigest, digest,
					obs.KeyStage, obs.StageSubmit.String())
				return st, nil
			case !st.State.Terminal():
				s.met.coalesced.Add(1)
				s.log.Info("coalesced onto in-flight job", obs.KeyJob, prev.id, obs.KeyDigest, digest,
					obs.KeyStage, obs.StageSubmit.String())
				return st, nil
			}
			// failed or canceled: fall through to a fresh run
		}
	}
	// Capacity check before the durable append: under s.mu, Submit is the
	// only sender, so len(queue) is exact and the send below cannot block.
	// (Journaling first and rolling back on a full queue would leave an
	// orphaned submitted record that recovery would wrongly re-enqueue.)
	if len(s.queue) == cap(s.queue) {
		s.met.queueRejected.Add(1)
		s.log.Warn("job rejected: queue full", obs.KeyDigest, digest)
		return JobStatus{}, ErrQueueFull
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%06d", s.seq), spec, digest, t0)
	// Write-ahead: the job becomes durable before it becomes visible, so a
	// crash after Submit returns can never lose it.
	tAppend := time.Now()
	if err := s.appendWAL(j, walRecord{
		Type: "submitted", ID: j.id, Time: j.submitted, Spec: &j.spec, Digest: digest,
	}); err != nil {
		s.seq-- // the id was never issued
		s.log.Error("journal append failed; rejecting job", obs.KeyJob, j.id, obs.KeyDigest, digest,
			obs.KeyStage, obs.StageJournalAppend.String(), "err", err)
		return JobStatus{}, fmt.Errorf("%w: %v", ErrJournal, err)
	}
	now := time.Now()
	s.stage(j, obs.StageSubmit, t0, tAppend)
	s.stage(j, obs.StageJournalAppend, tAppend, now)
	j.enqueued = now
	s.queue <- j
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byDigest[digest] = j.id
	s.met.submitted.Add(1)
	s.log.Info("job submitted", obs.KeyJob, j.id, obs.KeyDigest, digest,
		obs.KeyStage, obs.StageQueued.String(), "experiment", spec.Experiment, "seed", spec.Seed)
	return j.status(), nil
}

// stage records one wall-clock span on the job's timeline and in the
// per-stage latency histogram.
func (s *Server) stage(j *job, st obs.Stage, start, end time.Time) {
	j.timeline.Record(st, start, end)
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	s.met.stageHist.Observe(st, d.Seconds())
}

// chaosSpan marks a delivered chaos injection on the job's timeline and in
// the log, so "which injections hit this job" is answerable from either.
func (s *Server) chaosSpan(j *job, kind string, at time.Time) {
	s.stage(j, obs.StageChaosInject, at, time.Now())
	s.log.Warn("chaos injection", obs.KeyJob, j.id, obs.KeyDigest, j.digest,
		obs.KeyStage, obs.StageChaosInject.String(), "kind", kind)
}

// Job looks up a job by id.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation of a running job. It reports false when the
// job is unknown or not currently running (queued jobs cannot be revoked
// from the queue; they run and then observe nothing — cancellation targets
// the in-flight case).
func (s *Server) Cancel(id string) bool {
	j, ok := s.jobByID(id)
	if !ok {
		return false
	}
	return j.requestCancel()
}

// Drain stops admission (submits fail with ErrDraining), lets queued and
// in-flight jobs finish, and returns when the workers are idle. If ctx
// expires first, in-flight jobs are canceled and Drain waits for the
// (prompt, since runs poll their context) wind-down before returning
// ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		if !s.queueClosed {
			s.queueClosed = true
			close(s.queue)
		}
		s.log.Info("drain started", "queued", len(s.queue))
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	err := func() error {
		select {
		case <-idle:
			return nil
		case <-ctx.Done():
			s.mu.Lock()
			for _, j := range s.jobs {
				j.requestCancel()
			}
			s.mu.Unlock()
			<-idle
			return ctx.Err()
		}
	}()
	// Workers are idle; no appends can race the close. (After a chaos hard
	// stop the journal is already dead and Close is a harmless no-op error.)
	_ = s.journal.Close()
	s.log.Info("drain complete; journal closed", "err", errStr(err))
	return err
}

// errStr renders an error for a log attribute without a nil-vs-empty branch
// at every call site.
func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Crashed reports whether a chaos crash point hard-stopped the server.
func (s *Server) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// hardStop simulates the daemon dying mid-flight without writing another
// byte: the journal is killed (appends fail like a power cut), admission
// stops, and workers wind down leaving their current jobs non-terminal —
// exactly the state a real crash leaves on disk. The process itself survives
// so tests can open a successor server on the same store directory; the real
// daemon passes Config.OnCrash to exit the process here.
func (s *Server) hardStop() {
	s.journal.Kill()
	s.mu.Lock()
	first := !s.crashed
	s.crashed = true
	if !s.queueClosed {
		s.queueClosed = true
		close(s.queue)
	}
	s.mu.Unlock()
	if first {
		s.log.Error("chaos crash point hard-stopped the server; journal killed")
	}
	if first && s.cfg.OnCrash != nil {
		s.cfg.OnCrash()
	}
}

// worker drains the queue until Drain closes it (or a chaos hard stop kills
// the server — a crashed daemon executes nothing more, so remaining queued
// jobs stay non-terminal for the successor's recovery to pick up).
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		if s.Crashed() {
			continue
		}
		s.met.busyWorkers.Add(1)
		s.safeRun(j)
		s.met.busyWorkers.Add(-1)
	}
}

// safeRun is the worker pool's containment boundary: a panic escaping a job
// — injected by the chaos harness, or a bug in the run path outside the
// experiment's own recover — fails that job and frees the worker instead of
// killing the daemon.
func (s *Server) safeRun(j *job) {
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panicked.Add(1)
			now := time.Now()
			msg := fmt.Sprintf("worker panicked: %v", rec)
			if j.finish(StateFailed, msg, nil, nil, now) {
				s.met.finished(StateFailed, now.Sub(j.submitted))
				s.log.Error("worker panicked; job failed", obs.KeyJob, j.id, obs.KeyDigest, j.digest,
					obs.KeyStage, obs.StageRunning.String(), "panic", fmt.Sprint(rec))
				s.appendWAL(j, walRecord{Type: "finished", ID: j.id, Time: now, State: StateFailed, Error: msg})
			}
		}
	}()
	s.run(j)
}

// run executes one job end to end: working directory, telemetry sinks, the
// experiment itself, artifact ingestion, terminal state.
func (s *Server) run(j *job) {
	r, _ := experiments.ByID(j.spec.Experiment) // validated at admission

	timeout := s.cfg.JobTimeout
	if j.spec.TimeoutSec > 0 {
		timeout = time.Duration(j.spec.TimeoutSec * float64(time.Second))
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	start := time.Now()
	s.stage(j, obs.StageQueued, j.enqueued, start)
	j.start(cancel, start)
	s.log.Info("job started", obs.KeyJob, j.id, obs.KeyDigest, j.digest,
		obs.KeyStage, obs.StageRunning.String(), "experiment", j.spec.Experiment)
	s.appendWAL(j, walRecord{Type: "started", ID: j.id, Time: start})
	if s.chaos.CrashNow(chaos.CrashStart) {
		s.chaosSpan(j, "crash-start", start)
		s.hardStop()
		return
	}
	if s.chaos.WorkerPanic() {
		s.chaosSpan(j, "worker-panic", start)
		// Escapes to safeRun's recover: the worker-pool containment path is
		// the one being exercised, not the experiment-level recover below.
		panic(fmt.Errorf("%w: worker panic", chaos.ErrInjected))
	}

	finishAt := func(state State, errMsg string, res *experiments.Result, arts []ArtifactInfo, now time.Time) {
		if !j.finish(state, errMsg, res, arts, now) {
			return
		}
		s.met.finished(state, now.Sub(j.submitted))
		lvl := slog.LevelInfo
		if state == StateFailed {
			lvl = slog.LevelWarn
		}
		s.log.Log(context.Background(), lvl, "job finished",
			obs.KeyJob, j.id, obs.KeyDigest, j.digest, obs.KeyStage, obs.StageArtifactCommit.String(),
			"state", string(state), "duration", now.Sub(j.submitted), "err", errMsg)
		// The commit record. A crash between the in-memory finish and this
		// append loses only durability, not correctness: recovery re-runs the
		// job and its artifacts dedupe onto the already-committed objects.
		s.appendWAL(j, walRecord{
			Type: "finished", ID: j.id, Time: now,
			State: state, Error: errMsg, Artifacts: arts, Result: res,
		})
	}
	finish := func(state State, errMsg string, res *experiments.Result, arts []ArtifactInfo) {
		finishAt(state, errMsg, res, arts, time.Now())
	}

	work, err := os.MkdirTemp("", "dtlserved-"+j.id+"-")
	if err != nil {
		finish(StateFailed, err.Error(), nil, nil)
		return
	}
	defer os.RemoveAll(work)

	format, _ := telemetry.ParseTraceFormat(j.spec.TraceFormat)
	pol, _ := experiments.ParsePolicy(j.spec.Policy)
	tracePath := filepath.Join(work, j.spec.traceArtifactName())
	metricsPath := filepath.Join(work, "metrics.csv")
	ledgerPath := filepath.Join(work, "ledger.json")

	// The watch stream: the experiment publishes on a cap-1 coalescing
	// channel exactly as under `dtlsim -watch`; the broadcaster fans
	// snapshots out to HTTP subscribers.
	watch := make(chan experiments.WatchSnapshot, 1)
	var bcast sync.WaitGroup
	bcast.Add(1)
	go func() {
		defer bcast.Done()
		for snap := range watch {
			j.publish(snap)
		}
	}()

	var report bytes.Buffer
	opts := experiments.Options{
		Quick:       j.spec.Quick,
		Seed:        j.spec.Seed,
		Out:         &report,
		TracePath:   tracePath,
		TraceFormat: format,
		MetricsPath: metricsPath,
		LedgerPath:  ledgerPath,
		FaultSpec:   j.spec.Faults,
		Policy:      pol,
		Rack:        j.spec.Rack,
		Fabric:      j.spec.Fabric,
		Parallel:    defaultInt(j.spec.Parallel, s.cfg.DefaultParallel),
		Shards:      defaultInt(j.spec.Shards, s.cfg.DefaultShards),
		Watch:       watch,
		Ctx:         ctx,
	}

	var results []experiments.Result
	var runErr error
	func() {
		// Experiments report internal errors by panicking; a served run
		// must turn that into a failed job, not a dead worker.
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panicked.Add(1)
				runErr = fmt.Errorf("experiment panicked: %v", rec)
			}
		}()
		results = experiments.RunAll([]experiments.Runner{r}, opts, 1)
	}()
	close(watch)
	bcast.Wait()
	tRun := time.Now()
	s.stage(j, obs.StageRunning, start, tRun)

	switch {
	case runErr != nil:
		finish(StateFailed, runErr.Error(), nil, nil)
	case results[0].Canceled:
		msg := results[0].Err
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			msg = fmt.Sprintf("job timeout after %v", timeout)
		}
		finish(StateCanceled, msg, nil, nil)
	default:
		res := results[0]
		if s.chaos.CrashNow(chaos.CrashArtifact) {
			s.chaosSpan(j, "crash-artifact", tRun)
			s.hardStop()
			return
		}
		arts, err := s.ingestArtifacts(j, work, report.Bytes(), res)
		if err != nil {
			if errors.Is(err, chaos.ErrInjected) {
				s.chaosSpan(j, "store-write-error", tRun)
			}
			finish(StateFailed, err.Error(), &res, nil)
			return
		}
		if s.chaos.CrashNow(chaos.CrashCommit) {
			// Artifacts are committed but the finished record is not: the
			// dangerous window. Recovery re-runs the job; byte-determinism
			// makes the re-run dedupe onto these exact objects.
			s.chaosSpan(j, "crash-commit", tRun)
			s.hardStop()
			return
		}
		s.met.addLedger(ledgerPath)
		// The artifact-commit span ends exactly at the job's terminal
		// timestamp, so core-stage durations tile the job's wall clock.
		now := time.Now()
		s.stage(j, obs.StageArtifactCommit, tRun, now)
		finishAt(StateDone, "", &res, arts, now)
	}
}
