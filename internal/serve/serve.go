// Package serve implements dtlserved: a long-lived HTTP/JSON daemon that
// runs DTL experiment jobs as a service. Jobs are admitted through a bounded
// queue with backpressure (429 + Retry-After when full), executed on a
// worker pool over experiments.RunAll, observed live through the same
// WatchSnapshot stream `dtlsim -watch` renders, and landed in a
// content-addressed artifact store. A server-side diff endpoint runs
// telemetry.DiffSummaries with the same tolerance gates as `dtlstat diff`,
// so an A/B policy study is two job submissions and one diff call.
//
// Identical job specs produce byte-identical artifacts (the simulator is
// deterministic by construction), which the store makes directly visible:
// repeated runs share object digests.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/telemetry"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the job worker pool size; 0 starts no workers (jobs queue
	// but never run — useful for tests and drained standbys).
	Workers int
	// QueueDepth bounds the admission queue; at capacity submits get 429.
	// 0 selects the default of 8.
	QueueDepth int
	// StoreDir roots the artifact store; empty selects a temp directory.
	StoreDir string
	// JobTimeout is the default per-job run bound (a job spec may override
	// it); 0 means no default timeout.
	JobTimeout time.Duration
	// RetryAfter is the backoff hint sent with 429 responses; 0 selects 1s.
	RetryAfter time.Duration
}

// Server owns the queue, the workers, the job registry, and the store.
type Server struct {
	cfg   Config
	store *Store
	met   serverMetrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for GET /v1/jobs
	queue    chan *job
	draining bool
	seq      int

	workers sync.WaitGroup
}

// ErrDraining rejects submissions during graceful shutdown.
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// ErrQueueFull rejects submissions when the admission queue is at capacity.
var ErrQueueFull = errors.New("serve: job queue full")

// New builds a server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.StoreDir == "" {
		dir, err := os.MkdirTemp("", "dtlserved-store-")
		if err != nil {
			return nil, err
		}
		cfg.StoreDir = dir
	}
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: store,
		jobs:  map[string]*job{},
		queue: make(chan *job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store exposes the artifact store (read-only use expected).
func (s *Server) Store() *Store { return s.store }

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit validates and enqueues a job. The error is ErrDraining, ErrQueueFull,
// or a validation error (the HTTP layer maps these to 503, 429, and 400).
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	spec, err := spec.normalized()
	if err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.drainRejected.Add(1)
		return JobStatus{}, ErrDraining
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%06d", s.seq), spec, time.Now())
	select {
	case s.queue <- j:
	default:
		s.seq-- // the id was never issued
		s.met.queueRejected.Add(1)
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.met.submitted.Add(1)
	return j.status(), nil
}

// Job looks up a job by id.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation of a running job. It reports false when the
// job is unknown or not currently running (queued jobs cannot be revoked
// from the queue; they run and then observe nothing — cancellation targets
// the in-flight case).
func (s *Server) Cancel(id string) bool {
	j, ok := s.jobByID(id)
	if !ok {
		return false
	}
	return j.requestCancel()
}

// Drain stops admission (submits fail with ErrDraining), lets queued and
// in-flight jobs finish, and returns when the workers are idle. If ctx
// expires first, in-flight jobs are canceled and Drain waits for the
// (prompt, since runs poll their context) wind-down before returning
// ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.requestCancel()
		}
		s.mu.Unlock()
		<-idle
		return ctx.Err()
	}
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.met.busyWorkers.Add(1)
		s.run(j)
		s.met.busyWorkers.Add(-1)
	}
}

// run executes one job end to end: working directory, telemetry sinks, the
// experiment itself, artifact ingestion, terminal state.
func (s *Server) run(j *job) {
	r, _ := experiments.ByID(j.spec.Experiment) // validated at admission

	timeout := s.cfg.JobTimeout
	if j.spec.TimeoutSec > 0 {
		timeout = time.Duration(j.spec.TimeoutSec * float64(time.Second))
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	start := time.Now()
	j.start(cancel, start)

	finish := func(state State, errMsg string, res *experiments.Result, arts []ArtifactInfo) {
		now := time.Now()
		s.met.finished(state, now.Sub(start))
		j.finish(state, errMsg, res, arts, now)
	}

	work, err := os.MkdirTemp("", "dtlserved-"+j.id+"-")
	if err != nil {
		finish(StateFailed, err.Error(), nil, nil)
		return
	}
	defer os.RemoveAll(work)

	format, _ := telemetry.ParseTraceFormat(j.spec.TraceFormat)
	pol, _ := experiments.ParsePolicy(j.spec.Policy)
	tracePath := filepath.Join(work, j.spec.traceArtifactName())
	metricsPath := filepath.Join(work, "metrics.csv")
	ledgerPath := filepath.Join(work, "ledger.json")

	// The watch stream: the experiment publishes on a cap-1 coalescing
	// channel exactly as under `dtlsim -watch`; the broadcaster fans
	// snapshots out to HTTP subscribers.
	watch := make(chan experiments.WatchSnapshot, 1)
	var bcast sync.WaitGroup
	bcast.Add(1)
	go func() {
		defer bcast.Done()
		for snap := range watch {
			j.publish(snap)
		}
	}()

	var report bytes.Buffer
	opts := experiments.Options{
		Quick:       j.spec.Quick,
		Seed:        j.spec.Seed,
		Out:         &report,
		TracePath:   tracePath,
		TraceFormat: format,
		MetricsPath: metricsPath,
		LedgerPath:  ledgerPath,
		FaultSpec:   j.spec.Faults,
		Policy:      pol,
		Parallel:    j.spec.Parallel,
		Watch:       watch,
		Ctx:         ctx,
	}

	var results []experiments.Result
	var runErr error
	func() {
		// Experiments report internal errors by panicking; a served run
		// must turn that into a failed job, not a dead worker.
		defer func() {
			if rec := recover(); rec != nil {
				runErr = fmt.Errorf("experiment panicked: %v", rec)
			}
		}()
		results = experiments.RunAll([]experiments.Runner{r}, opts, 1)
	}()
	close(watch)
	bcast.Wait()

	switch {
	case runErr != nil:
		finish(StateFailed, runErr.Error(), nil, nil)
	case results[0].Canceled:
		msg := results[0].Err
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			msg = fmt.Sprintf("job timeout after %v", timeout)
		}
		finish(StateCanceled, msg, nil, nil)
	default:
		res := results[0]
		arts, err := s.ingestArtifacts(j, work, report.Bytes(), res)
		if err != nil {
			finish(StateFailed, err.Error(), &res, nil)
			return
		}
		s.met.addLedger(ledgerPath)
		finish(StateDone, "", &res, arts)
	}
}
