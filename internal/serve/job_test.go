package serve

import (
	"strings"
	"testing"
)

// TestSpecDigestStableWithoutRackFields pins the compatibility contract of
// the rack JobSpec fields: a spec that never sets Rack or Fabric must hash
// to the exact digest it had before the fields existed, so result caches and
// journals recorded by older servers keep resolving. The expected value is
// the digest of {"experiment":"fig12","seed":1,"quick":true,"policy":"",
// "faults":"","trace_format":"jsonl"} — frozen, not recomputed, so a field
// added without omitempty fails this test instead of silently splitting keys.
func TestSpecDigestStableWithoutRackFields(t *testing.T) {
	spec, err := JobSpec{Experiment: "fig12", Quick: true}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	const frozen = "55f302e28b25736410415c7f52817157a34fc26381ce86439fb61c15b5d5e89f"
	if got := spec.digest(); got != frozen {
		t.Fatalf("zero-rack spec digest %s != pre-rack digest %s", got, frozen)
	}

	withRack := spec
	withRack.Rack = 4
	withRack.Fabric = "policy=pack"
	if withRack.digest() == spec.digest() {
		t.Fatal("rack fields do not influence the digest; distinct runs would share artifacts")
	}
}

// TestSpecValidatesRackFields covers the admission-time rack checks: counts
// outside [0, rack.MaxExpanders] and fabric grammar errors must reject the
// spec with a message naming the problem, never reach a worker.
func TestSpecValidatesRackFields(t *testing.T) {
	base := JobSpec{Experiment: "rack", Quick: true}
	if _, err := base.normalized(); err != nil {
		t.Fatalf("plain rack spec rejected: %v", err)
	}

	bad := base
	bad.Rack = -1
	if _, err := bad.normalized(); err == nil || !strings.Contains(err.Error(), "rack") {
		t.Errorf("rack=-1 accepted (err %v)", err)
	}
	bad = base
	bad.Rack = 1 << 20
	if _, err := bad.normalized(); err == nil || !strings.Contains(err.Error(), "rack") {
		t.Errorf("huge rack accepted (err %v)", err)
	}
	bad = base
	bad.Fabric = "warp=9"
	if _, err := bad.normalized(); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("unknown fabric key accepted (err %v)", err)
	}

	good := base
	good.Rack = 4
	good.Fabric = "hop=200ns;gbs=16;policy=pack"
	if _, err := good.normalized(); err != nil {
		t.Errorf("valid rack spec rejected: %v", err)
	}
}
