package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dtl/internal/obs"
	"dtl/internal/serve"
	"dtl/internal/serve/chaos"
	"dtl/internal/serve/journal"
)

// waitTerminal polls the server directly until the job reaches a terminal
// state. Tests that crash the HTTP front end still need to observe jobs.
func waitTerminal(t *testing.T, srv *serve.Server, id string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return serve.JobStatus{}
}

// waitCrashed polls until a chaos crash point has hard-stopped the server.
func waitCrashed(t *testing.T, srv *serve.Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if srv.Crashed() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never hit the chaos crash point")
}

// digestsOf maps artifact name -> object digest for byte-identity checks.
// timeline.json is excluded: it records wall-clock measurements, so its
// bytes legitimately differ across runs of an identical spec.
func digestsOf(st serve.JobStatus) map[string]string {
	out := map[string]string{}
	for _, a := range st.Artifacts {
		if a.Name == "timeline.json" {
			continue
		}
		out[a.Name] = a.Digest
	}
	return out
}

// metricValue scrapes /metrics and returns the (unlabeled) sample value.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// submitRaw POSTs a spec and returns the HTTP status code plus the decoded
// job status, to observe the 200-cache-hit vs 202-accepted distinction.
func submitRaw(t *testing.T, base string, spec serve.JobSpec) (int, serve.JobStatus) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// A resubmitted spec must be answered from the result cache: same job id,
// HTTP 200 (not 202), no second execution, and the counters prove it.
func TestResultCacheHitSkipsExecution(t *testing.T) {
	_, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)
	spec := serve.JobSpec{Experiment: "fig12", Quick: true}

	code, first := submitRaw(t, c.BaseURL(), spec)
	if code != http.StatusAccepted {
		t.Fatalf("fresh submit = %d, want 202", code)
	}
	done, err := c.Wait(ctx, first.ID)
	if err != nil || done.State != serve.StateDone {
		t.Fatalf("first run: %v %s %s", err, done.State, done.Error)
	}

	code, second := submitRaw(t, c.BaseURL(), spec)
	if code != http.StatusOK {
		t.Fatalf("cached submit = %d, want 200", code)
	}
	if second.ID != first.ID || second.State != serve.StateDone {
		t.Fatalf("cache returned %s/%s, want %s/done", second.ID, second.State, first.ID)
	}
	if second.SpecDigest == "" || second.SpecDigest != first.SpecDigest {
		t.Fatalf("spec digests %q vs %q", first.SpecDigest, second.SpecDigest)
	}
	if got := metricValue(t, c.BaseURL(), "dtlserved_jobs_submitted_total"); got != 1 {
		t.Fatalf("jobs_submitted_total = %v, want 1 (cache hit must not resubmit)", got)
	}
	if got := metricValue(t, c.BaseURL(), "dtlserved_result_cache_hits_total"); got != 1 {
		t.Fatalf("result_cache_hits_total = %v, want 1", got)
	}

	// Force punches through the cache and runs again.
	spec.Force = true
	code, third := submitRaw(t, c.BaseURL(), spec)
	if code != http.StatusAccepted || third.ID == first.ID {
		t.Fatalf("force submit = %d id %s, want 202 and a fresh id", code, third.ID)
	}
}

// An identical spec submitted while its twin is still in flight coalesces
// onto that execution instead of queueing a duplicate.
func TestInFlightCoalescing(t *testing.T) {
	srv, c := newServer(t, serve.Config{Workers: 0}) // no workers: jobs stay queued
	spec := serve.JobSpec{Experiment: "fig12", Quick: true}

	first, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != first.ID {
		t.Fatalf("in-flight duplicate got id %s, want coalesce onto %s", dup.ID, first.ID)
	}
	if n := len(srv.Jobs()); n != 1 {
		t.Fatalf("registry has %d jobs, want 1", n)
	}
	if got := metricValue(t, c.BaseURL(), "dtlserved_jobs_coalesced_total"); got != 1 {
		t.Fatalf("jobs_coalesced_total = %v, want 1", got)
	}
	// Force still opts out.
	forced, err := srv.Submit(serve.JobSpec{Experiment: "fig12", Quick: true, Force: true})
	if err != nil || forced.ID == first.ID {
		t.Fatalf("forced duplicate: %v id %s", err, forced.ID)
	}
}

// A spec that passes admission but panics inside the experiment (fig12
// validates the fault geometry only at run time) must fail that job and leave
// the daemon serving.
func TestPanickingSpecFailsJobNotDaemon(t *testing.T) {
	srv, c := newServer(t, serve.Config{Workers: 1})
	ctx := ctxT(t)

	bad, err := srv.Submit(serve.JobSpec{Experiment: "fig12", Quick: true, Faults: "kill:ch99/rk0"})
	if err != nil {
		t.Fatalf("spec must pass admission (geometry is checked at run time): %v", err)
	}
	st := waitTerminal(t, srv, bad.ID)
	if st.State != serve.StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panicking spec finished %s (%q), want failed+panicked", st.State, st.Error)
	}
	if got := metricValue(t, c.BaseURL(), "dtlserved_jobs_panicked_total"); got != 1 {
		t.Fatalf("jobs_panicked_total = %v, want 1", got)
	}

	// The worker survived; a healthy job still runs to completion.
	ok, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, srv, ok.ID); fin.State != serve.StateDone {
		t.Fatalf("post-panic job finished %s (%s)", fin.State, fin.Error)
	}
}

// Chaos-injected worker panics take the containment path outside the
// experiment-level recover and still resolve to failed jobs.
func TestChaosWorkerPanicContained(t *testing.T) {
	h := chaos.MustParse("seed=1;panic=1")
	srv, c := newServer(t, serve.Config{Workers: 1, Chaos: h})

	st, err := srv.Submit(serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, srv, st.ID)
	if fin.State != serve.StateFailed || !strings.Contains(fin.Error, "worker panicked") {
		t.Fatalf("chaos panic finished %s (%q)", fin.State, fin.Error)
	}
	if h.Stats().Panics == 0 {
		t.Fatal("harness recorded no panic injections")
	}
	if got := metricValue(t, c.BaseURL(), "dtlserved_jobs_panicked_total"); got != 1 {
		t.Fatalf("jobs_panicked_total = %v, want 1", got)
	}
}

// The headline crash-safety property: hard-stop the daemon at each crash
// point mid-job, restart on the same store directory, and the job re-runs to
// byte-identical artifact digests; the journal compacts along the way.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	spec := serve.JobSpec{Experiment: "fig12", Quick: true}

	// Baseline digests from an undisturbed run.
	clean, err := serve.New(serve.Config{Workers: 1, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := clean.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	baseline := digestsOf(waitTerminal(t, clean, st.ID))
	if len(baseline) == 0 {
		t.Fatal("baseline run produced no artifacts")
	}

	for _, point := range []string{"crash-start", "crash-artifact", "crash-commit"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			crashed, err := serve.New(serve.Config{
				Workers:  1,
				StoreDir: dir,
				Chaos:    chaos.MustParse("seed=1;" + point + "=1"),
			})
			if err != nil {
				t.Fatal(err)
			}
			sub, err := crashed.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			waitCrashed(t, crashed)

			// A crashed daemon accepts nothing more.
			if _, err := crashed.Submit(serve.JobSpec{Experiment: "fig12", Quick: true, Force: true}); !errors.Is(err, serve.ErrCrashed) {
				t.Fatalf("submit to crashed server: %v, want ErrCrashed", err)
			}
			if st, _ := crashed.Job(sub.ID); st.State.Terminal() {
				t.Fatalf("crash point %s left the job terminal (%s)", point, st.State)
			}

			// Restart on the same directory: the journal re-enqueues the
			// interrupted job under its original id.
			successor, err := serve.New(serve.Config{Workers: 1, StoreDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			rec := successor.Recovery()
			if rec.Reenqueued != 1 || rec.Restored != 0 {
				t.Fatalf("recovery = %+v, want exactly the interrupted job re-enqueued", rec)
			}
			fin := waitTerminal(t, successor, sub.ID)
			if fin.State != serve.StateDone {
				t.Fatalf("recovered job finished %s (%s)", fin.State, fin.Error)
			}
			got := digestsOf(fin)
			if len(got) != len(baseline) {
				t.Fatalf("artifact sets differ: %v vs baseline %v", got, baseline)
			}
			for name, want := range baseline {
				if got[name] != want {
					t.Fatalf("artifact %s digest %s after recovery, want %s (byte-identity)", name, got[name], want)
				}
			}

			// Duplicate submissions after the restart hit the cache/coalesce
			// path and land on the recovered job, not a double execution.
			again, err := successor.Submit(spec)
			if err != nil || again.ID != sub.ID {
				t.Fatalf("post-recovery resubmit: %v id %s, want %s", err, again.ID, sub.ID)
			}

			if err := successor.Drain(ctxT(t)); err != nil {
				t.Fatal(err)
			}
			// A third open compacts the journal to its canonical two records
			// (submitted+finished) and finds only a settled job to restore.
			third, err := serve.New(serve.Config{Workers: 0, StoreDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			rec = third.Recovery()
			if rec.Restored != 1 || rec.Reenqueued != 0 || rec.Poisoned != 0 || rec.CorruptRecords != 0 {
				t.Fatalf("settled recovery = %+v", rec)
			}
			if st, ok := third.Job(sub.ID); !ok || st.State != serve.StateDone {
				t.Fatalf("restored job: ok=%v state=%s", ok, st.State)
			}
			payloads, _, err := journal.Replay(third.JournalPath())
			if err != nil {
				t.Fatal(err)
			}
			if len(payloads) != 2 {
				t.Fatalf("compacted journal has %d records, want 2", len(payloads))
			}
		})
	}
}

// A crash/restart cycle must be observable after the fact: every recovered
// job carries a recovery-replay span in its wall-clock timeline, and the
// per-stage histogram on /metrics counts the replay.
func TestRecoveryEmitsReplaySpansAndMetrics(t *testing.T) {
	dir := t.TempDir()
	spec := serve.JobSpec{Experiment: "fig12", Quick: true}
	crashed, err := serve.New(serve.Config{
		Workers:  1,
		StoreDir: dir,
		Chaos:    chaos.MustParse("seed=1;crash-commit=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := crashed.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCrashed(t, crashed)

	// Restart over HTTP so the stage histogram is scrapable.
	successor, c := newServer(t, serve.Config{Workers: 1, StoreDir: dir})
	fin := waitTerminal(t, successor, sub.ID)
	if fin.State != serve.StateDone {
		t.Fatalf("recovered job finished %s (%s)", fin.State, fin.Error)
	}
	if fin.Timeline == nil {
		t.Fatal("recovered job status has no timeline")
	}
	var replay *obs.StageStat
	for i, st := range fin.Timeline.Stages {
		if st.Stage == "recovery-replay" {
			replay = &fin.Timeline.Stages[i]
		}
	}
	if replay == nil {
		t.Fatalf("recovered job timeline has no recovery-replay stage: %+v", fin.Timeline.Stages)
	}
	if replay.Count < 1 || replay.Core {
		t.Fatalf("recovery-replay stat = %+v, want count >= 1 and non-core", replay)
	}
	spans := 0
	for _, sp := range fin.Timeline.Spans {
		if sp.Stage == "recovery-replay" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("recovered job timeline has no recovery-replay span")
	}
	if got := metricValue(t, c.BaseURL(), `dtlserved_stage_seconds_count{stage="recovery-replay"}`); got < 1 {
		t.Fatalf("stage_seconds_count{recovery-replay} = %v, want >= 1", got)
	}

	// A job born after the restart must not be charged for the replay.
	fresh, err := successor.Submit(serve.JobSpec{Experiment: "fig12", Quick: true, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	fst := waitTerminal(t, successor, fresh.ID)
	if fst.Timeline == nil {
		t.Fatal("fresh job has no timeline")
	}
	for _, st := range fst.Timeline.Stages {
		if st.Stage == "recovery-replay" {
			t.Fatalf("fresh job carries a recovery-replay stage: %+v", st)
		}
	}
}

// A finished record whose artifact objects are gone (crash-torn or tampered
// store) must surface as a poisoned, failed job — never a half-served result.
func TestPoisonedArtifactsDetectedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, err := serve.New(serve.Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Submit(serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, srv, st.ID)
	if fin.State != serve.StateDone || len(fin.Artifacts) == 0 {
		t.Fatalf("setup run: %s with %d artifacts", fin.State, len(fin.Artifacts))
	}
	if err := srv.Drain(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn store: one committed object vanishes.
	d := fin.Artifacts[0].Digest
	if err := os.Remove(filepath.Join(dir, "objects", d[:2], d)); err != nil {
		t.Fatal(err)
	}

	successor, err := serve.New(serve.Config{Workers: 0, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec := successor.Recovery()
	if rec.Poisoned != 1 || rec.Restored != 1 {
		t.Fatalf("recovery = %+v, want the done job restored-as-poisoned", rec)
	}
	got, ok := successor.Job(st.ID)
	if !ok || got.State != serve.StateFailed || !strings.Contains(got.Error, "poisoned") {
		t.Fatalf("poisoned job: ok=%v state=%s err=%q", ok, got.State, got.Error)
	}
	if len(got.Artifacts) != 0 {
		t.Fatal("poisoned job still advertises artifacts")
	}
	// The cache must not serve the poisoned job: resubmitting re-runs it.
	resub, err := successor.Submit(serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if resub.ID == st.ID {
		t.Fatalf("resubmit after poisoning coalesced onto the failed job %s", st.ID)
	}
}

// Torn and delayed journal writes under chaos corrupt individual records but
// never take the daemon down, and recovery drops exactly the torn frames.
func TestTornJournalWritesSurvived(t *testing.T) {
	dir := t.TempDir()
	srv, err := serve.New(serve.Config{
		Workers:  1,
		StoreDir: dir,
		Chaos:    chaos.MustParse("seed=7;journaltear=0.5;journaldelay=1ms"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := srv.Submit(serve.JobSpec{Experiment: "fig12", Quick: true, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if fin := waitTerminal(t, srv, id); fin.State != serve.StateDone {
			t.Fatalf("job %s under journal chaos: %s (%s)", id, fin.State, fin.Error)
		}
	}
	if err := srv.Drain(ctxT(t)); err != nil {
		t.Fatal(err)
	}

	// Recovery tolerates whatever the tearing left behind: every record that
	// survived intact is honored, the rest are counted and dropped, and any
	// job whose finished record was torn simply re-runs.
	successor, err := serve.New(serve.Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec := successor.Recovery()
	if rec.CorruptRecords == 0 {
		t.Fatalf("recovery = %+v; seed=7 tear=0.5 should corrupt some records", rec)
	}
	if rec.Restored+rec.Reenqueued == 0 {
		t.Fatalf("recovery = %+v recovered nothing", rec)
	}
	for _, id := range ids {
		st, ok := successor.Job(id)
		if !ok {
			// This job's submitted record was torn: acceptable loss only if
			// it had already finished in the first life (it did — asserted
			// above), so nothing user-visible was lost that the first
			// process had acknowledged durable. Skip.
			continue
		}
		if !st.State.Terminal() {
			if fin := waitTerminal(t, successor, id); fin.State != serve.StateDone {
				t.Fatalf("re-run of %s: %s (%s)", id, fin.State, fin.Error)
			}
		}
	}
}

// Recovered jobs ride ahead of the configured queue depth: a full crash-time
// queue re-enqueues completely without tripping admission control.
func TestRecoveryQueueOverflow(t *testing.T) {
	dir := t.TempDir()
	srv, err := serve.New(serve.Config{Workers: 0, QueueDepth: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.Submit(serve.JobSpec{Experiment: "fig12", Quick: true, Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Submit(serve.JobSpec{Experiment: "fig12", Quick: true, Seed: 9}); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	// Die without draining: both queued jobs are interrupted.
	successor, err := serve.New(serve.Config{Workers: 1, QueueDepth: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec := successor.Recovery(); rec.Reenqueued != 2 {
		t.Fatalf("recovery = %+v, want 2 re-enqueued", rec)
	}
	for _, st := range successor.Jobs() {
		if fin := waitTerminal(t, successor, st.ID); fin.State != serve.StateDone {
			t.Fatalf("recovered %s: %s (%s)", st.ID, fin.State, fin.Error)
		}
	}
}
