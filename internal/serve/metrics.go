package serve

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dtl/internal/obs"
	"dtl/internal/serve/chaos"
	"dtl/internal/telemetry"
)

// serverMetrics backs GET /metrics: queue and worker gauges, admission and
// completion counters, and the wall-clock histogram family — per-stage job
// latency (dtlserved_stage_seconds{stage=...}), end-to-end job duration,
// journal fsync latency, and store write latency/size — rendered in the
// Prometheus text exposition format.
type serverMetrics struct {
	submitted     atomic.Int64
	queueRejected atomic.Int64 // 429s
	drainRejected atomic.Int64 // 503s
	busyWorkers   atomic.Int64

	done     atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64

	panicked      atomic.Int64 // jobs killed by a panic (experiment or worker)
	cacheHits     atomic.Int64 // submissions satisfied by a done twin
	coalesced     atomic.Int64 // submissions merged onto an in-flight twin
	journalErrors atomic.Int64 // write-ahead appends that failed

	// Wall-clock histograms (the obs plane). Built by init before any
	// observation; Observe is lock-free and zero-alloc.
	stageHist *obs.StageHists
	jobDur    *obs.Hist
	fsyncHist *obs.Hist
	storeLat  *obs.Hist
	storeSize *obs.Hist

	mu sync.Mutex
	// attr accumulates the per-cause attribution totals of every done job's
	// cost ledger (virtual-time nanoseconds and energy-proxy units).
	attr map[string]attrTotal
}

// init builds the histogram family. Called once from New, before workers
// start.
func (m *serverMetrics) init() {
	m.stageHist = obs.NewStageHists()
	m.jobDur = obs.NewHist(obs.SecondsBuckets...)
	m.fsyncHist = obs.NewHist(obs.FsyncBuckets...)
	m.storeLat = obs.NewHist(obs.FsyncBuckets...)
	m.storeSize = obs.NewHist(obs.BytesBuckets...)
}

// attrTotal is one cause's accumulated attribution cost across done jobs.
type attrTotal struct {
	latNs  int64
	energy float64
}

// addLedger folds a finished job's ledger artifact into the per-cause
// counters; missing or unreadable ledgers (experiments without a DTL) are
// silently skipped — /metrics only ever reports what actually ran.
func (m *serverMetrics) addLedger(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	snap, err := telemetry.ParseLedgerSnapshot(f)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.attr == nil {
		m.attr = map[string]attrTotal{}
	}
	for _, c := range snap.Causes {
		t := m.attr[c.Cause]
		t.latNs += c.LatNs
		t.energy += c.Energy
		m.attr[c.Cause] = t
	}
}

func (m *serverMetrics) finished(state State, d time.Duration) {
	switch state {
	case StateDone:
		m.done.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StateCanceled:
		m.canceled.Add(1)
	}
	m.jobDur.Observe(d.Seconds())
}

// metricsView carries the server-owned state the exposition samples at
// scrape time (the rest lives on serverMetrics itself).
type metricsView struct {
	queueDepth, queueCap, workers int
	draining, crashed             bool
	recovery                      RecoveryStats
	chaos                         *chaos.Harness
}

// writeMetrics renders the exposition.
func (m *serverMetrics) writeMetrics(w io.Writer, v metricsView) {
	counter := func(name, help string, n int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, n)
	}
	gauge := func(name, help string, n int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, n)
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	counter("dtlserved_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted.Load())
	counter("dtlserved_jobs_rejected_total", "Jobs rejected with 429 (queue full).", m.queueRejected.Load())
	counter("dtlserved_jobs_drain_rejected_total", "Jobs rejected with 503 (draining).", m.drainRejected.Load())
	fmt.Fprintf(w, "# HELP dtlserved_jobs_completed_total Jobs finished, by terminal state.\n")
	fmt.Fprintf(w, "# TYPE dtlserved_jobs_completed_total counter\n")
	fmt.Fprintf(w, "dtlserved_jobs_completed_total{state=\"done\"} %d\n", m.done.Load())
	fmt.Fprintf(w, "dtlserved_jobs_completed_total{state=\"failed\"} %d\n", m.failed.Load())
	fmt.Fprintf(w, "dtlserved_jobs_completed_total{state=\"canceled\"} %d\n", m.canceled.Load())
	counter("dtlserved_jobs_panicked_total", "Jobs killed by a panic and contained by the worker pool.", m.panicked.Load())
	counter("dtlserved_result_cache_hits_total", "Submissions answered from the idempotent result cache.", m.cacheHits.Load())
	counter("dtlserved_jobs_coalesced_total", "Submissions coalesced onto an identical in-flight job.", m.coalesced.Load())
	counter("dtlserved_journal_errors_total", "Write-ahead journal appends that failed.", m.journalErrors.Load())
	gauge("dtlserved_queue_depth", "Jobs waiting in the admission queue.", int64(v.queueDepth))
	gauge("dtlserved_queue_capacity", "Admission queue capacity.", int64(v.queueCap))
	gauge("dtlserved_workers", "Worker pool size.", int64(v.workers))
	gauge("dtlserved_workers_busy", "Workers currently running a job.", m.busyWorkers.Load())
	gauge("dtlserved_draining", "1 while the server refuses new jobs.", b2i(v.draining))
	gauge("dtlserved_crashed", "1 after a chaos crash point hard-stopped the server.", b2i(v.crashed))
	gauge("dtlserved_recovery_jobs_restored", "Terminal jobs restored from the journal at startup.", int64(v.recovery.Restored))
	gauge("dtlserved_recovery_jobs_reenqueued", "Interrupted jobs re-enqueued from the journal at startup.", int64(v.recovery.Reenqueued))
	gauge("dtlserved_recovery_artifacts_poisoned", "Done jobs demoted to failed at startup for crash-poisoned artifacts.", int64(v.recovery.Poisoned))
	gauge("dtlserved_recovery_journal_corrupt_records", "Journal records dropped at startup for CRC or framing failures.", int64(v.recovery.CorruptRecords))
	if v.chaos.Enabled() {
		cs := v.chaos.Stats()
		fmt.Fprintf(w, "# HELP dtlserved_chaos_injections_total Faults delivered by the chaos harness, by kind.\n")
		fmt.Fprintf(w, "# TYPE dtlserved_chaos_injections_total counter\n")
		fmt.Fprintf(w, "dtlserved_chaos_injections_total{kind=\"panic\"} %d\n", cs.Panics)
		fmt.Fprintf(w, "dtlserved_chaos_injections_total{kind=\"store_error\"} %d\n", cs.StoreErrors)
		fmt.Fprintf(w, "dtlserved_chaos_injections_total{kind=\"torn_write\"} %d\n", cs.TornWrites)
		fmt.Fprintf(w, "dtlserved_chaos_injections_total{kind=\"delay\"} %d\n", cs.Delays)
		fmt.Fprintf(w, "dtlserved_chaos_injections_total{kind=\"crash\"} %d\n", cs.Crashes)
	}

	m.mu.Lock()
	causes := make([]string, 0, len(m.attr))
	for c := range m.attr {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	attr := make([]struct {
		cause string
		t     attrTotal
	}, 0, len(causes))
	for _, c := range causes {
		attr = append(attr, struct {
			cause string
			t     attrTotal
		}{c, m.attr[c]})
	}
	m.mu.Unlock()

	if len(attr) > 0 {
		fmt.Fprintf(w, "# HELP dtlserved_attr_latency_ns_total Attributed virtual-time latency by cause, summed over done jobs.\n")
		fmt.Fprintf(w, "# TYPE dtlserved_attr_latency_ns_total counter\n")
		for _, a := range attr {
			fmt.Fprintf(w, "dtlserved_attr_latency_ns_total{cause=%q} %d\n", a.cause, a.t.latNs)
		}
		fmt.Fprintf(w, "# HELP dtlserved_attr_energy_total Attributed energy-proxy units by cause, summed over done jobs.\n")
		fmt.Fprintf(w, "# TYPE dtlserved_attr_energy_total counter\n")
		for _, a := range attr {
			fmt.Fprintf(w, "dtlserved_attr_energy_total{cause=%q} %g\n", a.cause, a.t.energy)
		}
	}
	m.stageHist.Write(w, "dtlserved_stage_seconds")
	histogram := func(h *obs.Hist, name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		h.WriteSeries(w, name, "")
	}
	histogram(m.jobDur, "dtlserved_job_duration_seconds", "End-to-end wall-clock job latency.")
	histogram(m.fsyncHist, "dtlserved_journal_fsync_seconds", "Journal append fsync latency.")
	histogram(m.storeLat, "dtlserved_store_write_seconds", "Artifact store object write latency.")
	histogram(m.storeSize, "dtlserved_store_write_bytes", "Artifact store object write size.")
}
