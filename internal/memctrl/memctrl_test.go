package memctrl

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

func newCtrl() *Controller {
	dev := dram.MustDevice(dram.Default1TB(), dram.DefaultPowerModel(), dram.DefaultTiming())
	return New(dev)
}

func TestFirstAccessIsRowMiss(t *testing.T) {
	c := newCtrl()
	res := c.Access(Request{Addr: 0, Arrive: 0})
	if res.RowHit {
		t.Fatal("first access should miss the row buffer")
	}
	tm := dram.DefaultTiming()
	want := tm.TRP + tm.TRCD + tm.TCL + tm.TBL
	if res.Done != want {
		t.Fatalf("done = %v, want %v", res.Done, want)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c := newCtrl()
	first := c.Access(Request{Addr: 0, Arrive: 0})
	// Same line region (same bank, same row), arriving after the bank frees.
	second := c.Access(Request{Addr: 64, Arrive: first.Done + 100})
	if !second.RowHit {
		t.Fatal("second access to same row should hit")
	}
	if second.Latency(first.Done+100) >= first.Latency(0) {
		t.Fatalf("row hit latency %v not faster than miss %v",
			second.Latency(first.Done+100), first.Latency(0))
	}
}

func TestBankConflictSerializes(t *testing.T) {
	c := newCtrl()
	// Two different rows in the same bank: addresses separated by
	// banksPerRank * 4KiB map to the same bank, different row.
	stride := int64(16 * 4096)
	r1 := c.Access(Request{Addr: 0, Arrive: 0})
	r2 := c.Access(Request{Addr: dram.DPA(stride), Arrive: 0})
	if r2.RowHit {
		t.Fatal("different row should not row-hit")
	}
	if r2.Start < r1.Done-dram.DefaultTiming().TBL {
		t.Fatalf("bank conflict not serialized: r1 done %v, r2 start %v", r1.Done, r2.Start)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	c := newCtrl()
	r1 := c.Access(Request{Addr: 0, Arrive: 0})
	// Next 4KiB block: same channel/rank, different bank.
	r2 := c.Access(Request{Addr: 4096, Arrive: 0})
	if r2.Start >= r1.Done {
		t.Fatalf("bank-parallel requests serialized: r1 done %v, r2 start %v", r1.Done, r2.Start)
	}
}

func TestSelfRefreshWakeDelay(t *testing.T) {
	c := newCtrl()
	dev := c.Device()
	dev.SetState(dram.RankID{Channel: 0, Rank: 0}, dram.SelfRefresh, 0)
	res := c.Access(Request{Addr: 0, Arrive: 1000})
	if res.WakeDelay != dram.DefaultTiming().SelfRefreshExit {
		t.Fatalf("wake delay = %v, want %v", res.WakeDelay, dram.DefaultTiming().SelfRefreshExit)
	}
	if dev.State(dram.RankID{Channel: 0, Rank: 0}) != dram.Standby {
		t.Fatal("rank should be back in standby after access")
	}
	if c.Wakeups() != 1 {
		t.Fatalf("wakeups = %d, want 1", c.Wakeups())
	}
}

func TestMPSMAccessPanics(t *testing.T) {
	c := newCtrl()
	c.Device().SetState(dram.RankID{Channel: 0, Rank: 0}, dram.MPSM, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic accessing MPSM rank")
		}
	}()
	c.Access(Request{Addr: 0, Arrive: 100})
}

func TestWindowCounters(t *testing.T) {
	c := newCtrl()
	codec := c.Device().Codec()
	// Three accesses to ch0/rk0, one to ch1/rk0.
	c.Access(Request{Addr: 0, Arrive: 0})
	c.Access(Request{Addr: 64, Arrive: 100})
	c.Access(Request{Addr: 128, Arrive: 200})
	chan1Seg := codec.DSNToDPA(codec.EncodeDSN(dram.Loc{Rank: 0, Channel: 1, Index: 0}))
	c.Access(Request{Addr: chan1Seg, Arrive: 300})

	if got := c.WindowAccesses(dram.RankID{Channel: 0, Rank: 0}); got != 3 {
		t.Fatalf("ch0/rk0 window accesses = %d, want 3", got)
	}
	if got := c.WindowAccesses(dram.RankID{Channel: 1, Rank: 0}); got != 1 {
		t.Fatalf("ch1/rk0 window accesses = %d, want 1", got)
	}
	c.ResetWindow()
	if got := c.WindowAccesses(dram.RankID{Channel: 0, Rank: 0}); got != 0 {
		t.Fatalf("after reset, window accesses = %d", got)
	}
	// Lifetime survives the reset.
	life := c.LifetimeStats()
	gr := codec.GlobalRank(0, 0)
	if life[gr].Accesses != 3 || life[gr].Bytes != 3*LineBytes {
		t.Fatalf("lifetime = %+v", life[gr])
	}
	if c.TotalBytes() != 4*LineBytes {
		t.Fatalf("total bytes = %d", c.TotalBytes())
	}
}

func TestChannelUtilizationAndIdleBandwidth(t *testing.T) {
	c := newCtrl()
	for i := int64(0); i < 100; i++ {
		c.Access(Request{Addr: dram.DPA(i * 64), Arrive: sim.Time(i * 5)})
	}
	now := sim.Time(10000)
	u := c.ChannelUtilization(0, now)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	peak := c.PeakChannelBandwidthGBs()
	idle := c.IdleBandwidthGBs(0, now)
	if idle >= peak || idle <= 0 {
		t.Fatalf("idle bw %v vs peak %v", idle, peak)
	}
	if got := c.ChannelUtilization(1, now); got != 0 {
		t.Fatalf("untouched channel utilization = %v", got)
	}
}

func TestMigrationTimeScalesWithBytes(t *testing.T) {
	c := newCtrl()
	t1 := c.MigrationTime(0, 2<<20, 1000)
	t2 := c.MigrationTime(0, 4<<20, 1000)
	if t2 <= t1 {
		t.Fatalf("migration time not increasing: %v vs %v", t1, t2)
	}
	// On an idle channel, 2MiB at ~12.8 GB/s should take ~164us.
	if t1 < 100*sim.Microsecond || t1 > 300*sim.Microsecond {
		t.Fatalf("idle-channel 2MiB migration = %v, want ~164us", t1)
	}
}

func TestMigrationTimeFloorUnderSaturation(t *testing.T) {
	c := newCtrl()
	// Saturate channel 0: back-to-back accesses with zero think time.
	var now sim.Time
	for i := int64(0); i < 2000; i++ {
		res := c.Access(Request{Addr: dram.DPA(i * 64), Arrive: now})
		now = res.Start
	}
	mt := c.MigrationTime(0, 2<<20, now)
	if mt <= 0 {
		t.Fatalf("migration time = %v", mt)
	}
	// Floor is 5% of peak: 2MiB / (0.05*12.8GB/s) ≈ 3.3ms; must be finite.
	if mt > 10*sim.Millisecond {
		t.Fatalf("migration under saturation too slow: %v", mt)
	}
}

func TestRankSwitchPenalty(t *testing.T) {
	c := newCtrl()
	codec := c.Device().Codec()
	g := c.Device().Geometry()
	rk1Addr := codec.DSNToDPA(codec.EncodeDSN(dram.Loc{Rank: 1, Channel: 0, Index: 0}))
	_ = g
	r1 := c.Access(Request{Addr: 0, Arrive: 0})
	// Give the bus time to clear so only the rank-switch penalty differs.
	r2 := c.Access(Request{Addr: rk1Addr, Arrive: r1.Done + 1000})
	r3 := c.Access(Request{Addr: rk1Addr + 4096, Arrive: r2.Done + 1000})
	lat2 := r2.Latency(r1.Done + 1000) // rank switch 0->1
	lat3 := r3.Latency(r2.Done + 1000) // same rank
	if lat2 != lat3+dram.DefaultTiming().TRTR {
		t.Fatalf("rank switch penalty: lat2=%v lat3=%v", lat2, lat3)
	}
}

func TestWriteRecoveryHoldsBank(t *testing.T) {
	tm := dram.DefaultTiming()
	// Same bank, different rows: the second access waits for the first's
	// bank occupancy, which is longer after a write (tWR).
	cR := newCtrl()
	r1 := cR.Access(Request{Addr: 0, Arrive: 0})
	r2 := cR.Access(Request{Addr: dram.DPA(16 * 4096), Arrive: 0})
	readGap := r2.Start - r1.Start

	cW := newCtrl()
	w1 := cW.Access(Request{Addr: 0, Write: true, Arrive: 0})
	w2 := cW.Access(Request{Addr: dram.DPA(16 * 4096), Write: true, Arrive: 0})
	writeGap := w2.Start - w1.Start

	if writeGap < readGap+tm.TWR {
		t.Fatalf("write recovery not charged: read gap %v, write gap %v", readGap, writeGap)
	}
}

func TestBusTurnaroundPenalty(t *testing.T) {
	tm := dram.DefaultTiming()
	// Alternate read/write to independent banks far apart in time so only
	// the turnaround term differs.
	c := newCtrl()
	c.Access(Request{Addr: 0, Write: false, Arrive: 0})
	// Same-direction access to another bank, long after.
	rSame := c.Access(Request{Addr: 4096, Write: false, Arrive: 10_000})
	if rSame.Start != 10_000 {
		t.Fatalf("same-direction access delayed: start %v", rSame.Start)
	}
	// Direction switch read -> write pays tRTW.
	rSwitch := c.Access(Request{Addr: 2 * 4096, Write: true, Arrive: 20_000})
	if rSwitch.Start != 20_000+tm.TRTW {
		t.Fatalf("read->write start %v, want %v", rSwitch.Start, 20_000+tm.TRTW)
	}
	// And write -> read pays tWTR.
	rBack := c.Access(Request{Addr: 3 * 4096, Write: false, Arrive: 30_000})
	if rBack.Start != 30_000+tm.TWTR {
		t.Fatalf("write->read start %v, want %v", rBack.Start, 30_000+tm.TWTR)
	}
}

// TestResetWindowLifetimeNoDrift checks the invariant the profiling loop
// depends on: summing every window between resets reproduces the lifetime
// counters exactly, for both accesses and bytes.
func TestResetWindowLifetimeNoDrift(t *testing.T) {
	c := newCtrl()
	nRanks := len(c.LifetimeStats())
	windowSum := make([]RankStats, nRanks)

	now := sim.Time(0)
	addr := int64(0)
	for epoch := 0; epoch < 5; epoch++ {
		for i := 0; i < 10*(epoch+1); i++ {
			c.Access(Request{Addr: dram.DPA(addr), Arrive: now})
			addr += 4 << 20 // wander across segments (and thus ranks/channels)
			now += 1000
		}
		for gr, ws := range c.WindowStats() {
			windowSum[gr].Accesses += ws.Accesses
			windowSum[gr].Bytes += ws.Bytes
		}
		c.ResetWindow()
		for _, ws := range c.WindowStats() {
			if ws.Accesses != 0 || ws.Bytes != 0 {
				t.Fatalf("epoch %d: window not cleared: %+v", epoch, ws)
			}
		}
	}

	life := c.LifetimeStats()
	var lifeTotal int64
	for gr := range life {
		if windowSum[gr] != life[gr] {
			t.Fatalf("rank %d: window sum %+v drifted from lifetime %+v",
				gr, windowSum[gr], life[gr])
		}
		lifeTotal += life[gr].Bytes
	}
	if lifeTotal != c.TotalBytes() {
		t.Fatalf("TotalBytes %d != summed lifetime %d", c.TotalBytes(), lifeTotal)
	}
}
