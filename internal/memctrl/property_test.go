package memctrl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

// TestPropertyCausality: for any request stream with nondecreasing arrival
// times, every result respects Done >= Start >= Arrive, and the channel's
// bus reservation never moves backwards.
func TestPropertyCausality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCtrl()
		if rng.Intn(2) == 0 {
			c.EnableRefresh()
		}
		g := c.Device().Geometry()
		now := sim.Time(0)
		prevBus := make([]sim.Time, g.Channels)
		for i := 0; i < 2000; i++ {
			now += sim.Time(rng.Intn(50))
			addr := dram.DPA(rng.Int63n(g.TotalBytes())) &^ 63
			res := c.Access(Request{Addr: addr, Write: rng.Intn(3) == 0, Arrive: now})
			if res.Start < now {
				t.Logf("seed %d: start %v before arrive %v", seed, res.Start, now)
				return false
			}
			if res.Done < res.Start {
				t.Logf("seed %d: done %v before start %v", seed, res.Done, res.Start)
				return false
			}
			for ch := 0; ch < g.Channels; ch++ {
				if c.ChannelBusyUntil(ch) < prevBus[ch] {
					t.Logf("seed %d: channel %d bus moved backwards", seed, ch)
					return false
				}
				prevBus[ch] = c.ChannelBusyUntil(ch)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCountersConserved: window + lifetime counters agree with the
// number of requests issued, regardless of the address pattern.
func TestPropertyCountersConserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCtrl()
		g := c.Device().Geometry()
		const n = 1500
		for i := 0; i < n; i++ {
			addr := dram.DPA(rng.Int63n(g.TotalBytes())) &^ 63
			c.Access(Request{Addr: addr, Arrive: sim.Time(i * 10)})
		}
		var winTotal, lifeTotal int64
		for _, s := range c.WindowStats() {
			winTotal += s.Accesses
		}
		for _, s := range c.LifetimeStats() {
			lifeTotal += s.Accesses
		}
		if winTotal != n || lifeTotal != n {
			t.Logf("seed %d: window %d lifetime %d want %d", seed, winTotal, lifeTotal, n)
			return false
		}
		return c.TotalBytes() == int64(n)*LineBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLatencyBounded: with bounded offered load, no request's
// latency explodes beyond a generous bound (no runaway queueing in the
// FR-FCFS model).
func TestPropertyLatencyBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCtrl()
		g := c.Device().Geometry()
		now := sim.Time(0)
		for i := 0; i < 5000; i++ {
			now += sim.Time(20 + rng.Intn(20)) // well under channel capacity
			addr := dram.DPA(rng.Int63n(g.TotalBytes())) &^ 63
			res := c.Access(Request{Addr: addr, Arrive: now})
			if lat := res.Done - now; lat > 2*sim.Microsecond {
				t.Logf("seed %d: latency %v at i=%d", seed, lat, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
