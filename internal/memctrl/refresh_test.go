package memctrl

import (
	"testing"

	"dtl/internal/dram"
	"dtl/internal/sim"
)

func TestRefreshDisabledByDefault(t *testing.T) {
	c := newCtrl()
	for i := int64(0); i < 1000; i++ {
		c.Access(Request{Addr: dram.DPA(i * 64), Arrive: sim.Time(i * 100)})
	}
	if c.RefreshStalls() != 0 {
		t.Fatalf("refresh stalls with refresh disabled: %d", c.RefreshStalls())
	}
}

func TestRefreshStallsRequestsInWindow(t *testing.T) {
	c := newCtrl()
	c.EnableRefresh()
	tm := dram.DefaultTiming()
	// Rank 0 (global rank 0) has refresh phase 0: a request arriving at
	// t=0 lands inside [0, TRFC) and must be pushed past it.
	res := c.Access(Request{Addr: 0, Arrive: 0})
	if res.Start < tm.TRFC {
		t.Fatalf("request started at %v inside the refresh window [0,%v)", res.Start, tm.TRFC)
	}
	if c.RefreshStalls() != 1 {
		t.Fatalf("stalls = %d, want 1", c.RefreshStalls())
	}
}

func TestRefreshOutsideWindowUnaffected(t *testing.T) {
	c := newCtrl()
	c.EnableRefresh()
	tm := dram.DefaultTiming()
	// Arrive just after the refresh window of rank 0 closes.
	arrive := tm.TRFC + 10
	res := c.Access(Request{Addr: 0, Arrive: arrive})
	if res.Start != arrive {
		t.Fatalf("start = %v, want %v (no stall expected)", res.Start, arrive)
	}
	if c.RefreshStalls() != 0 {
		t.Fatalf("stalls = %d, want 0", c.RefreshStalls())
	}
}

func TestRefreshPeriodicity(t *testing.T) {
	c := newCtrl()
	c.EnableRefresh()
	tm := dram.DefaultTiming()
	// A request arriving exactly one TREFI later hits the next window.
	res := c.Access(Request{Addr: 0, Arrive: tm.TREFI + 1})
	if res.Start < tm.TREFI+tm.TRFC {
		t.Fatalf("start = %v, want past second refresh window %v", res.Start, tm.TREFI+tm.TRFC)
	}
}

func TestRefreshPhasesStaggered(t *testing.T) {
	c := newCtrl()
	c.EnableRefresh()
	codec := c.Device().Codec()
	// A request to a mid-phase rank at t=0 should NOT stall: its refresh
	// window sits half a TREFI away (rank 4 / channel 0 = global rank 16
	// of 32, phase = TREFI/2).
	addr := codec.DSNToDPA(codec.EncodeDSN(dram.Loc{Rank: 4, Channel: 0, Index: 0}))
	res := c.Access(Request{Addr: addr, Arrive: 0})
	if res.Start != 0 {
		t.Fatalf("staggered rank stalled at t=0: start %v", res.Start)
	}
}

func TestRefreshThroughputCost(t *testing.T) {
	// With refresh on, a long run accumulates some stalls but the fraction
	// of delayed requests stays near TRFC/TREFI (~4.5%).
	c := newCtrl()
	c.EnableRefresh()
	n := int64(200_000)
	for i := int64(0); i < n; i++ {
		c.Access(Request{Addr: dram.DPA((i * 4096) % (1 << 30)), Arrive: sim.Time(i * 40)})
	}
	frac := float64(c.RefreshStalls()) / float64(n)
	if frac <= 0 || frac > 0.15 {
		t.Fatalf("refresh stall fraction %.4f, want in (0, 0.15]", frac)
	}
}
