// Package memctrl models the per-channel DRAM memory controllers inside the
// CXL device. It services cache-line requests against a bank/bus timing
// model (DDR4-like), charges rank power-state exit penalties, keeps per-rank
// access counters for DTL's hotness profiling, and accounts bandwidth for
// the active-power model.
//
// The model is a service-time calculator rather than a cycle-accurate
// pipeline: requests are submitted in nondecreasing arrival-time order per
// channel, and the controller computes each request's start and completion
// times from bank readiness, channel-bus occupancy, rank-switch penalties,
// and power-state exits. Migration traffic (segment copies/swaps issued by
// DTL) is modeled through the idle-bandwidth estimator: migration requests
// are only issued when the foreground request queue of the channel is empty
// (§4.2), so migrations consume exactly the bandwidth foreground traffic
// leaves unused.
package memctrl

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// LineBytes is the request granularity (one cache line).
const LineBytes = 64

// Request is a single post-cache memory access presented to the controller.
type Request struct {
	Addr   dram.DPA
	Write  bool
	Arrive sim.Time
}

// Result describes the timing of a serviced request.
type Result struct {
	Start  sim.Time // when the command began issuing on the channel
	Done   sim.Time // when the data burst completed
	RowHit bool     // whether the access hit the open row
	// WakeDelay is the extra delay charged because the target rank had to
	// exit self-refresh (MPSM ranks hold no live data; an access to one is
	// a model bug and panics).
	WakeDelay sim.Time
	// Degraded is the extra repair/retry latency charged because the target
	// rank is in the failed state; zero on healthy ranks.
	Degraded sim.Time
}

// Latency reports the request's total latency.
func (r Result) Latency(arrive sim.Time) sim.Time { return r.Done - arrive }

// RankStats accumulates per-rank counters over a profiling window.
type RankStats struct {
	Accesses int64
	Bytes    int64
}

// Controller services requests for all channels of one device.
//
// Hot state is laid out struct-of-arrays and indexed only by the request's
// channel and the ranks belonging to it, so requests on disjoint channels
// touch disjoint memory. The sharded replay path (experiments.Options.Shards,
// sim.ShardedEngine) relies on that: each shard services one channel's
// request stream from its own goroutine. That is safe provided (a) each
// channel's stream keeps the nondecreasing arrival order documented above,
// and (b) no cross-channel aggregate (TotalBytes, WindowStats, registry
// gauges, ...) is read concurrently with Access — the sharded engine's
// barrier provides exactly that quiescence.
type Controller struct {
	dev   *dram.Device
	codec *dram.AddressCodec
	tim   dram.Timing

	busFree   []sim.Time // per channel: earliest next command slot
	lastRank  []int      // per channel: last rank that used the bus
	lastWrite []bool     // per channel: whether the last burst was a write
	bankFree  [][]sim.Time
	openRow   [][]int64

	// Per-global-rank profiling counters, struct-of-arrays: DTL's hotness
	// profiler sweeps every rank's window count each profiling window, and
	// a dense []int64 walk touches half the cache lines the old
	// []RankStats layout did. Bytes are derived (accesses × LineBytes), so
	// only the access counts are kept hot.
	winAccesses  []int64    // per global rank, since last ResetWindow
	lifeAccesses []int64    // per global rank, total
	busyNs       []sim.Time // per channel: accumulated bus occupancy
	// Telemetry counters, kept per channel (struct-of-arrays, indexed by
	// the request's channel) so Access never writes cross-channel state;
	// the exported accessors and RegisterMetrics gauges sum them at read
	// time, which the sharded replay only does at barriers.
	wakeups  []int64
	stalls   []int64
	degraded []int64

	// refreshEnabled blocks each standby rank for TRFC every TREFI, with
	// per-rank phase staggering (all-bank refresh). Self-refresh and MPSM
	// ranks refresh internally or not at all, so only standby ranks stall.
	refreshEnabled bool
}

// New builds a controller over the device.
func New(dev *dram.Device) *Controller {
	g := dev.Geometry()
	nRanks := g.TotalRanks()
	c := &Controller{
		dev:          dev,
		codec:        dev.Codec(),
		tim:          dev.Timing(),
		busFree:      make([]sim.Time, g.Channels),
		lastRank:     make([]int, g.Channels),
		lastWrite:    make([]bool, g.Channels),
		winAccesses:  make([]int64, nRanks),
		lifeAccesses: make([]int64, nRanks),
		busyNs:       make([]sim.Time, g.Channels),
		wakeups:      make([]int64, g.Channels),
		stalls:       make([]int64, g.Channels),
		degraded:     make([]int64, g.Channels),
	}
	for ch := range c.lastRank {
		c.lastRank[ch] = -1
	}
	c.bankFree = make([][]sim.Time, nRanks)
	c.openRow = make([][]int64, nRanks)
	for r := 0; r < nRanks; r++ {
		c.bankFree[r] = make([]sim.Time, g.BanksPerRank)
		c.openRow[r] = make([]int64, g.BanksPerRank)
		for b := range c.openRow[r] {
			c.openRow[r][b] = -1
		}
	}
	return c
}

// Device returns the underlying DRAM device.
func (c *Controller) Device() *dram.Device { return c.dev }

// Access services one request and returns its timing. Accessing a rank in
// MPSM panics: MPSM does not retain data, so DTL must never route a live
// access there.
func (c *Controller) Access(req Request) Result {
	ch, rk := c.codec.RankOf(req.Addr)
	id := dram.RankID{Channel: ch, Rank: rk}
	gr := c.codec.GlobalRank(ch, rk)

	var wake sim.Time
	switch c.dev.State(id) {
	case dram.MPSM:
		panic(fmt.Sprintf("memctrl: access to MPSM rank %v at dpa %d", id, req.Addr))
	case dram.SelfRefresh:
		ready := c.dev.SetState(id, dram.Standby, req.Arrive)
		wake = ready - req.Arrive
		c.wakeups[ch]++
	}

	rankReady := c.dev.ReadyAt(id)
	// The command-bus slot is claimed FR-FCFS style: a request stalled on
	// its bank or rank does not block the channel for younger requests to
	// other banks, so the bus reservation advances from the arrival point
	// while the request's own start also waits for bank/rank readiness.
	busSlot := maxT(req.Arrive, c.busFree[ch])

	bank := c.codec.BankOf(req.Addr)
	row := c.codec.RowOf(req.Addr)
	start := maxT(busSlot, rankReady, c.bankFree[gr][bank])
	if c.refreshEnabled {
		start = c.afterRefresh(ch, gr, start)
	}

	if c.lastRank[ch] >= 0 && c.lastRank[ch] != rk {
		start += c.tim.TRTR
	}
	// Data-bus turnaround between reads and writes (tWTR/tRTW).
	if c.lastWrite[ch] != req.Write {
		if req.Write {
			start += c.tim.TRTW
		} else {
			start += c.tim.TWTR
		}
	}

	rowHit := c.openRow[gr][bank] == row
	var accessLat sim.Time
	if rowHit {
		accessLat = c.tim.TCL
	} else {
		accessLat = c.tim.TRP + c.tim.TRCD + c.tim.TCL
		c.openRow[gr][bank] = row
	}
	// A failed rank still serves data but in degraded mode: every access
	// pays the repair/retry penalty until the DTL evacuates the rank.
	var degraded sim.Time
	if c.dev.FailedGlobal(gr) {
		degraded = c.tim.DegradedAccess
		accessLat += degraded
		c.degraded[ch]++
	}

	done := start + accessLat + c.tim.TBL

	busHold := c.tim.TCCD
	if c.tim.TBL > busHold {
		busHold = c.tim.TBL
	}
	c.busFree[ch] = busSlot + busHold
	c.busyNs[ch] += busHold
	c.lastRank[ch] = rk
	c.lastWrite[ch] = req.Write
	// Row hits stream CAS-to-CAS at TCCD; a row miss occupies the bank for
	// the full activate cycle, with tRAS as the turnaround floor.
	var bankBusyUntil sim.Time
	if rowHit {
		bankBusyUntil = start + c.tim.TCCD
	} else {
		bankBusyUntil = done
		if min := start + c.tim.TRAS; min > bankBusyUntil {
			bankBusyUntil = min
		}
	}
	// Writes hold the bank through the write-recovery window before the
	// row can be precharged or re-CASed.
	if req.Write {
		bankBusyUntil += c.tim.TWR
	}
	c.bankFree[gr][bank] = bankBusyUntil

	c.winAccesses[gr]++
	c.lifeAccesses[gr]++

	return Result{Start: start, Done: done, RowHit: rowHit, WakeDelay: wake, Degraded: degraded}
}

// EnableRefresh turns on periodic refresh stalls: each standby rank is
// unavailable for TRFC every TREFI, staggered by rank so refreshes do not
// align across the device.
func (c *Controller) EnableRefresh() { c.refreshEnabled = true }

// RefreshStalls reports how many requests were delayed by a refresh window.
func (c *Controller) RefreshStalls() int64 { return sumI64(c.stalls) }

// RegisterMetrics attaches the controller's counters and per-channel bus
// gauges to a telemetry registry under the "memctrl" prefix, so sampled time
// series include queue/bus behavior ("memctrl.ch0.busy_ns", ...). The
// counters are per-channel internally and summed at read time; the sharded
// replay samples only at barriers, with every shard quiesced.
func (c *Controller) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("memctrl.wakeups", func() float64 { return float64(c.Wakeups()) })
	reg.GaugeFunc("memctrl.refresh_stalls", func() float64 { return float64(c.RefreshStalls()) })
	reg.GaugeFunc("memctrl.degraded_accesses", func() float64 { return float64(c.DegradedAccesses()) })
	for ch := range c.busFree {
		ch := ch
		reg.GaugeFunc(fmt.Sprintf("memctrl.ch%d.busy_ns", ch), func() float64 {
			return float64(c.busyNs[ch])
		})
		reg.GaugeFunc(fmt.Sprintf("memctrl.ch%d.bus_free_at_ns", ch), func() float64 {
			return float64(c.busFree[ch])
		})
	}
	reg.GaugeFunc("memctrl.bytes_total", func() float64 {
		return float64(c.TotalBytes())
	})
}

// afterRefresh pushes t past the rank's refresh window if it falls inside
// one. Rank gr refreshes during [phase + k*TREFI, phase + k*TREFI + TRFC)
// where phase staggers ranks evenly across the interval. ch is the rank's
// channel, charged with the stall.
func (c *Controller) afterRefresh(ch, gr int, t sim.Time) sim.Time {
	trefi, trfc := c.tim.TREFI, c.tim.TRFC
	if trefi <= 0 || trfc <= 0 {
		return t
	}
	phase := trefi * sim.Time(gr) / sim.Time(len(c.winAccesses))
	offset := (t - phase) % trefi
	if offset < 0 {
		offset += trefi
	}
	if offset < trfc {
		c.stalls[ch]++
		return t + (trfc - offset)
	}
	return t
}

// WindowStats returns the per-rank counters accumulated since the last
// ResetWindow, indexed by global rank id.
func (c *Controller) WindowStats() []RankStats {
	out := make([]RankStats, len(c.winAccesses))
	for i, n := range c.winAccesses {
		out[i] = RankStats{Accesses: n, Bytes: n * LineBytes}
	}
	return out
}

// WindowAccesses reports the access count of a single rank this window.
func (c *Controller) WindowAccesses(id dram.RankID) int64 {
	return c.winAccesses[c.codec.GlobalRank(id.Channel, id.Rank)]
}

// ResetWindow clears the per-window counters (start of a profiling window).
func (c *Controller) ResetWindow() {
	for i := range c.winAccesses {
		c.winAccesses[i] = 0
	}
}

// LifetimeStats returns total per-rank counters, indexed by global rank id.
func (c *Controller) LifetimeStats() []RankStats {
	out := make([]RankStats, len(c.lifeAccesses))
	for i, n := range c.lifeAccesses {
		out[i] = RankStats{Accesses: n, Bytes: n * LineBytes}
	}
	return out
}

// TotalBytes reports all bytes transferred since construction.
func (c *Controller) TotalBytes() int64 {
	return sumI64(c.lifeAccesses) * LineBytes
}

// Wakeups reports how many accesses found their rank in self-refresh.
func (c *Controller) Wakeups() int64 { return sumI64(c.wakeups) }

// DegradedAccesses reports how many accesses hit a failed rank and paid the
// degraded-mode penalty.
func (c *Controller) DegradedAccesses() int64 { return sumI64(c.degraded) }

func sumI64(xs []int64) int64 {
	var n int64
	for _, x := range xs {
		n += x
	}
	return n
}

// ChannelBusyUntil reports when the channel bus frees up; migration traffic
// may issue at or after this time.
func (c *Controller) ChannelBusyUntil(ch int) sim.Time { return c.busFree[ch] }

// ChannelUtilization reports the fraction of wall-clock time the channel bus
// was occupied over [0, now].
func (c *Controller) ChannelUtilization(ch int, now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	u := float64(c.busyNs[ch]) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}

// PeakChannelBandwidthGBs reports the channel's peak deliverable bandwidth
// implied by the timing model (one line per TCCD).
func (c *Controller) PeakChannelBandwidthGBs() float64 {
	hold := c.tim.TCCD
	if c.tim.TBL > hold {
		hold = c.tim.TBL
	}
	return float64(LineBytes) / float64(hold) // bytes per ns == GB/s
}

// IdleBandwidthGBs estimates the bandwidth left for background migration on
// channel ch over [0, now], per §4.2: migration issues only when the
// foreground queue is empty, so it harvests exactly the idle bus slots.
func (c *Controller) IdleBandwidthGBs(ch int, now sim.Time) float64 {
	return c.PeakChannelBandwidthGBs() * (1 - c.ChannelUtilization(ch, now))
}

// MigrationTime estimates the time to move bytes of segment data on channel
// ch using only idle bandwidth measured up to now. A fully saturated channel
// yields a floor of 5% of peak bandwidth (the scheduler still finds slack
// between foreground bursts).
func (c *Controller) MigrationTime(ch int, bytes int64, now sim.Time) sim.Time {
	bw := c.IdleBandwidthGBs(ch, now)
	if floor := 0.05 * c.PeakChannelBandwidthGBs(); bw < floor {
		bw = floor
	}
	return sim.Time(float64(bytes) / bw)
}

func maxT(ts ...sim.Time) sim.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}
