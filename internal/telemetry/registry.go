package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"dtl/internal/metrics"
	"dtl/internal/sim"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; model packages may embed one by value and register it later
// with Registry.RegisterCounter.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which must not be negative for a well-formed counter; the
// registry does not enforce this).
func (c *Counter) Add(delta int64) { c.n += delta }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a point-in-time float64 metric. A gauge is either set explicitly
// with Set or backed by a callback (GaugeFunc) evaluated at read time.
type Gauge struct {
	v  float64
	fn func() float64
}

// Set stores the gauge value (ignored for callback-backed gauges).
func (g *Gauge) Set(v float64) { g.v = v }

// Value reports the current value.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v
}

// Timer accumulates duration observations (in nanoseconds) into a
// metrics.Histogram plus count/sum/max scalars, so both distribution shape
// and headline aggregates are available without retaining raw samples.
type Timer struct {
	hist *metrics.Histogram
	n    int64
	sum  float64
	max  float64
}

// DefaultTimerBoundsNs spans 100 ns to 1 s in decades, a useful default for
// simulated latencies.
func DefaultTimerBoundsNs() []float64 {
	return []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
}

// Observe records one duration in nanoseconds.
func (t *Timer) Observe(ns float64) {
	t.hist.Observe(ns)
	t.n++
	t.sum += ns
	if ns > t.max {
		t.max = ns
	}
}

// Count reports the number of observations.
func (t *Timer) Count() int64 { return t.n }

// Mean reports the mean observation, or 0 with no observations.
func (t *Timer) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Max reports the largest observation.
func (t *Timer) Max() float64 { return t.max }

// Histogram exposes the underlying bucket counts.
func (t *Timer) Histogram() *metrics.Histogram { return t.hist }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindTimer
)

type entry struct {
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	timer   *Timer
}

// Registry is a hierarchical-named metric registry ("memctrl.ch0.busy_ns",
// "core.migq.depth", ...). Registering the same name twice returns the same
// metric; registering a name as two different kinds panics (a model bug).
//
// Sample snapshots every metric at a virtual timestamp, turning the registry
// into a set of aligned time series; StartSampling drives Sample from a sim
// interval timer. The registry is single-threaded, like the simulator.
type Registry struct {
	names   []string // registration order
	metrics map[string]entry

	sampleTimes []sim.Time
	sampleRows  [][]float64 // row i: values in column order at sampleTimes[i]
	sampleCols  [][]string  // column names captured at each sample
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]entry{}}
}

func (r *Registry) add(name string, e entry) {
	if prev, ok := r.metrics[name]; ok {
		if prev.kind != e.kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as two kinds", name))
		}
		return
	}
	r.metrics[name] = e
	r.names = append(r.names, name)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if e, ok := r.metrics[name]; ok && e.kind == kindCounter {
		return e.counter
	}
	c := &Counter{}
	r.add(name, entry{kind: kindCounter, counter: c})
	return c
}

// RegisterCounter registers an externally-owned counter (for model packages
// that embed a Counter by value and attach it to a registry after the fact).
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.add(name, entry{kind: kindCounter, counter: c})
}

// Gauge returns the named settable gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if e, ok := r.metrics[name]; ok && e.kind == kindGauge {
		return e.gauge
	}
	g := &Gauge{}
	r.add(name, entry{kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge evaluated from fn at read time. Reads happen
// only at sampling instants, and under sharded execution samples fire only
// at barriers with every shard quiesced — so fn may freely reduce
// per-shard or per-channel state (e.g. memctrl's counter slices) without
// synchronization: batched per-shard accumulation with a deterministic
// merge at the barrier, instead of per-event synchronized writes.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.add(name, entry{kind: kindGauge, gauge: &Gauge{fn: fn}})
}

// Timer returns the named timer, creating it with the given histogram bounds
// (nil selects DefaultTimerBoundsNs) on first use.
func (r *Registry) Timer(name string, boundsNs []float64) *Timer {
	if e, ok := r.metrics[name]; ok && e.kind == kindTimer {
		return e.timer
	}
	if boundsNs == nil {
		boundsNs = DefaultTimerBoundsNs()
	}
	t := &Timer{hist: metrics.NewHistogram(boundsNs)}
	r.add(name, entry{kind: kindTimer, timer: t})
	return t
}

// Names lists registered metric names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Value reports the current scalar value of a metric by name: counters as
// their count, gauges as their value, timers as their mean. The second
// return is false for unknown names.
func (r *Registry) Value(name string) (float64, bool) {
	e, ok := r.metrics[name]
	if !ok {
		return 0, false
	}
	switch e.kind {
	case kindCounter:
		return float64(e.counter.Value()), true
	case kindGauge:
		return e.gauge.Value(), true
	default:
		return e.timer.Mean(), true
	}
}

// columns expands metric names into sample column names: one column per
// counter/gauge, two (count, mean_ns) per timer.
func (r *Registry) columns() []string {
	cols := make([]string, 0, len(r.names))
	for _, n := range r.names {
		switch r.metrics[n].kind {
		case kindTimer:
			cols = append(cols, n+".count", n+".mean_ns")
		default:
			cols = append(cols, n)
		}
	}
	return cols
}

// Sample snapshots every metric at virtual time now, appending one row to
// the registry's time series.
func (r *Registry) Sample(now sim.Time) {
	cols := r.columns()
	row := make([]float64, 0, len(cols))
	for _, n := range r.names {
		e := r.metrics[n]
		switch e.kind {
		case kindCounter:
			row = append(row, float64(e.counter.Value()))
		case kindGauge:
			row = append(row, e.gauge.Value())
		default:
			row = append(row, float64(e.timer.Count()), e.timer.Mean())
		}
	}
	r.sampleTimes = append(r.sampleTimes, now)
	r.sampleRows = append(r.sampleRows, row)
	r.sampleCols = append(r.sampleCols, cols)
}

// StartSampling schedules Sample every period on the engine, starting one
// period from now, until the returned cancel function is called.
func (r *Registry) StartSampling(eng *sim.Engine, period sim.Time) (cancel func()) {
	return eng.Every(period, func(now sim.Time) { r.Sample(now) })
}

// SampleCount reports how many samples have been taken.
func (r *Registry) SampleCount() int { return len(r.sampleTimes) }

// WriteCSV renders the sampled time series as CSV: a time_ns column followed
// by one column per metric (two per timer). Metrics registered after
// sampling began render as empty cells in earlier rows.
func (r *Registry) WriteCSV(w io.Writer) error {
	final := r.columns()
	if _, err := fmt.Fprintf(w, "time_ns,%s\n", strings.Join(final, ",")); err != nil {
		return err
	}
	for i, at := range r.sampleTimes {
		// Align this row's columns (a prefix of the final set, since
		// registration only appends) against the final header.
		have := map[string]float64{}
		for j, c := range r.sampleCols[i] {
			have[c] = r.sampleRows[i][j]
		}
		cells := make([]string, 0, len(final)+1)
		cells = append(cells, fmt.Sprintf("%d", int64(at)))
		for _, c := range final {
			if v, ok := have[c]; ok && !math.IsNaN(v) {
				cells = append(cells, formatSampleValue(v))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatSampleValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Snapshot returns the current value of every metric keyed by name (as
// Value reports it), for tests and ad-hoc dumps.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.names))
	for _, n := range r.names {
		v, _ := r.Value(n)
		out[n] = v
	}
	return out
}

// WriteSnapshot renders the current values as "name value" lines sorted by
// name, a quick human-readable dump.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	names := r.Names()
	sort.Strings(names)
	for _, n := range names {
		v, _ := r.Value(n)
		if _, err := fmt.Fprintf(w, "%-40s %s\n", n, formatSampleValue(v)); err != nil {
			return err
		}
	}
	return nil
}
