package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dtl/internal/sim"
)

// traceFixture builds a finished tracer with a mixed history: transitions,
// migrations, and point events.
func traceFixture(t *testing.T) *Tracer {
	t.Helper()
	tr := testTracer(4, 0)
	tr.PowerTransition(0, 2, 100)
	tr.PowerTransition(1, 1, 200)
	tr.PowerTransition(1, 0, 700)
	tr.Migration(0, 5, 9, "powerdown-drain", 100, 400)
	tr.Migration(1, 7, 3, "hotness-swap", 150, 450)
	tr.SMCMiss(320)
	tr.Wake(1, 700, 15)
	tr.Scrub(800, 64)
	tr.Finish(1000)
	return tr
}

func TestWriteChromeTraceRequiresFinish(t *testing.T) {
	tr := testTracer(1, 0)
	if err := WriteChromeTrace(&bytes.Buffer{}, tr); err == nil {
		t.Fatal("expected error before Finish")
	}
	if err := WriteChromeTrace(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("expected error for nil tracer")
	}
}

func TestChromeTraceRoundTripThroughSummary(t *testing.T) {
	tr := traceFixture(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}

	s, err := SummarizeChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.RankNames) != 4 {
		t.Fatalf("rank names = %v", s.RankNames)
	}
	if s.RankNames[3] != "ch1/rk1" {
		t.Fatalf("rank 3 name = %q", s.RankNames[3])
	}
	// Partition invariant survives the round trip: every rank's residency
	// sums to the 1000 ns horizon (1 us in trace units).
	for rank := 0; rank < 4; rank++ {
		if got := s.RankDuration(rank); got != 1.0 {
			t.Fatalf("rank %d duration = %v us, want 1", rank, got)
		}
	}
	if got := s.Residency[0]["mpsm"]; got != 0.9 {
		t.Fatalf("rank 0 mpsm = %v us, want 0.9", got)
	}
	if got := s.Residency[1]["self-refresh"]; got != 0.5 {
		t.Fatalf("rank 1 self-refresh = %v us, want 0.5", got)
	}
	if len(s.MigrationsUs) != 2 || s.MigrationsUs[0] != 0.3 {
		t.Fatalf("migrations = %v", s.MigrationsUs)
	}
	if s.MigrationReasons["powerdown-drain"] != 1 || s.MigrationReasons["hotness-swap"] != 1 {
		t.Fatalf("reasons = %v", s.MigrationReasons)
	}
	if s.Points["smc_miss"] != 1 || s.Points["wake"] != 1 || s.Points["scrub"] != 1 {
		t.Fatalf("points = %v", s.Points)
	}
	states := s.States()
	if strings.Join(states, ",") != "mpsm,self-refresh,standby" {
		t.Fatalf("states = %v", states)
	}
}

func TestChromeTraceIsValidTraceEventJSON(t *testing.T) {
	tr := traceFixture(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph == "i" {
			if scope, _ := ev["s"].(string); scope != "t" {
				t.Fatalf("instant event missing thread scope: %v", ev)
			}
		}
	}
	// 1 process + 4 rank threads + 2 migration threads = 7 metadata events.
	if phases["M"] != 7 {
		t.Fatalf("metadata events = %d, want 7", phases["M"])
	}
	// Spans: rank0 has 2, rank1 has 3, ranks 2,3 one each + 2 migrations.
	if phases["X"] != 9 {
		t.Fatalf("complete events = %d, want 9", phases["X"])
	}
	if phases["i"] != 3 {
		t.Fatalf("instant events = %d, want 3", phases["i"])
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := traceFixture(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var power, events int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if rec["type"] == "power" {
			power++
		} else {
			events++
		}
	}
	if power != 7 {
		t.Fatalf("power records = %d, want 7", power)
	}
	if events != 5 {
		t.Fatalf("event records = %d, want 5", events)
	}
}

func TestWriteEventsCSV(t *testing.T) {
	tr := traceFixture(t)
	var buf bytes.Buffer
	if err := WriteEventsCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "record,at_ns,dur_ns,rank,channel,state_or_reason,src,dst" {
		t.Fatalf("header = %q", lines[0])
	}
	// Header + 7 spans + 5 events.
	if len(lines) != 13 {
		t.Fatalf("lines = %d, want 13", len(lines))
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 7 {
			t.Fatalf("row %q has %d commas, want 7", l, got)
		}
	}
}

func TestSummarizeRejectsGarbage(t *testing.T) {
	if _, err := SummarizeChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestUsOf(t *testing.T) {
	if usOf(sim.Microsecond) != 1 {
		t.Fatalf("usOf(1us) = %v", usOf(sim.Microsecond))
	}
	if usOf(1500) != 1.5 {
		t.Fatalf("usOf(1500ns) = %v", usOf(1500))
	}
}
