package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"testing"

	"dtl/internal/sim"
)

// TestRingWraparoundEvictionOrderInSink is the wraparound contract end to
// end: once the ring is full the *oldest* events are evicted first, Events()
// stays chronological, and the batch sinks render the survivors in sorted
// order — a wrapped trace must never interleave old and new records.
func TestRingWraparoundEvictionOrderInSink(t *testing.T) {
	const cap = 8
	tr := testTracer(1, cap)
	for i := 0; i < 3*cap; i++ {
		tr.SMCMiss(sim.Time(10 * (i + 1)))
	}
	tr.Finish(1000)

	if tr.Dropped() != 2*cap {
		t.Fatalf("dropped = %d, want %d", tr.Dropped(), 2*cap)
	}
	evs := tr.Events()
	if len(evs) != cap {
		t.Fatalf("retained = %d, want %d", len(evs), cap)
	}
	// Oldest-first eviction: survivors are exactly the newest cap events.
	for i, ev := range evs {
		if want := sim.Time(10 * (2*cap + i + 1)); ev.At != want {
			t.Fatalf("event %d at %v, want %v", i, ev.At, want)
		}
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var ats []int64
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var rec jsonlRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type != "smc_miss" {
			continue
		}
		ats = append(ats, rec.AtNs)
	}
	if len(ats) != cap {
		t.Fatalf("sink rendered %d smc_miss records, want %d", len(ats), cap)
	}
	if !sort.SliceIsSorted(ats, func(i, j int) bool { return ats[i] < ats[j] }) {
		t.Fatalf("sink output not chronological after wrap: %v", ats)
	}
	if ats[0] != int64(10*(2*cap+1)) {
		t.Fatalf("oldest surviving record at %d, want %d (oldest evicted first)", ats[0], 10*(2*cap+1))
	}
}

// streamFixture drives the traceFixture history through a tracer with an
// attached TraceStream and returns the streamed bytes.
func streamFixture(t *testing.T, format TraceFormat) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	tr := testTracer(4, 0)
	ts, err := NewTraceStream(&buf, format)
	if err != nil {
		t.Fatal(err)
	}
	tr.AttachStream(ts)
	tr.PowerTransition(0, 2, 100)
	tr.PowerTransition(1, 1, 200)
	tr.PowerTransition(1, 0, 700)
	tr.Migration(0, 5, 9, "powerdown-drain", 100, 400)
	tr.Migration(1, 7, 3, "hotness-swap", 150, 450)
	tr.SMCMiss(320)
	tr.Wake(1, 700, 15)
	tr.Scrub(800, 64)
	tr.Finish(1000)
	if err := ts.Err(); err != nil {
		t.Fatal(err)
	}
	// 7 spans + 5 events, streamed as they happened.
	if ts.Rows() != 12 {
		t.Fatalf("streamed rows = %d, want 12", ts.Rows())
	}
	return &buf
}

// assertFixtureSummary checks the quantities every reader must agree on for
// the traceFixture history.
func assertFixtureSummary(t *testing.T, s *TraceSummary) {
	t.Helper()
	for rank := 0; rank < 4; rank++ {
		if got := s.RankDuration(rank); got != 1.0 {
			t.Fatalf("rank %d duration = %v us, want 1", rank, got)
		}
	}
	if got := s.Residency[0]["mpsm"]; got != 0.9 {
		t.Fatalf("rank 0 mpsm = %v us, want 0.9", got)
	}
	if got := s.Residency[1]["self-refresh"]; got != 0.5 {
		t.Fatalf("rank 1 self-refresh = %v us, want 0.5", got)
	}
	if len(s.MigrationsUs) != 2 {
		t.Fatalf("migrations = %v", s.MigrationsUs)
	}
	if s.MigrationReasons["powerdown-drain"] != 1 || s.MigrationReasons["hotness-swap"] != 1 {
		t.Fatalf("reasons = %v", s.MigrationReasons)
	}
	if s.Points["smc_miss"] != 1 || s.Points["wake"] != 1 || s.Points["scrub"] != 1 {
		t.Fatalf("points = %v", s.Points)
	}
}

// TestStreamedJSONLRoundTrip: a trace streamed record by record parses into
// the same summary the batch Chrome pipeline produces.
func TestStreamedJSONLRoundTrip(t *testing.T) {
	buf := streamFixture(t, FormatJSONL)
	s, err := SummarizeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertFixtureSummary(t, s)
	if s.RankNames[3] != "ch1/rk1" {
		t.Fatalf("rank 3 name = %q", s.RankNames[3])
	}
}

// TestStreamedCSVRoundTrip: same for the events-CSV encoding (which carries
// no rank names).
func TestStreamedCSVRoundTrip(t *testing.T) {
	buf := streamFixture(t, FormatCSV)
	s, err := SummarizeEventsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertFixtureSummary(t, s)
	if s.RankLabel(3) != "rk3" {
		t.Fatalf("csv rank label = %q, want numeric fallback", s.RankLabel(3))
	}
}

// TestStreamedMatchesBatch pins that the streaming sink and the batch writer
// produce the same record set (streamed order differs: spans appear when
// closed, interleaved with events).
func TestStreamedMatchesBatch(t *testing.T) {
	streamed := streamFixture(t, FormatJSONL)
	var batch bytes.Buffer
	if err := WriteJSONL(&batch, traceFixture(t)); err != nil {
		t.Fatal(err)
	}
	sortLines := func(b []byte) []string {
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		sort.Strings(lines)
		return lines
	}
	got, want := sortLines(streamed.Bytes()), sortLines(batch.Bytes())
	if len(got) != len(want) {
		t.Fatalf("streamed %d records, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record mismatch:\nstream: %s\nbatch:  %s", got[i], want[i])
		}
	}
}

// TestStreamSurvivesRingWraparound is the point of streaming: events beyond
// the ring capacity still reach the sink, even though the ring forgot them.
func TestStreamSurvivesRingWraparound(t *testing.T) {
	const cap = 4
	var buf bytes.Buffer
	tr := testTracer(1, cap)
	ts, err := NewTraceStream(&buf, FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	tr.AttachStream(ts)
	const emitted = 5 * cap
	for i := 0; i < emitted; i++ {
		tr.SMCMiss(sim.Time(i))
	}
	if tr.Dropped() != emitted-cap {
		t.Fatalf("ring dropped %d, want %d", tr.Dropped(), emitted-cap)
	}
	s, err := SummarizeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Points["smc_miss"] != emitted {
		t.Fatalf("stream carried %d events, want all %d despite wraparound", s.Points["smc_miss"], emitted)
	}
}

func TestTraceStreamRejectsChrome(t *testing.T) {
	if _, err := NewTraceStream(&bytes.Buffer{}, FormatChrome); err == nil {
		t.Fatal("chrome format must not stream")
	}
}

func TestTraceStreamWriteErrorIsSticky(t *testing.T) {
	boom := errors.New("disk full")
	ts, err := NewTraceStream(&failWriter{err: boom}, FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTracer(1, 0)
	tr.AttachStream(ts)
	tr.SMCMiss(1)
	tr.SMCMiss(2)
	if !errors.Is(ts.Err(), boom) {
		t.Fatalf("err = %v, want %v", ts.Err(), boom)
	}
	if ts.Rows() != 0 {
		t.Fatalf("rows = %d after failed writes", ts.Rows())
	}
}

// TestTraceStreamSteadyStateDoesNotAllocate: per-record rendering reuses the
// stream's buffer, matching the StreamSampler discipline.
func TestTraceStreamSteadyStateDoesNotAllocate(t *testing.T) {
	ts, err := NewTraceStream(discardWriter{}, FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTracer(1, 0)
	tr.AttachStream(ts)
	ev := Event{Kind: EvMigration, At: 100, Dur: 50, Rank: -1, Channel: 1, Src: 7, Dst: 9, Reason: "drain"}
	ts.event(ev) // warm up: size the buffer
	allocs := testing.AllocsPerRun(1000, func() { ts.event(ev) })
	if allocs != 0 {
		t.Fatalf("steady-state event allocates %.1f objects/op, want 0", allocs)
	}
}

func TestParseTraceFormat(t *testing.T) {
	cases := map[string]TraceFormat{"": FormatChrome, "chrome": FormatChrome, "jsonl": FormatJSONL, "csv": FormatCSV}
	for in, want := range cases {
		got, err := ParseTraceFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseTraceFormat(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), in)
		}
	}
	if _, err := ParseTraceFormat("xml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

// TestSummarizeTraceSniffsAllFormats: one entry point reads all three
// encodings of the same history into the same summary.
func TestSummarizeTraceSniffsAllFormats(t *testing.T) {
	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, traceFixture(t)); err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*bytes.Buffer{
		"chrome": &chrome,
		"jsonl":  streamFixture(t, FormatJSONL),
		"csv":    streamFixture(t, FormatCSV),
	}
	for name, buf := range inputs {
		s, err := SummarizeTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertFixtureSummary(t, s)
	}
	if _, err := SummarizeTrace(strings.NewReader("")); err == nil {
		t.Fatal("expected error on empty trace")
	}
	if _, err := SummarizeTrace(strings.NewReader("hello world")); err == nil {
		t.Fatal("expected error on garbage")
	}
}
