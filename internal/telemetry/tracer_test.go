package telemetry

import (
	"testing"

	"dtl/internal/sim"
)

func testTracer(ranks, capacity int) *Tracer {
	return NewTracer(TracerConfig{
		Ranks: ranks, Channels: 2,
		StateNames:   []string{"standby", "self-refresh", "mpsm"},
		InitialState: 0,
		Capacity:     capacity,
	})
}

func TestNilTracerEmitsAreNoOps(t *testing.T) {
	var tr *Tracer
	tr.PowerTransition(0, 1, 10)
	tr.Migration(0, 1, 2, "x", 0, 5)
	tr.SMCMiss(1)
	tr.Wake(0, 1, 2)
	tr.Scrub(1, 3)
	tr.WriteConflict(0, 1)
	tr.Retire(0, "manual", 1)
	tr.Fault(0, "correctable", 3, 1)
	tr.Storm(0, 64, 1)
	tr.RetireDeferred(0, "ecc-storm", 10, 1)
	tr.Finish(100)
	if tr.Finished() || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer should report nothing")
	}
	if tr.Events() != nil || tr.PowerSpans() != nil {
		t.Fatal("nil tracer should return nil slices")
	}
}

// TestSpanPartitionInvariant is the core guarantee the Chrome export relies
// on: per-rank spans tile [0, horizon] exactly, whatever the transition
// history.
func TestSpanPartitionInvariant(t *testing.T) {
	tr := testTracer(4, 0)
	tr.PowerTransition(0, 2, 100)
	tr.PowerTransition(0, 0, 250)
	tr.PowerTransition(1, 1, 40)
	tr.PowerTransition(0, 2, 900)
	// rank 2,3: no transitions at all
	const horizon = sim.Time(1000)
	tr.Finish(horizon)

	perRank := make(map[int]sim.Time)
	for _, s := range tr.PowerSpans() {
		if s.End < s.Start {
			t.Fatalf("negative span %+v", s)
		}
		perRank[s.Rank] += s.Duration()
	}
	for rank := 0; rank < 4; rank++ {
		if perRank[rank] != horizon {
			t.Fatalf("rank %d spans sum to %v, want %v", rank, perRank[rank], horizon)
		}
	}

	res := tr.Residency(0)
	if res[0] != 100+650 || res[2] != 150+100 {
		t.Fatalf("rank 0 residency = %v", res)
	}
	if r1 := tr.Residency(1); r1[0] != 40 || r1[1] != 960 {
		t.Fatalf("rank 1 residency = %v", r1)
	}
}

func TestSameStateTransitionIgnored(t *testing.T) {
	tr := testTracer(1, 0)
	tr.PowerTransition(0, 0, 50) // already standby
	tr.Finish(100)
	spans := tr.PowerSpans()
	if len(spans) != 1 || spans[0].Start != 0 || spans[0].End != 100 {
		t.Fatalf("spans = %+v, want single [0,100] span", spans)
	}
}

func TestBackwardsTransitionPanics(t *testing.T) {
	tr := testTracer(1, 0)
	tr.PowerTransition(0, 1, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time going backwards")
		}
	}()
	tr.PowerTransition(0, 2, 50)
}

func TestFinishIsIdempotent(t *testing.T) {
	tr := testTracer(2, 0)
	tr.PowerTransition(0, 1, 10)
	tr.Finish(100)
	n := len(tr.PowerSpans())
	tr.Finish(500) // no-op
	if len(tr.PowerSpans()) != n || tr.End() != 100 {
		t.Fatal("second Finish must not add spans or move the horizon")
	}
}

func TestRingWraparoundKeepsNewestAndCountsDropped(t *testing.T) {
	tr := testTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.SMCMiss(sim.Time(i))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := sim.Time(6 + i); ev.At != want {
			t.Fatalf("event %d at %v, want %v (chronological, newest retained)", i, ev.At, want)
		}
	}
}

func TestEventFieldsRoundTrip(t *testing.T) {
	tr := testTracer(2, 0)
	tr.Migration(1, 42, 99, "drain", 10, 35)
	tr.Wake(1, 50, 7)
	tr.Scrub(60, 128)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	m := evs[0]
	if m.Kind != EvMigration || m.Channel != 1 || m.Src != 42 || m.Dst != 99 ||
		m.Reason != "drain" || m.At != 10 || m.Dur != 25 {
		t.Fatalf("migration event = %+v", m)
	}
	if w := evs[1]; w.Kind != EvWake || w.Rank != 1 || w.Dur != 7 {
		t.Fatalf("wake event = %+v", w)
	}
	if s := evs[2]; s.Kind != EvScrub || s.Src != 128 {
		t.Fatalf("scrub event = %+v", s)
	}
}

func TestRankAndStateNames(t *testing.T) {
	tr := testTracer(4, 0) // 2 channels: global rank = rank*2 + channel
	if got := tr.RankName(3); got != "ch1/rk1" {
		t.Fatalf("RankName(3) = %q", got)
	}
	if got := tr.StateName(1); got != "self-refresh" {
		t.Fatalf("StateName(1) = %q", got)
	}
	if got := tr.StateName(9); got != "state9" {
		t.Fatalf("StateName(9) = %q", got)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EvMigration: "migration", EvSMCMiss: "smc_miss", EvWake: "wake",
		EvScrub: "scrub", EvWriteConflict: "write_conflict", EvRetire: "retire",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
