package telemetry

import (
	"math"
	"strings"
	"testing"
)

// summaryFromSpec builds a TraceSummary by hand: rank → state → microseconds.
func summaryFromSpec(resid map[int]map[string]float64, migsUs []float64) *TraceSummary {
	s := newTraceSummary()
	for rank, states := range resid {
		for st, us := range states {
			s.addResidency(rank, st, us)
		}
	}
	s.MigrationsUs = append(s.MigrationsUs, migsUs...)
	return s
}

func TestDiffIdenticalSummariesIsZero(t *testing.T) {
	spec := map[int]map[string]float64{
		0: {"standby": 300, "mpsm": 700},
		1: {"standby": 1000},
	}
	migs := []float64{10, 20, 30, 40}
	d := DiffSummaries(summaryFromSpec(spec, migs), summaryFromSpec(spec, migs))

	for _, sh := range d.Aggregate {
		if sh.Delta() != 0 {
			t.Fatalf("aggregate %s delta = %v, want 0", sh.State, sh.Delta())
		}
	}
	for _, rd := range d.Ranks {
		for _, sh := range rd.Shares {
			if sh.Delta() != 0 {
				t.Fatalf("rank %d %s delta = %v", rd.Rank, sh.State, sh.Delta())
			}
		}
	}
	if d.EnergyDelta() != 0 {
		t.Fatalf("energy delta = %v", d.EnergyDelta())
	}
	for _, p := range d.Percentiles {
		if p.Shift() != 0 {
			t.Fatalf("%s shift = %v", p.Name, p.Shift())
		}
	}
	tight := DiffTolerance{Share: 1e-9, LatFrac: 1e-9, EnergyFrac: 1e-9}
	if bad := d.Check(tight); len(bad) != 0 {
		t.Fatalf("identical summaries violate tightest tolerance: %v", bad)
	}
}

func TestDiffDetectsShareDrift(t *testing.T) {
	a := summaryFromSpec(map[int]map[string]float64{
		0: {"standby": 300, "mpsm": 700},
	}, nil)
	// Candidate spends 10 more points in standby.
	b := summaryFromSpec(map[int]map[string]float64{
		0: {"standby": 400, "mpsm": 600},
	}, nil)
	d := DiffSummaries(a, b)

	var standby ShareDelta
	for _, sh := range d.Aggregate {
		if sh.State == "standby" {
			standby = sh
		}
	}
	if math.Abs(standby.Delta()-0.1) > 1e-12 {
		t.Fatalf("standby drift = %v, want +0.1", standby.Delta())
	}
	if bad := d.Check(DiffTolerance{Share: 0.05}); len(bad) == 0 {
		t.Fatal("0.1 drift must violate a 0.05 band")
	} else if !strings.Contains(strings.Join(bad, "\n"), "standby") {
		t.Fatalf("violation does not name the state: %v", bad)
	}
	if bad := d.Check(DiffTolerance{Share: 0.15}); len(bad) != 0 {
		t.Fatalf("0.1 drift within a 0.15 band, got %v", bad)
	}
	// Zero tolerance disables the check entirely.
	if bad := d.Check(DiffTolerance{}); len(bad) != 0 {
		t.Fatalf("zero tolerance should disable checks, got %v", bad)
	}
}

func TestDiffDetectsLatencyShift(t *testing.T) {
	migsA := []float64{100, 100, 100, 100}
	migsB := []float64{150, 150, 150, 150} // +50% everywhere
	spec := map[int]map[string]float64{0: {"standby": 1000}}
	d := DiffSummaries(summaryFromSpec(spec, migsA), summaryFromSpec(spec, migsB))

	if len(d.Percentiles) != 3 {
		t.Fatalf("percentiles = %v", d.Percentiles)
	}
	for _, p := range d.Percentiles {
		if math.Abs(p.Shift()-0.5) > 1e-12 {
			t.Fatalf("%s shift = %v, want 0.5", p.Name, p.Shift())
		}
	}
	if bad := d.Check(DiffTolerance{LatFrac: 0.25}); len(bad) == 0 {
		t.Fatal("+50% latency must violate a 25% band")
	}
	if bad := d.Check(DiffTolerance{LatFrac: 0.60}); len(bad) != 0 {
		t.Fatalf("+50%% within a 60%% band, got %v", bad)
	}
}

func TestDiffEnergyProxy(t *testing.T) {
	// All-standby baseline vs all-mpsm candidate: proxy ratio is the Table 2
	// weight (0.068).
	a := summaryFromSpec(map[int]map[string]float64{0: {"standby": 1000}}, nil)
	b := summaryFromSpec(map[int]map[string]float64{0: {"mpsm": 1000}}, nil)
	if got := a.EnergyProxy(nil); got != 1000 {
		t.Fatalf("standby proxy = %v, want 1000", got)
	}
	if got := b.EnergyProxy(nil); got != 68 {
		t.Fatalf("mpsm proxy = %v, want 68", got)
	}
	d := DiffSummaries(a, b)
	if math.Abs(d.EnergyDelta()-(-0.932)) > 1e-12 {
		t.Fatalf("energy delta = %v, want -0.932", d.EnergyDelta())
	}
	if bad := d.Check(DiffTolerance{EnergyFrac: 0.5}); len(bad) == 0 {
		t.Fatal("93% energy change must violate a 50% band")
	}

	// Unknown states weigh 1.0 — they cannot hide energy.
	u := summaryFromSpec(map[int]map[string]float64{0: {"hyper-sleep": 500}}, nil)
	if got := u.EnergyProxy(nil); got != 500 {
		t.Fatalf("unknown-state proxy = %v, want 500 (weight 1.0)", got)
	}
}

func TestDiffRankSetMismatchAlwaysFlagged(t *testing.T) {
	a := summaryFromSpec(map[int]map[string]float64{
		0: {"standby": 1000},
		1: {"standby": 1000},
	}, nil)
	b := summaryFromSpec(map[int]map[string]float64{
		0: {"standby": 1000},
	}, nil)
	d := DiffSummaries(a, b)
	if len(d.RanksOnlyA) != 1 || d.RanksOnlyA[0] != 1 {
		t.Fatalf("ranks only in A = %v", d.RanksOnlyA)
	}
	// Rank-set mismatch is a violation even with every tolerance disabled.
	if bad := d.Check(DiffTolerance{}); len(bad) == 0 {
		t.Fatal("rank-set mismatch must always be flagged")
	}
}

func TestDiffPerRankWorstCase(t *testing.T) {
	// Aggregate shares identical; rank-level shares swapped — the per-rank
	// check must catch what the aggregate hides.
	a := summaryFromSpec(map[int]map[string]float64{
		0: {"standby": 800, "mpsm": 200},
		1: {"standby": 200, "mpsm": 800},
	}, nil)
	b := summaryFromSpec(map[int]map[string]float64{
		0: {"standby": 200, "mpsm": 800},
		1: {"standby": 800, "mpsm": 200},
	}, nil)
	d := DiffSummaries(a, b)
	for _, sh := range d.Aggregate {
		if math.Abs(sh.Delta()) > 1e-12 {
			t.Fatalf("aggregate %s delta = %v, want 0", sh.State, sh.Delta())
		}
	}
	rd, sh, ok := d.WorstRankShare("standby")
	if !ok || math.Abs(math.Abs(sh.Delta())-0.6) > 1e-12 {
		t.Fatalf("worst standby drift = %+v on %+v", sh, rd)
	}
	if bad := d.Check(DiffTolerance{Share: 0.3}); len(bad) == 0 {
		t.Fatal("per-rank swap must violate the share band despite zero aggregate drift")
	}
}

func TestPercentileShiftFromZero(t *testing.T) {
	p := PercentileDelta{Name: "P99", A: 0, B: 40}
	if p.Shift() != 1 {
		t.Fatalf("shift from zero = %v, want 1", p.Shift())
	}
	if z := (PercentileDelta{A: 0, B: 0}).Shift(); z != 0 {
		t.Fatalf("zero/zero shift = %v", z)
	}
}
