package telemetry

import (
	"errors"
	"strings"
	"testing"

	"dtl/internal/sim"
)

// TestStreamMatchesWriteCSV pins format compatibility: a streamed run must
// produce byte-identical CSV to sampling into the registry and calling
// WriteCSV, for counters, gauges, and timers.
func TestStreamMatchesWriteCSV(t *testing.T) {
	build := func() (*Registry, *Counter, *Gauge, *Timer) {
		r := NewRegistry()
		return r, r.Counter("hits"), r.Gauge("load"), r.Timer("lat", nil)
	}

	drive := func(sample func(sim.Time), c *Counter, g *Gauge, tm *Timer) {
		c.Inc()
		g.Set(0.25)
		tm.Observe(150)
		sample(10)
		c.Add(9)
		g.Set(3)
		tm.Observe(50)
		sample(20)
	}

	r1, c1, g1, t1 := build()
	drive(r1.Sample, c1, g1, t1)
	var want strings.Builder
	if err := r1.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	r2, c2, g2, t2 := build()
	var got strings.Builder
	s := r2.StreamTo(&got)
	drive(s.Sample, c2, g2, t2)
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("streamed CSV differs from WriteCSV:\nstream: %q\nbatch:  %q",
			got.String(), want.String())
	}
	if s.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", s.Rows())
	}
}

// TestStreamHeaderFixedAtFirstSample: metrics registered after the first
// sample are excluded, keeping every row aligned with the header — and the
// late registration is rejected with an error at Finish rather than passing
// for a complete file.
func TestStreamHeaderFixedAtFirstSample(t *testing.T) {
	r := NewRegistry()
	r.Counter("early").Inc()
	var sb strings.Builder
	s := r.StreamTo(&sb)
	s.Sample(5)
	r.Gauge("late").Set(3) // must not corrupt subsequent rows
	s.Sample(10)
	err := s.Finish()
	if err == nil {
		t.Fatal("Finish accepted a metric registered after the header was fixed")
	}
	if !strings.Contains(err.Error(), `"late"`) {
		t.Fatalf("late-registration error does not name the metric: %v", err)
	}
	want := "time_ns,early\n5,1\n10,1\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

// TestStreamLateTimerRejected: a late timer (two columns) is rejected the
// same way, and rows written before Finish keep the original column count.
func TestStreamLateTimerRejected(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("b").Add(2)
	var sb strings.Builder
	s := r.StreamTo(&sb)
	s.Sample(1)
	r.Timer("late_timer", nil).Observe(50)
	s.Sample(2)
	s.Sample(3)
	if err := s.Finish(); err == nil {
		t.Fatal("Finish accepted a late timer registration")
	}
	for i, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if got := strings.Count(line, ","); got != 2 {
			t.Fatalf("line %d %q has %d commas, want 2", i, line, got)
		}
	}
}

// TestStreamFinishWithoutSamplesWritesHeader: a run shorter than one
// sampling period still yields a well-formed CSV.
func TestStreamFinishWithoutSamplesWritesHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter("c")
	var sb strings.Builder
	s := r.StreamTo(&sb)
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "time_ns,c\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

type failWriter struct{ err error }

func (f *failWriter) Write(p []byte) (int, error) { return 0, f.err }

// TestStreamWriteErrorIsSticky: after a write failure, Sample stops touching
// the writer and Err reports the original cause.
func TestStreamWriteErrorIsSticky(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	boom := errors.New("disk full")
	s := r.StreamTo(&failWriter{err: boom})
	s.Sample(10)
	s.Sample(20)
	if !errors.Is(s.Err(), boom) {
		t.Fatalf("err = %v, want %v", s.Err(), boom)
	}
	if s.Rows() != 0 {
		t.Fatalf("rows = %d after failed writes", s.Rows())
	}
}

// TestStreamSteadyStateDoesNotAllocate: per-sample row rendering reuses the
// sampler's buffer; only the destination writer may allocate.
func TestStreamSteadyStateDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	tm := r.Timer("t", nil)
	c.Add(12345)
	g.Set(0.125)
	tm.Observe(100)
	sink := discardWriter{}
	s := r.StreamTo(sink)
	now := sim.Time(0)
	s.Sample(now) // warm up: header + first row sizes the buffer
	allocs := testing.AllocsPerRun(1000, func() {
		now += 10
		s.Sample(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Sample allocates %.1f objects/op, want 0", allocs)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
