package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dtl/internal/sim"
)

// Sink-facing constants for the Chrome trace_event export. Each global rank
// renders as its own "thread" so the per-rank power timeline opens directly
// in Perfetto / chrome://tracing; migration queues and point events get
// dedicated thread ids above the rank range.
const (
	chromePID = 0
	// migrationTidBase + channel is the thread of a channel's migration queue.
	migrationTidBase = 10000
	// pointTid is the thread carrying instant events (SMC misses, scrubs...).
	pointTid = 20000
	// attrTid is the thread carrying attribution spans and ledger cells.
	attrTid = 30000
)

// Trace reading errors callers can test with errors.Is: dtlstat turns them
// into targeted diagnostics instead of a generic parse failure.
var (
	// ErrEmptyTrace marks a trace file with no content at all.
	ErrEmptyTrace = errors.New("empty trace (no records)")
	// ErrTruncatedTrace marks a trace file that ends mid-record — the
	// producer crashed or is still writing.
	ErrTruncatedTrace = errors.New("trace truncated mid-record")
)

// TraceFormat selects the on-disk encoding of an exported trace.
type TraceFormat uint8

const (
	// FormatChrome is Chrome trace_event JSON (one document, microsecond
	// timestamps); it opens directly in Perfetto but cannot stream.
	FormatChrome TraceFormat = iota
	// FormatJSONL is JSON Lines: one flat record per power span or event,
	// integer-nanosecond timestamps, grep/jq-friendly, streamed as the run
	// progresses.
	FormatJSONL
	// FormatCSV is the flat events CSV with a leading record-type column,
	// also streamed as the run progresses.
	FormatCSV
)

// String names the format as the -trace-format flag spells it.
func (f TraceFormat) String() string {
	switch f {
	case FormatChrome:
		return "chrome"
	case FormatJSONL:
		return "jsonl"
	case FormatCSV:
		return "csv"
	default:
		return fmt.Sprintf("TraceFormat(%d)", int(f))
	}
}

// ParseTraceFormat parses a -trace-format flag value.
func ParseTraceFormat(s string) (TraceFormat, error) {
	switch s {
	case "", "chrome":
		return FormatChrome, nil
	case "jsonl":
		return FormatJSONL, nil
	case "csv":
		return FormatCSV, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown trace format %q (want chrome, jsonl or csv)", s)
	}
}

// chromeEvent is one trace_event record. Ts and Dur are microseconds, per
// the trace_event format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usOf(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace exports the tracer as Chrome trace_event JSON: one
// complete ("X") event per power span on the owning rank's thread, one per
// migration on the channel's migration thread, and instant ("i") events for
// everything else. Finish must have been called so spans cover the full run.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil tracer")
	}
	if !t.Finished() {
		return fmt.Errorf("telemetry: WriteChromeTrace before Finish")
	}
	var evs []chromeEvent
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePID, Tid: 0,
		Args: map[string]any{"name": "dtlsim"},
	})
	for rank := 0; rank < t.cfg.Ranks; rank++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePID, Tid: rank,
			Args: map[string]any{"name": "power " + t.RankName(rank)},
		})
	}
	for _, s := range t.PowerSpans() {
		evs = append(evs, chromeEvent{
			Name: t.StateName(s.State), Cat: "power", Ph: "X",
			Ts: usOf(s.Start), Dur: usOf(s.Duration()),
			Pid: chromePID, Tid: s.Rank,
		})
	}
	migThreads := map[int]bool{}
	attrThread := false
	for _, ev := range t.Events() {
		switch ev.Kind {
		case EvAttr, EvLedger:
			if !attrThread {
				attrThread = true
				evs = append(evs, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: chromePID, Tid: attrTid,
					Args: map[string]any{"name": "attribution"},
				})
			}
			if ev.Kind == EvAttr {
				evs = append(evs, chromeEvent{
					Name: ev.Reason, Cat: "attr", Ph: "X",
					Ts: usOf(ev.At), Dur: usOf(ev.Dur),
					Pid: chromePID, Tid: attrTid, Args: attrArgs(ev),
				})
			} else {
				evs = append(evs, chromeEvent{
					Name: ev.Reason, Cat: "ledger", Ph: "i",
					Ts: usOf(ev.At), Pid: chromePID, Tid: attrTid, Scope: "t",
					Args: attrArgs(ev),
				})
			}
		case EvMigration:
			if !migThreads[ev.Channel] {
				migThreads[ev.Channel] = true
				evs = append(evs, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: chromePID,
					Tid:  migrationTidBase + ev.Channel,
					Args: map[string]any{"name": fmt.Sprintf("migrations ch%d", ev.Channel)},
				})
			}
			evs = append(evs, chromeEvent{
				Name: "migrate", Cat: "migration", Ph: "X",
				Ts: usOf(ev.At), Dur: usOf(ev.Dur),
				Pid: chromePID, Tid: migrationTidBase + ev.Channel,
				Args: map[string]any{"src": ev.Src, "dst": ev.Dst, "reason": ev.Reason},
			})
		default:
			evs = append(evs, chromeEvent{
				Name: ev.Kind.String(), Cat: "event", Ph: "i",
				Ts: usOf(ev.At), Pid: chromePID, Tid: pointTid, Scope: "t",
				Args: pointArgs(ev),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

// attrArgs carries an attribution record's full cell through the
// trace_event args so SummarizeChromeTrace can rebuild the ledger exactly.
func attrArgs(ev Event) map[string]any {
	args := map[string]any{
		"vm":     ev.Src,
		"cause":  ev.Reason,
		"lat_ns": int64(ev.Dur),
		"energy": ev.Energy,
	}
	if ev.Rank >= 0 {
		args["rank"] = ev.Rank
	}
	return args
}

func pointArgs(ev Event) map[string]any {
	args := map[string]any{}
	if ev.Rank >= 0 {
		args["rank"] = ev.Rank
	}
	if ev.Channel >= 0 {
		args["channel"] = ev.Channel
	}
	if ev.Dur != 0 {
		args["dur_ns"] = int64(ev.Dur)
	}
	if ev.Kind == EvScrub {
		args["segments"] = ev.Src
	}
	if ev.Kind == EvFault || ev.Kind == EvStorm {
		args["count"] = ev.Src
	}
	if ev.Reason != "" {
		args["reason"] = ev.Reason
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// Row renderers shared by the batch writers (WriteJSONL, WriteEventsCSV) and
// the streaming TraceStream sink. Rows are appended to a caller-owned buffer
// (the StreamSampler discipline), so the per-event cost on the streaming
// path is an append-and-write with no allocation once the buffer has grown.
//
// The record schema is stable and documented in DESIGN.md §8:
//
//	power      type, rank, rank_name, state, start_ns, end_ns
//	migration  type, at_ns, dur_ns, channel, src, dst, reason
//	wake       type, at_ns, dur_ns (exit penalty), rank
//	smc_miss   type, at_ns
//	scrub      type, at_ns, segments
//	fault      type, at_ns, rank, count, reason (fault class)
//	ecc_storm  type, at_ns, rank, count (bucket level)
//	retire     type, at_ns, rank, reason (cause)
//	retire_deferred  type, at_ns, dur_ns (backoff), rank, reason
//	attr       type, at_ns, dur_ns, rank, vm (src), energy, reason (cause)
//	ledger     type, at_ns, dur_ns (lat_ns), rank, vm (src), energy, reason (cause)
//
// Absent fields are omitted in JSONL and empty in CSV. In CSV the attr and
// ledger records carry the energy charge in the dst column as a float.

func appendJSONField(buf []byte, name string, v int64) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, name...)
	buf = append(buf, '"', ':')
	return strconv.AppendInt(buf, v, 10)
}

func appendJSONStringField(buf []byte, name, v string) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, name...)
	buf = append(buf, '"', ':')
	return strconv.AppendQuote(buf, v)
}

func appendJSONFloatField(buf []byte, name string, v float64) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, name...)
	buf = append(buf, '"', ':')
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendPowerJSONL renders one power span as a JSONL record.
func appendPowerJSONL(buf []byte, rankName, stateName string, s PowerSpan) []byte {
	buf = append(buf, `{"type":"power"`...)
	buf = appendJSONField(buf, "rank", int64(s.Rank))
	buf = appendJSONStringField(buf, "rank_name", rankName)
	buf = appendJSONStringField(buf, "state", stateName)
	buf = appendJSONField(buf, "start_ns", int64(s.Start))
	buf = appendJSONField(buf, "end_ns", int64(s.End))
	return append(buf, '}', '\n')
}

// appendEventJSONL renders one structured event as a JSONL record.
func appendEventJSONL(buf []byte, ev Event) []byte {
	buf = append(buf, `{"type":`...)
	buf = strconv.AppendQuote(buf, ev.Kind.String())
	buf = appendJSONField(buf, "at_ns", int64(ev.At))
	if ev.Dur != 0 {
		buf = appendJSONField(buf, "dur_ns", int64(ev.Dur))
	}
	if ev.Rank >= 0 {
		buf = appendJSONField(buf, "rank", int64(ev.Rank))
	}
	if ev.Channel >= 0 {
		buf = appendJSONField(buf, "channel", int64(ev.Channel))
	}
	switch ev.Kind {
	case EvMigration:
		buf = appendJSONField(buf, "src", ev.Src)
		buf = appendJSONField(buf, "dst", ev.Dst)
	case EvScrub:
		buf = appendJSONField(buf, "segments", ev.Src)
	case EvFault, EvStorm:
		buf = appendJSONField(buf, "count", ev.Src)
	case EvAttr, EvLedger:
		buf = appendJSONField(buf, "vm", ev.Src)
		buf = appendJSONFloatField(buf, "energy", ev.Energy)
	}
	if ev.Reason != "" {
		buf = appendJSONStringField(buf, "reason", ev.Reason)
	}
	return append(buf, '}', '\n')
}

// eventsCSVHeader is the fixed column set of the events-CSV format.
const eventsCSVHeader = "record,at_ns,dur_ns,rank,channel,state_or_reason,src,dst\n"

// appendPowerCSV renders one power span as an events-CSV row. at_ns is the
// span start and dur_ns its length.
func appendPowerCSV(buf []byte, stateName string, s PowerSpan) []byte {
	buf = append(buf, "power,"...)
	buf = strconv.AppendInt(buf, int64(s.Start), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(s.Duration()), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(s.Rank), 10)
	buf = append(buf, ',', ',')
	buf = append(buf, csvSafe(stateName)...)
	return append(buf, ',', ',', '\n')
}

// appendEventCSV renders one structured event as an events-CSV row.
func appendEventCSV(buf []byte, ev Event) []byte {
	buf = append(buf, ev.Kind.String()...)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(ev.At), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(ev.Dur), 10)
	buf = append(buf, ',')
	if ev.Rank >= 0 {
		buf = strconv.AppendInt(buf, int64(ev.Rank), 10)
	}
	buf = append(buf, ',')
	if ev.Channel >= 0 {
		buf = strconv.AppendInt(buf, int64(ev.Channel), 10)
	}
	buf = append(buf, ',')
	buf = append(buf, csvSafe(ev.Reason)...)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, ev.Src, 10)
	buf = append(buf, ',')
	if ev.Kind == EvAttr || ev.Kind == EvLedger {
		// Attribution records repurpose the dst column for the energy
		// charge; 'g'/-1 formatting round-trips the float64 exactly.
		buf = strconv.AppendFloat(buf, ev.Energy, 'g', -1, 64)
	} else {
		buf = strconv.AppendInt(buf, ev.Dst, 10)
	}
	return append(buf, '\n')
}

// csvSafe neutralizes the field separator inside free-text tags.
func csvSafe(s string) string {
	if !strings.ContainsRune(s, ',') {
		return s
	}
	return strings.ReplaceAll(s, ",", ";")
}

// WriteJSONL exports the tracer as JSON Lines: one record per power span
// (type "power") followed by one per retained event (type by kind). Times
// are integer nanoseconds; the schema matches the streaming TraceStream
// sink record for record.
func WriteJSONL(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil tracer")
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, s := range t.PowerSpans() {
		buf = appendPowerJSONL(buf[:0], t.RankName(s.Rank), t.StateName(s.State), s)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, ev := range t.Events() {
		buf = appendEventJSONL(buf[:0], ev)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteEventsCSV exports power spans and events as flat CSV with a leading
// record-type column, for spreadsheet-style analysis. The schema matches the
// streaming TraceStream sink.
func WriteEventsCSV(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil tracer")
	}
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, eventsCSVHeader); err != nil {
		return err
	}
	var buf []byte
	for _, s := range t.PowerSpans() {
		buf = appendPowerCSV(buf[:0], t.StateName(s.State), s)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, ev := range t.Events() {
		buf = appendEventCSV(buf[:0], ev)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceSummary is the decoded aggregate view of a trace file, produced by
// the Summarize* readers from any trace format and consumed by cmd/dtlstat.
type TraceSummary struct {
	// RankNames maps a global rank id to its name ("ch0/rk3"); absent for
	// formats that do not carry names (events CSV).
	RankNames map[int]string
	// Residency maps rank → state name → total microseconds.
	Residency map[int]map[string]float64
	// MigrationsUs lists every migration span duration in microseconds.
	MigrationsUs []float64
	// MigrationReasons counts migrations by reason tag.
	MigrationReasons map[string]int
	// Points counts instant events by name.
	Points map[string]int
	// Attribution holds the cost-ledger cells dumped into the trace at
	// finish (record kind "ledger"), sorted by (vm, rank, cause). Live
	// attr spans are counted in Points only, so the ledger dump is the
	// single source of attribution totals and nothing double-counts.
	Attribution []LedgerEntry
}

func newTraceSummary() *TraceSummary {
	return &TraceSummary{
		RankNames:        map[int]string{},
		Residency:        map[int]map[string]float64{},
		MigrationReasons: map[string]int{},
		Points:           map[string]int{},
	}
}

func (s *TraceSummary) addResidency(rank int, state string, us float64) {
	m := s.Residency[rank]
	if m == nil {
		m = map[string]float64{}
		s.Residency[rank] = m
	}
	m[state] += us
}

// States lists every state name seen, sorted for stable rendering.
func (s *TraceSummary) States() []string {
	set := map[string]bool{}
	for _, m := range s.Residency {
		for name := range m {
			set[name] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Ranks lists every rank id seen, sorted.
func (s *TraceSummary) Ranks() []int {
	out := make([]int, 0, len(s.Residency))
	for rank := range s.Residency {
		out = append(out, rank)
	}
	sort.Ints(out)
	return out
}

// RankDuration sums all state residencies of one rank (the traced run
// duration, by the span-partition invariant).
func (s *TraceSummary) RankDuration(rank int) float64 {
	var total float64
	for _, us := range s.Residency[rank] {
		total += us
	}
	return total
}

// RankLabel prefers the recorded rank name ("ch0/rk3"); falls back to the
// numeric id.
func (s *TraceSummary) RankLabel(rank int) string {
	if name, ok := s.RankNames[rank]; ok && name != "" {
		return name
	}
	return fmt.Sprintf("rk%d", rank)
}

// SummarizeChromeTrace parses a Chrome trace_event JSON stream produced by
// WriteChromeTrace back into per-rank power residency and migration-latency
// samples.
func SummarizeChromeTrace(r io.Reader) (*TraceSummary, error) {
	var tr chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF ||
			strings.Contains(err.Error(), "unexpected end of JSON input") {
			return nil, fmt.Errorf("telemetry: chrome trace byte offset %d: %w", dec.InputOffset(), ErrTruncatedTrace)
		}
		return nil, fmt.Errorf("telemetry: parsing trace: %w", err)
	}
	s := newTraceSummary()
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid < migrationTidBase:
			if name, ok := ev.Args["name"].(string); ok {
				s.RankNames[ev.Tid] = strings.TrimPrefix(name, "power ")
			}
		case ev.Ph == "X" && ev.Cat == "power":
			s.addResidency(ev.Tid, ev.Name, ev.Dur)
		case ev.Ph == "X" && ev.Cat == "migration":
			s.MigrationsUs = append(s.MigrationsUs, ev.Dur)
			if reason, ok := ev.Args["reason"].(string); ok {
				s.MigrationReasons[reason]++
			}
		case ev.Ph == "X" && ev.Cat == "attr":
			s.Points["attr"]++
		case ev.Ph == "i" && ev.Cat == "ledger":
			entry := LedgerEntry{Rank: -1, Cause: ev.Name}
			if v, ok := ev.Args["vm"].(float64); ok {
				entry.VM = int64(v)
			}
			if v, ok := ev.Args["rank"].(float64); ok {
				entry.Rank = int(v)
			}
			if v, ok := ev.Args["lat_ns"].(float64); ok {
				entry.LatNs = int64(v)
			}
			if v, ok := ev.Args["energy"].(float64); ok {
				entry.Energy = v
			}
			s.Attribution = append(s.Attribution, entry)
		case ev.Ph == "i":
			s.Points[ev.Name]++
		}
	}
	sortEntries(s.Attribution)
	return s, nil
}

// jsonlRecord is the decoded form of one JSONL trace line (the schema the
// appenders above produce). Pointer fields distinguish absent from zero.
type jsonlRecord struct {
	Type     string  `json:"type"`
	Rank     *int    `json:"rank"`
	RankName string  `json:"rank_name"`
	State    string  `json:"state"`
	StartNs  int64   `json:"start_ns"`
	EndNs    int64   `json:"end_ns"`
	AtNs     int64   `json:"at_ns"`
	DurNs    int64   `json:"dur_ns"`
	Channel  *int    `json:"channel"`
	Reason   string  `json:"reason"`
	Vm       *int64  `json:"vm"`
	Energy   float64 `json:"energy"`
}

// SummarizeJSONL parses a JSONL trace (WriteJSONL or a TraceStream) into the
// same summary model SummarizeChromeTrace produces, so downstream residency
// math is format-independent.
func SummarizeJSONL(r io.Reader) (*TraceSummary, error) {
	s := newTraceSummary()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	offset := int64(0)
	for sc.Scan() {
		line++
		lineStart := offset
		offset += int64(len(sc.Bytes())) + 1
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A malformed final line is a trace cut off mid-record (a
			// killed run or partial copy), not a format error.
			if !sc.Scan() && sc.Err() == nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d (byte offset %d): %w", line, lineStart, ErrTruncatedTrace)
			}
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
		}
		switch rec.Type {
		case "":
			return nil, fmt.Errorf("telemetry: jsonl line %d: record has no type", line)
		case "power":
			if rec.Rank == nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d: power record has no rank", line)
			}
			s.addResidency(*rec.Rank, rec.State, usOf(sim.Time(rec.EndNs-rec.StartNs)))
			if rec.RankName != "" {
				s.RankNames[*rec.Rank] = rec.RankName
			}
		case "migration":
			s.MigrationsUs = append(s.MigrationsUs, usOf(sim.Time(rec.DurNs)))
			if rec.Reason != "" {
				s.MigrationReasons[rec.Reason]++
			}
		case "ledger":
			entry := LedgerEntry{Rank: -1, Cause: rec.Reason, LatNs: rec.DurNs, Energy: rec.Energy}
			if rec.Vm != nil {
				entry.VM = *rec.Vm
			}
			if rec.Rank != nil {
				entry.Rank = *rec.Rank
			}
			s.Attribution = append(s.Attribution, entry)
		default:
			s.Points[rec.Type]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading jsonl: %w", err)
	}
	sortEntries(s.Attribution)
	return s, nil
}

// SummarizeEventsCSV parses an events-CSV trace (WriteEventsCSV or a
// TraceStream) into the shared summary model. The CSV format carries no rank
// names, so RankNames stays empty and labels fall back to numeric ids.
func SummarizeEventsCSV(r io.Reader) (*TraceSummary, error) {
	s := newTraceSummary()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 {
			if text != strings.TrimSpace(eventsCSVHeader) {
				return nil, fmt.Errorf("telemetry: not an events CSV (header %q)", text)
			}
			continue
		}
		f := strings.Split(text, ",")
		if len(f) != 8 {
			// A short final row is a trace cut off mid-record, not a
			// malformed file.
			if !sc.Scan() && sc.Err() == nil {
				return nil, fmt.Errorf("telemetry: csv line %d (%d of 8 fields): %w", line, len(f), ErrTruncatedTrace)
			}
			return nil, fmt.Errorf("telemetry: csv line %d: %d fields, want 8", line, len(f))
		}
		if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
			return nil, fmt.Errorf("telemetry: csv line %d: bad at_ns %q", line, f[1])
		}
		dur, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: csv line %d: bad dur_ns %q", line, f[2])
		}
		switch f[0] {
		case "power":
			rank, err := strconv.Atoi(f[3])
			if err != nil {
				return nil, fmt.Errorf("telemetry: csv line %d: bad rank %q", line, f[3])
			}
			s.addResidency(rank, f[5], usOf(sim.Time(dur)))
		case "migration":
			s.MigrationsUs = append(s.MigrationsUs, usOf(sim.Time(dur)))
			if f[5] != "" {
				s.MigrationReasons[f[5]]++
			}
		case "ledger":
			entry := LedgerEntry{Rank: -1, Cause: f[5], LatNs: dur}
			if f[3] != "" {
				rank, err := strconv.Atoi(f[3])
				if err != nil {
					return nil, fmt.Errorf("telemetry: csv line %d: bad rank %q", line, f[3])
				}
				entry.Rank = rank
			}
			vm, err := strconv.ParseInt(f[6], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: csv line %d: bad vm %q", line, f[6])
			}
			entry.VM = vm
			energy, err := strconv.ParseFloat(f[7], 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: csv line %d: bad energy %q", line, f[7])
			}
			entry.Energy = energy
			s.Attribution = append(s.Attribution, entry)
		default:
			s.Points[f[0]]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading csv: %w", err)
	}
	sortEntries(s.Attribution)
	return s, nil
}

// SummarizeTrace sniffs the trace format from the first bytes of r and
// dispatches to the matching reader: a Chrome trace opens with a JSON object
// containing "traceEvents", a JSONL trace with a {"type":...} object, and an
// events CSV with its fixed header.
func SummarizeTrace(r io.Reader) (*TraceSummary, error) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(256)
	trimmed := bytes.TrimLeft(head, " \t\r\n")
	switch {
	case bytes.HasPrefix(trimmed, []byte("{")):
		// One JSON object: Chrome trace if the first line mentions
		// traceEvents, a JSONL record stream otherwise.
		firstLine := trimmed
		if i := bytes.IndexByte(firstLine, '\n'); i >= 0 {
			firstLine = firstLine[:i]
		}
		if bytes.Contains(firstLine, []byte(`"traceEvents"`)) {
			return SummarizeChromeTrace(br)
		}
		return SummarizeJSONL(br)
	case bytes.HasPrefix(trimmed, []byte("record,")):
		return SummarizeEventsCSV(br)
	case len(trimmed) == 0:
		return nil, fmt.Errorf("telemetry: %w", ErrEmptyTrace)
	default:
		return nil, fmt.Errorf("telemetry: unrecognized trace format (starts %q)", string(trimmed[:min(16, len(trimmed))]))
	}
}
