package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dtl/internal/sim"
)

// Sink-facing constants for the Chrome trace_event export. Each global rank
// renders as its own "thread" so the per-rank power timeline opens directly
// in Perfetto / chrome://tracing; migration queues and point events get
// dedicated thread ids above the rank range.
const (
	chromePID = 0
	// migrationTidBase + channel is the thread of a channel's migration queue.
	migrationTidBase = 10000
	// pointTid is the thread carrying instant events (SMC misses, scrubs...).
	pointTid = 20000
)

// chromeEvent is one trace_event record. Ts and Dur are microseconds, per
// the trace_event format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usOf(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace exports the tracer as Chrome trace_event JSON: one
// complete ("X") event per power span on the owning rank's thread, one per
// migration on the channel's migration thread, and instant ("i") events for
// everything else. Finish must have been called so spans cover the full run.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil tracer")
	}
	if !t.Finished() {
		return fmt.Errorf("telemetry: WriteChromeTrace before Finish")
	}
	var evs []chromeEvent
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePID, Tid: 0,
		Args: map[string]any{"name": "dtlsim"},
	})
	for rank := 0; rank < t.cfg.Ranks; rank++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePID, Tid: rank,
			Args: map[string]any{"name": "power " + t.RankName(rank)},
		})
	}
	for _, s := range t.PowerSpans() {
		evs = append(evs, chromeEvent{
			Name: t.StateName(s.State), Cat: "power", Ph: "X",
			Ts: usOf(s.Start), Dur: usOf(s.Duration()),
			Pid: chromePID, Tid: s.Rank,
		})
	}
	migThreads := map[int]bool{}
	for _, ev := range t.Events() {
		switch ev.Kind {
		case EvMigration:
			if !migThreads[ev.Channel] {
				migThreads[ev.Channel] = true
				evs = append(evs, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: chromePID,
					Tid:  migrationTidBase + ev.Channel,
					Args: map[string]any{"name": fmt.Sprintf("migrations ch%d", ev.Channel)},
				})
			}
			evs = append(evs, chromeEvent{
				Name: "migrate", Cat: "migration", Ph: "X",
				Ts: usOf(ev.At), Dur: usOf(ev.Dur),
				Pid: chromePID, Tid: migrationTidBase + ev.Channel,
				Args: map[string]any{"src": ev.Src, "dst": ev.Dst, "reason": ev.Reason},
			})
		default:
			evs = append(evs, chromeEvent{
				Name: ev.Kind.String(), Cat: "event", Ph: "i",
				Ts: usOf(ev.At), Pid: chromePID, Tid: pointTid, Scope: "t",
				Args: pointArgs(ev),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

func pointArgs(ev Event) map[string]any {
	args := map[string]any{}
	if ev.Rank >= 0 {
		args["rank"] = ev.Rank
	}
	if ev.Channel >= 0 {
		args["channel"] = ev.Channel
	}
	if ev.Dur != 0 {
		args["dur_ns"] = int64(ev.Dur)
	}
	if ev.Kind == EvScrub {
		args["segments"] = ev.Src
	}
	if ev.Kind == EvFault || ev.Kind == EvStorm {
		args["count"] = ev.Src
	}
	if ev.Reason != "" {
		args["reason"] = ev.Reason
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// WriteJSONL exports the tracer as JSON Lines: one record per power span
// (type "power") followed by one per retained event (type by kind). Times
// are integer nanoseconds.
func WriteJSONL(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil tracer")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.PowerSpans() {
		rec := map[string]any{
			"type": "power", "rank": s.Rank, "rank_name": t.RankName(s.Rank),
			"state": t.StateName(s.State), "start_ns": int64(s.Start), "end_ns": int64(s.End),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, ev := range t.Events() {
		rec := map[string]any{
			"type": ev.Kind.String(), "at_ns": int64(ev.At),
		}
		if ev.Dur != 0 {
			rec["dur_ns"] = int64(ev.Dur)
		}
		if ev.Rank >= 0 {
			rec["rank"] = ev.Rank
		}
		if ev.Channel >= 0 {
			rec["channel"] = ev.Channel
		}
		if ev.Kind == EvMigration {
			rec["src"] = ev.Src
			rec["dst"] = ev.Dst
			rec["reason"] = ev.Reason
		}
		if ev.Kind == EvScrub {
			rec["segments"] = ev.Src
		}
		if ev.Kind == EvFault || ev.Kind == EvStorm {
			rec["count"] = ev.Src
		}
		if ev.Kind != EvMigration && ev.Reason != "" {
			rec["reason"] = ev.Reason
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteEventsCSV exports power spans and events as flat CSV with a leading
// record-type column, for spreadsheet-style analysis.
func WriteEventsCSV(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("telemetry: nil tracer")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "record,at_ns,dur_ns,rank,channel,state_or_reason,src,dst")
	for _, s := range t.PowerSpans() {
		fmt.Fprintf(bw, "power,%d,%d,%d,,%s,,\n",
			int64(s.Start), int64(s.Duration()), s.Rank, t.StateName(s.State))
	}
	for _, ev := range t.Events() {
		rank, ch := "", ""
		if ev.Rank >= 0 {
			rank = fmt.Sprintf("%d", ev.Rank)
		}
		if ev.Channel >= 0 {
			ch = fmt.Sprintf("%d", ev.Channel)
		}
		fmt.Fprintf(bw, "%s,%d,%d,%s,%s,%s,%d,%d\n",
			ev.Kind, int64(ev.At), int64(ev.Dur), rank, ch,
			strings.ReplaceAll(ev.Reason, ",", ";"), ev.Src, ev.Dst)
	}
	return bw.Flush()
}

// TraceSummary is the decoded aggregate view of a Chrome trace file, as
// produced by WriteChromeTrace and consumed by cmd/dtlstat.
type TraceSummary struct {
	// RankNames maps a power-thread tid (== global rank) to its name.
	RankNames map[int]string
	// Residency maps rank tid → state name → total microseconds.
	Residency map[int]map[string]float64
	// MigrationsUs lists every migration span duration in microseconds.
	MigrationsUs []float64
	// MigrationReasons counts migrations by reason tag.
	MigrationReasons map[string]int
	// Points counts instant events by name.
	Points map[string]int
}

// States lists every state name seen, sorted for stable rendering.
func (s *TraceSummary) States() []string {
	set := map[string]bool{}
	for _, m := range s.Residency {
		for name := range m {
			set[name] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RankDuration sums all state residencies of one rank (the traced run
// duration, by the span-partition invariant).
func (s *TraceSummary) RankDuration(rank int) float64 {
	var total float64
	for _, us := range s.Residency[rank] {
		total += us
	}
	return total
}

// SummarizeChromeTrace parses a Chrome trace_event JSON stream produced by
// WriteChromeTrace back into per-rank power residency and migration-latency
// samples.
func SummarizeChromeTrace(r io.Reader) (*TraceSummary, error) {
	var tr chromeTrace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("telemetry: parsing trace: %w", err)
	}
	s := &TraceSummary{
		RankNames:        map[int]string{},
		Residency:        map[int]map[string]float64{},
		MigrationReasons: map[string]int{},
		Points:           map[string]int{},
	}
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid < migrationTidBase:
			if name, ok := ev.Args["name"].(string); ok {
				s.RankNames[ev.Tid] = strings.TrimPrefix(name, "power ")
			}
		case ev.Ph == "X" && ev.Cat == "power":
			m := s.Residency[ev.Tid]
			if m == nil {
				m = map[string]float64{}
				s.Residency[ev.Tid] = m
			}
			m[ev.Name] += ev.Dur
		case ev.Ph == "X" && ev.Cat == "migration":
			s.MigrationsUs = append(s.MigrationsUs, ev.Dur)
			if reason, ok := ev.Args["reason"].(string); ok {
				s.MigrationReasons[reason]++
			}
		case ev.Ph == "i":
			s.Points[ev.Name]++
		}
	}
	return s, nil
}
