package telemetry

import (
	"fmt"

	"dtl/internal/sim"
)

// EventKind classifies trace events.
type EventKind uint8

// Event kinds emitted by the model layers.
const (
	// EvMigration is one background segment copy (src → dst DSN) with its
	// scheduled duration.
	EvMigration EventKind = iota
	// EvSMCMiss is a full segment-mapping-cache miss (DRAM table walk).
	EvSMCMiss
	// EvWake is a foreground access forcing a rank out of self-refresh.
	EvWake
	// EvScrub is one patrol-scrubber run (segments scrubbed in Src).
	EvScrub
	// EvWriteConflict is a foreground write landing on an in-flight
	// migration (§4.2 protocol activation).
	EvWriteConflict
	// EvRetire is a rank permanently taken offline.
	EvRetire
	// EvFault is a device fault report (ECC error, wake fault, rank failure);
	// Reason carries the fault kind, Src the error count.
	EvFault
	// EvStorm is the health monitor's leaky bucket tripping on a rank.
	EvStorm
	// EvRetireDeferred is an auto-retirement postponed for lack of spare
	// capacity; Dur is the backoff until the next attempt.
	EvRetireDeferred
	// EvAttr is one closed attribution span: Src is the charged VM, Reason
	// the cause tag, Dur the latency and Energy the energy charge.
	EvAttr
	// EvLedger is one cost-ledger cell total, dumped when the trace
	// finishes: Src is the VM, Reason the cause, Dur the accumulated
	// latency and Energy the accumulated energy.
	EvLedger
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvMigration:
		return "migration"
	case EvSMCMiss:
		return "smc_miss"
	case EvWake:
		return "wake"
	case EvScrub:
		return "scrub"
	case EvWriteConflict:
		return "write_conflict"
	case EvRetire:
		return "retire"
	case EvFault:
		return "fault"
	case EvStorm:
		return "ecc_storm"
	case EvRetireDeferred:
		return "retire_deferred"
	case EvAttr:
		return "attr"
	case EvLedger:
		return "ledger"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one structured trace record. Fields that do not apply to a kind
// are -1 (Rank, Channel) or zero.
type Event struct {
	Kind    EventKind
	At      sim.Time
	Dur     sim.Time // span events (migration); 0 for instants
	Rank    int      // global rank, -1 when not rank-scoped
	Channel int      // -1 when not channel-scoped
	Src     int64    // migration source DSN / scrubbed-segment count / charged VM
	Dst     int64    // migration destination DSN
	Reason  string   // migration reason ("drain", "hotness-swap", ...) / cause tag
	Energy  float64  // attribution energy charge (attr/ledger records only)
}

// PowerSpan is one closed interval a rank spent in a single power state.
// Spans for a rank partition [start, horizon] exactly: the tracer closes the
// open span on every transition and Finish closes the rest, so per-rank span
// durations always sum to the traced run duration.
type PowerSpan struct {
	Rank  int // global rank
	State int // power-state code, named by TracerConfig.StateNames
	Start sim.Time
	End   sim.Time
}

// Duration reports the span length.
func (s PowerSpan) Duration() sim.Time { return s.End - s.Start }

// TracerConfig sizes a Tracer for a device.
type TracerConfig struct {
	// Ranks is the number of global ranks (one power timeline each).
	Ranks int
	// Channels lets sinks render a global rank id as "chX/rkY" (global rank
	// = rank*Channels + channel, matching the device codec).
	Channels int
	// StateNames names power-state codes; index i names state code i.
	StateNames []string
	// InitialState is every rank's state at Start.
	InitialState int
	// Capacity bounds the event ring buffer; 0 selects DefaultCapacity.
	// Power spans are kept exactly (transitions are rare); high-frequency
	// point events overwrite the oldest once the ring is full, with the
	// overflow reported by Dropped.
	Capacity int
	// Start is the trace origin (usually 0).
	Start sim.Time
}

// DefaultCapacity is the default event ring size.
const DefaultCapacity = 1 << 16

// Tracer records structured events and per-rank power-state timelines.
// All emit methods are nil-receiver-safe no-ops, so model code can hold a
// nil *Tracer and call it unconditionally without paying for tracing.
type Tracer struct {
	cfg TracerConfig

	state []int      // current power state per rank
	since []sim.Time // when the rank entered it
	spans []PowerSpan

	ring  []Event
	next  int   // overwrite position once len(ring) == cap
	total int64 // events ever emitted

	// stream, when attached, receives every event and closed power span as
	// it is recorded, independent of ring retention.
	stream *TraceStream

	finished bool
	end      sim.Time
}

// NewTracer builds a tracer with every rank in cfg.InitialState at cfg.Start.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Ranks <= 0 {
		panic(fmt.Sprintf("telemetry: tracer needs at least one rank, got %d", cfg.Ranks))
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	t := &Tracer{
		cfg:   cfg,
		state: make([]int, cfg.Ranks),
		since: make([]sim.Time, cfg.Ranks),
	}
	for i := range t.state {
		t.state[i] = cfg.InitialState
		t.since[i] = cfg.Start
	}
	return t
}

// Config returns the tracer's configuration.
func (t *Tracer) Config() TracerConfig { return t.cfg }

// StateName names a power-state code.
func (t *Tracer) StateName(code int) string {
	if code >= 0 && code < len(t.cfg.StateNames) {
		return t.cfg.StateNames[code]
	}
	return fmt.Sprintf("state%d", code)
}

// RankName renders a global rank as "chX/rkY" (or "rkN" without channels).
func (t *Tracer) RankName(rank int) string {
	if t.cfg.Channels > 0 {
		return fmt.Sprintf("ch%d/rk%d", rank%t.cfg.Channels, rank/t.cfg.Channels)
	}
	return fmt.Sprintf("rk%d", rank)
}

// PowerTransition records rank entering power state to at time at. Same-state
// transitions are ignored.
func (t *Tracer) PowerTransition(rank, to int, at sim.Time) {
	if t == nil {
		return
	}
	if rank < 0 || rank >= len(t.state) {
		panic(fmt.Sprintf("telemetry: power transition on rank %d of %d", rank, len(t.state)))
	}
	if t.state[rank] == to {
		return
	}
	if at < t.since[rank] {
		// Out-of-order emission would corrupt the partition invariant.
		panic(fmt.Sprintf("telemetry: transition at %v before span start %v", at, t.since[rank]))
	}
	closed := PowerSpan{Rank: rank, State: t.state[rank], Start: t.since[rank], End: at}
	t.spans = append(t.spans, closed)
	t.stream.span(t, closed)
	t.state[rank] = to
	t.since[rank] = at
}

// AttachStream installs a streaming sink that receives every subsequent
// event and closed power span (including the final closures Finish makes).
// Spans already closed and events already in the ring are not replayed; in
// practice the stream is attached right after NewTracer, before the run.
// Passing nil detaches. Nil-receiver-safe like the emit methods.
func (t *Tracer) AttachStream(ts *TraceStream) {
	if t == nil {
		return
	}
	t.stream = ts
}

func (t *Tracer) emit(ev Event) {
	t.stream.event(ev)
	if len(t.ring) < t.cfg.Capacity {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
		t.next = (t.next + 1) % len(t.ring)
	}
	t.total++
}

// Migration records one background segment copy on a channel over
// [start, end), tagged with the engine that requested it.
func (t *Tracer) Migration(ch int, src, dst int64, reason string, start, end sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvMigration, At: start, Dur: end - start, Rank: -1, Channel: ch,
		Src: src, Dst: dst, Reason: reason})
}

// SMCMiss records a full segment-mapping-cache miss at time at.
func (t *Tracer) SMCMiss(at sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvSMCMiss, At: at, Rank: -1, Channel: -1})
}

// Wake records an access forcing a rank out of self-refresh, with the exit
// penalty charged to the access.
func (t *Tracer) Wake(rank int, at, penalty sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvWake, At: at, Dur: penalty, Rank: rank, Channel: -1})
}

// Scrub records one patrol-scrubber run that visited segments segments.
func (t *Tracer) Scrub(at sim.Time, segments int64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvScrub, At: at, Rank: -1, Channel: -1, Src: segments})
}

// WriteConflict records a foreground write hitting an in-flight migration.
func (t *Tracer) WriteConflict(ch int, at sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvWriteConflict, At: at, Rank: -1, Channel: ch})
}

// Retire records a rank being permanently taken offline, tagged with the
// retirement cause ("manual", "ecc-storm", "rank-failure", ...).
func (t *Tracer) Retire(rank int, cause string, at sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvRetire, At: at, Rank: rank, Channel: -1, Reason: cause})
}

// Fault records a device fault report. kind names the fault class and count
// is the number of errors folded into the report.
func (t *Tracer) Fault(rank int, kind string, count int64, at sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvFault, At: at, Rank: rank, Channel: -1, Src: count, Reason: kind})
}

// Storm records the health monitor's storm detector tripping on a rank.
func (t *Tracer) Storm(rank int, level int64, at sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvStorm, At: at, Rank: rank, Channel: -1, Src: level})
}

// RetireDeferred records an auto-retirement postponed because draining the
// rank would not fit in the surviving capacity; backoff is the retry delay.
func (t *Tracer) RetireDeferred(rank int, cause string, backoff, at sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvRetireDeferred, At: at, Dur: backoff, Rank: rank, Channel: -1, Reason: cause})
}

// AttrSpan records one closed attribution span: the cost ledger charged
// (end - start) nanoseconds of latency and energy units to (vm, rank,
// cause). rank is -1 when the charge is not rank-scoped.
func (t *Tracer) AttrSpan(vm int64, rank int, cause string, start, end sim.Time, energy float64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvAttr, At: start, Dur: end - start, Rank: rank, Channel: -1,
		Src: vm, Reason: cause, Energy: energy})
}

// LedgerCell records one cost-ledger cell total (usually at trace finish,
// via Ledger.EmitTo): latNs nanoseconds and energy units accumulated on
// (vm, rank, cause) over the run.
func (t *Tracer) LedgerCell(vm int64, rank int, cause string, latNs int64, energy float64, at sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: EvLedger, At: at, Dur: sim.Time(latNs), Rank: rank, Channel: -1,
		Src: vm, Reason: cause, Energy: energy})
}

// Finish closes every open power span at horizon. Call it once, after the
// run, before exporting spans; later calls are no-ops.
func (t *Tracer) Finish(horizon sim.Time) {
	if t == nil || t.finished {
		return
	}
	for rank := range t.state {
		end := horizon
		if end < t.since[rank] {
			end = t.since[rank]
		}
		closed := PowerSpan{Rank: rank, State: t.state[rank], Start: t.since[rank], End: end}
		t.spans = append(t.spans, closed)
		t.stream.span(t, closed)
	}
	t.finished = true
	t.end = horizon
}

// Finished reports whether Finish has run.
func (t *Tracer) Finished() bool { return t != nil && t.finished }

// End reports the horizon passed to Finish.
func (t *Tracer) End() sim.Time { return t.end }

// PowerSpans returns the closed power spans recorded so far (all spans,
// including the final open-span closures, once Finish has run).
func (t *Tracer) PowerSpans() []PowerSpan {
	if t == nil {
		return nil
	}
	return append([]PowerSpan(nil), t.spans...)
}

// Residency sums the time rank spent in each power state across closed
// spans, indexed by state code. Call after Finish for full-run totals.
func (t *Tracer) Residency(rank int) []sim.Time {
	n := len(t.cfg.StateNames)
	if n == 0 {
		n = 1
	}
	out := make([]sim.Time, n)
	for _, s := range t.spans {
		if s.Rank != rank {
			continue
		}
		for s.State >= len(out) {
			out = append(out, 0)
		}
		out[s.State] += s.Duration()
	}
	return out
}

// Events returns the retained events in chronological emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if len(t.ring) < t.cfg.Capacity {
		return append([]Event(nil), t.ring...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped reports how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	if d := t.total - int64(len(t.ring)); d > 0 {
		return d
	}
	return 0
}

// Total reports how many events were ever emitted.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total
}
