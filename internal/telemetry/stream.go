package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"dtl/internal/sim"
)

// StreamSampler writes one CSV row per sample straight to an io.Writer
// instead of accumulating rows in registry memory. Long-horizon runs (the
// 6-hour schedules sample tens of thousands of rows) stream at O(1) memory,
// and the file is complete up to the last flushed row even if the run dies.
//
// The column set is fixed lazily at the first sample: the header is emitted
// then, covering every metric registered so far. Metrics registered after
// the header is fixed cannot appear in the file; rows keep rendering the
// original columns (registration only appends, so the captured columns
// remain a stable prefix of the registry) and the late registration is
// rejected with an error from Finish, so a run that silently dropped a
// metric cannot pass for a complete one. Experiments register everything
// during construction, before the first sampling tick, so in practice the
// header covers all metrics.
type StreamSampler struct {
	r       *Registry
	w       io.Writer
	cols    int    // column count captured at first sample; 0 = header pending
	names   int    // registry name count when the header was fixed
	buf     []byte // reused row buffer; rows are built here then written out
	rows    int
	err     error
	lateErr error // first late metric registration observed
}

// StreamTo creates a sampler that renders rows of r's metrics to w. The
// caller owns w's lifetime; Err reports the first write error.
func (r *Registry) StreamTo(w io.Writer) *StreamSampler {
	return &StreamSampler{r: r, w: w}
}

// Sample writes one CSV row of every metric at virtual time now, emitting
// the header first on the initial call. Write errors are sticky: after the
// first failure Sample is a no-op and Err reports the cause.
func (s *StreamSampler) Sample(now sim.Time) {
	if s.err != nil {
		return
	}
	if s.cols == 0 {
		cols := s.r.columns()
		s.cols = len(cols)
		s.names = len(s.r.names)
		if _, s.err = io.WriteString(s.w, "time_ns,"+strings.Join(cols, ",")+"\n"); s.err != nil {
			return
		}
	}
	if s.lateErr == nil && len(s.r.names) > s.names {
		s.lateErr = fmt.Errorf("telemetry: %d metric(s) registered after the streaming header was fixed (first: %q); their samples cannot appear in this CSV",
			len(s.r.names)-s.names, s.r.names[s.names])
	}
	buf := s.buf[:0]
	buf = strconv.AppendInt(buf, int64(now), 10)
	emitted := 0
	for _, n := range s.r.names {
		if emitted >= s.cols {
			break // registered after the header was fixed
		}
		e := s.r.metrics[n]
		switch e.kind {
		case kindCounter:
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, e.counter.Value(), 10)
			emitted++
		case kindGauge:
			buf = appendSampleValue(append(buf, ','), e.gauge.Value())
			emitted++
		default:
			if emitted+2 > s.cols {
				emitted = s.cols
				break
			}
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, e.timer.Count(), 10)
			buf = appendSampleValue(append(buf, ','), e.timer.Mean())
			emitted += 2
		}
	}
	buf = append(buf, '\n')
	s.buf = buf
	if _, err := s.w.Write(buf); err != nil {
		s.err = err
		return
	}
	s.rows++
}

// appendSampleValue renders v like formatSampleValue, without allocating.
func appendSampleValue(buf []byte, v float64) []byte {
	if math.IsNaN(v) {
		return buf
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// Start schedules Sample every period on the engine, starting one period
// from now, until the returned cancel function is called.
func (s *StreamSampler) Start(eng *sim.Engine, period sim.Time) (cancel func()) {
	return eng.Every(period, func(now sim.Time) { s.Sample(now) })
}

// Finish emits the header if no sample ever fired (a run shorter than one
// sampling period still produces a well-formed, empty CSV) and reports the
// first write error, or else the first late metric registration (the file
// itself stays well-formed in that case — every row has the header's
// columns — but it is missing the late metrics).
func (s *StreamSampler) Finish() error {
	if s.err == nil && s.cols == 0 {
		cols := s.r.columns()
		s.cols = len(cols)
		s.names = len(s.r.names)
		_, s.err = io.WriteString(s.w, "time_ns,"+strings.Join(cols, ",")+"\n")
	}
	if s.err != nil {
		return s.err
	}
	return s.lateErr
}

// Rows reports how many data rows have been written.
func (s *StreamSampler) Rows() int { return s.rows }

// Err reports the first write error encountered, or nil.
func (s *StreamSampler) Err() error { return s.err }
