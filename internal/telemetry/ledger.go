package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dtl/internal/sim"
)

// Cause classifies where an attributed cost came from: every nanosecond of
// added latency and every unit of the energy proxy the ledger records is
// charged to exactly one cause, so per-cause costs sum to the ledger totals
// (the conservation property DESIGN.md §12 documents and tests enforce).
type Cause uint8

const (
	// CauseBaseline is the cost any access pays on healthy, awake hardware:
	// the L1 SMC hit plus plain DRAM service latency. For the pseudo-VM
	// SystemVM it also carries the residency-weighted background energy.
	CauseBaseline Cause = iota
	// CauseSMCMissWalk is translation latency beyond the L1 hit: L2 lookups
	// and the full miss-path table walk.
	CauseSMCMissWalk
	// CauseSelfRefreshWake is the self-refresh exit penalty charged to the
	// access that woke the rank.
	CauseSelfRefreshWake
	// CauseDegradedRead is the repair/retry penalty of accessing a failed
	// rank in degraded mode (reads and writes alike).
	CauseDegradedRead
	// CauseMigrationCopy is a background segment copy scheduled by the
	// hotness engine (swap/move traffic).
	CauseMigrationCopy
	// CauseMigrationStall is copy time re-spent because a foreground write
	// aborted or re-queued an in-flight migration (§4.2 protocol).
	CauseMigrationStall
	// CauseDemotionWait is power-down consolidation cost: drain copies into
	// MPSM and the reactivation wake an allocation pays to get ranks back.
	CauseDemotionWait
	// CauseFaultRetry is reliability-loop work: verify-after-copy re-routes,
	// retirement drains, and deferred-retirement backoffs.
	CauseFaultRetry
	// CauseFabricCopy is inter-expander segment copy traffic over the rack
	// fabric: a rack.Allocator migration's bandwidth-shared transfer time and
	// energy (internal/rack).
	CauseFabricCopy
	// CauseFabricStall is fabric latency foreground accesses pay to reach a
	// remote expander: per-hop base cost plus the bandwidth-shared transfer
	// component of a cross-expander access.
	CauseFabricStall
)

// NumCauses is the number of defined causes.
const NumCauses = int(CauseFabricStall) + 1

// String spells the cause the way trace records and dtlstat render it.
func (c Cause) String() string {
	switch c {
	case CauseBaseline:
		return "baseline"
	case CauseSMCMissWalk:
		return "smc-miss-walk"
	case CauseSelfRefreshWake:
		return "self-refresh-wake"
	case CauseDegradedRead:
		return "degraded-read"
	case CauseMigrationCopy:
		return "migration-copy"
	case CauseMigrationStall:
		return "migration-stall"
	case CauseDemotionWait:
		return "demotion-wait"
	case CauseFaultRetry:
		return "fault-retry"
	case CauseFabricCopy:
		return "fabric-copy"
	case CauseFabricStall:
		return "fabric-stall"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// ParseCause maps a cause name back to its code.
func ParseCause(s string) (Cause, bool) {
	for c := Cause(0); int(c) < NumCauses; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// SystemVM is the pseudo-VM charged for costs not attributable to a single
// tenant: background residency energy, health-monitor work, copies of
// already-freed segments.
const SystemVM int64 = -1

// LedgerCell is one accumulated (latency, energy) charge bucket. Latency is
// integer nanoseconds of virtual time; energy is normalized power units ×
// nanoseconds (1000 × the weight-microseconds EnergyProxy reports), the same
// scale the fig12 power math uses.
type LedgerCell struct {
	LatNs  int64   `json:"lat_ns"`
	Energy float64 `json:"energy"`
}

// zero reports whether the cell carries no cost.
func (c LedgerCell) zero() bool { return c.LatNs == 0 && c.Energy == 0 }

// AttrSpan is one closed attribution span recorded by Ledger.End, ring-
// buffered like the Tracer's events.
type AttrSpan struct {
	VM     int64
	Rank   int
	Cause  Cause
	Start  sim.Time
	End    sim.Time
	Energy float64
}

// Duration reports the span length (the latency it charged).
func (s AttrSpan) Duration() sim.Time { return s.End - s.Start }

// SpanToken is the value Begin hands out and End consumes; being a plain
// value, opening a span never touches the heap.
type SpanToken struct {
	VM    int64
	Rank  int
	Cause Cause
	Start sim.Time
}

// LedgerConfig sizes a Ledger for a device.
type LedgerConfig struct {
	// Ranks is the number of global ranks; each VM gets a dense cell block
	// over (rank, cause), with one extra slot for rank -1 (not rank-scoped).
	Ranks int
	// SpanCapacity bounds the attribution-span ring; 0 selects
	// DefaultSpanCapacity. The ring overwrites oldest-first like the Tracer.
	SpanCapacity int
}

// DefaultSpanCapacity is the default attribution-span ring size.
const DefaultSpanCapacity = 1 << 14

// Ledger is the cost ledger of the attribution plane: it charges latency
// and energy-proxy costs to (vm, rank, cause) triples. All methods are
// nil-receiver-safe no-ops, and Charge on a known VM is allocation-free, so
// model code can call it unconditionally on the access hot path.
//
// The ledger is pure accounting: it never mutates model state, so attaching
// one cannot perturb byte-determinism of a run.
type Ledger struct {
	cfg LedgerConfig

	// cells maps VM id → dense (rank+1)×NumCauses cell block; the block is
	// allocated on the VM's first charge and reused for its lifetime.
	cells   map[int64][]LedgerCell
	byCause [NumCauses]LedgerCell
	total   LedgerCell

	spans  []AttrSpan
	next   int   // overwrite position once the ring is full
	nspans int64 // spans ever recorded
}

// NewLedger builds an empty ledger sized for cfg.Ranks global ranks.
func NewLedger(cfg LedgerConfig) *Ledger {
	if cfg.Ranks <= 0 {
		panic(fmt.Sprintf("telemetry: ledger needs at least one rank, got %d", cfg.Ranks))
	}
	if cfg.SpanCapacity <= 0 {
		cfg.SpanCapacity = DefaultSpanCapacity
	}
	return &Ledger{
		cfg:   cfg,
		cells: make(map[int64][]LedgerCell),
		spans: make([]AttrSpan, 0, cfg.SpanCapacity),
	}
}

// Config returns the ledger's configuration.
func (l *Ledger) Config() LedgerConfig { return l.cfg }

// Charge adds latNs nanoseconds and energy units to (vm, rank, cause).
// rank -1 means not rank-scoped; vm SystemVM means not tenant-scoped.
func (l *Ledger) Charge(vm int64, rank int, cause Cause, latNs int64, energy float64) {
	if l == nil {
		return
	}
	if rank < -1 || rank >= l.cfg.Ranks {
		panic(fmt.Sprintf("telemetry: ledger charge on rank %d of %d", rank, l.cfg.Ranks))
	}
	cells := l.cells[vm]
	if cells == nil {
		cells = make([]LedgerCell, (l.cfg.Ranks+1)*NumCauses)
		l.cells[vm] = cells
	}
	c := &cells[(rank+1)*NumCauses+int(cause)]
	c.LatNs += latNs
	c.Energy += energy
	l.byCause[cause].LatNs += latNs
	l.byCause[cause].Energy += energy
	l.total.LatNs += latNs
	l.total.Energy += energy
}

// Begin opens a virtual-time attribution span. It is pure value
// construction; nothing is recorded until End.
func (l *Ledger) Begin(vm int64, rank int, cause Cause, start sim.Time) SpanToken {
	return SpanToken{VM: vm, Rank: rank, Cause: cause, Start: start}
}

// End closes a span: (end - start) nanoseconds of latency and the given
// energy are charged to the token's triple, and the closed span enters the
// ring buffer.
func (l *Ledger) End(tok SpanToken, end sim.Time, energy float64) {
	if l == nil {
		return
	}
	if end < tok.Start {
		panic(fmt.Sprintf("telemetry: attribution span ends at %v before start %v", end, tok.Start))
	}
	l.Charge(tok.VM, tok.Rank, tok.Cause, int64(end-tok.Start), energy)
	sp := AttrSpan{VM: tok.VM, Rank: tok.Rank, Cause: tok.Cause, Start: tok.Start, End: end, Energy: energy}
	if len(l.spans) < cap(l.spans) {
		l.spans = append(l.spans, sp)
	} else {
		l.spans[l.next] = sp
		l.next = (l.next + 1) % len(l.spans)
	}
	l.nspans++
}

// Spans returns the retained attribution spans in recording order.
func (l *Ledger) Spans() []AttrSpan {
	if l == nil {
		return nil
	}
	if len(l.spans) < cap(l.spans) {
		return append([]AttrSpan(nil), l.spans...)
	}
	out := make([]AttrSpan, 0, len(l.spans))
	out = append(out, l.spans[l.next:]...)
	out = append(out, l.spans[:l.next]...)
	return out
}

// SpansTotal reports how many spans were ever recorded.
func (l *Ledger) SpansTotal() int64 {
	if l == nil {
		return 0
	}
	return l.nspans
}

// SpansDropped reports how many spans the ring overwrote.
func (l *Ledger) SpansDropped() int64 {
	if l == nil {
		return 0
	}
	if d := l.nspans - int64(len(l.spans)); d > 0 {
		return d
	}
	return 0
}

// Total returns the grand-total cell (sum of every charge ever made).
func (l *Ledger) Total() LedgerCell {
	if l == nil {
		return LedgerCell{}
	}
	return l.total
}

// CauseTotals returns the per-cause totals, indexed by Cause.
func (l *Ledger) CauseTotals() [NumCauses]LedgerCell {
	if l == nil {
		return [NumCauses]LedgerCell{}
	}
	return l.byCause
}

// ChargeResidency folds a tracer's power-state residency into the ledger as
// background energy on (SystemVM, rank, baseline): weight(state) × span
// duration in nanoseconds per closed span (nil weights selects
// DefaultStateWeights, unknown states weigh 1.0). Call it after
// Tracer.Finish so spans cover the full run; with it, the ledger accounts
// the entire background energy proxy, not just the technique costs.
func (l *Ledger) ChargeResidency(t *Tracer, weights map[string]float64) {
	if l == nil || t == nil {
		return
	}
	if weights == nil {
		weights = DefaultStateWeights()
	}
	for _, s := range t.spans {
		w, ok := weights[t.StateName(s.State)]
		if !ok {
			w = 1.0
		}
		l.Charge(SystemVM, s.Rank, CauseBaseline, 0, w*float64(s.Duration()))
	}
}

// LedgerEntry is one nonzero ledger cell in exported form.
type LedgerEntry struct {
	VM     int64   `json:"vm"`
	Rank   int     `json:"rank"`
	Cause  string  `json:"cause"`
	LatNs  int64   `json:"lat_ns"`
	Energy float64 `json:"energy"`
}

// CauseTotal is one cause's aggregate cost across all VMs and ranks.
type CauseTotal struct {
	Cause  string  `json:"cause"`
	LatNs  int64   `json:"lat_ns"`
	Energy float64 `json:"energy"`
}

// LedgerSnapshot is the exported (and JSON-serialized) form of a ledger:
// grand totals, per-cause totals, and every nonzero (vm, rank, cause) cell,
// deterministically sorted by (vm, rank, cause code) so identical runs
// produce byte-identical artifacts.
type LedgerSnapshot struct {
	TotalLatNs  int64         `json:"total_lat_ns"`
	TotalEnergy float64       `json:"total_energy"`
	Causes      []CauseTotal  `json:"causes"`
	Entries     []LedgerEntry `json:"entries"`
}

// Snapshot exports the ledger's current state.
func (l *Ledger) Snapshot() *LedgerSnapshot {
	snap := &LedgerSnapshot{}
	if l == nil {
		return snap
	}
	snap.TotalLatNs = l.total.LatNs
	snap.TotalEnergy = l.total.Energy
	for c := 0; c < NumCauses; c++ {
		if l.byCause[c].zero() {
			continue
		}
		snap.Causes = append(snap.Causes, CauseTotal{
			Cause: Cause(c).String(), LatNs: l.byCause[c].LatNs, Energy: l.byCause[c].Energy,
		})
	}
	vms := make([]int64, 0, len(l.cells))
	for vm := range l.cells {
		vms = append(vms, vm)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	for _, vm := range vms {
		cells := l.cells[vm]
		for rank := -1; rank < l.cfg.Ranks; rank++ {
			for c := 0; c < NumCauses; c++ {
				cell := cells[(rank+1)*NumCauses+c]
				if cell.zero() {
					continue
				}
				snap.Entries = append(snap.Entries, LedgerEntry{
					VM: vm, Rank: rank, Cause: Cause(c).String(),
					LatNs: cell.LatNs, Energy: cell.Energy,
				})
			}
		}
	}
	return snap
}

// WriteJSON serializes the ledger snapshot as indented JSON. The output is
// deterministic: identical charge histories produce byte-identical files.
func (l *Ledger) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(l.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// EmitTo dumps every nonzero ledger cell into the tracer as one "ledger"
// record at time at, so exported traces carry the attribution totals and
// SummarizeTrace can rebuild the breakdown from a trace alone.
func (l *Ledger) EmitTo(t *Tracer, at sim.Time) {
	if l == nil || t == nil {
		return
	}
	for _, e := range l.Snapshot().Entries {
		t.LedgerCell(e.VM, e.Rank, e.Cause, e.LatNs, e.Energy, at)
	}
}

// ParseLedgerSnapshot reads a ledger artifact written by WriteJSON.
func ParseLedgerSnapshot(r io.Reader) (*LedgerSnapshot, error) {
	dec := json.NewDecoder(r)
	var snap LedgerSnapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("telemetry: parsing ledger: %w", err)
	}
	return &snap, nil
}

// sortEntries orders entries by (vm, rank, cause code) — the canonical
// ledger order shared by Snapshot and the trace summarizers.
func sortEntries(entries []LedgerEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.VM != b.VM {
			return a.VM < b.VM
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if ra, rb := causeRank(a.Cause), causeRank(b.Cause); ra != rb {
			return ra < rb
		}
		return a.Cause < b.Cause
	})
}

// causeRank orders cause names canonically (declaration order), with
// unknown names after the known set (lexically, via sortEntries' tiebreak).
func causeRank(name string) int {
	if c, ok := ParseCause(name); ok {
		return int(c)
	}
	return NumCauses
}
