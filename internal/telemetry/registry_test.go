package telemetry

import (
	"strings"
	"testing"

	"dtl/internal/sim"
)

func TestCounterGaugeTimerBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("a.count"); again != c {
		t.Fatal("Counter should return the same instance for the same name")
	}

	g := r.Gauge("a.gauge")
	g.Set(2.5)
	if v, ok := r.Value("a.gauge"); !ok || v != 2.5 {
		t.Fatalf("gauge value = %v,%v", v, ok)
	}
	r.GaugeFunc("a.fn", func() float64 { return 7 })
	if v, _ := r.Value("a.fn"); v != 7 {
		t.Fatalf("gauge func value = %v", v)
	}

	tm := r.Timer("a.lat", nil)
	tm.Observe(100)
	tm.Observe(300)
	if tm.Count() != 2 || tm.Mean() != 200 || tm.Max() != 300 {
		t.Fatalf("timer = count %d mean %v max %v", tm.Count(), tm.Mean(), tm.Max())
	}
	if tm.Histogram().Total() != 2 {
		t.Fatalf("histogram total = %d", tm.Histogram().Total())
	}
}

func TestRegisterCounterSharesState(t *testing.T) {
	r := NewRegistry()
	var owned Counter // embedded-by-value style, as memctrl uses
	r.RegisterCounter("ext", &owned)
	owned.Inc()
	owned.Inc()
	if v, ok := r.Value("ext"); !ok || v != 2 {
		t.Fatalf("registered counter reads %v,%v, want 2", v, ok)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

func TestValueUnknownName(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Value("nope"); ok {
		t.Fatal("unknown name should report ok=false")
	}
}

func TestSamplingDrivenByIntervalTimer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	eng := sim.NewEngine()
	cancel := r.StartSampling(eng, 10)

	c.Inc()
	eng.RunUntil(25) // samples at 10, 20
	c.Add(9)
	eng.RunUntil(40) // samples at 30, 40
	cancel()
	eng.RunUntil(100) // no more samples

	if got := r.SampleCount(); got != 4 {
		t.Fatalf("samples = %d, want 4", got)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "time_ns,hits\n10,1\n20,1\n30,10\n40,10\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestWriteCSVPadsLateRegisteredMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("early").Inc()
	r.Sample(5)
	r.Gauge("late").Set(3)
	tm := r.Timer("lat", nil)
	tm.Observe(50)
	r.Sample(10)

	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "time_ns,early,late,lat.count,lat.mean_ns" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "5,1,,," {
		t.Fatalf("first row should pad missing columns, got %q", lines[1])
	}
	if lines[2] != "10,1,3,1,50" {
		t.Fatalf("second row = %q", lines[2])
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.5)
	snap := r.Snapshot()
	if snap["c"] != 3 || snap["g"] != 1.5 {
		t.Fatalf("snapshot = %v", snap)
	}
	var sb strings.Builder
	if err := r.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "c") || !strings.Contains(sb.String(), "1.5") {
		t.Fatalf("snapshot dump = %q", sb.String())
	}
}
