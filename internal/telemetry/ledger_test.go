package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dtl/internal/sim"
)

func TestCauseStringRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for c := Cause(0); int(c) < NumCauses; c++ {
		name := c.String()
		if strings.Contains(name, "Cause(") {
			t.Fatalf("cause %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate cause name %q", name)
		}
		seen[name] = true
		back, ok := ParseCause(name)
		if !ok || back != c {
			t.Fatalf("ParseCause(%q) = %v, %v; want %v", name, back, ok, c)
		}
	}
	if _, ok := ParseCause("no-such-cause"); ok {
		t.Fatal("ParseCause accepted an unknown name")
	}
}

func TestLedgerChargeAccumulates(t *testing.T) {
	l := NewLedger(LedgerConfig{Ranks: 4})
	l.Charge(7, 2, CauseBaseline, 100, 1.5)
	l.Charge(7, 2, CauseBaseline, 50, 0.5)
	l.Charge(7, -1, CauseSMCMissWalk, 30, 0)
	l.Charge(SystemVM, 0, CauseFaultRetry, 0, 2.0)

	if tot := l.Total(); tot.LatNs != 180 || tot.Energy != 4.0 {
		t.Fatalf("total = %+v", tot)
	}
	byCause := l.CauseTotals()
	if byCause[CauseBaseline].LatNs != 150 || byCause[CauseBaseline].Energy != 2.0 {
		t.Fatalf("baseline total = %+v", byCause[CauseBaseline])
	}
	if byCause[CauseSMCMissWalk].LatNs != 30 {
		t.Fatalf("walk total = %+v", byCause[CauseSMCMissWalk])
	}

	snap := l.Snapshot()
	if snap.TotalLatNs != 180 || snap.TotalEnergy != 4.0 {
		t.Fatalf("snapshot totals = %+v", snap)
	}
	// Canonical order: (vm, rank, cause code); SystemVM (-1) sorts first.
	wantOrder := []LedgerEntry{
		{VM: SystemVM, Rank: 0, Cause: "fault-retry", LatNs: 0, Energy: 2.0},
		{VM: 7, Rank: -1, Cause: "smc-miss-walk", LatNs: 30, Energy: 0},
		{VM: 7, Rank: 2, Cause: "baseline", LatNs: 150, Energy: 2.0},
	}
	if len(snap.Entries) != len(wantOrder) {
		t.Fatalf("entries = %+v", snap.Entries)
	}
	for i, want := range wantOrder {
		if snap.Entries[i] != want {
			t.Fatalf("entry %d = %+v, want %+v", i, snap.Entries[i], want)
		}
	}
}

func TestLedgerNilIsSafe(t *testing.T) {
	var l *Ledger
	l.Charge(1, 0, CauseBaseline, 10, 1)
	l.End(l.Begin(1, 0, CauseBaseline, 5), 10, 0)
	l.ChargeResidency(nil, nil)
	l.EmitTo(nil, 0)
	if got := l.Total(); got != (LedgerCell{}) {
		t.Fatalf("nil ledger total = %+v", got)
	}
	if s := l.Snapshot(); s.TotalLatNs != 0 || len(s.Entries) != 0 {
		t.Fatalf("nil ledger snapshot = %+v", s)
	}
	if l.Spans() != nil || l.SpansTotal() != 0 || l.SpansDropped() != 0 {
		t.Fatal("nil ledger reported spans")
	}
}

func TestLedgerSpansRingOverwritesOldest(t *testing.T) {
	l := NewLedger(LedgerConfig{Ranks: 1, SpanCapacity: 3})
	for i := 0; i < 5; i++ {
		start := sim.Time(i * 10)
		l.End(l.Begin(int64(i), 0, CauseMigrationCopy, start), start+5, 1)
	}
	spans := l.Spans()
	if len(spans) != 3 || l.SpansTotal() != 5 || l.SpansDropped() != 2 {
		t.Fatalf("spans=%d total=%d dropped=%d", len(spans), l.SpansTotal(), l.SpansDropped())
	}
	// Oldest two (VM 0, 1) were overwritten; recording order preserved.
	for i, sp := range spans {
		if sp.VM != int64(i+2) {
			t.Fatalf("span %d VM = %d", i, sp.VM)
		}
		if sp.Duration() != 5 {
			t.Fatalf("span %d duration = %d", i, sp.Duration())
		}
	}
	// The ring drops span records, never charges: the ledger still holds all 5.
	if tot := l.Total(); tot.LatNs != 25 || tot.Energy != 5 {
		t.Fatalf("total = %+v", tot)
	}
}

func TestLedgerWriteJSONDeterministicAndParses(t *testing.T) {
	build := func() *Ledger {
		l := NewLedger(LedgerConfig{Ranks: 3})
		// Charge in scrambled vm order; snapshot must still sort canonically.
		l.Charge(9, 1, CauseSelfRefreshWake, 40, 0)
		l.Charge(SystemVM, 2, CauseBaseline, 0, 123.456)
		l.Charge(3, 0, CauseDegradedRead, 25, 0)
		return l
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical charge histories produced different artifacts")
	}
	snap, err := ParseLedgerSnapshot(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.TotalLatNs != 65 || snap.TotalEnergy != 123.456 {
		t.Fatalf("parsed totals = %+v", snap)
	}
	if len(snap.Entries) != 3 || snap.Entries[0].VM != SystemVM {
		t.Fatalf("parsed entries = %+v", snap.Entries)
	}
}

// TestLedgerRoundTripThroughTraceSinks dumps a ledger into a tracer and
// checks that every export format rebuilds identical attribution entries —
// the cross-format agreement `dtlstat top` and `dtlstat diff` rely on.
func TestLedgerRoundTripThroughTraceSinks(t *testing.T) {
	tr := testTracer(4, 0)
	tr.PowerTransition(0, 1, 100)
	l := NewLedger(LedgerConfig{Ranks: 4})
	l.Charge(5, 2, CauseBaseline, 1234, 0.125)
	l.Charge(5, 2, CauseSelfRefreshWake, 17, 0)
	l.Charge(SystemVM, -1, CauseFaultRetry, 500, 0)
	l.End(l.Begin(5, 1, CauseMigrationCopy, 100), 400, 2.5)
	tr.AttrSpan(5, 1, CauseMigrationCopy.String(), 100, 400, 2.5)
	tr.Finish(1000)
	l.EmitTo(tr, 1000)

	want := l.Snapshot().Entries
	check := func(name string, s *TraceSummary, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Attribution) != len(want) {
			t.Fatalf("%s: attribution = %+v, want %+v", name, s.Attribution, want)
		}
		for i := range want {
			if s.Attribution[i] != want[i] {
				t.Fatalf("%s: entry %d = %+v, want %+v", name, i, s.Attribution[i], want[i])
			}
		}
		// Live attr spans count as points, never as ledger entries.
		if s.Points["attr"] != 1 {
			t.Fatalf("%s: attr points = %d", name, s.Points["attr"])
		}
	}

	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, tr); err != nil {
		t.Fatal(err)
	}
	s, err := SummarizeChromeTrace(bytes.NewReader(chrome.Bytes()))
	check("chrome", s, err)

	var jsonl bytes.Buffer
	if err := WriteJSONL(&jsonl, tr); err != nil {
		t.Fatal(err)
	}
	s, err = SummarizeJSONL(bytes.NewReader(jsonl.Bytes()))
	check("jsonl", s, err)

	var csv bytes.Buffer
	if err := WriteEventsCSV(&csv, tr); err != nil {
		t.Fatal(err)
	}
	s, err = SummarizeEventsCSV(bytes.NewReader(csv.Bytes()))
	check("csv", s, err)
}

func TestSummarizeEmptyTrace(t *testing.T) {
	_, err := SummarizeTrace(strings.NewReader(""))
	if !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("err = %v, want ErrEmptyTrace", err)
	}
}

func TestSummarizeTruncatedTraces(t *testing.T) {
	tr := traceFixture(t)
	cut := func(b []byte, n int) []byte { return b[:len(b)-n] }

	var jsonl bytes.Buffer
	if err := WriteJSONL(&jsonl, tr); err != nil {
		t.Fatal(err)
	}
	_, err := SummarizeJSONL(bytes.NewReader(cut(jsonl.Bytes(), 9)))
	if !errors.Is(err, ErrTruncatedTrace) {
		t.Fatalf("jsonl err = %v, want ErrTruncatedTrace", err)
	}
	if !strings.Contains(err.Error(), "line") || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("jsonl truncation error lacks position: %v", err)
	}

	var csv bytes.Buffer
	if err := WriteEventsCSV(&csv, tr); err != nil {
		t.Fatal(err)
	}
	_, err = SummarizeEventsCSV(bytes.NewReader(cut(csv.Bytes(), 12)))
	if !errors.Is(err, ErrTruncatedTrace) {
		t.Fatalf("csv err = %v, want ErrTruncatedTrace", err)
	}

	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, tr); err != nil {
		t.Fatal(err)
	}
	_, err = SummarizeChromeTrace(bytes.NewReader(cut(chrome.Bytes(), 40)))
	if !errors.Is(err, ErrTruncatedTrace) {
		t.Fatalf("chrome err = %v, want ErrTruncatedTrace", err)
	}

	// An intact trace of any format still summarizes cleanly via sniffing.
	if _, err := SummarizeTrace(bytes.NewReader(jsonl.Bytes())); err != nil {
		t.Fatalf("intact jsonl: %v", err)
	}
}

func TestChargeResidencyFoldsPowerSpans(t *testing.T) {
	tr := testTracer(2, 0)
	tr.PowerTransition(0, 1, 100) // rank 0: standby 0..100, self-refresh 100..1000
	tr.Finish(1000)

	l := NewLedger(LedgerConfig{Ranks: 2})
	l.ChargeResidency(tr, nil)
	w := DefaultStateWeights()
	want := 2*w["standby"]*1000 - w["standby"]*900 + w["self-refresh"]*900
	if got := l.Total().Energy; got != want {
		t.Fatalf("residency energy = %g, want %g", got, want)
	}
	if l.Total().LatNs != 0 {
		t.Fatal("residency charged latency")
	}
	// All of it lands on (SystemVM, rank, baseline).
	for _, e := range l.Snapshot().Entries {
		if e.VM != SystemVM || e.Cause != "baseline" {
			t.Fatalf("residency entry = %+v", e)
		}
	}
}
