package telemetry

import (
	"fmt"
	"io"
)

// TraceStream is a streaming trace sink: attached to a Tracer with
// AttachStream, it renders every closed power span and every structured
// event to w the moment the tracer records it, using the same row renderers
// (and the same alloc-free append-buffer discipline as StreamSampler) as the
// batch writers, so streamed and batch output share one schema.
//
// Streaming sidesteps the event ring entirely: a long run whose point events
// overflow the tracer's ring capacity still produces a complete JSONL/CSV
// trace, because each event was written before it could be evicted. Records
// appear in completion order — events when emitted, power spans when the
// rank leaves the state (so a span's start_ns can precede the at_ns of
// records written before it).
//
// The Chrome trace_event format is a single JSON document and cannot
// stream; NewTraceStream rejects FormatChrome.
type TraceStream struct {
	w      io.Writer
	format TraceFormat
	buf    []byte // reused row buffer
	rows   int
	err    error
}

// NewTraceStream builds a streaming sink rendering format to w. The caller
// owns w's lifetime (and any buffering); Err reports the first write error.
func NewTraceStream(w io.Writer, format TraceFormat) (*TraceStream, error) {
	if format == FormatChrome {
		return nil, fmt.Errorf("telemetry: chrome trace format cannot stream (use WriteChromeTrace at finish)")
	}
	ts := &TraceStream{w: w, format: format}
	if format == FormatCSV {
		if _, err := io.WriteString(w, eventsCSVHeader); err != nil {
			ts.err = err
		}
	}
	return ts, nil
}

// span renders one closed power span. Write errors are sticky: after the
// first failure the stream goes quiet and Err reports the cause.
func (ts *TraceStream) span(t *Tracer, s PowerSpan) {
	if ts == nil || ts.err != nil {
		return
	}
	switch ts.format {
	case FormatJSONL:
		ts.buf = appendPowerJSONL(ts.buf[:0], t.RankName(s.Rank), t.StateName(s.State), s)
	default:
		ts.buf = appendPowerCSV(ts.buf[:0], t.StateName(s.State), s)
	}
	ts.write()
}

// event renders one structured event.
func (ts *TraceStream) event(ev Event) {
	if ts == nil || ts.err != nil {
		return
	}
	switch ts.format {
	case FormatJSONL:
		ts.buf = appendEventJSONL(ts.buf[:0], ev)
	default:
		ts.buf = appendEventCSV(ts.buf[:0], ev)
	}
	ts.write()
}

func (ts *TraceStream) write() {
	if _, err := ts.w.Write(ts.buf); err != nil {
		ts.err = err
		return
	}
	ts.rows++
}

// Rows reports how many records have been written.
func (ts *TraceStream) Rows() int { return ts.rows }

// Err reports the first write error encountered, or nil.
func (ts *TraceStream) Err() error {
	if ts == nil {
		return nil
	}
	return ts.err
}
