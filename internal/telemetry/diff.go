package telemetry

import (
	"fmt"
	"sort"

	"dtl/internal/metrics"
)

// Summary comparison: the model behind `dtlstat diff`. Two runs of the same
// experiment are compared on the quantities the paper's evaluation argues
// about — power-state residency shares, migration-latency percentiles, and
// a residency-weighted background-energy proxy — with tolerance bands so a
// policy change can be reviewed (or CI-gated) in one command.

// DefaultStateWeights returns the Table 2 normalized background power per
// state (mirroring dram.DefaultPowerModel), used by EnergyProxy. States a
// trace names that are absent here weigh 1.0 (standby-equivalent), so an
// unknown state can only make the proxy pessimistic, never hide energy.
func DefaultStateWeights() map[string]float64 {
	return map[string]float64{
		"standby":      1.0,
		"self-refresh": 0.2,
		"mpsm":         0.068,
	}
}

// EnergyProxy folds residency into a background-energy figure (weight ×
// microseconds, summed over every rank and state) using the given per-state
// power weights (nil selects DefaultStateWeights). It deliberately excludes
// active and migration energy — those need the power meter — but tracks
// exactly the background component the power-down and self-refresh engines
// optimize, which is what a residency trace can support.
func (s *TraceSummary) EnergyProxy(weights map[string]float64) float64 {
	if weights == nil {
		weights = DefaultStateWeights()
	}
	var total float64
	for _, states := range s.Residency {
		for name, us := range states {
			w, ok := weights[name]
			if !ok {
				w = 1.0
			}
			total += w * us
		}
	}
	return total
}

// DiffTolerance bounds the acceptable drift between two summaries. Zero
// values disable the corresponding check.
type DiffTolerance struct {
	// Share is the maximum absolute drift of any state's residency share,
	// aggregate and per-rank (e.g. 0.05 = five percentage points).
	Share float64
	// LatFrac is the maximum relative shift of any migration-latency
	// percentile (P50/P95/P99), e.g. 0.25 = 25%.
	LatFrac float64
	// EnergyFrac is the maximum relative drift of the energy proxy.
	EnergyFrac float64
	// AttrFrac is the maximum relative shift of any per-cause attribution
	// total (latency or energy) from the ledger dump.
	AttrFrac float64
}

// ShareDelta is one state's residency share in both runs.
type ShareDelta struct {
	State string
	A, B  float64 // shares in [0, 1]
}

// Delta is B - A.
func (d ShareDelta) Delta() float64 { return d.B - d.A }

// RankDiff is one rank's per-state share deltas.
type RankDiff struct {
	Rank   int
	Label  string
	Shares []ShareDelta
}

// PercentileDelta is one migration-latency percentile in both runs.
type PercentileDelta struct {
	Name string  // "P50", "P95", "P99"
	A, B float64 // microseconds
}

// Shift reports the relative change (B-A)/A, or 0 when both are zero.
func (d PercentileDelta) Shift() float64 {
	if d.A == 0 {
		if d.B == 0 {
			return 0
		}
		return 1 // appeared from nothing: treat as a full shift
	}
	return (d.B - d.A) / d.A
}

// CauseDelta is one attribution cause's ledger total in both runs.
type CauseDelta struct {
	Cause            string
	LatA, LatB       int64   // nanoseconds
	EnergyA, EnergyB float64 // energy-proxy units
}

// LatShift reports the relative latency change (B-A)/A, or 0 when both are
// zero; a cost appearing from nothing counts as a full shift.
func (d CauseDelta) LatShift() float64 {
	if d.LatA == 0 {
		if d.LatB == 0 {
			return 0
		}
		return 1
	}
	return float64(d.LatB-d.LatA) / float64(d.LatA)
}

// EnergyShift reports the relative energy change (B-A)/A, with the same
// zero conventions as LatShift.
func (d CauseDelta) EnergyShift() float64 {
	if d.EnergyA == 0 {
		if d.EnergyB == 0 {
			return 0
		}
		return 1
	}
	return (d.EnergyB - d.EnergyA) / d.EnergyA
}

// SummaryDiff is the structured comparison of two trace summaries.
type SummaryDiff struct {
	States    []string     // union of state names, sorted
	Aggregate []ShareDelta // device-wide shares per state
	Ranks     []RankDiff   // per-rank shares, sorted by rank id

	// RanksOnlyA / RanksOnlyB list ranks present in one summary only (a
	// geometry mismatch; always a violation when non-empty).
	RanksOnlyA, RanksOnlyB []int

	MigrationsA, MigrationsB int
	Percentiles              []PercentileDelta // set when either run migrated

	EnergyA, EnergyB float64 // EnergyProxy of each run

	// Points maps event name → [countA, countB] for the instant events.
	Points map[string][2]int

	// Causes compares per-cause attribution totals when either trace
	// carries a ledger dump, in cause-taxonomy order.
	Causes []CauseDelta
}

// aggregateShares computes device-wide residency share per state.
func aggregateShares(s *TraceSummary, states []string) map[string]float64 {
	var total float64
	sums := map[string]float64{}
	for _, rank := range s.Ranks() {
		for _, st := range states {
			sums[st] += s.Residency[rank][st]
		}
		total += s.RankDuration(rank)
	}
	out := make(map[string]float64, len(sums))
	for st, us := range sums {
		if total > 0 {
			out[st] = us / total
		}
	}
	return out
}

func rankShares(s *TraceSummary, rank int, states []string) map[string]float64 {
	total := s.RankDuration(rank)
	out := make(map[string]float64, len(states))
	for _, st := range states {
		if total > 0 {
			out[st] = s.Residency[rank][st] / total
		}
	}
	return out
}

// DiffSummaries compares two summaries (A is the baseline, B the candidate)
// into a SummaryDiff; apply tolerances with Check.
func DiffSummaries(a, b *TraceSummary) *SummaryDiff {
	stateSet := map[string]bool{}
	for _, st := range a.States() {
		stateSet[st] = true
	}
	for _, st := range b.States() {
		stateSet[st] = true
	}
	states := make([]string, 0, len(stateSet))
	for st := range stateSet {
		states = append(states, st)
	}
	sort.Strings(states)

	d := &SummaryDiff{
		States:      states,
		MigrationsA: len(a.MigrationsUs),
		MigrationsB: len(b.MigrationsUs),
		EnergyA:     a.EnergyProxy(nil),
		EnergyB:     b.EnergyProxy(nil),
		Points:      map[string][2]int{},
	}

	aggA, aggB := aggregateShares(a, states), aggregateShares(b, states)
	for _, st := range states {
		d.Aggregate = append(d.Aggregate, ShareDelta{State: st, A: aggA[st], B: aggB[st]})
	}

	ranksA, ranksB := a.Ranks(), b.Ranks()
	inA := map[int]bool{}
	for _, r := range ranksA {
		inA[r] = true
	}
	inB := map[int]bool{}
	for _, r := range ranksB {
		inB[r] = true
	}
	for _, r := range ranksA {
		if !inB[r] {
			d.RanksOnlyA = append(d.RanksOnlyA, r)
		}
	}
	for _, r := range ranksB {
		if !inA[r] {
			d.RanksOnlyB = append(d.RanksOnlyB, r)
		}
	}
	for _, r := range ranksA {
		if !inB[r] {
			continue
		}
		shA, shB := rankShares(a, r, states), rankShares(b, r, states)
		rd := RankDiff{Rank: r, Label: a.RankLabel(r)}
		for _, st := range states {
			rd.Shares = append(rd.Shares, ShareDelta{State: st, A: shA[st], B: shB[st]})
		}
		d.Ranks = append(d.Ranks, rd)
	}

	if len(a.MigrationsUs) > 0 || len(b.MigrationsUs) > 0 {
		sumA := metrics.Summarize(a.MigrationsUs)
		sumB := metrics.Summarize(b.MigrationsUs)
		d.Percentiles = []PercentileDelta{
			{Name: "P50", A: sumA.P50, B: sumB.P50},
			{Name: "P95", A: sumA.P95, B: sumB.P95},
			{Name: "P99", A: sumA.P99, B: sumB.P99},
		}
	}

	nameSet := map[string]bool{}
	for n := range a.Points {
		nameSet[n] = true
	}
	for n := range b.Points {
		nameSet[n] = true
	}
	for n := range nameSet {
		d.Points[n] = [2]int{a.Points[n], b.Points[n]}
	}

	d.Causes = diffCauses(a.Attribution, b.Attribution)
	return d
}

// diffCauses folds two ledger dumps into per-cause totals and pairs them.
func diffCauses(a, b []LedgerEntry) []CauseDelta {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	totals := map[string]*CauseDelta{}
	for _, e := range a {
		cd := totals[e.Cause]
		if cd == nil {
			cd = &CauseDelta{Cause: e.Cause}
			totals[e.Cause] = cd
		}
		cd.LatA += e.LatNs
		cd.EnergyA += e.Energy
	}
	for _, e := range b {
		cd := totals[e.Cause]
		if cd == nil {
			cd = &CauseDelta{Cause: e.Cause}
			totals[e.Cause] = cd
		}
		cd.LatB += e.LatNs
		cd.EnergyB += e.Energy
	}
	out := make([]CauseDelta, 0, len(totals))
	for _, cd := range totals {
		out = append(out, *cd)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := causeRank(out[i].Cause), causeRank(out[j].Cause)
		if ri != rj {
			return ri < rj
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// EnergyDelta is the relative energy-proxy change (B-A)/A.
func (d *SummaryDiff) EnergyDelta() float64 {
	if d.EnergyA == 0 {
		if d.EnergyB == 0 {
			return 0
		}
		return 1
	}
	return (d.EnergyB - d.EnergyA) / d.EnergyA
}

// WorstRankShare finds the largest absolute per-rank share drift for one
// state; ok is false when no rank is shared between the summaries.
func (d *SummaryDiff) WorstRankShare(state string) (RankDiff, ShareDelta, bool) {
	var worstRank RankDiff
	var worst ShareDelta
	found := false
	for _, rd := range d.Ranks {
		for _, sh := range rd.Shares {
			if sh.State != state {
				continue
			}
			if !found || abs(sh.Delta()) > abs(worst.Delta()) {
				worstRank, worst, found = rd, sh, true
			}
		}
	}
	return worstRank, worst, found
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Check applies the tolerance bands and returns one human-readable string
// per violation (empty = the candidate is within band).
func (d *SummaryDiff) Check(tol DiffTolerance) []string {
	var bad []string
	if len(d.RanksOnlyA) > 0 || len(d.RanksOnlyB) > 0 {
		bad = append(bad, fmt.Sprintf("rank sets differ: %d only in A, %d only in B",
			len(d.RanksOnlyA), len(d.RanksOnlyB)))
	}
	if tol.Share > 0 {
		for _, sh := range d.Aggregate {
			if abs(sh.Delta()) > tol.Share {
				bad = append(bad, fmt.Sprintf("aggregate %s share drift %+.3f exceeds ±%.3f",
					sh.State, sh.Delta(), tol.Share))
			}
		}
		for _, st := range d.States {
			if rd, sh, ok := d.WorstRankShare(st); ok && abs(sh.Delta()) > tol.Share {
				bad = append(bad, fmt.Sprintf("rank %s %s share drift %+.3f exceeds ±%.3f",
					rd.Label, st, sh.Delta(), tol.Share))
			}
		}
	}
	if tol.LatFrac > 0 {
		for _, p := range d.Percentiles {
			if abs(p.Shift()) > tol.LatFrac {
				bad = append(bad, fmt.Sprintf("migration %s shift %+.1f%% exceeds ±%.1f%%",
					p.Name, 100*p.Shift(), 100*tol.LatFrac))
			}
		}
	}
	if tol.EnergyFrac > 0 && abs(d.EnergyDelta()) > tol.EnergyFrac {
		bad = append(bad, fmt.Sprintf("energy proxy drift %+.2f%% exceeds ±%.2f%%",
			100*d.EnergyDelta(), 100*tol.EnergyFrac))
	}
	if tol.AttrFrac > 0 {
		for _, cd := range d.Causes {
			if abs(cd.LatShift()) > tol.AttrFrac {
				bad = append(bad, fmt.Sprintf("attribution %s latency shift %+.1f%% exceeds ±%.1f%%",
					cd.Cause, 100*cd.LatShift(), 100*tol.AttrFrac))
			}
			if abs(cd.EnergyShift()) > tol.AttrFrac {
				bad = append(bad, fmt.Sprintf("attribution %s energy shift %+.1f%% exceeds ±%.1f%%",
					cd.Cause, 100*cd.EnergyShift(), 100*tol.AttrFrac))
			}
		}
	}
	return bad
}
