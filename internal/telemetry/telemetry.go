// Package telemetry is the observability layer of the simulator: a
// virtual-time-aware metrics registry (counters, gauges, histogram-backed
// timers sampled into time series) and a structured event tracer (power
// transitions, segment migrations, SMC misses, scrub passes) with pluggable
// export sinks — JSONL, CSV, and Chrome trace_event JSON that opens directly
// in Perfetto or chrome://tracing.
//
// The package sits below the model packages: it depends only on the sim
// clock and the metrics statistics helpers, so dram, memctrl and core can
// all emit into it without import cycles.
//
// Tracing is opt-in and zero-cost when disabled: every Tracer emit method is
// nil-receiver-safe and returns immediately on a nil *Tracer, so model code
// holds a possibly-nil tracer and calls it unconditionally on hot paths.
// Registry counters are plain in-process int64 increments and are always on;
// they replace the ad-hoc counters the model packages used to keep, with the
// legacy Stats() accessors retained as thin views over the registry.
package telemetry
