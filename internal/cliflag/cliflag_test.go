package cliflag

import (
	"runtime"
	"strings"
	"testing"
)

func TestBoundedWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct {
		name     string
		v        int
		explicit bool
		want     int
		wantWarn bool
		wantErr  bool
	}{
		{"negative", -1, true, 0, false, true},
		{"negative implicit", -3, false, 0, false, true},
		{"explicit zero", 0, true, 0, false, true},
		{"implicit zero defaults to serial", 0, false, 1, false, false},
		{"one", 1, true, 1, false, false},
		{"at cap", max, true, max, false, false},
		{"above cap", max + 5, true, max, true, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, warn, err := BoundedWorkers("parallel", c.v, c.explicit)
			if (err != nil) != c.wantErr {
				t.Fatalf("BoundedWorkers(%d, %v) err = %v, want err %v", c.v, c.explicit, err, c.wantErr)
			}
			if err != nil {
				if !strings.Contains(err.Error(), "-parallel") {
					t.Fatalf("error %q does not name the flag", err)
				}
				return
			}
			if n != c.want {
				t.Fatalf("BoundedWorkers(%d, %v) = %d, want %d", c.v, c.explicit, n, c.want)
			}
			if (warn != "") != c.wantWarn {
				t.Fatalf("BoundedWorkers(%d, %v) warning = %q, want warning %v", c.v, c.explicit, warn, c.wantWarn)
			}
		})
	}
}

func TestCheckCount(t *testing.T) {
	cases := []struct {
		name     string
		v        int
		explicit bool
		max      int
		want     int
		wantErr  bool
	}{
		{"negative", -2, true, 64, 0, true},
		{"explicit zero", 0, true, 64, 0, true},
		{"implicit zero means default", 0, false, 64, 0, false},
		{"in range", 4, true, 64, 4, false},
		{"at max", 64, true, 64, 64, false},
		{"above max is an error, never capped", 65, true, 64, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, err := CheckCount("rack", c.v, c.explicit, c.max)
			if (err != nil) != c.wantErr {
				t.Fatalf("CheckCount(%d, %v, %d) err = %v, want err %v", c.v, c.explicit, c.max, err, c.wantErr)
			}
			if err != nil {
				if !strings.Contains(err.Error(), "-rack") {
					t.Fatalf("error %q does not name the flag", err)
				}
				return
			}
			if n != c.want {
				t.Fatalf("CheckCount(%d, %v, %d) = %d, want %d", c.v, c.explicit, c.max, n, c.want)
			}
		})
	}
}

func TestCheckWorkersStructuredWarning(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	n, w, err := CheckWorkers("shards", max+3, true)
	if err != nil {
		t.Fatalf("CheckWorkers: %v", err)
	}
	if n != max {
		t.Fatalf("CheckWorkers capped to %d, want %d", n, max)
	}
	if w == nil {
		t.Fatal("CheckWorkers returned nil warning for an above-cap count")
	}
	if w.Flag != "shards" || w.Requested != max+3 || w.Capped != max {
		t.Fatalf("warning fields = %+v, want {shards %d %d}", w, max+3, max)
	}
	if !strings.Contains(w.String(), "-shards") {
		t.Fatalf("warning string %q does not name the flag", w.String())
	}
	if _, w, _ := CheckWorkers("shards", 1, true); w != nil {
		t.Fatalf("CheckWorkers(1) warning = %+v, want nil", w)
	}
}
