// Package cliflag validates worker-count knobs (-parallel, -shards) shared
// by the dtl front ends. The commands differ in how they report problems
// (dtlsim prints to stderr and exits 2, dtlserved logs structured records),
// so validation returns the verdict and lets the caller render it, mirroring
// the repo's "unknown policy keys fail loudly" convention instead of
// silently misbehaving on nonsense values.
package cliflag

import (
	"fmt"
	"runtime"
)

// Warning describes a worker-count value that was accepted after adjustment.
// It exposes the fields separately so structured loggers can attach them as
// attributes instead of parsing the rendered string.
type Warning struct {
	Flag      string // flag name without the leading dash, e.g. "parallel"
	Requested int    // the value the user asked for
	Capped    int    // the value actually used
}

// String renders the warning for plain-text front ends.
func (w *Warning) String() string {
	return fmt.Sprintf("-%s %d exceeds GOMAXPROCS=%d; capping at %d (results are identical at every count)",
		w.Flag, w.Requested, w.Capped, w.Capped)
}

// CheckWorkers validates a worker/shard count v for the flag -name.
// explicit reports whether the user set the flag on the command line (see
// flag.Visit): an explicit zero is rejected — it always indicates a typo'd
// invocation, never a meaningful request — while an unset zero falls back
// to 1 (serial). Negative counts are rejected outright. Counts above
// GOMAXPROCS are capped to it with a non-nil *Warning: extra workers beyond
// the scheduler's parallelism only add contention, and output is
// byte-identical at every count, so capping is always safe.
func CheckWorkers(name string, v int, explicit bool) (n int, warning *Warning, err error) {
	if v < 0 {
		return 0, nil, fmt.Errorf("-%s %d: want a positive worker count", name, v)
	}
	if v == 0 {
		if explicit {
			return 0, nil, fmt.Errorf("-%s 0: want a positive worker count (omit the flag to run serially)", name)
		}
		return 1, nil, nil
	}
	if max := runtime.GOMAXPROCS(0); v > max {
		return max, &Warning{Flag: name, Requested: v, Capped: max}, nil
	}
	return v, nil, nil
}

// BoundedWorkers is CheckWorkers with the warning pre-rendered as a string,
// for front ends that print rather than log (dtlsim).
func BoundedWorkers(name string, v int, explicit bool) (n int, warning string, err error) {
	n, w, err := CheckWorkers(name, v, explicit)
	if w != nil {
		warning = w.String()
	}
	return n, warning, err
}

// CheckCount validates a bounded model-size knob (-rack): unlike worker
// counts, these change the simulated physics, so a value above the model's
// bound is rejected loudly rather than silently capped (capping would
// silently simulate a different rack). Negative values and explicit zeros
// are rejected like CheckWorkers; an unset zero is returned as 0, meaning
// "use the experiment's default".
func CheckCount(name string, v int, explicit bool, max int) (int, error) {
	if v < 0 {
		return 0, fmt.Errorf("-%s %d: want a positive count", name, v)
	}
	if v == 0 {
		if explicit {
			return 0, fmt.Errorf("-%s 0: want a positive count (omit the flag for the default)", name)
		}
		return 0, nil
	}
	if v > max {
		return 0, fmt.Errorf("-%s %d exceeds the supported maximum %d", name, v, max)
	}
	return v, nil
}
