// Package cliflag validates worker-count knobs (-parallel, -shards) shared
// by the dtl front ends. The commands differ in how they report problems
// (dtlsim prints to stderr and exits 2, dtlserved logs), so validation
// returns the verdict and lets the caller render it, mirroring the repo's
// "unknown policy keys fail loudly" convention instead of silently
// misbehaving on nonsense values.
package cliflag

import (
	"fmt"
	"runtime"
)

// BoundedWorkers validates a worker/shard count v for the flag -name.
// explicit reports whether the user set the flag on the command line (see
// flag.Visit): an explicit zero is rejected — it always indicates a typo'd
// invocation, never a meaningful request — while an unset zero falls back
// to 1 (serial). Negative counts are rejected outright. Counts above
// GOMAXPROCS are capped to it with a warning: extra workers beyond the
// scheduler's parallelism only add contention, and output is byte-identical
// at every count, so capping is always safe.
func BoundedWorkers(name string, v int, explicit bool) (n int, warning string, err error) {
	if v < 0 {
		return 0, "", fmt.Errorf("-%s %d: want a positive worker count", name, v)
	}
	if v == 0 {
		if explicit {
			return 0, "", fmt.Errorf("-%s 0: want a positive worker count (omit the flag to run serially)", name)
		}
		return 1, "", nil
	}
	if max := runtime.GOMAXPROCS(0); v > max {
		return max, fmt.Sprintf("-%s %d exceeds GOMAXPROCS=%d; capping at %d (results are identical at every count)", name, v, max, max), nil
	}
	return v, "", nil
}
