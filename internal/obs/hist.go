package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Hist is a fixed-bucket histogram safe for concurrent Observe without
// locks: per-bucket atomic counters plus a CAS-accumulated float sum.
// Observe is zero-alloc. Exposition follows the Prometheus histogram
// convention: cumulative _bucket{le=...} series, _sum and _count.
type Hist struct {
	bounds []float64      // ascending inclusive upper bounds
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-added
	n      atomic.Int64
}

// NewHist builds a histogram over the given ascending upper bounds.
func NewHist(bounds ...float64) *Hist {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Hist{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Zero-alloc; safe for concurrent use.
func (h *Hist) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Hist) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// WriteSeries writes the _bucket/_sum/_count sample lines for one series.
// extraLabels is either empty or a comma-joined `k="v"` list that is merged
// with the le label. The caller writes # HELP / # TYPE once per metric name.
func (h *Hist) WriteSeries(w io.Writer, name, extraLabels string) {
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, extraLabels, sep, b, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, extraLabels, sep, cum)
	if extraLabels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, extraLabels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, extraLabels, cum)
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	}
}

// Bucket layouts. Stage spans range from tens of microseconds (submit,
// journal-append) to full job runtimes (running), so the stage buckets span
// 1ms..120s. Fsync latencies live under a second on healthy disks; store
// writes are artifact-sized (KB..tens of MB).
var (
	// SecondsBuckets covers job-stage durations.
	SecondsBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
	// FsyncBuckets covers journal fsync latency.
	FsyncBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
	// BytesBuckets covers artifact write sizes.
	BytesBuckets = []float64{1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864}
)

// StageHists is one SecondsBuckets histogram per Stage, for the
// dtlserved_stage_seconds{stage=...} family.
type StageHists struct {
	h [NumStages]*Hist
}

// NewStageHists builds the per-stage family.
func NewStageHists() *StageHists {
	var s StageHists
	for i := range s.h {
		s.h[i] = NewHist(SecondsBuckets...)
	}
	return &s
}

// Observe records one stage duration in seconds. Zero-alloc.
func (s *StageHists) Observe(st Stage, seconds float64) {
	if s == nil || st >= NumStages {
		return
	}
	s.h[st].Observe(seconds)
}

// Count returns the observation count for one stage.
func (s *StageHists) Count(st Stage) int64 {
	if s == nil || st >= NumStages {
		return 0
	}
	return s.h[st].Count()
}

// Write emits the full family under name, one labeled series per stage, in
// stage-enum order. Every stage is emitted even at zero observations so
// scrapers (and CI) can assert series presence.
func (s *StageHists) Write(w io.Writer, name string) {
	fmt.Fprintf(w, "# HELP %s Wall-clock duration of job lifecycle stages.\n", name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for st := Stage(0); st < NumStages; st++ {
		s.h[st].WriteSeries(w, name, fmt.Sprintf("stage=%q", st.String()))
	}
}
