package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatalf("ParseLevel(loud): want error")
	}
}

func TestNewLoggerJSONCarriesCanonicalKeys(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("job submitted", KeyJob, "job-1", KeyDigest, "abc", KeyStage, StageSubmit.String())
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]string{KeyJob: "job-1", KeyDigest: "abc", KeyStage: "submit"} {
		if rec[k] != want {
			t.Errorf("record[%q] = %v, want %q", k, rec[k], want)
		}
	}
}

func TestNewLoggerRejectsUnknownFormat(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "xml", "info"); err == nil {
		t.Fatalf("want error for xml format")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "json", "shout"); err == nil {
		t.Fatalf("want error for bad level")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic and must not be enabled at any standard level.
	lg := Nop()
	lg.Error("dropped")
	if lg.Enabled(nil, slog.LevelError) {
		t.Fatalf("nop logger should be disabled at error level")
	}
}

func TestStageNamesAndParse(t *testing.T) {
	for s := Stage(0); s < NumStages; s++ {
		got, ok := ParseStage(s.String())
		if !ok || got != s {
			t.Errorf("ParseStage(%q) = %v, %v; want %v", s.String(), got, ok, s)
		}
	}
	if _, ok := ParseStage("nope"); ok {
		t.Fatalf("ParseStage(nope): want !ok")
	}
	core := CoreStages()
	if len(core) != 5 || core[len(core)-1] != StageArtifactCommit {
		t.Fatalf("CoreStages() = %v", core)
	}
	if StageJournalFsync.Core() || !StageRunning.Core() {
		t.Fatalf("Core() misclassifies stages")
	}
}

func TestTimelineSnapshotAccounting(t *testing.T) {
	base := time.Now()
	tl := NewTimeline(base)
	tl.Record(StageSubmit, base, base.Add(2*time.Millisecond))
	tl.Record(StageQueued, base.Add(2*time.Millisecond), base.Add(10*time.Millisecond))
	tl.Record(StageRunning, base.Add(10*time.Millisecond), base.Add(110*time.Millisecond))
	tl.Record(StageJournalFsync, base.Add(1*time.Millisecond), base.Add(2*time.Millisecond))
	tl.Close(base.Add(110 * time.Millisecond))

	snap := tl.Snapshot(base.Add(5 * time.Second)) // late snapshot must use Close time
	if got, want := snap.WallSeconds, 0.110; math.Abs(got-want) > 1e-9 {
		t.Fatalf("WallSeconds = %v, want %v", got, want)
	}
	if got, want := snap.CoreSeconds, 0.110; math.Abs(got-want) > 1e-9 {
		t.Fatalf("CoreSeconds = %v, want %v (fsync must not count)", got, want)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("Spans = %d, want 4", len(snap.Spans))
	}
	st, ok := snap.StageStat("queued")
	if !ok || st.Count != 1 || math.Abs(st.Seconds-0.008) > 1e-9 || !st.Core {
		t.Fatalf("queued stat = %+v, %v", st, ok)
	}
	if _, ok := snap.StageStat("artifact-commit"); ok {
		t.Fatalf("zero-count stage must be omitted")
	}
	durs := snap.StageSpanSeconds("journal-fsync")
	if len(durs) != 1 || math.Abs(durs[0]-0.001) > 1e-9 {
		t.Fatalf("fsync spans = %v", durs)
	}
}

func TestTimelineNegativeDurationClamped(t *testing.T) {
	base := time.Now()
	tl := NewTimeline(base)
	tl.Record(StageSubmit, base.Add(time.Second), base) // end before start
	snap := tl.Snapshot(base.Add(time.Second))
	st, _ := snap.StageStat("submit")
	if st.Seconds != 0 || st.Count != 1 {
		t.Fatalf("negative span not clamped: %+v", st)
	}
}

func TestTimelineDropsSpansPastCapButKeepsTotals(t *testing.T) {
	base := time.Now()
	tl := NewTimeline(base)
	for i := 0; i < maxSpans+10; i++ {
		tl.Record(StageStoreWrite, base, base.Add(time.Millisecond))
	}
	snap := tl.Snapshot(base.Add(time.Second))
	if len(snap.Spans) != maxSpans {
		t.Fatalf("retained spans = %d, want %d", len(snap.Spans), maxSpans)
	}
	if snap.DroppedSpans != 10 {
		t.Fatalf("DroppedSpans = %d, want 10", snap.DroppedSpans)
	}
	st, _ := snap.StageStat("store-write")
	if st.Count != maxSpans+10 {
		t.Fatalf("totals must keep accumulating past the cap: count = %d", st.Count)
	}
}

func TestTimelineNilReceiverSafe(t *testing.T) {
	var tl *Timeline
	tl.Record(StageSubmit, time.Now(), time.Now())
	tl.Close(time.Now())
}

func TestWriteChromeIsValidTrace(t *testing.T) {
	base := time.Now()
	tl := NewTimeline(base)
	tl.Record(StageRunning, base, base.Add(50*time.Millisecond))
	tl.Record(StageJournalFsync, base, base.Add(time.Millisecond))
	snap := tl.Snapshot(base.Add(50 * time.Millisecond))
	snap.JobID = "job-9"

	var buf bytes.Buffer
	if err := snap.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	var xRunning, xFsync bool
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "running":
			xRunning = ev.Tid == tidLifecyle && ev.Dur > 0
		case "journal-fsync":
			xFsync = ev.Tid == tidDetail
		}
	}
	if !xRunning || !xFsync {
		t.Fatalf("missing or mis-threaded X events in %s", buf.String())
	}
	if !strings.Contains(buf.String(), "job-9") {
		t.Fatalf("process name must carry the job id")
	}
}

func TestHistBucketsAndExposition(t *testing.T) {
	h := NewHist(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	var buf bytes.Buffer
	h.WriteSeries(&buf, "x_seconds", "")
	out := buf.String()
	for _, want := range []string{
		`x_seconds_bucket{le="0.01"} 1`,
		`x_seconds_bucket{le="0.1"} 3`,
		`x_seconds_bucket{le="1"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		`x_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	buf.Reset()
	h.WriteSeries(&buf, "x_seconds", `stage="queued"`)
	if !strings.Contains(buf.String(), `x_seconds_bucket{stage="queued",le="+Inf"} 5`) ||
		!strings.Contains(buf.String(), `x_seconds_count{stage="queued"} 5`) {
		t.Fatalf("labeled exposition wrong:\n%s", buf.String())
	}
}

func TestNewHistRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic on unsorted bounds")
		}
	}()
	NewHist(1, 0.5)
}

func TestStageHistsWriteEmitsEveryStage(t *testing.T) {
	s := NewStageHists()
	s.Observe(StageRunning, 0.2)
	var buf bytes.Buffer
	s.Write(&buf, "dtlserved_stage_seconds")
	out := buf.String()
	for st := Stage(0); st < NumStages; st++ {
		want := `stage="` + st.String() + `"`
		if !strings.Contains(out, want) {
			t.Errorf("family missing series for %s", st)
		}
	}
	if !strings.Contains(out, "# TYPE dtlserved_stage_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if s.Count(StageRunning) != 1 || s.Count(StageQueued) != 0 {
		t.Fatalf("Count wrong: running=%d queued=%d", s.Count(StageRunning), s.Count(StageQueued))
	}
}

func TestTimelineRecordDoesNotAllocate(t *testing.T) {
	base := time.Now()
	tl := NewTimeline(base)
	start := base.Add(time.Millisecond)
	end := start.Add(time.Millisecond)
	n := testing.AllocsPerRun(1000, func() {
		tl.Record(StageRunning, start, end)
	})
	if n != 0 {
		t.Fatalf("Timeline.Record allocates %v per op, want 0", n)
	}
}

func TestHistObserveDoesNotAllocate(t *testing.T) {
	h := NewHist(SecondsBuckets...)
	sh := NewStageHists()
	n := testing.AllocsPerRun(1000, func() {
		h.Observe(0.42)
		sh.Observe(StageQueued, 0.001)
	})
	if n != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", n)
	}
}

// BenchmarkTimelineRecord measures the serving hot path: one span recorded
// on the job timeline plus the matching stage-histogram observation. Gated
// at 3x by scripts/bench_check.sh via BENCH_seed.json.
func BenchmarkTimelineRecord(b *testing.B) {
	tl := NewTimeline(time.Now())
	sh := NewStageHists()
	start := time.Now()
	end := start.Add(time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Record(StageRunning, start, end)
		sh.Observe(StageRunning, 0.001)
	}
}
