// Package obs is the wall-clock observability plane for the serving stack.
//
// It is deliberately separate from internal/telemetry: telemetry accounts
// *virtual* time — where simulated nanoseconds and energy went inside a run —
// while obs accounts *real* time — where the daemon's wall-clock seconds went
// while producing that run (queue wait, engine execution, journal fsync,
// artifact commit). The two meet only in the Chrome trace viewer, where a
// job's wall-clock timeline and its virtual-time trace open side by side.
//
// The package provides three primitives:
//
//   - a structured logger (log/slog) with text/json output and canonical
//     attribute keys, so every job-scoped record is machine-filterable;
//   - Timeline, a zero-alloc per-job monotonic-clock span accumulator;
//   - Hist, a lock-free fixed-bucket histogram with Prometheus exposition.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Canonical attribute keys. Every job-scoped log record emitted by the
// serving stack carries all three, so `jq 'select(.job_id=="job-7")'` over a
// JSON log stream reconstructs one job's story.
const (
	KeyJob    = "job_id"
	KeyDigest = "spec_digest"
	KeyStage  = "stage"
)

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the daemon logger. format is "text" or "json"; level is
// parsed by ParseLevel. The zero values ("", "") mean text at info.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// nopLevel sits above every real level so the nop logger's Enabled check
// rejects records before any formatting work happens.
const nopLevel = slog.Level(127)

// Nop returns a logger that discards everything. Server code holds a
// non-nil *slog.Logger unconditionally; embedders that don't care pay only
// an Enabled check per record.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: nopLevel}))
}
