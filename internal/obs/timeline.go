package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Stage identifies one kind of wall-clock span in a job's life. The first
// five stages (through StageArtifactCommit) are the *core* lifecycle chain:
// they are disjoint and, for a chaos-free job, their durations sum to the
// job's end-to-end wall clock. The remaining stages are *detail* spans that
// nest inside core stages (a journal fsync happens during submit or
// artifact-commit; store writes happen during artifact-commit) and are
// excluded from any sum-to-wall-clock accounting.
type Stage uint8

const (
	StageSubmit Stage = iota
	StageJournalAppend
	StageQueued
	StageRunning
	StageArtifactCommit
	StageJournalFsync
	StageStoreWrite
	StageChaosInject
	StageRecoveryReplay
	NumStages
)

var stageNames = [NumStages]string{
	"submit",
	"journal-append",
	"queued",
	"running",
	"artifact-commit",
	"journal-fsync",
	"store-write",
	"chaos-inject",
	"recovery-replay",
}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Core reports whether s belongs to the disjoint lifecycle chain whose
// durations sum to the job's wall clock.
func (s Stage) Core() bool { return s <= StageArtifactCommit }

// CoreStages lists the lifecycle chain in order, for callers (CI, dtlstat)
// that want to assert presence of every core stage.
func CoreStages() []Stage {
	return []Stage{StageSubmit, StageJournalAppend, StageQueued, StageRunning, StageArtifactCommit}
}

// ParseStage maps a stage name back to its enum value.
func ParseStage(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// maxSpans bounds the per-job span list. Totals and counts keep
// accumulating past the cap; only individual span records are dropped (and
// counted in DroppedSpans). 256 covers every stage a normal job produces
// with two orders of magnitude of headroom.
const maxSpans = 256

// span is one completed interval, stored as microsecond offsets from the
// timeline base so the hot path never allocates.
type span struct {
	stage   Stage
	startUs int64
	durUs   int64
}

// Timeline accumulates monotonic-clock spans for one job. Record is the hot
// path: it takes a mutex, updates two fixed arrays and appends into a
// preallocated slice — zero heap allocations, pinned by
// TestTimelineRecordDoesNotAllocate and BenchmarkTimelineRecord.
//
// All times must come from time.Now() on the same process so the monotonic
// reading is comparable; offsets are computed with time.Time.Sub which uses
// the monotonic clock when both operands carry it.
type Timeline struct {
	mu      sync.Mutex
	base    time.Time // job submit time; span offsets are relative to it
	closed  time.Time // terminal time; zero while the job is live
	totals  [NumStages]time.Duration
	counts  [NumStages]int64
	spans   []span
	dropped int64
}

// NewTimeline starts a timeline anchored at base (normally the instant the
// job was accepted).
func NewTimeline(base time.Time) *Timeline {
	return &Timeline{base: base, spans: make([]span, 0, maxSpans)}
}

// Record accounts one completed span. Safe for concurrent use; zero-alloc.
func (t *Timeline) Record(s Stage, start, end time.Time) {
	if t == nil || s >= NumStages {
		return
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.totals[s] += d
	t.counts[s]++
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, span{stage: s, startUs: start.Sub(t.base).Microseconds(), durUs: d.Microseconds()})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Close marks the timeline terminal. Snapshots taken after Close report the
// wall clock frozen at now instead of continuing to grow.
func (t *Timeline) Close(now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.closed.IsZero() {
		t.closed = now
	}
	t.mu.Unlock()
}

// StageStat is the aggregate view of one stage inside a TimelineSnapshot.
type StageStat struct {
	Stage   string  `json:"stage"`
	Core    bool    `json:"core,omitempty"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// SpanInfo is one recorded span: start offset from the job's submit instant
// and duration, both in microseconds.
type SpanInfo struct {
	Stage   string `json:"stage"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// TimelineSnapshot is the JSON view of a Timeline: embedded in job status,
// written as the timeline.json artifact, and served by the /timeline
// endpoint. WallSeconds is base→Close (or base→now while live);
// CoreSeconds is the sum of core-stage totals and should match WallSeconds
// within measurement slack for a chaos-free job.
type TimelineSnapshot struct {
	JobID        string      `json:"job_id,omitempty"`
	Start        time.Time   `json:"start"`
	WallSeconds  float64     `json:"wall_seconds"`
	CoreSeconds  float64     `json:"core_seconds"`
	Stages       []StageStat `json:"stages"`
	Spans        []SpanInfo  `json:"spans,omitempty"`
	DroppedSpans int64       `json:"dropped_spans,omitempty"`
}

// Snapshot renders the timeline's current state. Stages with zero
// observations are omitted.
func (t *Timeline) Snapshot(now time.Time) TimelineSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := now
	if !t.closed.IsZero() {
		end = t.closed
	}
	snap := TimelineSnapshot{
		Start:        t.base,
		WallSeconds:  end.Sub(t.base).Seconds(),
		DroppedSpans: t.dropped,
	}
	for s := Stage(0); s < NumStages; s++ {
		if t.counts[s] == 0 {
			continue
		}
		snap.Stages = append(snap.Stages, StageStat{
			Stage:   s.String(),
			Core:    s.Core(),
			Count:   t.counts[s],
			Seconds: t.totals[s].Seconds(),
		})
		if s.Core() {
			snap.CoreSeconds += t.totals[s].Seconds()
		}
	}
	snap.Spans = make([]SpanInfo, len(t.spans))
	for i, sp := range t.spans {
		snap.Spans[i] = SpanInfo{Stage: sp.stage.String(), StartUs: sp.startUs, DurUs: sp.durUs}
	}
	return snap
}

// StageStat finds the aggregate for a stage by name.
func (s TimelineSnapshot) StageStat(name string) (StageStat, bool) {
	for _, st := range s.Stages {
		if st.Stage == name {
			return st, true
		}
	}
	return StageStat{}, false
}

// StageSpanSeconds returns the individual span durations (seconds) recorded
// for a stage, for percentile checks (dtlstat timeline -check).
func (s TimelineSnapshot) StageSpanSeconds(name string) []float64 {
	var out []float64
	for _, sp := range s.Spans {
		if sp.Stage == name {
			out = append(out, float64(sp.DurUs)/1e6)
		}
	}
	return out
}

// Chrome-trace thread ids: core lifecycle spans on one row, detail I/O
// spans on another, so the waterfall reads top-to-bottom like the job ran.
const (
	chromePid   = 1
	tidLifecyle = 0
	tidDetail   = 1
)

// chromeEvent mirrors the trace_event schema used by telemetry's
// WriteChromeTrace (ts/dur in microseconds) so wall-clock and virtual-time
// traces open in the same viewer.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the snapshot as Chrome trace_event JSON: one complete
// ("X") event per span, lifecycle stages on tid 0 and detail stages on
// tid 1.
func (s TimelineSnapshot) WriteChrome(w io.Writer) error {
	name := s.JobID
	if name == "" {
		name = "job"
	}
	evs := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
			Args: map[string]any{"name": "dtlserved " + name}},
		{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tidLifecyle,
			Args: map[string]any{"name": "lifecycle"}},
		{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tidDetail,
			Args: map[string]any{"name": "io detail"}},
	}
	for _, sp := range s.Spans {
		st, ok := ParseStage(sp.Stage)
		tid := tidDetail
		cat := "detail"
		if ok && st.Core() {
			tid = tidLifecyle
			cat = "lifecycle"
		}
		evs = append(evs, chromeEvent{
			Name: sp.Stage, Cat: cat, Ph: "X",
			Ts: float64(sp.StartUs), Dur: float64(sp.DurUs),
			Pid: chromePid, Tid: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
