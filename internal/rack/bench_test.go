package rack

import (
	"testing"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/sim"
)

// BenchmarkFabricAccessPath measures the cross-expander foreground hit: an
// SMC-resident access on a non-affinity expander plus the fabric hop/transfer
// pricing and counter updates. This is the hot path every packed VM pays per
// access, so like the core SMC-hit path it must stay allocation free.
func BenchmarkFabricAccessPath(b *testing.B) {
	cfg := testConfig()
	cfg.Fabric.Policy = PolicyPack
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	a := NewAllocator(f)
	// vm 1's affinity is x1; the pack policy lands it on x0, so every
	// access below crosses the fabric.
	x, err := a.Place(1, 0, 16*dram.MiB, 0)
	if err != nil || x != 0 {
		b.Fatalf("Place = x%d, %v", x, err)
	}
	addrs, err := f.Expander(0).DTL.VMAddresses(1)
	if err != nil {
		b.Fatal(err)
	}
	base := addrs[0]
	now := sim.Time(0)
	if _, _, err := f.Access(core.VMID(1), 0, base, false, now); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 10
		if _, _, err := f.Access(core.VMID(1), 0, base, false, now); err != nil {
			b.Fatal(err)
		}
	}
}
