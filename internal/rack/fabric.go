// Package rack composes N independent core.DTL expanders into one
// rack-scale memory pool behind a CXL fabric, the DRackSim-style topology
// the ROADMAP's rack-scale item names: every expander keeps its own
// translation layer, power engine, and health plane, while a shared fabric
// model prices the switch hops and link bandwidth that cross-expander
// traffic pays, and a global allocator (allocator.go) turns power
// management into a placement problem.
//
// # Topology and cost model
//
// The rack is a star: every compute host owns a root port attached to one
// expander (its affinity expander, vm % N for VM-driven placement), and a
// single rack switch connects the expanders. An access that stays on the
// affinity expander travels the direct-attached path already priced by the
// core CXL latency model and pays nothing extra here. An access to any
// other expander crosses the switch — one hop out, one hop back — and pays
//
//	fabricLat = 2×HopLatency + transfer(64B) [×2 when the link is busy]
//
// where transfer(b) = b/BandwidthGBs nanoseconds (1 GB/s ≈ 1 B/ns). The
// doubling is the bandwidth share: while an inter-expander copy holds the
// link, foreground transfers run at half rate. Inter-expander segment
// copies serialize on the same link — a copy starts when the link frees up
// and holds it for transfer(bytes) — which is how concurrent copies share
// bandwidth deterministically.
//
// Every fabric nanosecond and every copy's energy is charged into the
// telemetry ledger: CauseFabricStall for foreground cross-expander
// latency (time only; link energy is outside the DRAM energy proxy) and
// CauseFabricCopy for migration transfers (ActivePowerPerGBs × bytes, the
// same slope intra-expander migration energy uses), so rack runs keep the
// ledger conservation identities.
//
// # Determinism
//
// The fabric is serial: expanders are visited in index order everywhere
// (ticks, probes, rollups), fault injectors for all expanders schedule on
// the one shared sim.Engine (total event order), and the link model is a
// single busy-until clock. Identical configs therefore produce
// byte-identical artifacts, the same invariant the single-expander
// experiments enforce. The composition is shard-per-expander ready:
// expanders never share mutable state — only the ledger, the link clock,
// and the allocator touch cross-expander state, all of it owned by the
// serial driver — so a sharded engine could run one lane per expander and
// meet at the same barriers the channel shards use today.
package rack

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/fault"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// Policy selects how the allocator places VMs across expanders.
type Policy int

const (
	// PolicySpread is first-fit spread: a VM lands on its affinity expander
	// (its host's direct-attached port, vm % N) when it fits, else on the
	// expander with the most free capacity. Load and heat spread across the
	// rack; almost no traffic crosses the fabric.
	PolicySpread Policy = iota
	// PolicyPack is power-aware packing: a VM lands on the most-utilized
	// expander that still fits it, regardless of affinity, and departures
	// trigger consolidation migrations. Whole expanders stay cold and their
	// ranks power down; the price is fabric latency on every access whose
	// VM was packed away from its affinity expander.
	PolicyPack
)

// String renders the policy the way the -fabric grammar spells it.
func (p Policy) String() string {
	switch p {
	case PolicySpread:
		return "spread"
	case PolicyPack:
		return "pack"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a grammar word back to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "spread":
		return PolicySpread, nil
	case "pack":
		return PolicyPack, nil
	default:
		return 0, fmt.Errorf("rack: unknown placement policy %q (want spread or pack)", s)
	}
}

// FabricConfig is the fabric cost model plus the placement policy, the
// parsed form of the dtlsim/dtlserved -fabric grammar.
type FabricConfig struct {
	// HopLatency is the per-switch-hop base latency; a remote access pays
	// two hops (request out, response back).
	HopLatency sim.Time
	// BandwidthGBs is the shared fabric link bandwidth in GB/s.
	BandwidthGBs float64
	// Policy is the allocator placement policy.
	Policy Policy
}

// DefaultFabricConfig models a CXL 2.0 switch: 150 ns per hop, one x8 link
// worth of bandwidth, spread placement.
func DefaultFabricConfig() FabricConfig {
	return FabricConfig{HopLatency: 150 * sim.Nanosecond, BandwidthGBs: 32, Policy: PolicySpread}
}

// ParseFabric parses the -fabric grammar: semicolon-separated key=value
// pairs over keys hop (duration), gbs (float), and policy (spread|pack).
// Unset keys keep their DefaultFabricConfig values; unknown keys fail
// loudly, matching the -policy grammar convention. An empty string yields
// the default config.
//
//	hop=150ns;gbs=32;policy=pack
func ParseFabric(s string) (FabricConfig, error) {
	cfg := DefaultFabricConfig()
	for _, raw := range strings.Split(s, ";") {
		part := strings.TrimSpace(raw)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return FabricConfig{}, fmt.Errorf("rack: bad fabric term %q (want key=value)", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "hop":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return FabricConfig{}, fmt.Errorf("rack: bad hop latency %q (want a non-negative duration)", val)
			}
			cfg.HopLatency = sim.Time(d.Nanoseconds())
		case "gbs":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return FabricConfig{}, fmt.Errorf("rack: bad bandwidth %q (want a positive GB/s float)", val)
			}
			cfg.BandwidthGBs = f
		case "policy":
			p, err := ParsePolicy(val)
			if err != nil {
				return FabricConfig{}, err
			}
			cfg.Policy = p
		default:
			return FabricConfig{}, fmt.Errorf("rack: unknown fabric key %q in %q (known: hop, gbs, policy)", key, part)
		}
	}
	return cfg, nil
}

// MustParseFabric is ParseFabric that panics on error.
func MustParseFabric(s string) FabricConfig {
	cfg, err := ParseFabric(s)
	if err != nil {
		panic(err)
	}
	return cfg
}

// MaxExpanders bounds the rack size: beyond this a single switch tier
// stops being a credible topology.
const MaxExpanders = 64

// Config sizes a rack.
type Config struct {
	// Expanders is the number of identical expanders behind the fabric.
	Expanders int
	// Expander is the per-expander DTL configuration.
	Expander core.Config
	// Fabric is the fabric cost model and placement policy.
	Fabric FabricConfig
}

// Expander is one pooled-memory device and its translation layer.
type Expander struct {
	ID  int
	DTL *core.DTL
}

// Fabric composes N expanders behind the shared switch: it owns the
// deterministic engine fault processes schedule on, the link clock, the
// rack-level telemetry registry, and (when attribution is on) the rack
// ledger and tracer that merge every expander's local numbering into one
// rack-global rank space.
type Fabric struct {
	cfg  Config
	exps []*Expander
	eng  *sim.Engine
	reg  *telemetry.Registry

	tracer *telemetry.Tracer
	ledger *telemetry.Ledger

	linkBusyUntil sim.Time
	slope         float64 // copy-energy slope (ActivePowerPerGBs)

	crossAccesses *telemetry.Counter
	stallNs       *telemetry.Counter
	copies        *telemetry.Counter
	bytesCopied   *telemetry.Counter
	copyNs        *telemetry.Counter
}

// New builds a rack of cfg.Expanders identical expanders. Each expander
// gets its own core.DTL (and device); the fabric wires rack-level rollup
// gauges over all of them.
func New(cfg Config) (*Fabric, error) {
	if cfg.Expanders < 1 || cfg.Expanders > MaxExpanders {
		return nil, fmt.Errorf("rack: expander count %d outside [1, %d]", cfg.Expanders, MaxExpanders)
	}
	if cfg.Fabric.HopLatency < 0 {
		return nil, fmt.Errorf("rack: negative hop latency %v", cfg.Fabric.HopLatency)
	}
	if cfg.Fabric.BandwidthGBs <= 0 {
		return nil, fmt.Errorf("rack: fabric bandwidth %v GB/s must be positive", cfg.Fabric.BandwidthGBs)
	}
	f := &Fabric{cfg: cfg, eng: sim.NewEngine(), reg: telemetry.NewRegistry()}
	for x := 0; x < cfg.Expanders; x++ {
		d, err := core.New(cfg.Expander)
		if err != nil {
			return nil, fmt.Errorf("rack: building expander %d: %w", x, err)
		}
		// Fresh expanders settle straight to their power floor instead of
		// idling fully awake until a first deallocation. The floor depends
		// on the policy: spread keeps the §3.3 per-channel active floor
		// (every expander serves its affinity VMs soon), while pack parks
		// empty expanders entirely — the cold pool is the pack policy's
		// whole win, and core's floor is a per-device invariant the rack
		// allocator deliberately lifts (Allocator re-parks drained
		// expanders the same way).
		if cfg.Fabric.Policy == PolicyPack {
			if err := d.Park(0); err != nil {
				return nil, fmt.Errorf("rack: parking expander %d: %w", x, err)
			}
		} else {
			d.PowerDownIdle(0)
		}
		f.exps = append(f.exps, &Expander{ID: x, DTL: d})
	}
	f.slope = f.exps[0].DTL.Device().Power().ActivePowerPerGBs
	f.registerGauges()
	return f, nil
}

// registerGauges publishes the rack rollups: per-expander and aggregate
// power/energy/residency views, plus fabric traffic counters. Names follow
// the core.* convention with an x<N> segment for per-expander series.
func (f *Fabric) registerGauges() {
	actives := func(d *core.DTL) float64 {
		g := d.Config().Geometry
		n := 0
		for ch := 0; ch < g.Channels; ch++ {
			for rk := 0; rk < g.RanksPerChannel; rk++ {
				if d.Device().State(dram.RankID{Channel: ch, Rank: rk}) == dram.Standby {
					n++
				}
			}
		}
		return float64(n)
	}
	for _, e := range f.exps {
		d := e.DTL
		prefix := fmt.Sprintf("rack.x%d.", e.ID)
		f.reg.GaugeFunc(prefix+"active_ranks", func() float64 { return actives(d) })
		f.reg.GaugeFunc(prefix+"allocated_bytes", func() float64 { return float64(d.AllocatedBytes()) })
		f.reg.GaugeFunc(prefix+"live_vms", func() float64 { return float64(d.LiveVMs()) })
		f.reg.GaugeFunc(prefix+"bg_power", func() float64 { return d.Device().BackgroundPowerNow() })
	}
	f.reg.GaugeFunc("rack.active_ranks", func() float64 {
		var n float64
		for _, e := range f.exps {
			n += actives(e.DTL)
		}
		return n
	})
	f.reg.GaugeFunc("rack.allocated_bytes", func() float64 {
		var n float64
		for _, e := range f.exps {
			n += float64(e.DTL.AllocatedBytes())
		}
		return n
	})
	f.reg.GaugeFunc("rack.live_vms", func() float64 {
		var n float64
		for _, e := range f.exps {
			n += float64(e.DTL.LiveVMs())
		}
		return n
	})
	f.reg.GaugeFunc("rack.bg_power", func() float64 {
		var p float64
		for _, e := range f.exps {
			p += e.DTL.Device().BackgroundPowerNow()
		}
		return p
	})
	f.crossAccesses = f.reg.Counter("rack.fabric.cross_accesses")
	f.stallNs = f.reg.Counter("rack.fabric.stall_ns")
	f.copies = f.reg.Counter("rack.fabric.copies")
	f.bytesCopied = f.reg.Counter("rack.fabric.bytes_copied")
	f.copyNs = f.reg.Counter("rack.fabric.copy_ns")
}

// Config returns the rack configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Expanders returns the expanders in index order.
func (f *Fabric) Expanders() []*Expander { return f.exps }

// Expander returns expander x.
func (f *Fabric) Expander(x int) *Expander { return f.exps[x] }

// Engine returns the rack's shared deterministic engine (fault processes
// for every expander schedule here, giving one total event order).
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Registry returns the rack-level rollup registry.
func (f *Fabric) Registry() *telemetry.Registry { return f.reg }

// Affinity reports a VM's direct-attached expander: the one its host's
// root port reaches without crossing the rack switch.
func (f *Fabric) Affinity(vm core.VMID) int {
	x := int(vm) % f.cfg.Expanders
	if x < 0 {
		x += f.cfg.Expanders
	}
	return x
}

// TotalRanks reports the rack-global rank count.
func (f *Fabric) TotalRanks() int {
	return f.cfg.Expanders * f.cfg.Expander.Geometry.TotalRanks()
}

// rackRank maps an expander-local global rank to the rack-global rank
// space: the rack is rendered as one super-device whose channel list is
// the concatenation of every expander's channels, so rank*totalChannels +
// (expander*channels + channel) keeps the tracer's "rank-major" numbering
// and dtlstat's chN/rkM labels meaningful (channels [4x, 4x+4) belong to
// expander x on a 4-channel expander).
func (f *Fabric) rackRank(x, localGlobalRank int) int {
	chPer := f.cfg.Expander.Geometry.Channels
	ch, rk := localGlobalRank%chPer, localGlobalRank/chPer
	return rk*(f.cfg.Expanders*chPer) + x*chPer + ch
}

// transferNs prices moving bytes over the link: bytes / BandwidthGBs
// nanoseconds (1 GB/s ≈ 1 B/ns).
func (f *Fabric) transferNs(bytes int64) sim.Time {
	return sim.Time(float64(bytes) / f.cfg.Fabric.BandwidthGBs)
}

// accessTransferBytes is the fabric payload of one foreground access (a
// cache line).
const accessTransferBytes = 64

// Access services one foreground access for vm on expander x at virtual
// time now, adding the fabric cost when x is not the VM's affinity
// expander: two switch hops plus the cache-line transfer, doubled while an
// inter-expander copy holds the link (half-rate bandwidth share). The
// fabric latency is charged to (vm, rack, fabric-stall) in the rack ledger
// — time only, no energy — and folded into the returned total.
func (f *Fabric) Access(vm core.VMID, x int, hpa dram.HPA, write bool, now sim.Time) (core.AccessResult, sim.Time, error) {
	res, err := f.exps[x].DTL.Access(hpa, write, now)
	if err != nil {
		return res, 0, err
	}
	if x == f.Affinity(vm) {
		return res, 0, nil
	}
	flat := 2*f.cfg.Fabric.HopLatency + f.transferNs(accessTransferBytes)
	if f.linkBusyUntil > now {
		flat += f.transferNs(accessTransferBytes)
	}
	f.crossAccesses.Add(1)
	f.stallNs.Add(int64(flat))
	if f.ledger != nil {
		start := now + res.TotalLat()
		f.ledger.End(f.ledger.Begin(int64(vm), -1, telemetry.CauseFabricStall, start), start+flat, 0)
		f.tracer.AttrSpan(int64(vm), -1, telemetry.CauseFabricStall.String(), start, start+flat, 0)
	}
	return res, flat, nil
}

// copyOver charges one inter-expander transfer of bytes for vm starting at
// now: the copy queues behind whatever already holds the link (concurrent
// copies serialize — that is the deterministic bandwidth share), holds it
// for transfer(bytes), and charges the whole wait+transfer window to
// (vm, rack, fabric-copy) with ActivePowerPerGBs×bytes of energy. Returns
// when the copy completes.
func (f *Fabric) copyOver(vm core.VMID, src, dst int, bytes int64, now sim.Time) sim.Time {
	start := now
	if f.linkBusyUntil > start {
		start = f.linkBusyUntil
	}
	done := start + f.transferNs(bytes)
	f.linkBusyUntil = done
	f.copies.Add(1)
	f.bytesCopied.Add(bytes)
	f.copyNs.Add(int64(done - now))
	energy := f.slope * float64(bytes)
	if f.ledger != nil {
		f.ledger.End(f.ledger.Begin(int64(vm), -1, telemetry.CauseFabricCopy, now), done, energy)
		f.tracer.AttrSpan(int64(vm), -1, telemetry.CauseFabricCopy.String(), now, done, energy)
	}
	f.tracer.Migration(-1, int64(src), int64(dst), "fabric", now, done)
	return done
}

// LinkBusyUntil reports when the fabric link frees up (its bandwidth-share
// clock); before that instant cross-expander accesses run at half rate.
func (f *Fabric) LinkBusyUntil() sim.Time { return f.linkBusyUntil }

// Tick advances every expander's background machinery (migrations,
// deferred retirements) in index order.
func (f *Fabric) Tick(now sim.Time) {
	for _, e := range f.exps {
		e.DTL.Tick(now)
	}
}

// ProbeDegraded issues the health-plane degraded-rank probes on every
// expander in index order, summing probe counts and latency.
func (f *Fabric) ProbeDegraded(now sim.Time) (int, sim.Time) {
	var n int
	var lat sim.Time
	for _, e := range f.exps {
		pn, plat := e.DTL.ProbeDegraded(now)
		n += pn
		lat += plat
	}
	return n, lat
}

// CheckInvariants verifies every expander's structural invariants.
func (f *Fabric) CheckInvariants() error {
	for _, e := range f.exps {
		if err := e.DTL.CheckInvariants(); err != nil {
			return fmt.Errorf("rack: expander %d: %w", e.ID, err)
		}
	}
	return nil
}

// AccountUpTo settles every expander's background-energy accounting.
func (f *Fabric) AccountUpTo(now sim.Time) {
	for _, e := range f.exps {
		e.DTL.Device().AccountUpTo(now)
	}
}

// BackgroundEnergy sums the per-state background energy over the rack.
func (f *Fabric) BackgroundEnergy() (standby, selfRefresh, mpsm float64) {
	for _, e := range f.exps {
		st, sr, mp := e.DTL.Device().BackgroundEnergy()
		standby += st
		selfRefresh += sr
		mpsm += mp
	}
	return standby, selfRefresh, mpsm
}

// BytesMigrated sums intra-expander migration traffic over the rack
// (inter-expander copies are counted by the fabric counters instead).
func (f *Fabric) BytesMigrated() int64 {
	var n int64
	for _, e := range f.exps {
		n += e.DTL.Stats().BytesMigrated
	}
	return n
}

// StartFaults validates spec against the rack, splits it per expander, and
// arms one injector per targeted expander on the shared engine — the rack
// front end for the fault grammar's xN/ scope. Unscoped clauses land on
// expander 0 (Spec.ForExpander), so single-expander specs keep their
// meaning. Injectors are returned in expander order for stats collection.
func (f *Fabric) StartFaults(spec fault.Spec, horizon sim.Time) ([]*fault.Injector, error) {
	if mx := spec.MaxExpander(); mx >= f.cfg.Expanders {
		return nil, fmt.Errorf("rack: fault spec targets expander x%d but the rack has %d expanders", mx, f.cfg.Expanders)
	}
	var injs []*fault.Injector
	for _, e := range f.exps {
		sub := spec.ForExpander(e.ID)
		if len(sub.Clauses) == 0 {
			continue
		}
		inj, err := fault.NewInjector(sub, e.DTL.Device(), f.eng)
		if err != nil {
			return nil, fmt.Errorf("rack: expander %d: %w", e.ID, err)
		}
		inj.Start(horizon)
		injs = append(injs, inj)
	}
	return injs, nil
}

// StartTrace builds a rack-global tracer (one power timeline per rack
// rank, expander channels concatenated), seeds current non-standby states,
// attaches it, and returns it.
func (f *Fabric) StartTrace(capacity int, now sim.Time) *telemetry.Tracer {
	g := f.cfg.Expander.Geometry
	tr := telemetry.NewTracer(telemetry.TracerConfig{
		Ranks:    f.TotalRanks(),
		Channels: f.cfg.Expanders * g.Channels,
		StateNames: []string{
			dram.Standby.String(), dram.SelfRefresh.String(), dram.MPSM.String(),
		},
		InitialState: int(dram.Standby),
		Capacity:     capacity,
		Start:        now,
	})
	for _, e := range f.exps {
		for ch := 0; ch < g.Channels; ch++ {
			for rk := 0; rk < g.RanksPerChannel; rk++ {
				if st := e.DTL.Device().State(dram.RankID{Channel: ch, Rank: rk}); st != dram.Standby {
					tr.PowerTransition(f.rackRank(e.ID, rk*g.Channels+ch), int(st), now)
				}
			}
		}
	}
	f.AttachTracer(tr)
	return tr
}

// AttachTracer wires every expander's power-transition hook into tr with
// rack-global rank numbering (nil detaches). The expanders' own DTL
// tracers stay detached — their internal events carry expander-local rank
// ids that would collide in a shared trace; the rack trace carries power
// timelines, fabric events, and the final ledger dump instead.
func (f *Fabric) AttachTracer(tr *telemetry.Tracer) {
	f.tracer = tr
	for _, e := range f.exps {
		if tr == nil {
			e.DTL.Device().OnTransition(nil)
			continue
		}
		x := e.ID
		chPer := f.cfg.Expander.Geometry.Channels
		e.DTL.Device().OnTransition(func(id dram.RankID, from, to dram.PowerState, at, ready sim.Time) {
			tr.PowerTransition(f.rackRank(x, id.Rank*chPer+id.Channel), int(to), at)
		})
	}
}

// Tracer reports the attached rack tracer (nil when tracing is off).
func (f *Fabric) Tracer() *telemetry.Tracer { return f.tracer }

// StartLedger builds the rack attribution ledger (rack-global ranks),
// attaches a private per-expander ledger to every DTL (expander charges
// use local rank ids; FinishAttribution folds them into rack numbering),
// and returns the rack ledger.
func (f *Fabric) StartLedger() *telemetry.Ledger {
	f.ledger = telemetry.NewLedger(telemetry.LedgerConfig{Ranks: f.TotalRanks()})
	for _, e := range f.exps {
		e.DTL.StartLedger()
	}
	return f.ledger
}

// AttachLedger installs l as the rack ledger; nil detaches rack and
// per-expander attribution alike.
func (f *Fabric) AttachLedger(l *telemetry.Ledger) {
	f.ledger = l
	if l == nil {
		for _, e := range f.exps {
			e.DTL.AttachLedger(nil)
		}
	}
}

// Ledger reports the rack ledger (nil when attribution is off).
func (f *Fabric) Ledger() *telemetry.Ledger { return f.ledger }

// FinishAttribution completes the rack bill after tr.Finish: the rack
// tracer's power spans become background residency energy, every
// expander's private ledger folds into led with expander-local ranks
// remapped to rack-global ones (rank -1 charges stay unscoped), and the
// merged cells are dumped into the trace. The fold visits expanders and
// cells in canonical order, so identical runs fold to identical bytes.
func (f *Fabric) FinishAttribution(tr *telemetry.Tracer, led *telemetry.Ledger, horizon sim.Time) {
	led.ChargeResidency(tr, nil)
	g := f.cfg.Expander.Geometry
	for _, e := range f.exps {
		sub := e.DTL.Ledger()
		if sub == nil {
			continue
		}
		for _, ent := range sub.Snapshot().Entries {
			cause, ok := telemetry.ParseCause(ent.Cause)
			if !ok {
				panic(fmt.Sprintf("rack: expander %d ledger has unknown cause %q", e.ID, ent.Cause))
			}
			rank := -1
			if ent.Rank >= 0 {
				if ent.Rank >= g.TotalRanks() {
					panic(fmt.Sprintf("rack: expander %d ledger rank %d outside geometry", e.ID, ent.Rank))
				}
				rank = f.rackRank(e.ID, ent.Rank)
			}
			led.Charge(ent.VM, rank, cause, ent.LatNs, ent.Energy)
		}
	}
	led.EmitTo(tr, horizon)
}
