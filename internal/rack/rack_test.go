package rack

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/fault"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// testGeometry is the scaled-down expander geometry the core tests use:
// 4 channels x 4 ranks x 64 MiB ranks (1 GiB per expander).
func testGeometry() dram.Geometry {
	return dram.Geometry{
		Channels:        4,
		RanksPerChannel: 4,
		BanksPerRank:    16,
		SegmentBytes:    2 * dram.MiB,
		RankBytes:       64 * dram.MiB,
	}
}

func testConfig() Config {
	ecfg := core.DefaultConfig(testGeometry())
	ecfg.AUBytes = 16 * dram.MiB
	ecfg.MaxHosts = 4
	return Config{Expanders: 2, Expander: ecfg, Fabric: DefaultFabricConfig()}
}

func newTestFabric(t testing.TB, mut func(*Config)) *Fabric {
	t.Helper()
	cfg := testConfig()
	if mut != nil {
		mut(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseFabricDefaults(t *testing.T) {
	got, err := ParseFabric("")
	if err != nil {
		t.Fatal(err)
	}
	if got != DefaultFabricConfig() {
		t.Fatalf("empty grammar = %+v, want defaults %+v", got, DefaultFabricConfig())
	}
}

func TestParseFabricGrammar(t *testing.T) {
	got, err := ParseFabric("hop=300ns; gbs=8 ;policy=pack")
	if err != nil {
		t.Fatal(err)
	}
	want := FabricConfig{HopLatency: 300 * sim.Nanosecond, BandwidthGBs: 8, Policy: PolicyPack}
	if got != want {
		t.Fatalf("parsed %+v, want %+v", got, want)
	}
	if want.Policy.String() != "pack" || PolicySpread.String() != "spread" {
		t.Fatalf("policy strings: %q %q", want.Policy, PolicySpread)
	}
}

func TestParseFabricErrors(t *testing.T) {
	for _, bad := range []string{
		"hop",              // no '='
		"hop=-5ns",         // negative duration
		"hop=fast",         // not a duration
		"gbs=0",            // zero bandwidth
		"gbs=-3",           // negative bandwidth
		"gbs=wide",         // not a float
		"policy=firstfit",  // unknown policy
		"latency=150ns",    // unknown key
		"hop=1us;gbs=zero", // later term bad
	} {
		if _, err := ParseFabric(bad); err == nil {
			t.Errorf("ParseFabric(%q) accepted, want error", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.Expanders = 0 },
		func(c *Config) { c.Expanders = MaxExpanders + 1 },
		func(c *Config) { c.Fabric.HopLatency = -1 },
		func(c *Config) { c.Fabric.BandwidthGBs = 0 },
	} {
		cfg := testConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted invalid config %+v", cfg)
		}
	}
}

func TestAffinityAndRackRank(t *testing.T) {
	f := newTestFabric(t, nil)
	if got := f.Affinity(3); got != 1 {
		t.Fatalf("Affinity(3) = %d, want 1", got)
	}
	if got := f.Affinity(-3); got < 0 || got >= 2 {
		t.Fatalf("Affinity(-3) = %d outside [0,2)", got)
	}
	// Expander 1, local ch1/rk2: localGR = rk*channels + ch = 9. Rack space
	// concatenates channels, so rackRank = rk*(2*4) + 1*4 + ch = 21.
	if got := f.rackRank(1, 9); got != 21 {
		t.Fatalf("rackRank(1, 9) = %d, want 21", got)
	}
	if got := f.TotalRanks(); got != 32 {
		t.Fatalf("TotalRanks = %d, want 32", got)
	}
}

// New expanders must settle to their power floor immediately, not idle fully
// awake: the pack policy's cold pool only saves energy if untouched
// expanders power down without waiting for a first deallocation.
func TestNewExpandersStartAtPowerFloor(t *testing.T) {
	f := newTestFabric(t, nil)
	for _, e := range f.Expanders() {
		if got := e.DTL.ActiveRanksPerChannel(); got != 1 {
			t.Fatalf("expander %d has %d active ranks/channel at build, want 1 (power floor)", e.ID, got)
		}
	}
}

func TestSpreadPlacesOnAffinityExpander(t *testing.T) {
	f := newTestFabric(t, nil)
	a := NewAllocator(f)
	for vm := core.VMID(0); vm < 4; vm++ {
		x, err := a.Place(vm, 0, 16*dram.MiB, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Affinity(vm); x != want {
			t.Fatalf("spread placed vm %d on x%d, want affinity x%d", vm, x, want)
		}
	}
	if st := a.Stats(); st.Placed != 4 || st.Spilled != 0 || st.Shed != 0 {
		t.Fatalf("stats = %+v, want 4 placed, 0 spilled/shed", st)
	}
}

func TestPackPlacesOnDensestExpander(t *testing.T) {
	f := newTestFabric(t, func(c *Config) { c.Fabric.Policy = PolicyPack })
	a := NewAllocator(f)
	// All expanders empty: ties break to the lowest id, and every later VM
	// packs onto the now-densest expander 0 regardless of affinity.
	for vm := core.VMID(0); vm < 4; vm++ {
		x, err := a.Place(vm, 0, 16*dram.MiB, 0)
		if err != nil {
			t.Fatal(err)
		}
		if x != 0 {
			t.Fatalf("pack placed vm %d on x%d, want x0", vm, x)
		}
	}
	if got := f.Expander(1).DTL.AllocatedBytes(); got != 0 {
		t.Fatalf("pack leaked %d bytes onto expander 1", got)
	}
}

func TestPlaceSpillsAndSheds(t *testing.T) {
	f := newTestFabric(t, nil)
	a := NewAllocator(f)
	capBytes := testGeometry().TotalBytes()
	// Fill vm 0's affinity expander (x0) completely, then a second VM with
	// affinity x0 must spill to x1, and a third rack-sized VM is shed.
	if x, err := a.Place(0, 0, capBytes, 0); err != nil || x != 0 {
		t.Fatalf("Place(vm0) = x%d, %v", x, err)
	}
	x, err := a.Place(2, 1, capBytes, 0)
	if err != nil || x != 1 {
		t.Fatalf("Place(vm2) = x%d, %v; want spill to x1", x, err)
	}
	if _, err := a.Place(4, 2, 16*dram.MiB, 0); !errors.Is(err, core.ErrOutOfCapacity) {
		t.Fatalf("Place on a full rack = %v, want ErrOutOfCapacity", err)
	}
	st := a.Stats()
	if st.Placed != 2 || st.Spilled != 1 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 2 placed, 1 spilled, 1 shed", st)
	}
}

func TestCrossExpanderAccessChargesFabricStall(t *testing.T) {
	f := newTestFabric(t, func(c *Config) { c.Fabric.Policy = PolicyPack })
	led := f.StartLedger()
	a := NewAllocator(f)
	// vm 1's affinity is x1, but the pack policy lands it on x0.
	x, err := a.Place(1, 0, 16*dram.MiB, 0)
	if err != nil || x != 0 {
		t.Fatalf("Place = x%d, %v", x, err)
	}
	addrs, err := f.Expander(0).DTL.VMAddresses(1)
	if err != nil {
		t.Fatal(err)
	}

	res, flat, err := f.Access(1, 0, addrs[0], false, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wantFlat := 2*f.cfg.Fabric.HopLatency + f.transferNs(accessTransferBytes)
	if flat != wantFlat {
		t.Fatalf("cross-expander fabric latency = %v, want %v", flat, wantFlat)
	}
	if res.TotalLat() <= 0 {
		t.Fatalf("access result has no device latency: %+v", res)
	}
	totals := led.CauseTotals()
	if got := totals[telemetry.CauseFabricStall]; got.LatNs != int64(wantFlat) || got.Energy != 0 {
		t.Fatalf("fabric-stall cell = %+v, want {LatNs: %d, Energy: 0}", got, wantFlat)
	}
	if got := f.Registry().Counter("rack.fabric.cross_accesses").Value(); got != 1 {
		t.Fatalf("cross_accesses = %d, want 1", got)
	}

	// An access from the VM's affinity expander pays nothing.
	f2 := newTestFabric(t, nil)
	a2 := NewAllocator(f2)
	if _, err := a2.Place(1, 0, 16*dram.MiB, 0); err != nil {
		t.Fatal(err)
	}
	addrs2, err := f2.Expander(1).DTL.VMAddresses(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, flat, err := f2.Access(1, 1, addrs2[0], false, 1000); err != nil || flat != 0 {
		t.Fatalf("affine access fabric latency = %v, %v; want 0", flat, err)
	}
}

func TestAccessPaysBandwidthShareWhileLinkBusy(t *testing.T) {
	f := newTestFabric(t, func(c *Config) { c.Fabric.Policy = PolicyPack })
	a := NewAllocator(f)
	if _, err := a.Place(1, 0, 16*dram.MiB, 0); err != nil {
		t.Fatal(err)
	}
	addrs, err := f.Expander(0).DTL.VMAddresses(1)
	if err != nil {
		t.Fatal(err)
	}
	done := f.copyOver(1, 0, 1, 16*dram.MiB, 0)
	if done != f.transferNs(16*dram.MiB) {
		t.Fatalf("copy completes at %v, want %v", done, f.transferNs(16*dram.MiB))
	}
	_, busyFlat, err := f.Access(1, 0, addrs[0], false, done-1)
	if err != nil {
		t.Fatal(err)
	}
	_, idleFlat, err := f.Access(1, 0, addrs[0], false, done+1)
	if err != nil {
		t.Fatal(err)
	}
	if want := idleFlat + f.transferNs(accessTransferBytes); busyFlat != want {
		t.Fatalf("busy-link access = %v, idle = %v; want busy = idle + one transfer (%v)", busyFlat, idleFlat, want)
	}
}

func TestConsolidateMigratesWithVerify(t *testing.T) {
	f := newTestFabric(t, func(c *Config) { c.Fabric.Policy = PolicyPack })
	led := f.StartLedger()
	a := NewAllocator(f)
	capBytes := testGeometry().TotalBytes()

	// Fill x0, force a small VM onto x1 (below the consolidation watermark),
	// then empty x0: the next Consolidate drains x1's stray VM back.
	if _, err := a.Place(0, 0, capBytes, 0); err != nil {
		t.Fatal(err)
	}
	x, err := a.Place(1, 1, 16*dram.MiB, 0)
	if err != nil || x != 1 {
		t.Fatalf("Place(vm1) = x%d, %v; want x1", x, err)
	}
	if err := a.Free(0, 100); err != nil {
		t.Fatal(err)
	}

	moved, err := a.Consolidate(1000)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("Consolidate moved %d VMs, want 1", moved)
	}
	if x, ok := a.Lookup(1); !ok || x != 0 {
		t.Fatalf("vm 1 now on x%d (ok=%v), want x0", x, ok)
	}
	if got := f.Expander(1).DTL.AllocatedBytes(); got != 0 {
		t.Fatalf("donor still holds %d bytes", got)
	}

	st := a.Stats()
	if st.Migrations != 1 || st.MigratedBytes != 16*dram.MiB {
		t.Fatalf("stats = %+v, want 1 migration of 16 MiB", st)
	}
	if st.VerifyProbes == 0 || st.VerifyLatNs == 0 || st.VerifyFailures != 0 {
		t.Fatalf("verify-after-copy did not run: %+v", st)
	}

	wantEnergy := f.slope * float64(16*dram.MiB)
	cell := led.CauseTotals()[telemetry.CauseFabricCopy]
	if cell.Energy != wantEnergy {
		t.Fatalf("fabric-copy energy = %v, want %v", cell.Energy, wantEnergy)
	}
	if cell.LatNs != int64(f.transferNs(16*dram.MiB)) {
		t.Fatalf("fabric-copy latency = %v, want %v", cell.LatNs, f.transferNs(16*dram.MiB))
	}
	if got := f.Registry().Counter("rack.fabric.bytes_copied").Value(); got != 16*dram.MiB {
		t.Fatalf("bytes_copied = %d, want %d", got, 16*dram.MiB)
	}

	// Spread racks never consolidate.
	f2 := newTestFabric(t, nil)
	a2 := NewAllocator(f2)
	if _, err := a2.Place(1, 0, 16*dram.MiB, 0); err != nil {
		t.Fatal(err)
	}
	if moved, err := a2.Consolidate(1000); err != nil || moved != 0 {
		t.Fatalf("spread Consolidate = %d, %v; want no-op", moved, err)
	}
}

func TestStartFaultsSplitsSpecAcrossExpanders(t *testing.T) {
	f := newTestFabric(t, nil)
	spec, err := fault.Parse("seed=7;kill:x1/ch0/rk0:at=1h")
	if err != nil {
		t.Fatal(err)
	}
	injs, err := f.StartFaults(spec, 6*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 1 {
		t.Fatalf("got %d injectors, want 1 (only x1 targeted)", len(injs))
	}
	f.Engine().RunUntil(2 * sim.Hour)
	if failed := f.Expander(1).DTL.Device().FailedGlobal(0); !failed {
		t.Fatal("x1 ch0/rk0 not failed after the scheduled kill")
	}
	if failed := f.Expander(0).DTL.Device().FailedGlobal(0); failed {
		t.Fatal("kill leaked onto expander 0")
	}

	// A spec aimed past the rack edge fails loudly.
	spec2, err := fault.Parse("kill:x5/ch0/rk0:at=1h")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartFaults(spec2, 6*sim.Hour); err == nil || !strings.Contains(err.Error(), "x5") {
		t.Fatalf("StartFaults(x5 on 2-expander rack) = %v, want loud error", err)
	}
}

// TestFinishAttributionFoldsExpanderLedgers drives a tiny workload with
// tracing and attribution on, then checks the rack ledger carries both the
// fabric causes (rack-charged) and the expanders' technique causes
// (privately charged, folded in at finish with rack-global rank ids).
func TestFinishAttributionFoldsExpanderLedgers(t *testing.T) {
	f := newTestFabric(t, func(c *Config) { c.Fabric.Policy = PolicyPack })
	tr := f.StartTrace(0, 0)
	led := f.StartLedger()
	a := NewAllocator(f)
	capBytes := testGeometry().TotalBytes()
	if _, err := a.Place(0, 0, capBytes, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Place(1, 1, 16*dram.MiB, 0); err != nil {
		t.Fatal(err)
	}
	addrs, err := f.Expander(0).DTL.VMAddresses(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Access(0, 0, addrs[0], false, 500); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(0, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Consolidate(2000); err != nil {
		t.Fatal(err)
	}

	horizon := sim.Time(1 * sim.Hour)
	f.AccountUpTo(horizon)
	tr.Finish(horizon)
	f.FinishAttribution(tr, led, horizon)

	totals := led.CauseTotals()
	if totals[telemetry.CauseFabricCopy].Energy == 0 {
		t.Fatal("no fabric-copy energy after consolidation")
	}
	if totals[telemetry.CauseBaseline].LatNs == 0 {
		t.Fatal("expander baseline access latency did not fold into the rack ledger")
	}
	if totals[telemetry.CauseBaseline].Energy == 0 {
		t.Fatal("residency energy did not fold into the rack ledger")
	}
	// Folded technique charges must land on rack-global rank ids: every
	// per-rank entry must be inside the rack rank space.
	for _, ent := range led.Snapshot().Entries {
		if ent.Rank >= f.TotalRanks() {
			t.Fatalf("ledger entry rank %d outside rack space [0,%d)", ent.Rank, f.TotalRanks())
		}
	}
}

// TestDeterministicLedger re-runs an identical packed workload and requires
// byte-identical ledger dumps — the rack-level spelling of the repo's
// byte-determinism invariant.
func TestDeterministicLedger(t *testing.T) {
	run := func() []byte {
		f := newTestFabric(t, func(c *Config) { c.Fabric.Policy = PolicyPack })
		tr := f.StartTrace(0, 0)
		led := f.StartLedger()
		a := NewAllocator(f)
		for vm := core.VMID(0); vm < 6; vm++ {
			if _, err := a.Place(vm, core.HostID(vm%4), 32*dram.MiB, sim.Time(vm)*100); err != nil {
				t.Fatal(err)
			}
		}
		for vm := core.VMID(0); vm < 6; vm++ {
			x, _ := a.Lookup(vm)
			addrs, err := f.Expander(x).DTL.VMAddresses(vm)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := f.Access(vm, x, addrs[0], vm%2 == 0, 10_000+sim.Time(vm)*50); err != nil {
				t.Fatal(err)
			}
		}
		for vm := core.VMID(0); vm < 4; vm++ {
			if err := a.Free(vm, 20_000+sim.Time(vm)*10); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := a.Consolidate(30_000); err != nil {
			t.Fatal(err)
		}
		horizon := sim.Time(1 * sim.Hour)
		f.AccountUpTo(horizon)
		tr.Finish(horizon)
		f.FinishAttribution(tr, led, horizon)
		var buf bytes.Buffer
		if err := led.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical rack runs produced different ledger bytes")
	}
}
