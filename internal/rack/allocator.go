package rack

import (
	"fmt"
	"sort"

	"dtl/internal/core"
	"dtl/internal/sim"
)

// ConsolidateFraction is the pack-policy drain trigger: an expander whose
// allocation falls below this fraction of its capacity (but is not empty)
// becomes a consolidation donor, and its VMs migrate out over the fabric
// so the expander can power all the way down.
const ConsolidateFraction = 0.25

// placement is one VM's current home.
type placement struct {
	exp   int
	host  core.HostID
	bytes int64
}

// AllocStats counts what the allocator did.
type AllocStats struct {
	Placed         int64 // successful placements
	Spilled        int64 // placements that missed the affinity expander (spread) or the densest fit (pack capacity re-route)
	Shed           int64 // placements no expander could hold
	Migrations     int64 // whole-VM inter-expander migrations completed
	MigratedBytes  int64 // bytes moved over the fabric by those migrations
	VerifyProbes   int64 // verify-after-copy read probes issued
	VerifyLatNs    int64 // summed latency of those probes (foreground cost)
	VerifyFailures int64 // probes that failed, aborting the migration
	Reroutes       int64 // destinations abandoned (allocation or verify failure)
}

// Allocator is the global placement layer: it decides which expander a VM
// lands on (FabricConfig.Policy), tracks every VM's home, and — under the
// pack policy — migrates whole VMs between expanders with verify-after-copy
// so lightly-used expanders drain and power down. All iteration is in
// sorted VM order, keeping rack runs byte-deterministic.
type Allocator struct {
	f     *Fabric
	vms   map[core.VMID]placement
	ids   []core.VMID // reused scratch for deterministic iteration
	stats AllocStats
}

// NewAllocator builds the placement layer for f.
func NewAllocator(f *Fabric) *Allocator {
	return &Allocator{f: f, vms: make(map[core.VMID]placement)}
}

// Stats reports cumulative allocator activity.
func (a *Allocator) Stats() AllocStats { return a.stats }

// Lookup reports the expander currently holding vm.
func (a *Allocator) Lookup(vm core.VMID) (int, bool) {
	p, ok := a.vms[vm]
	return p.exp, ok
}

// freeBytes estimates expander x's remaining capacity.
func (a *Allocator) freeBytes(x int) int64 {
	d := a.f.Expander(x).DTL
	return d.Config().Geometry.TotalBytes() - d.AllocatedBytes()
}

// chooseOrder ranks candidate expanders for a placement of bytes under the
// active policy. Spread prefers the affinity expander, then the most free
// capacity (ties to the lowest id); pack prefers the most-allocated
// expander that still fits (ties to the lowest id), affinity ignored.
func (a *Allocator) chooseOrder(vm core.VMID) []int {
	n := a.f.Config().Expanders
	order := make([]int, 0, n)
	for x := 0; x < n; x++ {
		order = append(order, x)
	}
	switch a.f.Config().Fabric.Policy {
	case PolicyPack:
		sort.SliceStable(order, func(i, j int) bool {
			ai := a.f.Expander(order[i]).DTL.AllocatedBytes()
			aj := a.f.Expander(order[j]).DTL.AllocatedBytes()
			if ai != aj {
				return ai > aj
			}
			return order[i] < order[j]
		})
	default: // PolicySpread
		aff := a.f.Affinity(vm)
		sort.SliceStable(order, func(i, j int) bool {
			if (order[i] == aff) != (order[j] == aff) {
				return order[i] == aff
			}
			fi, fj := a.freeBytes(order[i]), a.freeBytes(order[j])
			if fi != fj {
				return fi > fj
			}
			return order[i] < order[j]
		})
	}
	return order
}

// Place admits a VM: candidate expanders are tried in policy order and the
// VM lands on the first that accepts the allocation (a full or degraded
// expander falls through to the next). Returns the chosen expander, or
// core.ErrOutOfCapacity when no expander can hold the VM (the caller sheds
// the arrival, mirroring the single-expander schedule experiments).
func (a *Allocator) Place(vm core.VMID, host core.HostID, bytes int64, now sim.Time) (int, error) {
	if _, ok := a.vms[vm]; ok {
		return 0, fmt.Errorf("rack: vm %d already placed", vm)
	}
	order := a.chooseOrder(vm)
	for i, x := range order {
		if _, err := a.f.Expander(x).DTL.AllocateVM(vm, host, bytes, now); err != nil {
			continue
		}
		a.vms[vm] = placement{exp: x, host: host, bytes: bytes}
		a.stats.Placed++
		if i > 0 {
			a.stats.Spilled++
		}
		return x, nil
	}
	a.stats.Shed++
	return 0, core.ErrOutOfCapacity
}

// Free releases a departed VM from its expander; under the pack policy an
// expander left empty parks entirely (every rank to MPSM).
func (a *Allocator) Free(vm core.VMID, now sim.Time) error {
	p, ok := a.vms[vm]
	if !ok {
		return fmt.Errorf("rack: vm %d not placed", vm)
	}
	if err := a.f.Expander(p.exp).DTL.DeallocateVM(vm, now); err != nil {
		return err
	}
	delete(a.vms, vm)
	return a.maybePark(p.exp, now)
}

// maybePark parks expander x when the pack policy drained it empty: core's
// per-channel active floor is a per-device serving guarantee, and a
// pack-policy expander with no VMs left serves nobody until the allocator
// routes new load at it (AllocateVM then unparks rank groups on demand).
func (a *Allocator) maybePark(x int, now sim.Time) error {
	if a.f.Config().Fabric.Policy != PolicyPack {
		return nil
	}
	d := a.f.Expander(x).DTL
	if d.AllocatedBytes() != 0 {
		return nil
	}
	if err := d.Park(now); err != nil {
		return fmt.Errorf("rack: parking drained expander %d: %w", x, err)
	}
	return nil
}

// migrate moves one VM from its current expander to dst with
// verify-after-copy: allocate on dst, copy the VM's bytes over the fabric
// (charging fabric-copy), read-probe every destination AU base, and only
// then free the source. A failed allocation or verify probe rolls the
// destination back and reports a re-route, leaving the VM where it was.
// Verify-probe latency is foreground cost the destination DTL charges
// normally; it is also summed into AllocStats.VerifyLatNs so drivers can
// reconcile their own foreground accounting.
func (a *Allocator) migrate(vm core.VMID, dst int, now sim.Time) (bool, error) {
	p := a.vms[vm]
	src := a.f.Expander(p.exp).DTL
	dstDTL := a.f.Expander(dst).DTL
	alloc, err := dstDTL.AllocateVM(vm, p.host, p.bytes, now)
	if err != nil {
		a.stats.Reroutes++
		return false, nil
	}
	done := a.f.copyOver(vm, p.exp, dst, p.bytes, now)
	verified := true
	for _, base := range alloc.AUBases {
		a.stats.VerifyProbes++
		res, err := dstDTL.Access(base, false, done)
		if err != nil {
			verified = false
			break
		}
		a.stats.VerifyLatNs += int64(res.TotalLat())
	}
	if !verified {
		if err := dstDTL.DeallocateVM(vm, done); err != nil {
			return false, fmt.Errorf("rack: rolling back failed migration of vm %d: %w", vm, err)
		}
		a.stats.VerifyFailures++
		a.stats.Reroutes++
		return false, nil
	}
	if err := src.DeallocateVM(vm, done); err != nil {
		return false, fmt.Errorf("rack: releasing migrated vm %d: %w", vm, err)
	}
	srcExp := p.exp
	p.exp = dst
	a.vms[vm] = p
	a.stats.Migrations++
	a.stats.MigratedBytes += p.bytes
	if err := a.maybePark(srcExp, done); err != nil {
		return false, err
	}
	return true, nil
}

// Consolidate runs one pack-policy rebalancing pass at now: the
// least-allocated non-empty expander below the ConsolidateFraction
// watermark becomes the donor, and its VMs (in VM-id order) migrate to the
// most-utilized expanders that can hold them. One donor is drained per
// call, bounding the fabric burst a single tick can issue. Under the
// spread policy it is a no-op. Returns the number of VMs moved.
func (a *Allocator) Consolidate(now sim.Time) (int, error) {
	if a.f.Config().Fabric.Policy != PolicyPack {
		return 0, nil
	}
	donor := -1
	var donorBytes int64
	capBytes := a.f.Config().Expander.Geometry.TotalBytes()
	for x := 0; x < a.f.Config().Expanders; x++ {
		b := a.f.Expander(x).DTL.AllocatedBytes()
		if b == 0 || float64(b) >= ConsolidateFraction*float64(capBytes) {
			continue
		}
		if donor == -1 || b < donorBytes || (b == donorBytes && x > donor) {
			donor, donorBytes = x, b
		}
	}
	if donor == -1 {
		return 0, nil
	}

	a.ids = a.ids[:0]
	for vm, p := range a.vms {
		if p.exp == donor {
			a.ids = append(a.ids, vm)
		}
	}
	sort.Slice(a.ids, func(i, j int) bool { return a.ids[i] < a.ids[j] })

	moved := 0
	for _, vm := range a.ids {
		dst := -1
		var dstAlloc int64
		for x := 0; x < a.f.Config().Expanders; x++ {
			if x == donor {
				continue
			}
			b := a.f.Expander(x).DTL.AllocatedBytes()
			if a.freeBytes(x) < a.vms[vm].bytes {
				continue
			}
			if dst == -1 || b > dstAlloc || (b == dstAlloc && x < dst) {
				dst, dstAlloc = x, b
			}
		}
		if dst == -1 {
			continue // nowhere to put it; the donor keeps it
		}
		ok, err := a.migrate(vm, dst, now)
		if err != nil {
			return moved, err
		}
		if ok {
			moved++
		}
	}
	return moved, nil
}

// LiveVMs reports how many VMs the allocator is tracking.
func (a *Allocator) LiveVMs() int { return len(a.vms) }
