package experiments

import (
	"strings"
	"testing"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/sim"
)

func TestParsePolicyGrammar(t *testing.T) {
	p, err := ParsePolicy("reserve=3; window=20us;threshold=80ms ;srmin=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Policy{
		Reserve:            3,
		ProfilingWindow:    20 * sim.Microsecond,
		ProfilingThreshold: 80 * sim.Millisecond,
		SRMinStandby:       2,
	}
	if p != want {
		t.Fatalf("ParsePolicy = %+v, want %+v", p, want)
	}
	if p.IsZero() {
		t.Fatal("non-empty policy reports IsZero")
	}
	if p, err := ParsePolicy(""); err != nil || !p.IsZero() {
		t.Fatalf("empty policy: %+v, %v", p, err)
	}
}

func TestParsePolicyRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"typo=1":        "unknown policy key",
		"reserve":       "want key=value",
		"reserve=0":     "integer >= 1",
		"reserve=x":     "integer >= 1",
		"window=fast":   "duration",
		"window=-1ms":   "positive duration",
		"threshold=0s":  "positive duration",
		"srmin=0":       "integer >= 1",
		"reserve=2;q=1": "unknown policy key",
	}
	for in, frag := range cases {
		if _, err := ParsePolicy(in); err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("ParsePolicy(%q) = %v, want error containing %q", in, err, frag)
		}
	}
}

func TestPolicyApply(t *testing.T) {
	g := dram.Geometry{Channels: 4, RanksPerChannel: 8, BanksPerRank: 16,
		SegmentBytes: 2 * dram.MiB, RankBytes: 2 * dram.GiB}
	p := Policy{Reserve: 3, ProfilingWindow: 7, ProfilingThreshold: 9, SRMinStandby: 4}

	cfg := core.DefaultConfig(g)
	p.apply(&cfg)
	if cfg.ReserveRankGroups != 3 || cfg.ProfilingWindow != 7 ||
		cfg.ProfilingThreshold != 9 || cfg.SelfRefreshMinStandby != 4 {
		t.Fatalf("apply missed a knob: %+v", cfg)
	}

	// applyHotness must leave the experiment-pinned reserve untouched.
	cfg = core.DefaultConfig(g)
	cfg.ReserveRankGroups = 5
	p.applyHotness(&cfg)
	if cfg.ReserveRankGroups != 5 {
		t.Fatalf("applyHotness clobbered the pinned reserve: %d", cfg.ReserveRankGroups)
	}
	if cfg.ProfilingWindow != 7 || cfg.SelfRefreshMinStandby != 4 {
		t.Fatalf("applyHotness missed a hotness knob: %+v", cfg)
	}

	// The zero policy applies nothing.
	cfg = core.DefaultConfig(g)
	def := cfg
	(Policy{}).apply(&cfg)
	if cfg != def {
		t.Fatalf("zero policy changed the config: %+v", cfg)
	}
}

// TestFig12PolicyKnobsAreLive: the reserve knob must change the power-down
// schedule's outcome (more headroom → more active ranks, less saving), or
// the A/B surface is dead.
func TestFig12PolicyKnobsAreLive(t *testing.T) {
	base := runPowerDownSchedule(quickOpts())
	o := quickOpts()
	o.Policy = Policy{Reserve: 3}
	reserved := runPowerDownSchedule(o)
	if reserved.meanActiveRanks <= base.meanActiveRanks {
		t.Fatalf("reserve=3 mean active ranks %.2f not above baseline %.2f",
			reserved.meanActiveRanks, base.meanActiveRanks)
	}
}
