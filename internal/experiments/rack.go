package experiments

import (
	"errors"
	"fmt"
	"sort"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/fault"
	"dtl/internal/metrics"
	"dtl/internal/power"
	"dtl/internal/rack"
	"dtl/internal/sim"
	"dtl/internal/trace"
	"dtl/internal/vmtrace"
)

// defaultRackExpanders is the rack size when Options.Rack is unset: four
// pdGeometry expanders (1.5 TiB pooled) behind one switch.
const defaultRackExpanders = 4

// rackExpSummary is one expander's rollup over the run.
type rackExpSummary struct {
	meanActiveRanks float64 // mean active ranks per channel
	bgEnergy        float64 // background energy (units x ns)
	endAllocBytes   int64
	endLiveVMs      int
}

// rackRun is one policy leg of the rack schedule.
type rackRun struct {
	horizon sim.Time
	policy  rack.Policy

	baseBGEnergy float64 // all-standby baseline (units x ns)
	techBGEnergy float64
	activeEnergy float64
	migEnergy    float64 // intra-expander migration energy
	fabricEnergy float64 // inter-expander copy energy

	meanActiveRanks float64 // rack-wide mean active ranks per channel
	perExp          []rackExpSummary
	samples         []power.Sample
	migrationSpans  int

	accesses      int64 // foreground probe accesses issued
	accessLatNs   int64 // their summed latency, fabric stall and verify probes included
	crossAccesses int64
	fabricStallNs int64
	fabricBytes   int64
	fabricCopies  int64
	bytesMigrated int64 // intra-expander
	alloc         rack.AllocStats
	consolidated  int // VMs moved by consolidation passes

	// Reliability outcomes, populated when Options.FaultSpec is set.
	faultStats     fault.Stats
	degradedProbes int
	probeFailures  int
	retiredRanks   int
	shedVMs        int
	health         map[string]float64
}

// energyProxy is the leg's total technique energy: background residency plus
// foreground active energy plus both migration components.
func (r rackRun) energyProxy() float64 {
	return r.techBGEnergy + r.activeEnergy + r.migEnergy + r.fabricEnergy
}

// runRackSchedule drives the 6-hour Azure-like schedule over an n-expander
// rack under one placement policy. The loop mirrors runPowerDownSchedule with
// the fabric in the access path: every interval processes fault events,
// arrivals and departures (through the global allocator), issues one read
// probe per live VM (paying fabric latency when the VM was packed off its
// affinity expander), and runs one consolidation pass last — consolidation's
// verify-after-copy probes land at the copy-completion time, after the
// interval's foreground probes, keeping every rank timeline monotonic.
func runRackSchedule(o Options, fcfg rack.FabricConfig, n int) rackRun {
	g := pdGeometry()
	ecfg := core.DefaultConfig(g)
	o.Policy.apply(&ecfg)
	f, err := rack.New(rack.Config{Expanders: n, Expander: ecfg, Fabric: fcfg})
	if err != nil {
		panic(err)
	}
	alloc := rack.NewAllocator(f)

	workloads := make([]string, 0, 10)
	for _, p := range trace.CloudSuite() {
		workloads = append(workloads, p.Name)
	}
	genCfg := vmtrace.DefaultGenConfig()
	genCfg.Seed = o.Seed
	genCfg.NumVMs = o.scaled(400, 120) * n
	genCfg.Workloads = workloads
	vms := vmtrace.Generate(genCfg)
	srv := vmtrace.Server{VCPUs: 48 * n, MemBytes: int64(n) * g.TotalBytes()}
	events, _, err := vmtrace.Schedule(vms, srv, genCfg.Horizon)
	if err != nil {
		panic(err)
	}

	run := rackRun{horizon: genCfg.Horizon, policy: fcfg.Policy, perExp: make([]rackExpSummary, n)}
	rt := o.telemetryForFabric(f, vmtrace.Interval, genCfg.Horizon)

	var injs []*fault.Injector
	faults := o.FaultSpec != ""
	if faults {
		spec, err := fault.Parse(o.FaultSpec)
		if err != nil {
			panic(err)
		}
		injs, err = f.StartFaults(spec, genCfg.Horizon)
		if err != nil {
			panic(err)
		}
	}
	shed := map[core.VMID]bool{}
	scrubPerInterval := int(g.TotalSegments() * int64(vmtrace.Interval) / int64(sim.Hour))

	pm := f.Expander(0).DTL.Device().Power()
	meter := power.NewMeter(pm)
	live := map[core.VMID]vmtrace.VM{}
	var liveIDs []core.VMID // reused scratch for deterministic iteration
	ei := 0
	rankSums := make([]float64, n)
	var intervals int
	var prevMigBytes int64

	sortedLive := func() []core.VMID {
		liveIDs = liveIDs[:0]
		for id := range live {
			liveIDs = append(liveIDs, id)
		}
		sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i] < liveIDs[j] })
		return liveIDs
	}

	for t := sim.Time(0); t <= genCfg.Horizon; t += vmtrace.Interval {
		o.checkCanceled()
		// Fault events for every expander share the rack engine, so one
		// RunUntil delivers them in total time order across the rack.
		f.Engine().RunUntil(t)
		if faults {
			if pn, lat := f.ProbeDegraded(t); pn > 0 {
				run.degradedProbes += pn
				run.accessLatNs += int64(lat)
			}
		}
		for ei < len(events) && events[ei].At <= t {
			ev := events[ei]
			ei++
			id := core.VMID(ev.VM.ID)
			if ev.Depart {
				if shed[id] {
					delete(shed, id)
					continue
				}
				if err := alloc.Free(id, t); err != nil {
					panic(err)
				}
				delete(live, id)
			} else {
				if _, err := alloc.Place(id, core.HostID(ev.VM.ID%ecfg.MaxHosts), ev.VM.MemBytes, t); err != nil {
					if errors.Is(err, core.ErrOutOfCapacity) {
						run.shedVMs++
						shed[id] = true
						continue
					}
					panic(err)
				}
				live[id] = ev.VM
			}
		}
		if faults {
			f.Tick(t)
			for _, e := range f.Expanders() {
				if _, err := e.DTL.Scrubber().Run(t, scrubPerInterval); err != nil {
					panic(fmt.Sprintf("experiments: rack scrub x%d at %v: %v", e.ID, t, err))
				}
			}
		}

		// Foreground probe: one read per live VM in VM-id order (Access has
		// model side effects, so map order would leak into the artifacts).
		// A packed VM away from its affinity expander pays the fabric here.
		var bw float64
		for _, id := range sortedLive() {
			bw += vmBandwidthGBs(live[id])
			x, ok := alloc.Lookup(id)
			if !ok {
				panic(fmt.Sprintf("experiments: live vm %d has no placement", id))
			}
			addrs, err := f.Expander(x).DTL.VMAddresses(id)
			if err != nil {
				panic(err)
			}
			res, flat, err := f.Access(id, x, addrs[0], false, t)
			if err != nil {
				run.probeFailures++
				continue
			}
			run.accesses++
			run.accessLatNs += int64(res.TotalLat() + flat)
		}

		// Consolidation runs last in the interval: its verify probes execute
		// at the copy-completion time (now + queue + transfer), which must
		// stay ahead of every event already recorded at t.
		moved, err := alloc.Consolidate(t)
		if err != nil {
			panic(err)
		}
		run.consolidated += moved

		var bg float64
		for x, e := range f.Expanders() {
			bg += e.DTL.Device().BackgroundPowerNow()
			rankSums[x] += float64(e.DTL.ActiveRanksPerChannel())
		}
		migBytes := f.BytesMigrated() + f.Registry().Counter("rack.fabric.bytes_copied").Value()
		migrating := migBytes > prevMigBytes
		if migrating {
			run.migrationSpans++
		}
		prevMigBytes = migBytes
		meter.Record(t, bg, pm.Active(bw), migrating)
		intervals++
		rt.tick(t)
	}

	if faults {
		// Zero-data-loss check, rack-wide: every surviving VM's memory must
		// still be readable wherever the allocator left it.
		for _, id := range sortedLive() {
			x, ok := alloc.Lookup(id)
			if !ok {
				panic(fmt.Sprintf("experiments: live vm %d has no placement", id))
			}
			addrs, err := f.Expander(x).DTL.VMAddresses(id)
			if err != nil {
				panic(err)
			}
			for _, a := range addrs {
				res, flat, err := f.Access(id, x, a, false, genCfg.Horizon)
				if err != nil {
					run.probeFailures++
					continue
				}
				run.accessLatNs += int64(res.TotalLat() + flat)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("experiments: rack invariants violated after fault run: %v", err))
		}
		for _, inj := range injs {
			st := inj.Stats()
			run.faultStats.CorrectableEvents += st.CorrectableEvents
			run.faultStats.CorrectableErrors += st.CorrectableErrors
			run.faultStats.UncorrectableEvents += st.UncorrectableEvents
			run.faultStats.WakeFaultsArmed += st.WakeFaultsArmed
			run.faultStats.RankKills += st.RankKills
			run.faultStats.PSUEvents += st.PSUEvents
		}
		run.health = map[string]float64{}
		for _, e := range f.Expanders() {
			run.retiredRanks += len(e.DTL.RetiredRanks())
			for _, name := range []string{"storms", "auto_retires", "retires_deferred",
				"retire_retries", "retires_abandoned", "fault_events"} {
				v, _ := e.DTL.Registry().Value("core.health." + name)
				run.health[name] += v
			}
		}
	}

	if err := rt.finish(genCfg.Horizon); err != nil {
		panic(err)
	}
	meter.FinishAt(genCfg.Horizon)
	f.AccountUpTo(genCfg.Horizon)

	st, sr, mp := f.BackgroundEnergy()
	run.techBGEnergy = st + sr + mp
	run.baseBGEnergy = float64(n) * float64(g.TotalRanks()) * pm.StandbyPower * float64(genCfg.Horizon)
	_, act, _ := meter.Energy()
	run.activeEnergy = act
	run.bytesMigrated = f.BytesMigrated()
	run.migEnergy = pm.ActivePowerPerGBs * float64(run.bytesMigrated)
	run.samples = meter.Samples()
	run.alloc = alloc.Stats()
	run.accessLatNs += run.alloc.VerifyLatNs

	reg := f.Registry()
	run.crossAccesses = reg.Counter("rack.fabric.cross_accesses").Value()
	run.fabricStallNs = reg.Counter("rack.fabric.stall_ns").Value()
	run.fabricBytes = reg.Counter("rack.fabric.bytes_copied").Value()
	run.fabricCopies = reg.Counter("rack.fabric.copies").Value()
	run.fabricEnergy = pm.ActivePowerPerGBs * float64(run.fabricBytes)

	var rackRankSum float64
	for x := range run.perExp {
		e := f.Expander(x)
		est, esr, emp := e.DTL.Device().BackgroundEnergy()
		run.perExp[x] = rackExpSummary{
			meanActiveRanks: rankSums[x] / float64(intervals),
			bgEnergy:        est + esr + emp,
			endAllocBytes:   e.DTL.AllocatedBytes(),
			endLiveVMs:      e.DTL.LiveVMs(),
		}
		rackRankSum += rankSums[x]
	}
	run.meanActiveRanks = rackRankSum / float64(intervals*n)
	return run
}

// Rack runs the rack-scale A/B: the same 6-hour arrival curve placed over an
// N-expander rack under the configured policy (the headline leg, which owns
// every telemetry artifact) and under the opposite policy (a silent leg), and
// compares their energy proxies. Packing concentrates VMs so whole expanders
// power down — the paper's §3.3 rank-level mechanism lifted to rack scale —
// at the price of fabric latency on every access to a packed-away VM.
func Rack(o Options) Result {
	res := newResult("rack", "Rack-scale fabric: pack vs spread placement over N expanders",
		"extension of §3.3: placement density, not just rank drains, sets the background-power floor")
	w := o.out()
	res.header(w)

	n := o.Rack
	if n == 0 {
		n = defaultRackExpanders
	}
	fcfg, err := rack.ParseFabric(o.Fabric)
	if err != nil {
		panic(err)
	}
	altCfg := fcfg
	if fcfg.Policy == rack.PolicyPack {
		altCfg.Policy = rack.PolicySpread
	} else {
		altCfg.Policy = rack.PolicyPack
	}

	fmt.Fprintf(w, "rack: %d expanders x %s, fabric hop %v, link %.0f GB/s, headline policy %s\n\n",
		n, dram.FormatBytes(pdGeometry().TotalBytes()), fcfg.HopLatency, fcfg.BandwidthGBs, fcfg.Policy)

	head := runRackSchedule(o, fcfg, n)
	alt := runRackSchedule(o.withoutTelemetry(), altCfg, n)

	if f := o.csvFile("rack_power_timeline"); f != nil {
		fmt.Fprintln(f, "minute,background,active,total,migrating")
		for _, s := range head.samples {
			mig := 0
			if s.Migrating {
				mig = 1
			}
			fmt.Fprintf(f, "%d,%.3f,%.3f,%.3f,%d\n",
				int64(s.At/sim.Minute), s.Background, s.Active, s.Total(), mig)
		}
		f.Close()
	}

	fmt.Fprintf(w, "(a) per-expander rollup, %s policy\n", head.policy)
	tab := metrics.NewTable("expander", "mean active ranks/ch", "bg energy (units-s)", "allocated at end", "live VMs")
	for x, e := range head.perExp {
		tab.AddRowf("x%d\t%.2f\t%.3g\t%s\t%d",
			x, e.meanActiveRanks, e.bgEnergy/1e9, dram.FormatBytes(e.endAllocBytes), e.endLiveVMs)
	}
	tab.Render(w)

	runs := []rackRun{head, alt}
	fmt.Fprintln(w, "\n(b) policy A/B on the identical arrival curve")
	tab = metrics.NewTable("policy", "bg energy", "active", "migration", "fabric", "total (units-s)", "cross-access share", "shed")
	for _, r := range runs {
		share := 0.0
		if r.accesses > 0 {
			share = float64(r.crossAccesses) / float64(r.accesses)
		}
		tab.AddRowf("%s\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\t%s\t%d",
			r.policy, r.techBGEnergy/1e9, r.activeEnergy/1e9, r.migEnergy/1e9,
			r.fabricEnergy/1e9, r.energyProxy()/1e9, pct(share), r.shedVMs+int(r.alloc.Shed))
	}
	tab.Render(w)

	pack, spread := head, alt
	if head.policy != rack.PolicyPack {
		pack, spread = alt, head
	}
	delta := 1 - pack.energyProxy()/spread.energyProxy()
	fmt.Fprintf(w, "\npack vs spread energy proxy: %.4g vs %.4g units-s (%s saved by packing)\n",
		pack.energyProxy()/1e9, spread.energyProxy()/1e9, pct(delta))
	fmt.Fprintf(w, "headline leg: %d fabric copies moved %s (stall %s total over %d cross accesses); %d VMs consolidated\n",
		head.fabricCopies, dram.FormatBytes(head.fabricBytes),
		sim.Time(head.fabricStallNs), head.crossAccesses, head.consolidated)
	if o.FaultSpec != "" {
		fmt.Fprintf(w, "faults: %d rank kills across the rack, %d ranks retired, %d degraded probes, %d probe failures\n",
			head.faultStats.RankKills, head.retiredRanks, head.degradedProbes, head.probeFailures)
		res.Metrics["ranks_retired"] = float64(head.retiredRanks)
		res.Metrics["probe_failures"] = float64(head.probeFailures)
	}

	headShare := 0.0
	if head.accesses > 0 {
		headShare = float64(head.crossAccesses) / float64(head.accesses)
	}
	res.Metrics["energy_proxy_pack"] = pack.energyProxy()
	res.Metrics["energy_proxy_spread"] = spread.energyProxy()
	res.Metrics["pack_vs_spread_saving"] = delta
	res.Metrics["energy_saving"] = 1 - head.energyProxy()/(head.baseBGEnergy+head.activeEnergy)
	res.Metrics["mean_active_ranks"] = head.meanActiveRanks
	res.Metrics["cross_access_share"] = headShare
	res.Metrics["fabric_stall_ns"] = float64(head.fabricStallNs)
	res.Metrics["fabric_bytes"] = float64(head.fabricBytes)
	res.Metrics["rack_migrations"] = float64(head.alloc.Migrations)
	res.Metrics["vms_shed"] = float64(head.shedVMs)
	res.Metrics["foreground_lat_ns"] = float64(head.accessLatNs)
	res.Metrics["bytes_migrated"] = float64(head.bytesMigrated)
	res.footer(w)
	return res
}
