package experiments

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/memctrl"
	"dtl/internal/sim"
	"dtl/internal/trace"
)

// replayStats summarizes a raw controller replay (no DTL translation):
// used by Fig. 2 and Fig. 5, which study the memory system's sensitivity
// to rank count and interleaving policy in a conventional server.
type replayStats struct {
	accesses    int64
	instr       int64
	meanLatNs   float64 // device latency including the link
	rowHitRatio float64
	endTime     sim.Time // virtual time of the last arrival, for rt.finish
}

// execTime converts the replay into the wall-clock execution-time model at
// the compressed replay rate.
func (r replayStats) execTime() float64 {
	return executionTime(int64(float64(r.instr)/pressure), r.accesses, r.meanLatNs)
}

// replayController drives a mixed CloudSuite trace through a bare
// controller with the given geometry and mapping policy.
//
// rankInterleave=true models the conventional address mapping (consecutive
// segments rotate over channels and ranks); false models DTL's
// channel-only interleaving where traffic packs into the lowest ranks.
// pressure compresses the replay's arrival pacing, emulating the paper's
// §5.2 adjustment of the trace replay rate to reach >30 GB/s of memory
// bandwidth at a comparable fraction of peak ("higher than the 95th percentile of memory bandwidth
// utilization in datacenters").
const pressure = 2.0

// chanReplay is one channel's slice of the replay stream in struct-of-arrays
// form — three dense parallel slices the replay kernel walks front to back —
// plus that channel's private accumulators. Accumulating latency per channel
// (instead of into one shared float) is what makes the serial and sharded
// replays byte-identical: float addition is non-associative, so both paths
// keep per-channel partial sums and reduce them in fixed channel order.
type chanReplay struct {
	dpa    []dram.DPA
	write  []bool
	arrive []sim.Time

	next    int // first unplayed index
	latSum  float64
	rowHits int64
}

// access replays entry i against the controller. The controller's Access
// path touches only channel- and rank-local state (see memctrl.Controller),
// so concurrent calls for different channels do not race.
func (cr *chanReplay) access(ctrl *memctrl.Controller, linkLat sim.Time, i int) {
	arrive := cr.arrive[i]
	res := ctrl.Access(memctrl.Request{Addr: cr.dpa[i], Write: cr.write[i], Arrive: arrive})
	cr.latSum += float64(res.Done-arrive) + float64(linkLat)
	if res.RowHit {
		cr.rowHits++
	}
}

// runTo replays entries arriving strictly before limit — the serial half of
// the round structure both replay paths share (the sharded path's
// BarrierBefore has the same strictly-before contract).
func (cr *chanReplay) runTo(ctrl *memctrl.Controller, linkLat sim.Time, limit sim.Time) {
	for cr.next < len(cr.arrive) && cr.arrive[cr.next] < limit {
		cr.access(ctrl, linkLat, cr.next)
		cr.next++
	}
}

// scheduleChanReplay installs the channel's stream on a shard engine as a
// self-rescheduling event chain: each firing replays one access at its
// arrival time and schedules the next. Arrival times are non-decreasing
// within a channel, and equal-time entries fire in insertion order, so the
// chain replays the channel in exactly the order runTo does.
func scheduleChanReplay(eng *sim.Engine, cr *chanReplay, ctrl *memctrl.Controller, linkLat sim.Time) {
	if len(cr.arrive) == 0 {
		return
	}
	var step sim.Event
	step = func(now sim.Time) {
		cr.access(ctrl, linkLat, cr.next)
		cr.next++
		if cr.next < len(cr.arrive) {
			eng.At(cr.arrive[cr.next], step)
		}
	}
	eng.At(cr.arrive[0], step)
}

// rt, when non-nil, samples the controller's registry metrics over the
// replay's virtual clock (the caller finishes it with the returned endTime).
// shards > 1 replays the channels concurrently on a sharded engine; any
// value (including 0 and 1) replays serially. Both paths quiesce every
// channel at each sampling boundary before the sample fires, so a sample at
// time T always reflects exactly the accesses arriving before T and the
// output is byte-identical at every shard count.
func replayController(g dram.Geometry, rankInterleave bool, linkLat sim.Time,
	profiles []trace.Profile, n int, seed int64, rt *runTelemetry, shards int) replayStats {

	dev := dram.MustDevice(g, dram.DefaultPowerModel(), dram.DefaultTiming())
	ctrl := memctrl.New(dev)
	codec := dev.Codec()
	if rt != nil {
		ctrl.RegisterMetrics(rt.reg)
	}

	mix := trace.MustMixed(profiles, seed)
	if mix.TotalFootprint() > g.TotalBytes() {
		panic(fmt.Sprintf("experiments: footprint %d exceeds device %d", mix.TotalFootprint(), g.TotalBytes()))
	}

	segBytes := g.SegmentBytes
	mapSeg := func(seq int64) dram.DSN {
		if rankInterleave {
			return codec.RankInterleavedDSN(seq)
		}
		return dram.DSN(seq) // natural order: channel-interleaved, rank-high
	}

	// Generation phase: materialize the merged stream into per-channel SoA
	// buffers. The trace RNG is consumed identically at every shard count,
	// and arrival stamps are non-decreasing, so endTime is the last stamp.
	chans := make([]chanReplay, g.Channels)
	var endTime sim.Time
	for i := 0; i < n; i++ {
		a := mix.Next()
		seq := a.Addr / segBytes
		dpa := codec.Compose(mapSeg(seq), a.Addr%segBytes)
		arrive := sim.Time(float64(a.Instr) * 0.5 / pressure) // 2 GHz, IPC 1, rate-adjusted
		ch, _ := codec.RankOf(dpa)
		cr := &chans[ch]
		cr.dpa = append(cr.dpa, dpa)
		cr.write = append(cr.write, a.Write)
		cr.arrive = append(cr.arrive, arrive)
		endTime = arrive
	}

	// Replay phase: rounds bounded by the sampling clock's next event, then
	// a final drain past endTime. The serial path walks the channels in
	// index order; the sharded path runs them concurrently and meets the
	// serial path at every boundary via the barrier protocol.
	if shards > 1 {
		nsh := shards
		if nsh > g.Channels {
			nsh = g.Channels
		}
		seng := sim.NewSharded(nsh)
		for ch := range chans {
			scheduleChanReplay(seng.Shard(ch%nsh), &chans[ch], ctrl, linkLat)
		}
		for {
			b, ok := rt.next()
			if !ok || b > endTime {
				break
			}
			seng.BarrierBefore(b)
			rt.tick(b)
		}
		seng.Drain(endTime)
		seng.Close()
	} else {
		for {
			b, ok := rt.next()
			if !ok || b > endTime {
				break
			}
			for ch := range chans {
				chans[ch].runTo(ctrl, linkLat, b)
			}
			rt.tick(b)
		}
		for ch := range chans {
			chans[ch].runTo(ctrl, linkLat, endTime+1)
		}
	}

	// Reduce the per-channel accumulators in fixed channel order (float
	// addition is non-associative; a fixed order keeps every shard count
	// byte-identical).
	var latSum float64
	var rowHits, accesses int64
	for ch := range chans {
		latSum += chans[ch].latSum
		rowHits += chans[ch].rowHits
		accesses += int64(len(chans[ch].arrive))
	}

	// The merged instruction clock advances at the aggregate rate; recover
	// total instructions from the final access's stamp.
	return replayStats{
		accesses:    accesses,
		instr:       lastInstr(mix),
		meanLatNs:   latSum / float64(accesses),
		rowHitRatio: float64(rowHits) / float64(accesses),
		endTime:     endTime,
	}
}

func lastInstr(m *trace.Mixed) int64 {
	// Peek by generating one more access; its stamp bounds the total.
	return m.Next().Instr
}

// fig2Profiles returns the ten CloudSuite profiles with footprints shrunk
// to fit the smallest swept configuration.
func fig2Profiles(quick bool) []trace.Profile {
	ps := trace.CloudSuite()
	// Size the combined allocation to span more than one rank per channel
	// under the channel-only mapping (as the paper's 64 GB working set
	// does), while fitting the smallest swept configuration.
	foot := int64(16 << 30) // 16 GB each: 160 GB total, 40 GB per channel
	if quick {
		foot = 4 << 30
	}
	for i := range ps {
		ps[i].FootprintBytes = foot
	}
	return ps
}
