package experiments

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/memctrl"
	"dtl/internal/sim"
	"dtl/internal/trace"
)

// replayStats summarizes a raw controller replay (no DTL translation):
// used by Fig. 2 and Fig. 5, which study the memory system's sensitivity
// to rank count and interleaving policy in a conventional server.
type replayStats struct {
	accesses    int64
	instr       int64
	meanLatNs   float64 // device latency including the link
	rowHitRatio float64
	endTime     sim.Time // virtual time of the last arrival, for rt.finish
}

// execTime converts the replay into the wall-clock execution-time model at
// the compressed replay rate.
func (r replayStats) execTime() float64 {
	return executionTime(int64(float64(r.instr)/pressure), r.accesses, r.meanLatNs)
}

// replayController drives a mixed CloudSuite trace through a bare
// controller with the given geometry and mapping policy.
//
// rankInterleave=true models the conventional address mapping (consecutive
// segments rotate over channels and ranks); false models DTL's
// channel-only interleaving where traffic packs into the lowest ranks.
// pressure compresses the replay's arrival pacing, emulating the paper's
// §5.2 adjustment of the trace replay rate to reach >30 GB/s of memory
// bandwidth at a comparable fraction of peak ("higher than the 95th percentile of memory bandwidth
// utilization in datacenters").
const pressure = 2.0

// rt, when non-nil, samples the controller's registry metrics over the
// replay's virtual clock (the caller finishes it with the returned endTime).
func replayController(g dram.Geometry, rankInterleave bool, linkLat sim.Time,
	profiles []trace.Profile, n int, seed int64, rt *runTelemetry) replayStats {

	dev := dram.MustDevice(g, dram.DefaultPowerModel(), dram.DefaultTiming())
	ctrl := memctrl.New(dev)
	codec := dev.Codec()
	if rt != nil {
		ctrl.RegisterMetrics(rt.reg)
	}

	mix := trace.MustMixed(profiles, seed)
	if mix.TotalFootprint() > g.TotalBytes() {
		panic(fmt.Sprintf("experiments: footprint %d exceeds device %d", mix.TotalFootprint(), g.TotalBytes()))
	}

	segBytes := g.SegmentBytes
	mapSeg := func(seq int64) dram.DSN {
		if rankInterleave {
			return codec.RankInterleavedDSN(seq)
		}
		return dram.DSN(seq) // natural order: channel-interleaved, rank-high
	}

	var latSum float64
	var rowHits int64
	var accesses int64
	var endTime sim.Time
	for i := 0; i < n; i++ {
		a := mix.Next()
		seq := a.Addr / segBytes
		dpa := codec.Compose(mapSeg(seq), a.Addr%segBytes)
		arrive := sim.Time(float64(a.Instr) * 0.5 / pressure) // 2 GHz, IPC 1, rate-adjusted
		res := ctrl.Access(memctrl.Request{Addr: dpa, Write: a.Write, Arrive: arrive})
		latSum += float64(res.Done-arrive) + float64(linkLat)
		if res.RowHit {
			rowHits++
		}
		accesses++
		endTime = arrive
		rt.tick(arrive)
	}

	// The merged instruction clock advances at the aggregate rate; recover
	// total instructions from the final access's stamp.
	return replayStats{
		accesses:    accesses,
		instr:       lastInstr(mix),
		meanLatNs:   latSum / float64(accesses),
		rowHitRatio: float64(rowHits) / float64(accesses),
		endTime:     endTime,
	}
}

func lastInstr(m *trace.Mixed) int64 {
	// Peek by generating one more access; its stamp bounds the total.
	return m.Next().Instr
}

// fig2Profiles returns the ten CloudSuite profiles with footprints shrunk
// to fit the smallest swept configuration.
func fig2Profiles(quick bool) []trace.Profile {
	ps := trace.CloudSuite()
	// Size the combined allocation to span more than one rank per channel
	// under the channel-only mapping (as the paper's 64 GB working set
	// does), while fitting the smallest swept configuration.
	foot := int64(16 << 30) // 16 GB each: 160 GB total, 40 GB per channel
	if quick {
		foot = 4 << 30
	}
	for i := range ps {
		ps[i].FootprintBytes = foot
	}
	return ps
}
