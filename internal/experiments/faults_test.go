package experiments

import (
	"strings"
	"testing"
)

// TestFaultsChaosSmoke is the seeded chaos run of the reliability loop: one
// rank storms with correctable errors, another dies outright, and the run
// must end with the stormed/killed ranks retired and zero data loss (the
// end-of-run probe reads every live VM address). Quick-scale so CI can run
// it under -race.
func TestFaultsChaosSmoke(t *testing.T) {
	var b strings.Builder
	opts := quickOpts()
	opts.Out = &b
	res := Faults(opts)

	if res.Metrics["probe_failures"] != 0 {
		t.Fatalf("probe_failures = %v, want 0 (data loss)", res.Metrics["probe_failures"])
	}
	if res.Metrics["ranks_retired"] < 1 {
		t.Fatalf("ranks_retired = %v, want >= 1", res.Metrics["ranks_retired"])
	}
	if res.Metrics["storms_detected"] < 1 {
		t.Fatalf("storms_detected = %v, want >= 1", res.Metrics["storms_detected"])
	}
	if res.Metrics["ranks_auto_retired"] < 1 {
		t.Fatalf("ranks_auto_retired = %v, want >= 1", res.Metrics["ranks_auto_retired"])
	}
	if !strings.Contains(b.String(), "zero data loss") {
		t.Fatal("report missing the zero-data-loss line")
	}
}

// TestFaultsDeterministic: same seed, same injected fault counts and same
// reliability response.
func TestFaultsDeterministic(t *testing.T) {
	a := Faults(quickOpts())
	b := Faults(quickOpts())
	for _, k := range []string{"storms_detected", "ranks_retired", "vms_shed", "probe_failures"} {
		if a.Metrics[k] != b.Metrics[k] {
			t.Fatalf("%s diverged across identical runs: %v vs %v", k, a.Metrics[k], b.Metrics[k])
		}
	}
}

// TestFig12UnchangedWithoutFaultSpec: with no -faults spec, the schedule
// experiment must not tick the fault machinery (shedding, probes, scrub),
// keeping the baseline results and the access-path benchmark comparable to
// the seed.
func TestFig12UnchangedWithoutFaultSpec(t *testing.T) {
	res := Fig12(quickOpts())
	for _, k := range []string{"vms_shed", "probe_failures"} {
		if v, ok := res.Metrics[k]; ok && v != 0 {
			t.Fatalf("%s = %v on a fault-free run", k, v)
		}
	}
	if res.Metrics["energy_saving_pct"] == 0 && res.Metrics["energy_saving"] == 0 {
		t.Fatal("fig12 lost its energy-saving result")
	}
}
