package experiments

import (
	"context"
	"testing"
	"time"
)

// TestRunAllCanceledBeforeStart: a context that is already done skips every
// runner and marks each Result canceled, in both serial and parallel modes.
func TestRunAllCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runners := runnersByID(t, "fig12", "table2", "fig6")
	for _, workers := range []int{1, 3} {
		o := quickOpts()
		o.Ctx = ctx
		results := RunAll(runners, o, workers)
		if len(results) != len(runners) {
			t.Fatalf("workers=%d: got %d results", workers, len(results))
		}
		for i, r := range results {
			if !r.Canceled || r.Err == "" {
				t.Fatalf("workers=%d: result %d not canceled: %+v", workers, i, r)
			}
			if r.ID != runners[i].ID {
				t.Fatalf("workers=%d: result %d id %q, want %q", workers, i, r.ID, runners[i].ID)
			}
		}
	}
}

// TestRunCanceledMidSchedule: a deadline expiring during the 6-hour schedule
// loop abandons the run promptly instead of finishing it.
func TestRunCanceledMidSchedule(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	o := quickOpts()
	o.Ctx = ctx
	r, _ := ByID("fig12")
	start := time.Now()
	res := runRunner(r, o)
	if !res.Canceled {
		t.Fatalf("fig12 under a canceled context completed: %+v", res)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt abandonment", d)
	}
}

// TestRunTimeoutMidReplay: a deadline expiring inside fig14's replay loop is
// honored at the polling cadence.
func TestRunTimeoutMidReplay(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	o := quickOpts()
	o.Ctx = ctx
	r, _ := ByID("fig14")
	res := runRunner(r, o)
	if !res.Canceled {
		t.Fatalf("fig14 under a 10ms deadline completed: %+v", res)
	}
}
