package experiments

import (
	"bytes"
	"sync"
)

// Parallel execution. Every experiment builds its own DTL, engine, and trace
// generators from the Options it is handed and touches no package-level
// mutable state, so independent experiments (and independent sweep points
// inside one experiment) can run on separate goroutines. Determinism is
// preserved by construction: each run sees exactly the Options a serial run
// would see (same seed, same scale), writes into a private buffer, and the
// buffers are flushed in presentation order — byte-identical to a serial run.

// RunAll executes runners against opts, fanning out across at most parallel
// workers. With parallel <= 1 it degenerates to the plain serial loop,
// writing directly to opts.Out. In parallel mode each experiment's report
// goes to a private buffer; buffers are concatenated in runner order once
// every experiment finished, and the Result slice is indexed by runner order
// regardless of completion order.
//
// Shared single-file sinks (TracePath, MetricsPath) are cleared when more
// than one experiment runs in parallel: several experiments writing one file
// concurrently would interleave, whereas CSVDir stays enabled because every
// experiment writes distinctly-named series files.
func RunAll(runners []Runner, opts Options, parallel int) []Result {
	results := make([]Result, len(runners))
	if parallel > len(runners) {
		parallel = len(runners)
	}
	if parallel <= 1 || len(runners) <= 1 {
		for i, r := range runners {
			o := opts
			o.watchExperiment = r.ID
			results[i] = runRunner(r, o)
		}
		return results
	}

	// Watch joins the single-file sinks here: interleaved snapshots from
	// concurrent experiments would make the dashboard meaningless. The
	// ledger is a single shared file too.
	opts.TracePath = ""
	opts.MetricsPath = ""
	opts.LedgerPath = ""
	opts.Watch = nil

	bufs := make([]*bytes.Buffer, len(runners))
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				o := opts
				o.Out = bufs[i]
				o.watchExperiment = runners[i].ID
				results[i] = runRunner(runners[i], o)
			}
		}()
	}
	for i := range runners {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	out := opts.out()
	for _, b := range bufs {
		out.Write(b.Bytes())
	}
	return results
}

// runRunner executes one experiment, converting the cancellation panic
// raised by Options.checkCanceled inside a run loop into a canceled Result.
// When the context is already done the run is skipped outright. Any other
// panic is a real bug and propagates.
func runRunner(r Runner, o Options) (res Result) {
	if o.Ctx != nil {
		if err := o.Ctx.Err(); err != nil {
			return canceledResult(r, err)
		}
		defer func() {
			if rec := recover(); rec != nil {
				cp, ok := rec.(canceledPanic)
				if !ok {
					panic(rec)
				}
				res = canceledResult(r, cp.err)
			}
		}()
	}
	return r.Run(o)
}

func canceledResult(r Runner, err error) Result {
	return Result{ID: r.ID, Title: r.Name, Canceled: true, Err: err.Error(),
		Metrics: map[string]float64{}}
}

// sweepPoints maps fn over points with at most parallel concurrent workers,
// returning results indexed like points. It is the fan-out primitive for
// ablation sweeps: each point builds its own device, so points only need
// their Options to be private. parallel <= 1 runs serially in place.
func sweepPoints[P, R any](points []P, parallel int, fn func(P) R) []R {
	results := make([]R, len(points))
	if parallel > len(points) {
		parallel = len(points)
	}
	if parallel <= 1 || len(points) <= 1 {
		for i, p := range points {
			results[i] = fn(p)
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = fn(points[i])
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
