package experiments

import (
	"fmt"

	"dtl/internal/metrics"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
	"dtl/internal/vmtrace"
)

// Fig1 reproduces the Azure VM-trace memory profiling: 400 VMs scheduled
// for six hours on a 48-vCPU / 384 GB server, showing average memory
// capacity usage below 50%.
func Fig1(o Options) Result {
	res := newResult("Fig1", "Azure VM memory usage over 6 hours",
		"average memory capacity usage is less than 50% of the 384GB server")
	w := o.out()
	res.header(w)

	cfg := vmtrace.DefaultGenConfig()
	cfg.Seed = o.Seed
	cfg.NumVMs = o.scaled(400, 120)
	vms := vmtrace.Generate(cfg)
	srv := vmtrace.DefaultServer()
	_, snaps, err := vmtrace.Schedule(vms, srv, cfg.Horizon)
	if err != nil {
		panic(err)
	}

	// -metrics replays the snapshot series through sampled schedule gauges,
	// so fig1 shares the registry-CSV output path of the device experiments.
	reg := telemetry.NewRegistry()
	activeVMs := reg.Gauge("fig1.active_vms")
	vcpusUsed := reg.Gauge("fig1.vcpus_used")
	memBytes := reg.Gauge("fig1.mem_bytes")
	memUtil := reg.Gauge("fig1.mem_util")
	rt := o.telemetryForRegistry(reg, vmtrace.Interval, cfg.Horizon)
	for _, s := range snaps {
		activeVMs.Set(float64(s.ActiveVMs))
		vcpusUsed.Set(float64(s.UsedVCPUs))
		memBytes.Set(float64(s.UsedMem))
		memUtil.Set(float64(s.UsedMem) / float64(srv.MemBytes))
		rt.tick(s.At)
	}
	if err := rt.finish(cfg.Horizon); err != nil {
		panic(err)
	}

	if f := o.csvFile("fig1_timeline"); f != nil {
		fmt.Fprintln(f, "minute,active_vms,vcpus_used,mem_bytes,mem_util")
		for _, s := range snaps {
			fmt.Fprintf(f, "%d,%d,%d,%d,%.4f\n", int64(s.At/sim.Minute),
				s.ActiveVMs, s.UsedVCPUs, s.UsedMem, float64(s.UsedMem)/float64(srv.MemBytes))
		}
		f.Close()
	}

	tab := metrics.NewTable("time", "active VMs", "vCPUs used", "memory used", "mem util")
	for i, s := range snaps {
		if i%6 != 0 { // print one row per 30 minutes
			continue
		}
		tab.AddRowf("%dmin\t%d\t%d/%d\t%.1fGB\t%s",
			int64(s.At/sim.Minute), s.ActiveVMs, s.UsedVCPUs, srv.VCPUs,
			float64(s.UsedMem)/(1<<30), pct(float64(s.UsedMem)/float64(srv.MemBytes)))
	}
	tab.Render(w)

	mean := vmtrace.MeanMemUtilization(snaps, srv)
	peak := vmtrace.PeakMemUtilization(snaps, srv)
	fmt.Fprintf(w, "\nmean utilization %s, peak %s over %d snapshots\n",
		pct(mean), pct(peak), len(snaps))

	res.Metrics["mean_mem_utilization"] = mean
	res.Metrics["peak_mem_utilization"] = peak
	res.footer(w)
	return res
}
