package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// rackOpts is the quick 4-expander pack configuration the rack tests share:
// pack is the leg that exercises every fabric mechanism (cross-expander
// accesses, consolidation copies, parking).
func rackOpts() Options {
	o := quickOpts()
	o.Rack = 4
	o.Fabric = "policy=pack"
	return o
}

// TestRackPackBeatsSpread is the experiment's headline claim, the same gate
// the rack-smoke CI job asserts: on the identical arrival curve, packing VMs
// onto few expanders (parking the rest) spends no more energy than spreading
// them, and the cross-expander traffic it pays for that is actually priced
// (nonzero fabric stall and copy bytes).
func TestRackPackBeatsSpread(t *testing.T) {
	res := Rack(rackOpts())
	pack, spread := res.Metrics["energy_proxy_pack"], res.Metrics["energy_proxy_spread"]
	if pack <= 0 || spread <= 0 {
		t.Fatalf("degenerate energy proxies: pack %g, spread %g", pack, spread)
	}
	if pack > spread {
		t.Fatalf("pack energy proxy %g exceeds spread %g", pack, spread)
	}
	if res.Metrics["cross_access_share"] == 0 {
		t.Error("pack leg saw no cross-expander accesses; the fabric price is not being exercised")
	}
	if res.Metrics["fabric_bytes"] == 0 || res.Metrics["rack_migrations"] == 0 {
		t.Errorf("no consolidation traffic: fabric_bytes %g, rack_migrations %g",
			res.Metrics["fabric_bytes"], res.Metrics["rack_migrations"])
	}
}

// TestRackLedgerConservation extends the ledger identities to the fabric
// causes: attributed foreground latency (the four access-path causes plus
// fabric-stall) must equal the experiment's own summed access latency
// exactly, and total ledger energy must equal residency energy plus
// migration energy over BOTH copy paths — intra-expander drains and
// inter-expander fabric copies — within 1e-9 relative.
func TestRackLedgerConservation(t *testing.T) {
	dir := t.TempDir()
	o := rackOpts()
	o.TracePath = filepath.Join(dir, "t.json")
	o.LedgerPath = filepath.Join(dir, "ledger.json")

	res := Rack(o)
	snap := parseLedgerFile(t, o.LedgerPath)
	m := causeTotals(snap)

	if m["fabric-stall"].LatNs == 0 {
		t.Error("no fabric-stall latency: packed VMs should pay the switch on every probe")
	}
	if m["fabric-copy"].Energy == 0 {
		t.Error("no fabric-copy energy: consolidation should move bytes over the link")
	}
	if m["fabric-stall"].Energy != 0 {
		t.Errorf("fabric-stall carries energy %g; the stall is time-only by design", m["fabric-stall"].Energy)
	}

	got := foregroundLatNs(m) + m["fabric-stall"].LatNs
	if want := int64(res.Metrics["foreground_lat_ns"]); got != want {
		t.Fatalf("attributed foreground+fabric latency %d ns != experiment latency %d ns", got, want)
	}

	s := summarizeTraceFile(t, o.TracePath)
	wantEnergy := 1000*s.EnergyProxy(nil) +
		activePowerPerGBs*(res.Metrics["bytes_migrated"]+res.Metrics["fabric_bytes"])
	if !relClose(snap.TotalEnergy, wantEnergy, 1e-9) {
		t.Fatalf("ledger energy %g != residency+migration+fabric energy %g", snap.TotalEnergy, wantEnergy)
	}
}

// TestRackArtifactsDeterministic re-runs the identical rack configuration
// and demands byte-identical report, trace, and ledger artifacts — the
// repo-wide determinism invariant extended to the fabric composition. The
// Parallel knob must also be inert (the rack loop is serial by design).
func TestRackArtifactsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick rack runs")
	}
	run := func(parallel int) (report, trace, ledger []byte) {
		dir := t.TempDir()
		var buf bytes.Buffer
		o := rackOpts()
		o.Out = &buf
		o.Parallel = parallel
		o.TracePath = filepath.Join(dir, "t.json")
		o.LedgerPath = filepath.Join(dir, "ledger.json")
		Rack(o)
		tr, err := os.ReadFile(o.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		led, err := os.ReadFile(o.LedgerPath)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), tr, led
	}
	r1, t1, l1 := run(1)
	r2, t2, l2 := run(4)
	if !bytes.Equal(r1, r2) {
		t.Error("re-run produced a different report")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("re-run produced a different trace artifact")
	}
	if !bytes.Equal(l1, l2) {
		t.Error("re-run produced a different ledger artifact")
	}
}

// TestRackUnderFaults aims an expander-scoped kill at the pack policy's
// working set and requires the rack to absorb it with zero data loss: the
// grammar's xN/ scope must land the fault on expander 0 only, and every
// surviving VM must remain readable wherever the allocator put it.
func TestRackUnderFaults(t *testing.T) {
	o := rackOpts()
	o.FaultSpec = "seed=1;kill:x0/ch0/rk0:at=2h;storm:x1/ch1/rk2:at=90m,rate=2000,dur=60s"
	res := Rack(o)
	if res.Metrics["probe_failures"] != 0 {
		t.Fatalf("data loss: %g probe reads failed", res.Metrics["probe_failures"])
	}
	if res.Metrics["ranks_retired"] == 0 {
		t.Error("the killed rank never retired")
	}
	if pack, spread := res.Metrics["energy_proxy_pack"], res.Metrics["energy_proxy_spread"]; pack > spread {
		t.Errorf("pack energy proxy %g exceeds spread %g under faults", pack, spread)
	}
}
