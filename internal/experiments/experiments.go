// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulated substrate. Each runner prints the
// same rows/series the paper reports and returns the headline numbers so
// tests and EXPERIMENTS.md can compare shapes against the paper's claims.
//
// Absolute numbers differ from the paper (the substrate is a simulator, not
// the authors' Xeon testbed); the reproduced quantities are the shapes: who
// wins, by roughly what factor, and where behavior changes regime.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// Options control experiment scale.
type Options struct {
	// Quick shrinks trace lengths and device sizes for smoke tests and
	// benchmarks; full runs reproduce the paper-scale sweeps.
	Quick bool
	// Seed drives every random choice; fixed default for reproducibility.
	Seed int64
	// Out receives the human-readable report; nil discards it.
	Out io.Writer
	// CSVDir, when non-empty, receives plot-ready CSV series for the
	// experiments that produce them (fig1 timeline, fig9 distributions,
	// fig12 power timeline, fig14 savings).
	CSVDir string
	// TracePath, when non-empty, receives a Chrome trace_event JSON file
	// (open in Perfetto / chrome://tracing) of the run's per-rank power
	// timeline and structured events. Honored by the experiments that drive
	// a DTL device: fig12/fig13 (power-down schedule), fig14 (headline
	// self-refresh configuration), and fig9 (which then also replays its
	// mix through a DTL to capture the SMC behavior behind the strides).
	TracePath string
	// TraceFormat selects the TracePath encoding: FormatChrome (the default)
	// collects the run in the tracer's ring and writes one trace_event JSON
	// document at finish; FormatJSONL and FormatCSV stream every record to the
	// file as the run progresses, so long runs are not bounded by the ring
	// capacity and a killed run still leaves a complete prefix on disk.
	TraceFormat telemetry.TraceFormat
	// MetricsPath, when non-empty, receives the sampled metrics registry as
	// CSV (one row per sample, one column per metric).
	MetricsPath string
	// LedgerPath, when non-empty, receives the attribution cost ledger as
	// JSON (telemetry.LedgerSnapshot): every nanosecond of added latency
	// and every unit of the energy proxy charged to a (vm, rank, cause)
	// triple. Honored by the same experiments that honor TracePath; the
	// ledger is also attached (and dumped into the trace at finish)
	// whenever a trace or watch channel is active.
	LedgerPath string
	// Watch, when non-nil, receives periodic WatchSnapshots from experiments
	// that drive a DTL device, at the metrics sampling cadence. Create it
	// with capacity 1: the publisher coalesces (replaces a stale undelivered
	// snapshot) instead of blocking, so watching never perturbs the run. The
	// caller owns the channel and must keep draining it until the runner
	// returns; experiments never close it.
	Watch chan WatchSnapshot
	// SamplePeriod is the virtual-time metrics sampling period; 0 picks a
	// per-experiment default matched to the run's horizon.
	SamplePeriod sim.Time
	// FaultSpec, when non-empty, attaches a deterministic fault-injection
	// process (internal/fault grammar) to the experiments that drive a DTL
	// device over the 6-hour schedule (fig12/fig13/faults). Allocation
	// failures under injected faults shed load instead of aborting the run.
	FaultSpec string
	// Parallel bounds the worker fan-out inside sweep experiments (each
	// sweep point builds an independent device); <= 1 runs points serially.
	// Results and report bytes are identical either way.
	Parallel int
	// Shards shards the controller replays inside an experiment by channel
	// on a sim.ShardedEngine (per-channel event heaps and clocks meeting at
	// sampling barriers); <= 1 replays serially. The DTL-driven experiments
	// (fig9's replay, the 6-hour schedule loops, faults, amat) keep the
	// serial engine regardless — core.DTL models a single in-order
	// translation datapath — so for them Shards is a documented no-op.
	// Results and artifact bytes are identical at every setting, and Shards
	// composes with Parallel (shards split one experiment's channels;
	// Parallel fans out across experiments and sweep points).
	Shards int
	// Rack is the expander count for the rack experiment: N independent
	// DTL devices composed behind a simulated CXL fabric. 0 picks the
	// default rack size (4); other experiments ignore it.
	Rack int
	// Fabric is the rack fabric cost model and placement policy, the
	// `dtlsim -fabric` grammar (rack.ParseFabric): semicolon-separated
	// key=value terms over hop (per-switch-hop latency), gbs (shared link
	// bandwidth) and policy (spread|pack). Empty picks rack defaults.
	// Only the rack experiment honors it.
	Fabric string
	// Policy carries power-policy overrides for A/B runs compared with
	// `dtlstat diff`: the free-rank-group reserve for the power-down
	// schedule experiments, and the profiling window/threshold and
	// self-refresh enter policy for the hotness engine. It is the parsed
	// form of `dtlsim -policy` and of a served job's `policy` field
	// (ParsePolicy documents the grammar).
	Policy Policy
	// Ctx, when non-nil, bounds the run: the long schedule- and
	// replay-driven experiments poll it at their natural cadence and
	// abandon the run once it is done. RunAll converts the abandonment
	// into a Result with Canceled set rather than letting it propagate as
	// a panic. A nil Ctx (the default) costs nothing.
	Ctx context.Context

	// watchExperiment labels Watch snapshots with the runner id; stamped by
	// RunAll so single-runner invocations need no wiring.
	watchExperiment string
}

// canceledPanic carries the context error from an experiment's run loop up
// to RunAll, which turns it into a canceled Result.
type canceledPanic struct{ err error }

// checkCanceled aborts the run (via panic, recovered in RunAll) when the
// run's context is done. Experiments with long loops call it at their
// natural polling cadence; with a nil Ctx it is a no-op.
func (o Options) checkCanceled() {
	if o.Ctx == nil {
		return
	}
	select {
	case <-o.Ctx.Done():
		panic(canceledPanic{o.Ctx.Err()})
	default:
	}
}

// DefaultOptions returns full-scale deterministic options writing to w.
func DefaultOptions(w io.Writer) Options { return Options{Seed: 1, Out: w} }

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// scaled picks between a full and quick value.
func (o Options) scaled(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Result is the machine-readable outcome of one experiment.
type Result struct {
	ID         string
	Title      string
	PaperClaim string
	// Metrics holds the headline numbers keyed by a short name.
	Metrics map[string]float64
	// Canceled marks a run abandoned because Options.Ctx was done before it
	// finished; Err carries the context error. Metrics of a canceled run
	// are empty.
	Canceled bool   `json:"Canceled,omitempty"`
	Err      string `json:"Err,omitempty"`
}

func newResult(id, title, claim string) Result {
	return Result{ID: id, Title: title, PaperClaim: claim, Metrics: map[string]float64{}}
}

// header prints the standard experiment banner.
func (r Result) header(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", r.ID, r.Title)
	fmt.Fprintf(w, "paper: %s\n\n", r.PaperClaim)
}

// footer prints the metric summary.
func (r Result) footer(w io.Writer) {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "measured %-32s %.4g\n", k, r.Metrics[k])
	}
}

// Runner is a registered experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Options) Result
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"fig1", "Azure VM memory usage over 6 hours", Fig1},
		{"fig2", "Performance vs active ranks per channel", Fig2},
		{"fig5", "Rank-interleaving cost, local vs CXL latency", Fig5},
		{"fig6", "DPA bit mapping for the 1TB device", Fig6},
		{"fig9", "Post-cache memory access stride distribution", Fig9},
		{"fig10", "Segment size vs cold-segment share", Fig10},
		{"fig11", "DRAM background and active power model", Fig11},
		{"fig12", "Rank-level power-down over the 6-hour schedule", Fig12},
		{"fig13", "DRAM power breakdown", Fig13},
		{"fig14", "Hotness-aware self-refresh savings", Fig14},
		{"fig15", "Total energy savings, both techniques", Fig15},
		{"table2", "Normalized power per DRAM state", Table2},
		{"table4", "Memory accesses per kilo-instruction", Table4},
		{"table5", "Metadata structure sizes, 384GB vs 4TB", Table5},
		{"table6", "Controller power and area at 7nm", Table6},
		{"amat", "CXL access latency with DTL translation (§6.1)", AMAT},
		{"abl-segsize", "Ablation: segment size (§4.1)", AblationSegmentSize},
		{"abl-smc", "Ablation: segment mapping cache sizing (§3.2)", AblationSMC},
		{"abl-threshold", "Ablation: profiling idle threshold (§3.4)", AblationProfilingThreshold},
		{"abl-tsp", "Ablation: TSP walk budget (§3.4)", AblationTSPTimeout},
		{"abl-rankgroup", "Ablation: rank-group vs per-rank power-down (§3.3)", AblationRankGroup},
		{"faults", "Reliability loop under injected ECC storms and rank failure", Faults},
		{"rack", "Rack-scale fabric: pack vs spread placement over N expanders", Rack},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// executionTime converts a replayed trace into wall-clock terms: a fixed
// per-instruction pipeline cost plus exposed memory latency per post-cache
// access. The paper's CloudSuite mixes are moderately memory-bound; 0.5 ns
// per instruction (2 GHz, IPC 1) is the reference point.
func executionTime(instructions int64, accesses int64, meanLatNs float64) float64 {
	const nsPerInstr = 0.5
	return float64(instructions)*nsPerInstr + float64(accesses)*meanLatNs
}

// csvFile opens <CSVDir>/<name>.csv for a series dump, or returns nil when
// CSV export is off. Callers must Close the returned file.
func (o Options) csvFile(name string) *os.File {
	if o.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.CSVDir, 0o755); err != nil {
		return nil
	}
	f, err := os.Create(filepath.Join(o.CSVDir, name+".csv"))
	if err != nil {
		return nil
	}
	return f
}

// pct formats a ratio as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// nsT converts a float of nanoseconds for printing.
func nsT(ns float64) string { return fmt.Sprintf("%.1fns", ns) }
