package experiments

import (
	"fmt"

	"dtl/internal/core"
	"dtl/internal/cxl"
	"dtl/internal/dram"
	"dtl/internal/metrics"
	"dtl/internal/sim"
	"dtl/internal/trace"
)

// AMAT reproduces the §6.1 latency analysis: DTL raises the 210 ns CXL
// access latency by only ~4.2 ns on average (SMC miss ratios 14.7% L1,
// 15.4% L2), a 0.18% execution-time cost.
func AMAT(o Options) Result {
	res := newResult("AMAT", "CXL memory access latency with DTL (§6.1)",
		"AMAT 214.2ns: +4.2ns over vanilla CXL; L1/L2 SMC miss ratios 14.7%/15.4%")
	w := o.out()
	res.header(w)

	g := dram.Geometry{
		Channels: 4, RanksPerChannel: 8, BanksPerRank: 16,
		SegmentBytes: 2 * dram.MiB, RankBytes: 12 * dram.GiB,
	}
	cfg := core.DefaultConfig(g)
	d, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	port, err := cxl.NewPort(d, cxl.CXLMemoryLatency)
	if err != nil {
		panic(err)
	}

	// Mixed CloudSuite footprint: large enough that the SMC experiences
	// realistic pressure (many more segments than L2 SMC entries).
	allocGiB := int64(o.scaled(32, 16)) // Table 3: 16/32 GB simulated memory
	apps := []string{"data-analytics", "data-caching", "data-serving",
		"graph-analytics", "media-streaming", "web-serving"}
	per := allocGiB / int64(len(apps))
	per -= per % 2
	var profiles []trace.Profile
	var total int64
	for i, app := range apps {
		p, _ := trace.ProfileByName(app)
		size := per
		if i == len(apps)-1 {
			size = allocGiB - total
		}
		p.FootprintBytes = size << 30
		profiles = append(profiles, p)
		total += size
	}
	mix := trace.MustMixed(profiles, o.Seed)

	alloc, err := d.AllocateVM(1, 0, allocGiB<<30, 0)
	if err != nil {
		panic(err)
	}
	base := alloc.AUBases[0]

	n := o.scaled(3_000_000, 300_000)
	var translationSum float64
	now := int64(0)
	for i := 0; i < n; i++ {
		a := mix.Next()
		if _, err := port.Access(base+dram.HPA(a.Addr), a.Write, sim.Time(now)); err != nil {
			panic(err)
		}
		now += 3
	}
	st := d.SMCStats()
	translationSum = float64(d.Stats().TranslationNs) / float64(d.Stats().Accesses)

	m := port.AMAT()
	tab := metrics.NewTable("quantity", "measured", "paper")
	tab.AddRowf("L1 SMC miss ratio\t%s\t14.7%%", pct(st.L1MissRatio()))
	tab.AddRowf("L2 SMC miss ratio\t%s\t15.4%%", pct(st.L2MissRatio()))
	tab.AddRowf("mean translation latency\t%s\t4.2ns", nsT(translationSum))
	tab.AddRowf("analytic translation (Eq.2)\t%s\t4.2ns", nsT(m.Translation()))
	tab.AddRowf("AMAT (Eq.1)\t%s\t214.2ns", nsT(m.AMAT()))
	tab.Render(w)

	execOverhead := m.Translation() / float64(cxl.CXLMemoryLatency)
	fmt.Fprintf(w, "\ntranslation adds %s to the access path (%s of CXL latency; paper: <2%%)\n",
		nsT(m.Translation()), pct(execOverhead))

	res.Metrics["l1_miss_ratio"] = st.L1MissRatio()
	res.Metrics["l2_miss_ratio"] = st.L2MissRatio()
	res.Metrics["translation_ns"] = m.Translation()
	res.Metrics["amat_ns"] = m.AMAT()
	res.footer(w)
	return res
}
