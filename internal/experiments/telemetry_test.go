package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtl/internal/metrics"
	"dtl/internal/telemetry"
	"dtl/internal/trace"
)

func summarizeTraceFile(t *testing.T, path string) *telemetry.TraceSummary {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening trace: %v", err)
	}
	defer f.Close()
	s, err := telemetry.SummarizeChromeTrace(f)
	if err != nil {
		t.Fatalf("parsing trace: %v", err)
	}
	return s
}

// TestFig12TraceSpansPartitionRun is the telemetry acceptance check: the
// Chrome trace written by the fig12 power-down schedule must contain one
// power timeline per global rank whose spans sum exactly to the run
// duration, plus migration spans with computable latency percentiles.
func TestFig12TraceSpansPartitionRun(t *testing.T) {
	dir := t.TempDir()
	o := quickOpts()
	o.TracePath = filepath.Join(dir, "t.json")
	o.MetricsPath = filepath.Join(dir, "m.csv")

	run := runPowerDownSchedule(o)
	s := summarizeTraceFile(t, o.TracePath)

	wantRanks := pdGeometry().TotalRanks()
	if len(s.Residency) != wantRanks {
		t.Fatalf("power timelines for %d ranks, want %d", len(s.Residency), wantRanks)
	}
	horizonUs := float64(run.horizon) / 1e3
	for rank := 0; rank < wantRanks; rank++ {
		got := s.RankDuration(rank)
		if diff := got - horizonUs; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("rank %d (%s): spans sum to %.3f us, want %.3f",
				rank, s.RankNames[rank], got, horizonUs)
		}
	}

	// The schedule powers ranks down, so MPSM residency must appear.
	var mpsmUs float64
	for _, m := range s.Residency {
		mpsmUs += m["mpsm"]
	}
	if mpsmUs <= 0 {
		t.Error("no MPSM residency in a power-down schedule trace")
	}

	if len(s.MigrationsUs) == 0 {
		t.Fatal("no migration spans in trace")
	}
	sum := metrics.Summarize(s.MigrationsUs)
	if !(sum.P50 > 0 && sum.P95 >= sum.P50 && sum.P99 >= sum.P95) {
		t.Errorf("migration latency percentiles not ordered: %+v", sum)
	}
	if s.MigrationReasons["powerdown-drain"] == 0 {
		t.Errorf("drain migrations missing a reason tag: %v", s.MigrationReasons)
	}

	data, err := os.ReadFile(o.MetricsPath)
	if err != nil {
		t.Fatalf("metrics CSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("metrics CSV has %d lines", len(lines))
	}
	for _, col := range []string{"time_ns", "core.powerdown.events", "memctrl.wakeups", "dev.ranks.mpsm"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("metrics header missing %q: %s", col, lines[0])
		}
	}
}

// TestFig9TraceReplay checks the fig9 -trace path: replaying the mix through
// a DTL yields a parseable trace with full-coverage power timelines.
func TestFig9TraceReplay(t *testing.T) {
	dir := t.TempDir()
	o := quickOpts()
	o.TracePath = filepath.Join(dir, "t.json")

	var profiles []trace.Profile
	for _, app := range fig9Apps[:3] {
		p, err := trace.ProfileByName(app)
		if err != nil {
			t.Fatal(err)
		}
		p.FootprintBytes = 64 << 20
		profiles = append(profiles, p)
	}
	fig9TraceReplay(o, profiles, 20_000)

	s := summarizeTraceFile(t, o.TracePath)
	if len(s.Residency) == 0 {
		t.Fatal("no power timelines in fig9 trace")
	}
	d0 := s.RankDuration(0)
	for rank := range s.Residency {
		if got := s.RankDuration(rank); got != d0 {
			t.Errorf("rank %d duration %v != rank 0 duration %v", rank, got, d0)
		}
	}
}

func TestTelemetryDisabledIsNil(t *testing.T) {
	if rt := quickOpts().telemetryFor(nil, 1, 0); rt != nil {
		t.Fatal("telemetryFor without paths should return nil")
	}
	var rt *runTelemetry
	rt.tick(100) // no-ops on nil
	if err := rt.finish(100); err != nil {
		t.Fatalf("nil finish: %v", err)
	}
}
