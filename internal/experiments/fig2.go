package experiments

import (
	"fmt"

	"dtl/internal/cxl"
	"dtl/internal/dram"
	"dtl/internal/metrics"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// Fig2 reproduces the rank-count sensitivity study: CloudSuite on a
// 4-channel system with 8/6/4/2 ranks per channel (rank-interleaved, the
// conventional mapping), constant channel count. The paper measures an
// average 0.7% slowdown for 2 ranks versus 8.
func Fig2(o Options) Result {
	res := newResult("Fig2", "Performance vs active ranks per channel",
		"average 0.7% performance loss for the 2-rank configuration vs 8-rank")
	w := o.out()
	res.header(w)

	n := o.scaled(2_000_000, 150_000)
	profiles := fig2Profiles(o.Quick)

	rankCounts := []int{8, 6, 4, 2}
	tab := metrics.NewTable("ranks/channel", "mean latency", "row-hit ratio", "slowdown vs 8")
	var baseTime float64
	for _, rk := range rankCounts {
		g := dram.Geometry{
			Channels:        4,
			RanksPerChannel: rk,
			BanksPerRank:    16,
			SegmentBytes:    2 * dram.MiB,
			RankBytes:       32 * dram.GiB,
		}
		// -metrics samples the headline 2-rank configuration (the paper's
		// claim compares it against the 8-rank baseline).
		var rt *runTelemetry
		if rk == 2 {
			rt = o.telemetryForRegistry(telemetry.NewRegistry(), 100*sim.Microsecond, 0)
		}
		st := replayController(g, true, cxl.NativeDRAMLatency, profiles, n, o.Seed, rt, o.Shards)
		if err := rt.finish(st.endTime); err != nil {
			panic(err)
		}
		t := st.execTime()
		if rk == 8 {
			baseTime = t
		}
		slow := t/baseTime - 1
		tab.AddRowf("%d\t%s\t%.3f\t%s", rk, nsT(st.meanLatNs), st.rowHitRatio, pct(slow))
		res.Metrics[fmt.Sprintf("slowdown_%dranks", rk)] = slow
	}
	tab.Render(w)
	res.footer(w)
	return res
}
