package experiments

import (
	"bytes"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// runnersByID resolves a list of experiment ids, failing the test on typos.
func runnersByID(t *testing.T, ids ...string) []Runner {
	t.Helper()
	out := make([]Runner, 0, len(ids))
	for _, id := range ids {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		out = append(out, r)
	}
	return out
}

// TestRunAllParallelMatchesSerial is the determinism contract of the
// parallel runner: same Results, byte-identical report, regardless of worker
// count or completion order. The set mixes analytic experiments with ones
// that drive a DTL device so the comparison covers real simulation state.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	ids := []string{"fig6", "table2", "table5", "fig10", "abl-rankgroup", "fig5"}
	runners := runnersByID(t, ids...)

	var serialOut bytes.Buffer
	serial := RunAll(runners, Options{Quick: true, Seed: 1, Out: &serialOut}, 1)

	for _, workers := range []int{2, 4, 16} {
		var parOut bytes.Buffer
		par := RunAll(runners, Options{Quick: true, Seed: 1, Out: &parOut}, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("parallel=%d results differ from serial:\nserial: %+v\nparallel: %+v",
				workers, serial, par)
		}
		if !bytes.Equal(serialOut.Bytes(), parOut.Bytes()) {
			t.Fatalf("parallel=%d report differs from serial run", workers)
		}
	}
}

// TestRunAllOrderAndNilOut checks that results land at their runner's index
// and that a nil Out is tolerated in parallel mode.
func TestRunAllOrderAndNilOut(t *testing.T) {
	runners := runnersByID(t, "table5", "fig6", "table2")
	results := RunAll(runners, Options{Quick: true, Seed: 1}, 3)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range runners {
		if got, ok := ByID(r.ID); !ok || got.ID != r.ID {
			t.Fatalf("runner %d: id lookup broken", i)
		}
	}
	// Result identity: each slot reports the experiment registered there.
	wantTitles := []string{"Table5", "Fig6", "Table2"}
	for i, want := range wantTitles {
		if results[i].ID != want {
			t.Fatalf("slot %d holds %q, want %q", i, results[i].ID, want)
		}
	}
}

// TestSweepPointsBoundedAndOrdered pins the sweep helper: results indexed
// like inputs, concurrency never exceeding the requested bound, all points
// visited exactly once.
func TestSweepPointsBoundedAndOrdered(t *testing.T) {
	points := make([]int, 50)
	for i := range points {
		points[i] = i
	}
	var active, peak int32
	var mu sync.Mutex
	got := sweepPoints(points, 4, func(p int) int {
		n := atomic.AddInt32(&active, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		defer atomic.AddInt32(&active, -1)
		return p * p
	})
	if peak > 4 {
		t.Fatalf("observed %d concurrent workers, bound is 4", peak)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
	// Serial fallback must agree.
	serial := sweepPoints(points, 1, func(p int) int { return p * p })
	if !reflect.DeepEqual(got, serial) {
		t.Fatal("parallel and serial sweeps disagree")
	}
}

// TestAblationSweepParallelMatchesSerial runs a real device-building sweep
// both ways; the table bytes and metrics must match exactly.
func TestAblationSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("device sweep is slow")
	}
	var serialOut, parOut bytes.Buffer
	serial := AblationTSPTimeout(Options{Quick: true, Seed: 1, Out: &serialOut})
	par := AblationTSPTimeout(Options{Quick: true, Seed: 1, Out: &parOut, Parallel: 3})
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("sweep results differ:\nserial: %+v\nparallel: %+v", serial, par)
	}
	if !bytes.Equal(serialOut.Bytes(), parOut.Bytes()) {
		t.Fatal("sweep report bytes differ between serial and parallel")
	}
}
