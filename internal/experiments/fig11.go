package experiments

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/metrics"
)

// Fig11 reproduces the DRAM power model calibration: (a) background power
// versus the number of active ranks per channel, and (b) the near-linear
// scaling of active power with bandwidth utilization.
func Fig11(o Options) Result {
	res := newResult("Fig11", "DRAM background and active power",
		"background power scales with active ranks; active power is linear in bandwidth")
	w := o.out()
	res.header(w)

	pm := dram.DefaultPowerModel()
	g := dram.Default1TB()

	// (a) background power with N active ranks per channel, the rest MPSM,
	// normalized to the 8-rank configuration.
	fmt.Fprintln(w, "(a) normalized background power vs active ranks per channel")
	tabA := metrics.NewTable("active ranks/ch", "background (units)", "normalized")
	full := float64(g.TotalRanks()) * pm.StandbyPower
	for _, n := range []int{8, 6, 4, 2} {
		active := float64(n * g.Channels)
		idle := float64(g.TotalRanks()) - active
		bg := active*pm.StandbyPower + idle*pm.MPSMPower
		tabA.AddRowf("%d\t%.2f\t%.3f", n, bg, bg/full)
		res.Metrics[fmt.Sprintf("bg_norm_%dranks", n)] = bg / full
	}
	tabA.Render(w)

	// (b) active power vs bandwidth; linearity check via endpoints.
	fmt.Fprintln(w, "\n(b) active power vs bandwidth (per device)")
	tabB := metrics.NewTable("bandwidth GB/s", "active power (units)")
	for _, bw := range []float64{0, 5, 10, 15, 20, 25, 30} {
		tabB.AddRowf("%.0f\t%.2f", bw, pm.Active(bw))
	}
	tabB.Render(w)
	linErr := pm.Active(30) - 6*pm.Active(5)
	res.Metrics["active_linearity_residual"] = linErr
	res.footer(w)
	return res
}
