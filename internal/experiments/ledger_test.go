package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dtl/internal/telemetry"
	"dtl/internal/trace"
)

// power.DefaultPower().ActivePowerPerGBs, the slope the migration-energy
// charges use (see DTL.migEnergyPerSeg).
const activePowerPerGBs = 0.55

func parseLedgerFile(t *testing.T, path string) *telemetry.LedgerSnapshot {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening ledger: %v", err)
	}
	defer f.Close()
	snap, err := telemetry.ParseLedgerSnapshot(f)
	if err != nil {
		t.Fatalf("parsing ledger: %v", err)
	}
	return snap
}

func causeTotals(snap *telemetry.LedgerSnapshot) map[string]telemetry.CauseTotal {
	m := map[string]telemetry.CauseTotal{}
	for _, c := range snap.Causes {
		m[c.Cause] = c
	}
	return m
}

// foregroundLatNs sums the four access-path causes; the conservation tests
// compare it against the experiment's own summed access latency.
func foregroundLatNs(m map[string]telemetry.CauseTotal) int64 {
	return m["baseline"].LatNs + m["smc-miss-walk"].LatNs +
		m["self-refresh-wake"].LatNs + m["degraded-read"].LatNs
}

func relClose(got, want, tol float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	if scale == 0 {
		return diff == 0
	}
	return diff <= tol*scale
}

// TestFig9LedgerConservation drives the fig9 trace replay with a ledger and
// checks both conservation identities: attributed foreground latency equals
// the replay's summed access latency exactly, and the ledger's total energy
// equals residency energy (1000 x the trace's EnergyProxy, which is in
// weight-microseconds) plus migration energy, within 1e-9 relative.
func TestFig9LedgerConservation(t *testing.T) {
	dir := t.TempDir()
	o := quickOpts()
	o.TracePath = filepath.Join(dir, "t.json")
	o.LedgerPath = filepath.Join(dir, "ledger.json")

	var profiles []trace.Profile
	for _, app := range fig9Apps[:3] {
		p, err := trace.ProfileByName(app)
		if err != nil {
			t.Fatal(err)
		}
		p.FootprintBytes = 64 << 20
		profiles = append(profiles, p)
	}
	lat, migBytes := fig9TraceReplay(o, profiles, 20_000)

	snap := parseLedgerFile(t, o.LedgerPath)
	m := causeTotals(snap)
	if got := foregroundLatNs(m); got != lat {
		t.Fatalf("attributed foreground latency %d ns != replay latency %d ns", got, lat)
	}
	if m["smc-miss-walk"].LatNs == 0 {
		t.Error("replay attributed no smc-miss-walk latency")
	}

	s := summarizeTraceFile(t, o.TracePath)
	wantEnergy := 1000*s.EnergyProxy(nil) + activePowerPerGBs*float64(migBytes)
	if !relClose(snap.TotalEnergy, wantEnergy, 1e-9) {
		t.Fatalf("ledger energy %g != residency+migration energy %g", snap.TotalEnergy, wantEnergy)
	}
}

// TestFaultsLedgerConservation runs the faults chaos scenario and checks the
// same identities, plus that the reliability causes the CI smoke greps for
// (degraded-read, fault-retry) actually carry cost.
func TestFaultsLedgerConservation(t *testing.T) {
	dir := t.TempDir()
	o := quickOpts()
	o.Out = nil
	o.TracePath = filepath.Join(dir, "t.json")
	o.LedgerPath = filepath.Join(dir, "ledger.json")

	res := Faults(o)
	snap := parseLedgerFile(t, o.LedgerPath)
	m := causeTotals(snap)

	// The degraded-rank and end-of-run probes are the only foreground
	// accesses the schedule issues, so the ledger's foreground latency must
	// equal the probe_lat_ns metric exactly.
	if got, want := foregroundLatNs(m), int64(res.Metrics["probe_lat_ns"]); got != want {
		t.Fatalf("attributed foreground latency %d ns != probe latency %d ns", got, want)
	}
	if m["degraded-read"].LatNs == 0 {
		t.Error("no degraded-read latency: the rank kill should be probed before retirement")
	}
	if m["fault-retry"].LatNs == 0 {
		t.Error("no fault-retry latency: retirement drains and backoffs should be charged")
	}
	if m["demotion-wait"].LatNs == 0 {
		t.Error("no demotion-wait latency: the power-down schedule always drains")
	}

	s := summarizeTraceFile(t, o.TracePath)
	wantEnergy := 1000*s.EnergyProxy(nil) + activePowerPerGBs*res.Metrics["bytes_migrated"]
	if !relClose(snap.TotalEnergy, wantEnergy, 1e-9) {
		t.Fatalf("ledger energy %g != residency+migration energy %g", snap.TotalEnergy, wantEnergy)
	}
}

// TestLedgerArtifactDeterministicAcrossParallel runs the same faults config
// serially and with sweep parallelism and demands byte-identical ledger
// artifacts — the property `dtlstat diff -attr 1e-9` of a repeated run
// relies on. Run under -race this also hunts data races on the charge path.
func TestLedgerArtifactDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick schedule runs")
	}
	run := func(parallel int) []byte {
		dir := t.TempDir()
		o := quickOpts()
		o.Parallel = parallel
		o.LedgerPath = filepath.Join(dir, "ledger.json")
		Faults(o)
		data, err := os.ReadFile(o.LedgerPath)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := run(1)
	par := run(4)
	if !bytes.Equal(serial, par) {
		t.Fatal("serial and parallel runs produced different ledger artifacts")
	}
}
