package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickOpts runs every experiment at reduced scale with a fixed seed.
func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func TestRegistryCompleteAndUnique(t *testing.T) {
	runners := All()
	if len(runners) != 23 {
		t.Fatalf("registered experiments = %d, want 23", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("incomplete runner %q", r.ID)
		}
	}
	if _, ok := ByID("fig12"); !ok {
		t.Fatal("ByID(fig12) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestExperimentsWriteReports(t *testing.T) {
	// Cheap experiments render non-empty reports to the writer.
	for _, id := range []string{"fig1", "fig6", "fig11", "table2", "table5", "table6"} {
		r, _ := ByID(id)
		var b strings.Builder
		opts := quickOpts()
		opts.Out = &b
		res := r.Run(opts)
		if res.ID == "" || len(res.Metrics) == 0 {
			t.Errorf("%s: empty result", id)
		}
		if !strings.Contains(b.String(), "paper:") {
			t.Errorf("%s: report missing paper claim", id)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	res := Fig1(quickOpts())
	mean := res.Metrics["mean_mem_utilization"]
	if mean <= 0 || mean >= 0.5 {
		t.Errorf("mean utilization %.3f, want in (0, 0.5) per the paper", mean)
	}
	if res.Metrics["peak_mem_utilization"] > 1 {
		t.Error("peak utilization above capacity")
	}
}

func TestFig2Shape(t *testing.T) {
	res := Fig2(quickOpts())
	s2 := res.Metrics["slowdown_2ranks"]
	if s2 <= 0 || s2 > 0.05 {
		t.Errorf("2-rank slowdown %.4f, want small positive (paper: 0.007)", s2)
	}
	// Fewer ranks must not be dramatically faster.
	for _, k := range []string{"slowdown_4ranks", "slowdown_6ranks"} {
		if res.Metrics[k] < -0.01 {
			t.Errorf("%s = %.4f, want >= -0.01", k, res.Metrics[k])
		}
		if res.Metrics[k] > s2+0.01 {
			t.Errorf("%s = %.4f exceeds 2-rank slowdown %.4f", k, res.Metrics[k], s2)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	res := Fig5(quickOpts())
	local := res.Metrics["loss_local"]
	cxl := res.Metrics["loss_cxl"]
	if local <= 0 || local > 0.06 {
		t.Errorf("local loss %.4f, want small positive (paper: 0.017)", local)
	}
	if cxl <= 0 || cxl > 0.06 {
		t.Errorf("cxl loss %.4f, want small positive (paper: 0.014)", cxl)
	}
	// The fixed link latency dilutes the relative penalty.
	if cxl >= local {
		t.Errorf("cxl loss %.4f should be below local loss %.4f", cxl, local)
	}
}

func TestFig6Shape(t *testing.T) {
	res := Fig6(quickOpts())
	if res.Metrics["channel_interleaved"] != 1 || res.Metrics["rank_bits_msb"] != 1 {
		t.Fatalf("address layout properties violated: %v", res.Metrics)
	}
}

func TestFig9Shape(t *testing.T) {
	res := Fig9(quickOpts())
	share := res.Metrics["mix8_ge4mb_share"]
	if share < 0.7 || share > 1.0 {
		t.Errorf("mix-8 >=4MB share %.3f, want > 0.7 (paper: 0.893)", share)
	}
}

func TestFig10Shape(t *testing.T) {
	res := Fig10(quickOpts())
	c2 := res.Metrics["cold_2mb_mean"]
	c4 := res.Metrics["cold_4mb_mean"]
	if c2 <= c4 {
		t.Errorf("2MB cold %.3f should exceed 4MB cold %.3f", c2, c4)
	}
	if c2 < 0.2 || c2 > 0.95 {
		t.Errorf("2MB cold share %.3f implausible (paper: 0.615)", c2)
	}
}

func TestFig11Shape(t *testing.T) {
	res := Fig11(quickOpts())
	if res.Metrics["bg_norm_8ranks"] != 1 {
		t.Error("8-rank point should be the unit baseline")
	}
	prev := res.Metrics["bg_norm_8ranks"]
	for _, k := range []string{"bg_norm_6ranks", "bg_norm_4ranks", "bg_norm_2ranks"} {
		if res.Metrics[k] >= prev {
			t.Errorf("%s = %.3f not decreasing", k, res.Metrics[k])
		}
		prev = res.Metrics[k]
	}
	if r := res.Metrics["active_linearity_residual"]; r != 0 {
		t.Errorf("active power nonlinearity %v", r)
	}
}

func TestFig12Shape(t *testing.T) {
	res := Fig12(quickOpts())
	saving := res.Metrics["energy_saving"]
	if saving < 0.1 || saving > 0.9 {
		t.Errorf("energy saving %.3f outside plausible band (paper: 0.316)", saving)
	}
	perf := res.Metrics["perf_overhead"]
	if perf < 0 || perf > 0.05 {
		t.Errorf("perf overhead %.4f, want small positive (paper: 0.016)", perf)
	}
	if res.Metrics["mean_active_ranks"] >= 8 {
		t.Error("power-down never reduced active ranks")
	}
}

func TestFig13Shape(t *testing.T) {
	res := Fig13(quickOpts())
	bg := res.Metrics["background_saving"]
	total := res.Metrics["total_saving"]
	if bg <= 0 || total <= 0 {
		t.Fatalf("savings not positive: bg %.3f total %.3f", bg, total)
	}
	// Active power is unchanged, so total saving must be below background
	// saving (paper: 35.3% vs 32.7%).
	if total >= bg {
		t.Errorf("total saving %.3f should be below background saving %.3f", total, bg)
	}
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("self-refresh replay is slow")
	}
	res := Fig14(quickOpts())
	low := res.Metrics["saving_26gib-5grp"]
	mid := res.Metrics["saving_32gib-5grp"]
	high := res.Metrics["saving_34gib-5grp"]
	eight := res.Metrics["saving_50gib-8grp"]
	if low <= 0 {
		t.Fatalf("lowest-allocation saving %.4f, want positive (paper: 0.203)", low)
	}
	// The paper's degradation with allocation pressure.
	if !(low > mid && mid > high) {
		t.Errorf("savings not degrading with allocation: %.4f, %.4f, %.4f", low, mid, high)
	}
	// The 8-rank configuration recovers savings (paper: 14.9%).
	if eight <= high {
		t.Errorf("8-rank saving %.4f should exceed the saturated 6-rank point %.4f", eight, high)
	}
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("self-refresh replay is slow")
	}
	res := Fig15(quickOpts())
	// Combined savings exceed power-down alone where self-refresh works.
	if res.Metrics["total_26gib-5grp"] <= res.Metrics["pdonly_26gib-5grp"] {
		t.Errorf("combined %.4f not above power-down-only %.4f",
			res.Metrics["total_26gib-5grp"], res.Metrics["pdonly_26gib-5grp"])
	}
	// The 8-rank case has no power-down headroom but positive SR savings.
	if res.Metrics["pdonly_50gib-8grp"] != 0 {
		t.Errorf("8-rank power-down-only saving %.4f, want 0", res.Metrics["pdonly_50gib-8grp"])
	}
	if res.Metrics["total_50gib-8grp"] <= 0 {
		t.Errorf("8-rank combined saving %.4f, want positive", res.Metrics["total_50gib-8grp"])
	}
}

func TestTable2Shape(t *testing.T) {
	res := Table2(quickOpts())
	if res.Metrics["standby"] != 1.0 || res.Metrics["self-refresh"] != 0.2 || res.Metrics["mpsm"] != 0.068 {
		t.Fatalf("table 2 values: %v", res.Metrics)
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache replay is slow")
	}
	res := Table4(quickOpts())
	// Measured MAPKI within 2x of every target, and ordering preserved for
	// the extremes.
	targets := map[string]float64{
		"mapki_web-search": 0.7, "mapki_graph-analytics": 6.5,
		"mapki_data-serving": 4.2, "mapki_django-workload": 0.8,
	}
	for k, want := range targets {
		got := res.Metrics[k]
		if got < want*0.5 || got > want*2 {
			t.Errorf("%s = %.2f, want within 2x of %.1f", k, got, want)
		}
	}
	if res.Metrics["mapki_graph-analytics"] <= res.Metrics["mapki_web-search"] {
		t.Error("MAPKI ordering violated between extremes")
	}
}

func TestTable5Shape(t *testing.T) {
	res := Table5(quickOpts())
	if res.Metrics["sram_4tb_mb"] < 1 || res.Metrics["sram_4tb_mb"] > 20 {
		t.Errorf("4TB SRAM %.2f MB, want single-digit MB (paper: 5.3)", res.Metrics["sram_4tb_mb"])
	}
	if res.Metrics["dram_4tb_mb"] < 5 || res.Metrics["dram_4tb_mb"] > 100 {
		t.Errorf("4TB DRAM %.2f MB, want tens of MB (paper: 22.6)", res.Metrics["dram_4tb_mb"])
	}
	if res.Metrics["capacity_fraction"] > 0.0001 {
		t.Errorf("metadata fraction %.6f too large (paper: 0.000005)", res.Metrics["capacity_fraction"])
	}
}

func TestTable6Shape(t *testing.T) {
	res := Table6(quickOpts())
	if res.Metrics["power_4tb_mw"] <= res.Metrics["power_384gb_mw"] {
		t.Error("4TB controller should cost more power")
	}
	if res.Metrics["power_384gb_mw"] < 10 || res.Metrics["power_384gb_mw"] > 100 {
		t.Errorf("384GB power %.1f mW, want tens of mW (paper: 25.7)", res.Metrics["power_384gb_mw"])
	}
	if res.Metrics["area_4tb_mm2"] > 5 {
		t.Errorf("4TB area %.2f mm2 too large (paper: 1.1)", res.Metrics["area_4tb_mm2"])
	}
}

func TestAMATShape(t *testing.T) {
	if testing.Short() {
		t.Skip("AMAT replay is slow")
	}
	res := AMAT(quickOpts())
	tr := res.Metrics["translation_ns"]
	if tr <= 0 || tr > 21 {
		t.Errorf("translation %.2f ns, want single-digit ns (<10%% of CXL latency; paper: 4.2)", tr)
	}
	amat := res.Metrics["amat_ns"]
	if amat < 210 || amat > 231 {
		t.Errorf("AMAT %.1f ns, want 210 + small overhead (paper: 214.2)", amat)
	}
	if res.Metrics["l1_miss_ratio"] <= 0 || res.Metrics["l1_miss_ratio"] >= 1 {
		t.Error("L1 miss ratio out of range")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	opts := quickOpts()
	opts.CSVDir = dir
	Fig1(opts)
	Fig9(opts)
	for _, name := range []string{"fig1_timeline.csv", "fig9_strides.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 3 {
			t.Fatalf("%s: only %d lines", name, len(lines))
		}
		if !strings.Contains(lines[0], ",") {
			t.Fatalf("%s: header %q not CSV", name, lines[0])
		}
	}
}

func TestCSVDisabledByDefault(t *testing.T) {
	if f := quickOpts().csvFile("anything"); f != nil {
		f.Close()
		t.Fatal("csvFile returned a file without CSVDir")
	}
}

func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation replays are slow")
	}
	seg := AblationSegmentSize(quickOpts())
	if !(seg.Metrics["cold_1mb"] >= seg.Metrics["cold_2mb"] &&
		seg.Metrics["cold_2mb"] >= seg.Metrics["cold_4mb"] &&
		seg.Metrics["cold_4mb"] >= seg.Metrics["cold_8mb"]) {
		t.Errorf("cold share not monotone in segment size: %v", seg.Metrics)
	}
	if seg.Metrics["meta_bytes_1mb"] <= seg.Metrics["meta_bytes_8mb"] {
		t.Error("metadata cost should shrink with segment size")
	}

	smc := AblationSMC(quickOpts())
	if smc.Metrics["translation_ns_16x256"] <= smc.Metrics["translation_ns_256x4096"] {
		t.Errorf("bigger SMC should translate faster: %v", smc.Metrics)
	}

	rg := AblationRankGroup(quickOpts())
	if rg.Metrics["bg_perrank_6free"] > rg.Metrics["bg_group_6free"] {
		t.Error("per-rank power-down cannot cost more background power than rank-group")
	}
}
