package experiments

import (
	"fmt"

	"dtl/internal/cache"
	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/metrics"
	"dtl/internal/trace"
)

// Table2 prints the normalized power of each DRAM power state.
func Table2(o Options) Result {
	res := newResult("Table2", "Normalized power per DRAM state",
		"standby 1.0, self-refresh 0.2, MPSM 0.068")
	w := o.out()
	res.header(w)

	pm := dram.DefaultPowerModel()
	tab := metrics.NewTable("state", "normalized power")
	for _, s := range []dram.PowerState{dram.Standby, dram.SelfRefresh, dram.MPSM} {
		tab.AddRowf("%s\t%.3f", s, pm.Background(s))
		res.Metrics[s.String()] = pm.Background(s)
	}
	tab.Render(w)
	res.footer(w)
	return res
}

// Table4 measures post-cache MAPKI for each workload by filtering the raw
// generator stream through the Table 3 cache hierarchy.
func Table4(o Options) Result {
	res := newResult("Table4", "Memory accesses per kilo-instruction",
		"MAPKI between 0.7 (web-search/-serving) and 6.5 (graph-analytics)")
	w := o.out()
	res.header(w)

	n := o.scaled(2_000_000, 200_000)
	tab := metrics.NewTable("workload", "target MAPKI", "measured MAPKI", "ratio")
	for _, p := range trace.CloudSuite() {
		p.FootprintBytes = 1 << 30
		if o.Quick {
			p.FootprintBytes = 256 << 20
		}
		g := trace.MustGenerator(p, o.Seed)
		h := cache.MustTable3()
		var mem int64
		for i := 0; i < n; i++ {
			a := g.NextRaw()
			mem += int64(len(h.Access(a.Addr, a.Write)))
		}
		measured := float64(mem) / (float64(g.Instr()) / 1000.0)
		tab.AddRowf("%s\t%.1f\t%.2f\t%.2f", p.Name, p.MAPKI, measured, measured/p.MAPKI)
		res.Metrics["mapki_"+p.Name] = measured
	}
	tab.Render(w)
	res.footer(w)
	return res
}

// Table5 prints the metadata structure sizes for the 384 GB and 4 TB
// devices.
func Table5(o Options) Result {
	res := newResult("Table5", "Metadata structure sizes",
		"SRAM grows 0.5MB -> 5.3MB, DRAM structures 1.9MB -> 22.6MB; 0.0005% of capacity")
	w := o.out()
	res.header(w)

	small := core.DefaultConfig(dram.Geometry{
		Channels: 4, RanksPerChannel: 8, BanksPerRank: 16,
		SegmentBytes: 2 * dram.MiB, RankBytes: 12 * dram.GiB, // 384 GiB
	})
	big := core.DefaultConfig(dram.Hypothetical4TB())
	ss, bs := small.Sizes(), big.Sizes()

	tab := metrics.NewTable("structure", "384GB", "4TB")
	row := func(name string, a, b int64) {
		tab.AddRowf("%s\t%s\t%s", name, dram.FormatBytes(a), dram.FormatBytes(b))
	}
	row("L1 segment mapping cache", ss.L1SMCBytes, bs.L1SMCBytes)
	row("L2 segment mapping cache", ss.L2SMCBytes, bs.L2SMCBytes)
	row("host base addr table", ss.HostBaseTableBytes, bs.HostBaseTableBytes)
	row("AU base addr table", ss.AUBaseTableBytes, bs.AUBaseTableBytes)
	row("hot-cold migration table", ss.MigrationTableBytes, bs.MigrationTableBytes)
	row("segment mapping table", ss.SegmentMapTableBytes, bs.SegmentMapTableBytes)
	row("reverse mapping table", ss.ReverseMapTableBytes, bs.ReverseMapTableBytes)
	row("free segment queues", ss.FreeQueueBytes, bs.FreeQueueBytes)
	row("allocated segment queues", ss.AllocQueueBytes, bs.AllocQueueBytes)
	row("free AU queue", ss.FreeAUQueueBytes, bs.FreeAUQueueBytes)
	row("total SRAM", ss.TotalSRAM(), bs.TotalSRAM())
	row("total DRAM", ss.TotalDRAM(), bs.TotalDRAM())
	tab.Render(w)

	frac := float64(bs.TotalDRAM()) / float64(big.Geometry.TotalBytes())
	fmt.Fprintf(w, "\n4TB DRAM-resident metadata is %.5f%% of capacity (paper: 0.0005%%)\n", frac*100)
	res.Metrics["sram_4tb_mb"] = float64(bs.TotalSRAM()) / (1 << 20)
	res.Metrics["dram_4tb_mb"] = float64(bs.TotalDRAM()) / (1 << 20)
	res.Metrics["capacity_fraction"] = frac
	res.footer(w)
	return res
}

// Table6 prints the controller power/area estimate at 7 nm.
func Table6(o Options) Result {
	res := newResult("Table6", "CXL controller power and area at 7nm",
		"25.7mW / 0.165mm2 at 384GB; 36.2mW / 1.1mm2 at 4TB")
	w := o.out()
	res.header(w)

	small := core.DefaultConfig(dram.Geometry{
		Channels: 4, RanksPerChannel: 8, BanksPerRank: 16,
		SegmentBytes: 2 * dram.MiB, RankBytes: 12 * dram.GiB,
	}).Controller(7)
	big := core.DefaultConfig(dram.Hypothetical4TB()).Controller(7)

	tab := metrics.NewTable("component", "power mW (384GB/4TB)", "area mm2 (384GB/4TB)")
	tab.AddRowf("segment mapping cache\t%.1f / %.1f\t%.4f / %.4f",
		small.SMCPowerMW, big.SMCPowerMW, small.SMCAreaMM2, big.SMCAreaMM2)
	tab.AddRowf("SRAM structures\t%.1f / %.1f\t%.3f / %.3f",
		small.SRAMPowerMW, big.SRAMPowerMW, small.SRAMAreaMM2, big.SRAMAreaMM2)
	tab.AddRowf("microprocessor\t%.1f / %.1f\t%.4f / %.4f",
		small.CPUPowerMW, big.CPUPowerMW, small.CPUAreaMM2, big.CPUAreaMM2)
	tab.AddRowf("total\t%.1f / %.1f\t%.3f / %.3f",
		small.TotalPowerMW, big.TotalPowerMW, small.TotalAreaMM2, big.TotalAreaMM2)
	tab.Render(w)

	res.Metrics["power_384gb_mw"] = small.TotalPowerMW
	res.Metrics["power_4tb_mw"] = big.TotalPowerMW
	res.Metrics["area_384gb_mm2"] = small.TotalAreaMM2
	res.Metrics["area_4tb_mm2"] = big.TotalAreaMM2
	res.footer(w)
	return res
}
