package experiments

import (
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/metrics"
)

// Fig6 demonstrates the DPA bit mapping of the 1TB device: rank in the most
// significant position, channel immediately above the 2MB segment offset.
func Fig6(o Options) Result {
	res := newResult("Fig6", "DRAM physical address mapping, 1TB device",
		"rank bits most significant; channels interleaved at segment granularity")
	w := o.out()
	res.header(w)

	g := dram.Default1TB()
	codec := dram.MustCodec(g)
	fmt.Fprintf(w, "geometry: %v\n", g)
	fmt.Fprintf(w, "layout:   | rank(3b) | segment index(14b) | channel(2b) | offset(21b) |\n\n")

	tab := metrics.NewTable("DSN", "channel", "rank", "index", "first DPA")
	for _, s := range []dram.DSN{0, 1, 2, 3, 4, 5, 16384 * 4, 16384 * 8} {
		l := codec.DecodeDSN(s)
		tab.AddRowf("%d\t%d\t%d\t%d\t%#x", s, l.Channel, l.Rank, l.Index, int64(codec.DSNToDPA(s)))
	}
	tab.Render(w)

	// Verify the two structural properties numerically.
	channelRotates := true
	for s := dram.DSN(0); s < 16; s++ {
		if codec.DecodeDSN(s).Channel != int(int64(s)%4) {
			channelRotates = false
		}
	}
	rankHigh := codec.DecodeDSN(0).Rank == 0 &&
		codec.DecodeDSN(dram.DSN(g.SegmentsPerRank()*4)).Rank == 1
	res.Metrics["channel_interleaved"] = boolMetric(channelRotates)
	res.Metrics["rank_bits_msb"] = boolMetric(rankHigh)
	res.footer(w)
	return res
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
