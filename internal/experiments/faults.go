package experiments

import (
	"fmt"

	"dtl/internal/fault"
	"dtl/internal/metrics"
)

// defaultFaultSpec is the chaos scenario the faults experiment runs when the
// caller did not supply one: an ECC storm on a populated rank ninety minutes
// in (2000 correctable errors/s for one minute — far past the health
// monitor's leaky bucket), then a whole-rank failure at the three-hour mark.
// The kill targets ch0/rk0 — under power-down consolidation the first rank
// of a channel always holds live data, so the failure exercises the full
// degraded-serve-then-drain path rather than retiring an empty rank.
func defaultFaultSpec(seed int64) string {
	return fmt.Sprintf("seed=%d;storm:ch1/rk2:at=90m,rate=2000,dur=60s;kill:ch0/rk0:at=3h", seed)
}

// Faults runs the 6-hour power-down schedule under injected faults and
// reports how the reliability loop absorbed them: storms detected, ranks
// auto-retired, migrations re-routed away from dying destinations, VMs shed
// when capacity shrank — and, the headline, zero data loss (every surviving
// VM remains readable) while the energy savings persist.
func Faults(o Options) Result {
	res := newResult("Faults", "Reliability loop under injected ECC storms and rank failure",
		"the conclusion's reliability sketch: degraded ranks retire transparently, no data loss")
	w := o.out()
	res.header(w)

	if o.FaultSpec == "" {
		o.FaultSpec = defaultFaultSpec(o.Seed)
	}
	fmt.Fprintf(w, "fault spec: %s\n\n", o.FaultSpec)
	if _, err := fault.Parse(o.FaultSpec); err != nil {
		panic(err)
	}

	run := runPowerDownSchedule(o)

	fmt.Fprintln(w, "injected:")
	tab := metrics.NewTable("process", "count")
	tab.AddRowf("correctable events\t%d", run.faultStats.CorrectableEvents)
	tab.AddRowf("correctable errors\t%d", run.faultStats.CorrectableErrors)
	tab.AddRowf("uncorrectable errors\t%d", run.faultStats.UncorrectableEvents)
	tab.AddRowf("wake faults armed\t%d", run.faultStats.WakeFaultsArmed)
	tab.AddRowf("rank kills\t%d", run.faultStats.RankKills)
	tab.Render(w)

	fmt.Fprintln(w, "\nreliability loop response:")
	tab = metrics.NewTable("outcome", "count")
	tab.AddRowf("fault events observed\t%.0f", run.health["fault_events"])
	tab.AddRowf("ECC storms detected\t%.0f", run.health["storms"])
	tab.AddRowf("ranks auto-retired\t%.0f", run.health["auto_retires"])
	tab.AddRowf("retirements deferred (capacity)\t%.0f", run.health["retires_deferred"])
	tab.AddRowf("retirement retries\t%.0f", run.health["retire_retries"])
	tab.AddRowf("retirements abandoned\t%.0f", run.health["retires_abandoned"])
	tab.AddRowf("ranks retired (total)\t%d", run.retiredRanks)
	tab.AddRowf("VMs shed (graceful degradation)\t%d", run.shedVMs)
	tab.AddRowf("migration verify failures\t%d", run.migStats.VerifyFailures)
	tab.AddRowf("migration re-routes\t%d", run.migStats.Reroutes)
	tab.AddRowf("migration verify give-ups\t%d", run.migStats.VerifyGiveups)
	tab.AddRowf("degraded-rank health probes\t%d", run.degradedProbes)
	tab.AddRowf("read-probe failures (data loss)\t%d", run.probeFailures)
	tab.Render(w)

	baseTotal := run.baseBGEnergy + run.activeEnergy
	techTotal := run.techBGEnergy + run.activeEnergy + run.migEnergy
	saving := 1 - techTotal/baseTotal
	fmt.Fprintf(w, "\nenergy saving %s despite the failures; %d intervals saw migration activity\n",
		pct(saving), run.migrationSpans)
	if run.probeFailures == 0 {
		fmt.Fprintln(w, "zero data loss: every surviving VM address remained readable")
	} else {
		fmt.Fprintf(w, "DATA LOSS: %d probe reads failed\n", run.probeFailures)
	}

	res.Metrics["storms_detected"] = run.health["storms"]
	res.Metrics["ranks_auto_retired"] = run.health["auto_retires"]
	res.Metrics["ranks_retired"] = float64(run.retiredRanks)
	res.Metrics["vms_shed"] = float64(run.shedVMs)
	res.Metrics["verify_reroutes"] = float64(run.migStats.Reroutes)
	res.Metrics["probe_failures"] = float64(run.probeFailures)
	res.Metrics["degraded_probes"] = float64(run.degradedProbes)
	res.Metrics["probe_lat_ns"] = float64(run.probeLatNs)
	res.Metrics["bytes_migrated"] = float64(run.bytesMigrated)
	res.Metrics["energy_saving"] = saving
	res.footer(w)
	return res
}
