package experiments

import (
	"fmt"
	"strings"

	"dtl/internal/metrics"
	"dtl/internal/trace"
)

// fig9Apps are the 8 CloudSuite benchmarks used for the stride and reuse
// studies (the paper uses the 8 that run to completion under Pin).
var fig9Apps = []string{
	"data-analytics", "data-caching", "data-serving", "django-workload",
	"fb-oss-performance", "graph-analytics", "media-streaming", "web-serving",
}

// Fig9 reproduces the post-cache stride distribution: strides of 4MB or
// more dominate single applications, and dominate even more strongly when
// applications are mixed (89.3% for the 8-application mix).
func Fig9(o Options) Result {
	res := newResult("Fig9", "Memory access stride distribution",
		">=4MB strides dominate; 89.3% of accesses in the 8-app mix")
	w := o.out()
	res.header(w)

	n := o.scaled(400_000, 60_000)
	foot := int64(1 << 30)
	if o.Quick {
		foot = 256 << 20
	}

	header := append([]string{"workload"}, trace.StrideBucketLabels()...)
	tab := metrics.NewTable(header...)
	csv := o.csvFile("fig9_strides")
	if csv != nil {
		fmt.Fprintf(csv, "workload,%s\n", strings.Join(trace.StrideBucketLabels(), ","))
		defer csv.Close()
	}

	addRow := func(name string, dist []float64) {
		cells := []string{name}
		for _, f := range dist {
			cells = append(cells, pct(f))
		}
		tab.AddRow(cells...)
		if csv != nil {
			fmt.Fprintf(csv, "%s", name)
			for _, f := range dist {
				fmt.Fprintf(csv, ",%.4f", f)
			}
			fmt.Fprintln(csv)
		}
	}

	// Single-application traces.
	for _, app := range fig9Apps {
		p, err := trace.ProfileByName(app)
		if err != nil {
			panic(err)
		}
		p.FootprintBytes = foot
		g := trace.MustGenerator(p, o.Seed)
		addRow(app, trace.StrideDistribution(g.Next, n))
	}

	// Mixed trace of all 8 applications.
	var profiles []trace.Profile
	for _, app := range fig9Apps {
		p, _ := trace.ProfileByName(app)
		p.FootprintBytes = foot
		profiles = append(profiles, p)
	}
	mixed := trace.MustMixed(profiles, o.Seed)
	mixDist := trace.StrideDistribution(mixed.Next, n)
	addRow("mix-8", mixDist)
	tab.Render(w)

	last := len(mixDist) - 1
	fmt.Fprintf(w, "\nmix-8 share of >=4MB strides: %s (paper: 89.3%%)\n", pct(mixDist[last]))
	res.Metrics["mix8_ge4mb_share"] = mixDist[last]
	res.footer(w)
	return res
}
