package experiments

import (
	"fmt"
	"strings"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/metrics"
	"dtl/internal/sim"
	"dtl/internal/trace"
)

// fig9Apps are the 8 CloudSuite benchmarks used for the stride and reuse
// studies (the paper uses the 8 that run to completion under Pin).
var fig9Apps = []string{
	"data-analytics", "data-caching", "data-serving", "django-workload",
	"fb-oss-performance", "graph-analytics", "media-streaming", "web-serving",
}

// Fig9 reproduces the post-cache stride distribution: strides of 4MB or
// more dominate single applications, and dominate even more strongly when
// applications are mixed (89.3% for the 8-application mix).
func Fig9(o Options) Result {
	res := newResult("Fig9", "Memory access stride distribution",
		">=4MB strides dominate; 89.3% of accesses in the 8-app mix")
	w := o.out()
	res.header(w)

	n := o.scaled(400_000, 60_000)
	foot := int64(1 << 30)
	if o.Quick {
		foot = 256 << 20
	}

	header := append([]string{"workload"}, trace.StrideBucketLabels()...)
	tab := metrics.NewTable(header...)
	csv := o.csvFile("fig9_strides")
	if csv != nil {
		fmt.Fprintf(csv, "workload,%s\n", strings.Join(trace.StrideBucketLabels(), ","))
		defer csv.Close()
	}

	addRow := func(name string, dist []float64) {
		cells := []string{name}
		for _, f := range dist {
			cells = append(cells, pct(f))
		}
		tab.AddRow(cells...)
		if csv != nil {
			fmt.Fprintf(csv, "%s", name)
			for _, f := range dist {
				fmt.Fprintf(csv, ",%.4f", f)
			}
			fmt.Fprintln(csv)
		}
	}

	// Single-application traces.
	for _, app := range fig9Apps {
		p, err := trace.ProfileByName(app)
		if err != nil {
			panic(err)
		}
		p.FootprintBytes = foot
		g := trace.MustGenerator(p, o.Seed)
		addRow(app, trace.StrideDistribution(g.Next, n))
	}

	// Mixed trace of all 8 applications.
	var profiles []trace.Profile
	for _, app := range fig9Apps {
		p, _ := trace.ProfileByName(app)
		p.FootprintBytes = foot
		profiles = append(profiles, p)
	}
	mixed := trace.MustMixed(profiles, o.Seed)
	mixDist := trace.StrideDistribution(mixed.Next, n)
	addRow("mix-8", mixDist)
	tab.Render(w)

	last := len(mixDist) - 1
	fmt.Fprintf(w, "\nmix-8 share of >=4MB strides: %s (paper: 89.3%%)\n", pct(mixDist[last]))
	res.Metrics["mix8_ge4mb_share"] = mixDist[last]

	if o.TracePath != "" || o.MetricsPath != "" || o.LedgerPath != "" {
		lat, migBytes := fig9TraceReplay(o, profiles, n)
		res.Metrics["replay_lat_ns"] = float64(lat)
		res.Metrics["bytes_migrated"] = float64(migBytes)
	}
	res.footer(w)
	return res
}

// fig9TraceReplay drives the mix-8 trace through an actual DTL device with
// telemetry attached. The stride distribution above comes from the raw
// generators (unchanged by this); a -trace/-metrics/-ledger run additionally
// captures the SMC miss and translation behavior those strides induce on
// the translation layer. It reports the summed access latency and the bytes
// migrated, the ground truths the ledger-conservation tests check against.
func fig9TraceReplay(o Options, profiles []trace.Profile, n int) (int64, int64) {
	var foot int64
	for _, p := range profiles {
		foot += p.FootprintBytes
	}
	g := dram.Geometry{
		Channels: 4, RanksPerChannel: 2, BanksPerRank: 16,
		SegmentBytes: 2 * dram.MiB, RankBytes: 2 * dram.GiB,
	}
	for g.TotalBytes() < foot+(4<<30) {
		g.RankBytes *= 2
	}
	cfg := core.DefaultConfig(g)
	d, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	rt := o.telemetryFor(d, 10*sim.Microsecond, 0)

	alloc, err := d.AllocateVM(1, 0, foot, 0)
	if err != nil {
		panic(err)
	}
	base := alloc.AUBases[0]
	for i := 1; i < len(alloc.AUBases); i++ {
		if alloc.AUBases[i] != alloc.AUBases[i-1]+dram.HPA(cfg.AUBytes) {
			panic("experiments: AU space not contiguous")
		}
	}

	mix := trace.MustMixed(profiles, o.Seed)
	const gapNs = 2 // >30 GB/s of 64 B accesses, as in §5.2
	now := sim.Time(0)
	var totalLat int64
	for i := 0; i < n; i++ {
		a := mix.Next()
		res, err := d.Access(base+dram.HPA(a.Addr), a.Write, now)
		if err != nil {
			panic(err)
		}
		totalLat += int64(res.TotalLat())
		now += gapNs
		rt.tick(now)
	}
	if err := rt.finish(now); err != nil {
		panic(err)
	}
	return totalLat, d.Stats().BytesMigrated
}
