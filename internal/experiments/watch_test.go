package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dtl/internal/telemetry"
)

// TestFig12StreamedJSONLMatchesChromeTrace: the streamed JSONL sink and the
// batch Chrome sink are two encodings of one deterministic run, so their
// summaries must agree exactly — this is the contract `dtlstat read` relies
// on to reproduce the live residency summary from a streamed trace.
func TestFig12StreamedJSONLMatchesChromeTrace(t *testing.T) {
	dir := t.TempDir()

	chromeOpts := quickOpts()
	chromeOpts.TracePath = filepath.Join(dir, "t.json")
	runPowerDownSchedule(chromeOpts)
	chrome := summarizeTraceFile(t, chromeOpts.TracePath)

	jsonlOpts := quickOpts()
	jsonlOpts.TracePath = filepath.Join(dir, "t.jsonl")
	jsonlOpts.TraceFormat = telemetry.FormatJSONL
	runPowerDownSchedule(jsonlOpts)

	f, err := os.Open(jsonlOpts.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jsonl, err := telemetry.SummarizeTrace(f)
	if err != nil {
		t.Fatal(err)
	}

	ranks := chrome.Ranks()
	if got := jsonl.Ranks(); len(got) != len(ranks) {
		t.Fatalf("jsonl has %d ranks, chrome %d", len(got), len(ranks))
	}
	for _, rank := range ranks {
		for _, state := range chrome.States() {
			a, b := chrome.Residency[rank][state], jsonl.Residency[rank][state]
			if a != b {
				t.Errorf("rank %d %s: chrome %v us, jsonl %v us", rank, state, a, b)
			}
		}
		if chrome.RankLabel(rank) != jsonl.RankLabel(rank) {
			t.Errorf("rank %d label: %q vs %q", rank, chrome.RankLabel(rank), jsonl.RankLabel(rank))
		}
	}
	// Point events and migrations: the chrome export reads the tracer's ring
	// and loses the oldest records once the run overflows it; the streamed
	// JSONL kept every record. So the stream must carry at least as many
	// migrations — usually strictly more on this schedule.
	if len(jsonl.MigrationsUs) < len(chrome.MigrationsUs) {
		t.Errorf("streamed trace lost migrations: jsonl %d < chrome %d",
			len(jsonl.MigrationsUs), len(chrome.MigrationsUs))
	}
	// Residency and the energy proxy ride on power spans, which both sinks
	// keep exactly: the diff is zero at the tightest band.
	d := telemetry.DiffSummaries(chrome, jsonl)
	if bad := d.Check(telemetry.DiffTolerance{Share: 1e-9, EnergyFrac: 1e-9}); len(bad) != 0 {
		t.Fatalf("same run, two encodings, nonzero residency diff: %v", bad)
	}
}

// drainWatch collects every snapshot until the channel is closed.
func drainWatch(ch chan WatchSnapshot) (func() []WatchSnapshot, *sync.WaitGroup) {
	var mu sync.Mutex
	var snaps []WatchSnapshot
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := range ch {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		}
	}()
	return func() []WatchSnapshot {
		mu.Lock()
		defer mu.Unlock()
		return snaps
	}, &wg
}

// TestFig12WatchSnapshots: a watched run publishes well-formed snapshots
// (full rank strip, valid states, monotone clock, final Done) and produces a
// byte-identical report to an unwatched run — watching is pure observation.
func TestFig12WatchSnapshots(t *testing.T) {
	var plain bytes.Buffer
	o := quickOpts()
	o.Out = &plain
	runPowerDownSchedule(o)

	var watched bytes.Buffer
	ow := quickOpts()
	ow.Out = &watched
	ow.Watch = make(chan WatchSnapshot, 1)
	collect, wg := drainWatch(ow.Watch)
	run := runPowerDownSchedule(ow)
	close(ow.Watch)
	wg.Wait()

	if !bytes.Equal(plain.Bytes(), watched.Bytes()) {
		t.Fatal("report bytes differ between watched and unwatched runs")
	}

	snaps := collect()
	if len(snaps) == 0 {
		t.Fatal("no watch snapshots published")
	}
	last := snaps[len(snaps)-1]
	if !last.Done {
		t.Fatalf("last snapshot not Done: %+v", last)
	}
	if last.Now != run.horizon || last.Horizon != run.horizon {
		t.Fatalf("final snapshot at %v/%v, want horizon %v", last.Now, last.Horizon, run.horizon)
	}

	wantRanks := pdGeometry().TotalRanks()
	valid := map[string]bool{"standby": true, "self-refresh": true, "mpsm": true, "retired": true}
	var prev WatchSnapshot
	for i, s := range snaps {
		if len(s.Ranks) != wantRanks {
			t.Fatalf("snapshot %d has %d ranks, want %d", i, len(s.Ranks), wantRanks)
		}
		for _, r := range s.Ranks {
			if !valid[r.State] {
				t.Fatalf("snapshot %d rank %s in unknown state %q", i, r.Name, r.State)
			}
		}
		if i > 0 {
			if s.Now < prev.Now {
				t.Fatalf("snapshot clock went backwards: %v after %v", s.Now, prev.Now)
			}
			if s.Migrations < prev.Migrations || s.Faults < prev.Faults {
				t.Fatalf("rolling counters went backwards at snapshot %d", i)
			}
		}
		prev = s
	}
	// The power-down schedule must show some rank leaving standby.
	saw := false
	for _, r := range last.Ranks {
		if r.State == "mpsm" || r.State == "self-refresh" {
			saw = true
		}
	}
	if !saw {
		t.Error("no rank ever left standby in a power-down schedule")
	}
}

// TestFaultsRunMetricsCSVStaysRectangular is the faults-experiment streaming
// contract: ranks retiring mid-run must not disturb the metrics CSV — the
// column set is fixed at header time, every row matches it, and no metric is
// registered late (which Finish would reject).
func TestFaultsRunMetricsCSVStaysRectangular(t *testing.T) {
	dir := t.TempDir()
	o := quickOpts()
	o.MetricsPath = filepath.Join(dir, "m.csv")
	o.FaultSpec = defaultFaultSpec(o.Seed)

	run := runPowerDownSchedule(o)
	if run.retiredRanks == 0 {
		t.Fatal("fault spec retired no ranks; the mid-stream retirement case is untested")
	}

	data, err := os.ReadFile(o.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("metrics CSV has only %d lines", len(lines))
	}
	cols := strings.Count(lines[0], ",")
	for i, l := range lines[1:] {
		if got := strings.Count(l, ","); got != cols {
			t.Fatalf("row %d has %d separators, header has %d:\n%s", i+1, got, cols, l)
		}
	}
	// Retirement shows up as data movement in the fixed columns, not as new
	// columns: the retired-ranks counter was registered at construction.
	if !strings.Contains(lines[0], "core.ranks_retired") {
		t.Fatalf("header missing core.ranks_retired: %s", lines[0])
	}
}
