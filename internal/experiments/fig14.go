package experiments

import (
	"fmt"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/metrics"
	"dtl/internal/sim"
	"dtl/internal/trace"
)

// srGeometry is the self-refresh evaluation device: 64 GiB behind 4
// channels x 8 ranks of 2 GiB — the paper's 384 GB server topology scaled
// down 6x so the time-dilated replay converges through the same warm-up
// process (the paper's takes 10-60 s of wall-clock warm-up; see DESIGN.md).
func srGeometry() dram.Geometry {
	return dram.Geometry{
		Channels:        4,
		RanksPerChannel: 8,
		BanksPerRank:    16,
		SegmentBytes:    2 * dram.MiB,
		RankBytes:       2 * dram.GiB,
	}
}

// srConfig is one Fig. 14 configuration.
type srConfig struct {
	label    string
	allocGiB int64
	// reserve pins the active-rank headroom so the configuration matches
	// the paper's fixed 6-rank / 8-rank setups; 0 means "disable
	// power-down entirely" (the 8-rank case, where capacity demand keeps
	// every rank active).
	reserve int
	// untouched is the workload mix's never-accessed share; the paper's
	// configurations are distinct trace mixes with different cold content.
	untouched float64
	paperNote string
}

// srConfigs mirror the paper's 208/224/240 GB (6-rank) and 304 GB (8-rank)
// points: the allocated/active-capacity ratios match (72%/78%/85% on the
// pinned 5-group configuration vs the paper's 72%/78%/83% on 6 of 8 ranks;
// 78% on all-8 vs the paper's 79%). The tightest 6-rank point leaves too
// little unallocated+quiet capacity per channel to fill a victim rank,
// reproducing the paper's missing-bar cases.
func srConfigs() []srConfig {
	return []srConfig{
		{"26gib-5grp", 26, 2, 0.10, "paper 208GB: 20.3% extra savings"},
		{"32gib-5grp", 32, 2, 0.06, "paper 224GB: reduced savings"},
		{"34gib-5grp", 34, 1, 0.03, "paper 240GB: often no self-refresh"},
		{"50gib-8grp", 50, 0, 0.06, "paper 304GB 8-rank: 14.9% savings"},
	}
}

// srRunResult captures the energy split of one configuration's replay.
type srRunResult struct {
	cfg             srConfig
	activeRanks     int // non-MPSM ranks after power-down
	totalRanks      int
	standbyEnergy   float64 // over the measurement span, units x ns
	selfRefEnergy   float64
	mpsmEnergy      float64
	span            sim.Time
	srEnters        int64
	srExits         int64
	warmupSREntries int64
}

// additionalSaving is the Fig. 14 metric: background-energy reduction over
// the ACTIVE ranks relative to keeping them all in standby (power-down
// savings excluded).
func (r srRunResult) additionalSaving() float64 {
	baseline := float64(r.activeRanks) * float64(r.span)
	if baseline == 0 {
		return 0
	}
	return 1 - (r.standbyEnergy+r.selfRefEnergy)/baseline
}

// totalSaving is the Fig. 15 metric: background-energy reduction relative
// to the all-ranks-standby baseline (power-down + self-refresh combined).
func (r srRunResult) totalSaving() float64 {
	baseline := float64(r.totalRanks) * float64(r.span)
	return 1 - (r.standbyEnergy+r.selfRefEnergy+r.mpsmEnergy)/baseline
}

// runSelfRefresh replays a mixed CloudSuite trace against a DTL with the
// hotness engine enabled and measures background energy after warm-up.
//
// Time dilation: the paper's thresholds (0.5 ms window, 50 ms profiling
// threshold) assume multi-minute runs; we scale thresholds and horizon
// together so the phase-duration ratios are preserved (documented in
// DESIGN.md).
func runSelfRefresh(o Options, cfg srConfig) srRunResult {
	g := srGeometry()
	c := core.DefaultConfig(g)
	c.ProfilingWindow = sim.Time(20_000)     // 20 us, time-dilated
	c.ProfilingThreshold = sim.Time(100_000) // 100 us, time-dilated
	if cfg.reserve == 0 {
		c.ReserveRankGroups = g.RanksPerChannel + 1 // power-down disabled
	} else {
		c.ReserveRankGroups = cfg.reserve
	}
	// Hotness-policy overrides only: the reserve above IS this experiment's
	// independent variable and must not be clobbered by an A/B knob.
	o.Policy.applyHotness(&c)
	d, err := core.New(c)
	if err != nil {
		panic(err)
	}
	// Replay horizon, declared up front so telemetry can publish an ETA;
	// the bandwidth reasoning lives at the replay loop below.
	horizon := sim.Time(o.scaled(24_000_000, 8_000_000)) // 24ms / 8ms
	rt := o.telemetryFor(d, sim.Millisecond, horizon)

	// Six-workload mix (as in the paper's trace mixing), footprints
	// rounded to the 2 GiB AU and summing to the allocation target.
	apps := []string{"data-analytics", "data-caching", "data-serving",
		"graph-analytics", "in-memory-analytics", "media-streaming"}
	per := cfg.allocGiB / int64(len(apps))
	if per < 2 {
		per = 2
	}
	var profiles []trace.Profile
	var total int64
	for i, app := range apps {
		p, err := trace.ProfileByName(app)
		if err != nil {
			panic(err)
		}
		size := per
		if i == len(apps)-1 {
			size = cfg.allocGiB - total
		}
		p.FootprintBytes = size << 30
		// Intense hot reuse with a modest truly-quiet tier: the victim
		// rank fills mostly from unallocated capacity, so self-refresh
		// viability tracks the free-space arithmetic of the paper.
		p.HotBias = 0.99
		p.UntouchedFraction = cfg.untouched
		profiles = append(profiles, p)
		total += size
	}
	mix := trace.MustMixed(profiles, o.Seed)

	// One VM owns the whole mix; its AU space is contiguous.
	alloc, err := d.AllocateVM(1, 0, cfg.allocGiB<<30, 0)
	if err != nil {
		panic(err)
	}
	base := alloc.AUBases[0]
	for i := 1; i < len(alloc.AUBases); i++ {
		if alloc.AUBases[i] != alloc.AUBases[i-1]+dram.HPA(c.AUBytes) {
			panic("experiments: AU space not contiguous")
		}
	}

	activeRanks := d.ActiveRanksPerChannel() * g.Channels
	d.Hotness().Enable(0)

	// Replay at >30 GB/s device bandwidth: one 64 B access every ~2 ns.
	// The warm-up half of the horizon covers the iterative cold-set
	// enrichment the paper reports as its 10-60 s warm-up.
	const gapNs = 2
	warmup := horizon / 2
	n := int(horizon / gapNs)

	dev := d.Device()
	var wStandby, wSR, wMPSM float64
	var warmupEnters int64
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		if i&0xffff == 0 {
			o.checkCanceled()
		}
		a := mix.Next()
		if _, err := d.Access(base+dram.HPA(a.Addr), a.Write, now); err != nil {
			panic(err)
		}
		now += gapNs
		rt.tick(now)
		if now == warmup {
			dev.AccountUpTo(now)
			wStandby, wSR, wMPSM = dev.BackgroundEnergy()
			warmupEnters = d.Stats().SelfRefreshEnters
		}
	}
	d.Tick(now)
	if err := rt.finish(horizon); err != nil {
		panic(err)
	}
	dev.AccountUpTo(horizon)
	st, sr, mp := dev.BackgroundEnergy()

	return srRunResult{
		cfg:             cfg,
		activeRanks:     activeRanks,
		totalRanks:      g.TotalRanks(),
		standbyEnergy:   st - wStandby,
		selfRefEnergy:   sr - wSR,
		mpsmEnergy:      mp - wMPSM,
		span:            horizon - warmup,
		srEnters:        d.Stats().SelfRefreshEnters,
		srExits:         d.Stats().SelfRefreshExits,
		warmupSREntries: warmupEnters,
	}
}

// Fig14 reproduces the hotness-aware self-refresh study: extra savings over
// rank-level power-down at four allocation levels, with savings collapsing
// when the active ranks' cold+free capacity per channel falls below a rank.
func Fig14(o Options) Result {
	res := newResult("Fig14", "Additional savings from hotness-aware self-refresh",
		"~20.3% extra at 208GB; degrades with allocation; 14.9% at 304GB/8-rank")
	w := o.out()
	res.header(w)

	csv := o.csvFile("fig14_savings")
	if csv != nil {
		fmt.Fprintln(csv, "config,alloc_gib,active_ranks,sr_enters,sr_exits,extra_saving")
		defer csv.Close()
	}
	tab := metrics.NewTable("config", "active ranks", "SR enters/exits", "extra saving", "paper")
	for i, cfg := range srConfigs() {
		ro := o
		if i > 0 {
			ro = o.withoutTelemetry() // only the headline config writes files
		}
		r := runSelfRefresh(ro, cfg)
		saving := r.additionalSaving()
		if csv != nil {
			fmt.Fprintf(csv, "%s,%d,%d,%d,%d,%.4f\n",
				cfg.label, cfg.allocGiB, r.activeRanks, r.srEnters, r.srExits, saving)
		}
		tab.AddRowf("%s\t%d/%d\t%d/%d\t%s\t%s",
			cfg.label, r.activeRanks, r.totalRanks, r.srEnters, r.srExits,
			pct(saving), cfg.paperNote)
		res.Metrics["saving_"+cfg.label] = saving
	}
	tab.Render(w)
	fmt.Fprintln(w, "\nmissing/low bars at high allocation mirror the paper's 240GB cases")
	res.footer(w)
	return res
}

// Fig15 reproduces the combined result: total background-energy savings
// from power-down plus self-refresh, against the all-ranks-standby
// baseline; the 8-rank case gets self-refresh savings only.
func Fig15(o Options) Result {
	res := newResult("Fig15", "Total energy savings, both techniques",
		"20.2% from power-down alone; 25.6-32.3% combined; 14.9% at 8-rank")
	w := o.out()
	res.header(w)

	tab := metrics.NewTable("config", "power-down only", "with self-refresh", "paper")
	for _, cfg := range srConfigs() {
		r := runSelfRefresh(o.withoutTelemetry(), cfg)
		// Power-down-only saving for the same configuration: idle groups
		// in MPSM, active groups fully standby.
		idle := float64(r.totalRanks - r.activeRanks)
		pdOnly := 1 - (float64(r.activeRanks)+idle*0.068)/float64(r.totalRanks)
		tab.AddRowf("%s\t%s\t%s\t%s", cfg.label, pct(pdOnly), pct(r.totalSaving()), cfg.paperNote)
		res.Metrics["total_"+cfg.label] = r.totalSaving()
		res.Metrics["pdonly_"+cfg.label] = pdOnly
	}
	tab.Render(w)
	res.footer(w)
	return res
}
