package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dtl/internal/telemetry"
)

// shardArtifacts names the per-run output files a cross-check run produces.
type shardArtifacts struct {
	metrics string
	trace   string
	ledger  string
}

func shardArtifactPaths(t *testing.T, dir string) shardArtifacts {
	t.Helper()
	return shardArtifacts{
		metrics: filepath.Join(dir, "metrics.csv"),
		trace:   filepath.Join(dir, "trace.jsonl"),
		ledger:  filepath.Join(dir, "ledger.json"),
	}
}

// runShardCheck runs one experiment with the given shard count, writing all
// three artifact sinks into dir, and returns the Result and report bytes.
func runShardCheck(t *testing.T, id string, shards int, faultSpec string, a shardArtifacts) ([]Result, []byte) {
	t.Helper()
	var out bytes.Buffer
	res := RunAll(runnersByID(t, id), Options{
		Quick:       true,
		Seed:        1,
		Out:         &out,
		Shards:      shards,
		MetricsPath: a.metrics,
		TracePath:   a.trace,
		TraceFormat: telemetry.FormatJSONL,
		LedgerPath:  a.ledger,
		FaultSpec:   faultSpec,
	}, 1)
	return res, out.Bytes()
}

// TestShardedMatchesSerial is the byte-identity contract of Options.Shards:
// for every shard count, results, report bytes, and every artifact file
// (metrics CSV, jsonl trace, ledger JSON) match the serial run exactly.
//
// The matrix deliberately mixes both execution paths: fig2/fig5 replay on
// the sharded engine (and fig12 shards its perf-overhead replay), while
// fig9/faults exercise the documented serial-oracle fallback for DTL-driven
// runs. fig12 and faults run with an ECC storm plus a mid-run rank kill, so
// the comparison covers active migrations and health-monitor retirement
// crossing rank (and shard) boundaries. CI runs this under -race, which
// also checks the shard workers share no state outside the barriers.
func TestShardedMatchesSerial(t *testing.T) {
	// Storm on ch1/rk2 then a dead rank at ch0/rk0: both force the health
	// monitor to retire ranks and migrate their segments mid-schedule.
	const faultSpec = "seed=7;storm:ch1/rk2:at=90m,rate=2000,dur=60s;kill:ch0/rk0:at=3h"

	for _, id := range []string{"fig2", "fig5", "fig9", "fig12", "faults"} {
		id := id
		t.Run(id, func(t *testing.T) {
			spec := ""
			if id == "fig12" || id == "faults" {
				spec = faultSpec
			}
			baseDir := t.TempDir()
			baseArt := shardArtifactPaths(t, baseDir)
			baseRes, baseOut := runShardCheck(t, id, 0, spec, baseArt)

			for _, shards := range []int{1, 2, 4, 7} {
				dir := t.TempDir()
				art := shardArtifactPaths(t, dir)
				res, out := runShardCheck(t, id, shards, spec, art)

				if !reflect.DeepEqual(baseRes, res) {
					t.Fatalf("shards=%d: results differ from serial:\nserial: %+v\nsharded: %+v",
						shards, baseRes, res)
				}
				if !bytes.Equal(baseOut, out) {
					t.Fatalf("shards=%d: report differs from serial run", shards)
				}
				compareArtifact(t, shards, "metrics", baseArt.metrics, art.metrics)
				compareArtifact(t, shards, "trace", baseArt.trace, art.trace)
				compareArtifact(t, shards, "ledger", baseArt.ledger, art.ledger)
			}
		})
	}
}

// compareArtifact requires base and got to agree byte for byte, including
// agreeing on whether the experiment produced the file at all (fig2/fig5
// honor only MetricsPath; the DTL-driven runs produce all three).
func compareArtifact(t *testing.T, shards int, name, base, got string) {
	t.Helper()
	bb, berr := os.ReadFile(base)
	gb, gerr := os.ReadFile(got)
	if os.IsNotExist(berr) && os.IsNotExist(gerr) {
		return
	}
	if berr != nil || gerr != nil {
		t.Fatalf("shards=%d: %s artifact existence mismatch: serial err=%v sharded err=%v",
			shards, name, berr, gerr)
	}
	if !bytes.Equal(bb, gb) {
		t.Fatalf("shards=%d: %s artifact differs from serial run (%d vs %d bytes)",
			shards, name, len(bb), len(gb))
	}
}
