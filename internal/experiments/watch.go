package experiments

import (
	"fmt"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/rack"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// Live progress snapshots for `dtlsim -watch`. The sim goroutine publishes a
// WatchSnapshot on the Options.Watch channel at every sampling tick; the
// renderer (cmd/dtlsim) owns the terminal. Publishing never blocks the sim —
// sendWatch coalesces by replacing a stale undelivered snapshot with the
// fresh one — so runs are byte-identical with and without a watcher, and a
// slow terminal can never stall virtual time.

// WatchRank is one rank's position in the power-state strip.
type WatchRank struct {
	Rank  int    // global rank id (tracer numbering: rank*channels + channel)
	Name  string // "ch0/rk3"
	State string // "standby", "self-refresh", "mpsm", or "retired"
}

// WatchSnapshot is one observation of a running experiment.
type WatchSnapshot struct {
	Experiment string   // runner id ("fig12"); stamped by RunAll
	Now        sim.Time // virtual time of the snapshot
	Horizon    sim.Time // run horizon; 0 when the experiment cannot know it

	Ranks []WatchRank // power-state strip, in global-rank order

	// Rolling counters, cumulative since the run started.
	Migrations int64 // segments migrated (drains, swaps, retirement drains)
	Wakes      int64 // self-refresh exits forced by foreground accesses
	Faults     int64 // device fault reports seen by the health monitor
	Retired    int   // ranks permanently offline

	// Attr is the cost ledger's running per-cause totals (nonzero causes
	// only, taxonomy order); empty when no ledger is attached.
	Attr []WatchAttr

	Done bool // final snapshot, published as the run finishes
}

// WatchAttr is one cause's cumulative attribution cost.
type WatchAttr struct {
	Cause  string
	LatNs  int64
	Energy float64
}

// snapshotDTL reads one WatchSnapshot off the live device. Counter reads go
// through the registry (Counter is get-or-create, and all of these exist from
// DTL construction), so the snapshot needs no hooks inside the model.
func snapshotDTL(d *core.DTL, label string, now, horizon sim.Time, done bool) WatchSnapshot {
	g := d.Config().Geometry
	reg := d.Registry()

	retired := map[dram.RankID]bool{}
	for _, id := range d.RetiredRanks() {
		retired[id] = true
	}

	snap := WatchSnapshot{
		Experiment: label,
		Now:        now,
		Horizon:    horizon,
		Ranks:      make([]WatchRank, 0, g.TotalRanks()),
		Migrations: reg.Counter("core.migration.segments_migrated").Value(),
		Wakes:      reg.Counter("core.selfrefresh.exits").Value(),
		Faults:     reg.Counter("core.health.fault_events").Value(),
		Retired:    len(retired),
		Done:       done,
	}
	if led := d.Ledger(); led != nil {
		totals := led.CauseTotals()
		for c := telemetry.Cause(0); int(c) < telemetry.NumCauses; c++ {
			cell := totals[c]
			if cell.LatNs == 0 && cell.Energy == 0 {
				continue
			}
			snap.Attr = append(snap.Attr, WatchAttr{
				Cause: c.String(), LatNs: cell.LatNs, Energy: cell.Energy,
			})
		}
	}
	// Global-rank order matches the tracer: rank*Channels + channel.
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		for ch := 0; ch < g.Channels; ch++ {
			id := dram.RankID{Channel: ch, Rank: rk}
			state := d.Device().State(id).String()
			if retired[id] {
				state = "retired"
			}
			snap.Ranks = append(snap.Ranks, WatchRank{
				Rank:  rk*g.Channels + ch,
				Name:  id.String(),
				State: state,
			})
		}
	}
	return snap
}

// snapshotFabric reads one WatchSnapshot off a live rack: every expander's
// rank strip concatenated in rack-global order (expander channels side by
// side, so the strip groups visually by expander), counters summed across
// expanders, and attribution totals merged from the rack ledger (fabric
// causes) plus every expander's private ledger (everything else).
func snapshotFabric(f *rack.Fabric, label string, now, horizon sim.Time, done bool) WatchSnapshot {
	snap := WatchSnapshot{
		Experiment: label,
		Now:        now,
		Horizon:    horizon,
		Ranks:      make([]WatchRank, 0, f.TotalRanks()),
		Done:       done,
	}
	var totals [telemetry.NumCauses]telemetry.LedgerCell
	merge := func(led *telemetry.Ledger) {
		if led == nil {
			return
		}
		ct := led.CauseTotals()
		for c := range ct {
			totals[c].LatNs += ct[c].LatNs
			totals[c].Energy += ct[c].Energy
		}
	}
	merge(f.Ledger())
	for _, e := range f.Expanders() {
		reg := e.DTL.Registry()
		snap.Migrations += reg.Counter("core.migration.segments_migrated").Value()
		snap.Wakes += reg.Counter("core.selfrefresh.exits").Value()
		snap.Faults += reg.Counter("core.health.fault_events").Value()
		snap.Retired += len(e.DTL.RetiredRanks())
		merge(e.DTL.Ledger())
	}
	for c := telemetry.Cause(0); int(c) < telemetry.NumCauses; c++ {
		cell := totals[c]
		if cell.LatNs == 0 && cell.Energy == 0 {
			continue
		}
		snap.Attr = append(snap.Attr, WatchAttr{
			Cause: c.String(), LatNs: cell.LatNs, Energy: cell.Energy,
		})
	}
	g := f.Config().Expander.Geometry
	totalCh := f.Config().Expanders * g.Channels
	for rk := 0; rk < g.RanksPerChannel; rk++ {
		for _, e := range f.Expanders() {
			retired := map[dram.RankID]bool{}
			for _, id := range e.DTL.RetiredRanks() {
				retired[id] = true
			}
			for ch := 0; ch < g.Channels; ch++ {
				id := dram.RankID{Channel: ch, Rank: rk}
				state := e.DTL.Device().State(id).String()
				if retired[id] {
					state = "retired"
				}
				snap.Ranks = append(snap.Ranks, WatchRank{
					Rank:  rk*totalCh + e.ID*g.Channels + ch,
					Name:  fmt.Sprintf("x%d/%s", e.ID, id),
					State: state,
				})
			}
		}
	}
	return snap
}

// sendWatch delivers snap without ever blocking: if the channel is full the
// stale queued snapshot is dropped in favor of the fresh one. With the cap-1
// channel dtlsim creates, the renderer always reads the newest state.
func sendWatch(ch chan WatchSnapshot, snap WatchSnapshot) {
	for {
		select {
		case ch <- snap:
			return
		default:
		}
		select {
		case <-ch: // evict the stale snapshot
		default:
		}
	}
}
