package experiments

import (
	"bufio"
	"fmt"
	"os"

	"dtl/internal/core"
	"dtl/internal/rack"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// attrSource is the device composition a telemetry run attaches to: one
// core.DTL expander or a rack.Fabric of them. Both own a registry, can
// source a trace and a cost ledger, and know how to complete the
// attribution bill at the horizon (the fabric folds its per-expander
// ledgers into rack-global rank numbering there).
type attrSource interface {
	StartTrace(capacity int, now sim.Time) *telemetry.Tracer
	StartLedger() *telemetry.Ledger
	AttachTracer(*telemetry.Tracer)
	AttachLedger(*telemetry.Ledger)
	Registry() *telemetry.Registry
	FinishAttribution(tr *telemetry.Tracer, led *telemetry.Ledger, horizon sim.Time)
}

// runTelemetry wires a metrics registry (and, for device-driven runs, the
// event tracer and the -watch publisher) to the sinks requested in Options. A
// nil *runTelemetry is valid and makes every method a no-op, so experiment
// loops call tick/finish unconditionally and pay nothing when observability
// is off.
type runTelemetry struct {
	tracePath   string
	metricsPath string
	ledgerPath  string

	src      attrSource // nil for registry-only runs (no tracer source)
	snapshot func(now sim.Time, done bool) WatchSnapshot
	reg      *telemetry.Registry
	tr       *telemetry.Tracer
	led      *telemetry.Ledger
	eng      *sim.Engine
	stop     func()
	horizon  sim.Time // run horizon for watch ETA; 0 = unknown

	// Chrome traces buffer in the tracer's ring and are written at finish;
	// jsonl/csv traces stream record by record through traceStream.
	traceFormat telemetry.TraceFormat
	traceFile   *os.File
	traceBuf    *bufio.Writer
	traceStream *telemetry.TraceStream
	traceErr    error // deferred os.Create failure, reported at finish

	// Metrics stream to the CSV file as rows are sampled (O(1) memory over
	// any horizon) rather than accumulating in the registry until finish.
	metricsFile *os.File
	metricsBuf  *bufio.Writer
	stream      *telemetry.StreamSampler
	metricsErr  error // deferred os.Create failure, reported at finish

	watch      chan WatchSnapshot
	watchLabel string
}

// telemetryFor attaches tracing, periodic metrics sampling, and the watch
// publisher to d per the Options, or returns nil when none was requested.
// defaultPeriod is the experiment's natural sampling granularity, used when
// the caller did not set SamplePeriod explicitly (horizons range from
// milliseconds of replay to six hours of schedule, so no single default fits
// all runs). horizon is the run end if the experiment knows it up front (for
// the watch ETA); 0 means unknown.
func (o Options) telemetryFor(d *core.DTL, defaultPeriod, horizon sim.Time) *runTelemetry {
	return o.telemetryForSource(d, func(now sim.Time, done bool) WatchSnapshot {
		return snapshotDTL(d, o.watchExperiment, now, horizon, done)
	}, defaultPeriod, horizon)
}

// telemetryForFabric is telemetryFor for rack runs: the trace, ledger, and
// metrics sources are the fabric's rack-global ones, and watch snapshots
// concatenate every expander's rank strip.
func (o Options) telemetryForFabric(f *rack.Fabric, defaultPeriod, horizon sim.Time) *runTelemetry {
	return o.telemetryForSource(f, func(now sim.Time, done bool) WatchSnapshot {
		return snapshotFabric(f, o.watchExperiment, now, horizon, done)
	}, defaultPeriod, horizon)
}

func (o Options) telemetryForSource(src attrSource, snapshot func(sim.Time, bool) WatchSnapshot, defaultPeriod, horizon sim.Time) *runTelemetry {
	if o.TracePath == "" && o.MetricsPath == "" && o.LedgerPath == "" && o.Watch == nil {
		return nil
	}
	rt := &runTelemetry{
		tracePath:   o.TracePath,
		metricsPath: o.MetricsPath,
		ledgerPath:  o.LedgerPath,
		src:         src,
		snapshot:    snapshot,
		reg:         src.Registry(),
		eng:         sim.NewEngine(),
		horizon:     horizon,
		watch:       o.Watch,
		watchLabel:  o.watchExperiment,
	}
	if o.TracePath != "" {
		rt.tr = src.StartTrace(0, 0)
		rt.traceFormat = o.TraceFormat
		if o.TraceFormat != telemetry.FormatChrome {
			if f, err := os.Create(o.TracePath); err != nil {
				rt.traceErr = err
			} else {
				rt.traceFile = f
				rt.traceBuf = bufio.NewWriter(f)
				ts, err := telemetry.NewTraceStream(rt.traceBuf, o.TraceFormat)
				if err != nil {
					rt.traceErr = err
				} else {
					rt.traceStream = ts
					rt.tr.AttachStream(ts)
				}
			}
		}
	}
	// The cost ledger rides along whenever any attribution consumer is
	// active: an explicit -ledger file, a trace (which receives the ledger
	// dump at finish), or a watch pane.
	if o.LedgerPath != "" || o.TracePath != "" || o.Watch != nil {
		rt.led = src.StartLedger()
	}
	rt.startSampling(o, defaultPeriod)
	rt.startWatch(o, defaultPeriod)
	return rt
}

// telemetryForRegistry attaches periodic metrics sampling to a bare registry
// for the experiments that have no DTL (fig1's schedule gauges, fig2/fig5's
// raw controller replays). TracePath and Watch are ignored here: without a
// DTL there is no tracer source and no rank strip to watch, and Options
// documents which experiments honor them.
func (o Options) telemetryForRegistry(reg *telemetry.Registry, defaultPeriod, horizon sim.Time) *runTelemetry {
	if o.MetricsPath == "" {
		return nil
	}
	rt := &runTelemetry{
		metricsPath: o.MetricsPath,
		reg:         reg,
		eng:         sim.NewEngine(),
		horizon:     horizon,
	}
	rt.startSampling(o, defaultPeriod)
	return rt
}

func (o Options) period(defaultPeriod sim.Time) sim.Time {
	if o.SamplePeriod > 0 {
		return o.SamplePeriod
	}
	return defaultPeriod
}

func (rt *runTelemetry) startSampling(o Options, defaultPeriod sim.Time) {
	if rt.metricsPath == "" {
		return
	}
	f, err := os.Create(rt.metricsPath)
	if err != nil {
		rt.metricsErr = err
		return
	}
	rt.metricsFile = f
	rt.metricsBuf = bufio.NewWriter(f)
	rt.stream = rt.reg.StreamTo(rt.metricsBuf)
	rt.stop = rt.stream.Start(rt.eng, o.period(defaultPeriod))
}

// startWatch schedules snapshot publication at the sampling cadence. The
// publisher runs on the sim goroutine (inside tick) and never blocks, so the
// run is byte-identical with and without a watcher.
func (rt *runTelemetry) startWatch(o Options, defaultPeriod sim.Time) {
	if rt.watch == nil || rt.snapshot == nil {
		return
	}
	rt.eng.Every(o.period(defaultPeriod), func(now sim.Time) {
		sendWatch(rt.watch, rt.snapshot(now, false))
	})
}

// tick advances the sampling clock to now, firing any due interval timers.
func (rt *runTelemetry) tick(now sim.Time) {
	if rt == nil {
		return
	}
	rt.eng.RunUntil(now)
}

// next reports the sampling clock's next due time; ok is false when rt is
// nil or nothing is scheduled. The replay loops use it as the round boundary:
// quiesce every channel strictly before next(), then tick the sample.
func (rt *runTelemetry) next() (at sim.Time, ok bool) {
	if rt == nil {
		return 0, false
	}
	return rt.eng.NextEventAt()
}

// finish closes the trace at horizon, detaches it from the device, writes the
// requested output files, and publishes the final watch snapshot.
func (rt *runTelemetry) finish(horizon sim.Time) error {
	if rt == nil {
		return nil
	}
	rt.tick(horizon)
	if rt.stop != nil {
		rt.stop()
	}
	if rt.tr != nil {
		rt.tr.Finish(horizon)
	}
	if rt.led != nil {
		// Complete the attribution bill: fold the run's background-energy
		// proxy (finished power spans) into the ledger — and, for a rack
		// source, fold every expander's private ledger into rack-global
		// numbering — then dump the per-cell totals into the trace so any
		// trace consumer can rebuild attribution. With no trace attached
		// the residency fold is a no-op and only technique costs appear,
		// matching the ledger-only behavior documented in Options.
		rt.src.FinishAttribution(rt.tr, rt.led, horizon)
	}
	if rt.tr != nil {
		rt.src.AttachTracer(nil)
		if rt.traceFormat == telemetry.FormatChrome {
			if err := writeTo(rt.tracePath, func(f *os.File) error {
				return telemetry.WriteChromeTrace(f, rt.tr)
			}); err != nil {
				return fmt.Errorf("experiments: writing trace: %w", err)
			}
		} else if err := rt.closeTrace(); err != nil {
			return fmt.Errorf("experiments: writing trace: %w", err)
		}
	}
	if rt.led != nil {
		rt.src.AttachLedger(nil)
		if rt.ledgerPath != "" {
			if err := writeTo(rt.ledgerPath, func(f *os.File) error {
				return rt.led.WriteJSON(f)
			}); err != nil {
				return fmt.Errorf("experiments: writing ledger: %w", err)
			}
		}
	}
	if rt.metricsPath != "" {
		if err := rt.closeMetrics(); err != nil {
			return fmt.Errorf("experiments: writing metrics: %w", err)
		}
	}
	if rt.watch != nil && rt.snapshot != nil {
		sendWatch(rt.watch, rt.snapshot(horizon, true))
	}
	return nil
}

// closeTrace finalizes a streamed jsonl/csv trace: the Finish-time span
// closures have already been streamed, so only the buffer flush and the file
// close remain. The first error anywhere in the chain wins.
func (rt *runTelemetry) closeTrace() error {
	if rt.traceErr != nil {
		return rt.traceErr
	}
	err := rt.traceStream.Err()
	if ferr := rt.traceBuf.Flush(); err == nil {
		err = ferr
	}
	if cerr := rt.traceFile.Close(); err == nil {
		err = cerr
	}
	return err
}

// closeMetrics finalizes the streamed CSV: the header is forced out even if
// no sample fired (so the file is always well-formed), the write buffer is
// flushed, and the file closed. The first error anywhere in the chain wins.
func (rt *runTelemetry) closeMetrics() error {
	if rt.metricsErr != nil {
		return rt.metricsErr
	}
	err := rt.stream.Finish()
	if ferr := rt.metricsBuf.Flush(); err == nil {
		err = ferr
	}
	if cerr := rt.metricsFile.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// withoutTelemetry clears the telemetry outputs; used by experiments that
// run the same schedule several times so only the headline run writes files
// (and only the headline run feeds the watch).
func (o Options) withoutTelemetry() Options {
	o.TracePath = ""
	o.MetricsPath = ""
	o.LedgerPath = ""
	o.Watch = nil
	return o
}
